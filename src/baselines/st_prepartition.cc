#include "baselines/st_prepartition.h"

#include "graph/community.h"
#include "util/random.h"

namespace savg {

Result<SvgicInstance> ExtractSubInstance(const SvgicInstance& instance,
                                         const std::vector<UserId>& users) {
  std::vector<UserId> old_to_new;
  SocialGraph sub_graph = instance.graph().InducedSubgraph(users, &old_to_new);
  SvgicInstance sub(sub_graph, instance.num_items(), instance.num_slots(),
                    instance.lambda());
  for (size_t i = 0; i < users.size(); ++i) {
    const UserId old_u = users[i];
    for (ItemId c = 0; c < instance.num_items(); ++c) {
      const double p = instance.p(old_u, c);
      if (p > 0.0) sub.set_p(static_cast<UserId>(i), c, p);
    }
  }
  // Copy tau for surviving directed edges.
  for (const Edge& e : instance.graph().edges()) {
    const UserId nu = old_to_new[e.u];
    const UserId nv = old_to_new[e.v];
    if (nu < 0 || nv < 0) continue;
    const EdgeId sub_e = sub_graph.FindEdge(nu, nv);
    if (sub_e < 0) continue;
    for (const ItemValue& iv : instance.TauEntries(e.id)) {
      if (iv.value > 0.0f) sub.set_tau(sub_e, iv.item, iv.value);
    }
  }
  sub.set_commodity_values(
      std::vector<float>(instance.commodity_values()));
  sub.set_slot_weights(std::vector<float>(instance.slot_weights()));
  sub.FinalizePairs();
  SAVG_RETURN_NOT_OK(sub.Validate());
  return sub;
}

Result<Configuration> RunWithPrepartition(const SvgicInstance& instance,
                                          int size_cap, uint64_t seed,
                                          const BaselineRunner& runner) {
  if (size_cap < 1) return Status::InvalidArgument("size cap must be >= 1");
  Rng rng(seed);
  Partition partition = BalancedPartition(instance.graph(), size_cap, &rng);
  Configuration merged(instance.num_users(), instance.num_slots(),
                       instance.num_items());
  for (const auto& members : partition.Groups()) {
    if (members.empty()) continue;
    auto sub = ExtractSubInstance(instance, members);
    if (!sub.ok()) return sub.status();
    auto sub_config = runner(*sub);
    if (!sub_config.ok()) return sub_config.status();
    for (size_t i = 0; i < members.size(); ++i) {
      for (SlotId s = 0; s < instance.num_slots(); ++s) {
        const ItemId c = sub_config->At(static_cast<UserId>(i), s);
        if (c != kNoItem) {
          SAVG_RETURN_NOT_OK(merged.Set(members[i], s, c));
        }
      }
    }
  }
  return merged;
}

}  // namespace savg
