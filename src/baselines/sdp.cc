#include "baselines/sdp.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

namespace savg {

namespace {

/// Cosine similarity between the group-aggregate preference profiles of two
/// items, used by the diversity penalty.
double ItemSimilarity(const std::vector<std::vector<double>>& pref_by_item,
                      ItemId a, ItemId b) {
  const auto& pa = pref_by_item[a];
  const auto& pb = pref_by_item[b];
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (size_t u = 0; u < pa.size(); ++u) {
    dot += pa[u] * pb[u];
    na += pa[u] * pa[u];
    nb += pb[u] * pb[u];
  }
  if (na <= 0.0 || nb <= 0.0) return 0.0;
  return dot / std::sqrt(na * nb);
}

}  // namespace

Result<Configuration> RunSdp(const SvgicInstance& instance,
                             const SdpOptions& options,
                             Partition* partition_out) {
  SAVG_RETURN_NOT_OK(instance.Validate());
  const int n = instance.num_users();
  const int m = instance.num_items();
  const int k = instance.num_slots();
  const bool social = instance.lambda() > 0.0;

  Partition partition =
      GreedyModularity(instance.graph(), options.min_communities);
  const auto groups = partition.Groups();

  Configuration config(n, k, m);
  std::vector<std::vector<double>> pref_by_item;  // lazily built for diversity
  if (options.diversity_weight > 0.0) {
    pref_by_item.assign(m, std::vector<double>(n, 0.0));
    for (ItemId c = 0; c < m; ++c) {
      for (UserId u = 0; u < n; ++u) pref_by_item[c][u] = instance.p(u, c);
    }
  }

  for (const auto& members : groups) {
    // Intra-subgroup aggregate utility per item.
    std::vector<double> utility(m, 0.0);
    std::vector<bool> in_group(n, false);
    for (UserId u : members) in_group[u] = true;
    for (UserId u : members) {
      for (ItemId c = 0; c < m; ++c) {
        utility[c] += social ? instance.ScaledP(u, c) : instance.p(u, c);
      }
    }
    if (social) {
      for (const FriendPair& pair : instance.pairs()) {
        if (!in_group[pair.u] || !in_group[pair.v]) continue;
        for (const ItemValue& iv : pair.weights) {
          utility[iv.item] += iv.value;
        }
      }
    }
    // Greedy top-k with the diversity penalty.
    std::vector<ItemId> bundle;
    std::vector<bool> chosen(m, false);
    for (int pick = 0; pick < k; ++pick) {
      ItemId best = -1;
      double best_score = -std::numeric_limits<double>::infinity();
      for (ItemId c = 0; c < m; ++c) {
        if (chosen[c]) continue;
        double score = utility[c];
        if (options.diversity_weight > 0.0) {
          double max_sim = 0.0;
          for (ItemId prev : bundle) {
            max_sim = std::max(max_sim,
                               ItemSimilarity(pref_by_item, c, prev));
          }
          score -= options.diversity_weight * max_sim * utility[c];
        }
        if (score > best_score) {
          best_score = score;
          best = c;
        }
      }
      chosen[best] = true;
      bundle.push_back(best);
    }
    for (UserId u : members) {
      for (SlotId s = 0; s < k; ++s) {
        SAVG_RETURN_NOT_OK(config.Set(u, s, bundle[s]));
      }
    }
  }
  if (partition_out != nullptr) *partition_out = std::move(partition);
  return config;
}

}  // namespace savg
