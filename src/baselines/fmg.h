// FMG: Fairness-aware group recommendation (modeled after Serbos et al.
// [64], the paper's "group approach" baseline).
//
// Selects ONE bundled k-itemset displayed identically to every user (same
// items, same slots). Items are chosen greedily by aggregate group utility
// (sum of scaled preferences plus all pairwise social weights, since the
// whole group co-displays every selected item), plus a least-misery
// fairness term that favours items lifting the currently worst-off user —
// the fairness dimension of package-to-group recommendation.

#pragma once

#include "core/configuration.h"
#include "core/problem.h"
#include "util/status.h"

namespace savg {

struct FmgOptions {
  /// Weight of the least-misery fairness term in the greedy item score.
  double fairness_weight = 0.3;
};

/// Runs the whole-group bundled-itemset baseline.
Result<Configuration> RunFmg(const SvgicInstance& instance,
                             const FmgOptions& options = {});

}  // namespace savg
