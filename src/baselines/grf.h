// GRF: Group Recommendation and Formation (modeled after Roy et al. [62],
// the paper's "subgroup-by-preference" baseline).
//
// Clusters users by preference-vector similarity (k-means with cosine-like
// normalized vectors), ignoring the social topology entirely, then displays
// to each cluster its top-k items by aggregate preference. Like SDP, the
// partition is static across display slots.

#pragma once

#include <cstdint>

#include "core/configuration.h"
#include "core/problem.h"
#include "graph/community.h"
#include "util/status.h"

namespace savg {

struct GrfOptions {
  /// Number of preference clusters; 0 = heuristic default max(2, n/5).
  int num_clusters = 0;
  int max_kmeans_rounds = 30;
  uint64_t seed = 7;
};

/// Runs the preference-clustering baseline. `partition_out` (optional)
/// receives the static partition used.
Result<Configuration> RunGrf(const SvgicInstance& instance,
                             const GrfOptions& options = {},
                             Partition* partition_out = nullptr);

}  // namespace savg
