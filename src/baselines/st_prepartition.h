// Pre-partitioning wrapper for SVGIC-ST baselines (Section 6.8).
//
// None of the baseline algorithms is aware of the subgroup size constraint
// M, so the paper evaluates them in two modes: "-NP" (run as-is, violations
// counted) and "-P" (pre-partition the user set into ceil(n/M) balanced
// subgroups, run the baseline independently per subgroup, and merge).
// Note that even "-P" baselines can violate the cap when two pre-partitioned
// subgroups happen to pick the same item at the same slot — exactly the
// effect Figure 13 measures.

#pragma once

#include <functional>

#include "core/configuration.h"
#include "core/problem.h"
#include "util/status.h"

namespace savg {

/// Runs a baseline on an instance (used per pre-partitioned subgroup).
using BaselineRunner =
    std::function<Result<Configuration>(const SvgicInstance&)>;

/// Induced sub-instance on `users` (item set unchanged). Preference rows
/// and surviving directed tau entries are copied; pairs are re-finalized.
Result<SvgicInstance> ExtractSubInstance(const SvgicInstance& instance,
                                         const std::vector<UserId>& users);

/// Pre-partitions into balanced subgroups of size <= size_cap, runs
/// `runner` per subgroup, and merges the per-subgroup configurations back
/// into one global configuration.
Result<Configuration> RunWithPrepartition(const SvgicInstance& instance,
                                          int size_cap, uint64_t seed,
                                          const BaselineRunner& runner);

}  // namespace savg
