// Exhaustive search over all SAVG k-Configurations.
//
// The solution space is Theta(m^{nk}) (Section 3.1), so this is only usable
// as a test oracle on tiny instances; it is the ground truth against which
// the IP solver, the LP upper bound, and the approximation-ratio property
// tests are validated.

#pragma once

#include <cstdint>

#include "core/configuration.h"
#include "core/problem.h"
#include "util/status.h"

namespace savg {

struct BruteForceOptions {
  double time_limit_seconds = 120.0;
  uint64_t max_configurations = 500'000'000;
};

struct BruteForceResult {
  Configuration config;
  double scaled_objective = 0.0;
  uint64_t configurations_examined = 0;
};

/// Finds the exact optimum of the scaled SVGIC objective. Returns
/// kResourceExhausted if limits are hit before the search completes.
Result<BruteForceResult> SolveBruteForce(const SvgicInstance& instance,
                                         const BruteForceOptions& options = {});

}  // namespace savg
