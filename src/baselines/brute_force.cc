#include "baselines/brute_force.h"

#include <cmath>
#include <vector>

#include "core/objective.h"
#include "util/logging.h"

namespace savg {

namespace {

class BruteForceSearch {
 public:
  BruteForceSearch(const SvgicInstance& instance,
                   const BruteForceOptions& options)
      : instance_(instance),
        opt_(options),
        config_(instance.num_users(), instance.num_slots(),
                instance.num_items()),
        best_(config_) {}

  Result<BruteForceResult> Run() {
    exhausted_ = false;
    RecurseUser(0, 0.0);
    if (exhausted_) {
      return Status::ResourceExhausted("brute force limits reached");
    }
    BruteForceResult result;
    result.config = std::move(best_);
    result.scaled_objective = best_value_;
    result.configurations_examined = examined_;
    return result;
  }

 private:
  /// Scaled utility gained by assigning (u, s) = c given all users < u are
  /// fully assigned and u's earlier slots are assigned.
  double GainOf(UserId u, SlotId s, ItemId c) const {
    double gain = instance_.lambda() > 0.0 ? instance_.ScaledP(u, c)
                                           : instance_.p(u, c);
    if (instance_.lambda() > 0.0) {
      for (int pi : instance_.PairsOfUser(u)) {
        const FriendPair& pair = instance_.pairs()[pi];
        const UserId v = pair.u == u ? pair.v : pair.u;
        if (v < u && config_.At(v, s) == c) gain += pair.WeightOf(c);
      }
    }
    return gain;
  }

  void RecurseUser(UserId u, double value) {
    if (exhausted_) return;
    if (u == instance_.num_users()) {
      ++examined_;
      if ((examined_ & 0xFFFF) == 0 &&
          (examined_ > opt_.max_configurations ||
           timer_.ElapsedSeconds() > opt_.time_limit_seconds)) {
        exhausted_ = true;
      }
      if (value > best_value_) {
        best_value_ = value;
        best_ = config_;
      }
      return;
    }
    RecurseSlot(u, 0, value);
  }

  void RecurseSlot(UserId u, SlotId s, double value) {
    if (exhausted_) return;
    if (s == instance_.num_slots()) {
      RecurseUser(u + 1, value);
      return;
    }
    for (ItemId c = 0; c < instance_.num_items(); ++c) {
      if (config_.Displays(u, c)) continue;
      const double gain = GainOf(u, s, c);
      Status st = config_.Set(u, s, c);
      (void)st;
      RecurseSlot(u, s + 1, value + gain);
      config_.Unset(u, s);
      if (exhausted_) return;
    }
  }

  const SvgicInstance& instance_;
  const BruteForceOptions opt_;
  Configuration config_;
  Configuration best_;
  double best_value_ = -1.0;
  uint64_t examined_ = 0;
  bool exhausted_ = false;
  Timer timer_;
};

}  // namespace

Result<BruteForceResult> SolveBruteForce(const SvgicInstance& instance,
                                         const BruteForceOptions& options) {
  SAVG_RETURN_NOT_OK(instance.Validate());
  BruteForceSearch search(instance, options);
  return search.Run();
}

}  // namespace savg
