#include "baselines/fmg.h"

#include <algorithm>
#include <limits>
#include <vector>

namespace savg {

Result<Configuration> RunFmg(const SvgicInstance& instance,
                             const FmgOptions& options) {
  SAVG_RETURN_NOT_OK(instance.Validate());
  const int n = instance.num_users();
  const int m = instance.num_items();
  const int k = instance.num_slots();
  const bool social = instance.lambda() > 0.0;

  // Aggregate group utility of co-displaying item c to everyone.
  std::vector<double> group_utility(m, 0.0);
  std::vector<std::vector<double>> user_pref(n, std::vector<double>(m, 0.0));
  for (UserId u = 0; u < n; ++u) {
    for (ItemId c = 0; c < m; ++c) {
      const double p = social ? instance.ScaledP(u, c) : instance.p(u, c);
      user_pref[u][c] = p;
      group_utility[c] += p;
    }
  }
  if (social) {
    for (const FriendPair& pair : instance.pairs()) {
      for (const ItemValue& iv : pair.weights) {
        group_utility[iv.item] += iv.value;
      }
    }
  }

  // Greedy selection with least-misery fairness: the score of adding c is
  // the aggregate utility plus fairness_weight times the resulting lift of
  // the worst-off user's cumulative preference.
  std::vector<double> cumulative(n, 0.0);
  std::vector<bool> chosen(m, false);
  std::vector<ItemId> bundle;
  bundle.reserve(k);
  for (int pick = 0; pick < k; ++pick) {
    const double current_min =
        *std::min_element(cumulative.begin(), cumulative.end());
    ItemId best = -1;
    double best_score = -std::numeric_limits<double>::infinity();
    for (ItemId c = 0; c < m; ++c) {
      if (chosen[c]) continue;
      double new_min = std::numeric_limits<double>::infinity();
      for (UserId u = 0; u < n; ++u) {
        new_min = std::min(new_min, cumulative[u] + user_pref[u][c]);
      }
      const double score =
          group_utility[c] + options.fairness_weight * (new_min - current_min);
      if (score > best_score) {
        best_score = score;
        best = c;
      }
    }
    chosen[best] = true;
    bundle.push_back(best);
    for (UserId u = 0; u < n; ++u) cumulative[u] += user_pref[u][best];
  }

  Configuration config(n, k, m);
  for (UserId u = 0; u < n; ++u) {
    for (SlotId s = 0; s < k; ++s) {
      SAVG_RETURN_NOT_OK(config.Set(u, s, bundle[s]));
    }
  }
  return config;
}

}  // namespace savg
