// PER: Personalized Top-k (the "personalized approach" of Section 1, the
// lambda = 1... i.e. pure-preference special case baseline of Section 6.1).
//
// Each user independently receives her k most preferred items; slot 1
// carries the favourite. No social coordination of any kind.

#pragma once

#include "core/configuration.h"
#include "core/problem.h"
#include "util/status.h"

namespace savg {

/// Runs the personalized top-k baseline.
Result<Configuration> RunPersonalizedTopK(const SvgicInstance& instance);

}  // namespace savg
