#include "baselines/grf.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "util/random.h"

namespace savg {

Result<Configuration> RunGrf(const SvgicInstance& instance,
                             const GrfOptions& options,
                             Partition* partition_out) {
  SAVG_RETURN_NOT_OK(instance.Validate());
  const int n = instance.num_users();
  const int m = instance.num_items();
  const int k = instance.num_slots();
  Rng rng(options.seed);

  int g = options.num_clusters > 0 ? options.num_clusters
                                   : std::max(2, n / 5);
  g = std::min(g, n);

  // L2-normalized preference vectors.
  std::vector<std::vector<double>> vec(n, std::vector<double>(m, 0.0));
  for (UserId u = 0; u < n; ++u) {
    double norm = 0.0;
    for (ItemId c = 0; c < m; ++c) {
      vec[u][c] = instance.p(u, c);
      norm += vec[u][c] * vec[u][c];
    }
    norm = std::sqrt(norm);
    if (norm > 0) {
      for (ItemId c = 0; c < m; ++c) vec[u][c] /= norm;
    }
  }

  // k-means with random distinct seeds.
  auto seeds = rng.SampleWithoutReplacement(n, g);
  std::vector<std::vector<double>> centroid(g);
  for (int i = 0; i < g; ++i) centroid[i] = vec[seeds[i]];
  std::vector<int> assign(n, 0);
  for (int round = 0; round < options.max_kmeans_rounds; ++round) {
    bool changed = false;
    for (UserId u = 0; u < n; ++u) {
      int best = assign[u];
      double best_d = std::numeric_limits<double>::infinity();
      for (int i = 0; i < g; ++i) {
        double d = 0.0;
        for (ItemId c = 0; c < m; ++c) {
          const double diff = vec[u][c] - centroid[i][c];
          d += diff * diff;
        }
        if (d < best_d) {
          best_d = d;
          best = i;
        }
      }
      if (best != assign[u]) {
        assign[u] = best;
        changed = true;
      }
    }
    if (!changed && round > 0) break;
    for (int i = 0; i < g; ++i) {
      std::fill(centroid[i].begin(), centroid[i].end(), 0.0);
    }
    std::vector<int> count(g, 0);
    for (UserId u = 0; u < n; ++u) {
      ++count[assign[u]];
      for (ItemId c = 0; c < m; ++c) centroid[assign[u]][c] += vec[u][c];
    }
    for (int i = 0; i < g; ++i) {
      if (count[i] == 0) {
        // Re-seed an empty cluster at a random user.
        centroid[i] = vec[rng.UniformInt(static_cast<uint64_t>(n))];
        continue;
      }
      for (ItemId c = 0; c < m; ++c) centroid[i][c] /= count[i];
    }
  }

  Partition partition;
  partition.community = assign;
  partition.num_communities = g;
  Normalize(&partition);

  // Per-cluster top-k by aggregate preference (no social awareness).
  Configuration config(n, k, m);
  for (const auto& members : partition.Groups()) {
    std::vector<std::pair<double, ItemId>> scored(m);
    for (ItemId c = 0; c < m; ++c) {
      double acc = 0.0;
      for (UserId u : members) acc += instance.p(u, c);
      scored[c] = {acc, c};
    }
    std::partial_sort(scored.begin(), scored.begin() + k, scored.end(),
                      [](const auto& a, const auto& b) {
                        if (a.first != b.first) return a.first > b.first;
                        return a.second < b.second;
                      });
    for (UserId u : members) {
      for (SlotId s = 0; s < k; ++s) {
        SAVG_RETURN_NOT_OK(config.Set(u, s, scored[s].second));
      }
    }
  }
  if (partition_out != nullptr) *partition_out = std::move(partition);
  return config;
}

}  // namespace savg
