// IP: the exact integer-programming baseline (Section 6.1), solved with the
// in-repo branch & bound instead of Gurobi.
//
// Uses the slot-expanded formulation (integrality is slot-sensitive: co-
// display requires alignment, so the compact LP cannot express the integer
// problem). The MIP is seeded with an AVG-D incumbent and a rounding
// heuristic on node LP solutions, mirroring how commercial solvers combine
// heuristics with the tree search.

#pragma once

#include "core/configuration.h"
#include "core/problem.h"
#include "lp/branch_and_bound.h"
#include "util/status.h"

namespace savg {

struct IpExactOptions {
  MipOptions mip;
  /// Seed the incumbent with an AVG-D solution before the tree search.
  bool seed_with_avg_d = true;
  /// Optional warm start for the root LP relaxation (not owned): the
  /// root_basis of a previous SolveIpExact on an instance with the same
  /// expanded-LP shape — e.g. the same instance at a different lambda, or
  /// the previous Figure 9(a) solver configuration. Overrides
  /// mip.root_warm_start when set.
  const LpBasis* root_warm_start = nullptr;
};

struct IpExactResult {
  Configuration config;
  double scaled_objective = 0.0;
  double best_bound = 0.0;
  bool proven_optimal = false;
  int64_t nodes_explored = 0;
  /// Total / root-only simplex pivots of the tree search, and whether the
  /// root LP reused the caller's warm-start basis.
  int64_t simplex_iterations = 0;
  int root_simplex_iterations = 0;
  bool root_warm_started = false;
  /// Root LP basis, reusable via IpExactOptions::root_warm_start.
  LpBasis root_basis;
  double solve_seconds = 0.0;
};

/// Solves SVGIC exactly (up to the configured node/time limits).
Result<IpExactResult> SolveIpExact(const SvgicInstance& instance,
                                   const IpExactOptions& options = {});

}  // namespace savg
