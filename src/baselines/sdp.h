// SDP: Social-aware Diverse and Preference selection (modeled after SDSSel
// [68], the paper's "subgroup-by-friendship" baseline).
//
// Pre-partitions the shopping group into socially tight subgroups by greedy
// modularity maximization on the friendship graph, then selects for each
// subgroup its top-k items by intra-subgroup aggregate utility (scaled
// preference plus intra-subgroup social weights), with a diversity pass
// that penalizes items too similar to ones already picked. The partition is
// static across slots — exactly the limitation (no CID flexibility) the
// paper contrasts AVG against.

#pragma once

#include "core/configuration.h"
#include "core/problem.h"
#include "graph/community.h"
#include "util/status.h"

namespace savg {

struct SdpOptions {
  /// Diversity penalty: an item's score is reduced by this factor times its
  /// preference-profile similarity to already selected items.
  double diversity_weight = 0.2;
  /// Lower bound on the number of communities (1 = let modularity decide).
  int min_communities = 1;
};

/// Runs the socially-tight-subgroup baseline. `partition_out` (optional)
/// receives the static partition used.
Result<Configuration> RunSdp(const SvgicInstance& instance,
                             const SdpOptions& options = {},
                             Partition* partition_out = nullptr);

}  // namespace savg
