#include "baselines/per.h"

#include <algorithm>
#include <vector>

namespace savg {

Result<Configuration> RunPersonalizedTopK(const SvgicInstance& instance) {
  SAVG_RETURN_NOT_OK(instance.Validate());
  const int m = instance.num_items();
  const int k = instance.num_slots();
  Configuration config(instance.num_users(), k, m);
  std::vector<std::pair<double, ItemId>> scored(m);
  for (UserId u = 0; u < instance.num_users(); ++u) {
    for (ItemId c = 0; c < m; ++c) {
      // Tie-break on item id for determinism.
      scored[c] = {instance.p(u, c), c};
    }
    std::partial_sort(scored.begin(), scored.begin() + k, scored.end(),
                      [](const auto& a, const auto& b) {
                        if (a.first != b.first) return a.first > b.first;
                        return a.second < b.second;
                      });
    for (SlotId s = 0; s < k; ++s) {
      SAVG_RETURN_NOT_OK(config.Set(u, s, scored[s].second));
    }
  }
  return config;
}

}  // namespace savg
