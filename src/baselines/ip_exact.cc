#include "baselines/ip_exact.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/avg_d.h"
#include "core/lp_formulation.h"
#include "core/objective.h"
#include "util/logging.h"

namespace savg {

namespace {

/// Translates a complete configuration into a feasible assignment of every
/// MIP variable (x binary; y/z at their implied maxima, which is optimal
/// since their objective coefficients are non-negative).
std::vector<double> ConfigToMipVector(const SvgicInstance& instance,
                                      const ExpandedLpMap& map, int num_vars,
                                      const Configuration& config) {
  std::vector<double> v(num_vars, 0.0);
  for (UserId u = 0; u < instance.num_users(); ++u) {
    for (SlotId s = 0; s < instance.num_slots(); ++s) {
      const ItemId c = config.At(u, s);
      if (c != kNoItem) v[map.XVar(u, s, c)] = 1.0;
    }
  }
  for (size_t pi = 0; pi < instance.pairs().size(); ++pi) {
    const FriendPair& pair = instance.pairs()[pi];
    for (size_t wi = 0; wi < pair.weights.size(); ++wi) {
      const ItemId c = pair.weights[wi].item;
      for (SlotId s = 0; s < instance.num_slots(); ++s) {
        if (config.CoDisplayedAt(pair.u, pair.v, c, s)) {
          v[map.y[pi][wi][s]] = 1.0;
        }
      }
      if (!map.z.empty()) {
        if (config.Displays(pair.u, c) && config.Displays(pair.v, c)) {
          v[map.z[pi][wi]] = 1.0;
        }
      }
    }
  }
  return v;
}

/// Rounds a fractional node solution: per (u, s) pick the eligible item
/// with the largest x value.
Configuration RoundNodeSolution(const SvgicInstance& instance,
                                const ExpandedLpMap& map,
                                const std::vector<double>& x) {
  const int m = instance.num_items();
  Configuration config(instance.num_users(), instance.num_slots(), m);
  for (UserId u = 0; u < instance.num_users(); ++u) {
    for (SlotId s = 0; s < instance.num_slots(); ++s) {
      ItemId best = kNoItem;
      double best_v = -1.0;
      for (ItemId c = 0; c < m; ++c) {
        if (config.Displays(u, c)) continue;
        const double v = x[map.XVar(u, s, c)];
        if (v > best_v) {
          best_v = v;
          best = c;
        }
      }
      Status st = config.Set(u, s, best);
      (void)st;
    }
  }
  return config;
}

}  // namespace

Result<IpExactResult> SolveIpExact(const SvgicInstance& instance,
                                   const IpExactOptions& options) {
  SAVG_RETURN_NOT_OK(instance.Validate());
  Timer timer;
  ExpandedLpMap map;
  auto lp = BuildExpandedLp(instance, &map);
  if (!lp.ok()) return lp.status();
  const int num_vars = lp->num_vars();

  std::vector<int> integer_vars;
  integer_vars.reserve(map.x.size());
  for (int var : map.x) integer_vars.push_back(var);

  MipOptions mip = options.mip;
  if (options.root_warm_start != nullptr) {
    mip.root_warm_start = options.root_warm_start;
  }
  std::vector<double> seed_vector;
  if (options.seed_with_avg_d && instance.lambda() > 0.0) {
    RelaxationOptions relax;
    auto frac = SolveRelaxation(instance, relax);
    if (frac.ok()) {
      auto avg_d = RunAvgD(instance, *frac);
      if (avg_d.ok()) {
        seed_vector =
            ConfigToMipVector(instance, map, num_vars, avg_d->config);
      }
    }
  }
  bool seed_used = false;
  mip.heuristic = [&](const std::vector<double>& node_x)
      -> std::optional<std::vector<double>> {
    if (!seed_used && !seed_vector.empty()) {
      seed_used = true;
      return seed_vector;
    }
    Configuration rounded = RoundNodeSolution(instance, map, node_x);
    return ConfigToMipVector(instance, map, num_vars, rounded);
  };

  auto sol = SolveMip(*lp, integer_vars, mip);
  if (!sol.ok()) return sol.status();

  IpExactResult result;
  result.config = Configuration(instance.num_users(), instance.num_slots(),
                                instance.num_items());
  for (UserId u = 0; u < instance.num_users(); ++u) {
    for (SlotId s = 0; s < instance.num_slots(); ++s) {
      for (ItemId c = 0; c < instance.num_items(); ++c) {
        if (sol->x[map.XVar(u, s, c)] > 0.5) {
          SAVG_RETURN_NOT_OK(result.config.Set(u, s, c));
          break;
        }
      }
    }
  }
  SAVG_RETURN_NOT_OK(result.config.CheckValid());
  result.scaled_objective = Evaluate(instance, result.config).ScaledTotal();
  result.best_bound = sol->best_bound;
  result.proven_optimal = sol->proven_optimal;
  result.nodes_explored = sol->nodes_explored;
  result.simplex_iterations = sol->simplex_iterations;
  result.root_simplex_iterations = sol->root_simplex_iterations;
  result.root_warm_started = sol->root_warm_started;
  result.root_basis = std::move(sol->root_basis);
  result.solve_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace savg
