#include "online/session.h"

#include <algorithm>

#include "core/csf.h"
#include "core/objective.h"
#include "obs/trace.h"
#include "obs/verify.h"
#include "online/basis_projection.h"
#include "util/logging.h"

namespace savg {

const char* ResolvePathName(ResolvePath path) {
  switch (path) {
    case ResolvePath::kCold:
      return "cold";
    case ResolvePath::kIncremental:
      return "incremental";
    case ResolvePath::kColdFallback:
      return "cold-fallback";
  }
  return "?";
}

Session::Session(SvgicInstance instance, SessionOptions options)
    : instance_(std::move(instance)),
      options_(options),
      rng_(options.seed),
      dirty_(instance_.num_users(), 0) {
  instance_.FinalizePairs();
}

Session::Session(SvgicInstance instance, SessionOptions options, RestoreTag)
    : instance_(std::move(instance)),
      options_(options),
      rng_(options.seed),
      dirty_(instance_.num_users(), 0) {
  // No FinalizePairs(): the restored instance carries the evolved pair
  // order; re-finalizing could reorder pairs and break bit-exact replay.
}

std::unique_ptr<Session> Session::FromState(SessionState state,
                                            SessionOptions options) {
  auto session = std::unique_ptr<Session>(
      new Session(std::move(state.instance), options, RestoreTag{}));
  session->config_ = std::move(state.config);
  session->basis_ = std::move(state.basis);
  session->keys_ = std::move(state.keys);
  session->valid_basis_ = state.valid_basis;
  session->num_resolves_ = state.num_resolves;
  session->rng_.RestoreState(state.rng);
  session->dirty_ = std::move(state.dirty);
  session->dirty_.resize(session->instance_.num_users(), 0);
  session->all_dirty_ = state.all_dirty;
  return session;
}

SessionState Session::CaptureState() const {
  SessionState state;
  state.instance = instance_;
  state.config = config_;
  state.basis = basis_;
  state.keys = keys_;
  state.valid_basis = valid_basis_;
  state.num_resolves = num_resolves_;
  state.rng = rng_.SaveState();
  state.dirty = dirty_;
  state.all_dirty = all_dirty_;
  return state;
}

void Session::MarkDirty(UserId u) {
  if (u >= 0 && u < static_cast<int>(dirty_.size())) dirty_[u] = 1;
}

std::vector<UserId> Session::CollectDirtyUsers() const {
  std::vector<UserId> users;
  if (all_dirty_) {
    users.resize(instance_.num_users());
    for (UserId u = 0; u < instance_.num_users(); ++u) users[u] = u;
  } else {
    for (UserId u = 0; u < static_cast<int>(dirty_.size()); ++u) {
      if (dirty_[u]) users.push_back(u);
    }
  }
  return users;
}

void Session::ClearDirty() {
  std::fill(dirty_.begin(), dirty_.end(), 0);
  all_dirty_ = false;
}

Status Session::ApplyPref(UserId u, ItemId c, double value) {
  if (u < 0 || u >= instance_.num_users()) {
    return Status::OutOfRange("unknown user");
  }
  if (c < 0 || c >= instance_.num_items()) {
    return Status::OutOfRange("unknown item");
  }
  if (value < 0.0) {
    return Status::InvalidArgument("preference must be >= 0");
  }
  instance_.set_p(u, c, value);
  MarkDirty(u);
  return Status::OK();
}

Status Session::ApplyTau(UserId u, UserId v, ItemId c,
                         double value) {
  if (u < 0 || u >= instance_.num_users() || v < 0 ||
      v >= instance_.num_users() || u == v) {
    return Status::OutOfRange("invalid user pair");
  }
  if (c < 0 || c >= instance_.num_items()) {
    return Status::OutOfRange("unknown item");
  }
  if (value < 0.0) {
    return Status::InvalidArgument("social utility must be >= 0");
  }
  EdgeId e = instance_.graph().FindEdge(u, v);
  if (e < 0) {
    SAVG_RETURN_NOT_OK(instance_.AddFriendship(u, v));
    e = instance_.graph().FindEdge(u, v);
  }
  instance_.SetTauValue(e, c, value);
  MarkDirty(u);
  MarkDirty(v);
  return Status::OK();
}

Status Session::ApplyFriend(UserId u, UserId v) {
  if (u < 0 || u >= instance_.num_users() || v < 0 ||
      v >= instance_.num_users() || u == v) {
    return Status::OutOfRange("invalid user pair");
  }
  if (instance_.graph().HasEdge(u, v) && instance_.graph().HasEdge(v, u)) {
    return Status::OK();  // already friends
  }
  SAVG_RETURN_NOT_OK(instance_.AddFriendship(u, v));
  MarkDirty(u);
  MarkDirty(v);
  return Status::OK();
}

UserId Session::ApplyJoin() {
  const UserId u = instance_.AddUser();
  dirty_.resize(instance_.num_users(), 0);
  MarkDirty(u);
  return u;
}

Status Session::ApplyLeave(UserId u) {
  if (u < 0 || u >= instance_.num_users()) {
    return Status::OutOfRange("unknown user");
  }
  instance_.DeactivateUser(u);
  MarkDirty(u);
  // Neighbors lose their pair weights with u; their LP region changes and
  // their units are worth re-rounding.
  for (UserId v : instance_.graph().OutNeighbors(u)) MarkDirty(v);
  for (UserId v : instance_.graph().InNeighbors(u)) MarkDirty(v);
  return Status::OK();
}

Status Session::ApplyLambda(double lambda) {
  if (lambda <= 0.0 || lambda > 1.0) {
    return Status::InvalidArgument(
        "session lambda must stay in (0, 1] (the compact LP needs "
        "lambda > 0)");
  }
  instance_.set_lambda(lambda);
  // Objective coefficients change everywhere: re-round every user. The LP
  // shape is untouched, so the basis still warm-starts perfectly.
  MarkAllDirty();
  return Status::OK();
}

ItemId Session::ApplyAddItem() {
  // A brand-new item has no utility for anyone, so no LP column appears
  // and no user needs re-rounding until preferences arrive for it.
  return instance_.AddItem();
}

Status Session::ApplyRetireItem(ItemId c) {
  if (c < 0 || c >= instance_.num_items()) {
    return Status::OutOfRange("unknown item");
  }
  // Users who preferred c lose an LP column; users displaying c must be
  // re-rounded; users with social weight on c are returned by RetireItem.
  for (UserId u = 0; u < instance_.num_users(); ++u) {
    if (instance_.p(u, c) > 0.0) MarkDirty(u);
    // c can exceed the served configuration's item range when the item was
    // added after the last Resolve; such an item is displayed nowhere.
    if (HasConfig() && u < config_.num_users() && c < config_.num_items() &&
        config_.Displays(u, c)) {
      MarkDirty(u);
    }
  }
  for (UserId u : instance_.RetireItem(c)) MarkDirty(u);
  return Status::OK();
}

Result<CommandOutcome> Session::Apply(const SessionCommand& command) {
  // A poisoned journal fail-stops the session BEFORE the mutation: one
  // command (the one whose append failed) is applied but un-journaled, and
  // letting more commands through would silently widen that replay gap.
  // The journal recovers by snapshotting the live state (re-anchoring a
  // clean epoch), after which healthy() turns true again.
  if (journal_ != nullptr && !journal_->healthy()) {
    return Status::FailedPrecondition(
        "session journal failed; refusing commands until a snapshot "
        "re-anchors durability");
  }
  auto outcome = ApplyImpl(command);
  if (!outcome.ok() || journal_ == nullptr) return outcome;
  // Journal AFTER the mutation: a rejected command changed nothing (every
  // Apply* validates before mutating; a failed Resolve restores its entry
  // state), so the changelog holds exactly the applied stream and replays
  // bit-for-bit. A failed append surfaces as the command's status — the
  // caller must not treat un-journaled state as durable.
  SAVG_RETURN_NOT_OK(journal_->Append(command, outcome->resolved));
  return outcome;
}

Result<CommandOutcome> Session::ApplyImpl(const SessionCommand& command) {
  CommandOutcome outcome;
  switch (command.type) {
    case CommandType::kPref:
      SAVG_RETURN_NOT_OK(ApplyPref(command.u, command.c, command.value));
      return outcome;
    case CommandType::kTau:
      SAVG_RETURN_NOT_OK(
          ApplyTau(command.u, command.v, command.c, command.value));
      return outcome;
    case CommandType::kLambda:
      SAVG_RETURN_NOT_OK(ApplyLambda(command.value));
      return outcome;
    case CommandType::kJoin:
      outcome.assigned_id = ApplyJoin();
      return outcome;
    case CommandType::kFriend:
      SAVG_RETURN_NOT_OK(ApplyFriend(command.u, command.v));
      return outcome;
    case CommandType::kLeave:
      SAVG_RETURN_NOT_OK(ApplyLeave(command.u));
      return outcome;
    case CommandType::kAddItem:
      outcome.assigned_id = ApplyAddItem();
      return outcome;
    case CommandType::kRetireItem:
      SAVG_RETURN_NOT_OK(ApplyRetireItem(command.c));
      return outcome;
    case CommandType::kResolve: {
      auto resolved = Resolve();
      if (!resolved.ok()) return resolved.status();
      outcome.resolved = true;
      outcome.report = *resolved;
      return outcome;
    }
  }
  return Status::InvalidArgument("unknown command type");
}

Status Session::ApplyEvent(const SessionEvent& event, ResolveReport* report) {
  auto outcome = Apply(event);
  if (!outcome.ok()) return outcome.status();
  if (outcome->resolved && report != nullptr) *report = outcome->report;
  return Status::OK();
}

Result<ResolveReport> Session::Resolve(bool force_cold) {
  // A failed resolve must be a true no-op on served state: config_, basis_
  // and frac_ only commit at the success point of the resolve paths, dirty
  // flags are kept (ClearDirty runs on success only), and the rounding-seed
  // RNG draw plus the RefinalizePairs() evolution of the instance's pair
  // order are rolled back here — so a retry, and a replay of the changelog
  // (which never journals failed resolves), see the identical random stream
  // AND the identical pair order (the durability state digest covers both).
  const RngState entry_rng = rng_.SaveState();
  std::vector<FriendPair> entry_pairs = instance_.pairs();
  const int entry_finalized = instance_.finalized_edge_count();
  auto report = options_.use_sharding && instance_.lambda() > 0.0 &&
                        instance_.lambda() < 1.0
                    ? ResolveSharded(force_cold)
                    : ResolveMonolithic(force_cold);
  if (!report.ok()) {
    rng_.RestoreState(entry_rng);
    instance_.RestoreFinalizedPairs(std::move(entry_pairs), entry_finalized);
  }
  return report;
}

double Session::KeptUtilityShare(const FractionalSolution& frac,
                                 const std::vector<char>& keep) const {
  if (!HasConfig()) return 1.0;
  const int n = std::min(frac.num_users, config_.num_users());
  const int m = frac.num_items;
  const int k = std::min(frac.num_slots, config_.num_slots());
  double mass = 0.0;
  int units = 0;
  for (UserId u = 0; u < n; ++u) {
    if (u < static_cast<int>(keep.size()) && !keep[u]) continue;
    for (SlotId s = 0; s < k; ++s) {
      const ItemId c = config_.At(u, s);
      if (c == kNoItem || c >= m) continue;
      mass += frac.x[static_cast<size_t>(u) * m + c];
      ++units;
    }
  }
  return units > 0 ? mass / units : 1.0;
}

Result<ResolveReport> Session::ResolveMonolithic(bool force_cold) {
  Timer total_timer;
  TraceContext* trace = CurrentTrace();
  const std::vector<UserId> dirty = CollectDirtyUsers();
  instance_.RefinalizePairs(dirty);
  SAVG_RETURN_NOT_OK(instance_.Validate());

  const int n = instance_.num_users();
  const int m = instance_.num_items();
  const int k = instance_.num_slots();

  const int64_t build_start = trace != nullptr ? trace->NowNanos() : 0;
  CompactLpMap map;
  auto lp = BuildCompactLp(instance_, &map);
  if (!lp.ok()) return lp.status();
  CompactLpKeys keys = BuildCompactLpKeys(instance_, map, *lp);
  if (trace != nullptr) {
    trace->AddSpan("lp.build", trace->CurrentSpan(), build_start,
                   trace->NowNanos() - build_start);
  }

  ResolveReport report;
  report.num_dirty_users = static_cast<int>(dirty.size());

  // Path decision: project the cached basis and measure the perturbation.
  LpBasis projected;
  if (valid_basis_ && !force_cold) {
    BasisProjectionDelta delta;
    projected = ProjectCompactBasis(basis_, keys_, keys, &delta);
    report.changed_fraction = delta.ChangedFraction();
    report.path = report.changed_fraction <= options_.cold_fraction_threshold
                      ? ResolvePath::kIncremental
                      : ResolvePath::kColdFallback;
  } else {
    report.path = ResolvePath::kCold;
  }

  Timer lp_timer;
  auto sol = report.path == ResolvePath::kIncremental
                 ? SolveLp(*lp, options_.simplex, &projected)
                 : SolveLp(*lp, options_.simplex);
  if (!sol.ok() && report.path == ResolvePath::kIncremental) {
    // A numerically unusable projection must not take the session down.
    report.path = ResolvePath::kColdFallback;
    sol = SolveLp(*lp, options_.simplex);
  }
  if (!sol.ok()) return sol.status();
  report.lp_seconds = lp_timer.ElapsedSeconds();
  report.warm_started = sol->warm_started;
  report.pivots = sol->iterations;
  report.phase1_pivots = sol->phase1_iterations;
  report.lp_objective = sol->objective;
  report.lp_stats = sol->stats;
  report.eta_chain_length = sol->stats.eta_count;
  report.refactorizations = sol->stats.refactorizations;
  if (trace != nullptr) {
    // Deterministic solve attributes on the enclosing session.apply span
    // (timings live on the child spans; these are bit-stable counters).
    const int span = trace->CurrentSpan();
    trace->AddCounter(span, "pivots", report.pivots);
    trace->AddCounter(span, "phase1_pivots", report.phase1_pivots);
    trace->AddCounter(span, "dirty_users", report.num_dirty_users);
    trace->AddCounter(span, "eta_chain", report.eta_chain_length);
    trace->AddLabel(span, "path", ResolvePathName(report.path));
  }

  // Extract the compact fractional solution into a LOCAL: frac_ is served
  // state and must survive untouched if the rounding below fails (the
  // resolve-failure no-op guarantee) — it commits with basis_ at the end.
  FractionalSolution frac;
  frac.num_users = n;
  frac.num_items = m;
  frac.num_slots = k;
  frac.x.assign(static_cast<size_t>(n) * m, 0.0);
  for (UserId u = 0; u < n; ++u) {
    for (ItemId c = 0; c < m; ++c) {
      const int var = map.XVar(u, c, m);
      if (var >= 0) frac.x[static_cast<size_t>(u) * m + c] = sol->x[var];
    }
  }
  frac.lp_objective = sol->objective;
  frac.exact = true;
  frac.simplex_iterations = sol->iterations;
  frac.warm_started = sol->warm_started;
  frac.lp_stats = sol->stats;
  frac.BuildSupporters(options_.prune_tolerance);

  // Re-round: keep the previous configuration's units for clean users (on
  // the incremental paths), leaving only dirty users' units eligible for
  // the CSF sampling loop. A periodic full re-round frees every unit
  // instead (the LP above still warm-started), bounding the drift stale
  // clean units accumulate over long mutation streams.
  Timer rounding_timer;
  {
    TraceScope round_span("csf.round");
    report.full_reround = PeriodicFullReround();
    std::vector<char> is_dirty(n, 0);
    for (UserId u : dirty) is_dirty[u] = 1;
    bool keep_clean_units = !force_cold && !report.full_reround &&
                            HasConfig() &&
                            report.path != ResolvePath::kCold;
    // Drift trigger: when the fresh LP no longer backs the clean users'
    // stale units, a full re-round now beats waiting for the periodic one.
    if (keep_clean_units && options_.reround_utility_threshold > 0.0) {
      std::vector<char> keep(n, 1);
      for (UserId u : dirty) keep[u] = 0;
      report.kept_utility_share = KeptUtilityShare(frac, keep);
      if (report.kept_utility_share < options_.reround_utility_threshold) {
        report.drift_reround = true;
        report.full_reround = true;
        keep_clean_units = false;
      }
    }
    CsfState state(instance_, frac, options_.rounding.size_cap);
    int kept_units = 0;
    if (keep_clean_units) {
      for (UserId u = 0; u < std::min(n, config_.num_users()); ++u) {
        if (is_dirty[u]) continue;
        for (SlotId s = 0; s < k; ++s) {
          const ItemId c = config_.At(u, s);
          if (c == kNoItem || c >= m) continue;
          if (state.AssignUnit(u, s, c).ok()) ++kept_units;
        }
      }
    }
    report.rerounded_units = n * k - kept_units;

    AvgOptions rounding = options_.rounding;
    rounding.seed = rng_.Next();
    auto rounded = RunCsfSampling(&state, rounding);
    if (!rounded.ok()) return rounded.status();
    config_ = std::move(rounded->config);
    round_span.Counter("rerounded_units", report.rerounded_units);
    round_span.Counter("full_reround", report.full_reround ? 1 : 0);
  }
  report.rounding_seconds = rounding_timer.ElapsedSeconds();
  report.scaled_total = Evaluate(instance_, config_).ScaledTotal();

  if (options_.verifier != nullptr &&
      options_.verifier->ShouldVerify(ForceVerifyRequested())) {
    // Snapshot everything the background check needs; the just-built LP
    // and the solution vectors are dead after this function, so they move
    // into the job instead of copying.
    VerifyJob job;
    job.session_id = options_.verifier_session_id;
    job.instance = instance_;
    job.config = config_;
    job.reported_scaled_total = report.scaled_total;
    job.has_lp = true;
    job.lp = std::move(*lp);
    job.x = std::move(sol->x);
    job.duals = std::move(sol->dual_values);
    options_.verifier->Enqueue(std::move(job));
  }

  frac_ = std::move(frac);
  basis_ = std::move(sol->basis);
  keys_ = std::move(keys);
  valid_basis_ = true;
  ClearDirty();
  ++num_resolves_;
  report.total_seconds = total_timer.ElapsedSeconds();
  return report;
}

Result<ResolveReport> Session::ResolveSharded(bool force_cold) {
  Timer total_timer;
  const std::vector<UserId> dirty = CollectDirtyUsers();
  instance_.RefinalizePairs(dirty);
  SAVG_RETURN_NOT_OK(instance_.Validate());

  ResolveReport report;
  report.num_dirty_users = static_cast<int>(dirty.size());
  report.full_reround = PeriodicFullReround();

  const bool first_solve = coordinator_ == nullptr;
  if (first_solve) {
    ShardSolveOptions sharding = options_.sharding;
    sharding.rounding = options_.rounding;
    coordinator_ =
        std::make_unique<ShardCoordinator>(&instance_, sharding);
    shard_pool_ = std::make_unique<ThreadPool>(sharding.num_workers);
    SAVG_RETURN_NOT_OK(coordinator_->Build());
  } else {
    SAVG_RETURN_NOT_OK(coordinator_->Refresh(dirty));
  }
  if (force_cold || all_dirty_) coordinator_->MarkAllDirty();
  report.path = first_solve || force_cold
                    ? ResolvePath::kCold
                    : ResolvePath::kIncremental;

  ShardSolveStats stats;
  SAVG_RETURN_NOT_OK(coordinator_->SolveFractional(shard_pool_.get(), &stats));
  // Re-round the shards whose x rows actually changed: the dirty set plus
  // anything adaptive widening pulled in.
  const std::vector<int>& reround_shards = coordinator_->LastResolvedShards();
  report.num_shards = stats.num_shards;
  report.num_dirty_shards = stats.dirty_shards;
  report.dual_rounds = stats.dual_rounds;
  report.shard_gap = stats.gap;
  report.pivots = static_cast<int>(stats.lp_pivots);
  report.lp_objective = stats.primal_objective;
  report.lp_seconds = stats.lp_seconds;
  if (TraceContext* trace = CurrentTrace()) {
    const int span = trace->CurrentSpan();
    trace->AddCounter(span, "pivots", report.pivots);
    trace->AddCounter(span, "dirty_users", report.num_dirty_users);
    trace->AddCounter(span, "shards", report.num_shards);
    trace->AddCounter(span, "dirty_shards", report.num_dirty_shards);
    trace->AddCounter(span, "dual_rounds", report.dual_rounds);
    trace->AddLabel(span, "path", ResolvePathName(report.path));
  }

  // Drift trigger (same policy as the monolithic path): clean shards'
  // users keep their units only while the fresh stitched relaxation still
  // backs them.
  if (!force_cold && !report.full_reround && HasConfig() && !first_solve &&
      options_.reround_utility_threshold > 0.0) {
    std::vector<char> keep(instance_.num_users(), 1);
    const std::vector<int>& shard_of = coordinator_->plan().shard_of;
    std::vector<char> rerounds(coordinator_->num_shards(), 0);
    for (int shard : reround_shards) rerounds[shard] = 1;
    for (UserId u = 0; u < instance_.num_users(); ++u) {
      if (u < static_cast<int>(shard_of.size()) && rerounds[shard_of[u]]) {
        keep[u] = 0;
      }
    }
    report.kept_utility_share = KeptUtilityShare(coordinator_->frac(), keep);
    if (report.kept_utility_share < options_.reround_utility_threshold) {
      report.drift_reround = true;
      report.full_reround = true;
    }
  }
  const Configuration* previous =
      !force_cold && !report.full_reround && HasConfig() && !first_solve
          ? &config_
          : nullptr;
  int rerounded = 0;
  SAVG_ASSIGN_OR_RETURN(
      config_, coordinator_->Round(previous, reround_shards, rng_.Next(),
                                   shard_pool_.get(), &stats, &rerounded));
  report.rerounded_units = rerounded;
  report.rounding_seconds = stats.rounding_seconds;
  report.scaled_total = Evaluate(instance_, config_).ScaledTotal();
  frac_ = coordinator_->frac();

  if (options_.verifier != nullptr &&
      options_.verifier->ShouldVerify(ForceVerifyRequested())) {
    // No single LP exists on the sharded path; the audit covers
    // configuration validity and the recomputed objective only.
    VerifyJob job;
    job.session_id = options_.verifier_session_id;
    job.instance = instance_;
    job.config = config_;
    job.reported_scaled_total = report.scaled_total;
    options_.verifier->Enqueue(std::move(job));
  }

  ClearDirty();
  ++num_resolves_;
  report.total_seconds = total_timer.ElapsedSeconds();
  return report;
}

}  // namespace savg
