// Multiplexes many live Sessions over one worker pool.
//
// Sessions are single-threaded objects; the manager guarantees that the
// events of one session are applied in submission order by at most one
// worker at a time (per-session serialization), while distinct sessions
// run concurrently on util/thread_pool. Submit() never blocks: it enqueues
// the event and schedules a drain task when the session is idle; a running
// drain task keeps consuming its session's queue until empty, so each
// session's event order is exactly its Submit() order regardless of the
// worker count.
//
// Resolve reports are collected per session in event order (the serving
// telemetry the bench aggregates into p50/p99 latencies).

#pragma once

#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "online/event_log.h"
#include "online/session.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace savg {

class SessionManager {
 public:
  /// Starts `num_workers` pool threads (<= 0 = all cores).
  explicit SessionManager(int num_workers = 0);
  /// Drains all pending events, then joins the workers.
  ~SessionManager();

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Registers a live session; returns its id. The session's pairs are
  /// finalized by the Session constructor.
  int CreateSession(SvgicInstance instance, SessionOptions options = {});

  int num_sessions() const;

  /// Enqueues one event for `session_id`. Never blocks. Event application
  /// errors are recorded (see FirstError) without stopping the stream.
  Status Submit(int session_id, const SessionEvent& event);

  /// Blocks until every submitted event has been applied.
  void Drain();

  /// Read access; only safe after Drain() (or before any Submit).
  const Session& session(int session_id) const;
  /// Resolve reports of the session, in event order.
  std::vector<ResolveReport> reports(int session_id) const;
  /// First event-application error across all sessions, or OK.
  Status FirstError() const;

 private:
  struct Entry {
    std::mutex mu;
    std::unique_ptr<Session> session;
    std::deque<SessionEvent> queue;
    bool running = false;  ///< a drain task owns this session right now
    std::vector<ResolveReport> reports;
    Status first_error = Status::OK();
  };

  void DrainEntry(Entry* entry);

  mutable std::mutex mu_;  ///< guards entries_ growth
  std::vector<std::unique_ptr<Entry>> entries_;
  ThreadPool pool_;
};

}  // namespace savg
