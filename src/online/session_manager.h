// Multiplexes many live Sessions over one worker pool.
//
// Sessions are single-threaded objects; the manager guarantees that the
// commands of one session are applied in submission order by at most one
// worker at a time (per-session serialization), while distinct sessions
// run concurrently on util/thread_pool. Submit() never blocks: it enqueues
// the command and schedules a drain task when the session is idle; a
// running drain task keeps consuming its session's queue until empty, so
// each session's command order is exactly its Submit() order regardless of
// the worker count.
//
// Submit() optionally takes a completion callback invoked (on the worker
// thread) with the command's Status and CommandOutcome — the serving
// front-end (src/serve/) uses this to answer wire requests.
//
// Coalescing (SessionManagerOptions::coalesce_resolves): when a kResolve
// command is popped while more commands are still pending for the same
// session, the resolve is deferred — the pending mutations are applied
// first and ONE Resolve() then answers every deferred resolve request with
// the same report (CommandOutcome::coalesced counts the folded requests).
// Each answered request therefore sees a configuration at least as fresh
// as the state it asked about. Final session state is identical to the
// uncoalesced order because mutations commute with resolve deferral: the
// folded resolves see the union of the mutations they would have seen
// one-by-one.
//
// Resolve reports are collected per session in event order (the serving
// telemetry the bench aggregates into p50/p99 latencies).

#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "metrics/registry.h"
#include "obs/trace.h"
#include "online/event_log.h"
#include "online/session.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace savg {

class SessionStore;
class SessionJournal;

struct SessionManagerOptions {
  /// Pool threads (<= 0 = all cores).
  int num_workers = 0;
  /// Fold pending resolves of one session into a single Resolve() (see
  /// class comment). Off by default: library users expect one Resolve per
  /// submitted kResolve; the serving front-end turns it on.
  bool coalesce_resolves = false;
  /// Solver-health telemetry sink: when set, every resolve's report feeds
  /// the lp.* / resolve.* / session.* / shard.* metrics (eta-chain length,
  /// Bland/stall activations, cold fallbacks, drift re-rounds, dual-gap
  /// rounds — see the metric catalog in README). nullptr disables.
  MetricsRegistry* metrics = nullptr;
  /// Durability (src/durability/): when set, every created/adopted session
  /// gets a journal attached (its Apply() stream lands in a changelog) and
  /// the drain tasks take snapshots in-band when the journal's count/time
  /// trigger fires — no separate snapshot thread, and a session is only
  /// ever snapshotted by the task that owns it. nullptr disables.
  SessionStore* store = nullptr;
};

/// Point-in-time view of one live session (the server's status command).
/// All fields are maintained under the per-session lock, so a snapshot is
/// consistent even while a drain task is mutating the session.
struct SessionStats {
  int session_id = -1;
  int num_users = 0;
  int num_items = 0;
  /// Commands applied so far (including resolves).
  int64_t commands_applied = 0;
  /// Resolve() calls actually performed.
  int64_t resolves = 0;
  /// Resolve requests answered by another request's Resolve() (coalesced
  /// away; 0 unless coalesce_resolves is on).
  int64_t resolves_coalesced = 0;
  /// Commands waiting in this session's queue right now.
  size_t queue_depth = 0;
  /// Scaled total utility of the last successful resolve.
  double last_scaled_total = 0.0;
  Status first_error = Status::OK();
};

/// Completion of one submitted command, invoked on the worker thread.
using ApplyCallback =
    std::function<void(const Status&, const CommandOutcome&)>;

class SessionManager {
 public:
  /// Starts `num_workers` pool threads (<= 0 = all cores).
  explicit SessionManager(int num_workers = 0)
      : SessionManager(SessionManagerOptions{num_workers, false}) {}
  explicit SessionManager(SessionManagerOptions options);
  /// Drains all pending commands, then joins the workers.
  ~SessionManager();

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Registers a live session; returns its id. The session's pairs are
  /// finalized by the Session constructor.
  int CreateSession(SvgicInstance instance, SessionOptions options = {});

  /// Registers a session rebuilt by the RecoveryManager. The journal (when
  /// a store is configured) re-attaches at `epoch` with sequence
  /// `applied_seq`, so the replayed history is never appended twice.
  /// Sessions must be adopted in recovered-id order before any
  /// CreateSession (ids are dense).
  int AdoptSession(std::unique_ptr<Session> session, uint32_t epoch,
                   uint64_t applied_seq);

  /// Flushes every session's journal — final snapshot per the store's
  /// policy, else fsync. Call after Drain() (no drain task may own a
  /// session). No-op without a store.
  Status FlushDurability();

  int num_sessions() const;
  /// Ids of every live session (dense, in creation order).
  std::vector<int> ListSessions() const;
  /// Stats snapshot of one session; safe to call while commands run.
  Result<SessionStats> GetStats(int session_id) const;

  /// Enqueues one command for `session_id`. Never blocks. Application
  /// errors are recorded (see FirstError) without stopping the stream;
  /// `done`, when given, is invoked on the worker thread once the command
  /// (or the resolve that coalesced it) completes. `trace`, when given,
  /// collects the request's spans: queue wait ("admission.wait"),
  /// coalesce defer, and — via the thread-local CurrentTrace() set around
  /// Session::Apply — the session/LP/rounding spans underneath
  /// "session.apply". A coalesced-away resolve keeps its own trace (defer
  /// span only); the solve's spans land on the request that ran it.
  /// `force_verify` requests post-solve self-verification of the resolve
  /// answering this command (obs/verify.h; no-op unless the session has a
  /// verifier). A coalesced group verifies when ANY folded request asked.
  Status Submit(int session_id, const SessionCommand& command,
                ApplyCallback done = nullptr,
                std::shared_ptr<TraceContext> trace = nullptr,
                bool force_verify = false);

  /// Blocks until every submitted command has been applied.
  void Drain();

  /// Read access; only safe after Drain() (or before any Submit).
  const Session& session(int session_id) const;
  /// Resolve reports of the session, in event order.
  std::vector<ResolveReport> reports(int session_id) const;
  /// First command-application error across all sessions, or OK.
  Status FirstError() const;

 private:
  struct Pending {
    SessionCommand command;
    ApplyCallback done;
    std::shared_ptr<TraceContext> trace;
    /// Trace offset at Submit (start of the "admission.wait" span).
    int64_t enqueue_nanos = 0;
    bool force_verify = false;
  };

  /// One resolve request awaiting RunResolve (deferred by coalescing, or
  /// about to run immediately).
  struct ResolveWaiter {
    ApplyCallback done;
    std::shared_ptr<TraceContext> trace;
    /// Trace offset when the request was popped (start of the defer span).
    int64_t defer_start_nanos = 0;
    bool deferred = false;
    bool force_verify = false;
  };

  /// Cached handles for the solver-health metrics (registry lookups take
  /// a mutex; resolves happen thousands of times a second).
  struct SolverMetrics {
    Counter* pivots = nullptr;
    Counter* phase1_pivots = nullptr;
    Counter* phase1_reentries = nullptr;
    Counter* bland_pivots = nullptr;
    Counter* dual_pivots = nullptr;
    Counter* refactorizations = nullptr;
    Counter* presolve_cols_removed = nullptr;
    Counter* resolve_cold = nullptr;
    Counter* resolve_incremental = nullptr;
    Counter* resolve_cold_fallback = nullptr;
    Counter* resolve_failures = nullptr;
    Counter* full_rerounds = nullptr;
    Counter* drift_rerounds = nullptr;
    Counter* shard_dual_rounds = nullptr;
    Gauge* eta_chain = nullptr;
    Gauge* kept_share_ppm = nullptr;
    Gauge* shard_gap_ppm = nullptr;
  };

  struct Entry {
    std::mutex mu;
    std::unique_ptr<Session> session;
    std::deque<Pending> queue;
    bool running = false;  ///< a drain task owns this session right now
    std::vector<ResolveReport> reports;
    SessionStats stats;
    /// Durability journal (owned by the store; null without one).
    SessionJournal* journal = nullptr;
  };

  void DrainEntry(Entry* entry);
  /// Attaches a durability journal to a just-created entry (under mu_).
  void AttachJournal(Entry* entry, int id, uint32_t epoch,
                     uint64_t applied_seq);
  /// In-band snapshot check after a command completed; the calling drain
  /// task still owns the session.
  void MaybeSnapshot(Entry* entry);
  /// Runs one Resolve() answering `waiters` deferred resolve requests
  /// plus stats/report bookkeeping. Called with no locks held.
  void RunResolve(Entry* entry, std::vector<ResolveWaiter>* waiters);
  /// Feeds one resolve outcome into the solver-health metrics (no-op
  /// without SessionManagerOptions::metrics).
  void RecordResolveMetrics(const Status& status,
                            const ResolveReport& report);

  SessionManagerOptions options_;
  SolverMetrics solver_metrics_;
  mutable std::mutex mu_;  ///< guards entries_ growth
  std::vector<std::unique_ptr<Entry>> entries_;
  ThreadPool pool_;
};

}  // namespace savg
