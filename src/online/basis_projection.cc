#include "online/basis_projection.h"

#include <unordered_map>

namespace savg {

LpBasis ProjectCompactBasis(const LpBasis& old_basis,
                            const CompactLpKeys& old_keys,
                            const CompactLpKeys& new_keys,
                            BasisProjectionDelta* delta) {
  BasisProjectionDelta d;
  LpBasis projected;
  projected.structural.assign(new_keys.cols.size(),
                              VarBasisStatus::kNonbasicLower);
  projected.logical.assign(new_keys.rows.size(), VarBasisStatus::kBasic);

  std::unordered_map<uint64_t, VarBasisStatus> old_cols;
  old_cols.reserve(old_keys.cols.size());
  for (size_t j = 0; j < old_keys.cols.size(); ++j) {
    old_cols.emplace(old_keys.cols[j], old_basis.structural[j]);
  }
  for (size_t j = 0; j < new_keys.cols.size(); ++j) {
    auto it = old_cols.find(new_keys.cols[j]);
    if (it == old_cols.end()) {
      ++d.new_cols;
      continue;
    }
    projected.structural[j] = it->second;
    ++d.surviving_cols;
    old_cols.erase(it);
  }
  d.dropped_cols = static_cast<int>(old_cols.size());

  std::unordered_map<uint64_t, VarBasisStatus> old_rows;
  old_rows.reserve(old_keys.rows.size());
  for (size_t i = 0; i < old_keys.rows.size(); ++i) {
    old_rows.emplace(old_keys.rows[i], old_basis.logical[i]);
  }
  for (size_t i = 0; i < new_keys.rows.size(); ++i) {
    auto it = old_rows.find(new_keys.rows[i]);
    if (it == old_rows.end()) {
      ++d.new_rows;
      continue;
    }
    projected.logical[i] = it->second;
    old_rows.erase(it);
  }
  d.dropped_rows = static_cast<int>(old_rows.size());

  if (delta != nullptr) *delta = d;
  return projected;
}

}  // namespace savg
