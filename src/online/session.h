// A live SVGIC serving session with incremental warm-started re-solve.
//
// The paper's scenario is inherently online: shoppers join a VR store,
// browse, befriend each other and leave while the co-display configuration
// must stay near-optimal. A Session owns a mutable SvgicInstance, the
// currently served k-configuration and the last compact-LP basis. The
// mutation API marks dirty regions; Resolve() re-optimizes incrementally:
//
//   1. RefinalizePairs() updates only the pairs incident to dirty users,
//   2. the cached simplex basis is projected onto the mutated LP
//      (online/basis_projection.h) and warm-starts the re-solve — the
//      composite phase 1 repairs the perturbed region in a few pivots,
//   3. CSF rounding re-runs only for the dirty users: the previous
//      configuration's untouched units are pre-assigned, so the sampling
//      loop (core/avg.h RunCsfSampling) can only fill dirty users' slots,
//
// falling back to a cold solve when the perturbation is too large (the
// changed-column fraction exceeds SessionOptions::cold_fraction_threshold)
// or the warm solve fails. Each Resolve() reports which path ran plus the
// pivot counts, so serving telemetry can track warm-start effectiveness.
//
// Sessions are not thread-safe; the SessionManager serializes per-session
// access while running many sessions concurrently.

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/avg.h"
#include "core/configuration.h"
#include "core/fractional_solution.h"
#include "core/lp_formulation.h"
#include "core/problem.h"
#include "lp/simplex.h"
#include "online/event_log.h"
#include "shard/shard_solve.h"
#include "util/random.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace savg {

class SolutionVerifier;

struct SessionOptions {
  SimplexOptions simplex;
  /// Rounding knobs; the per-resolve seed is derived from `seed`.
  AvgOptions rounding;
  uint64_t seed = 1;
  /// Supporter pruning threshold (as in RelaxationOptions).
  double prune_tolerance = 1e-9;
  /// Cold-solve fallback: re-solve from scratch when more than this
  /// fraction of the compact LP's columns changed identity since the
  /// cached basis (projection would mostly seed a cold basis anyway).
  double cold_fraction_threshold = 0.3;
  /// Periodic full re-round: every this many resolves the whole
  /// configuration is re-rounded (the LP still warm-starts), bounding the
  /// rounding drift long mutation streams accumulate when clean users
  /// keep stale units. 0 disables (ROADMAP open item; bench_online_sessions
  /// reports the drift with and without).
  int full_reround_period = 0;
  /// Drift-triggered full re-round: before re-rounding an incremental
  /// resolve, the kept (clean) units' utility share of the fresh LP is
  /// measured as mean_{kept (u,s,c)} x_u^c over the just-solved
  /// relaxation — how much fractional mass the new optimum still puts on
  /// the items those stale units display. Stale units chasing old tau /
  /// preference values pull the share toward 0; when it drops below this
  /// threshold every unit is re-rounded on THIS resolve (the LP still
  /// warm-starts), catching drift the moment it appears instead of on the
  /// fixed full_reround_period (whose drift re-accumulates within 2-3
  /// resolves — ROADMAP note). <= 0 disables; the two policies compose
  /// (either trigger forces the full re-round).
  double reround_utility_threshold = 0.0;
  /// Sharded serving (shard/shard_solve.h): the instance is partitioned by
  /// community, dirty users map to dirty shards, and Resolve() re-solves
  /// only the touched shards' LPs — the scaling path for sessions past the
  /// single-LP practical limit. Requires lambda in (0, 1); the session
  /// falls back to the monolithic path at the endpoints.
  bool use_sharding = false;
  ShardSolveOptions sharding;
  /// Sampled post-solve self-verification (obs/verify.h): when set,
  /// resolves the verifier samples (or that request force-verification via
  /// ScopedForceVerify) snapshot their instance/config/LP into a
  /// background check off the hot path. nullptr disables.
  SolutionVerifier* verifier = nullptr;
  /// Session id stamped on verify jobs/failure logs (set by the manager).
  uint32_t verifier_session_id = 0;
};

enum class ResolvePath {
  kCold,          ///< no usable cached basis (first solve / forced)
  kIncremental,   ///< warm-started from the projected cached basis
  kColdFallback,  ///< perturbation too large or warm solve failed
};

const char* ResolvePathName(ResolvePath path);

/// Telemetry of one Resolve() call.
struct ResolveReport {
  ResolvePath path = ResolvePath::kCold;
  /// True when the simplex actually consumed the projected basis.
  bool warm_started = false;
  /// Simplex pivots of this re-solve (total / feasibility-repair only).
  int pivots = 0;
  int phase1_pivots = 0;
  /// Fraction of LP columns whose identity changed since the last solve.
  double changed_fraction = 0.0;
  int num_dirty_users = 0;
  /// (user, slot) units freed for re-rounding (k per dirty user).
  int rerounded_units = 0;
  /// True when this resolve re-rounded every unit — periodic
  /// (SessionOptions::full_reround_period) or drift-triggered
  /// (SessionOptions::reround_utility_threshold).
  bool full_reround = false;
  /// True when the full re-round was forced by the kept-unit utility
  /// share dropping below reround_utility_threshold.
  bool drift_reround = false;
  /// Mean fresh-LP fractional mass on the kept units' items (1.0 when
  /// nothing was kept / the threshold policy is off — see the option).
  double kept_utility_share = 1.0;
  double lp_objective = 0.0;
  /// Scaled total of the served configuration after rounding.
  double scaled_total = 0.0;
  double lp_seconds = 0.0;
  double rounding_seconds = 0.0;
  double total_seconds = 0.0;
  /// Product-form etas left pending when this resolve's LP finished —
  /// the eta-chain length the next warm resolve would inherit if the
  /// basis were kept hot. The adaptive refactorization policy
  /// (SessionOptions::simplex.refactor_policy, on by default) keeps this
  /// bounded over long mutation streams; under
  /// RefactorPolicy::kFixedInterval with a large refactor_interval it
  /// grows with the per-resolve pivot count (bench_online_sessions shows
  /// the divergence). Monolithic path only (zero on the sharded path,
  /// whose per-shard solves refactorize independently).
  int64_t eta_chain_length = 0;
  /// Basis (re)factorizations this resolve's LP performed.
  int64_t refactorizations = 0;
  LpStats lp_stats;
  // Sharded-mode telemetry (zero on the monolithic path).
  int num_shards = 0;
  int num_dirty_shards = 0;
  int dual_rounds = 0;
  double shard_gap = 0.0;
};

/// The complete serving state of a Session at a command boundary — what a
/// durability snapshot persists (src/durability/snapshot.h) and recovery
/// restores via Session::FromState(). Everything the next Resolve() reads
/// is here: the mutated instance with its EVOLVED pair order, the served
/// configuration, the cached basis + column keys, the resolve counter
/// (periodic-reround phase), the rounding RNG, and the dirty flags. The
/// last fractional solution is deliberately absent: every resolve rebuilds
/// it from the fresh LP before any read. Sharded-mode coordinator state is
/// also rebuilt (the first post-recovery sharded resolve re-partitions).
struct SessionState {
  SvgicInstance instance;
  Configuration config;
  LpBasis basis;
  CompactLpKeys keys;
  bool valid_basis = false;
  int num_resolves = 0;
  RngState rng;
  std::vector<char> dirty;
  bool all_dirty = false;
};

/// Durability sink for applied commands (implemented by
/// durability/SessionJournal). Session::Apply() appends every command that
/// actually mutated state — after the mutation, so a validation failure
/// journals nothing and the log replays exactly the applied stream.
class CommandJournal {
 public:
  virtual ~CommandJournal() = default;
  /// `resolved` is true for the kResolve entries (fsync-on-resolve policy).
  virtual Status Append(const SessionCommand& command, bool resolved) = 0;
  /// False once a failed append/rotation made the journal unreliable: the
  /// in-memory state advanced past what the changelog holds. Apply()
  /// checks this BEFORE mutating and refuses new commands while unhealthy,
  /// so the divergence never silently grows past the one lost record.
  virtual bool healthy() const { return true; }
};

/// What one Apply(SessionCommand) did. `assigned_id` carries the id a
/// kJoin/kAddItem command allocated; `report` is valid iff `resolved`.
struct CommandOutcome {
  int64_t assigned_id = -1;
  bool resolved = false;
  /// Resolve requests folded into this one's Resolve() beyond itself
  /// (set by SessionManager when coalescing; 0 on the in-process path).
  int coalesced = 0;
  /// True when this resolve request was answered by ANOTHER request's
  /// Resolve() (it shares the group's report; exactly one request per
  /// coalesced group has this false — the metrics layer counts actual
  /// solves vs folded requests from it).
  bool coalesced_away = false;
  ResolveReport report;
};

class Session {
 public:
  /// Takes ownership of the instance (pairs are finalized here).
  explicit Session(SvgicInstance instance, SessionOptions options = {});

  // Not movable: the sharded-mode coordinator holds a pointer to
  // instance_, so a moved Session would leave it dangling. Heap-allocate
  // (as SessionManager does) to store sessions in containers.
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;
  Session(Session&&) = delete;
  Session& operator=(Session&&) = delete;

  /// Reconstructs a session from a captured state (durability recovery).
  /// The instance's evolved pair order is restored verbatim — FinalizePairs
  /// is NOT re-run — and the cached basis warm-starts the first resolve,
  /// so recovery never pays a cold solve. `options` must match the
  /// original session's (options are configuration, not state; the
  /// operator passes the same flags across a restart).
  static std::unique_ptr<Session> FromState(SessionState state,
                                            SessionOptions options);

  /// Copies the complete serving state (see SessionState). Only valid at a
  /// command boundary — the SessionManager calls it while its drain task
  /// owns the session.
  SessionState CaptureState() const;

  /// Attaches the durability journal Apply() appends to (nullptr
  /// detaches). Replay during recovery runs with no journal attached, then
  /// re-attaches — replayed commands must not be re-journaled.
  void set_journal(CommandJournal* journal) { journal_ = journal; }

  /// Fault injection for tests and operational backpressure drills: caps
  /// the simplex iteration count of every subsequent resolve (the
  /// per-solve limit, not cumulative). The resolve-failure path must leave
  /// the served configuration, basis and RNG untouched; the regression
  /// test drives that with a limit of 1.
  void set_max_lp_iterations(int max_iterations) {
    options_.simplex.max_iterations = max_iterations;
  }

  const SvgicInstance& instance() const { return instance_; }
  /// The currently served configuration (empty before the first Resolve).
  const Configuration& config() const { return config_; }
  bool HasConfig() const { return config_.num_users() > 0; }
  int num_resolves() const { return num_resolves_; }

  // --- The unified command entry point -----------------------------------

  /// Applies one SessionCommand — THE mutation/resolve path every caller
  /// (wire protocol, event-log replay, CLI, benches) goes through. A
  /// kResolve command runs Resolve() and returns the report in the
  /// outcome; kJoin/kAddItem return the allocated id. Mutations take
  /// effect at the next resolve.
  Result<CommandOutcome> Apply(const SessionCommand& command);

  // --- Legacy per-mutation entry points -----------------------------------
  // Thin wrappers over Apply(); kept for tests and call-site readability.

  /// Sets p(u, c) = value (absolute, not additive).
  Status PreferenceDelta(UserId u, ItemId c, double value) {
    return Apply(MakePref(u, c, value)).status();
  }
  /// Sets tau(u, v, c) = value; befriends u and v when no edge exists.
  Status TauDelta(UserId u, UserId v, ItemId c, double value) {
    return Apply(MakeTau(u, v, c, value)).status();
  }
  /// Adds the friendship {u, v} with no social utility yet.
  Status FriendAdded(UserId u, UserId v) {
    return Apply(MakeFriend(u, v)).status();
  }
  /// A new user joins with zero preferences; returns the id.
  Result<UserId> UserJoined() {
    auto outcome = Apply(MakeJoin());
    if (!outcome.ok()) return outcome.status();
    return static_cast<UserId>(outcome->assigned_id);
  }
  /// User u leaves: utilities zeroed, id stays valid (dense ids).
  Status UserLeft(UserId u) { return Apply(MakeLeave(u)).status(); }
  /// Sets lambda (must stay in (0, 1]; every user is re-rounded).
  Status SetLambda(double lambda) {
    return Apply(MakeLambda(lambda)).status();
  }
  /// A new item appears with zero utilities; returns the id.
  ItemId ItemAdded() {
    auto outcome = Apply(MakeAddItem());
    return outcome.ok() ? static_cast<ItemId>(outcome->assigned_id) : -1;
  }
  /// Item c retired: utilities zeroed, id stays valid.
  Status ItemRetired(ItemId c) { return Apply(MakeRetireItem(c)).status(); }

  /// Applies one replayed event (compat shim over Apply). A kResolve
  /// event triggers Resolve() and stores the report in `report`.
  Status ApplyEvent(const SessionEvent& event, ResolveReport* report);

  /// Re-optimizes: incremental warm-started LP + dirty-user re-rounding,
  /// or a cold solve (see class comment). With `force_cold` the cached
  /// basis and configuration are ignored (benchmark reference path).
  Result<ResolveReport> Resolve(bool force_cold = false);

 private:
  /// Restore path: adopts the instance as-is (already finalized with the
  /// evolved pair order) instead of re-running FinalizePairs.
  struct RestoreTag {};
  Session(SvgicInstance instance, SessionOptions options, RestoreTag);

  // Per-command mutation implementations behind Apply()'s dispatch.
  /// Apply() minus the journal append (the dispatch switch itself).
  Result<CommandOutcome> ApplyImpl(const SessionCommand& command);
  Status ApplyPref(UserId u, ItemId c, double value);
  Status ApplyTau(UserId u, UserId v, ItemId c, double value);
  Status ApplyFriend(UserId u, UserId v);
  UserId ApplyJoin();
  Status ApplyLeave(UserId u);
  Status ApplyLambda(double lambda);
  ItemId ApplyAddItem();
  Status ApplyRetireItem(ItemId c);

  void MarkDirty(UserId u);
  void MarkAllDirty() { all_dirty_ = true; }
  /// Dirty flags are only cleared once a Resolve() succeeds: a failed
  /// re-solve must not lose which users' units are stale.
  std::vector<UserId> CollectDirtyUsers() const;
  void ClearDirty();
  /// True when the upcoming resolve (num_resolves_ + 1) is a periodic
  /// full re-round.
  bool PeriodicFullReround() const {
    return options_.full_reround_period > 0 &&
           (num_resolves_ + 1) % options_.full_reround_period == 0;
  }
  /// Mean fractional mass `frac` puts on the previously served units of
  /// users with keep[u] != 0 (the kept-unit utility share; 1.0 when no
  /// unit qualifies). See SessionOptions::reround_utility_threshold.
  double KeptUtilityShare(const FractionalSolution& frac,
                          const std::vector<char>& keep) const;
  Result<ResolveReport> ResolveMonolithic(bool force_cold);
  /// Sharded path: dirty users map to dirty shards; only those shards
  /// re-solve and re-round (see SessionOptions::use_sharding).
  Result<ResolveReport> ResolveSharded(bool force_cold);

  SvgicInstance instance_;
  SessionOptions options_;
  Rng rng_;

  Configuration config_;
  FractionalSolution frac_;
  /// Basis + keys of the last compact-LP solve (valid_basis_ gates use).
  LpBasis basis_;
  CompactLpKeys keys_;
  bool valid_basis_ = false;
  int num_resolves_ = 0;

  std::vector<char> dirty_;  ///< per-user dirty flag, indexed by id
  bool all_dirty_ = false;

  /// Durability sink (not owned); see set_journal().
  CommandJournal* journal_ = nullptr;

  /// Sharded-mode state (created on the first sharded resolve).
  std::unique_ptr<ShardCoordinator> coordinator_;
  std::unique_ptr<ThreadPool> shard_pool_;
};

}  // namespace savg
