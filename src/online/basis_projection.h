// Projects a compact-LP simplex basis across an instance mutation.
//
// A live session caches the optimal basis of its last compact-LP solve.
// After a mutation the LP of the updated instance has shifted indices:
// columns appear (an item became useful for a user, a new user or pair
// weight), disappear (preferences zeroed, users deactivated), or merely
// move. ProjectCompactBasis matches entities by their stable CompactLpKeys
// identity and carries each surviving entity's basis status over; new
// columns enter nonbasic-at-lower-bound and new rows enter with their
// logical (slack) basic — the exact shape of a cold basis for the new
// part, so the composite phase 1 of lp/simplex.h only has to repair the
// (small) perturbed region instead of re-crashing the whole basis.
//
// The projected basis may have the wrong number of basic columns when
// basic entities vanished; SolveLp's warm-basis repair handles that.

#pragma once

#include "core/lp_formulation.h"
#include "lp/lp_model.h"

namespace savg {

/// Difference summary between two key sets (cold-fallback heuristic).
struct BasisProjectionDelta {
  int surviving_cols = 0;  ///< columns present in both LPs
  int new_cols = 0;        ///< columns only in the new LP
  int dropped_cols = 0;    ///< columns only in the old LP
  int new_rows = 0;
  int dropped_rows = 0;

  /// Fraction of the new LP's columns without a carried-over status plus
  /// the dropped fraction of the old; 0 = identical shape.
  double ChangedFraction() const {
    const int denom = surviving_cols + new_cols;
    if (denom == 0) return 1.0;
    return static_cast<double>(new_cols + dropped_cols) / denom;
  }
};

/// Projects `old_basis` (statuses keyed by `old_keys`) onto the LP
/// described by `new_keys`. `delta` (optional) receives the change
/// summary.
LpBasis ProjectCompactBasis(const LpBasis& old_basis,
                            const CompactLpKeys& old_keys,
                            const CompactLpKeys& new_keys,
                            BasisProjectionDelta* delta = nullptr);

}  // namespace savg
