#include "online/session_manager.h"

namespace savg {

SessionManager::SessionManager(int num_workers) : pool_(num_workers) {}

SessionManager::~SessionManager() { Drain(); }

int SessionManager::CreateSession(SvgicInstance instance,
                                  SessionOptions options) {
  auto entry = std::make_unique<Entry>();
  entry->session =
      std::make_unique<Session>(std::move(instance), options);
  std::lock_guard<std::mutex> lock(mu_);
  entries_.push_back(std::move(entry));
  return static_cast<int>(entries_.size()) - 1;
}

int SessionManager::num_sessions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(entries_.size());
}

Status SessionManager::Submit(int session_id, const SessionEvent& event) {
  Entry* entry = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (session_id < 0 ||
        session_id >= static_cast<int>(entries_.size())) {
      return Status::OutOfRange("unknown session id");
    }
    entry = entries_[session_id].get();
  }
  bool schedule = false;
  {
    std::lock_guard<std::mutex> lock(entry->mu);
    entry->queue.push_back(event);
    if (!entry->running) {
      entry->running = true;
      schedule = true;
    }
  }
  if (schedule) pool_.Submit([this, entry] { DrainEntry(entry); });
  return Status::OK();
}

void SessionManager::DrainEntry(Entry* entry) {
  for (;;) {
    SessionEvent event;
    {
      std::lock_guard<std::mutex> lock(entry->mu);
      if (entry->queue.empty()) {
        entry->running = false;
        return;
      }
      event = entry->queue.front();
      entry->queue.pop_front();
    }
    // Apply outside the lock: one drain task owns the session at a time,
    // so the session itself needs no synchronization.
    ResolveReport report;
    const bool is_resolve = event.type == EventType::kResolve;
    Status st = entry->session->ApplyEvent(event, &report);
    std::lock_guard<std::mutex> lock(entry->mu);
    if (st.ok() && is_resolve) {
      entry->reports.push_back(report);
    } else if (!st.ok() && entry->first_error.ok()) {
      entry->first_error = st;
    }
  }
}

void SessionManager::Drain() { pool_.Wait(); }

const Session& SessionManager::session(int session_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  // at(): an unknown id throws instead of reading out of bounds (Submit
  // returns a Status for the same input; accessors have no error channel).
  return *entries_.at(session_id)->session;
}

std::vector<ResolveReport> SessionManager::reports(int session_id) const {
  Entry* entry = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    entry = entries_.at(session_id).get();
  }
  std::lock_guard<std::mutex> lock(entry->mu);
  return entry->reports;
}

Status SessionManager::FirstError() const {
  std::vector<Entry*> entries;
  {
    std::lock_guard<std::mutex> lock(mu_);
    entries.reserve(entries_.size());
    for (const auto& e : entries_) entries.push_back(e.get());
  }
  for (Entry* entry : entries) {
    std::lock_guard<std::mutex> lock(entry->mu);
    if (!entry->first_error.ok()) return entry->first_error;
  }
  return Status::OK();
}

}  // namespace savg
