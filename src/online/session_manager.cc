#include "online/session_manager.h"

#include <utility>

#include "durability/session_store.h"
#include "obs/verify.h"
#include "util/logging.h"

namespace savg {

SessionManager::SessionManager(SessionManagerOptions options)
    : options_(options), pool_(options.num_workers) {
  if (MetricsRegistry* m = options_.metrics) {
    solver_metrics_.pivots = m->GetCounter("lp.pivots");
    solver_metrics_.phase1_pivots = m->GetCounter("lp.phase1_pivots");
    solver_metrics_.phase1_reentries = m->GetCounter("lp.phase1_reentries");
    solver_metrics_.bland_pivots = m->GetCounter("lp.bland_pivots");
    solver_metrics_.dual_pivots = m->GetCounter("lp.dual_pivots");
    solver_metrics_.refactorizations = m->GetCounter("lp.refactorizations");
    solver_metrics_.presolve_cols_removed =
        m->GetCounter("lp.presolve_cols_removed");
    solver_metrics_.resolve_cold = m->GetCounter("resolve.cold");
    solver_metrics_.resolve_incremental =
        m->GetCounter("resolve.incremental");
    solver_metrics_.resolve_cold_fallback =
        m->GetCounter("resolve.cold_fallback");
    solver_metrics_.resolve_failures = m->GetCounter("resolve.failures");
    solver_metrics_.full_rerounds = m->GetCounter("session.full_rerounds");
    solver_metrics_.drift_rerounds = m->GetCounter("session.drift_rerounds");
    solver_metrics_.shard_dual_rounds = m->GetCounter("shard.dual_rounds");
    solver_metrics_.eta_chain = m->GetGauge("lp.eta_chain");
    solver_metrics_.kept_share_ppm = m->GetGauge("session.kept_share_ppm");
    solver_metrics_.shard_gap_ppm = m->GetGauge("shard.gap_ppm");
  }
}

SessionManager::~SessionManager() { Drain(); }

int SessionManager::CreateSession(SvgicInstance instance,
                                  SessionOptions options) {
  std::lock_guard<std::mutex> lock(mu_);
  // Construction happens under the registry lock so the session id can be
  // stamped into the options first (verify jobs carry it); CreateSession
  // is rare enough that serializing it is fine.
  const int id = static_cast<int>(entries_.size());
  options.verifier_session_id = static_cast<uint32_t>(id);
  auto entry = std::make_unique<Entry>();
  entry->session = std::make_unique<Session>(std::move(instance), options);
  entry->stats.num_users = entry->session->instance().num_users();
  entry->stats.num_items = entry->session->instance().num_items();
  entry->stats.session_id = id;
  AttachJournal(entry.get(), id, /*epoch=*/0, /*applied_seq=*/0);
  entries_.push_back(std::move(entry));
  return id;
}

int SessionManager::AdoptSession(std::unique_ptr<Session> session,
                                 uint32_t epoch, uint64_t applied_seq) {
  std::lock_guard<std::mutex> lock(mu_);
  const int id = static_cast<int>(entries_.size());
  auto entry = std::make_unique<Entry>();
  entry->session = std::move(session);
  entry->stats.num_users = entry->session->instance().num_users();
  entry->stats.num_items = entry->session->instance().num_items();
  entry->stats.session_id = id;
  entry->stats.commands_applied = static_cast<int64_t>(applied_seq);
  entry->stats.resolves = entry->session->num_resolves();
  AttachJournal(entry.get(), id, epoch, applied_seq);
  entries_.push_back(std::move(entry));
  return id;
}

void SessionManager::AttachJournal(Entry* entry, int id, uint32_t epoch,
                                   uint64_t applied_seq) {
  if (options_.store == nullptr) return;
  auto journal = options_.store->Attach(static_cast<uint32_t>(id),
                                        *entry->session, epoch, applied_seq);
  if (!journal.ok()) {
    // Durability degrades to in-memory-only for this session rather than
    // refusing to serve; the operator sees the warning and the missing
    // durability.appends growth.
    SAVG_LOG(Warning) << "durability: attach failed for session " << id
                      << ": " << journal.status().message();
    return;
  }
  entry->journal = *journal;
  entry->session->set_journal(*journal);
}

void SessionManager::MaybeSnapshot(Entry* entry) {
  if (entry->journal == nullptr || !entry->journal->ShouldSnapshot()) return;
  const Status status = entry->journal->TakeSnapshot(*entry->session);
  if (!status.ok()) {
    SAVG_LOG(Warning) << "durability: snapshot failed for session "
                      << entry->stats.session_id << ": " << status.message();
  }
}

Status SessionManager::FlushDurability() {
  if (options_.store == nullptr) return Status::OK();
  std::vector<Entry*> entries;
  {
    std::lock_guard<std::mutex> lock(mu_);
    entries.reserve(entries_.size());
    for (const auto& e : entries_) entries.push_back(e.get());
  }
  Status first = Status::OK();
  for (Entry* entry : entries) {
    if (entry->journal == nullptr) continue;
    const Status status = entry->journal->Flush(*entry->session);
    if (!status.ok() && first.ok()) first = status;
  }
  return first;
}

int SessionManager::num_sessions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(entries_.size());
}

std::vector<int> SessionManager::ListSessions() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<int> ids(entries_.size());
  for (size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<int>(i);
  return ids;
}

Result<SessionStats> SessionManager::GetStats(int session_id) const {
  Entry* entry = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (session_id < 0 || session_id >= static_cast<int>(entries_.size())) {
      return Status::OutOfRange("unknown session id " +
                                std::to_string(session_id));
    }
    entry = entries_[session_id].get();
  }
  std::lock_guard<std::mutex> lock(entry->mu);
  SessionStats stats = entry->stats;
  stats.queue_depth = entry->queue.size();
  return stats;
}

Status SessionManager::Submit(int session_id, const SessionCommand& command,
                              ApplyCallback done,
                              std::shared_ptr<TraceContext> trace,
                              bool force_verify) {
  Entry* entry = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (session_id < 0 || session_id >= static_cast<int>(entries_.size())) {
      return Status::OutOfRange("unknown session id");
    }
    entry = entries_[session_id].get();
  }
  Pending pending{command, std::move(done), std::move(trace), 0,
                  force_verify};
  if (pending.trace != nullptr) {
    pending.enqueue_nanos = pending.trace->NowNanos();
  }
  bool schedule = false;
  {
    std::lock_guard<std::mutex> lock(entry->mu);
    entry->queue.push_back(std::move(pending));
    if (!entry->running) {
      entry->running = true;
      schedule = true;
    }
  }
  if (schedule) pool_.Submit([this, entry] { DrainEntry(entry); });
  return Status::OK();
}

void SessionManager::RunResolve(Entry* entry,
                                std::vector<ResolveWaiter>* waiters) {
  // Close the defer window on every trace that waited; the session/LP
  // spans of the shared solve land on the first waiter's trace (the
  // request that actually runs it).
  for (ResolveWaiter& waiter : *waiters) {
    if (waiter.trace == nullptr || !waiter.deferred) continue;
    waiter.trace->AddSpan(
        "coalesce.defer", -1, waiter.defer_start_nanos,
        waiter.trace->NowNanos() - waiter.defer_start_nanos);
  }
  // One Resolve() answers every deferred resolve request: each waiter
  // receives the same outcome, with `coalesced` recording how many
  // requests shared the solve beyond the first.
  Status status = Status::OK();
  CommandOutcome result;
  {
    TraceContext* primary =
        waiters->empty() ? nullptr : waiters->front().trace.get();
    ScopedCurrentTrace current(primary);
    // One solve answers the whole group, so one verification covers it:
    // verify when any folded request asked.
    bool force_verify = false;
    for (const ResolveWaiter& waiter : *waiters) {
      force_verify = force_verify || waiter.force_verify;
    }
    ScopedForceVerify verify_scope(force_verify);
    TraceScope apply_span("session.apply");
    apply_span.Label("command", "resolve");
    apply_span.Counter("coalesced",
                       static_cast<int64_t>(waiters->size()) - 1);
    auto outcome = entry->session->Apply(MakeResolve());
    status = outcome.status();
    if (outcome.ok()) {
      result = std::move(outcome).value();
      result.coalesced = static_cast<int>(waiters->size()) - 1;
    }
  }
  RecordResolveMetrics(status, result.report);
  {
    std::lock_guard<std::mutex> lock(entry->mu);
    entry->stats.commands_applied +=
        static_cast<int64_t>(waiters->size());
    if (status.ok()) {
      entry->reports.push_back(result.report);
      entry->stats.resolves += 1;
      entry->stats.resolves_coalesced += result.coalesced;
      entry->stats.last_scaled_total = result.report.scaled_total;
    } else if (entry->stats.first_error.ok()) {
      entry->stats.first_error = status;
    }
  }
  for (size_t i = 0; i < waiters->size(); ++i) {
    if (!(*waiters)[i].done) continue;
    result.coalesced_away = i > 0;
    (*waiters)[i].done(status, result);
  }
  waiters->clear();
  MaybeSnapshot(entry);
}

void SessionManager::RecordResolveMetrics(const Status& status,
                                          const ResolveReport& report) {
  if (options_.metrics == nullptr) return;
  const SolverMetrics& m = solver_metrics_;
  if (!status.ok()) {
    m.resolve_failures->Increment();
    return;
  }
  m.pivots->Increment(report.pivots);
  m.phase1_pivots->Increment(report.phase1_pivots);
  // A warm start that still needed phase-1 pivots means the projected
  // basis was infeasible for the mutated LP (feasibility re-entry).
  if (report.warm_started && report.phase1_pivots > 0) {
    m.phase1_reentries->Increment();
  }
  m.bland_pivots->Increment(report.lp_stats.bland_pivots);
  m.dual_pivots->Increment(report.lp_stats.dual_pivots);
  m.refactorizations->Increment(report.refactorizations);
  m.presolve_cols_removed->Increment(report.lp_stats.presolve_cols_removed);
  switch (report.path) {
    case ResolvePath::kCold:
      m.resolve_cold->Increment();
      break;
    case ResolvePath::kIncremental:
      m.resolve_incremental->Increment();
      break;
    case ResolvePath::kColdFallback:
      m.resolve_cold_fallback->Increment();
      break;
  }
  if (report.full_reround) m.full_rerounds->Increment();
  if (report.drift_reround) m.drift_rerounds->Increment();
  if (report.num_shards > 0) {
    m.shard_dual_rounds->Increment(report.dual_rounds);
    m.shard_gap_ppm->Set(static_cast<int64_t>(report.shard_gap * 1e6));
  } else {
    // Eta-chain length is only meaningful on the monolithic path (shards
    // refactorize independently).
    m.eta_chain->Set(report.eta_chain_length);
  }
  m.kept_share_ppm->Set(
      static_cast<int64_t>(report.kept_utility_share * 1e6));
}

void SessionManager::DrainEntry(Entry* entry) {
  // Resolve requests deferred behind still-pending commands (coalescing);
  // flushed before the drain task gives the session up.
  std::vector<ResolveWaiter> pending_resolves;
  for (;;) {
    Pending item;
    bool more_pending = false;
    {
      std::lock_guard<std::mutex> lock(entry->mu);
      if (entry->queue.empty()) {
        if (!pending_resolves.empty()) {
          // Flush outside the lock, then re-check: the resolve may take a
          // while and new commands can arrive meanwhile.
          more_pending = true;
        } else {
          entry->running = false;
          return;
        }
      } else {
        item = std::move(entry->queue.front());
        entry->queue.pop_front();
      }
    }
    if (more_pending) {
      RunResolve(entry, &pending_resolves);
      continue;
    }
    // Queue wait: Submit() -> this worker picking the command up.
    if (item.trace != nullptr) {
      item.trace->AddSpan("admission.wait", -1, item.enqueue_nanos,
                          item.trace->NowNanos() - item.enqueue_nanos);
    }
    if (item.command.type == CommandType::kResolve) {
      ResolveWaiter waiter{std::move(item.done), std::move(item.trace), 0,
                           false, item.force_verify};
      if (waiter.trace != nullptr) {
        waiter.defer_start_nanos = waiter.trace->NowNanos();
      }
      pending_resolves.push_back(std::move(waiter));
      bool defer = false;
      if (options_.coalesce_resolves) {
        std::lock_guard<std::mutex> lock(entry->mu);
        defer = !entry->queue.empty();
      }
      if (defer) {
        pending_resolves.back().deferred = true;
      } else {
        RunResolve(entry, &pending_resolves);
      }
      continue;
    }
    // Apply outside the lock: one drain task owns the session at a time,
    // so the session itself needs no synchronization.
    Status status = Status::OK();
    CommandOutcome result;
    {
      ScopedCurrentTrace current(item.trace.get());
      TraceScope apply_span("session.apply");
      apply_span.Label("command", CommandTypeName(item.command.type));
      auto outcome = entry->session->Apply(item.command);
      status = outcome.status();
      if (outcome.ok()) result = std::move(outcome).value();
    }
    {
      std::lock_guard<std::mutex> lock(entry->mu);
      entry->stats.commands_applied += 1;
      entry->stats.num_users = entry->session->instance().num_users();
      entry->stats.num_items = entry->session->instance().num_items();
      if (!status.ok() && entry->stats.first_error.ok()) {
        entry->stats.first_error = status;
      }
    }
    if (item.done) item.done(status, result);
    MaybeSnapshot(entry);
  }
}

void SessionManager::Drain() { pool_.Wait(); }

const Session& SessionManager::session(int session_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  // at(): an unknown id throws instead of reading out of bounds (Submit
  // returns a Status for the same input; accessors have no error channel).
  return *entries_.at(session_id)->session;
}

std::vector<ResolveReport> SessionManager::reports(int session_id) const {
  Entry* entry = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    entry = entries_.at(session_id).get();
  }
  std::lock_guard<std::mutex> lock(entry->mu);
  return entry->reports;
}

Status SessionManager::FirstError() const {
  std::vector<Entry*> entries;
  {
    std::lock_guard<std::mutex> lock(mu_);
    entries.reserve(entries_.size());
    for (const auto& e : entries_) entries.push_back(e.get());
  }
  for (Entry* entry : entries) {
    std::lock_guard<std::mutex> lock(entry->mu);
    if (!entry->stats.first_error.ok()) return entry->stats.first_error;
  }
  return Status::OK();
}

}  // namespace savg
