// Replayable session event log: legacy TSV format + the stream generator.
//
// The event type itself is the unified SessionCommand tagged variant
// (serve/session_command.h); SessionEvent/EventType survive as aliases so
// pre-codec call sites keep compiling. New logs are written in the binary
// command format (WriteCommandLog); the TSV writer/reader below remain as
// the import shim for logs captured before the codec existed and as the
// human-readable debug format.
//
// TSV layout — one event per line, '#' comments, fixed header/footer:
//
//   svgicevents <version>
//   pref <u> <c> <value>        set p(u, c) = value
//   tau <u> <v> <c> <value>     set tau(u, v, c) = value (befriends u, v
//                               when the edge does not exist yet)
//   lambda <value>              set the preference/social trade-off
//   join                        a new user joins (id = current n)
//   friend <u> <v>              adds the friendship {u, v}
//   leave <u>                   user u leaves (utilities zeroed)
//   additem                     a new item appears (id = current m)
//   retireitem <c>              item c retired (utilities zeroed)
//   resolve                     re-optimize the configuration
//   end
//
// The same log drives bench_online_sessions, `svgic_cli serve`, and the
// incremental-vs-cold equivalence tests, so a serving trace captured once
// replays bit-identically everywhere (all randomness is session-seeded).

#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/problem.h"
#include "serve/session_command.h"
#include "util/random.h"
#include "util/status.h"

namespace savg {

using EventType = CommandType;
using SessionEvent = SessionCommand;
using EventLog = CommandLog;

Status WriteEventLog(const EventLog& log, std::ostream* out);
Status WriteEventLogToFile(const EventLog& log, const std::string& path);
Result<EventLog> ReadEventLog(std::istream* in);
Result<EventLog> ReadEventLogFromFile(const std::string& path);

/// Knobs of the synthetic mutation-stream generator used by the bench and
/// the property tests. Probabilities are relative weights.
struct EventStreamParams {
  int num_mutations = 100;
  /// A resolve event is inserted after every this many mutations (and once
  /// at the end).
  int resolve_every = 5;
  uint64_t seed = 1;
  double w_pref = 0.55;
  double w_tau = 0.25;
  double w_friend = 0.08;
  double w_join = 0.04;
  double w_leave = 0.03;
  double w_lambda = 0.02;
  double w_add_item = 0.02;
  double w_retire_item = 0.01;
};

/// Generates a valid event stream against `instance` (tracking the user /
/// item counts its own join/additem events grow).
EventLog GenerateEventStream(const SvgicInstance& instance,
                             const EventStreamParams& params);

}  // namespace savg
