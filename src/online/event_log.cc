#include "online/event_log.h"

#include <fstream>
#include <limits>
#include <ostream>
#include <sstream>

namespace savg {

namespace {

constexpr int kFormatVersion = 1;

}  // namespace

Status WriteEventLog(const EventLog& log, std::ostream* out) {
  // max_digits10: doubles round-trip exactly, so a replayed log drives the
  // session through bit-identical mutations.
  const std::streamsize old_precision =
      out->precision(std::numeric_limits<double>::max_digits10);
  *out << "svgicevents " << kFormatVersion << "\n";
  for (const SessionEvent& e : log) {
    *out << CommandTypeName(e.type);
    switch (e.type) {
      case EventType::kPref:
        *out << "\t" << e.u << "\t" << e.c << "\t" << e.value;
        break;
      case EventType::kTau:
        *out << "\t" << e.u << "\t" << e.v << "\t" << e.c << "\t" << e.value;
        break;
      case EventType::kLambda:
        *out << "\t" << e.value;
        break;
      case EventType::kFriend:
        *out << "\t" << e.u << "\t" << e.v;
        break;
      case EventType::kLeave:
        *out << "\t" << e.u;
        break;
      case EventType::kRetireItem:
        *out << "\t" << e.c;
        break;
      case EventType::kJoin:
      case EventType::kAddItem:
      case EventType::kResolve:
        break;
    }
    *out << "\n";
  }
  *out << "end\n";
  out->precision(old_precision);
  if (!*out) return Status::Unknown("event log write failed");
  return Status::OK();
}

Status WriteEventLogToFile(const EventLog& log, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::NotFound("cannot open " + path + " for writing");
  return WriteEventLog(log, &out);
}

Result<EventLog> ReadEventLog(std::istream* in) {
  std::string line;
  int line_no = 0;
  auto fail = [&](const std::string& msg) {
    return Status::InvalidArgument("event log line " +
                                   std::to_string(line_no) + ": " + msg);
  };

  EventLog log;
  bool saw_header = false;
  bool saw_end = false;
  while (std::getline(*in, line)) {
    ++line_no;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream fields(line);
    std::string tag;
    if (!(fields >> tag)) continue;  // blank / comment line
    if (!saw_header) {
      int version = 0;
      if (tag != "svgicevents" || !(fields >> version)) {
        return fail("expected 'svgicevents <version>' header");
      }
      if (version != kFormatVersion) return fail("unsupported version");
      saw_header = true;
      continue;
    }
    if (tag == "end") {
      saw_end = true;
      break;
    }
    SessionEvent e;
    bool ok = true;
    if (tag == "pref") {
      e.type = EventType::kPref;
      ok = static_cast<bool>(fields >> e.u >> e.c >> e.value);
    } else if (tag == "tau") {
      e.type = EventType::kTau;
      ok = static_cast<bool>(fields >> e.u >> e.v >> e.c >> e.value);
    } else if (tag == "lambda") {
      e.type = EventType::kLambda;
      ok = static_cast<bool>(fields >> e.value);
    } else if (tag == "join") {
      e.type = EventType::kJoin;
    } else if (tag == "friend") {
      e.type = EventType::kFriend;
      ok = static_cast<bool>(fields >> e.u >> e.v);
    } else if (tag == "leave") {
      e.type = EventType::kLeave;
      ok = static_cast<bool>(fields >> e.u);
    } else if (tag == "additem") {
      e.type = EventType::kAddItem;
    } else if (tag == "retireitem") {
      e.type = EventType::kRetireItem;
      ok = static_cast<bool>(fields >> e.c);
    } else if (tag == "resolve") {
      e.type = EventType::kResolve;
    } else {
      return fail("unknown event '" + tag + "'");
    }
    if (!ok) return fail("malformed '" + tag + "' arguments");
    log.push_back(e);
  }
  if (!saw_header) return Status::InvalidArgument("empty event log");
  if (!saw_end) return Status::InvalidArgument("event log missing 'end'");
  return log;
}

Result<EventLog> ReadEventLogFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  return ReadEventLog(&in);
}

EventLog GenerateEventStream(const SvgicInstance& instance,
                             const EventStreamParams& params) {
  Rng rng(params.seed);
  int n = instance.num_users();
  int m = instance.num_items();
  const std::vector<double> weights = {
      params.w_pref,  params.w_tau,    params.w_friend,
      params.w_join,  params.w_leave,  params.w_lambda,
      params.w_add_item, params.w_retire_item};

  EventLog log;
  for (int i = 0; i < params.num_mutations; ++i) {
    SessionEvent e;
    switch (rng.Discrete(weights)) {
      case 0:
        e.type = EventType::kPref;
        e.u = static_cast<UserId>(rng.UniformInt(static_cast<uint64_t>(n)));
        e.c = static_cast<ItemId>(rng.UniformInt(static_cast<uint64_t>(m)));
        e.value = rng.Uniform();
        break;
      case 1:
        e.type = EventType::kTau;
        e.u = static_cast<UserId>(rng.UniformInt(static_cast<uint64_t>(n)));
        do {
          e.v = static_cast<UserId>(rng.UniformInt(static_cast<uint64_t>(n)));
        } while (e.v == e.u);
        e.c = static_cast<ItemId>(rng.UniformInt(static_cast<uint64_t>(m)));
        e.value = rng.Uniform();
        break;
      case 2:
        e.type = EventType::kFriend;
        e.u = static_cast<UserId>(rng.UniformInt(static_cast<uint64_t>(n)));
        do {
          e.v = static_cast<UserId>(rng.UniformInt(static_cast<uint64_t>(n)));
        } while (e.v == e.u);
        break;
      case 3:
        e.type = EventType::kJoin;
        ++n;
        break;
      case 4:
        e.type = EventType::kLeave;
        e.u = static_cast<UserId>(rng.UniformInt(static_cast<uint64_t>(n)));
        break;
      case 5:
        e.type = EventType::kLambda;
        e.value = rng.Uniform(0.2, 0.8);
        break;
      case 6:
        e.type = EventType::kAddItem;
        ++m;
        break;
      default:
        e.type = EventType::kRetireItem;
        e.c = static_cast<ItemId>(rng.UniformInt(static_cast<uint64_t>(m)));
        break;
    }
    log.push_back(e);
    if (params.resolve_every > 0 && (i + 1) % params.resolve_every == 0) {
      log.push_back({EventType::kResolve, -1, -1, -1, 0.0});
    }
  }
  if (log.empty() || log.back().type != EventType::kResolve) {
    log.push_back({EventType::kResolve, -1, -1, -1, 0.0});
  }
  return log;
}

}  // namespace savg
