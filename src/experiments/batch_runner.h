// Batched parallel execution engine: instances x solvers x repeats fanned
// out across a thread pool.
//
// Determinism contract: results are bit-identical regardless of worker
// count. Every task derives its seed from (base_seed, instance index,
// solver name, repeat) — never from thread identity or completion order —
// and writes into a pre-indexed slot of the report.
//
// The engine owns a per-instance cache of the compact LP relaxation, so
// the AVG family (AVG, AVG-D, AVG+LS, AVG-ST on the compact proxy, IR) and
// repeated roundings of one instance all share a single LP solve. Cache
// hit/miss counters are exported in the report for verification.

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/fractional_solution.h"
#include "core/lp_formulation.h"
#include "core/problem.h"
#include "solvers/solver.h"
#include "solvers/solver_options.h"
#include "util/status.h"

namespace savg {

/// Thread-safe once-per-instance LP relaxation cache.
class RelaxationCache {
 public:
  /// `warm_starts` (optional, not owned, must outlive the cache) provides
  /// per-instance starting bases for the simplex — typically the final
  /// bases of the previous point of a lambda sweep. Index-aligned with the
  /// instances; an empty or shape-incompatible basis is ignored.
  RelaxationCache(int num_instances, RelaxationOptions options,
                  const std::vector<LpBasis>* warm_starts = nullptr);

  /// The relaxation of instance `index`, solving it on first request.
  /// Concurrent callers for one instance block until the single solve
  /// finishes (and share its error, if any).
  Result<const FractionalSolution*> Get(int index,
                                        const SvgicInstance& instance);

  /// Requests served from cache / solved on demand.
  int64_t hits() const { return hits_.load(); }
  int64_t misses() const { return misses_.load(); }

  /// Final simplex bases of the solved entries (empty basis where the
  /// instance was never requested or solved by a non-simplex path), their
  /// LP objectives (0 where unsolved), and the total/warm-started pivot
  /// counters. Call after the batch drained.
  std::vector<LpBasis> ExportBases() const;
  std::vector<double> ExportObjectives() const;
  int64_t TotalSimplexIterations() const;
  int64_t WarmStartedSolves() const;
  /// Summed per-phase simplex time across the solved entries.
  LpStats TotalLpStats() const;

 private:
  struct Entry {
    std::once_flag once;
    bool solved = false;
    Status status = Status::OK();
    FractionalSolution frac;
  };

  RelaxationOptions options_;
  const std::vector<LpBasis>* warm_starts_ = nullptr;
  std::vector<std::unique_ptr<Entry>> entries_;
  std::atomic<int64_t> hits_{0};
  std::atomic<int64_t> misses_{0};
};

/// The deterministic per-task seed (exposed for tests): mixes the base
/// seed with the instance index, the solver's canonical name, and the
/// repeat index. Never zero.
uint64_t BatchTaskSeed(uint64_t base_seed, int instance_index,
                       const std::string& solver_name, int repeat);

struct BatchOptions {
  /// Worker threads; <= 0 = ThreadPool::DefaultThreadCount().
  int num_workers = 0;
  /// Independent repeats per (instance, solver) cell.
  int repeats = 1;
  /// Base of the per-task seed derivation.
  uint64_t base_seed = 1;
  /// Tuning knobs forwarded to every solver.
  SolverOptions solver;
  /// Serve the AVG family from the shared per-instance LP cache.
  bool share_relaxation = true;
  /// Per-instance warm-start bases for the relaxation cache (not owned,
  /// must outlive Run). Typically BatchReport::relaxation_bases of the
  /// previous point of a lambda sweep, whose LPs share the constraint
  /// matrix and differ only in the objective.
  const std::vector<LpBasis>* relaxation_warm_starts = nullptr;
};

/// One task outcome. `run` is meaningful iff `status.ok()`.
struct BatchTaskResult {
  int instance_index = 0;
  int solver_index = 0;
  int repeat = 0;
  Status status = Status::OK();
  SolverRun run;
};

struct BatchReport {
  int num_instances = 0;
  int num_solvers = 0;
  int repeats = 1;
  /// Instance-major, then solver, then repeat.
  std::vector<BatchTaskResult> tasks;
  int64_t lp_cache_hits = 0;
  int64_t lp_cache_misses = 0;
  /// Total simplex pivots spent by the shared relaxation cache, and how
  /// many of its solves reused a warm-start basis (warm-start
  /// effectiveness counters for the lambda-sweep benches/tests).
  int64_t lp_simplex_iterations = 0;
  int64_t lp_warm_started_solves = 0;
  /// Per-phase simplex time summed over the cache's LP solves (pricing vs
  /// ratio test vs ftran/btran — the partial-pricing decision data).
  LpStats lp_stats;
  /// Final basis per instance (empty where no simplex relaxation ran);
  /// feed into BatchOptions::relaxation_warm_starts of the next sweep
  /// point.
  std::vector<LpBasis> relaxation_bases;
  /// LP objective per instance (0 where no relaxation ran); lets tests
  /// assert that warm-started sweeps reproduce cold-start optima.
  std::vector<double> relaxation_objectives;
  double wall_seconds = 0.0;

  const BatchTaskResult& Task(int instance, int solver, int repeat) const {
    return tasks[(static_cast<size_t>(instance) * num_solvers + solver) *
                     repeats +
                 repeat];
  }
  /// First task error across the batch, or OK.
  Status FirstError() const;
};

class BatchRunner {
 public:
  explicit BatchRunner(BatchOptions options = {});

  /// Fans instances x solvers x repeats out across the pool.
  Result<BatchReport> Run(const std::vector<const SvgicInstance*>& instances,
                          const std::vector<const Solver*>& solvers) const;

  /// Same, resolving solvers from the global registry by name.
  Result<BatchReport> Run(const std::vector<const SvgicInstance*>& instances,
                          const std::vector<std::string>& solver_names) const;

  const BatchOptions& options() const { return options_; }

 private:
  BatchOptions options_;
};

}  // namespace savg
