#include "experiments/runner.h"

#include "baselines/per.h"
#include "util/logging.h"

namespace savg {

const char* AlgoName(Algo algo) {
  switch (algo) {
    case Algo::kAvg:
      return "AVG";
    case Algo::kAvgD:
      return "AVG-D";
    case Algo::kAvgLs:
      return "AVG+LS";
    case Algo::kPer:
      return "PER";
    case Algo::kFmg:
      return "FMG";
    case Algo::kSdp:
      return "SDP";
    case Algo::kGrf:
      return "GRF";
    case Algo::kIp:
      return "IP";
  }
  return "?";
}

std::vector<Algo> AllAlgos(bool include_ip) {
  std::vector<Algo> algos = {Algo::kAvg, Algo::kAvgD, Algo::kPer,
                             Algo::kFmg, Algo::kSdp,  Algo::kGrf};
  if (include_ip) algos.push_back(Algo::kIp);
  return algos;
}

Result<AlgoRun> RunAlgorithm(const SvgicInstance& instance, Algo algo,
                             const RunnerConfig& config,
                             const FractionalSolution* shared_frac) {
  AlgoRun run;
  run.algo = algo;
  Timer timer;
  switch (algo) {
    case Algo::kAvg:
    case Algo::kAvgD:
    case Algo::kAvgLs: {
      FractionalSolution local;
      const FractionalSolution* frac = shared_frac;
      if (frac == nullptr) {
        auto solved = SolveRelaxation(instance, config.relaxation);
        if (!solved.ok()) return solved.status();
        local = std::move(solved).value();
        frac = &local;
      }
      if (algo == Algo::kAvg || algo == Algo::kAvgLs) {
        auto avg = RunAvgBest(instance, *frac, config.avg_repeats,
                              config.avg);
        if (!avg.ok()) return avg.status();
        if (algo == Algo::kAvgLs) {
          LocalSearchOptions ls;
          ls.size_cap = config.avg.size_cap;
          auto polished = ImproveByLocalSearch(instance, avg->config, ls);
          if (!polished.ok()) return polished.status();
          run.config = std::move(polished->config);
        } else {
          run.config = std::move(avg->config);
        }
      } else {
        auto avg_d = RunAvgD(instance, *frac, config.avg_d);
        if (!avg_d.ok()) return avg_d.status();
        run.config = std::move(avg_d->config);
      }
      break;
    }
    case Algo::kPer: {
      auto per = RunPersonalizedTopK(instance);
      if (!per.ok()) return per.status();
      run.config = std::move(per).value();
      break;
    }
    case Algo::kFmg: {
      auto fmg = RunFmg(instance, config.fmg);
      if (!fmg.ok()) return fmg.status();
      run.config = std::move(fmg).value();
      break;
    }
    case Algo::kSdp: {
      auto sdp = RunSdp(instance, config.sdp);
      if (!sdp.ok()) return sdp.status();
      run.config = std::move(sdp).value();
      break;
    }
    case Algo::kGrf: {
      auto grf = RunGrf(instance, config.grf);
      if (!grf.ok()) return grf.status();
      run.config = std::move(grf).value();
      break;
    }
    case Algo::kIp: {
      auto ip = SolveIpExact(instance, config.ip);
      if (!ip.ok()) return ip.status();
      run.config = std::move(ip->config);
      run.ip_proven_optimal = ip->proven_optimal;
      break;
    }
  }
  run.seconds = timer.ElapsedSeconds();
  run.breakdown = Evaluate(instance, run.config);
  run.scaled_total = run.breakdown.ScaledTotal();
  return run;
}

Result<std::vector<AggregateRow>> RunComparison(
    const DatasetParams& base_params, int samples,
    const std::vector<Algo>& algos, const RunnerConfig& config) {
  std::vector<AggregateRow> rows(algos.size());
  for (size_t a = 0; a < algos.size(); ++a) rows[a].algo = algos[a];

  const bool need_frac =
      std::find(algos.begin(), algos.end(), Algo::kAvg) != algos.end() ||
      std::find(algos.begin(), algos.end(), Algo::kAvgD) != algos.end() ||
      std::find(algos.begin(), algos.end(), Algo::kAvgLs) != algos.end();

  for (int sample = 0; sample < samples; ++sample) {
    DatasetParams params = base_params;
    params.seed = base_params.seed + 7919 * sample;
    auto instance = GenerateDataset(params);
    if (!instance.ok()) return instance.status();

    FractionalSolution frac;
    double frac_seconds = 0.0;
    if (need_frac) {
      auto solved = SolveRelaxation(*instance, config.relaxation);
      if (!solved.ok()) return solved.status();
      frac = std::move(solved).value();
      frac_seconds = frac.solve_seconds;
    }

    for (size_t a = 0; a < algos.size(); ++a) {
      auto run = RunAlgorithm(*instance, algos[a], config,
                              need_frac ? &frac : nullptr);
      if (!run.ok()) return run.status();
      AggregateRow& row = rows[a];
      row.mean_scaled_total += run->scaled_total;
      // AVG/AVG-D time must include their share of the relaxation.
      const bool uses_frac = algos[a] == Algo::kAvg ||
                             algos[a] == Algo::kAvgD ||
                             algos[a] == Algo::kAvgLs;
      row.mean_seconds += run->seconds + (uses_frac ? frac_seconds : 0.0);
      const double lambda = instance->lambda();
      const double scaled_pref =
          lambda > 0.0 ? (1.0 - lambda) / lambda * run->breakdown.preference
                       : run->breakdown.preference;
      row.mean_preference += scaled_pref;
      row.mean_social += run->breakdown.social_direct;
      const SubgroupMetrics sm =
          ComputeSubgroupMetrics(*instance, run->config);
      row.mean_subgroup.intra_fraction += sm.intra_fraction;
      row.mean_subgroup.inter_fraction += sm.inter_fraction;
      row.mean_subgroup.normalized_density += sm.normalized_density;
      row.mean_subgroup.co_display_rate += sm.co_display_rate;
      row.mean_subgroup.alone_rate += sm.alone_rate;
      const auto regrets = RegretRatios(*instance, run->config);
      double regret_sum = 0.0;
      for (double r : regrets) {
        regret_sum += r;
        row.regret_samples.push_back(r);
      }
      row.mean_regret += regret_sum / std::max<size_t>(1, regrets.size());
    }
  }
  const double inv = 1.0 / std::max(1, samples);
  for (AggregateRow& row : rows) {
    row.mean_scaled_total *= inv;
    row.mean_seconds *= inv;
    row.mean_preference *= inv;
    row.mean_social *= inv;
    row.mean_subgroup.intra_fraction *= inv;
    row.mean_subgroup.inter_fraction *= inv;
    row.mean_subgroup.normalized_density *= inv;
    row.mean_subgroup.co_display_rate *= inv;
    row.mean_subgroup.alone_rate *= inv;
    row.mean_regret *= inv;
  }
  return rows;
}

}  // namespace savg
