#include "experiments/runner.h"

#include <algorithm>

#include "experiments/batch_runner.h"
#include "solvers/solver_registry.h"
#include "util/logging.h"

namespace savg {

const char* AlgoName(Algo algo) {
  switch (algo) {
    case Algo::kAvg:
      return "AVG";
    case Algo::kAvgD:
      return "AVG-D";
    case Algo::kAvgLs:
      return "AVG+LS";
    case Algo::kPer:
      return "PER";
    case Algo::kFmg:
      return "FMG";
    case Algo::kSdp:
      return "SDP";
    case Algo::kGrf:
      return "GRF";
    case Algo::kIp:
      return "IP";
  }
  return "?";
}

std::vector<Algo> AllAlgos(bool include_ip) {
  std::vector<Algo> algos = {Algo::kAvg, Algo::kAvgD, Algo::kPer,
                             Algo::kFmg, Algo::kSdp,  Algo::kGrf};
  if (include_ip) algos.push_back(Algo::kIp);
  return algos;
}

std::vector<std::string> AllAlgoNames(bool include_ip) {
  std::vector<std::string> names;
  for (Algo algo : AllAlgos(include_ip)) names.push_back(AlgoName(algo));
  return names;
}

Result<AlgoRun> RunAlgorithm(const SvgicInstance& instance, Algo algo,
                             const RunnerConfig& config,
                             const FractionalSolution* shared_frac) {
  SAVG_ASSIGN_OR_RETURN(const Solver* solver,
                        SolverRegistry::Global().Find(AlgoName(algo)));
  SolverContext context;
  context.options = &config;
  context.shared_relaxation = shared_frac;
  SAVG_ASSIGN_OR_RETURN(SolverRun sr, solver->Solve(instance, context));
  AlgoRun run;
  run.algo = algo;
  run.config = std::move(sr.config);
  run.breakdown = sr.breakdown;
  run.scaled_total = sr.scaled_total;
  run.seconds = sr.seconds;
  run.ip_proven_optimal = sr.proven_optimal;
  return run;
}

Result<std::vector<AggregateRow>> RunComparisonNamed(
    const DatasetParams& base_params, int samples,
    const std::vector<std::string>& solvers, const RunnerConfig& config,
    int num_workers, SweepWarmStart* warm_start) {
  if (samples < 1) return Status::InvalidArgument("samples must be >= 1");
  std::vector<AggregateRow> rows(solvers.size());
  for (size_t s = 0; s < solvers.size(); ++s) {
    SAVG_ASSIGN_OR_RETURN(const Solver* solver,
                          SolverRegistry::Global().Find(solvers[s]));
    rows[s].name = solver->Name();
  }

  // Generate the sampled instances up front, then fan the whole
  // samples x solvers matrix out through the batch engine (one shared LP
  // relaxation per instance).
  std::vector<SvgicInstance> instances;
  instances.reserve(samples);
  for (int sample = 0; sample < samples; ++sample) {
    DatasetParams params = base_params;
    params.seed = base_params.seed + 7919 * sample;
    SAVG_ASSIGN_OR_RETURN(SvgicInstance instance, GenerateDataset(params));
    instances.push_back(std::move(instance));
  }
  std::vector<const SvgicInstance*> instance_ptrs;
  instance_ptrs.reserve(instances.size());
  for (const SvgicInstance& instance : instances) {
    instance_ptrs.push_back(&instance);
  }

  BatchOptions batch;
  batch.num_workers = num_workers;
  batch.repeats = 1;
  batch.base_seed = base_params.seed;
  batch.solver = config;
  if (warm_start != nullptr && !warm_start->bases.empty()) {
    batch.relaxation_warm_starts = &warm_start->bases;
  }
  BatchRunner engine(batch);
  SAVG_ASSIGN_OR_RETURN(BatchReport report,
                        engine.Run(instance_ptrs, solvers));
  SAVG_RETURN_NOT_OK(report.FirstError());
  if (warm_start != nullptr) {
    warm_start->bases = std::move(report.relaxation_bases);
    warm_start->total_simplex_iterations += report.lp_simplex_iterations;
    warm_start->warm_started_solves += report.lp_warm_started_solves;
    warm_start->lp_stats += report.lp_stats;
  }

  for (int sample = 0; sample < samples; ++sample) {
    const SvgicInstance& instance = instances[sample];
    for (size_t s = 0; s < solvers.size(); ++s) {
      const SolverRun& run =
          report.Task(sample, static_cast<int>(s), 0).run;
      AggregateRow& row = rows[s];
      row.mean_scaled_total += run.scaled_total;
      // AVG-family time includes their share of the shared relaxation.
      row.mean_seconds += run.TotalSeconds();
      const double lambda = instance.lambda();
      const double scaled_pref =
          lambda > 0.0 ? (1.0 - lambda) / lambda * run.breakdown.preference
                       : run.breakdown.preference;
      row.mean_preference += scaled_pref;
      row.mean_social += run.breakdown.social_direct;
      const SubgroupMetrics sm =
          ComputeSubgroupMetrics(instance, run.config);
      row.mean_subgroup.intra_fraction += sm.intra_fraction;
      row.mean_subgroup.inter_fraction += sm.inter_fraction;
      row.mean_subgroup.normalized_density += sm.normalized_density;
      row.mean_subgroup.co_display_rate += sm.co_display_rate;
      row.mean_subgroup.alone_rate += sm.alone_rate;
      const auto regrets = RegretRatios(instance, run.config);
      double regret_sum = 0.0;
      for (double r : regrets) {
        regret_sum += r;
        row.regret_samples.push_back(r);
      }
      row.mean_regret += regret_sum / std::max<size_t>(1, regrets.size());
    }
  }
  const double inv = 1.0 / std::max(1, samples);
  for (AggregateRow& row : rows) {
    row.mean_scaled_total *= inv;
    row.mean_seconds *= inv;
    row.mean_preference *= inv;
    row.mean_social *= inv;
    row.mean_subgroup.intra_fraction *= inv;
    row.mean_subgroup.inter_fraction *= inv;
    row.mean_subgroup.normalized_density *= inv;
    row.mean_subgroup.co_display_rate *= inv;
    row.mean_subgroup.alone_rate *= inv;
    row.mean_regret *= inv;
  }
  return rows;
}

Result<std::vector<AggregateRow>> RunComparison(
    const DatasetParams& base_params, int samples,
    const std::vector<Algo>& algos, const RunnerConfig& config) {
  std::vector<std::string> names;
  names.reserve(algos.size());
  for (Algo algo : algos) names.push_back(AlgoName(algo));
  SAVG_ASSIGN_OR_RETURN(
      std::vector<AggregateRow> rows,
      RunComparisonNamed(base_params, samples, names, config));
  for (size_t s = 0; s < algos.size(); ++s) rows[s].algo = algos[s];
  return rows;
}

}  // namespace savg
