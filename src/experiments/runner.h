// Shared experiment harness used by every bench binary.
//
// Wraps the algorithm zoo behind one enum, measures wall time per run, and
// aggregates means over sampled instances — the machinery behind each
// figure/table reproduction in bench/.

#pragma once

#include <string>
#include <vector>

#include "baselines/fmg.h"
#include "baselines/grf.h"
#include "baselines/ip_exact.h"
#include "baselines/sdp.h"
#include "core/avg.h"
#include "core/avg_d.h"
#include "core/local_search.h"
#include "core/lp_formulation.h"
#include "core/objective.h"
#include "datagen/datasets.h"
#include "metrics/metrics.h"
#include "util/status.h"

namespace savg {

enum class Algo {
  kAvg,
  kAvgD,
  kAvgLs,  ///< AVG followed by local-search polish
  kPer,
  kFmg,
  kSdp,
  kGrf,
  kIp,
};

const char* AlgoName(Algo algo);

/// All algorithms in the paper's default comparison order.
std::vector<Algo> AllAlgos(bool include_ip);

struct RunnerConfig {
  RelaxationOptions relaxation;
  AvgOptions avg;
  int avg_repeats = 3;
  AvgDOptions avg_d;
  FmgOptions fmg;
  SdpOptions sdp;
  GrfOptions grf;
  IpExactOptions ip;
};

/// One algorithm run on one instance.
struct AlgoRun {
  Algo algo = Algo::kAvg;
  Configuration config;
  ObjectiveBreakdown breakdown;
  double scaled_total = 0.0;
  double seconds = 0.0;
  bool ip_proven_optimal = false;
};

/// Runs one algorithm end-to-end (relaxation included for AVG/AVG-D).
/// `shared_frac` (optional) reuses a relaxation solved once per instance.
Result<AlgoRun> RunAlgorithm(const SvgicInstance& instance, Algo algo,
                             const RunnerConfig& config,
                             const FractionalSolution* shared_frac = nullptr);

/// Aggregated comparison over `samples` generated instances (seed varies).
struct AggregateRow {
  Algo algo = Algo::kAvg;
  double mean_scaled_total = 0.0;
  double mean_seconds = 0.0;
  double mean_preference = 0.0;  ///< scaled preference part
  double mean_social = 0.0;      ///< social part
  SubgroupMetrics mean_subgroup;
  double mean_regret = 0.0;
  std::vector<double> regret_samples;  ///< pooled per-user regrets
};

Result<std::vector<AggregateRow>> RunComparison(
    const DatasetParams& base_params, int samples,
    const std::vector<Algo>& algos, const RunnerConfig& config);

}  // namespace savg
