// Shared experiment harness used by every bench binary.
//
// This is now a thin compatibility shim over the solver registry and the
// batch execution engine (solvers/solver_registry.h,
// experiments/batch_runner.h): the Algo enum maps 1:1 onto registry names,
// RunAlgorithm() resolves through the registry, and RunComparison() fans
// its samples x algorithms matrix out through the BatchRunner (sharing one
// LP relaxation per instance across the AVG family). New call sites should
// address solvers by name; the enum survives for the existing figure
// reproductions.

#pragma once

#include <string>
#include <vector>

#include "datagen/datasets.h"
#include "metrics/metrics.h"
#include "solvers/solver.h"
#include "solvers/solver_options.h"
#include "util/status.h"

namespace savg {

enum class Algo {
  kAvg,
  kAvgD,
  kAvgLs,  ///< AVG followed by local-search polish
  kPer,
  kFmg,
  kSdp,
  kGrf,
  kIp,
};

/// Canonical display name — identical to the registry name, so
/// `SolverRegistry::Global().Find(AlgoName(a))` always resolves.
const char* AlgoName(Algo algo);

/// All algorithms in the paper's default comparison order.
std::vector<Algo> AllAlgos(bool include_ip);

/// Same, as registry names (usable with BatchRunner / --algos flags).
std::vector<std::string> AllAlgoNames(bool include_ip);

/// Aggregated tuning knobs; see solvers/solver_options.h.
using RunnerConfig = SolverOptions;

/// One algorithm run on one instance.
struct AlgoRun {
  Algo algo = Algo::kAvg;
  Configuration config;
  ObjectiveBreakdown breakdown;
  double scaled_total = 0.0;
  double seconds = 0.0;
  bool ip_proven_optimal = false;
};

/// Runs one algorithm end-to-end (relaxation included for AVG/AVG-D).
/// `shared_frac` (optional) reuses a relaxation solved once per instance.
Result<AlgoRun> RunAlgorithm(const SvgicInstance& instance, Algo algo,
                             const RunnerConfig& config,
                             const FractionalSolution* shared_frac = nullptr);

/// Aggregated comparison over `samples` generated instances (seed varies).
struct AggregateRow {
  Algo algo = Algo::kAvg;  ///< set when the solver has an enum value
  std::string name;        ///< registry name (always set)
  double mean_scaled_total = 0.0;
  double mean_seconds = 0.0;
  double mean_preference = 0.0;  ///< scaled preference part
  double mean_social = 0.0;      ///< social part
  SubgroupMetrics mean_subgroup;
  double mean_regret = 0.0;
  std::vector<double> regret_samples;  ///< pooled per-user regrets
};

/// Cross-point warm-start state for sweeps. Holds the final compact-LP
/// basis of every sampled instance after a RunComparisonNamed call; the
/// next call with the same `samples` (e.g. the next lambda of a sweep,
/// which keeps the constraint matrix fixed) seeds its simplex solves from
/// them. Also accumulates the relaxation pivot counters, so benches and
/// tests can compare warm vs cold sweeps.
struct SweepWarmStart {
  std::vector<LpBasis> bases;
  int64_t total_simplex_iterations = 0;
  int64_t warm_started_solves = 0;
  /// Per-phase simplex time accumulated across the sweep's LP solves.
  LpStats lp_stats;
};

/// Registry-name front-end: runs `solvers` over `samples` instances
/// through the parallel BatchRunner. `num_workers` <= 0 uses all cores.
/// `warm_start` (optional) carries relaxation bases across calls.
Result<std::vector<AggregateRow>> RunComparisonNamed(
    const DatasetParams& base_params, int samples,
    const std::vector<std::string>& solvers, const RunnerConfig& config,
    int num_workers = 0, SweepWarmStart* warm_start = nullptr);

Result<std::vector<AggregateRow>> RunComparison(
    const DatasetParams& base_params, int samples,
    const std::vector<Algo>& algos, const RunnerConfig& config);

}  // namespace savg
