#include "experiments/batch_runner.h"

#include <algorithm>
#include <cctype>

#include "solvers/solver_registry.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace savg {

namespace {

/// splitmix64 finalizer — the standard 64-bit avalanche mix.
uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

uint64_t HashName(const std::string& name) {
  // FNV-1a over the lowercased name, so aliases/case differences do not
  // change the seed stream of a solver.
  uint64_t h = 0xCBF29CE484222325ULL;
  for (char ch : name) {
    h ^= static_cast<uint64_t>(
        std::tolower(static_cast<unsigned char>(ch)));
    h *= 0x100000001B3ULL;
  }
  return h;
}

}  // namespace

uint64_t BatchTaskSeed(uint64_t base_seed, int instance_index,
                       const std::string& solver_name, int repeat) {
  uint64_t seed = Mix64(base_seed);
  seed = Mix64(seed ^ (static_cast<uint64_t>(instance_index) + 1));
  seed = Mix64(seed ^ HashName(solver_name));
  seed = Mix64(seed ^ (static_cast<uint64_t>(repeat) + 1));
  return seed != 0 ? seed : 1;  // 0 means "use option seeds" downstream
}

RelaxationCache::RelaxationCache(int num_instances, RelaxationOptions options,
                                 const std::vector<LpBasis>* warm_starts)
    : options_(options), warm_starts_(warm_starts) {
  entries_.reserve(std::max(0, num_instances));
  for (int i = 0; i < num_instances; ++i) {
    entries_.push_back(std::make_unique<Entry>());
  }
}

Result<const FractionalSolution*> RelaxationCache::Get(
    int index, const SvgicInstance& instance) {
  if (index < 0 || index >= static_cast<int>(entries_.size())) {
    return Status::OutOfRange("relaxation cache index out of range");
  }
  Entry& entry = *entries_[index];
  bool solved_here = false;
  std::call_once(entry.once, [&] {
    solved_here = true;
    misses_.fetch_add(1);
    const LpBasis* warm = nullptr;
    if (warm_starts_ != nullptr &&
        index < static_cast<int>(warm_starts_->size()) &&
        !(*warm_starts_)[index].Empty()) {
      warm = &(*warm_starts_)[index];
    }
    auto solved = SolveRelaxation(instance, options_, warm);
    if (solved.ok()) {
      entry.frac = std::move(solved).value();
      entry.solved = true;
    } else {
      entry.status = solved.status();
    }
  });
  if (!solved_here) hits_.fetch_add(1);
  if (!entry.status.ok()) return entry.status;
  return static_cast<const FractionalSolution*>(&entry.frac);
}

std::vector<LpBasis> RelaxationCache::ExportBases() const {
  std::vector<LpBasis> bases(entries_.size());
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i]->solved) bases[i] = entries_[i]->frac.lp_basis;
  }
  return bases;
}

std::vector<double> RelaxationCache::ExportObjectives() const {
  std::vector<double> objectives(entries_.size(), 0.0);
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i]->solved) objectives[i] = entries_[i]->frac.lp_objective;
  }
  return objectives;
}

int64_t RelaxationCache::TotalSimplexIterations() const {
  int64_t total = 0;
  for (const auto& entry : entries_) {
    if (entry->solved) total += entry->frac.simplex_iterations;
  }
  return total;
}

int64_t RelaxationCache::WarmStartedSolves() const {
  int64_t total = 0;
  for (const auto& entry : entries_) {
    if (entry->solved && entry->frac.warm_started) ++total;
  }
  return total;
}

LpStats RelaxationCache::TotalLpStats() const {
  LpStats total;
  for (const auto& entry : entries_) {
    if (entry->solved) total += entry->frac.lp_stats;
  }
  return total;
}

Status BatchReport::FirstError() const {
  for (const BatchTaskResult& task : tasks) {
    if (!task.status.ok()) return task.status;
  }
  return Status::OK();
}

BatchRunner::BatchRunner(BatchOptions options)
    : options_(std::move(options)) {}

Result<BatchReport> BatchRunner::Run(
    const std::vector<const SvgicInstance*>& instances,
    const std::vector<const Solver*>& solvers) const {
  if (instances.empty()) {
    return Status::InvalidArgument("batch has no instances");
  }
  if (solvers.empty()) return Status::InvalidArgument("batch has no solvers");
  for (const SvgicInstance* instance : instances) {
    if (instance == nullptr) {
      return Status::InvalidArgument("batch instance is null");
    }
  }
  for (const Solver* solver : solvers) {
    if (solver == nullptr) {
      return Status::InvalidArgument("batch solver is null");
    }
  }
  const int num_instances = static_cast<int>(instances.size());
  const int num_solvers = static_cast<int>(solvers.size());
  const int repeats = std::max(1, options_.repeats);

  Timer timer;
  BatchReport report;
  report.num_instances = num_instances;
  report.num_solvers = num_solvers;
  report.repeats = repeats;
  report.tasks.resize(static_cast<size_t>(num_instances) * num_solvers *
                      repeats);

  RelaxationCache cache(num_instances, options_.solver.relaxation,
                        options_.relaxation_warm_starts);
  {
    ThreadPool pool(options_.num_workers);
    for (int i = 0; i < num_instances; ++i) {
      for (int s = 0; s < num_solvers; ++s) {
        for (int r = 0; r < repeats; ++r) {
          const size_t slot =
              (static_cast<size_t>(i) * num_solvers + s) * repeats + r;
          const SvgicInstance* instance = instances[i];
          const Solver* solver = solvers[s];
          BatchTaskResult* out = &report.tasks[slot];
          pool.Submit([this, i, s, r, instance, solver, out, &cache] {
            out->instance_index = i;
            out->solver_index = s;
            out->repeat = r;
            SolverContext context;
            context.options = &options_.solver;
            context.seed =
                BatchTaskSeed(options_.base_seed, i, solver->Name(), r);
            if (options_.share_relaxation &&
                solver->NeedsRelaxation(context)) {
              auto frac = cache.Get(i, *instance);
              if (!frac.ok()) {
                out->status = frac.status();
                return;
              }
              context.shared_relaxation = *frac;
            }
            auto run = solver->Solve(*instance, context);
            if (run.ok()) {
              out->run = std::move(run).value();
            } else {
              out->status = run.status();
            }
          });
        }
      }
    }
    pool.Wait();
  }
  report.lp_cache_hits = cache.hits();
  report.lp_cache_misses = cache.misses();
  report.lp_simplex_iterations = cache.TotalSimplexIterations();
  report.lp_warm_started_solves = cache.WarmStartedSolves();
  report.lp_stats = cache.TotalLpStats();
  report.relaxation_bases = cache.ExportBases();
  report.relaxation_objectives = cache.ExportObjectives();
  report.wall_seconds = timer.ElapsedSeconds();
  return report;
}

Result<BatchReport> BatchRunner::Run(
    const std::vector<const SvgicInstance*>& instances,
    const std::vector<std::string>& solver_names) const {
  std::vector<const Solver*> solvers;
  solvers.reserve(solver_names.size());
  for (const std::string& name : solver_names) {
    SAVG_ASSIGN_OR_RETURN(const Solver* solver,
                          SolverRegistry::Global().Find(name));
    solvers.push_back(solver);
  }
  return Run(instances, solvers);
}

}  // namespace savg
