// Community detection used by the subgroup-style baselines.
//
// SDP-style baselines pre-partition the shopping group into socially tight
// subgroups; we provide label propagation (fast, nondeterministic) and a
// greedy modularity merge (deterministic agglomerative, Clauset-Newman-Moore
// flavor) plus balanced partitioning helpers used by the ST pre-partition
// wrapper.

#pragma once

#include <vector>

#include "graph/graph.h"
#include "util/random.h"

namespace savg {

/// A partition of the vertex set: community[u] = community index in
/// [0, num_communities).
struct Partition {
  std::vector<int> community;
  int num_communities = 0;

  /// Members of each community.
  std::vector<std::vector<UserId>> Groups() const;
};

/// Asynchronous label propagation; `max_rounds` sweeps over vertices in a
/// random order. Treats edges as undirected.
Partition LabelPropagation(const SocialGraph& g, int max_rounds, Rng* rng);

/// Greedy modularity maximization: start from singletons and repeatedly
/// merge the pair of communities with the largest modularity gain until no
/// positive gain remains (or `min_communities` is reached).
Partition GreedyModularity(const SocialGraph& g, int min_communities = 1);

/// Splits vertices into ceil(n / max_size) communities of (near-)equal size,
/// keeping socially connected vertices together where possible (BFS
/// chunking). Used by the "-P" pre-partition variants in Section 6.8.
Partition BalancedPartition(const SocialGraph& g, int max_size, Rng* rng);

/// Modularity of a partition (undirected support, unweighted).
double Modularity(const SocialGraph& g, const Partition& p);

/// Renumbers community ids to be dense in [0, num_communities).
void Normalize(Partition* p);

}  // namespace savg
