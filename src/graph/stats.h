// Structural statistics of social graphs.
//
// Used to validate that the dataset emulators reproduce the properties the
// paper's analysis leans on (Timik dense and weakly clustered, Epinions
// sparse and tree-ish, Yelp strongly clustered), and generally handy when
// characterizing inputs.

#pragma once

#include <vector>

#include "graph/graph.h"
#include "util/random.h"

namespace savg {

struct DegreeStats {
  double mean = 0.0;
  double max = 0.0;
  double stddev = 0.0;
  /// Coefficient of variation (stddev/mean); > 1 indicates a heavy tail.
  double cv = 0.0;
};

/// Undirected-support degree statistics.
DegreeStats ComputeDegreeStats(const SocialGraph& g);

/// Global clustering coefficient: 3 * #triangles / #wedges over the
/// undirected support. 0 for graphs without wedges.
double GlobalClusteringCoefficient(const SocialGraph& g);

/// Mean shortest-path length over `samples` random reachable pairs
/// (undirected BFS). Returns 0 if no reachable pair is sampled.
double ApproxAveragePathLength(const SocialGraph& g, int samples, Rng* rng);

/// Size of the largest connected component of the undirected support.
int LargestComponentSize(const SocialGraph& g);

}  // namespace savg
