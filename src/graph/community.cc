#include "graph/community.h"

#include <algorithm>
#include <deque>
#include <map>
#include <numeric>
#include <unordered_map>

namespace savg {

std::vector<std::vector<UserId>> Partition::Groups() const {
  std::vector<std::vector<UserId>> groups(num_communities);
  for (size_t u = 0; u < community.size(); ++u) {
    groups[community[u]].push_back(static_cast<UserId>(u));
  }
  return groups;
}

void Normalize(Partition* p) {
  std::unordered_map<int, int> remap;
  for (int& c : p->community) {
    auto [it, inserted] = remap.emplace(c, static_cast<int>(remap.size()));
    c = it->second;
  }
  p->num_communities = static_cast<int>(remap.size());
}

Partition LabelPropagation(const SocialGraph& g, int max_rounds, Rng* rng) {
  const int n = g.num_vertices();
  Partition p;
  p.community.resize(n);
  std::iota(p.community.begin(), p.community.end(), 0);
  std::vector<UserId> order(n);
  std::iota(order.begin(), order.end(), 0);
  for (int round = 0; round < max_rounds; ++round) {
    rng->Shuffle(&order);
    bool changed = false;
    for (UserId u : order) {
      std::unordered_map<int, int> votes;
      for (UserId w : g.OutNeighbors(u)) ++votes[p.community[w]];
      for (UserId w : g.InNeighbors(u)) ++votes[p.community[w]];
      if (votes.empty()) continue;
      int best_count = 0;
      for (const auto& [label, cnt] : votes) {
        best_count = std::max(best_count, cnt);
      }
      // Keep the current label if it is among the top; otherwise pick
      // uniformly among the top labels (avoids deterministic label floods
      // across bridge edges).
      auto cur_it = votes.find(p.community[u]);
      if (cur_it != votes.end() && cur_it->second == best_count) continue;
      std::vector<int> top;
      for (const auto& [label, cnt] : votes) {
        if (cnt == best_count) top.push_back(label);
      }
      std::sort(top.begin(), top.end());
      const int best_label =
          top[rng->UniformInt(static_cast<uint64_t>(top.size()))];
      if (best_label != p.community[u]) {
        p.community[u] = best_label;
        changed = true;
      }
    }
    if (!changed) break;
  }
  Normalize(&p);
  return p;
}

namespace {

/// Undirected pair list (u < v) of the graph's support.
std::vector<std::pair<UserId, UserId>> UndirectedPairs(const SocialGraph& g) {
  std::vector<std::pair<UserId, UserId>> pairs;
  for (const Edge& e : g.edges()) {
    if (e.u < e.v || !g.HasEdge(e.v, e.u)) {
      pairs.emplace_back(std::min(e.u, e.v), std::max(e.u, e.v));
    }
  }
  return pairs;
}

}  // namespace

double Modularity(const SocialGraph& g, const Partition& p) {
  const auto pairs = UndirectedPairs(g);
  const double m = static_cast<double>(pairs.size());
  if (m == 0) return 0.0;
  std::vector<double> degree(g.num_vertices(), 0.0);
  for (const auto& [u, v] : pairs) {
    degree[u] += 1.0;
    degree[v] += 1.0;
  }
  double q = 0.0;
  for (const auto& [u, v] : pairs) {
    if (p.community[u] == p.community[v]) q += 1.0 / m;
  }
  std::vector<double> comm_degree(p.num_communities, 0.0);
  for (int u = 0; u < g.num_vertices(); ++u) {
    comm_degree[p.community[u]] += degree[u];
  }
  for (double d : comm_degree) q -= (d / (2.0 * m)) * (d / (2.0 * m));
  return q;
}

Partition GreedyModularity(const SocialGraph& g, int min_communities) {
  const int n = g.num_vertices();
  Partition p;
  p.community.resize(n);
  std::iota(p.community.begin(), p.community.end(), 0);
  p.num_communities = n;
  const auto pairs = UndirectedPairs(g);
  const double m = static_cast<double>(pairs.size());
  if (m == 0) return p;

  std::vector<double> degree(n, 0.0);
  for (const auto& [u, v] : pairs) {
    degree[u] += 1.0;
    degree[v] += 1.0;
  }
  // Community state: edge counts between communities, total degree per
  // community. O(n^2) dense bookkeeping; fine for shopping-group sizes.
  std::vector<int> label(n);
  std::iota(label.begin(), label.end(), 0);
  std::map<std::pair<int, int>, double> e_between;  // (a<b) -> #edges
  for (const auto& [u, v] : pairs) {
    auto key = std::minmax(label[u], label[v]);
    e_between[{key.first, key.second}] += 1.0;
  }
  std::vector<double> a_deg(n);  // sum of degrees per community
  for (int u = 0; u < n; ++u) a_deg[u] = degree[u];
  std::vector<bool> alive(n, true);
  int num_alive = n;

  while (num_alive > min_communities) {
    // Find the merge with the best modularity gain:
    // dQ = e_ab/m - a_a*a_b/(2m^2).
    double best_gain = -1e18;
    std::pair<int, int> best_pair{-1, -1};
    for (const auto& [key, e_ab] : e_between) {
      const auto& [a, b] = key;
      if (!alive[a] || !alive[b]) continue;
      const double gain =
          e_ab / m - a_deg[a] * a_deg[b] / (2.0 * m * m);
      if (gain > best_gain) {
        best_gain = gain;
        best_pair = key;
      }
    }
    if (best_pair.first < 0) break;
    if (best_gain <= 0 && num_alive <= std::max(min_communities, 1)) break;
    if (best_gain <= 0 && min_communities <= 1) break;
    const auto [a, b] = best_pair;
    // Merge b into a.
    for (int u = 0; u < n; ++u) {
      if (label[u] == b) label[u] = a;
    }
    a_deg[a] += a_deg[b];
    alive[b] = false;
    --num_alive;
    // Fold b's inter-community edges into a's.
    std::map<std::pair<int, int>, double> folded;
    for (const auto& [key, cnt] : e_between) {
      int x = key.first == b ? a : key.first;
      int y = key.second == b ? a : key.second;
      if (x == y) continue;  // now internal
      auto nk = std::minmax(x, y);
      folded[{nk.first, nk.second}] += cnt;
    }
    e_between = std::move(folded);
  }
  p.community = label;
  Normalize(&p);
  return p;
}

Partition BalancedPartition(const SocialGraph& g, int max_size, Rng* rng) {
  const int n = g.num_vertices();
  Partition p;
  p.community.assign(n, -1);
  if (max_size <= 0) max_size = n;
  const int num_groups = (n + max_size - 1) / max_size;
  // BFS chunking from random roots: fill one group at a time with a BFS
  // frontier so members tend to be socially connected.
  std::vector<UserId> order(n);
  std::iota(order.begin(), order.end(), 0);
  rng->Shuffle(&order);
  int group = 0;
  int filled_in_group = 0;
  std::deque<UserId> frontier;
  size_t cursor = 0;
  auto next_unassigned = [&]() -> UserId {
    while (cursor < order.size() && p.community[order[cursor]] >= 0) ++cursor;
    return cursor < order.size() ? order[cursor] : -1;
  };
  while (true) {
    UserId u;
    if (!frontier.empty()) {
      u = frontier.front();
      frontier.pop_front();
      if (p.community[u] >= 0) continue;
    } else {
      u = next_unassigned();
      if (u < 0) break;
    }
    if (p.community[u] >= 0) continue;
    p.community[u] = group;
    if (++filled_in_group >= max_size) {
      ++group;
      filled_in_group = 0;
      frontier.clear();
      if (group >= num_groups) group = num_groups - 1;
    } else {
      for (UserId w : g.OutNeighbors(u)) {
        if (p.community[w] < 0) frontier.push_back(w);
      }
      for (UserId w : g.InNeighbors(u)) {
        if (p.community[w] < 0) frontier.push_back(w);
      }
    }
  }
  p.num_communities = num_groups;
  Normalize(&p);
  return p;
}

}  // namespace savg
