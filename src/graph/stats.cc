#include "graph/stats.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <unordered_set>

namespace savg {

namespace {

/// Undirected neighbor sets (union of in/out), deduplicated and sorted.
std::vector<std::vector<UserId>> UndirectedAdjacency(const SocialGraph& g) {
  std::vector<std::vector<UserId>> adj(g.num_vertices());
  for (UserId u = 0; u < g.num_vertices(); ++u) {
    adj[u] = g.OutNeighbors(u);
    adj[u].insert(adj[u].end(), g.InNeighbors(u).begin(),
                  g.InNeighbors(u).end());
    std::sort(adj[u].begin(), adj[u].end());
    adj[u].erase(std::unique(adj[u].begin(), adj[u].end()), adj[u].end());
  }
  return adj;
}

}  // namespace

DegreeStats ComputeDegreeStats(const SocialGraph& g) {
  DegreeStats stats;
  const auto adj = UndirectedAdjacency(g);
  if (adj.empty()) return stats;
  double sum = 0.0, sumsq = 0.0;
  for (const auto& nbrs : adj) {
    const double d = static_cast<double>(nbrs.size());
    sum += d;
    sumsq += d * d;
    stats.max = std::max(stats.max, d);
  }
  const double n = static_cast<double>(adj.size());
  stats.mean = sum / n;
  const double var = std::max(0.0, sumsq / n - stats.mean * stats.mean);
  stats.stddev = std::sqrt(var);
  stats.cv = stats.mean > 0.0 ? stats.stddev / stats.mean : 0.0;
  return stats;
}

double GlobalClusteringCoefficient(const SocialGraph& g) {
  const auto adj = UndirectedAdjacency(g);
  int64_t wedges = 0;
  int64_t closed = 0;  // ordered closed wedges; each triangle counted 6x
  for (UserId u = 0; u < g.num_vertices(); ++u) {
    const int64_t d = static_cast<int64_t>(adj[u].size());
    wedges += d * (d - 1) / 2;
    for (size_t i = 0; i < adj[u].size(); ++i) {
      for (size_t j = i + 1; j < adj[u].size(); ++j) {
        const UserId a = adj[u][i], b = adj[u][j];
        if (std::binary_search(adj[a].begin(), adj[a].end(), b)) ++closed;
      }
    }
  }
  if (wedges == 0) return 0.0;
  return static_cast<double>(closed) / static_cast<double>(wedges);
}

double ApproxAveragePathLength(const SocialGraph& g, int samples, Rng* rng) {
  const int n = g.num_vertices();
  if (n < 2) return 0.0;
  const auto adj = UndirectedAdjacency(g);
  double total = 0.0;
  int counted = 0;
  std::vector<int> dist(n);
  for (int s = 0; s < samples; ++s) {
    const UserId src =
        static_cast<UserId>(rng->UniformInt(static_cast<uint64_t>(n)));
    UserId dst;
    do {
      dst = static_cast<UserId>(rng->UniformInt(static_cast<uint64_t>(n)));
    } while (dst == src);
    std::fill(dist.begin(), dist.end(), -1);
    std::deque<UserId> queue{src};
    dist[src] = 0;
    while (!queue.empty() && dist[dst] < 0) {
      const UserId u = queue.front();
      queue.pop_front();
      for (UserId w : adj[u]) {
        if (dist[w] < 0) {
          dist[w] = dist[u] + 1;
          queue.push_back(w);
        }
      }
    }
    if (dist[dst] > 0) {
      total += dist[dst];
      ++counted;
    }
  }
  return counted > 0 ? total / counted : 0.0;
}

int LargestComponentSize(const SocialGraph& g) {
  const int n = g.num_vertices();
  const auto adj = UndirectedAdjacency(g);
  std::vector<bool> seen(n, false);
  int best = 0;
  for (UserId s = 0; s < n; ++s) {
    if (seen[s]) continue;
    int size = 0;
    std::deque<UserId> queue{s};
    seen[s] = true;
    while (!queue.empty()) {
      const UserId u = queue.front();
      queue.pop_front();
      ++size;
      for (UserId w : adj[u]) {
        if (!seen[w]) {
          seen[w] = true;
          queue.push_back(w);
        }
      }
    }
    best = std::max(best, size);
  }
  return best;
}

}  // namespace savg
