#include "graph/graph.h"

#include <algorithm>
#include <deque>
#include <sstream>
#include <unordered_set>

namespace savg {

SocialGraph::SocialGraph(int num_vertices)
    : num_vertices_(num_vertices),
      out_adj_(num_vertices),
      out_edge_ids_(num_vertices),
      in_adj_(num_vertices) {}

UserId SocialGraph::AddVertex() {
  const UserId id = num_vertices_++;
  out_adj_.emplace_back();
  out_edge_ids_.emplace_back();
  in_adj_.emplace_back();
  return id;
}

Result<EdgeId> SocialGraph::AddEdge(UserId u, UserId v) {
  if (u < 0 || u >= num_vertices_ || v < 0 || v >= num_vertices_) {
    return Status::OutOfRange("edge endpoint out of range");
  }
  if (u == v) return Status::InvalidArgument("self-loops are not allowed");
  if (HasEdge(u, v)) return Status::AlreadyExists("duplicate edge");
  EdgeId id = static_cast<EdgeId>(edges_.size());
  edges_.push_back({u, v, id});
  out_adj_[u].push_back(v);
  out_edge_ids_[u].push_back(id);
  in_adj_[v].push_back(u);
  return id;
}

Status SocialGraph::AddUndirectedEdge(UserId u, UserId v) {
  if (u < 0 || u >= num_vertices_ || v < 0 || v >= num_vertices_) {
    return Status::OutOfRange("edge endpoint out of range");
  }
  if (u == v) return Status::InvalidArgument("self-loops are not allowed");
  if (!HasEdge(u, v)) {
    auto r = AddEdge(u, v);
    if (!r.ok()) return r.status();
  }
  if (!HasEdge(v, u)) {
    auto r = AddEdge(v, u);
    if (!r.ok()) return r.status();
  }
  return Status::OK();
}

bool SocialGraph::HasEdge(UserId u, UserId v) const {
  return FindEdge(u, v) >= 0;
}

EdgeId SocialGraph::FindEdge(UserId u, UserId v) const {
  if (u < 0 || u >= num_vertices_) return -1;
  const auto& adj = out_adj_[u];
  for (size_t i = 0; i < adj.size(); ++i) {
    if (adj[i] == v) return out_edge_ids_[u][i];
  }
  return -1;
}

int SocialGraph::NumUndirectedPairs() const {
  int pairs = 0;
  for (const Edge& e : edges_) {
    if (e.u < e.v || !HasEdge(e.v, e.u)) ++pairs;
  }
  return pairs;
}

double SocialGraph::UndirectedDensity() const {
  if (num_vertices_ < 2) return 0.0;
  const double possible =
      static_cast<double>(num_vertices_) * (num_vertices_ - 1) / 2.0;
  return static_cast<double>(NumUndirectedPairs()) / possible;
}

SocialGraph SocialGraph::InducedSubgraph(
    const std::vector<UserId>& vertices,
    std::vector<UserId>* old_to_new) const {
  std::vector<UserId> mapping(num_vertices_, -1);
  for (size_t i = 0; i < vertices.size(); ++i) {
    mapping[vertices[i]] = static_cast<UserId>(i);
  }
  SocialGraph sub(static_cast<int>(vertices.size()));
  for (const Edge& e : edges_) {
    const UserId nu = mapping[e.u], nv = mapping[e.v];
    if (nu >= 0 && nv >= 0) {
      auto r = sub.AddEdge(nu, nv);
      (void)r;  // Duplicates cannot occur; endpoints are valid.
    }
  }
  if (old_to_new != nullptr) *old_to_new = std::move(mapping);
  return sub;
}

std::vector<UserId> SocialGraph::EgoNetwork(UserId center, int hops) const {
  std::vector<int> dist(num_vertices_, -1);
  std::deque<UserId> queue;
  dist[center] = 0;
  queue.push_back(center);
  std::vector<UserId> result;
  while (!queue.empty()) {
    UserId u = queue.front();
    queue.pop_front();
    result.push_back(u);
    if (dist[u] >= hops) continue;
    auto visit = [&](UserId w) {
      if (dist[w] < 0) {
        dist[w] = dist[u] + 1;
        queue.push_back(w);
      }
    };
    for (UserId w : out_adj_[u]) visit(w);
    for (UserId w : in_adj_[u]) visit(w);
  }
  std::sort(result.begin(), result.end());
  return result;
}

int SocialGraph::CountInducedPairs(const std::vector<UserId>& vertices) const {
  std::unordered_set<UserId> in_set(vertices.begin(), vertices.end());
  int pairs = 0;
  for (const Edge& e : edges_) {
    if (!in_set.count(e.u) || !in_set.count(e.v)) continue;
    if (e.u < e.v || !HasEdge(e.v, e.u)) ++pairs;
  }
  return pairs;
}

std::string SocialGraph::DebugString() const {
  std::ostringstream os;
  os << "SocialGraph(n=" << num_vertices_ << ", directed_edges=" << num_edges()
     << ", pairs=" << NumUndirectedPairs() << ")";
  return os.str();
}

}  // namespace savg
