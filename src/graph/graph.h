// Directed social network used by SVGIC.
//
// The paper models the shopping group as a directed graph G = (V, E): an
// edge (u, v) means v's presence can yield social utility tau(u, v, c) for
// u. Friendships are usually symmetric, so generators add both directions
// by default, but the structure itself is directed (tau(u,v,c) may differ
// from tau(v,u,c)).
//
// Vertices are dense integer ids [0, n). Edges carry a dense edge id so
// per-edge data (e.g. tau values) can live in flat arrays.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace savg {

using UserId = int32_t;
using EdgeId = int32_t;

/// A directed edge u -> v with its dense id.
struct Edge {
  UserId u = -1;
  UserId v = -1;
  EdgeId id = -1;
};

/// Directed graph with adjacency lists and O(1) edge-id lookup per
/// (source, target) via sorted adjacency.
class SocialGraph {
 public:
  SocialGraph() = default;
  explicit SocialGraph(int num_vertices);

  int num_vertices() const { return num_vertices_; }
  int num_edges() const { return static_cast<int>(edges_.size()); }

  /// Appends a new isolated vertex (online serving: a user joining a live
  /// session) and returns its id. Existing ids stay valid.
  UserId AddVertex();

  /// Adds the directed edge u -> v; returns its id, or an error for
  /// out-of-range endpoints, self-loops, or duplicates.
  Result<EdgeId> AddEdge(UserId u, UserId v);

  /// Adds both u -> v and v -> u; returns the first id (second is +1 only
  /// if both are new). Ignores directions that already exist.
  Status AddUndirectedEdge(UserId u, UserId v);

  bool HasEdge(UserId u, UserId v) const;
  /// Edge id of u -> v, or -1.
  EdgeId FindEdge(UserId u, UserId v) const;

  const Edge& edge(EdgeId id) const { return edges_[id]; }
  const std::vector<Edge>& edges() const { return edges_; }

  /// Out-neighbors of u (targets of edges u -> *).
  const std::vector<UserId>& OutNeighbors(UserId u) const {
    return out_adj_[u];
  }
  /// Ids of outgoing edges of u, parallel to OutNeighbors(u).
  const std::vector<EdgeId>& OutEdgeIds(UserId u) const {
    return out_edge_ids_[u];
  }
  /// In-neighbors of u (sources of edges * -> u).
  const std::vector<UserId>& InNeighbors(UserId u) const { return in_adj_[u]; }

  int OutDegree(UserId u) const { return static_cast<int>(out_adj_[u].size()); }
  int InDegree(UserId u) const { return static_cast<int>(in_adj_[u].size()); }

  /// Number of unordered vertex pairs {u, v} connected in at least one
  /// direction. For symmetric graphs this equals num_edges()/2.
  int NumUndirectedPairs() const;

  /// Density of the undirected support: pairs / (n choose 2). 0 for n < 2.
  double UndirectedDensity() const;

  /// Induced subgraph on `vertices`; `old_to_new` (optional out-param)
  /// receives the vertex relabeling (-1 for dropped vertices).
  SocialGraph InducedSubgraph(const std::vector<UserId>& vertices,
                              std::vector<UserId>* old_to_new = nullptr) const;

  /// Vertices within `hops` of `center` (including it) by undirected BFS.
  std::vector<UserId> EgoNetwork(UserId center, int hops) const;

  /// Number of undirected edges with both endpoints inside `vertices`.
  int CountInducedPairs(const std::vector<UserId>& vertices) const;

  std::string DebugString() const;

 private:
  int num_vertices_ = 0;
  std::vector<Edge> edges_;
  std::vector<std::vector<UserId>> out_adj_;
  std::vector<std::vector<EdgeId>> out_edge_ids_;
  std::vector<std::vector<UserId>> in_adj_;
};

}  // namespace savg
