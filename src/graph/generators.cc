#include "graph/generators.h"

#include <algorithm>
#include <cassert>

namespace savg {

SocialGraph ErdosRenyi(int n, double p, Rng* rng) {
  SocialGraph g(n);
  for (UserId u = 0; u < n; ++u) {
    for (UserId v = u + 1; v < n; ++v) {
      if (rng->Bernoulli(p)) {
        Status st = g.AddUndirectedEdge(u, v);
        assert(st.ok());
        (void)st;
      }
    }
  }
  return g;
}

SocialGraph WattsStrogatz(int n, int k_half, double beta, Rng* rng) {
  assert(k_half > 0 && 2 * k_half < n);
  SocialGraph g(n);
  // Ring lattice, then rewire the "forward" endpoint with probability beta.
  for (UserId u = 0; u < n; ++u) {
    for (int j = 1; j <= k_half; ++j) {
      UserId v = static_cast<UserId>((u + j) % n);
      if (rng->Bernoulli(beta)) {
        // Rewire to a uniform random non-neighbor.
        for (int attempt = 0; attempt < 32; ++attempt) {
          UserId w = static_cast<UserId>(rng->UniformInt(
              static_cast<uint64_t>(n)));
          if (w != u && !g.HasEdge(u, w)) {
            v = w;
            break;
          }
        }
      }
      if (v != u && !g.HasEdge(u, v)) {
        Status st = g.AddUndirectedEdge(u, v);
        assert(st.ok());
        (void)st;
      }
    }
  }
  return g;
}

SocialGraph BarabasiAlbert(int n, int m_attach, Rng* rng) {
  assert(m_attach >= 1 && n > m_attach);
  SocialGraph g(n);
  // Repeated-endpoint list: picking a uniform element is degree-proportional.
  std::vector<UserId> endpoint_pool;
  // Seed clique on m_attach + 1 vertices.
  for (UserId u = 0; u <= m_attach; ++u) {
    for (UserId v = u + 1; v <= m_attach; ++v) {
      Status st = g.AddUndirectedEdge(u, v);
      assert(st.ok());
      (void)st;
      endpoint_pool.push_back(u);
      endpoint_pool.push_back(v);
    }
  }
  for (UserId u = static_cast<UserId>(m_attach + 1); u < n; ++u) {
    std::vector<UserId> targets;
    int guard = 0;
    while (static_cast<int>(targets.size()) < m_attach && guard++ < 1000) {
      UserId cand = endpoint_pool[rng->UniformInt(
          static_cast<uint64_t>(endpoint_pool.size()))];
      if (cand != u &&
          std::find(targets.begin(), targets.end(), cand) == targets.end()) {
        targets.push_back(cand);
      }
    }
    for (UserId v : targets) {
      Status st = g.AddUndirectedEdge(u, v);
      assert(st.ok());
      (void)st;
      endpoint_pool.push_back(u);
      endpoint_pool.push_back(v);
    }
  }
  return g;
}

SocialGraph PlantedPartition(int n, int num_blocks, double p_in, double p_out,
                             Rng* rng, std::vector<int>* block_of) {
  assert(num_blocks >= 1);
  std::vector<int> blocks(n);
  for (int i = 0; i < n; ++i) blocks[i] = i % num_blocks;
  rng->Shuffle(&blocks);
  SocialGraph g(n);
  for (UserId u = 0; u < n; ++u) {
    for (UserId v = u + 1; v < n; ++v) {
      const double p = blocks[u] == blocks[v] ? p_in : p_out;
      if (rng->Bernoulli(p)) {
        Status st = g.AddUndirectedEdge(u, v);
        assert(st.ok());
        (void)st;
      }
    }
  }
  if (block_of != nullptr) *block_of = std::move(blocks);
  return g;
}

SocialGraph CompleteGraph(int n) {
  SocialGraph g(n);
  for (UserId u = 0; u < n; ++u) {
    for (UserId v = u + 1; v < n; ++v) {
      Status st = g.AddUndirectedEdge(u, v);
      assert(st.ok());
      (void)st;
    }
  }
  return g;
}

SocialGraph EmptyGraph(int n) { return SocialGraph(n); }

}  // namespace savg
