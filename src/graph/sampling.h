// Graph sampling utilities.
//
// The paper builds its "small dataset" instances by random-walk sampling of
// the user set from the full Timik network (following [55]) and uniform
// sampling of items. RandomWalkSample reproduces that: a simple random walk
// with restarts collects `count` distinct vertices.

#pragma once

#include <vector>

#include "graph/graph.h"
#include "util/random.h"

namespace savg {

/// Collects `count` distinct vertices by an undirected random walk with
/// restart probability `restart_p`, starting from a uniform vertex.
/// Falls back to uniform sampling for isolated regions so it always
/// returns exactly min(count, n) vertices, sorted ascending.
std::vector<UserId> RandomWalkSample(const SocialGraph& g, int count,
                                     double restart_p, Rng* rng);

/// Uniformly samples min(count, n) distinct vertices, sorted ascending.
std::vector<UserId> UniformVertexSample(const SocialGraph& g, int count,
                                        Rng* rng);

}  // namespace savg
