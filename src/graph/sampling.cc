#include "graph/sampling.h"

#include <algorithm>
#include <unordered_set>

namespace savg {

std::vector<UserId> RandomWalkSample(const SocialGraph& g, int count,
                                     double restart_p, Rng* rng) {
  const int n = g.num_vertices();
  count = std::min(count, n);
  std::unordered_set<UserId> visited;
  if (n == 0 || count == 0) return {};
  UserId start =
      static_cast<UserId>(rng->UniformInt(static_cast<uint64_t>(n)));
  UserId cur = start;
  visited.insert(cur);
  int stall = 0;
  const int max_stall = 50 * count + 100;
  while (static_cast<int>(visited.size()) < count) {
    if (rng->Bernoulli(restart_p)) cur = start;
    // Undirected step over the union of in/out neighborhoods.
    const auto& out = g.OutNeighbors(cur);
    const auto& in = g.InNeighbors(cur);
    const size_t deg = out.size() + in.size();
    if (deg == 0) {
      // Dead end: restart somewhere else entirely.
      cur = static_cast<UserId>(rng->UniformInt(static_cast<uint64_t>(n)));
      start = cur;
    } else {
      size_t pick = rng->UniformInt(static_cast<uint64_t>(deg));
      cur = pick < out.size() ? out[pick] : in[pick - out.size()];
    }
    if (visited.insert(cur).second) {
      stall = 0;
    } else if (++stall > max_stall) {
      // The reachable component is exhausted; top up uniformly.
      for (UserId u = 0; static_cast<int>(visited.size()) < count && u < n;
           ++u) {
        visited.insert(u);
      }
    }
  }
  std::vector<UserId> result(visited.begin(), visited.end());
  std::sort(result.begin(), result.end());
  return result;
}

std::vector<UserId> UniformVertexSample(const SocialGraph& g, int count,
                                        Rng* rng) {
  const int n = g.num_vertices();
  count = std::min(count, n);
  auto idx = rng->SampleWithoutReplacement(static_cast<size_t>(n),
                                           static_cast<size_t>(count));
  std::vector<UserId> result(idx.begin(), idx.end());
  std::sort(result.begin(), result.end());
  return result;
}

}  // namespace savg
