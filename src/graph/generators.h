// Random social-network generators.
//
// The paper evaluates on Timik, Epinions and Yelp, which are not available
// offline; DESIGN.md documents the substitution. These generators produce
// synthetic graphs whose structural properties (density, degree skew,
// community strength) can be tuned to emulate each dataset.
//
// All generators produce symmetric (undirected-support) graphs: both
// directions of each friendship are added as directed edges.

#pragma once

#include <vector>

#include "graph/graph.h"
#include "util/random.h"
#include "util/status.h"

namespace savg {

/// G(n, p): each unordered pair is a friendship independently with
/// probability p.
SocialGraph ErdosRenyi(int n, double p, Rng* rng);

/// Watts-Strogatz small world: ring lattice with k nearest neighbors per
/// side rewired with probability beta. Requires 0 < 2*k_half < n.
SocialGraph WattsStrogatz(int n, int k_half, double beta, Rng* rng);

/// Barabasi-Albert preferential attachment: each new vertex attaches to
/// `m_attach` existing vertices with probability proportional to degree.
SocialGraph BarabasiAlbert(int n, int m_attach, Rng* rng);

/// Planted-partition (stochastic block model with equal-size blocks):
/// `num_blocks` communities, within-community edge probability p_in and
/// across-community probability p_out.
SocialGraph PlantedPartition(int n, int num_blocks, double p_in, double p_out,
                             Rng* rng,
                             std::vector<int>* block_of = nullptr);

/// A complete graph on n vertices (used by hardness-construction tests).
SocialGraph CompleteGraph(int n);

/// An empty (edgeless) graph on n vertices.
SocialGraph EmptyGraph(int n);

}  // namespace savg
