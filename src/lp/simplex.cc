#include "lp/simplex.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/logging.h"

namespace savg {

namespace {

enum class VarStatus { kBasic, kAtLower, kAtUpper };

/// Internal working form:
///   maximize c'x  s.t.  A x = b,  l <= x <= u
/// Columns 0..n_struct-1 are structural, then slacks, then artificials.
class SimplexWorker {
 public:
  SimplexWorker(const LpModel& model, const SimplexOptions& options)
      : model_(model), opt_(options) {}

  Result<LpSolution> Run() {
    Status st = Build();
    if (!st.ok()) return st;
    Timer timer;
    // Phase 1: drive artificials to zero.
    if (num_artificials_ > 0) {
      SetPhase1Objective();
      Status p1 = Iterate(&timer);
      if (!p1.ok()) return p1;
      double infeas = 0.0;
      for (int j = first_artificial_; j < num_cols_; ++j) {
        infeas += Value(j);
      }
      if (infeas > 1e-6) {
        return Status::Infeasible("phase-1 infeasibility " +
                                  std::to_string(infeas));
      }
      // Freeze artificials at zero for phase 2.
      for (int j = first_artificial_; j < num_cols_; ++j) {
        upper_[j] = 0.0;
      }
    }
    SetPhase2Objective();
    Status p2 = Iterate(&timer);
    if (!p2.ok()) return p2;

    LpSolution sol;
    sol.x.resize(model_.num_vars());
    for (int j = 0; j < model_.num_vars(); ++j) sol.x[j] = Value(j);
    sol.objective = model_.ObjectiveValue(sol.x);
    sol.iterations = total_iterations_;
    sol.solve_seconds = timer.ElapsedSeconds();
    return sol;
  }

 private:
  // ---- setup -------------------------------------------------------------

  Status Build() {
    const int n_struct = model_.num_vars();
    const int n_rows = model_.num_rows();
    num_rows_ = n_rows;

    lower_.assign(n_struct, 0.0);
    upper_.assign(n_struct, 0.0);
    for (int j = 0; j < n_struct; ++j) {
      lower_[j] = model_.lower(j);
      upper_[j] = model_.upper(j);
      if (!std::isfinite(lower_[j])) {
        return Status::NotImplemented(
            "simplex requires finite lower bounds");
      }
      if (upper_[j] < lower_[j] - opt_.tolerance) {
        return Status::Infeasible("variable with empty bound interval");
      }
    }

    // Normalize rows: >= becomes <= by negation; then <= gets a slack.
    cols_.assign(n_struct, {});
    num_cols_ = n_struct;
    rhs_.assign(n_rows, 0.0);
    std::vector<bool> is_eq(n_rows, false);
    for (int i = 0; i < n_rows; ++i) {
      const LpRow& row = model_.row(i);
      const double sign = row.type == RowType::kGreaterEqual ? -1.0 : 1.0;
      rhs_[i] = sign * row.rhs;
      is_eq[i] = row.type == RowType::kEqual;
      for (const LpTerm& t : row.terms) {
        if (t.var < 0 || t.var >= n_struct) {
          return Status::InvalidArgument("row references unknown variable");
        }
        AddCoef(t.var, i, sign * t.coef);
      }
    }
    // Slacks.
    first_slack_ = n_struct;
    slack_of_row_.assign(n_rows, -1);
    for (int i = 0; i < n_rows; ++i) {
      if (is_eq[i]) continue;
      int j = NewColumn(0.0, kLpInfinity);
      AddCoef(j, i, 1.0);
      slack_of_row_[i] = j;
    }

    // Crash basis: structural vars at lower bound, slacks basic where the
    // residual allows, artificials elsewhere.
    status_.assign(num_cols_, VarStatus::kAtLower);
    basic_value_.assign(n_rows, 0.0);
    basis_.assign(n_rows, -1);
    row_of_basic_.assign(num_cols_, -1);

    std::vector<double> residual = rhs_;
    for (int j = 0; j < n_struct; ++j) {
      const double xj = lower_[j];
      if (xj != 0.0) {
        for (const auto& [r, a] : cols_[j]) residual[r] -= a * xj;
      }
    }
    first_artificial_ = num_cols_;
    num_artificials_ = 0;
    for (int i = 0; i < n_rows; ++i) {
      const int sj = slack_of_row_[i];
      if (sj >= 0 && residual[i] >= 0.0) {
        MakeBasic(sj, i, residual[i]);
      } else {
        // Artificial with coefficient matching the residual sign.
        int j = NewColumn(0.0, kLpInfinity);
        if (num_artificials_ == 0) first_artificial_ = j;
        ++num_artificials_;
        AddCoef(j, i, residual[i] >= 0.0 ? 1.0 : -1.0);
        MakeBasic(j, i, std::abs(residual[i]));
      }
    }
    // B = identity-sign columns, so B_inv starts as signed identity.
    binv_.assign(static_cast<size_t>(n_rows) * n_rows, 0.0);
    for (int i = 0; i < n_rows; ++i) {
      const int bj = basis_[i];
      const double a = cols_[bj].front().second;  // single-entry column
      // For slack/artificial columns the only row is i with coef +-1.
      Binv(i, i) = 1.0 / a;
    }
    obj_.assign(num_cols_, 0.0);
    return Status::OK();
  }

  int NewColumn(double lo, double hi) {
    cols_.emplace_back();
    lower_.push_back(lo);
    upper_.push_back(hi);
    if (static_cast<int>(status_.size()) == num_cols_) {
      status_.push_back(VarStatus::kAtLower);
    }
    row_of_basic_.push_back(-1);
    return num_cols_++;
  }

  void AddCoef(int col, int row, double coef) {
    if (coef == 0.0) return;
    auto& c = cols_[col];
    for (auto& [r, a] : c) {
      if (r == row) {
        a += coef;
        return;
      }
    }
    c.emplace_back(row, coef);
  }

  void MakeBasic(int col, int row, double value) {
    basis_[row] = col;
    row_of_basic_[col] = row;
    status_[col] = VarStatus::kBasic;
    basic_value_[row] = value;
  }

  void SetPhase1Objective() {
    // maximize -(sum of artificials).
    std::fill(obj_.begin(), obj_.end(), 0.0);
    for (int j = first_artificial_; j < num_cols_; ++j) obj_[j] = -1.0;
  }

  void SetPhase2Objective() {
    std::fill(obj_.begin(), obj_.end(), 0.0);
    const double sign = model_.maximize() ? 1.0 : -1.0;
    for (int j = 0; j < model_.num_vars(); ++j) {
      obj_[j] = sign * model_.objective(j);
    }
  }

  // ---- accessors ----------------------------------------------------------

  double& Binv(int r, int c) {
    return binv_[static_cast<size_t>(r) * num_rows_ + c];
  }
  double BinvAt(int r, int c) const {
    return binv_[static_cast<size_t>(r) * num_rows_ + c];
  }

  double Value(int j) const {
    switch (status_[j]) {
      case VarStatus::kBasic:
        return basic_value_[row_of_basic_[j]];
      case VarStatus::kAtLower:
        return lower_[j];
      case VarStatus::kAtUpper:
        return upper_[j];
    }
    return 0.0;
  }

  // ---- core iteration ------------------------------------------------------

  Status Iterate(Timer* timer) {
    int stall = 0;
    double last_obj = CurrentObjective();
    int since_refactor = 0;
    for (;;) {
      if (total_iterations_++ > opt_.max_iterations) {
        return Status::ResourceExhausted("simplex iteration limit");
      }
      if ((total_iterations_ & 63) == 0 &&
          timer->ElapsedSeconds() > opt_.time_limit_seconds) {
        return Status::ResourceExhausted("simplex time limit");
      }
      const bool bland = stall > opt_.stall_threshold;
      // Pricing: y = B^-T c_B, reduced costs d_j = c_j - y' A_j.
      std::vector<double> y(num_rows_, 0.0);
      for (int i = 0; i < num_rows_; ++i) {
        const double cb = obj_[basis_[i]];
        if (cb == 0.0) continue;
        const double* row = &binv_[static_cast<size_t>(i) * num_rows_];
        for (int c = 0; c < num_rows_; ++c) y[c] += cb * row[c];
      }
      int entering = -1;
      double best_score = opt_.tolerance;
      int direction = 0;
      for (int j = 0; j < num_cols_; ++j) {
        if (status_[j] == VarStatus::kBasic) continue;
        if (upper_[j] - lower_[j] < opt_.tolerance) continue;  // fixed
        double d = obj_[j];
        for (const auto& [r, a] : cols_[j]) d -= y[r] * a;
        int dir = 0;
        double score = 0.0;
        if (status_[j] == VarStatus::kAtLower && d > opt_.tolerance) {
          dir = +1;
          score = d;
        } else if (status_[j] == VarStatus::kAtUpper && d < -opt_.tolerance) {
          dir = -1;
          score = -d;
        } else {
          continue;
        }
        if (bland) {  // first eligible index
          entering = j;
          direction = dir;
          break;
        }
        if (score > best_score) {
          best_score = score;
          entering = j;
          direction = dir;
        }
      }
      if (entering < 0) return Status::OK();  // optimal for this phase

      // Direction in basic space: w = B^-1 A_e.
      std::vector<double> w(num_rows_, 0.0);
      for (const auto& [r, a] : cols_[entering]) {
        for (int i = 0; i < num_rows_; ++i) {
          w[i] += a * BinvAt(i, r);
        }
      }
      // Ratio test: entering moves by t >= 0 in `direction`.
      double t_limit = upper_[entering] - lower_[entering];  // bound flip
      int leaving_row = -1;
      int leaving_to_upper = 0;
      for (int i = 0; i < num_rows_; ++i) {
        const double delta = direction * w[i];
        const int bj = basis_[i];
        if (delta > opt_.tolerance) {
          // Basic value decreases toward its lower bound.
          const double room = basic_value_[i] - lower_[bj];
          const double t = std::max(0.0, room) / delta;
          if (t < t_limit) {
            t_limit = t;
            leaving_row = i;
            leaving_to_upper = 0;
          }
        } else if (delta < -opt_.tolerance) {
          if (!std::isfinite(upper_[bj])) continue;
          const double room = upper_[bj] - basic_value_[i];
          const double t = std::max(0.0, room) / (-delta);
          if (t < t_limit) {
            t_limit = t;
            leaving_row = i;
            leaving_to_upper = 1;
          }
        }
      }
      if (!std::isfinite(t_limit)) {
        return Status::Unbounded("LP is unbounded");
      }
      const double t = std::max(0.0, t_limit);

      // Apply the step to basic values.
      if (t > 0.0) {
        for (int i = 0; i < num_rows_; ++i) {
          basic_value_[i] -= direction * t * w[i];
        }
      }
      if (leaving_row < 0) {
        // Bound flip: entering jumps to its other bound.
        status_[entering] = direction > 0 ? VarStatus::kAtUpper
                                          : VarStatus::kAtLower;
      } else {
        // Pivot: entering becomes basic in leaving_row.
        const int leaving = basis_[leaving_row];
        status_[leaving] =
            leaving_to_upper ? VarStatus::kAtUpper : VarStatus::kAtLower;
        row_of_basic_[leaving] = -1;
        const double entering_value =
            (direction > 0 ? lower_[entering] + t : upper_[entering] - t);
        MakeBasic(entering, leaving_row, entering_value);
        // Eta update of B_inv: row ops making column `entering` the unit
        // vector e_{leaving_row}.
        const double pivot = w[leaving_row];
        if (std::abs(pivot) < 1e-12) {
          return Status::NumericalError("tiny pivot in simplex");
        }
        double* prow = &binv_[static_cast<size_t>(leaving_row) * num_rows_];
        const double pinv = 1.0 / pivot;
        for (int c = 0; c < num_rows_; ++c) prow[c] *= pinv;
        for (int i = 0; i < num_rows_; ++i) {
          if (i == leaving_row) continue;
          const double f = w[i];
          if (f == 0.0) continue;
          double* irow = &binv_[static_cast<size_t>(i) * num_rows_];
          for (int c = 0; c < num_rows_; ++c) irow[c] -= f * prow[c];
        }
        if (++since_refactor >= opt_.refactor_interval) {
          Status st = Refactorize();
          if (!st.ok()) return st;
          since_refactor = 0;
        }
      }

      const double cur = CurrentObjective();
      if (cur > last_obj + 1e-12) {
        stall = 0;
        last_obj = cur;
      } else {
        ++stall;
      }
    }
  }

  double CurrentObjective() const {
    double acc = 0.0;
    for (int j = 0; j < num_cols_; ++j) {
      const double v = Value(j);
      if (v != 0.0) acc += obj_[j] * v;
    }
    return acc;
  }

  /// Rebuilds B_inv from scratch (numerical hygiene) and recomputes the
  /// basic values from the nonbasic point.
  Status Refactorize() {
    InvertBasis();
    // Recompute basic values: x_B = B^-1 (b - A_N x_N).
    std::vector<double> rhs = rhs_;
    for (int j = 0; j < num_cols_; ++j) {
      if (status_[j] == VarStatus::kBasic) continue;
      const double v = Value(j);
      if (v == 0.0) continue;
      for (const auto& [r, a] : cols_[j]) rhs[r] -= a * v;
    }
    for (int i = 0; i < num_rows_; ++i) {
      double acc = 0.0;
      const double* row = &binv_[static_cast<size_t>(i) * num_rows_];
      for (int c = 0; c < num_rows_; ++c) acc += row[c] * rhs[c];
      basic_value_[i] = acc;
    }
    return refactor_status_;
  }

  void InvertBasis() {
    // Gauss-Jordan inversion of the basis matrix, in place over binv_.
    const int n = num_rows_;
    std::vector<double> work(static_cast<size_t>(n) * n, 0.0);
    for (int i = 0; i < n; ++i) {
      for (const auto& [r, a] : cols_[basis_[i]]) {
        work[static_cast<size_t>(r) * n + i] = a;
      }
    }
    std::fill(binv_.begin(), binv_.end(), 0.0);
    for (int i = 0; i < n; ++i) Binv(i, i) = 1.0;
    refactor_status_ = Status::OK();
    for (int col = 0; col < n; ++col) {
      int pivot = col;
      double best = std::abs(work[static_cast<size_t>(col) * n + col]);
      for (int r = col + 1; r < n; ++r) {
        const double v = std::abs(work[static_cast<size_t>(r) * n + col]);
        if (v > best) {
          best = v;
          pivot = r;
        }
      }
      if (best < 1e-12) {
        refactor_status_ = Status::NumericalError("singular basis");
        return;
      }
      if (pivot != col) {
        for (int c = 0; c < n; ++c) {
          std::swap(work[static_cast<size_t>(pivot) * n + c],
                    work[static_cast<size_t>(col) * n + c]);
          std::swap(Binv(pivot, c), Binv(col, c));
        }
      }
      const double dinv = 1.0 / work[static_cast<size_t>(col) * n + col];
      for (int c = 0; c < n; ++c) {
        work[static_cast<size_t>(col) * n + c] *= dinv;
        Binv(col, c) *= dinv;
      }
      for (int r = 0; r < n; ++r) {
        if (r == col) continue;
        const double f = work[static_cast<size_t>(r) * n + col];
        if (f == 0.0) continue;
        for (int c = 0; c < n; ++c) {
          work[static_cast<size_t>(r) * n + c] -=
              f * work[static_cast<size_t>(col) * n + c];
          Binv(r, c) -= f * Binv(col, c);
        }
      }
    }
  }

  const LpModel& model_;
  const SimplexOptions opt_;

  int num_rows_ = 0;
  int num_cols_ = 0;
  int first_slack_ = 0;
  int first_artificial_ = 0;
  int num_artificials_ = 0;

  /// Sparse columns: (row, coef) pairs.
  std::vector<std::vector<std::pair<int, double>>> cols_;
  std::vector<double> lower_, upper_, obj_, rhs_;
  std::vector<int> slack_of_row_;

  std::vector<VarStatus> status_;
  std::vector<int> basis_;          // row -> basic column
  std::vector<int> row_of_basic_;   // column -> row (or -1)
  std::vector<double> basic_value_;  // row -> value of its basic var
  std::vector<double> binv_;         // dense num_rows x num_rows

  int total_iterations_ = 0;
  Status refactor_status_ = Status::OK();
};

}  // namespace

Result<LpSolution> SolveLp(const LpModel& model, const SimplexOptions& options) {
  SimplexWorker worker(model, options);
  return worker.Run();
}

}  // namespace savg
