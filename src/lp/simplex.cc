#include "lp/simplex.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "lp/basis_lu.h"
#include "lp/presolve.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace savg {

namespace {

enum class VarStatus : uint8_t { kBasic, kAtLower, kAtUpper };

/// Per-variable bound violation below this is treated as feasible.
constexpr double kFeasTolerance = 1e-8;
/// Total violation accepted when phase 1 stalls at optimality.
constexpr double kInfeasAccept = 1e-6;
/// Time limits at or above this are "no limit" (skip the clock entirely).
constexpr double kNoTimeLimit = 1e17;
/// Minimum |pivot element| the dual ratio test accepts.
constexpr double kDualPivotTol = 1e-9;

/// Internal working form:
///   maximize c'x  s.t.  A x = b,  l <= x <= u
/// with >= rows negated into <= and one logical column per row: [0, inf)
/// for inequalities, fixed [0, 0] for equalities. Columns 0..n_struct-1
/// are structural, then the logicals — no artificial variables; primal
/// feasibility from any basis is restored by the composite phase 1, or by
/// the dual simplex when the basis prices dual-feasible
/// (SimplexOptions::warm_start_mode).
class RevisedSimplex {
 public:
  RevisedSimplex(const LpModel& model, const SimplexOptions& options,
                 const LpBasis* warm_start)
      : model_(model), opt_(options), warm_(warm_start) {}

  Result<LpSolution> Run() {
    Status built = Build();
    if (!built.ok()) return built;
    Timer timer;
    if (!TryWarmBasis()) ColdBasis();
    Status factored = Refactorize();
    if (!factored.ok()) {
      if (!warm_used_) return factored;
      // A singular warm basis falls back to the cold start.
      warm_used_ = false;
      ColdBasis();
      factored = Refactorize();
      if (!factored.ok()) return factored;
    }

    // Dual simplex: when the start basis prices dual-feasible under the
    // real objective, repairing primal feasibility dually costs far fewer
    // pivots than composite phase 1 (warm_start_mode picks the policy).
    // The primal phases below then merely verify — phase 1 no-ops on the
    // feasible basis and phase 2's full pricing scan certifies
    // optimality, so the final objective is identical to the primal path
    // by construction.
    bool dual_optimal = false;
    const bool try_dual =
        opt_.warm_start_mode == WarmStartMode::kDual ||
        (opt_.warm_start_mode == WarmStartMode::kAuto && warm_used_ &&
         !PrimalFeasible());
    if (try_dual) {
      SetPhase2Cost();
      if (DualFeasible()) {
        Status dual = SolveDual(&timer, &dual_optimal);
        if (!dual.ok()) return dual;
      }
    }

    // Phase 1: restore primal feasibility (no-op when already feasible).
    cost_.assign(num_cols_, 0.0);
    const int before_phase1 = total_iterations_;
    Status p1 = Iterate(&timer, /*phase1=*/true);
    if (!p1.ok()) return p1;
    phase1_iterations_ = total_iterations_ - before_phase1;

    // Phase 2: optimize the real objective.
    SetPhase2Cost();
    Status p2 = Iterate(&timer, /*phase1=*/false);
    if (!p2.ok()) return p2;

    LpSolution sol;
    sol.x.resize(model_.num_vars());
    for (int j = 0; j < model_.num_vars(); ++j) sol.x[j] = Value(j);
    sol.objective = model_.ObjectiveValue(sol.x);
    sol.dual_values = ExportDuals();
    stats_.eta_count = factor_->eta_count();
    stats_.eta_nonzeros = factor_->eta_nonzeros();
    stats_.refactorizations = factor_->factorizations();
    sol.iterations = total_iterations_;
    sol.phase1_iterations = phase1_iterations_;
    sol.factorizations = factor_->factorizations();
    sol.warm_started = warm_used_;
    sol.dual_simplex_used = dual_optimal;
    sol.basis = ExportBasis();
    sol.solve_seconds = timer.ElapsedSeconds();
    sol.stats = stats_;
    return sol;
  }

 private:
  // ---- setup -------------------------------------------------------------

  Status Build() {
    n_struct_ = model_.num_vars();
    num_rows_ = model_.num_rows();
    num_cols_ = n_struct_ + num_rows_;

    lower_.assign(num_cols_, 0.0);
    upper_.assign(num_cols_, 0.0);
    for (int j = 0; j < n_struct_; ++j) {
      lower_[j] = model_.lower(j);
      upper_[j] = model_.upper(j);
      if (!std::isfinite(lower_[j])) {
        return Status::NotImplemented("simplex requires finite lower bounds");
      }
      if (upper_[j] < lower_[j] - opt_.tolerance) {
        return Status::Infeasible("variable with empty bound interval");
      }
    }

    cols_.assign(num_cols_, {});
    rhs_.assign(num_rows_, 0.0);
    for (int i = 0; i < num_rows_; ++i) {
      const LpRow& row = model_.row(i);
      const double sign = row.type == RowType::kGreaterEqual ? -1.0 : 1.0;
      rhs_[i] = sign * row.rhs;
      for (const LpTerm& t : row.terms) {
        if (t.var < 0 || t.var >= n_struct_) {
          return Status::InvalidArgument("row references unknown variable");
        }
        AddCoef(t.var, i, sign * t.coef);
      }
      const int logical = n_struct_ + i;
      cols_[logical].emplace_back(i, 1.0);
      lower_[logical] = 0.0;
      upper_[logical] = row.type == RowType::kEqual ? 0.0 : kLpInfinity;
    }

    status_.assign(num_cols_, VarStatus::kAtLower);
    cost_.assign(num_cols_, 0.0);
    basis_.assign(num_rows_, -1);
    pos_of_basic_.assign(num_cols_, -1);
    basic_value_.assign(num_rows_, 0.0);
    cand_capacity_ =
        opt_.candidate_list_size > 0
            ? opt_.candidate_list_size
            : std::clamp(
                  static_cast<int>(2.0 * std::sqrt(
                                             static_cast<double>(num_cols_))),
                  64, 1024);
    factor_ = opt_.basis == SimplexBasisType::kDense ? MakeDenseFactorization()
                                                     : MakeLuFactorization();
    return Status::OK();
  }

  void AddCoef(int col, int row, double coef) {
    if (coef == 0.0) return;
    auto& c = cols_[col];
    for (auto& [r, a] : c) {
      if (r == row) {
        a += coef;
        return;
      }
    }
    c.emplace_back(row, coef);
  }

  /// All logicals basic: the identity basis, always factorizable.
  void ColdBasis() {
    for (int j = 0; j < num_cols_; ++j) {
      status_[j] = VarStatus::kAtLower;
      pos_of_basic_[j] = -1;
    }
    for (int i = 0; i < num_rows_; ++i) {
      const int logical = n_struct_ + i;
      basis_[i] = logical;
      status_[logical] = VarStatus::kBasic;
      pos_of_basic_[logical] = i;
    }
  }

  /// Seeds statuses from the caller's basis; repairs the basic set to
  /// exactly num_rows_ columns. Returns false when no usable warm basis
  /// was supplied (caller then cold-starts).
  bool TryWarmBasis() {
    if (warm_ == nullptr || warm_->Empty() ||
        !warm_->Compatible(n_struct_, num_rows_)) {
      return false;
    }
    auto apply = [&](int col, VarBasisStatus s) {
      switch (s) {
        case VarBasisStatus::kBasic:
          status_[col] = VarStatus::kBasic;
          break;
        case VarBasisStatus::kNonbasicUpper:
          status_[col] = std::isfinite(upper_[col]) ? VarStatus::kAtUpper
                                                    : VarStatus::kAtLower;
          break;
        case VarBasisStatus::kNonbasicLower:
          status_[col] = VarStatus::kAtLower;
          break;
      }
    };
    for (int j = 0; j < n_struct_; ++j) apply(j, warm_->structural[j]);
    for (int i = 0; i < num_rows_; ++i) {
      apply(n_struct_ + i, warm_->logical[i]);
    }

    std::vector<int> basics;
    basics.reserve(num_rows_);
    for (int j = 0; j < num_cols_; ++j) {
      if (status_[j] == VarStatus::kBasic) basics.push_back(j);
    }
    // Too many: demote from the tail (logicals first, keeping the
    // structural part of the warm basis). Too few: promote nonbasic
    // logicals.
    while (static_cast<int>(basics.size()) > num_rows_) {
      status_[basics.back()] = VarStatus::kAtLower;
      basics.pop_back();
    }
    for (int i = 0; i < num_rows_ &&
                    static_cast<int>(basics.size()) < num_rows_;
         ++i) {
      const int logical = n_struct_ + i;
      if (status_[logical] != VarStatus::kBasic) {
        status_[logical] = VarStatus::kBasic;
        basics.push_back(logical);
      }
    }
    if (static_cast<int>(basics.size()) != num_rows_) return false;
    for (int i = 0; i < num_rows_; ++i) {
      basis_[i] = basics[i];
      pos_of_basic_[basics[i]] = i;
    }
    warm_used_ = true;
    return true;
  }

  /// Row duals in the model's own sense: y solves B' y = c_B under the
  /// phase-2 internal cost, mapped back through the internal
  /// sign-normalizations (objective sense s, >=-row negation s_i) so that
  /// c_j - sum_i y_i a_ij is structural j's reduced cost in the original
  /// model. Called at the end of Run(), when cost_ is the phase-2 vector.
  std::vector<double> ExportDuals() const {
    std::vector<double> y(num_rows_, 0.0);
    bool any = false;
    for (int pos = 0; pos < num_rows_; ++pos) {
      const double cb = cost_[basis_[pos]];
      if (cb != 0.0) {
        y[pos] = cb;
        any = true;
      }
    }
    if (any) factor_->Btran(&y);
    const double sense = model_.maximize() ? 1.0 : -1.0;
    for (int i = 0; i < num_rows_; ++i) {
      const double row_sign =
          model_.row(i).type == RowType::kGreaterEqual ? -1.0 : 1.0;
      y[i] *= sense * row_sign;
    }
    return y;
  }

  LpBasis ExportBasis() const {
    LpBasis basis;
    auto map = [](VarStatus s) {
      switch (s) {
        case VarStatus::kBasic:
          return VarBasisStatus::kBasic;
        case VarStatus::kAtUpper:
          return VarBasisStatus::kNonbasicUpper;
        case VarStatus::kAtLower:
          break;
      }
      return VarBasisStatus::kNonbasicLower;
    };
    basis.structural.resize(n_struct_);
    for (int j = 0; j < n_struct_; ++j) basis.structural[j] = map(status_[j]);
    basis.logical.resize(num_rows_);
    for (int i = 0; i < num_rows_; ++i) {
      basis.logical[i] = map(status_[n_struct_ + i]);
    }
    return basis;
  }

  // ---- accessors ----------------------------------------------------------

  double Value(int j) const {
    switch (status_[j]) {
      case VarStatus::kBasic:
        return basic_value_[pos_of_basic_[j]];
      case VarStatus::kAtLower:
        return lower_[j];
      case VarStatus::kAtUpper:
        return upper_[j];
    }
    return 0.0;
  }

  void SetPhase2Cost() {
    const double sign = model_.maximize() ? 1.0 : -1.0;
    std::fill(cost_.begin(), cost_.end(), 0.0);
    for (int j = 0; j < model_.num_vars(); ++j) {
      cost_[j] = sign * model_.objective(j);
    }
  }

  /// Factorizes the current basis and recomputes x_B = B^-1 (b - N x_N).
  Status Refactorize() {
    Timer t;
    Status st = factor_->Factorize(cols_, basis_);
    if (!st.ok()) return st;
    ComputeBasicValues();
    stats_.factor_seconds += t.ElapsedSeconds();
    // Incrementally maintained reduced costs drift past a refactorization
    // boundary; force the next pricing decision onto fresh numbers.
    cand_.clear();
    cand_score_.clear();
    return Status::OK();
  }

  /// Adaptive refactorization trigger (RefactorPolicy::kAdaptive): fold
  /// the eta file back into a fresh LU when it outgrew the factors
  /// (density) or has already charged more Ftran/Btran work than a
  /// refactorization costs (rent-or-buy). refactor_interval stays as the
  /// hard cap under both policies. Every input is a deterministic work
  /// counter — no wall clock — so the decision replays identically across
  /// machines and worker counts.
  bool ShouldRefactor() const {
    const int etas = factor_->eta_count();
    if (etas == 0) return false;
    if (etas >= opt_.refactor_interval) return true;
    if (opt_.refactor_policy != RefactorPolicy::kAdaptive) return false;
    if (static_cast<double>(factor_->eta_nonzeros()) >
        opt_.eta_density_limit *
            static_cast<double>(factor_->factor_nonzeros())) {
      return true;
    }
    return static_cast<double>(factor_->eta_ops_since_factor()) >
           opt_.eta_ops_multiplier * static_cast<double>(factor_->factor_ops());
  }

  void ComputeBasicValues() {
    std::vector<double> r = rhs_;
    for (int j = 0; j < num_cols_; ++j) {
      if (status_[j] == VarStatus::kBasic) continue;
      const double v = Value(j);
      if (v == 0.0) continue;
      for (const auto& [row, a] : cols_[j]) r[row] -= a * v;
    }
    factor_->Ftran(&r);
    basic_value_ = std::move(r);
  }

  bool PrimalFeasible() const {
    for (int pos = 0; pos < num_rows_; ++pos) {
      const int j = basis_[pos];
      const double v = basic_value_[pos];
      if (v < lower_[j] - kFeasTolerance || v > upper_[j] + kFeasTolerance) {
        return false;
      }
    }
    return true;
  }

  /// Objective-improvement slack of the stall detector, derived from the
  /// feasibility tolerance instead of a hard-coded epsilon so callers that
  /// loosen `tolerance` do not see degenerate plateaus masked by
  /// sub-tolerance "improvements" (and vice versa). Degenerate pivots
  /// improve by exactly 0, so they always count toward the Bland trigger.
  double StallSlack(double reference) const {
    return opt_.tolerance * std::max(1.0, std::abs(reference));
  }

  // ---- dual simplex --------------------------------------------------------

  /// Recomputes every nonbasic reduced cost d_j = c_j - y' A_j from
  /// scratch into d_ (basic entries 0).
  void RecomputeReducedCosts() {
    Timer t;
    std::vector<double> y(num_rows_, 0.0);
    bool any = false;
    for (int pos = 0; pos < num_rows_; ++pos) {
      const double cb = cost_[basis_[pos]];
      if (cb != 0.0) {
        y[pos] = cb;
        any = true;
      }
    }
    if (any) factor_->Btran(&y);
    stats_.btran_seconds += t.ElapsedSeconds();
    t.Reset();
    d_.assign(num_cols_, 0.0);
    for (int j = 0; j < num_cols_; ++j) {
      if (status_[j] == VarStatus::kBasic) continue;
      double d = cost_[j];
      if (any) {
        for (const auto& [row, a] : cols_[j]) d -= y[row] * a;
      }
      d_[j] = d;
    }
    stats_.pricing_seconds += t.ElapsedSeconds();
  }

  /// True when the current basis is dual-feasible under cost_ (within a
  /// slightly loosened tolerance: a parent solve declares optimality with
  /// reduced costs up to `tolerance` on the wrong side, and those must
  /// still count as dual-feasible here). Fills d_ as a side effect.
  bool DualFeasible() {
    RecomputeReducedCosts();
    const double dtol = 10.0 * opt_.tolerance;
    for (int j = 0; j < num_cols_; ++j) {
      if (status_[j] == VarStatus::kBasic) continue;
      if (upper_[j] - lower_[j] < opt_.tolerance) continue;  // fixed
      if (status_[j] == VarStatus::kAtLower && d_[j] > dtol) return false;
      if (status_[j] == VarStatus::kAtUpper && d_[j] < -dtol) return false;
    }
    return true;
  }

  /// Dual simplex over the real (phase-2) objective from the current
  /// dual-feasible basis: repeatedly drives the most-violated basic
  /// variable to its violated bound, choosing the entering column by the
  /// bound-flipping dual ratio test (boxed columns whose whole range
  /// cannot absorb the infeasibility flip to their other bound without a
  /// basis change). Reduced costs are maintained incrementally from the
  /// pivot row (one Btran per pivot — the path the ROADMAP notes was
  /// already in place).
  ///
  /// On success *optimal is true and the basis is primal- and
  /// dual-feasible. A stall, a suspected-infeasible row, or an unstable
  /// pivot returns OK with *optimal false: the caller falls back to the
  /// composite primal phase 1 from wherever the dual stopped, which owns
  /// the definitive infeasibility verdict. Only hard limit/numerical
  /// failures propagate as errors.
  Status SolveDual(Timer* timer, bool* optimal) {
    *optimal = false;
    const bool timed = opt_.time_limit_seconds < kNoTimeLimit;
    const bool devex_rows = opt_.dual_row_pricing == DualRowPricing::kDevex;
    // Dual Devex reference weights, one per basis position. Like the
    // primal framework they start the reference frame at 1 and only ever
    // grow until a reset.
    dual_gamma_.assign(num_rows_, 1.0);
    int stall = 0;
    // Finite sentinel: StallSlack(inf) would poison the comparison.
    double best_infeas = 1e300;
    int bad_pivots = 0;
    std::vector<double> rho(num_rows_), w(num_rows_), alpha(num_cols_, 0.0);
    std::vector<double> flip_rhs(num_rows_);
    struct DualCandidate {
      int col;
      double step;   ///< |dual step| the pivot would take
      double alpha;  ///< pivot-row entry
    };
    std::vector<DualCandidate> cands;
    std::vector<int> flips;

    for (;;) {
      // Leaving row. kMaxViolation takes the basic variable with the
      // largest bound violation; kDevex weighs each violation by its
      // reference weight (score viol^2 / gamma_r) so rows whose dual edge
      // is steep — large true infeasibility per unit of |B^-T e_r| — win,
      // mirroring primal Devex's d^2 / gamma column rule.
      int r = -1;
      double viol = 0.0;
      bool below = false;
      double best_score = 0.0;
      double total_infeas = 0.0;
      for (int pos = 0; pos < num_rows_; ++pos) {
        const int bj = basis_[pos];
        const double v = basic_value_[pos];
        const double under = lower_[bj] - v;
        const double over = std::isfinite(upper_[bj]) ? v - upper_[bj]
                                                      : -kLpInfinity;
        if (under > 0.0) total_infeas += under;
        if (over > 0.0) total_infeas += over;
        const bool is_below = under > over;
        const double infeas = is_below ? under : over;
        if (infeas <= kFeasTolerance) continue;
        const double score =
            devex_rows ? infeas * infeas / dual_gamma_[pos] : infeas;
        if (score > best_score) {
          best_score = score;
          viol = infeas;
          r = pos;
          below = is_below;
        }
      }
      if (r < 0) {
        *optimal = true;
        return Status::OK();
      }
      if (total_iterations_ >= opt_.max_iterations) {
        return Status::ResourceExhausted("simplex iteration limit");
      }
      if (timed && timer->ElapsedSeconds() > opt_.time_limit_seconds) {
        return Status::ResourceExhausted("simplex time limit");
      }
      // Stall detection mirrors the primal rule (tolerance-derived slack
      // on the monotone quantity, here the total infeasibility).
      if (total_infeas < best_infeas - StallSlack(best_infeas)) {
        stall = 0;
        best_infeas = total_infeas;
      } else {
        ++stall;
      }
      if (stall > opt_.stall_threshold) return Status::OK();  // fall back

      // Pivot row in nonbasic coordinates: alpha_j = rho' A_j with
      // rho = B^-T e_r.
      Timer phase_timer;
      rho.assign(num_rows_, 0.0);
      rho[r] = 1.0;
      factor_->Btran(&rho);
      stats_.btran_seconds += phase_timer.ElapsedSeconds();

      // Eligible entering columns: moving them toward/away from their
      // bound must push x_B(r) toward the violated bound. dir folds the
      // below/above cases into one sign test.
      phase_timer.Reset();
      const double dir = below ? 1.0 : -1.0;
      cands.clear();
      for (int j = 0; j < num_cols_; ++j) {
        alpha[j] = 0.0;
        if (status_[j] == VarStatus::kBasic) continue;
        if (upper_[j] - lower_[j] < opt_.tolerance) continue;  // fixed
        double a = 0.0;
        for (const auto& [row, coef] : cols_[j]) a += rho[row] * coef;
        alpha[j] = a;
        const bool eligible = status_[j] == VarStatus::kAtLower
                                  ? dir * a < -kDualPivotTol
                                  : dir * a > kDualPivotTol;
        if (!eligible) continue;
        // The admissible dual step toward this column's sign flip;
        // tolerance noise can make it marginally negative.
        cands.push_back({j, std::max(0.0, dir * (d_[j] / a)), a});
      }
      stats_.pricing_seconds += phase_timer.ElapsedSeconds();
      if (cands.empty()) return Status::OK();  // suspected infeasible

      // Bound-flipping ratio test: walk candidates by increasing dual
      // step; a boxed column whose full range cannot absorb the remaining
      // infeasibility flips to its other bound (no basis change) and the
      // walk continues — its reduced cost crosses zero before the chosen
      // step, so dual feasibility survives the flip.
      phase_timer.Reset();
      std::sort(cands.begin(), cands.end(),
                [](const DualCandidate& a, const DualCandidate& b) {
                  if (a.step != b.step) return a.step < b.step;
                  return std::abs(a.alpha) > std::abs(b.alpha);
                });
      double remaining = viol;
      int entering = -1;
      flips.clear();
      for (const DualCandidate& cand : cands) {
        const double range = upper_[cand.col] - lower_[cand.col];
        const double capacity =
            std::isfinite(range) ? range * std::abs(cand.alpha) : kLpInfinity;
        if (capacity < remaining - kFeasTolerance) {
          flips.push_back(cand.col);
          remaining -= capacity;
        } else {
          entering = cand.col;
          break;
        }
      }
      stats_.ratio_test_seconds += phase_timer.ElapsedSeconds();
      if (entering < 0) return Status::OK();  // flips cannot repair: fall back

      // Entering column in basic coordinates — validated BEFORE the flips
      // are applied, so an aborted pivot leaves the iterate untouched
      // (flips are only dual-feasible together with the dual step).
      phase_timer.Reset();
      w.assign(num_rows_, 0.0);
      for (const auto& [row, a] : cols_[entering]) w[row] = a;
      factor_->Ftran(&w);
      stats_.ftran_seconds += phase_timer.ElapsedSeconds();
      const double alpha_rq = w[r];
      if (!std::isfinite(alpha_rq) || std::abs(alpha_rq) < kDualPivotTol ||
          alpha_rq * alpha[entering] < 0.0) {
        // The Ftran disagrees with the eta-updated row scan: refactorize
        // once and retry the row; a second failure abandons the dual.
        if (++bad_pivots > 1) return Status::OK();
        Status refactored = Refactorize();
        if (!refactored.ok()) return refactored;
        RecomputeReducedCosts();
        continue;
      }
      bad_pivots = 0;

      // Apply the planned flips (atomically, only now that the pivot is
      // committed): x_B -= B^-1 (sum of flipped-column deltas).
      if (!flips.empty()) {
        phase_timer.Reset();
        flip_rhs.assign(num_rows_, 0.0);
        for (int c : flips) {
          const double range = upper_[c] - lower_[c];
          const double step =
              status_[c] == VarStatus::kAtLower ? range : -range;
          status_[c] = status_[c] == VarStatus::kAtLower ? VarStatus::kAtUpper
                                                         : VarStatus::kAtLower;
          for (const auto& [row, coef] : cols_[c]) {
            flip_rhs[row] += coef * step;
          }
        }
        factor_->Ftran(&flip_rhs);
        for (int pos = 0; pos < num_rows_; ++pos) {
          basic_value_[pos] -= flip_rhs[pos];
        }
        stats_.ftran_seconds += phase_timer.ElapsedSeconds();
        stats_.dual_bound_flips += static_cast<int64_t>(flips.size());
      }

      // Primal step driving x_B(r) exactly onto its violated bound, and
      // the dual step from the entering column's exact reduced cost
      // (recomputed through w to anchor the incremental d_ updates).
      const int leaving = basis_[r];
      const double bound_r = below ? lower_[leaving] : upper_[leaving];
      const double t_q = (basic_value_[r] - bound_r) / alpha_rq;
      double d_q = cost_[entering];
      for (int pos = 0; pos < num_rows_; ++pos) {
        const double cb = cost_[basis_[pos]];
        if (cb != 0.0) d_q -= cb * w[pos];
      }
      const double theta = d_q / alpha_rq;

      phase_timer.Reset();
      for (int j = 0; j < num_cols_; ++j) {
        if (status_[j] == VarStatus::kBasic || alpha[j] == 0.0) continue;
        d_[j] -= theta * alpha[j];
      }
      stats_.pricing_seconds += phase_timer.ElapsedSeconds();

      // Dual Devex weight update, free off the entering column's Ftran
      // image w (w_i = alpha-row entry of basic position i against the
      // entering column): gamma_i = max(gamma_i, (w_i / alpha_rq)^2 *
      // gamma_r) for i != r, and the position r weight restarts at
      // max(gamma_r / alpha_rq^2, 1) for its new basic variable. Reset
      // the reference framework when weights blow up, as in the primal.
      if (devex_rows) {
        const double gamma_r = dual_gamma_[r];
        const double inv_rq2 = 1.0 / (alpha_rq * alpha_rq);
        double max_gamma = 1.0;
        for (int pos = 0; pos < num_rows_; ++pos) {
          if (pos == r || w[pos] == 0.0) continue;
          const double cand = w[pos] * w[pos] * inv_rq2 * gamma_r;
          if (cand > dual_gamma_[pos]) dual_gamma_[pos] = cand;
          if (dual_gamma_[pos] > max_gamma) max_gamma = dual_gamma_[pos];
        }
        dual_gamma_[r] = std::max(gamma_r * inv_rq2, 1.0);
        if (std::max(max_gamma, dual_gamma_[r]) > 1e10) {
          dual_gamma_.assign(num_rows_, 1.0);
        }
      }

      // Pivot: entering becomes basic in row r; leaving lands on the bound
      // it violated.
      const double x_q_old = Value(entering);
      if (t_q != 0.0) {
        for (int pos = 0; pos < num_rows_; ++pos) {
          basic_value_[pos] -= t_q * w[pos];
        }
      }
      status_[leaving] = below ? VarStatus::kAtLower : VarStatus::kAtUpper;
      pos_of_basic_[leaving] = -1;
      d_[leaving] = -theta;
      basis_[r] = entering;
      pos_of_basic_[entering] = r;
      status_[entering] = VarStatus::kBasic;
      d_[entering] = 0.0;
      basic_value_[r] = x_q_old + t_q;
      ++total_iterations_;
      ++stats_.dual_pivots;

      phase_timer.Reset();
      Status updated = factor_->Update(w, r);
      stats_.factor_seconds += phase_timer.ElapsedSeconds();
      if (!updated.ok() || ShouldRefactor()) {
        Status refactored = Refactorize();
        if (!refactored.ok()) return refactored;
        RecomputeReducedCosts();
      }
    }
  }

  // ---- primal iteration ----------------------------------------------------

  /// Phase-1 cost: push each out-of-bounds basic variable back toward its
  /// violated bound. Returns the total violation.
  double SetPhase1Cost() {
    std::fill(cost_.begin(), cost_.end(), 0.0);
    double infeas = 0.0;
    for (int pos = 0; pos < num_rows_; ++pos) {
      const int j = basis_[pos];
      const double v = basic_value_[pos];
      if (v < lower_[j] - kFeasTolerance) {
        cost_[j] = 1.0;  // maximize => increase v
        infeas += lower_[j] - v;
      } else if (v > upper_[j] + kFeasTolerance) {
        cost_[j] = -1.0;
        infeas += v - upper_[j];
      }
    }
    return infeas;
  }

  double CurrentObjective() const {
    double acc = 0.0;
    for (int j = 0; j < num_cols_; ++j) {
      const double v = Value(j);
      if (v != 0.0) acc += cost_[j] * v;
    }
    return acc;
  }

  /// One candidate of the partial-pricing list: a nonbasic column plus its
  /// incrementally maintained reduced cost.
  struct PricingCandidate {
    int col = -1;
    double d = 0.0;
  };

  /// Scans the candidate list only, pruning members that became basic,
  /// fixed, or ineligible. Returns the best entering column or -1 (list
  /// dry — caller runs a full scan).
  int PriceCandidates(int* direction, double* d_enter) {
    int best = -1;
    double best_score = 0.0;
    size_t out = 0;
    for (const PricingCandidate& cand : cand_) {
      const int j = cand.col;
      if (status_[j] == VarStatus::kBasic) continue;
      if (upper_[j] - lower_[j] < opt_.tolerance) continue;
      int dir = 0;
      if (status_[j] == VarStatus::kAtLower && cand.d > opt_.tolerance) {
        dir = +1;
      } else if (status_[j] == VarStatus::kAtUpper &&
                 cand.d < -opt_.tolerance) {
        dir = -1;
      } else {
        continue;  // pruned: no longer an improving column
      }
      cand_[out++] = cand;
      const double score = opt_.devex_pricing ? cand.d * cand.d / devex_[j]
                                              : std::abs(cand.d);
      if (score > best_score) {
        best_score = score;
        best = j;
        *direction = dir;
        *d_enter = cand.d;
      }
    }
    cand_.resize(out);
    return best;
  }

  void DropCandidate(int col) {
    for (size_t i = 0; i < cand_.size(); ++i) {
      if (cand_[i].col == col) {
        cand_[i] = cand_.back();
        cand_.pop_back();
        return;
      }
    }
  }

  /// Full pricing scan: recomputes y = B^-T c_B and every nonbasic reduced
  /// cost. Returns the entering column (Bland: first eligible; otherwise
  /// best Devex/Dantzig score) or -1 when none is eligible (optimal). With
  /// `rebuild_list` the top-scored eligible columns are kept as the new
  /// candidate list.
  int FullPricingScan(bool bland, bool rebuild_list, std::vector<double>* y,
                      int* direction, double* d_enter) {
    Timer phase_timer;
    y->assign(num_rows_, 0.0);
    bool any_cost = false;
    for (int pos = 0; pos < num_rows_; ++pos) {
      const double cb = cost_[basis_[pos]];
      if (cb != 0.0) {
        (*y)[pos] = cb;
        any_cost = true;
      }
    }
    if (any_cost) factor_->Btran(y);
    stats_.btran_seconds += phase_timer.ElapsedSeconds();

    phase_timer.Reset();
    ++stats_.full_pricing_scans;
    cand_.clear();
    cand_score_.clear();
    int entering = -1;
    *direction = 0;
    double best_score = 0.0;
    for (int j = 0; j < num_cols_; ++j) {
      if (status_[j] == VarStatus::kBasic) continue;
      if (upper_[j] - lower_[j] < opt_.tolerance) continue;  // fixed
      double d = cost_[j];
      if (any_cost) {
        for (const auto& [row, a] : cols_[j]) d -= (*y)[row] * a;
      }
      int dir = 0;
      if (status_[j] == VarStatus::kAtLower && d > opt_.tolerance) {
        dir = +1;
      } else if (status_[j] == VarStatus::kAtUpper && d < -opt_.tolerance) {
        dir = -1;
      } else {
        continue;
      }
      if (bland) {  // first eligible index
        entering = j;
        *direction = dir;
        *d_enter = d;
        break;
      }
      const double score =
          opt_.devex_pricing ? d * d / devex_[j] : std::abs(d);
      if (rebuild_list) PushCandidate({j, d}, score);
      if (score > best_score) {
        best_score = score;
        entering = j;
        *direction = dir;
        *d_enter = d;
      }
    }
    stats_.pricing_seconds += phase_timer.ElapsedSeconds();
    return entering;
  }

  /// Keeps the candidate list at the top-`cand_capacity_` scores seen so
  /// far in this scan (cheap replace-the-minimum; the list is small).
  void PushCandidate(PricingCandidate cand, double score) {
    if (static_cast<int>(cand_.size()) < cand_capacity_) {
      cand_.push_back(cand);
      cand_score_.push_back(score);
      return;
    }
    size_t worst = 0;
    for (size_t i = 1; i < cand_score_.size(); ++i) {
      if (cand_score_[i] < cand_score_[worst]) worst = i;
    }
    if (score > cand_score_[worst]) {
      cand_[worst] = cand;
      cand_score_[worst] = score;
    }
  }

  Status Iterate(Timer* timer, bool phase1) {
    const bool timed = opt_.time_limit_seconds < kNoTimeLimit;
    int stall = 0;
    // Finite sentinel: StallSlack(-inf) would poison the comparison.
    double last_obj = -1e300;
    devex_.assign(num_cols_, 1.0);
    std::vector<double> y(num_rows_), w(num_rows_), rho;
    // Partial pricing only applies to phase 2: the composite phase-1 cost
    // vector changes every iteration, which invalidates incrementally
    // maintained reduced costs.
    const bool partial = !phase1 && opt_.pricing == PricingMode::kPartial;
    cand_.clear();
    cand_score_.clear();
    // Incrementally tracked objective (partial mode): recomputing
    // CurrentObjective() per iteration would cost O(num_cols), the very
    // scan the candidate list exists to avoid.
    double tracked_obj = partial ? CurrentObjective() : 0.0;

    for (;;) {
      if (phase1) {
        const double infeas = SetPhase1Cost();
        if (infeas <= kFeasTolerance) return Status::OK();
      }
      if (total_iterations_ >= opt_.max_iterations) {
        return Status::ResourceExhausted("simplex iteration limit");
      }
      if (timed && timer->ElapsedSeconds() > opt_.time_limit_seconds) {
        return Status::ResourceExhausted("simplex time limit");
      }
      const double cur = phase1 ? -CurrentInfeasibility()
                                : (partial ? tracked_obj : CurrentObjective());
      if (cur > last_obj + StallSlack(last_obj)) {
        stall = 0;
        last_obj = cur;
      } else {
        ++stall;
      }
      const bool bland = stall > opt_.stall_threshold;

      // Pricing: candidate list first (partial mode), full scan when the
      // list is dry, Bland always scans fully.
      int entering = -1;
      int direction = 0;
      double d_enter = 0.0;
      if (partial && !bland) {
        Timer cand_timer;
        entering = PriceCandidates(&direction, &d_enter);
        stats_.pricing_seconds += cand_timer.ElapsedSeconds();
        if (entering >= 0) ++stats_.candidate_hits;
      }
      if (entering < 0) {
        entering = FullPricingScan(bland, partial && !bland, &y, &direction,
                                   &d_enter);
      }
      if (entering < 0) {
        if (!phase1) return Status::OK();  // optimal
        if (CurrentInfeasibility() <= kInfeasAccept) return Status::OK();
        return Status::Infeasible("phase-1 infeasibility " +
                                  std::to_string(CurrentInfeasibility()));
      }

      // Direction in basic space: w = B^-1 A_e.
      Timer phase_timer;
      w.assign(num_rows_, 0.0);
      for (const auto& [row, a] : cols_[entering]) w[row] = a;
      factor_->Ftran(&w);
      stats_.ftran_seconds += phase_timer.ElapsedSeconds();

      if (partial && !bland) {
        // Anchor the incrementally maintained reduced cost before pivoting
        // on it: d_q = c_q - c_B' w, exact under the current basis. A
        // candidate whose drift flipped it ineligible is dropped and
        // pricing retried (the list eventually drains into a full scan).
        double d_exact = cost_[entering];
        for (int pos = 0; pos < num_rows_; ++pos) {
          const double cb = cost_[basis_[pos]];
          if (cb != 0.0) d_exact -= cb * w[pos];
        }
        const bool still_eligible =
            direction > 0 ? d_exact > opt_.tolerance
                          : d_exact < -opt_.tolerance;
        if (!still_eligible) {
          DropCandidate(entering);
          continue;
        }
        d_enter = d_exact;
      }
      // Only passes that change the solution count: a warm start from the
      // optimal basis of an identical LP reports 0 iterations (the final
      // optimality-detecting pricing pass is free).
      ++total_iterations_;
      ++stats_.primal_pivots;
      if (bland) ++stats_.bland_pivots;

      phase_timer.Reset();
      // Ratio test: entering moves by t >= 0 in `direction`. In phase 1 an
      // out-of-bounds basic variable moving toward feasibility blocks at
      // its violated bound (so it re-enters the feasible box exactly
      // there); one moving away never blocks.
      double t_limit = upper_[entering] - lower_[entering];  // bound flip
      int leaving_pos = -1;
      bool leaving_to_upper = false;
      for (int pos = 0; pos < num_rows_; ++pos) {
        const double delta = direction * w[pos];
        if (std::abs(delta) <= opt_.tolerance) continue;
        const int bj = basis_[pos];
        const double xb = basic_value_[pos];
        double t;
        bool to_upper;
        if (phase1 && xb < lower_[bj] - kFeasTolerance) {
          if (delta >= 0.0) continue;  // moving further below: no block
          t = (lower_[bj] - xb) / (-delta);
          to_upper = false;
        } else if (phase1 && xb > upper_[bj] + kFeasTolerance) {
          if (delta <= 0.0) continue;
          t = (xb - upper_[bj]) / delta;
          to_upper = true;
        } else if (delta > 0.0) {
          t = std::max(0.0, xb - lower_[bj]) / delta;
          to_upper = false;
        } else {
          if (!std::isfinite(upper_[bj])) continue;
          t = std::max(0.0, upper_[bj] - xb) / (-delta);
          to_upper = true;
        }
        if (t < t_limit) {
          t_limit = t;
          leaving_pos = pos;
          leaving_to_upper = to_upper;
        }
      }
      stats_.ratio_test_seconds += phase_timer.ElapsedSeconds();
      if (!std::isfinite(t_limit)) {
        if (phase1) {
          return Status::NumericalError("unbounded phase-1 ray");
        }
        return Status::Unbounded("LP is unbounded");
      }
      const double t = std::max(0.0, t_limit);

      if (t > 0.0) {
        for (int pos = 0; pos < num_rows_; ++pos) {
          basic_value_[pos] -= direction * t * w[pos];
        }
        if (partial) tracked_obj += d_enter * direction * t;
      }
      if (leaving_pos < 0) {
        // Bound flip: entering jumps to its other bound.
        status_[entering] =
            direction > 0 ? VarStatus::kAtUpper : VarStatus::kAtLower;
        continue;
      }

      // Devex reference-row BTRAN must see the pre-update basis; partial
      // pricing reuses the same rho for the incremental reduced-cost
      // updates of the list members.
      const bool update_devex = opt_.devex_pricing && !bland;
      // Under Bland the full scan just cleared the candidate list, so the
      // incremental update has nothing to do — skip the rho Btran too.
      const bool partial_update = partial && !bland;
      const bool need_rho = update_devex || partial_update;
      if (need_rho) {
        phase_timer.Reset();
        rho.assign(num_rows_, 0.0);
        rho[leaving_pos] = 1.0;
        factor_->Btran(&rho);
        stats_.btran_seconds += phase_timer.ElapsedSeconds();
      }

      // Pivot: entering becomes basic in leaving_pos.
      const int leaving = basis_[leaving_pos];
      const double alpha_rq = w[leaving_pos];
      status_[leaving] =
          leaving_to_upper ? VarStatus::kAtUpper : VarStatus::kAtLower;
      pos_of_basic_[leaving] = -1;
      basis_[leaving_pos] = entering;
      pos_of_basic_[entering] = leaving_pos;
      status_[entering] = VarStatus::kBasic;
      basic_value_[leaving_pos] =
          direction > 0 ? lower_[entering] + t : upper_[entering] - t;

      if (partial_update) {
        phase_timer.Reset();
        UpdateCandidatesAfterPivot(entering, leaving, d_enter, alpha_rq, rho,
                                   update_devex);
        stats_.pricing_seconds += phase_timer.ElapsedSeconds();
      } else if (update_devex) {
        phase_timer.Reset();
        UpdateDevexWeights(entering, leaving, alpha_rq, rho);
        stats_.pricing_seconds += phase_timer.ElapsedSeconds();
      }

      phase_timer.Reset();
      Status updated = factor_->Update(w, leaving_pos);
      stats_.factor_seconds += phase_timer.ElapsedSeconds();
      if (!updated.ok() || ShouldRefactor()) {
        Status refactored = Refactorize();
        if (!refactored.ok()) return refactored;
        // Re-anchor the incrementally tracked objective at the same
        // cadence the factorization is refreshed.
        if (partial) tracked_obj = CurrentObjective();
      }
    }
  }

  double CurrentInfeasibility() const {
    double infeas = 0.0;
    for (int pos = 0; pos < num_rows_; ++pos) {
      const int j = basis_[pos];
      const double v = basic_value_[pos];
      infeas += std::max(0.0, lower_[j] - v) + std::max(0.0, v - upper_[j]);
    }
    return infeas;
  }

  /// Devex update: gamma_j = max(gamma_j, (alpha_rj / alpha_rq)^2 gamma_q)
  /// over the pivot row alpha_r, with the leaving variable re-entering the
  /// nonbasic set at max(gamma_q / alpha_rq^2, 1).
  void UpdateDevexWeights(int entering, int leaving, double alpha_rq,
                          const std::vector<double>& rho) {
    const double gamma_q = devex_[entering];
    const double inv_rq2 = 1.0 / (alpha_rq * alpha_rq);
    for (int j = 0; j < num_cols_; ++j) {
      if (status_[j] == VarStatus::kBasic || j == leaving) continue;
      double alpha_rj = 0.0;
      for (const auto& [row, a] : cols_[j]) alpha_rj += rho[row] * a;
      if (alpha_rj == 0.0) continue;
      const double cand = alpha_rj * alpha_rj * inv_rq2 * gamma_q;
      if (cand > devex_[j]) devex_[j] = cand;
    }
    devex_[leaving] = std::max(gamma_q * inv_rq2, 1.0);
    // Restart the reference framework when weights blow up.
    if (devex_[leaving] > 1e10) devex_.assign(num_cols_, 1.0);
  }

  /// Partial-pricing post-pivot update, one pass over the list: each
  /// surviving member's reduced cost moves by -theta * alpha_rj (the
  /// incremental rule d' = d - theta alpha_r, theta = d_q / alpha_rq) and
  /// its Devex weight by the same reference-row formula as the full path —
  /// restricted to the list, which is the entire point. The leaving
  /// variable re-enters the nonbasic set with d = -theta and joins the
  /// list when that is an improving direction.
  void UpdateCandidatesAfterPivot(int entering, int leaving, double d_q,
                                  double alpha_rq,
                                  const std::vector<double>& rho,
                                  bool update_devex) {
    const double theta = d_q / alpha_rq;
    const double gamma_q = devex_[entering];
    const double inv_rq2 = 1.0 / (alpha_rq * alpha_rq);
    size_t out = 0;
    for (const PricingCandidate& cand : cand_) {
      if (cand.col == entering || cand.col == leaving ||
          status_[cand.col] == VarStatus::kBasic) {
        continue;
      }
      double alpha_rj = 0.0;
      for (const auto& [row, a] : cols_[cand.col]) alpha_rj += rho[row] * a;
      PricingCandidate updated = cand;
      updated.d -= theta * alpha_rj;
      if (update_devex && alpha_rj != 0.0) {
        const double score = alpha_rj * alpha_rj * inv_rq2 * gamma_q;
        if (score > devex_[cand.col]) devex_[cand.col] = score;
      }
      cand_[out++] = updated;
    }
    cand_.resize(out);
    const double d_leaving = -theta;
    const bool leaving_eligible =
        status_[leaving] == VarStatus::kAtLower
            ? d_leaving > opt_.tolerance
            : d_leaving < -opt_.tolerance;
    if (leaving_eligible &&
        static_cast<int>(cand_.size()) < 2 * cand_capacity_) {
      cand_.push_back({leaving, d_leaving});
    }
    devex_[leaving] = std::max(gamma_q * inv_rq2, 1.0);
    if (devex_[leaving] > 1e10) devex_.assign(num_cols_, 1.0);
  }

  const LpModel& model_;
  const SimplexOptions opt_;
  const LpBasis* warm_ = nullptr;

  int n_struct_ = 0;
  int num_rows_ = 0;
  int num_cols_ = 0;

  /// Column-wise sparse storage: (row, coef) pairs per column.
  std::vector<SparseColumn> cols_;
  std::vector<double> lower_, upper_, cost_, rhs_;

  std::vector<VarStatus> status_;
  std::vector<int> basis_;          ///< position -> basic column
  std::vector<int> pos_of_basic_;   ///< column -> position (or -1)
  std::vector<double> basic_value_;  ///< position -> value of its basic var
  std::vector<double> devex_;        ///< Devex reference weights
  std::vector<double> d_;            ///< dual simplex: nonbasic reduced costs
  std::vector<double> dual_gamma_;   ///< dual Devex row weights (per position)

  /// Partial-pricing candidate list (+ scores during a rebuild scan).
  std::vector<PricingCandidate> cand_;
  std::vector<double> cand_score_;
  int cand_capacity_ = 0;

  std::unique_ptr<BasisFactorization> factor_;
  bool warm_used_ = false;
  int total_iterations_ = 0;
  int phase1_iterations_ = 0;
  LpStats stats_;
};

}  // namespace

namespace {

/// Bridges the solve's LpStats onto the active "lp.solve" trace span:
/// deterministic pivot counters plus one stat-bridged child per phase.
/// Always the same six children (zero-duration included) so the span
/// structure stays bit-stable across runs.
void AttachLpTrace(TraceScope* span, const LpSolution& sol) {
  if (!span->active()) return;
  span->Counter("pivots", sol.iterations);
  span->Counter("phase1_pivots", sol.phase1_iterations);
  span->Counter("warm_started", sol.warm_started ? 1 : 0);
  span->Counter("dual_simplex", sol.dual_simplex_used ? 1 : 0);
  span->Counter("eta_count", sol.stats.eta_count);
  span->Counter("refactorizations", sol.stats.refactorizations);
  span->BridgeChild("lp.presolve", sol.stats.presolve_seconds);
  span->BridgeChild("lp.pricing", sol.stats.pricing_seconds);
  span->BridgeChild("lp.ratio_test", sol.stats.ratio_test_seconds);
  span->BridgeChild("lp.ftran", sol.stats.ftran_seconds);
  span->BridgeChild("lp.btran", sol.stats.btran_seconds);
  span->BridgeChild("lp.factor", sol.stats.factor_seconds);
}

}  // namespace

Result<LpSolution> SolveLp(const LpModel& model, const SimplexOptions& options,
                           const LpBasis* warm_start) {
  TraceScope lp_span("lp.solve");
  if (options.presolve) {
    // Presolve -> solve the reduced model -> postsolve back. The warm
    // basis (if any) is mapped through the reduction; the postsolved
    // solution carries an exact basis/dual/primal of the original model.
    Timer pre_timer;
    PresolveOptions popt;
    popt.tolerance = options.tolerance;
    Result<PresolvedLp> pre = PresolveLp(model, popt);
    if (!pre.ok()) return pre.status();
    const double presolve_seconds = pre_timer.ElapsedSeconds();

    SimplexOptions inner = options;
    inner.presolve = false;
    LpBasis mapped;
    const LpBasis* inner_warm = nullptr;
    if (warm_start != nullptr && !warm_start->Empty()) {
      mapped = pre->MapBasis(*warm_start);
      if (!mapped.Empty()) inner_warm = &mapped;
    }
    RevisedSimplex worker(pre->reduced(), inner, inner_warm);
    Result<LpSolution> reduced_sol = worker.Run();
    if (!reduced_sol.ok()) return reduced_sol.status();

    pre_timer.Reset();
    LpSolution full = pre->Postsolve(*reduced_sol);
    full.stats.presolve_seconds =
        presolve_seconds + pre_timer.ElapsedSeconds();
    full.stats.presolve_cols_removed = pre->stats().cols_removed();
    full.stats.presolve_rows_removed = pre->stats().rows_removed();
    AttachLpTrace(&lp_span, full);
    return full;
  }
  RevisedSimplex worker(model, options, warm_start);
  Result<LpSolution> sol = worker.Run();
  if (sol.ok()) AttachLpTrace(&lp_span, *sol);
  return sol;
}

}  // namespace savg
