#include "lp/simplex.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "lp/basis_lu.h"
#include "util/logging.h"

namespace savg {

namespace {

enum class VarStatus : uint8_t { kBasic, kAtLower, kAtUpper };

/// Per-variable bound violation below this is treated as feasible.
constexpr double kFeasTolerance = 1e-8;
/// Total violation accepted when phase 1 stalls at optimality.
constexpr double kInfeasAccept = 1e-6;
/// Time limits at or above this are "no limit" (skip the clock entirely).
constexpr double kNoTimeLimit = 1e17;

/// Internal working form:
///   maximize c'x  s.t.  A x = b,  l <= x <= u
/// with >= rows negated into <= and one logical column per row: [0, inf)
/// for inequalities, fixed [0, 0] for equalities. Columns 0..n_struct-1
/// are structural, then the logicals — no artificial variables; primal
/// feasibility from any basis is restored by the composite phase 1.
class RevisedSimplex {
 public:
  RevisedSimplex(const LpModel& model, const SimplexOptions& options,
                 const LpBasis* warm_start)
      : model_(model), opt_(options), warm_(warm_start) {}

  Result<LpSolution> Run() {
    Status built = Build();
    if (!built.ok()) return built;
    Timer timer;
    if (!TryWarmBasis()) ColdBasis();
    Status factored = Refactorize();
    if (!factored.ok()) {
      if (!warm_used_) return factored;
      // A singular warm basis falls back to the cold start.
      warm_used_ = false;
      ColdBasis();
      factored = Refactorize();
      if (!factored.ok()) return factored;
    }

    // Phase 1: restore primal feasibility (no-op when already feasible).
    cost_.assign(num_cols_, 0.0);
    Status p1 = Iterate(&timer, /*phase1=*/true);
    if (!p1.ok()) return p1;
    phase1_iterations_ = total_iterations_;

    // Phase 2: optimize the real objective.
    const double sign = model_.maximize() ? 1.0 : -1.0;
    std::fill(cost_.begin(), cost_.end(), 0.0);
    for (int j = 0; j < model_.num_vars(); ++j) {
      cost_[j] = sign * model_.objective(j);
    }
    Status p2 = Iterate(&timer, /*phase1=*/false);
    if (!p2.ok()) return p2;

    LpSolution sol;
    sol.x.resize(model_.num_vars());
    for (int j = 0; j < model_.num_vars(); ++j) sol.x[j] = Value(j);
    sol.objective = model_.ObjectiveValue(sol.x);
    sol.iterations = total_iterations_;
    sol.phase1_iterations = phase1_iterations_;
    sol.factorizations = factor_->factorizations();
    sol.warm_started = warm_used_;
    sol.basis = ExportBasis();
    sol.solve_seconds = timer.ElapsedSeconds();
    sol.stats = stats_;
    return sol;
  }

 private:
  // ---- setup -------------------------------------------------------------

  Status Build() {
    n_struct_ = model_.num_vars();
    num_rows_ = model_.num_rows();
    num_cols_ = n_struct_ + num_rows_;

    lower_.assign(num_cols_, 0.0);
    upper_.assign(num_cols_, 0.0);
    for (int j = 0; j < n_struct_; ++j) {
      lower_[j] = model_.lower(j);
      upper_[j] = model_.upper(j);
      if (!std::isfinite(lower_[j])) {
        return Status::NotImplemented("simplex requires finite lower bounds");
      }
      if (upper_[j] < lower_[j] - opt_.tolerance) {
        return Status::Infeasible("variable with empty bound interval");
      }
    }

    cols_.assign(num_cols_, {});
    rhs_.assign(num_rows_, 0.0);
    for (int i = 0; i < num_rows_; ++i) {
      const LpRow& row = model_.row(i);
      const double sign = row.type == RowType::kGreaterEqual ? -1.0 : 1.0;
      rhs_[i] = sign * row.rhs;
      for (const LpTerm& t : row.terms) {
        if (t.var < 0 || t.var >= n_struct_) {
          return Status::InvalidArgument("row references unknown variable");
        }
        AddCoef(t.var, i, sign * t.coef);
      }
      const int logical = n_struct_ + i;
      cols_[logical].emplace_back(i, 1.0);
      lower_[logical] = 0.0;
      upper_[logical] = row.type == RowType::kEqual ? 0.0 : kLpInfinity;
    }

    status_.assign(num_cols_, VarStatus::kAtLower);
    basis_.assign(num_rows_, -1);
    pos_of_basic_.assign(num_cols_, -1);
    basic_value_.assign(num_rows_, 0.0);
    factor_ = opt_.basis == SimplexBasisType::kDense ? MakeDenseFactorization()
                                                     : MakeLuFactorization();
    return Status::OK();
  }

  void AddCoef(int col, int row, double coef) {
    if (coef == 0.0) return;
    auto& c = cols_[col];
    for (auto& [r, a] : c) {
      if (r == row) {
        a += coef;
        return;
      }
    }
    c.emplace_back(row, coef);
  }

  /// All logicals basic: the identity basis, always factorizable.
  void ColdBasis() {
    for (int j = 0; j < num_cols_; ++j) {
      status_[j] = VarStatus::kAtLower;
      pos_of_basic_[j] = -1;
    }
    for (int i = 0; i < num_rows_; ++i) {
      const int logical = n_struct_ + i;
      basis_[i] = logical;
      status_[logical] = VarStatus::kBasic;
      pos_of_basic_[logical] = i;
    }
  }

  /// Seeds statuses from the caller's basis; repairs the basic set to
  /// exactly num_rows_ columns. Returns false when no usable warm basis
  /// was supplied (caller then cold-starts).
  bool TryWarmBasis() {
    if (warm_ == nullptr || warm_->Empty() ||
        !warm_->Compatible(n_struct_, num_rows_)) {
      return false;
    }
    auto apply = [&](int col, VarBasisStatus s) {
      switch (s) {
        case VarBasisStatus::kBasic:
          status_[col] = VarStatus::kBasic;
          break;
        case VarBasisStatus::kNonbasicUpper:
          status_[col] = std::isfinite(upper_[col]) ? VarStatus::kAtUpper
                                                    : VarStatus::kAtLower;
          break;
        case VarBasisStatus::kNonbasicLower:
          status_[col] = VarStatus::kAtLower;
          break;
      }
    };
    for (int j = 0; j < n_struct_; ++j) apply(j, warm_->structural[j]);
    for (int i = 0; i < num_rows_; ++i) {
      apply(n_struct_ + i, warm_->logical[i]);
    }

    std::vector<int> basics;
    basics.reserve(num_rows_);
    for (int j = 0; j < num_cols_; ++j) {
      if (status_[j] == VarStatus::kBasic) basics.push_back(j);
    }
    // Too many: demote from the tail (logicals first, keeping the
    // structural part of the warm basis). Too few: promote nonbasic
    // logicals.
    while (static_cast<int>(basics.size()) > num_rows_) {
      status_[basics.back()] = VarStatus::kAtLower;
      basics.pop_back();
    }
    for (int i = 0; i < num_rows_ &&
                    static_cast<int>(basics.size()) < num_rows_;
         ++i) {
      const int logical = n_struct_ + i;
      if (status_[logical] != VarStatus::kBasic) {
        status_[logical] = VarStatus::kBasic;
        basics.push_back(logical);
      }
    }
    if (static_cast<int>(basics.size()) != num_rows_) return false;
    for (int i = 0; i < num_rows_; ++i) {
      basis_[i] = basics[i];
      pos_of_basic_[basics[i]] = i;
    }
    warm_used_ = true;
    return true;
  }

  LpBasis ExportBasis() const {
    LpBasis basis;
    auto map = [](VarStatus s) {
      switch (s) {
        case VarStatus::kBasic:
          return VarBasisStatus::kBasic;
        case VarStatus::kAtUpper:
          return VarBasisStatus::kNonbasicUpper;
        case VarStatus::kAtLower:
          break;
      }
      return VarBasisStatus::kNonbasicLower;
    };
    basis.structural.resize(n_struct_);
    for (int j = 0; j < n_struct_; ++j) basis.structural[j] = map(status_[j]);
    basis.logical.resize(num_rows_);
    for (int i = 0; i < num_rows_; ++i) {
      basis.logical[i] = map(status_[n_struct_ + i]);
    }
    return basis;
  }

  // ---- accessors ----------------------------------------------------------

  double Value(int j) const {
    switch (status_[j]) {
      case VarStatus::kBasic:
        return basic_value_[pos_of_basic_[j]];
      case VarStatus::kAtLower:
        return lower_[j];
      case VarStatus::kAtUpper:
        return upper_[j];
    }
    return 0.0;
  }

  /// Factorizes the current basis and recomputes x_B = B^-1 (b - N x_N).
  Status Refactorize() {
    Timer t;
    Status st = factor_->Factorize(cols_, basis_);
    if (!st.ok()) return st;
    ComputeBasicValues();
    stats_.factor_seconds += t.ElapsedSeconds();
    return Status::OK();
  }

  void ComputeBasicValues() {
    std::vector<double> r = rhs_;
    for (int j = 0; j < num_cols_; ++j) {
      if (status_[j] == VarStatus::kBasic) continue;
      const double v = Value(j);
      if (v == 0.0) continue;
      for (const auto& [row, a] : cols_[j]) r[row] -= a * v;
    }
    factor_->Ftran(&r);
    basic_value_ = std::move(r);
  }

  // ---- core iteration ------------------------------------------------------

  /// Phase-1 cost: push each out-of-bounds basic variable back toward its
  /// violated bound. Returns the total violation.
  double SetPhase1Cost() {
    std::fill(cost_.begin(), cost_.end(), 0.0);
    double infeas = 0.0;
    for (int pos = 0; pos < num_rows_; ++pos) {
      const int j = basis_[pos];
      const double v = basic_value_[pos];
      if (v < lower_[j] - kFeasTolerance) {
        cost_[j] = 1.0;  // maximize => increase v
        infeas += lower_[j] - v;
      } else if (v > upper_[j] + kFeasTolerance) {
        cost_[j] = -1.0;
        infeas += v - upper_[j];
      }
    }
    return infeas;
  }

  double CurrentObjective() const {
    double acc = 0.0;
    for (int j = 0; j < num_cols_; ++j) {
      const double v = Value(j);
      if (v != 0.0) acc += cost_[j] * v;
    }
    return acc;
  }

  Status Iterate(Timer* timer, bool phase1) {
    const bool timed = opt_.time_limit_seconds < kNoTimeLimit;
    int stall = 0;
    double last_obj = -kLpInfinity;
    devex_.assign(num_cols_, 1.0);
    std::vector<double> y(num_rows_), w(num_rows_), rho;

    for (;;) {
      if (phase1) {
        const double infeas = SetPhase1Cost();
        if (infeas <= kFeasTolerance) return Status::OK();
      }
      if (total_iterations_ >= opt_.max_iterations) {
        return Status::ResourceExhausted("simplex iteration limit");
      }
      if (timed && timer->ElapsedSeconds() > opt_.time_limit_seconds) {
        return Status::ResourceExhausted("simplex time limit");
      }
      const double cur = phase1 ? -CurrentInfeasibility() : CurrentObjective();
      if (cur > last_obj + 1e-12) {
        stall = 0;
        last_obj = cur;
      } else {
        ++stall;
      }
      const bool bland = stall > opt_.stall_threshold;

      // Pricing: y = B^-T c_B, reduced costs d_j = c_j - y' A_j.
      Timer phase_timer;
      y.assign(num_rows_, 0.0);
      bool any_cost = false;
      for (int pos = 0; pos < num_rows_; ++pos) {
        const double cb = cost_[basis_[pos]];
        if (cb != 0.0) {
          y[pos] = cb;
          any_cost = true;
        }
      }
      if (any_cost) factor_->Btran(&y);
      stats_.btran_seconds += phase_timer.ElapsedSeconds();

      phase_timer.Reset();
      int entering = -1;
      int direction = 0;
      double best_score = 0.0;
      for (int j = 0; j < num_cols_; ++j) {
        if (status_[j] == VarStatus::kBasic) continue;
        if (upper_[j] - lower_[j] < opt_.tolerance) continue;  // fixed
        double d = cost_[j];
        if (any_cost) {
          for (const auto& [row, a] : cols_[j]) d -= y[row] * a;
        }
        int dir = 0;
        if (status_[j] == VarStatus::kAtLower && d > opt_.tolerance) {
          dir = +1;
        } else if (status_[j] == VarStatus::kAtUpper && d < -opt_.tolerance) {
          dir = -1;
        } else {
          continue;
        }
        if (bland) {  // first eligible index
          entering = j;
          direction = dir;
          break;
        }
        const double score =
            opt_.devex_pricing ? d * d / devex_[j] : std::abs(d);
        if (score > best_score) {
          best_score = score;
          entering = j;
          direction = dir;
        }
      }
      stats_.pricing_seconds += phase_timer.ElapsedSeconds();
      if (entering < 0) {
        if (!phase1) return Status::OK();  // optimal
        if (CurrentInfeasibility() <= kInfeasAccept) return Status::OK();
        return Status::Infeasible("phase-1 infeasibility " +
                                  std::to_string(CurrentInfeasibility()));
      }
      // Only passes that change the solution count: a warm start from the
      // optimal basis of an identical LP reports 0 iterations (the final
      // optimality-detecting pricing pass is free).
      ++total_iterations_;

      // Direction in basic space: w = B^-1 A_e.
      phase_timer.Reset();
      w.assign(num_rows_, 0.0);
      for (const auto& [row, a] : cols_[entering]) w[row] = a;
      factor_->Ftran(&w);
      stats_.ftran_seconds += phase_timer.ElapsedSeconds();

      phase_timer.Reset();
      // Ratio test: entering moves by t >= 0 in `direction`. In phase 1 an
      // out-of-bounds basic variable moving toward feasibility blocks at
      // its violated bound (so it re-enters the feasible box exactly
      // there); one moving away never blocks.
      double t_limit = upper_[entering] - lower_[entering];  // bound flip
      int leaving_pos = -1;
      bool leaving_to_upper = false;
      for (int pos = 0; pos < num_rows_; ++pos) {
        const double delta = direction * w[pos];
        if (std::abs(delta) <= opt_.tolerance) continue;
        const int bj = basis_[pos];
        const double xb = basic_value_[pos];
        double t;
        bool to_upper;
        if (phase1 && xb < lower_[bj] - kFeasTolerance) {
          if (delta >= 0.0) continue;  // moving further below: no block
          t = (lower_[bj] - xb) / (-delta);
          to_upper = false;
        } else if (phase1 && xb > upper_[bj] + kFeasTolerance) {
          if (delta <= 0.0) continue;
          t = (xb - upper_[bj]) / delta;
          to_upper = true;
        } else if (delta > 0.0) {
          t = std::max(0.0, xb - lower_[bj]) / delta;
          to_upper = false;
        } else {
          if (!std::isfinite(upper_[bj])) continue;
          t = std::max(0.0, upper_[bj] - xb) / (-delta);
          to_upper = true;
        }
        if (t < t_limit) {
          t_limit = t;
          leaving_pos = pos;
          leaving_to_upper = to_upper;
        }
      }
      stats_.ratio_test_seconds += phase_timer.ElapsedSeconds();
      if (!std::isfinite(t_limit)) {
        if (phase1) {
          return Status::NumericalError("unbounded phase-1 ray");
        }
        return Status::Unbounded("LP is unbounded");
      }
      const double t = std::max(0.0, t_limit);

      if (t > 0.0) {
        for (int pos = 0; pos < num_rows_; ++pos) {
          basic_value_[pos] -= direction * t * w[pos];
        }
      }
      if (leaving_pos < 0) {
        // Bound flip: entering jumps to its other bound.
        status_[entering] =
            direction > 0 ? VarStatus::kAtUpper : VarStatus::kAtLower;
        continue;
      }

      // Devex reference-row BTRAN must see the pre-update basis.
      const bool update_devex = opt_.devex_pricing && !bland;
      if (update_devex) {
        phase_timer.Reset();
        rho.assign(num_rows_, 0.0);
        rho[leaving_pos] = 1.0;
        factor_->Btran(&rho);
        stats_.btran_seconds += phase_timer.ElapsedSeconds();
      }

      // Pivot: entering becomes basic in leaving_pos.
      const int leaving = basis_[leaving_pos];
      status_[leaving] =
          leaving_to_upper ? VarStatus::kAtUpper : VarStatus::kAtLower;
      pos_of_basic_[leaving] = -1;
      basis_[leaving_pos] = entering;
      pos_of_basic_[entering] = leaving_pos;
      status_[entering] = VarStatus::kBasic;
      basic_value_[leaving_pos] =
          direction > 0 ? lower_[entering] + t : upper_[entering] - t;

      if (update_devex) {
        phase_timer.Reset();
        UpdateDevexWeights(entering, leaving, w[leaving_pos], rho);
        stats_.pricing_seconds += phase_timer.ElapsedSeconds();
      }

      phase_timer.Reset();
      Status updated = factor_->Update(w, leaving_pos);
      stats_.factor_seconds += phase_timer.ElapsedSeconds();
      if (!updated.ok() || factor_->eta_count() >= opt_.refactor_interval) {
        Status refactored = Refactorize();
        if (!refactored.ok()) return refactored;
      }
    }
  }

  double CurrentInfeasibility() const {
    double infeas = 0.0;
    for (int pos = 0; pos < num_rows_; ++pos) {
      const int j = basis_[pos];
      const double v = basic_value_[pos];
      infeas += std::max(0.0, lower_[j] - v) + std::max(0.0, v - upper_[j]);
    }
    return infeas;
  }

  /// Devex update: gamma_j = max(gamma_j, (alpha_rj / alpha_rq)^2 gamma_q)
  /// over the pivot row alpha_r, with the leaving variable re-entering the
  /// nonbasic set at max(gamma_q / alpha_rq^2, 1).
  void UpdateDevexWeights(int entering, int leaving, double alpha_rq,
                          const std::vector<double>& rho) {
    const double gamma_q = devex_[entering];
    const double inv_rq2 = 1.0 / (alpha_rq * alpha_rq);
    for (int j = 0; j < num_cols_; ++j) {
      if (status_[j] == VarStatus::kBasic || j == leaving) continue;
      double alpha_rj = 0.0;
      for (const auto& [row, a] : cols_[j]) alpha_rj += rho[row] * a;
      if (alpha_rj == 0.0) continue;
      const double cand = alpha_rj * alpha_rj * inv_rq2 * gamma_q;
      if (cand > devex_[j]) devex_[j] = cand;
    }
    devex_[leaving] = std::max(gamma_q * inv_rq2, 1.0);
    // Restart the reference framework when weights blow up.
    if (devex_[leaving] > 1e10) devex_.assign(num_cols_, 1.0);
  }

  const LpModel& model_;
  const SimplexOptions opt_;
  const LpBasis* warm_ = nullptr;

  int n_struct_ = 0;
  int num_rows_ = 0;
  int num_cols_ = 0;

  /// Column-wise sparse storage: (row, coef) pairs per column.
  std::vector<SparseColumn> cols_;
  std::vector<double> lower_, upper_, cost_, rhs_;

  std::vector<VarStatus> status_;
  std::vector<int> basis_;          ///< position -> basic column
  std::vector<int> pos_of_basic_;   ///< column -> position (or -1)
  std::vector<double> basic_value_;  ///< position -> value of its basic var
  std::vector<double> devex_;        ///< Devex reference weights

  std::unique_ptr<BasisFactorization> factor_;
  bool warm_used_ = false;
  int total_iterations_ = 0;
  int phase1_iterations_ = 0;
  LpStats stats_;
};

}  // namespace

Result<LpSolution> SolveLp(const LpModel& model, const SimplexOptions& options,
                           const LpBasis* warm_start) {
  RevisedSimplex worker(model, options, warm_start);
  return worker.Run();
}

}  // namespace savg
