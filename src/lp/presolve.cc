#include "lp/presolve.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>

namespace savg {
namespace {

// Feasibility slack allowed when an empty row or crossing bounds decide
// infeasibility: presolve must not declare infeasible anything the simplex
// would accept at its own tolerance.
constexpr double kFeasSlack = 1e-7;

// Nearest power of two to |x| (1.0 for x == 0), used for bit-lossless
// equilibration: multiplying by a power of two only shifts the exponent.
double PowerOfTwoNear(double x) {
  const double a = std::fabs(x);
  if (a <= 0.0 || !std::isfinite(a)) return 1.0;
  return std::exp2(std::round(std::log2(a)));
}

}  // namespace

Result<PresolvedLp> PresolveLp(const LpModel& model,
                               const PresolveOptions& options) {
  const int n = model.num_vars();
  const int m = model.num_rows();
  const double tol = options.tolerance;
  const double sense = model.maximize() ? 1.0 : -1.0;

  PresolvedLp pre;
  pre.original_ = &model;
  pre.tol_ = tol;
  pre.stats_ = PresolveStats{};

  // ---- working copies --------------------------------------------------
  std::vector<double> lower(n), upper(n), cmax(n);
  for (int j = 0; j < n; ++j) {
    lower[j] = model.lower(j);
    upper[j] = model.upper(j);
    // Objective in "maximize" orientation so domination tests read one way.
    cmax[j] = sense * model.objective(j);
  }

  // Canonical rows: duplicate terms summed, exact-zero coefficients
  // dropped (the simplex does the same summation internally).
  struct WorkRow {
    RowType type;
    double rhs;
    std::vector<LpTerm> terms;
    int live = 0;       // terms whose variable is still present
    bool removed = false;
  };
  std::vector<WorkRow> rows(m);
  std::vector<double> acc(n, 0.0);
  std::vector<int> touched;
  for (int i = 0; i < m; ++i) {
    const LpRow& r = model.row(i);
    rows[i].type = r.type;
    rows[i].rhs = r.rhs;
    touched.clear();
    for (const LpTerm& t : r.terms) {
      if (acc[t.var] == 0.0) touched.push_back(t.var);
      acc[t.var] += t.coef;
    }
    for (int v : touched) {
      if (acc[v] != 0.0) rows[i].terms.push_back({v, acc[v]});
      acc[v] = 0.0;
    }
    rows[i].live = static_cast<int>(rows[i].terms.size());
  }

  // Column occurrence lists over the canonical rows.
  std::vector<std::vector<std::pair<int, double>>> col_rows(n);
  for (int i = 0; i < m; ++i)
    for (const LpTerm& t : rows[i].terms) col_rows[t.var].push_back({i, t.coef});

  std::vector<uint8_t> col_removed(n, 0);
  pre.fixed_value_.assign(n, 0.0);
  pre.fixed_at_upper_.assign(n, 0);

  // Fixes column j at `value`, substituting it out of every live row.
  auto FixColumn = [&](int j, double value, bool at_upper) {
    col_removed[j] = 1;
    pre.fixed_value_[j] = value;
    pre.fixed_at_upper_[j] = at_upper ? 1 : 0;
    for (const auto& [i, a] : col_rows[j]) {
      if (rows[i].removed) continue;
      rows[i].rhs -= a * value;
      --rows[i].live;
    }
  };

  auto RecordSingletonVar = [&](int j) {
    if (!pre.singleton_var_cols_.count(j))
      pre.singleton_var_cols_[j] = col_rows[j];
  };

  bool infeasible = false;
  bool changed = true;
  for (int pass = 0; pass < options.max_passes && changed && !infeasible;
       ++pass) {
    changed = false;

    // --- fixed columns --------------------------------------------------
    if (options.remove_fixed_columns) {
      for (int j = 0; j < n && !infeasible; ++j) {
        if (col_removed[j]) continue;
        if (upper[j] < lower[j] - kFeasSlack) {
          infeasible = true;
          break;
        }
        if (std::isfinite(lower[j]) && upper[j] - lower[j] <= tol) {
          FixColumn(j, lower[j], /*at_upper=*/false);
          ++pre.stats_.fixed_cols;
          changed = true;
        }
      }
    }

    // --- empty + singleton rows ----------------------------------------
    if (options.remove_rows && !infeasible) {
      for (int i = 0; i < m && !infeasible; ++i) {
        WorkRow& r = rows[i];
        if (r.removed) continue;
        if (r.live == 0) {
          const bool ok = (r.type == RowType::kLessEqual &&
                           r.rhs >= -kFeasSlack) ||
                          (r.type == RowType::kGreaterEqual &&
                           r.rhs <= kFeasSlack) ||
                          (r.type == RowType::kEqual &&
                           std::fabs(r.rhs) <= kFeasSlack);
          if (!ok) {
            infeasible = true;
            break;
          }
          r.removed = true;
          pre.removed_rows_.push_back({i, -1, 0.0, 0.0, false});
          ++pre.stats_.empty_rows;
          changed = true;
          continue;
        }
        if (r.live != 1) continue;
        // Locate the single live term.
        int j = -1;
        double a = 0.0;
        for (const LpTerm& t : r.terms) {
          if (!col_removed[t.var]) {
            j = t.var;
            a = t.coef;
            break;
          }
        }
        if (j < 0 || std::fabs(a) < 1e-12) continue;  // numerically empty
        const double b = r.rhs / a;
        // The row constrains a*x {<=,=,>=} rhs -> a bound on x.
        const bool upper_side =
            (r.type == RowType::kLessEqual) == (a > 0.0);
        r.removed = true;
        ++pre.stats_.singleton_rows;
        changed = true;
        RecordSingletonVar(j);
        if (r.type == RowType::kEqual || upper_side) {
          pre.removed_rows_.push_back({i, j, a, b, /*bound_is_upper=*/true});
          upper[j] = std::min(upper[j], b);
        }
        if (r.type == RowType::kEqual || !upper_side) {
          // For equality rows one RemovedRow record is enough: postsolve
          // keys on the value, not the side.
          if (r.type != RowType::kEqual)
            pre.removed_rows_.push_back({i, j, a, b, false});
          lower[j] = std::max(lower[j], b);
        }
        if (upper[j] < lower[j] - kFeasSlack) infeasible = true;
      }
    }

    // --- sign-dominated columns ----------------------------------------
    if (options.remove_dominated_columns && !infeasible) {
      for (int j = 0; j < n; ++j) {
        if (col_removed[j]) continue;
        bool down_ok = std::isfinite(lower[j]);
        bool up_ok = std::isfinite(upper[j]);
        if (!down_ok && !up_ok) continue;
        for (const auto& [i, a] : col_rows[j]) {
          if (rows[i].removed) continue;
          if (rows[i].type == RowType::kEqual) {
            down_ok = up_ok = false;
            break;
          }
          const bool relaxes_down = (rows[i].type == RowType::kLessEqual)
                                        ? (a >= 0.0)
                                        : (a <= 0.0);
          if (relaxes_down)
            up_ok = up_ok && (a == 0.0);
          else
            down_ok = false;
          if (!down_ok && !up_ok) break;
        }
        if (down_ok && cmax[j] <= tol) {
          FixColumn(j, lower[j], /*at_upper=*/false);
          ++pre.stats_.dominated_cols;
          changed = true;
        } else if (up_ok && cmax[j] >= -tol) {
          FixColumn(j, upper[j], /*at_upper=*/true);
          ++pre.stats_.dominated_cols;
          changed = true;
        }
      }
    }

    // --- parallel (twin) columns ----------------------------------------
    if (options.remove_parallel_columns && !infeasible) {
      // Rows eligible to cap the total mass of a twin group: every OTHER
      // live term must provably contribute >= 0 (coef >= 0, var lower
      // >= 0), the row type must bound from above (<= or =).
      std::vector<uint8_t> row_caps(m, 0);
      for (int i = 0; i < m; ++i) {
        const WorkRow& r = rows[i];
        if (r.removed || r.type == RowType::kGreaterEqual) continue;
        bool ok = true;
        for (const LpTerm& t : r.terms) {
          if (col_removed[t.var]) continue;
          if (t.coef < 0.0 || lower[t.var] < 0.0) {
            ok = false;
            break;
          }
        }
        row_caps[i] = ok ? 1 : 0;
      }
      // Group columns by their live constraint column. Only columns with
      // lower == 0 and a finite upper participate (the shift argument
      // moves their whole mass into better twins).
      std::map<std::vector<std::pair<int, double>>, std::vector<int>> groups;
      std::vector<std::pair<int, double>> sig;
      for (int j = 0; j < n; ++j) {
        if (col_removed[j]) continue;
        if (std::fabs(lower[j]) > tol || !std::isfinite(upper[j]) ||
            upper[j] < 0.0)
          continue;
        sig.clear();
        for (const auto& [i, a] : col_rows[j])
          if (!rows[i].removed) sig.push_back({i, a});
        std::sort(sig.begin(), sig.end());
        if (sig.empty()) continue;  // empty column: dominated pass handles it
        groups[sig].push_back(j);
      }
      for (auto& [signature, cols] : groups) {
        if (cols.size() < 2) continue;
        // Tightest capacity the signature rows put on the group's total.
        double cap = kLpInfinity;
        for (const auto& [i, a] : signature)
          if (row_caps[i] && a > 0.0)
            cap = std::min(cap, std::max(0.0, rows[i].rhs / a));
        if (!std::isfinite(cap)) continue;
        // Strictly better twins must cover the whole cap before a column
        // can be fixed at 0: any feasible mass on it can then be shifted
        // onto twins with strictly larger objective, so EVERY optimum has
        // it at 0.
        std::sort(cols.begin(), cols.end(), [&](int a, int b) {
          return cmax[a] != cmax[b] ? cmax[a] > cmax[b] : a < b;
        });
        double better_capacity = 0.0;  // sum of uppers of strictly better
        size_t tie_start = 0;
        double tie_capacity = 0.0;  // uppers of the current cmax tie group
        for (size_t p = 0; p < cols.size(); ++p) {
          const int j = cols[p];
          if (p > 0 && cmax[cols[tie_start]] - cmax[j] > tol) {
            better_capacity += tie_capacity;
            tie_capacity = 0.0;
            tie_start = p;
          }
          if (better_capacity >= cap - tol) {
            FixColumn(j, 0.0, /*at_upper=*/false);
            ++pre.stats_.parallel_cols;
            changed = true;
          } else {
            tie_capacity += upper[j];
          }
        }
      }
    }
  }

  if (infeasible) {
    return Status(StatusCode::kInfeasible,
                  "presolve: model proven infeasible");
  }

  // ---- assemble the reduced model -------------------------------------
  pre.col_map_.assign(n, -1);
  pre.row_map_.assign(m, -1);
  int rn = 0, rm = 0;
  for (int j = 0; j < n; ++j)
    if (!col_removed[j]) pre.col_map_[j] = rn++;
  for (int i = 0; i < m; ++i)
    if (!rows[i].removed) pre.row_map_[i] = rm++;

  // Reduced rows in reduced column indices (unscaled).
  std::vector<WorkRow*> kept_rows;
  kept_rows.reserve(rm);
  for (int i = 0; i < m; ++i)
    if (!rows[i].removed) kept_rows.push_back(&rows[i]);

  // Power-of-two equilibration on the reduced matrix: first rows to unit
  // max-norm, then columns. Powers of two keep every product exact.
  pre.row_scale_.assign(rm, 1.0);
  pre.col_scale_.assign(rn, 1.0);
  if (options.scale) {
    for (int ri = 0; ri < rm; ++ri) {
      double mx = 0.0;
      for (const LpTerm& t : kept_rows[ri]->terms)
        if (!col_removed[t.var]) mx = std::max(mx, std::fabs(t.coef));
      pre.row_scale_[ri] = 1.0 / PowerOfTwoNear(mx);
    }
    std::vector<double> colmax(rn, 0.0);
    for (int ri = 0; ri < rm; ++ri)
      for (const LpTerm& t : kept_rows[ri]->terms)
        if (!col_removed[t.var])
          colmax[pre.col_map_[t.var]] =
              std::max(colmax[pre.col_map_[t.var]],
                       std::fabs(t.coef) * pre.row_scale_[ri]);
    for (int rj = 0; rj < rn; ++rj)
      pre.col_scale_[rj] = 1.0 / PowerOfTwoNear(colmax[rj]);
    for (int ri = 0; ri < rm; ++ri)
      if (pre.row_scale_[ri] != 1.0) pre.stats_.scaled = true;
    for (int rj = 0; rj < rn; ++rj)
      if (pre.col_scale_[rj] != 1.0) pre.stats_.scaled = true;
  }

  pre.reduced_.SetMaximize(model.maximize());
  for (int j = 0; j < n; ++j) {
    if (col_removed[j]) continue;
    const double s = pre.col_scale_[pre.col_map_[j]];
    // x~ = x / s, so bounds divide by s and the objective multiplies.
    pre.reduced_.AddVariable(lower[j] / s, upper[j] / s,
                             model.objective(j) * s, model.name(j));
  }
  for (int ri = 0; ri < rm; ++ri) {
    const WorkRow* r = kept_rows[ri];
    const double rs = pre.row_scale_[ri];
    std::vector<LpTerm> terms;
    terms.reserve(r->live);
    for (const LpTerm& t : r->terms) {
      if (col_removed[t.var]) continue;
      const int rj = pre.col_map_[t.var];
      terms.push_back({rj, t.coef * rs * pre.col_scale_[rj]});
    }
    pre.reduced_.AddRow(r->type, r->rhs * rs, std::move(terms));
  }

  return pre;
}

LpBasis PresolvedLp::MapBasis(const LpBasis& original) const {
  LpBasis mapped;
  if (!original.Compatible(original_->num_vars(), original_->num_rows()))
    return mapped;
  mapped.structural.reserve(reduced_.num_vars());
  mapped.logical.reserve(reduced_.num_rows());
  for (int j = 0; j < original_->num_vars(); ++j)
    if (col_map_[j] >= 0) mapped.structural.push_back(original.structural[j]);
  for (int i = 0; i < original_->num_rows(); ++i)
    if (row_map_[i] >= 0) mapped.logical.push_back(original.logical[i]);
  return mapped;
}

LpSolution PresolvedLp::Postsolve(const LpSolution& reduced_sol) const {
  const LpModel& model = *original_;
  const int n = model.num_vars();
  const int m = model.num_rows();

  LpSolution out = reduced_sol;  // carries stats, iteration counters, flags

  // --- primal point ----------------------------------------------------
  out.x.assign(n, 0.0);
  for (int j = 0; j < n; ++j) {
    const int rj = col_map_[j];
    out.x[j] = rj >= 0 ? col_scale_[rj] * reduced_sol.x[rj]
                       : fixed_value_[j];
  }

  // --- duals of kept rows ----------------------------------------------
  // Scaled row i~ = r_i * row_i, so y_i = r_i * y~_i recovers the
  // original-row multiplier. Removed rows start at 0 (slack basic).
  out.dual_values.assign(m, 0.0);
  const bool have_duals =
      static_cast<int>(reduced_sol.dual_values.size()) == reduced_.num_rows();
  if (have_duals) {
    for (int i = 0; i < m; ++i)
      if (row_map_[i] >= 0)
        out.dual_values[i] =
            row_scale_[row_map_[i]] * reduced_sol.dual_values[row_map_[i]];
  }

  // --- basis ------------------------------------------------------------
  const bool have_basis =
      reduced_sol.basis.Compatible(reduced_.num_vars(), reduced_.num_rows());
  out.basis = LpBasis{};
  if (have_basis) {
    out.basis.structural.assign(n, VarBasisStatus::kNonbasicLower);
    out.basis.logical.assign(m, VarBasisStatus::kBasic);
    for (int j = 0; j < n; ++j) {
      if (col_map_[j] >= 0)
        out.basis.structural[j] = reduced_sol.basis.structural[col_map_[j]];
      else
        out.basis.structural[j] = fixed_at_upper_[j]
                                      ? VarBasisStatus::kNonbasicUpper
                                      : VarBasisStatus::kNonbasicLower;
    }
    for (int i = 0; i < m; ++i)
      if (row_map_[i] >= 0)
        out.basis.logical[i] = reduced_sol.basis.logical[row_map_[i]];
  }

  // --- removed singleton rows: re-activate the binding ones -------------
  // A variable sitting (nonbasic) at a presolve-tightened bound is not at
  // any bound of the original model, so the basis needs the row that
  // implied the bound: the variable turns basic, the row's slack leaves,
  // and the row's dual is what prices the variable's reduced cost to 0:
  //   y_R = (c_j - sum_{i != R} y_i a_ij) / a_Rj.
  for (const RemovedRow& rr : removed_rows_) {
    if (rr.var < 0 || !have_basis) continue;
    const int j = rr.var;
    if (out.basis.structural[j] == VarBasisStatus::kBasic) continue;
    if (out.basis.logical[rr.row] != VarBasisStatus::kBasic) continue;
    const double v = out.x[j];
    const double scale = std::max(1.0, std::fabs(v));
    // Already at a genuine bound of the original model? Then the removed
    // row is slack (or degenerately tight) and keeps dual 0.
    const double natural = out.basis.structural[j] ==
                                   VarBasisStatus::kNonbasicUpper
                               ? model.upper(j)
                               : model.lower(j);
    if (std::isfinite(natural) && std::fabs(v - natural) <= tol_ * scale)
      continue;
    // This removed row must be the active one for the variable's value.
    if (std::fabs(v - rr.bound) > 1e-6 * scale) continue;
    out.basis.structural[j] = VarBasisStatus::kBasic;
    out.basis.logical[rr.row] = VarBasisStatus::kNonbasicLower;
    if (have_duals) {
      double d = model.objective(j);
      auto it = singleton_var_cols_.find(j);
      if (it != singleton_var_cols_.end()) {
        for (const auto& [i, a] : it->second)
          if (i != rr.row) d -= out.dual_values[i] * a;
      }
      out.dual_values[rr.row] = d / rr.coef;
    }
  }

  out.objective = model.ObjectiveValue(out.x);
  return out;
}

}  // namespace savg
