// Basis factorization backends for the revised simplex.
//
// The simplex never forms B^-1 explicitly any more: it asks a
// BasisFactorization for the two triangular-solve primitives
//
//   Ftran:  solve B w = a      (entering column in basic coordinates)
//   Btran:  solve B' y = c_B   (pricing multipliers)
//
// plus a product-form Update() applied after every pivot. Two backends:
//
//  * LuBasisFactorization — sparse left-looking LU (Gilbert-Peierls style)
//    with threshold partial pivoting and a static fill-reducing column
//    order (ascending nonzero count). Pivots append eta terms to a
//    product-form eta file. All factors and the eta file are stored as
//    flat contiguous (index, value) streams with sorted indices, so the
//    Ftran/Btran kernels are single forward passes over cache-resident
//    arrays; past LuKernelOptions::dense_switch_density the kernels drop
//    the per-element zero tests and run the branch-lean dense-scatter
//    flavor (same arithmetic on every nonzero, so both flavors return
//    exactly equal results).
//  * DenseBasisFactorization — the legacy explicit dense inverse
//    (Gauss-Jordan refactorization, dense eta row operations). O(n^2) per
//    solve and O(n^3) per refactorization; kept as the reference path for
//    the sparse/dense equivalence test suite and for debugging.
//
// When to refactorize is the caller's policy decision; the backend exports
// the deterministic work counters that policy needs (eta_nonzeros,
// factor_nonzeros, factor_ops, eta_ops_since_factor). The simplex's
// adaptive policy (SimplexOptions::refactor_policy) is built on these
// counters rather than wall-clock measurements so that solve paths stay
// bit-reproducible across machines and thread counts.

#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "util/status.h"

namespace savg {

/// One sparse column: (row, coefficient) pairs, unordered, no duplicates.
using SparseColumn = std::vector<std::pair<int, double>>;

class BasisFactorization {
 public:
  virtual ~BasisFactorization() = default;

  /// Factorizes the basis matrix whose position-i column is
  /// columns[basis[i]]. Clears any pending eta updates. Returns
  /// kNumericalError if the basis is (near-)singular.
  virtual Status Factorize(const std::vector<SparseColumn>& columns,
                           const std::vector<int>& basis) = 0;

  /// v := B^-1 v (entering-column transform). Size num_rows.
  virtual void Ftran(std::vector<double>* v) const = 0;

  /// v := B^-T v (pricing transform). Size num_rows.
  virtual void Btran(std::vector<double>* v) const = 0;

  /// Replaces the basis column at position `leaving_pos` with the column
  /// whose Ftran image is `w` (product-form update). Returns
  /// kNumericalError when |w[leaving_pos]| is too small to pivot on — the
  /// caller must refactorize.
  virtual Status Update(const std::vector<double>& w, int leaving_pos) = 0;

  /// Product-form eta terms accumulated since the last Factorize().
  virtual int eta_count() const = 0;

  /// Total factorizations performed over the lifetime.
  virtual int factorizations() const = 0;

  // --- deterministic work counters for adaptive refactorization ---------

  /// Nonzeros currently stored in the product-form eta file. The direct
  /// measure of eta density: every Ftran/Btran pays one multiply-add per
  /// eta nonzero on top of the factor solve.
  virtual int64_t eta_nonzeros() const = 0;

  /// Nonzeros of the L and U factors (plus diagonal): the per-solve cost
  /// of a freshly factorized basis, the baseline eta growth is judged
  /// against.
  virtual int64_t factor_nonzeros() const = 0;

  /// Work (term visits) of the most recent Factorize() — what one
  /// refactorization costs in the same unit as eta_ops_since_factor().
  virtual int64_t factor_ops() const = 0;

  /// Accumulated eta-file work performed by Ftran/Btran calls since the
  /// last Factorize(): the extra solve cost the eta chain has already
  /// charged. Once this exceeds factor_ops(), refactorizing earlier would
  /// have been cheaper (the rent-or-buy trigger of the adaptive policy).
  virtual int64_t eta_ops_since_factor() const = 0;
};

/// Kernel tuning knobs of the sparse LU backend.
struct LuKernelOptions {
  /// Input vectors whose nonzero fraction exceeds this run the dense
  /// (branch-lean, no per-element zero test) kernel flavor; sparser inputs
  /// keep the zero-skipping flavor. 0 forces dense, > 1 forces sparse.
  /// Both flavors perform the same arithmetic on every nonzero, so the
  /// results are exactly equal — the switch is purely a speed knob.
  double dense_switch_density = 0.3;
};

/// Sparse LU backend (the default).
std::unique_ptr<BasisFactorization> MakeLuFactorization(
    const LuKernelOptions& kernel = {});

/// Legacy dense-inverse backend (reference/equivalence path).
std::unique_ptr<BasisFactorization> MakeDenseFactorization();

}  // namespace savg
