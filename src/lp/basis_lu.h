// Basis factorization backends for the revised simplex.
//
// The simplex never forms B^-1 explicitly any more: it asks a
// BasisFactorization for the two triangular-solve primitives
//
//   Ftran:  solve B w = a      (entering column in basic coordinates)
//   Btran:  solve B' y = c_B   (pricing multipliers)
//
// plus a product-form Update() applied after every pivot. Two backends:
//
//  * LuBasisFactorization — sparse left-looking LU (Gilbert-Peierls style)
//    with threshold partial pivoting and a static fill-reducing column
//    order (ascending nonzero count). Pivots append eta terms to a
//    product-form eta file; the simplex refactorizes when the file grows
//    past SimplexOptions::refactor_interval or an update pivot is unsafe.
//  * DenseBasisFactorization — the legacy explicit dense inverse
//    (Gauss-Jordan refactorization, dense eta row operations). O(n^2) per
//    solve and O(n^3) per refactorization; kept as the reference path for
//    the sparse/dense equivalence test suite and for debugging.

#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "util/status.h"

namespace savg {

/// One sparse column: (row, coefficient) pairs, unordered, no duplicates.
using SparseColumn = std::vector<std::pair<int, double>>;

class BasisFactorization {
 public:
  virtual ~BasisFactorization() = default;

  /// Factorizes the basis matrix whose position-i column is
  /// columns[basis[i]]. Clears any pending eta updates. Returns
  /// kNumericalError if the basis is (near-)singular.
  virtual Status Factorize(const std::vector<SparseColumn>& columns,
                           const std::vector<int>& basis) = 0;

  /// v := B^-1 v (entering-column transform). Size num_rows.
  virtual void Ftran(std::vector<double>* v) const = 0;

  /// v := B^-T v (pricing transform). Size num_rows.
  virtual void Btran(std::vector<double>* v) const = 0;

  /// Replaces the basis column at position `leaving_pos` with the column
  /// whose Ftran image is `w` (product-form update). Returns
  /// kNumericalError when |w[leaving_pos]| is too small to pivot on — the
  /// caller must refactorize.
  virtual Status Update(const std::vector<double>& w, int leaving_pos) = 0;

  /// Product-form eta terms accumulated since the last Factorize().
  virtual int eta_count() const = 0;

  /// Total factorizations performed over the lifetime.
  virtual int factorizations() const = 0;
};

/// Sparse LU backend (the default).
std::unique_ptr<BasisFactorization> MakeLuFactorization();

/// Legacy dense-inverse backend (reference/equivalence path).
std::unique_ptr<BasisFactorization> MakeDenseFactorization();

}  // namespace savg
