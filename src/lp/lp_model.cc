#include "lp/lp_model.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace savg {

int LpModel::AddVariable(double lower, double upper, double obj,
                         std::string name) {
  obj_.push_back(obj);
  lower_.push_back(lower);
  upper_.push_back(upper);
  names_.push_back(std::move(name));
  return static_cast<int>(obj_.size()) - 1;
}

int LpModel::AddRow(RowType type, double rhs, std::vector<LpTerm> terms) {
  rows_.push_back(LpRow{type, rhs, std::move(terms)});
  return static_cast<int>(rows_.size()) - 1;
}

double LpModel::ObjectiveValue(const std::vector<double>& x) const {
  double acc = 0.0;
  for (size_t j = 0; j < obj_.size(); ++j) acc += obj_[j] * x[j];
  return acc;
}

double LpModel::MaxViolation(const std::vector<double>& x) const {
  double worst = 0.0;
  for (size_t j = 0; j < obj_.size(); ++j) {
    worst = std::max(worst, lower_[j] - x[j]);
    if (std::isfinite(upper_[j])) worst = std::max(worst, x[j] - upper_[j]);
  }
  for (const LpRow& row : rows_) {
    double lhs = 0.0;
    for (const LpTerm& t : row.terms) lhs += t.coef * x[t.var];
    switch (row.type) {
      case RowType::kLessEqual:
        worst = std::max(worst, lhs - row.rhs);
        break;
      case RowType::kGreaterEqual:
        worst = std::max(worst, row.rhs - lhs);
        break;
      case RowType::kEqual:
        worst = std::max(worst, std::abs(lhs - row.rhs));
        break;
    }
  }
  return worst;
}

std::string LpModel::DebugString() const {
  std::ostringstream os;
  os << (maximize_ ? "maximize" : "minimize") << " " << num_vars()
     << " vars, " << num_rows() << " rows";
  return os.str();
}

}  // namespace savg
