// Euclidean projection onto the "capped simplex"
//
//   D(k) = { x in R^m : sum_j x_j = k,  0 <= x_j <= 1 }.
//
// In the compact SVGIC relaxation LP_SIMP (Section 4.4) each user's
// fractional item vector x_u lives in exactly this polytope, so the
// projected-subgradient LP solver projects onto a product of capped
// simplices. The projection is computed by bisection on the shift `t` in
// x_j = clamp(v_j - t, 0, 1), whose total mass is monotone in t.

#pragma once

#include <vector>

namespace savg {

/// Projects `v` onto D(k) in Euclidean norm (in place). Requires
/// 0 <= k <= v.size(). Accurate to `tol` in the mass constraint.
void ProjectCappedSimplex(std::vector<double>* v, double k,
                          double tol = 1e-10);

/// Linear maximization oracle over D(k): returns the vertex that puts mass 1
/// on the k largest entries of `gradient` (fractional mass on the boundary
/// entry if k is not integral).
std::vector<double> CappedSimplexLmo(const std::vector<double>& gradient,
                                     double k);

}  // namespace savg
