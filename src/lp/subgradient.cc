#include "lp/subgradient.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "lp/capped_simplex.h"
#include "util/logging.h"

namespace savg {

double PairwiseConcaveProblem::Evaluate(const std::vector<double>& x) const {
  double acc = 0.0;
  const size_t total = static_cast<size_t>(num_agents) * num_items;
  for (size_t i = 0; i < total; ++i) acc += linear[i] * x[i];
  for (const ConcavePair& pr : pairs) {
    const size_t base_a = static_cast<size_t>(pr.a) * num_items;
    const size_t base_b = static_cast<size_t>(pr.b) * num_items;
    for (const auto& [c, w] : pr.weights) {
      acc += w * std::min(x[base_a + c], x[base_b + c]);
    }
  }
  return acc;
}

namespace {

/// See ExactBlockMaximize: slack added above a partner's level so paired
/// agents can ratchet up to a common kink over repeated sweeps.
constexpr double kBreakpointRatchet = 0.02;

std::vector<std::vector<int>> BuildPairsOfAgent(
    const PairwiseConcaveProblem& problem) {
  std::vector<std::vector<int>> pairs_of_agent(problem.num_agents);
  for (size_t i = 0; i < problem.pairs.size(); ++i) {
    pairs_of_agent[problem.pairs[i].a].push_back(static_cast<int>(i));
    pairs_of_agent[problem.pairs[i].b].push_back(static_cast<int>(i));
  }
  return pairs_of_agent;
}

}  // namespace

double ExactBlockMaximize(const PairwiseConcaveProblem& problem, int agent,
                          const std::vector<std::vector<int>>& pairs_of_agent,
                          std::vector<double>* x) {
  const int m = problem.num_items;
  const size_t base = static_cast<size_t>(agent) * m;

  // Gather breakpoints (item, level b, weight w): the marginal of item c
  // drops by w once x exceeds b = neighbor's mass on c.
  struct Breakpoint {
    int item;
    double level;
    double weight;
  };
  std::vector<Breakpoint> bps;
  for (int pi : pairs_of_agent[agent]) {
    const ConcavePair& pr = problem.pairs[pi];
    const int other = pr.a == agent ? pr.b : pr.a;
    const size_t obase = static_cast<size_t>(other) * m;
    for (const auto& [c, w] : pr.weights) {
      // The marginal truly drops at the partner's level, but a small upward
      // ratchet lets pairs climb to a shared kink (e.g. both to 1.0) across
      // alternating block sweeps instead of stalling epsilon short of it.
      const double b =
          std::clamp((*x)[obase + c] + kBreakpointRatchet, 0.0, 1.0);
      bps.push_back({c, b, w});
    }
  }
  std::sort(bps.begin(), bps.end(), [](const Breakpoint& l, const Breakpoint& r) {
    return l.item != r.item ? l.item < r.item : l.level < r.level;
  });

  // Per-item view into the sorted breakpoint array.
  std::vector<std::pair<int, int>> item_range(m, {0, 0});  // [begin, end)
  {
    size_t i = 0;
    while (i < bps.size()) {
      size_t j = i;
      while (j < bps.size() && bps[j].item == bps[i].item) ++j;
      item_range[bps[i].item] = {static_cast<int>(i), static_cast<int>(j)};
      i = j;
    }
  }

  // Greedy water-filling: allocate total mass k to the segments with the
  // highest marginal derivative. Exact for separable concave objectives.
  struct Segment {
    double marginal;
    int item;
    double level;  // current fill of the item
    int next_bp;   // index into bps of the next breakpoint at/above level
  };
  auto cmp = [](const Segment& a, const Segment& b) {
    return a.marginal < b.marginal;
  };
  std::priority_queue<Segment, std::vector<Segment>, decltype(cmp)> pq(cmp);

  auto marginal_at = [&](int item, double level, int* next_bp) {
    const auto [begin, end] = item_range[item];
    double marg = problem.L(agent, item);
    int nb = end;
    // Weights with breakpoint level > current level still contribute.
    for (int i = begin; i < end; ++i) {
      if (bps[i].level > level + 1e-15) {
        marg += bps[i].weight;
        nb = std::min(nb, i);
      }
    }
    *next_bp = nb;
    return marg;
  };

  for (int c = 0; c < m; ++c) {
    (*x)[base + c] = 0.0;
    int nb = 0;
    const double marg = marginal_at(c, 0.0, &nb);
    pq.push({marg, c, 0.0, nb});
  }
  double remaining = std::min(problem.k, static_cast<double>(m));
  while (remaining > 1e-12 && !pq.empty()) {
    Segment seg = pq.top();
    pq.pop();
    const auto [begin, end] = item_range[seg.item];
    (void)begin;
    // Segment extends to the next breakpoint strictly above `level` or 1.
    double seg_end = 1.0;
    if (seg.next_bp < end && bps[seg.next_bp].level < 1.0) {
      seg_end = std::max(bps[seg.next_bp].level, seg.level);
    }
    if (seg_end <= seg.level + 1e-15) {
      // Degenerate segment: the item is effectively at its cap.
      continue;
    }
    const double take = std::min(seg_end - seg.level, remaining);
    (*x)[base + seg.item] = seg.level + take;
    remaining -= take;
    if (take >= seg_end - seg.level - 1e-15 && seg_end < 1.0 - 1e-15) {
      // Crossed into the next segment of this item; re-queue it.
      int nb = 0;
      const double marg = marginal_at(seg.item, seg_end, &nb);
      pq.push({marg, seg.item, seg_end, nb});
    }
  }

  // Block objective contribution (for convergence checks).
  double contrib = 0.0;
  for (int c = 0; c < m; ++c) {
    contrib += problem.L(agent, c) * (*x)[base + c];
  }
  for (int pi : pairs_of_agent[agent]) {
    const ConcavePair& pr = problem.pairs[pi];
    const int other = pr.a == agent ? pr.b : pr.a;
    const size_t obase = static_cast<size_t>(other) * m;
    for (const auto& [c, w] : pr.weights) {
      contrib += w * std::min((*x)[base + c], (*x)[obase + c]);
    }
  }
  return contrib;
}

Result<SubgradientSolution> MaximizePairwiseConcave(
    const PairwiseConcaveProblem& problem, const SubgradientOptions& options) {
  const int n = problem.num_agents;
  const int m = problem.num_items;
  if (n <= 0 || m <= 0) {
    return Status::InvalidArgument("empty problem");
  }
  if (problem.k > m) {
    return Status::InvalidArgument("mass k exceeds number of items");
  }
  if (static_cast<int>(problem.linear.size()) != n * m) {
    return Status::InvalidArgument("linear term has wrong size");
  }
  Timer timer;
  const size_t total = static_cast<size_t>(n) * m;
  const auto pairs_of_agent = BuildPairsOfAgent(problem);

  // Warm start: the better of (a) the uniform point k/m and (b) a greedy
  // point where each agent takes the top-k of its linear term plus half of
  // its incident pair weights (a proxy for achievable joint mass).
  std::vector<double> x(total, problem.k / m);
  double start_f = problem.Evaluate(x);
  {
    std::vector<double> greedy(total, 0.0);
    std::vector<double> score(m);
    for (int a = 0; a < n; ++a) {
      for (int c = 0; c < m; ++c) score[c] = problem.L(a, c);
      for (int pi : pairs_of_agent[a]) {
        for (const auto& [c, w] : problem.pairs[pi].weights) {
          score[c] += 0.5 * w;
        }
      }
      const auto block = CappedSimplexLmo(score, problem.k);
      std::copy(block.begin(), block.end(),
                greedy.begin() + static_cast<size_t>(a) * m);
    }
    const double greedy_f = problem.Evaluate(greedy);
    if (greedy_f > start_f) {
      x = std::move(greedy);
      start_f = greedy_f;
    }
  }
  if (options.initial_x != nullptr && options.initial_x->size() == total) {
    std::vector<double> warm = *options.initial_x;
    std::vector<double> block(m);
    for (int a = 0; a < n; ++a) {
      const size_t base = static_cast<size_t>(a) * m;
      std::copy(warm.begin() + base, warm.begin() + base + m, block.begin());
      ProjectCappedSimplex(&block, problem.k);
      std::copy(block.begin(), block.end(), warm.begin() + base);
    }
    const double warm_f = problem.Evaluate(warm);
    if (warm_f > start_f) {
      x = std::move(warm);
      start_f = warm_f;
    }
  }
  std::vector<double> best_x = x;
  double best_f = start_f;
  std::vector<double> g(total);
  const double radius = std::sqrt(static_cast<double>(n) * problem.k);

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    if (timer.ElapsedSeconds() > options.time_limit_seconds) break;
    // Supergradient.
    std::copy(problem.linear.begin(), problem.linear.end(), g.begin());
    for (const ConcavePair& pr : problem.pairs) {
      const size_t ba = static_cast<size_t>(pr.a) * m;
      const size_t bb = static_cast<size_t>(pr.b) * m;
      for (const auto& [c, w] : pr.weights) {
        const double xa = x[ba + c], xb = x[bb + c];
        if (xa < xb - 1e-12) {
          g[ba + c] += w;
        } else if (xb < xa - 1e-12) {
          g[bb + c] += w;
        } else {
          g[ba + c] += 0.5 * w;
          g[bb + c] += 0.5 * w;
        }
      }
    }
    double gnorm = 0.0;
    for (double v : g) gnorm += v * v;
    gnorm = std::sqrt(gnorm);
    if (gnorm < 1e-14) break;
    const double step = options.step_scale * radius /
                        (gnorm * std::sqrt(static_cast<double>(iter) + 1.0));
    for (size_t i = 0; i < total; ++i) x[i] += step * g[i];
    // Project every agent block onto D(k).
    std::vector<double> block(m);
    for (int a = 0; a < n; ++a) {
      const size_t base = static_cast<size_t>(a) * m;
      std::copy(x.begin() + base, x.begin() + base + m, block.begin());
      ProjectCappedSimplex(&block, problem.k);
      std::copy(block.begin(), block.end(), x.begin() + base);
    }
    const double f = problem.Evaluate(x);
    if (f > best_f) {
      best_f = f;
      best_x = x;
    }
  }

  // Exact block-coordinate polish from the best point found.
  x = best_x;
  for (int sweep = 0; sweep < options.polish_sweeps; ++sweep) {
    if (timer.ElapsedSeconds() > options.time_limit_seconds) break;
    for (int a = 0; a < n; ++a) {
      ExactBlockMaximize(problem, a, pairs_of_agent, &x);
    }
    const double f = problem.Evaluate(x);
    if (f > best_f + 1e-12) {
      best_f = f;
      best_x = x;
    } else {
      break;
    }
  }

  SubgradientSolution sol;
  sol.x = std::move(best_x);
  sol.objective = best_f;
  sol.iterations = options.max_iterations;
  sol.solve_seconds = timer.ElapsedSeconds();
  return sol;
}

}  // namespace savg
