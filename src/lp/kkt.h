// Standalone KKT audit of an LP primal/dual point against its model.
//
// Extracted from the lp_test.cc dual-sign checker so production code (the
// sampled solution self-verifier in obs/verify.h) can re-check served
// solves off the hot path with the same logic the tests use. Reports the
// worst violation per condition instead of asserting, so callers decide
// tolerance and failure handling.
//
// Conditions checked, all in maximize orientation (sense-flipped for
// minimize models):
//   - primal feasibility: max constraint/bound violation of x;
//   - dual sign: y_i >= 0 on <= rows, y_i <= 0 on >= rows (equality rows
//     are sign-free);
//   - complementary slackness: slack rows must carry ~zero duals;
//   - stationarity: reduced cost d_j = c_j - y'A_j must be <= 0 at lower
//     bound, >= 0 at upper bound, ~0 for interior variables.

#pragma once

#include <vector>

#include "lp/lp_model.h"

namespace savg {

struct KktReport {
  double max_primal_violation = 0.0;
  double max_dual_sign_violation = 0.0;
  double max_complementary_slackness = 0.0;
  double max_reduced_cost_violation = 0.0;

  double MaxViolation() const;
  bool Ok(double tol) const { return MaxViolation() <= tol; }
};

/// Audits (x, duals) against the model. `duals` must have one entry per
/// row and `x` one per variable.
KktReport CheckLpKkt(const LpModel& model, const std::vector<double>& x,
                     const std::vector<double>& duals);

}  // namespace savg
