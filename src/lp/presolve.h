// LP presolve: shrink an LpModel before the simplex sees it, with exact
// postsolve back to the original space.
//
// The compact SVGIC LPs carry a lot of structurally removable material:
// per-user column blocks are parallel (identical constraint columns that
// differ only in objective), retired items and frozen users produce fixed
// columns, and serving mutations leave behind empty and singleton rows.
// Presolve removes what provably cannot matter and hands the simplex a
// smaller model; postsolve reconstructs the primal point, the row duals
// AND the simplex basis of the original model exactly, so warm-start
// chains (branch-and-bound children, serving sessions, shard solves) pass
// through presolve unchanged — a postsolved optimal basis re-solves the
// original model in zero pivots.
//
// Reductions (each is exact for the optimal objective value):
//
//  * fixed columns    — upper == lower: substitute into the rhs.
//  * empty rows       — no terms left: feasibility-check and drop
//                       (slack basic, dual 0 on postsolve).
//  * singleton rows   — one term left: converted to a variable bound.
//                       Postsolve re-derives the row dual from the
//                       variable's reduced cost when the implied bound is
//                       active (and re-activates the row in the basis).
//  * dominated columns — sign test: a column whose objective cannot pay
//                       and whose every coefficient relaxes its rows when
//                       the variable moves to one bound is fixed there.
//                       Any feasible dual prices such a column dual-
//                       feasible at that bound, so the 0-pivot guarantee
//                       is unconditional.
//  * parallel columns — columns with identical constraint columns (the
//                       per-user x_u^c blocks of the compact LP) compete
//                       for the same row capacity M; once the strictly
//                       better twins' combined capacity covers M, the
//                       rest are fixed at lower. This is what turns the
//                       m=10000 compact LP into a k-sized one per user.
//  * scaling          — power-of-two row/column equilibration. Powers of
//                       two make the scaling bit-lossless to undo; the
//                       all-±1 compact LPs are left untouched (factor 1).
//
// Usage (SolveLp does this internally when SimplexOptions::presolve is
// enabled):
//
//   auto pre = PresolveLp(model);            // may prove infeasibility
//   auto sol = SolveLp(pre->reduced(), ...); // solve the small model
//   LpSolution full = pre->Postsolve(*sol);  // exact original solution

#pragma once

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "lp/lp_model.h"
#include "util/status.h"

namespace savg {

struct PresolveOptions {
  bool remove_fixed_columns = true;
  bool remove_dominated_columns = true;
  bool remove_parallel_columns = true;
  bool remove_rows = true;  ///< empty + singleton rows
  bool scale = true;        ///< power-of-two equilibration
  /// Reduction passes repeat until a fixpoint or this cap (removals
  /// cascade: a dominated column can empty a row, an emptied row can
  /// free a column).
  int max_passes = 4;
  double tolerance = 1e-9;
};

/// What presolve removed (flows into LpStats for the --json artifacts).
struct PresolveStats {
  int fixed_cols = 0;
  int dominated_cols = 0;
  int parallel_cols = 0;
  int empty_rows = 0;
  int singleton_rows = 0;
  bool scaled = false;
  int cols_removed() const {
    return fixed_cols + dominated_cols + parallel_cols;
  }
  int rows_removed() const { return empty_rows + singleton_rows; }
};

/// A presolved model plus everything postsolve needs. Holds a pointer to
/// the original model: the PresolvedLp must not outlive it.
class PresolvedLp {
 public:
  const LpModel& reduced() const { return reduced_; }
  const PresolveStats& stats() const { return stats_; }

  /// Maps a warm-start basis of the ORIGINAL model onto the reduced
  /// model (removed entities are dropped; the simplex's warm-basis repair
  /// absorbs the count drift). Returns an empty basis when `original` is
  /// incompatible with the original model's shape.
  LpBasis MapBasis(const LpBasis& original) const;

  /// Expands a solution of reduced() into the original space: primal
  /// point (fixed values reinserted, scaling undone), row duals (removed
  /// rows get their exact duals re-derived), objective, and a valid basis
  /// of the original model. Stats/iteration counters are carried over.
  LpSolution Postsolve(const LpSolution& reduced_sol) const;

 private:
  friend Result<PresolvedLp> PresolveLp(const LpModel& model,
                                        const PresolveOptions& options);

  /// Why a row was removed — drives its postsolve dual reconstruction.
  struct RemovedRow {
    int row = -1;          ///< original row index
    int var = -1;          ///< singleton variable (-1: empty/redundant)
    double coef = 0.0;     ///< its coefficient in this row
    double bound = 0.0;    ///< the bound the row implied on `var`
    bool bound_is_upper = false;
  };

  const LpModel* original_ = nullptr;
  LpModel reduced_;
  PresolveStats stats_;
  double tol_ = 1e-9;
  std::vector<int> col_map_;          ///< original col -> reduced col / -1
  std::vector<int> row_map_;          ///< original row -> reduced row / -1
  std::vector<double> fixed_value_;   ///< removed col -> its value
  std::vector<uint8_t> fixed_at_upper_;  ///< removed col -> basis side
  std::vector<RemovedRow> removed_rows_;
  /// Original-model column occurrences of every variable a removed
  /// singleton row references (postsolve re-derives those rows' duals
  /// from the variable's reduced cost).
  std::unordered_map<int, std::vector<std::pair<int, double>>>
      singleton_var_cols_;
  std::vector<double> row_scale_, col_scale_;  ///< powers of two (or 1)
};

/// Runs presolve. Returns kInfeasible when a reduction proves the model
/// infeasible (empty row with impossible rhs, crossing singleton bounds).
Result<PresolvedLp> PresolveLp(const LpModel& model,
                               const PresolveOptions& options = {});

}  // namespace savg
