#include "lp/dense_matrix.h"

#include <cmath>
#include <sstream>

namespace savg {

DenseMatrix::DenseMatrix(size_t rows, size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

DenseMatrix DenseMatrix::Identity(size_t n) {
  DenseMatrix m(n, n, 0.0);
  for (size_t i = 0; i < n; ++i) m.At(i, i) = 1.0;
  return m;
}

std::vector<double> DenseMatrix::MultiplyVector(
    const std::vector<double>& x) const {
  std::vector<double> y(rows_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    const double* row = RowPtr(r);
    double acc = 0.0;
    for (size_t c = 0; c < cols_; ++c) acc += row[c] * x[c];
    y[r] = acc;
  }
  return y;
}

std::vector<double> DenseMatrix::TransposeMultiplyVector(
    const std::vector<double>& x) const {
  std::vector<double> y(cols_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    const double* row = RowPtr(r);
    const double xr = x[r];
    if (xr == 0.0) continue;
    for (size_t c = 0; c < cols_; ++c) y[c] += row[c] * xr;
  }
  return y;
}

Result<DenseMatrix> DenseMatrix::Multiply(const DenseMatrix& other) const {
  if (cols_ != other.rows_) {
    return Status::InvalidArgument("matrix dimension mismatch");
  }
  DenseMatrix out(rows_, other.cols_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t k = 0; k < cols_; ++k) {
      const double a = At(r, k);
      if (a == 0.0) continue;
      const double* brow = other.RowPtr(k);
      double* orow = out.RowPtr(r);
      for (size_t c = 0; c < other.cols_; ++c) orow[c] += a * brow[c];
    }
  }
  return out;
}

Result<DenseMatrix> DenseMatrix::Inverse(double pivot_tol) const {
  if (rows_ != cols_) {
    return Status::InvalidArgument("inverse of non-square matrix");
  }
  const size_t n = rows_;
  DenseMatrix work = *this;
  DenseMatrix inv = Identity(n);
  for (size_t col = 0; col < n; ++col) {
    // Partial pivoting.
    size_t pivot = col;
    double best = std::abs(work.At(col, col));
    for (size_t r = col + 1; r < n; ++r) {
      const double v = std::abs(work.At(r, col));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best < pivot_tol) {
      return Status::NumericalError("singular matrix in inversion");
    }
    if (pivot != col) {
      for (size_t c = 0; c < n; ++c) {
        std::swap(work.At(pivot, c), work.At(col, c));
        std::swap(inv.At(pivot, c), inv.At(col, c));
      }
    }
    const double d = work.At(col, col);
    const double dinv = 1.0 / d;
    for (size_t c = 0; c < n; ++c) {
      work.At(col, c) *= dinv;
      inv.At(col, c) *= dinv;
    }
    for (size_t r = 0; r < n; ++r) {
      if (r == col) continue;
      const double f = work.At(r, col);
      if (f == 0.0) continue;
      for (size_t c = 0; c < n; ++c) {
        work.At(r, c) -= f * work.At(col, c);
        inv.At(r, c) -= f * inv.At(col, c);
      }
    }
  }
  return inv;
}

double DenseMatrix::InverseResidual(const DenseMatrix& claimed_inverse) const {
  auto prod = Multiply(claimed_inverse);
  if (!prod.ok()) return 1e300;
  double worst = 0.0;
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) {
      const double expect = r == c ? 1.0 : 0.0;
      worst = std::max(worst, std::abs(prod->At(r, c) - expect));
    }
  }
  return worst;
}

std::string DenseMatrix::DebugString() const {
  std::ostringstream os;
  os << "DenseMatrix " << rows_ << "x" << cols_ << "\n";
  for (size_t r = 0; r < rows_ && r < 12; ++r) {
    for (size_t c = 0; c < cols_ && c < 12; ++c) {
      os << At(r, c) << (c + 1 < cols_ ? " " : "");
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace savg
