#include "lp/basis_lu.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "lp/dense_matrix.h"
#include "util/logging.h"

namespace savg {

namespace {

constexpr double kPivotTolerance = 1e-11;
constexpr double kUpdatePivotTolerance = 1e-9;
/// Threshold partial pivoting: accept a sparser pivot row whose magnitude
/// is within this factor of the column maximum.
constexpr double kThresholdPivoting = 0.1;

// ---------------------------------------------------------------------------
// Sparse LU backend.
// ---------------------------------------------------------------------------

/// Left-looking (Gilbert-Peierls flavoured) LU of the basis matrix with
/// threshold partial pivoting and a static ascending-nonzero column order.
/// L is kept as an ordered elimination eta file, U column-wise in pivot
/// coordinates. Everything — L, U and the product-form eta file — lives in
/// flat (index, value) arrays with ascending indices per segment, so the
/// solve kernels stream contiguous memory instead of chasing a
/// vector-of-vectors; Ftran/Btran cost O(nnz(L) + nnz(U) + nnz(etas)).
///
/// The Ftran-side kernels come in two flavors chosen by the input vector's
/// nonzero density (LuKernelOptions::dense_switch_density): the sparse
/// flavor skips whole segments whose multiplier is zero (hypersparse
/// entering columns touch a handful of segments), the dense flavor drops
/// the per-segment zero test and runs branch-lean straight-line loops.
/// Both flavors execute identical arithmetic on every nonzero, so their
/// results are exactly equal (a zero multiplier only ever adds ±0.0).
class LuBasisFactorization : public BasisFactorization {
 public:
  explicit LuBasisFactorization(const LuKernelOptions& kernel)
      : kernel_(kernel) {}

  Status Factorize(const std::vector<SparseColumn>& columns,
                   const std::vector<int>& basis) override {
    const int n = static_cast<int>(basis.size());
    n_ = n;
    ++factorizations_;
    ClearEtas();
    eta_ops_since_factor_ = 0;
    int64_t ops = 0;
    pos_of_k_.assign(n, -1);
    pivot_row_of_k_.assign(n, -1);
    k_of_row_.assign(n, -1);
    l_off_.assign(1, 0);
    l_rows_.clear();
    l_vals_.clear();
    u_off_.assign(1, 0);
    u_ks_.clear();
    u_vals_.clear();
    diag_.assign(n, 0.0);
    work_.assign(n, 0.0);

    // Static fill-reducing order: sparsest basis columns pivot first.
    std::vector<int> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
      return columns[basis[a]].size() < columns[basis[b]].size();
    });

    std::vector<int> touched;
    touched.reserve(n);
    std::vector<std::pair<int, double>> lterms, uterms;
    for (int k = 0; k < n; ++k) {
      const int pos = order[k];
      touched.clear();
      for (const auto& [row, value] : columns[basis[pos]]) {
        if (work_[row] == 0.0 && value != 0.0) touched.push_back(row);
        work_[row] += value;
      }
      ops += static_cast<int64_t>(columns[basis[pos]].size());
      // Left-looking pass: fold in the eliminations of earlier pivots.
      for (int k2 = 0; k2 < k; ++k2) {
        const double xk = work_[pivot_row_of_k_[k2]];
        if (xk == 0.0) continue;
        for (int64_t i = l_off_[k2]; i < l_off_[k2 + 1]; ++i) {
          const int row = l_rows_[i];
          if (work_[row] == 0.0) touched.push_back(row);
          work_[row] -= l_vals_[i] * xk;
        }
        ops += l_off_[k2 + 1] - l_off_[k2];
      }
      // Pivot choice: the unpivoted row of largest magnitude, except that
      // a smaller-index row within the pivoting threshold of the max wins
      // (deterministic, and biases toward the natural row order that the
      // mostly-triangular simplex bases preserve).
      double pivot_abs_max = 0.0;
      for (int row : touched) {
        if (k_of_row_[row] >= 0) continue;
        pivot_abs_max = std::max(pivot_abs_max, std::abs(work_[row]));
      }
      if (pivot_abs_max < kPivotTolerance) {
        for (int row : touched) work_[row] = 0.0;
        return Status::NumericalError("singular basis in LU factorization");
      }
      int pivot_row = -1;
      for (int row : touched) {
        if (k_of_row_[row] >= 0) continue;
        if (std::abs(work_[row]) < kThresholdPivoting * pivot_abs_max) {
          continue;
        }
        if (pivot_row < 0 || row < pivot_row) pivot_row = row;
      }
      const double pivot = work_[pivot_row];
      diag_[k] = pivot;
      pivot_row_of_k_[k] = pivot_row;
      k_of_row_[pivot_row] = k;
      pos_of_k_[k] = pos;
      lterms.clear();
      uterms.clear();
      for (int row : touched) {
        const double value = work_[row];
        work_[row] = 0.0;
        if (value == 0.0 || row == pivot_row) continue;
        const int krow = k_of_row_[row];
        if (krow >= 0 && krow < k) {
          uterms.emplace_back(krow, value);
        } else if (krow < 0) {
          lterms.emplace_back(row, value / pivot);
        }
      }
      ops += static_cast<int64_t>(touched.size());
      // Sorted segments: the solve kernels then walk strictly ascending
      // indices, which is what makes the flat streams cache-friendly.
      std::sort(lterms.begin(), lterms.end());
      std::sort(uterms.begin(), uterms.end());
      for (const auto& [row, mult] : lterms) {
        l_rows_.push_back(row);
        l_vals_.push_back(mult);
      }
      for (const auto& [krow, value] : uterms) {
        u_ks_.push_back(krow);
        u_vals_.push_back(value);
      }
      l_off_.push_back(static_cast<int64_t>(l_rows_.size()));
      u_off_.push_back(static_cast<int64_t>(u_ks_.size()));
    }
    factor_ops_ = ops;
    return Status::OK();
  }

  void Ftran(std::vector<double>* v) const override {
    eta_ops_since_factor_ += static_cast<int64_t>(eta_rows_.size());
    const bool dense = Density(*v) > kernel_.dense_switch_density;
    double* x = v->data();
    // L pass in elimination order (original row space).
    if (dense) {
      for (int k = 0; k < n_; ++k) {
        const double xk = x[pivot_row_of_k_[k]];
        for (int64_t i = l_off_[k]; i < l_off_[k + 1]; ++i) {
          x[l_rows_[i]] -= l_vals_[i] * xk;
        }
      }
    } else {
      for (int k = 0; k < n_; ++k) {
        const double xk = x[pivot_row_of_k_[k]];
        if (xk == 0.0) continue;
        for (int64_t i = l_off_[k]; i < l_off_[k + 1]; ++i) {
          x[l_rows_[i]] -= l_vals_[i] * xk;
        }
      }
    }
    // Gather into pivot coordinates, backward-solve U, scatter to
    // basis-position space.
    std::vector<double>& z = scratch_;
    z.assign(n_, 0.0);
    for (int k = 0; k < n_; ++k) z[k] = x[pivot_row_of_k_[k]];
    if (dense) {
      for (int k = n_ - 1; k >= 0; --k) {
        const double t = z[k] / diag_[k];
        z[k] = t;
        for (int64_t i = u_off_[k]; i < u_off_[k + 1]; ++i) {
          z[u_ks_[i]] -= u_vals_[i] * t;
        }
      }
    } else {
      for (int k = n_ - 1; k >= 0; --k) {
        if (z[k] == 0.0) continue;
        const double t = z[k] / diag_[k];
        z[k] = t;
        for (int64_t i = u_off_[k]; i < u_off_[k + 1]; ++i) {
          z[u_ks_[i]] -= u_vals_[i] * t;
        }
      }
    }
    std::fill(v->begin(), v->end(), 0.0);
    for (int k = 0; k < n_; ++k) x[pos_of_k_[k]] = z[k];
    // Product-form eta file, forward order.
    const int num_etas = static_cast<int>(eta_pos_.size());
    if (dense) {
      for (int e = 0; e < num_etas; ++e) {
        const double t = x[eta_pos_[e]] / eta_pivot_[e];
        x[eta_pos_[e]] = t;
        for (int64_t i = eta_off_[e]; i < eta_off_[e + 1]; ++i) {
          x[eta_rows_[i]] -= eta_vals_[i] * t;
        }
      }
    } else {
      for (int e = 0; e < num_etas; ++e) {
        double& vp = x[eta_pos_[e]];
        if (vp == 0.0) continue;
        const double t = vp / eta_pivot_[e];
        vp = t;
        for (int64_t i = eta_off_[e]; i < eta_off_[e + 1]; ++i) {
          x[eta_rows_[i]] -= eta_vals_[i] * t;
        }
      }
    }
  }

  void Btran(std::vector<double>* v) const override {
    eta_ops_since_factor_ += static_cast<int64_t>(eta_rows_.size());
    double* x = v->data();
    // Eta file, reverse order. Accumulation (gather) form: each segment
    // reduces into one entry, so the loop body is branch-free — the dense
    // flavor IS the only flavor on the Btran side.
    for (int e = static_cast<int>(eta_pos_.size()) - 1; e >= 0; --e) {
      double acc = x[eta_pos_[e]];
      for (int64_t i = eta_off_[e]; i < eta_off_[e + 1]; ++i) {
        acc -= eta_vals_[i] * x[eta_rows_[i]];
      }
      x[eta_pos_[e]] = acc / eta_pivot_[e];
    }
    // Gather into pivot coordinates, forward-solve U', scatter through L'.
    std::vector<double>& z = scratch_;
    z.assign(n_, 0.0);
    for (int k = 0; k < n_; ++k) z[k] = x[pos_of_k_[k]];
    for (int k = 0; k < n_; ++k) {
      double acc = z[k];
      for (int64_t i = u_off_[k]; i < u_off_[k + 1]; ++i) {
        acc -= u_vals_[i] * z[u_ks_[i]];
      }
      z[k] = acc / diag_[k];
    }
    std::fill(v->begin(), v->end(), 0.0);
    for (int k = 0; k < n_; ++k) x[pivot_row_of_k_[k]] = z[k];
    for (int k = n_ - 1; k >= 0; --k) {
      double acc = x[pivot_row_of_k_[k]];
      for (int64_t i = l_off_[k]; i < l_off_[k + 1]; ++i) {
        acc -= l_vals_[i] * x[l_rows_[i]];
      }
      x[pivot_row_of_k_[k]] = acc;
    }
  }

  Status Update(const std::vector<double>& w, int leaving_pos) override {
    const double pivot = w[leaving_pos];
    if (std::abs(pivot) < kUpdatePivotTolerance) {
      return Status::NumericalError("tiny pivot in product-form update");
    }
    eta_pos_.push_back(leaving_pos);
    eta_pivot_.push_back(pivot);
    // The scan is index-ascending, so the segment lands pre-sorted.
    for (int i = 0; i < n_; ++i) {
      if (i == leaving_pos || w[i] == 0.0) continue;
      eta_rows_.push_back(i);
      eta_vals_.push_back(w[i]);
    }
    eta_off_.push_back(static_cast<int64_t>(eta_rows_.size()));
    return Status::OK();
  }

  int eta_count() const override { return static_cast<int>(eta_pos_.size()); }
  int factorizations() const override { return factorizations_; }
  int64_t eta_nonzeros() const override {
    return static_cast<int64_t>(eta_rows_.size()) +
           static_cast<int64_t>(eta_pos_.size());
  }
  int64_t factor_nonzeros() const override {
    return static_cast<int64_t>(l_rows_.size()) +
           static_cast<int64_t>(u_ks_.size()) + n_;
  }
  int64_t factor_ops() const override { return factor_ops_; }
  int64_t eta_ops_since_factor() const override {
    return eta_ops_since_factor_;
  }

 private:
  void ClearEtas() {
    eta_pos_.clear();
    eta_pivot_.clear();
    eta_off_.assign(1, 0);
    eta_rows_.clear();
    eta_vals_.clear();
  }

  double Density(const std::vector<double>& v) const {
    if (n_ == 0) return 0.0;
    int nnz = 0;
    for (double x : v) nnz += x != 0.0;
    return static_cast<double>(nnz) / static_cast<double>(n_);
  }

  const LuKernelOptions kernel_;
  int n_ = 0;
  std::vector<int> pos_of_k_;
  std::vector<int> pivot_row_of_k_, k_of_row_;
  /// L as elimination etas, flat: segment k is l_off_[k]..l_off_[k+1]
  /// of (l_rows_, l_vals_), row-sorted.
  std::vector<int64_t> l_off_;
  std::vector<int> l_rows_;
  std::vector<double> l_vals_;
  /// U column k in pivot coordinates, flat like L; diagonal separate.
  std::vector<int64_t> u_off_;
  std::vector<int> u_ks_;
  std::vector<double> u_vals_;
  std::vector<double> diag_;
  /// Product-form eta file, flat: eta e pivots at eta_pos_[e] with value
  /// eta_pivot_[e]; its off-pivot terms are segment eta_off_[e]..
  /// eta_off_[e+1] of (eta_rows_, eta_vals_), row-sorted.
  std::vector<int> eta_pos_;
  std::vector<double> eta_pivot_;
  std::vector<int64_t> eta_off_;
  std::vector<int> eta_rows_;
  std::vector<double> eta_vals_;
  std::vector<double> work_;
  mutable std::vector<double> scratch_;
  int factorizations_ = 0;
  int64_t factor_ops_ = 0;
  mutable int64_t eta_ops_since_factor_ = 0;
};

// ---------------------------------------------------------------------------
// Dense backend (legacy explicit inverse).
// ---------------------------------------------------------------------------

class DenseBasisFactorization : public BasisFactorization {
 public:
  Status Factorize(const std::vector<SparseColumn>& columns,
                   const std::vector<int>& basis) override {
    const int n = static_cast<int>(basis.size());
    n_ = n;
    ++factorizations_;
    eta_count_ = 0;
    eta_ops_since_factor_ = 0;
    DenseMatrix b(n, n);
    for (int pos = 0; pos < n; ++pos) {
      for (const auto& [row, value] : columns[basis[pos]]) {
        b.At(row, pos) += value;
      }
    }
    auto inverse = b.Inverse();
    if (!inverse.ok()) return inverse.status();
    binv_ = std::move(inverse).value();
    return Status::OK();
  }

  void Ftran(std::vector<double>* v) const override {
    // binv_ rows are basis positions, columns original rows.
    std::vector<double>& out = scratch_;
    out.assign(n_, 0.0);
    for (int r = 0; r < n_; ++r) {
      const double x = (*v)[r];
      if (x == 0.0) continue;
      for (int pos = 0; pos < n_; ++pos) out[pos] += binv_.At(pos, r) * x;
    }
    *v = out;
  }

  void Btran(std::vector<double>* v) const override {
    std::vector<double>& out = scratch_;
    out.assign(n_, 0.0);
    for (int pos = 0; pos < n_; ++pos) {
      const double c = (*v)[pos];
      if (c == 0.0) continue;
      const double* row = binv_.RowPtr(pos);
      for (int r = 0; r < n_; ++r) out[r] += row[r] * c;
    }
    *v = out;
  }

  Status Update(const std::vector<double>& w, int leaving_pos) override {
    const double pivot = w[leaving_pos];
    if (std::abs(pivot) < kUpdatePivotTolerance) {
      return Status::NumericalError("tiny pivot in dense basis update");
    }
    double* prow = binv_.RowPtr(leaving_pos);
    const double pinv = 1.0 / pivot;
    for (int c = 0; c < n_; ++c) prow[c] *= pinv;
    for (int i = 0; i < n_; ++i) {
      if (i == leaving_pos || w[i] == 0.0) continue;
      double* irow = binv_.RowPtr(i);
      const double f = w[i];
      for (int c = 0; c < n_; ++c) irow[c] -= f * prow[c];
    }
    ++eta_count_;
    return Status::OK();
  }

  int eta_count() const override { return eta_count_; }
  int factorizations() const override { return factorizations_; }
  // The dense backend folds updates into the explicit inverse, so the
  // "eta file" it reports is the equivalent dense work: n^2 per update
  // already paid at Update() time, nothing extra per solve. Returning the
  // folded size keeps the adaptive-policy counters meaningful (the
  // density trigger then mirrors the fixed interval).
  int64_t eta_nonzeros() const override {
    return static_cast<int64_t>(eta_count_) * n_;
  }
  int64_t factor_nonzeros() const override {
    return static_cast<int64_t>(n_) * n_;
  }
  int64_t factor_ops() const override {
    return static_cast<int64_t>(n_) * n_ * n_;
  }
  int64_t eta_ops_since_factor() const override {
    return eta_ops_since_factor_;
  }

 private:
  int n_ = 0;
  DenseMatrix binv_;
  mutable std::vector<double> scratch_;
  int eta_count_ = 0;
  int factorizations_ = 0;
  int64_t eta_ops_since_factor_ = 0;
};

}  // namespace

std::unique_ptr<BasisFactorization> MakeLuFactorization(
    const LuKernelOptions& kernel) {
  return std::make_unique<LuBasisFactorization>(kernel);
}

std::unique_ptr<BasisFactorization> MakeDenseFactorization() {
  return std::make_unique<DenseBasisFactorization>();
}

}  // namespace savg
