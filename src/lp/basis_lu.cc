#include "lp/basis_lu.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "lp/dense_matrix.h"
#include "util/logging.h"

namespace savg {

namespace {

constexpr double kPivotTolerance = 1e-11;
constexpr double kUpdatePivotTolerance = 1e-9;
/// Threshold partial pivoting: accept a sparser pivot row whose magnitude
/// is within this factor of the column maximum.
constexpr double kThresholdPivoting = 0.1;

/// One product-form eta: basis position, pivot value, off-pivot terms.
struct ProductEta {
  int pos = 0;
  double pivot = 1.0;
  std::vector<std::pair<int, double>> terms;
};

void ApplyEtasFtran(const std::vector<ProductEta>& etas,
                    std::vector<double>* v) {
  for (const ProductEta& eta : etas) {
    double& vp = (*v)[eta.pos];
    const double t = vp / eta.pivot;
    vp = t;
    if (t == 0.0) continue;
    for (const auto& [row, value] : eta.terms) (*v)[row] -= value * t;
  }
}

void ApplyEtasBtran(const std::vector<ProductEta>& etas,
                    std::vector<double>* v) {
  for (auto it = etas.rbegin(); it != etas.rend(); ++it) {
    double acc = (*v)[it->pos];
    for (const auto& [row, value] : it->terms) acc -= value * (*v)[row];
    (*v)[it->pos] = acc / it->pivot;
  }
}

// ---------------------------------------------------------------------------
// Sparse LU backend.
// ---------------------------------------------------------------------------

/// Left-looking (Gilbert-Peierls flavoured) LU of the basis matrix with
/// threshold partial pivoting and a static ascending-nonzero column order.
/// L is kept as an ordered elimination eta file, U column-wise in pivot
/// coordinates; both stay sparse, so Ftran/Btran cost O(nnz(L) + nnz(U))
/// instead of the dense O(n^2).
class LuBasisFactorization : public BasisFactorization {
 public:
  Status Factorize(const std::vector<SparseColumn>& columns,
                   const std::vector<int>& basis) override {
    const int n = static_cast<int>(basis.size());
    n_ = n;
    ++factorizations_;
    etas_.clear();
    pos_of_k_.assign(n, -1);
    k_of_pos_.assign(n, -1);
    pivot_row_of_k_.assign(n, -1);
    k_of_row_.assign(n, -1);
    leta_.assign(n, {});
    ucol_.assign(n, {});
    diag_.assign(n, 0.0);
    work_.assign(n, 0.0);

    // Static fill-reducing order: sparsest basis columns pivot first.
    std::vector<int> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
      return columns[basis[a]].size() < columns[basis[b]].size();
    });

    std::vector<int> touched;
    touched.reserve(n);
    for (int k = 0; k < n; ++k) {
      const int pos = order[k];
      touched.clear();
      for (const auto& [row, value] : columns[basis[pos]]) {
        if (work_[row] == 0.0 && value != 0.0) touched.push_back(row);
        work_[row] += value;
      }
      // Left-looking pass: fold in the eliminations of earlier pivots.
      for (int k2 = 0; k2 < k; ++k2) {
        const double xk = work_[pivot_row_of_k_[k2]];
        if (xk == 0.0) continue;
        for (const auto& [row, mult] : leta_[k2]) {
          if (work_[row] == 0.0) touched.push_back(row);
          work_[row] -= mult * xk;
        }
      }
      // Pivot choice: the unpivoted row of largest magnitude, except that
      // a smaller-index row within the pivoting threshold of the max wins
      // (deterministic, and biases toward the natural row order that the
      // mostly-triangular simplex bases preserve).
      double pivot_abs_max = 0.0;
      for (int row : touched) {
        if (k_of_row_[row] >= 0) continue;
        pivot_abs_max = std::max(pivot_abs_max, std::abs(work_[row]));
      }
      if (pivot_abs_max < kPivotTolerance) {
        for (int row : touched) work_[row] = 0.0;
        return Status::NumericalError("singular basis in LU factorization");
      }
      int pivot_row = -1;
      for (int row : touched) {
        if (k_of_row_[row] >= 0) continue;
        if (std::abs(work_[row]) < kThresholdPivoting * pivot_abs_max) {
          continue;
        }
        if (pivot_row < 0 || row < pivot_row) pivot_row = row;
      }
      const double pivot = work_[pivot_row];
      diag_[k] = pivot;
      pivot_row_of_k_[k] = pivot_row;
      k_of_row_[pivot_row] = k;
      pos_of_k_[k] = pos;
      k_of_pos_[pos] = k;
      for (int row : touched) {
        const double value = work_[row];
        work_[row] = 0.0;
        if (value == 0.0 || row == pivot_row) continue;
        const int krow = k_of_row_[row];
        if (krow >= 0 && krow < k) {
          ucol_[k].emplace_back(krow, value);
        } else if (krow < 0) {
          leta_[k].emplace_back(row, value / pivot);
        }
      }
    }
    return Status::OK();
  }

  void Ftran(std::vector<double>* v) const override {
    // L pass in elimination order (original row space).
    for (int k = 0; k < n_; ++k) {
      const double xk = (*v)[pivot_row_of_k_[k]];
      if (xk == 0.0) continue;
      for (const auto& [row, mult] : leta_[k]) (*v)[row] -= mult * xk;
    }
    // Gather into pivot coordinates, backward-solve U, scatter to
    // basis-position space.
    std::vector<double>& z = scratch_;
    z.assign(n_, 0.0);
    for (int k = 0; k < n_; ++k) z[k] = (*v)[pivot_row_of_k_[k]];
    for (int k = n_ - 1; k >= 0; --k) {
      const double t = z[k] / diag_[k];
      z[k] = t;
      if (t == 0.0) continue;
      for (const auto& [k2, value] : ucol_[k]) z[k2] -= value * t;
    }
    std::fill(v->begin(), v->end(), 0.0);
    for (int k = 0; k < n_; ++k) (*v)[pos_of_k_[k]] = z[k];
    ApplyEtasFtran(etas_, v);
  }

  void Btran(std::vector<double>* v) const override {
    ApplyEtasBtran(etas_, v);
    // Gather into pivot coordinates, forward-solve U', scatter through L'.
    std::vector<double>& z = scratch_;
    z.assign(n_, 0.0);
    for (int k = 0; k < n_; ++k) z[k] = (*v)[pos_of_k_[k]];
    for (int k = 0; k < n_; ++k) {
      double acc = z[k];
      for (const auto& [k2, value] : ucol_[k]) acc -= value * z[k2];
      z[k] = acc / diag_[k];
    }
    std::fill(v->begin(), v->end(), 0.0);
    for (int k = 0; k < n_; ++k) (*v)[pivot_row_of_k_[k]] = z[k];
    for (int k = n_ - 1; k >= 0; --k) {
      double acc = (*v)[pivot_row_of_k_[k]];
      for (const auto& [row, mult] : leta_[k]) acc -= mult * (*v)[row];
      (*v)[pivot_row_of_k_[k]] = acc;
    }
  }

  Status Update(const std::vector<double>& w, int leaving_pos) override {
    const double pivot = w[leaving_pos];
    if (std::abs(pivot) < kUpdatePivotTolerance) {
      return Status::NumericalError("tiny pivot in product-form update");
    }
    ProductEta eta;
    eta.pos = leaving_pos;
    eta.pivot = pivot;
    for (int i = 0; i < n_; ++i) {
      if (i == leaving_pos || w[i] == 0.0) continue;
      eta.terms.emplace_back(i, w[i]);
    }
    etas_.push_back(std::move(eta));
    return Status::OK();
  }

  int eta_count() const override { return static_cast<int>(etas_.size()); }
  int factorizations() const override { return factorizations_; }

 private:
  int n_ = 0;
  std::vector<int> pos_of_k_, k_of_pos_;
  std::vector<int> pivot_row_of_k_, k_of_row_;
  /// L as elimination etas: leta_[k] = (row, multiplier) pairs.
  std::vector<std::vector<std::pair<int, double>>> leta_;
  /// U column k in pivot coordinates: (k' < k, value); diagonal separate.
  std::vector<std::vector<std::pair<int, double>>> ucol_;
  std::vector<double> diag_;
  std::vector<ProductEta> etas_;
  std::vector<double> work_;
  mutable std::vector<double> scratch_;
  int factorizations_ = 0;
};

// ---------------------------------------------------------------------------
// Dense backend (legacy explicit inverse).
// ---------------------------------------------------------------------------

class DenseBasisFactorization : public BasisFactorization {
 public:
  Status Factorize(const std::vector<SparseColumn>& columns,
                   const std::vector<int>& basis) override {
    const int n = static_cast<int>(basis.size());
    n_ = n;
    ++factorizations_;
    eta_count_ = 0;
    DenseMatrix b(n, n);
    for (int pos = 0; pos < n; ++pos) {
      for (const auto& [row, value] : columns[basis[pos]]) {
        b.At(row, pos) += value;
      }
    }
    auto inverse = b.Inverse();
    if (!inverse.ok()) return inverse.status();
    binv_ = std::move(inverse).value();
    return Status::OK();
  }

  void Ftran(std::vector<double>* v) const override {
    // binv_ rows are basis positions, columns original rows.
    std::vector<double>& out = scratch_;
    out.assign(n_, 0.0);
    for (int r = 0; r < n_; ++r) {
      const double x = (*v)[r];
      if (x == 0.0) continue;
      for (int pos = 0; pos < n_; ++pos) out[pos] += binv_.At(pos, r) * x;
    }
    *v = out;
  }

  void Btran(std::vector<double>* v) const override {
    std::vector<double>& out = scratch_;
    out.assign(n_, 0.0);
    for (int pos = 0; pos < n_; ++pos) {
      const double c = (*v)[pos];
      if (c == 0.0) continue;
      const double* row = binv_.RowPtr(pos);
      for (int r = 0; r < n_; ++r) out[r] += row[r] * c;
    }
    *v = out;
  }

  Status Update(const std::vector<double>& w, int leaving_pos) override {
    const double pivot = w[leaving_pos];
    if (std::abs(pivot) < kUpdatePivotTolerance) {
      return Status::NumericalError("tiny pivot in dense basis update");
    }
    double* prow = binv_.RowPtr(leaving_pos);
    const double pinv = 1.0 / pivot;
    for (int c = 0; c < n_; ++c) prow[c] *= pinv;
    for (int i = 0; i < n_; ++i) {
      if (i == leaving_pos || w[i] == 0.0) continue;
      double* irow = binv_.RowPtr(i);
      const double f = w[i];
      for (int c = 0; c < n_; ++c) irow[c] -= f * prow[c];
    }
    ++eta_count_;
    return Status::OK();
  }

  int eta_count() const override { return eta_count_; }
  int factorizations() const override { return factorizations_; }

 private:
  int n_ = 0;
  DenseMatrix binv_;
  mutable std::vector<double> scratch_;
  int eta_count_ = 0;
  int factorizations_ = 0;
};

}  // namespace

std::unique_ptr<BasisFactorization> MakeLuFactorization() {
  return std::make_unique<LuBasisFactorization>();
}

std::unique_ptr<BasisFactorization> MakeDenseFactorization() {
  return std::make_unique<DenseBasisFactorization>();
}

}  // namespace savg
