// General linear-program model:
//
//   maximize (or minimize)  c' x
//   subject to              row_i: a_i' x  {<=, =, >=}  b_i
//                           lower_j <= x_j <= upper_j
//
// Rows are stored sparsely. This is the interface consumed by the simplex
// solver and the branch-and-bound MIP solver; SVGIC-specific formulations
// are built on top of it in core/lp_formulation.h.

#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "util/status.h"

namespace savg {

constexpr double kLpInfinity = std::numeric_limits<double>::infinity();

enum class RowType { kLessEqual, kGreaterEqual, kEqual };

/// One sparse coefficient a_ij.
struct LpTerm {
  int var = 0;
  double coef = 0.0;
};

/// One sparse constraint row.
struct LpRow {
  RowType type = RowType::kLessEqual;
  double rhs = 0.0;
  std::vector<LpTerm> terms;
};

/// Sparse LP model builder.
class LpModel {
 public:
  /// Adds a variable with bounds [lower, upper] and objective coefficient
  /// `obj`; returns its index.
  int AddVariable(double lower, double upper, double obj,
                  std::string name = "");

  /// Adds a constraint row; returns its index. Terms with duplicate `var`
  /// are allowed and summed by the solver.
  int AddRow(RowType type, double rhs, std::vector<LpTerm> terms);

  void SetMaximize(bool maximize) { maximize_ = maximize; }
  bool maximize() const { return maximize_; }

  void SetObjectiveCoefficient(int var, double obj) { obj_[var] = obj; }
  void SetBounds(int var, double lower, double upper) {
    lower_[var] = lower;
    upper_[var] = upper;
  }

  int num_vars() const { return static_cast<int>(obj_.size()); }
  int num_rows() const { return static_cast<int>(rows_.size()); }
  double objective(int var) const { return obj_[var]; }
  double lower(int var) const { return lower_[var]; }
  double upper(int var) const { return upper_[var]; }
  const std::string& name(int var) const { return names_[var]; }
  const LpRow& row(int i) const { return rows_[i]; }
  const std::vector<LpRow>& rows() const { return rows_; }

  /// Objective value of a given point (no feasibility check).
  double ObjectiveValue(const std::vector<double>& x) const;

  /// Max constraint/bound violation of a given point.
  double MaxViolation(const std::vector<double>& x) const;

  std::string DebugString() const;

 private:
  bool maximize_ = true;
  std::vector<double> obj_;
  std::vector<double> lower_;
  std::vector<double> upper_;
  std::vector<std::string> names_;
  std::vector<LpRow> rows_;
};

/// Basis-membership status of one variable (structural or logical).
enum class VarBasisStatus : uint8_t {
  kNonbasicLower = 0,
  kNonbasicUpper = 1,
  kBasic = 2,
};

/// A simplex basis snapshot: one status per structural variable plus one
/// per row logical (slack). Returned in LpSolution::basis and accepted by
/// SolveLp() as a warm start; a basis is only meaningful for a model with
/// matching variable/row counts (bounds and objective may differ — that is
/// exactly the branch-and-bound / lambda-sweep reuse case).
struct LpBasis {
  std::vector<VarBasisStatus> structural;
  std::vector<VarBasisStatus> logical;

  bool Empty() const { return structural.empty() && logical.empty(); }
  bool Compatible(int num_vars, int num_rows) const {
    return static_cast<int>(structural.size()) == num_vars &&
           static_cast<int>(logical.size()) == num_rows;
  }
};

/// Per-phase wall-time breakdown and pivot-mix counters of a simplex
/// solve. The PR 3 timers showed pricing dominating on the large compact
/// LPs, which is what justified candidate-list pricing and the dual
/// method; the counters flow into the --json= perf artifacts so pricing
/// and warm-start regressions stay visible from CI runs alone.
struct LpStats {
  double pricing_seconds = 0.0;     ///< reduced-cost scan + Devex scoring
  double ratio_test_seconds = 0.0;  ///< leaving-variable selection
  double ftran_seconds = 0.0;       ///< B^-1 a_q solves (+ basic values)
  double btran_seconds = 0.0;       ///< B^-T solves (pricing y, Devex rho)
  double factor_seconds = 0.0;      ///< (re)factorizations + eta updates
  double presolve_seconds = 0.0;    ///< presolve + postsolve passes
  // Pivot mix: how the solve's iterations were produced.
  int64_t primal_pivots = 0;    ///< primal pivots + bound flips (phases 1+2)
  int64_t dual_pivots = 0;      ///< dual-simplex pivots
  int64_t dual_bound_flips = 0; ///< bound flips of the dual ratio test
  int64_t bland_pivots = 0;     ///< pivots taken under the Bland fallback
  // Candidate-list pricing effectiveness (PricingMode::kPartial).
  int64_t candidate_hits = 0;       ///< pivots priced from the list alone
  int64_t full_pricing_scans = 0;   ///< full scans (rebuilds + optimality)
  // Presolve reductions (zero unless SimplexOptions::presolve enabled).
  int64_t presolve_cols_removed = 0;  ///< fixed + dominated + parallel
  int64_t presolve_rows_removed = 0;  ///< empty + singleton/redundant
  // Eta-file state at solve end, the observable the adaptive
  // refactorization policy acts on (ROADMAP: eta chains in long serving
  // sessions). Summing across solves gives totals; divide by solves for
  // the mean chain length.
  int64_t eta_count = 0;      ///< product-form etas pending at solve end
  int64_t eta_nonzeros = 0;   ///< their stored nonzeros at solve end
  int64_t refactorizations = 0;  ///< basis (re)factorizations performed
  LpStats& operator+=(const LpStats& o) {
    pricing_seconds += o.pricing_seconds;
    ratio_test_seconds += o.ratio_test_seconds;
    ftran_seconds += o.ftran_seconds;
    btran_seconds += o.btran_seconds;
    factor_seconds += o.factor_seconds;
    presolve_seconds += o.presolve_seconds;
    primal_pivots += o.primal_pivots;
    dual_pivots += o.dual_pivots;
    dual_bound_flips += o.dual_bound_flips;
    bland_pivots += o.bland_pivots;
    candidate_hits += o.candidate_hits;
    full_pricing_scans += o.full_pricing_scans;
    presolve_cols_removed += o.presolve_cols_removed;
    presolve_rows_removed += o.presolve_rows_removed;
    eta_count += o.eta_count;
    eta_nonzeros += o.eta_nonzeros;
    refactorizations += o.refactorizations;
    return *this;
  }
};

/// Outcome of an LP solve.
struct LpSolution {
  std::vector<double> x;
  /// Row duals, signed so that c_j - sum_i dual_values[i] a_ij is the
  /// reduced cost of structural j in the model's own objective sense. At
  /// optimality: 0 for basic variables, <= 0 at lower / >= 0 at upper for
  /// a maximization (reversed for minimization). Presolve reconstructs
  /// these exactly for removed rows (lp/presolve.h postsolve).
  std::vector<double> dual_values;
  double objective = 0.0;
  /// Total simplex pivots/bound-flips (phase 1 + phase 2).
  int iterations = 0;
  /// Pivots spent restoring primal feasibility (phase 1 only).
  int phase1_iterations = 0;
  /// Basis (re)factorizations performed.
  int factorizations = 0;
  /// True when a caller-supplied starting basis was actually used.
  bool warm_started = false;
  /// True when the dual simplex repaired the warm basis all the way to
  /// optimality (the primal phases then only verified, pivoting 0 times).
  bool dual_simplex_used = false;
  double solve_seconds = 0.0;
  /// Per-phase time breakdown (pricing vs ratio test vs ftran/btran).
  LpStats stats;
  /// Final basis, reusable as a warm start for a related model.
  LpBasis basis;
};

}  // namespace savg
