// Small dense matrix used by the simplex solver's basis management.
//
// Row-major storage with Gauss-Jordan inversion (partial pivoting). Sizes in
// this library are at most a few thousand rows, so dense O(n^3) inversion in
// periodic refactorizations is acceptable.

#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "util/status.h"

namespace savg {

class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(size_t rows, size_t cols, double fill = 0.0);

  /// Identity matrix of size n.
  static DenseMatrix Identity(size_t n);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double& At(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double At(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  double* RowPtr(size_t r) { return data_.data() + r * cols_; }
  const double* RowPtr(size_t r) const { return data_.data() + r * cols_; }

  /// y = this * x. Requires x.size() == cols().
  std::vector<double> MultiplyVector(const std::vector<double>& x) const;

  /// y = this^T * x. Requires x.size() == rows().
  std::vector<double> TransposeMultiplyVector(
      const std::vector<double>& x) const;

  /// C = this * other.
  Result<DenseMatrix> Multiply(const DenseMatrix& other) const;

  /// In-place Gauss-Jordan inverse with partial pivoting. Fails with
  /// kNumericalError if (near-)singular.
  Result<DenseMatrix> Inverse(double pivot_tol = 1e-11) const;

  /// Max-abs entry of (this * other - I); diagnostic for inverse quality.
  double InverseResidual(const DenseMatrix& claimed_inverse) const;

  std::string DebugString() const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace savg
