// Primal simplex for bounded-variable linear programs.
//
// This is the in-repo replacement for the commercial LP solvers (Gurobi /
// CPLEX) the paper uses to obtain the optimal fractional solution X* of the
// SVGIC relaxation (Section 4.1). It implements:
//
//  * two-phase bounded-variable primal simplex,
//  * explicit basis inverse with periodic refactorization,
//  * Dantzig pricing with a Bland's-rule fallback for anti-cycling,
//  * slack-first crash basis (artificials only where needed).
//
// Intended scale: up to a few thousand rows/columns (the sizes at which the
// paper itself still runs the exact IP/LP). Larger SVGIC instances use the
// projected-subgradient solver in lp/subgradient.h, justified by the
// paper's Corollary 4.2 (a beta-approximate LP yields a 4*beta-approximate
// rounding).

#pragma once

#include "lp/lp_model.h"
#include "util/status.h"

namespace savg {

struct SimplexOptions {
  int max_iterations = 200000;
  double time_limit_seconds = 1e18;
  /// Feasibility / reduced-cost tolerance.
  double tolerance = 1e-9;
  /// Refactorize the basis inverse every this many pivots.
  int refactor_interval = 256;
  /// Switch to Bland's rule after this many non-improving iterations.
  int stall_threshold = 400;
};

/// Solves `model` to optimality. Returns kInfeasible / kUnbounded /
/// kResourceExhausted (limits) / kNumericalError as appropriate.
Result<LpSolution> SolveLp(const LpModel& model,
                           const SimplexOptions& options = {});

}  // namespace savg
