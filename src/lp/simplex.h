// Sparse revised primal + dual simplex for bounded-variable linear
// programs.
//
// This is the in-repo replacement for the commercial LP solvers (Gurobi /
// CPLEX) the paper uses to obtain the optimal fractional solution X* of the
// SVGIC relaxation (Section 4.1). It implements:
//
//  * bounded-variable primal simplex over column-wise sparse storage, with
//    a logical (slack) variable per row — no artificial variables,
//  * a pluggable basis factorization (lp/basis_lu.h): sparse LU with
//    product-form eta updates per pivot and periodic refactorization by
//    default; the legacy explicit dense inverse as a reference backend,
//  * a composite phase 1 that minimizes the sum of primal infeasibilities
//    from any starting basis — which is what makes warm starts work: a
//    caller can hand SolveLp() the final basis of a related model (a
//    branch-and-bound parent, the previous lambda of a sweep) and the
//    solver re-establishes feasibility in a few pivots instead of
//    re-crashing from scratch,
//  * candidate-list (partial) pricing: phase 2 prices a short Devex-scored
//    list of promising nonbasic columns whose reduced costs are updated
//    incrementally across pivots, falling back to a full scan only when
//    the list runs dry — optimality is still only ever declared after a
//    full scan, so the final objective is the full-Devex one; the full
//    scan-every-column path stays selectable via SimplexOptions::pricing,
//  * a dual simplex (SolveDual inside the engine) with a bound-flipping
//    ratio test, used when a warm basis is dual-feasible but
//    primal-infeasible — the exact state after a one-bound change in a
//    branch-and-bound child or a rhs-side perturbation — repairing such a
//    basis in far fewer pivots than the composite primal phase 1
//    (SimplexOptions::warm_start_mode picks auto/primal/dual),
//  * Devex (steepest-edge-flavoured) pricing with the existing Bland's-rule
//    fallback for anti-cycling.
//
// Intended scale: up to a few thousand rows/columns (the sizes at which the
// paper itself still runs the exact IP/LP). Larger SVGIC instances use the
// projected-subgradient solver in lp/subgradient.h, justified by the
// paper's Corollary 4.2 (a beta-approximate LP yields a 4*beta-approximate
// rounding).

#pragma once

#include "lp/lp_model.h"
#include "util/status.h"

namespace savg {

/// Which basis backend SolveLp uses (see lp/basis_lu.h).
enum class SimplexBasisType {
  kSparseLu,  ///< sparse LU + eta file (default)
  kDense,     ///< legacy explicit dense inverse (reference path)
};

/// How phase 2 prices entering columns.
enum class PricingMode {
  /// Score every nonbasic column every iteration (the PR 2 reference
  /// path). O(nnz) per pivot in the pricing scan AND the Devex update.
  kFullDevex,
  /// Candidate-list pricing: keep the top-scored eligible columns from the
  /// last full scan, update their reduced costs incrementally per pivot
  /// (one Btran of the pivot row + a sparse dot per list member), and
  /// rescan everything only when the list runs dry. Optimality is still
  /// only declared after a full scan, so the final objective matches
  /// kFullDevex exactly (up to degenerate-tie vertex choice).
  kPartial,
};

/// How the dual simplex (SolveDual) picks its leaving row.
enum class DualRowPricing {
  /// Dual Devex: pick the row maximizing violation^2 / gamma_r over a
  /// reference framework of row weights, updated incrementally from the
  /// entering column's Ftran image (no extra Btran per pivot). The dual
  /// mirror of primal Devex: it weighs each violation by the steepness of
  /// the dual edge that removes it, which is what cuts the pivot count on
  /// warm-basis repair (the CI gate holds it at <= 0.85x max-violation).
  kDevex,
  /// Pick the row with the largest bound violation (the PR 5 reference
  /// path — textbook, but blind to edge steepness).
  kMaxViolation,
};

/// When the engine folds the product-form eta file back into a fresh LU
/// factorization.
enum class RefactorPolicy {
  /// Adaptive (default): refactorize when the eta file outgrows the
  /// factors (eta_nonzeros > eta_density_limit * factor_nonzeros) or when
  /// the accumulated eta work since the last factorization exceeds what a
  /// refactorization costs (eta_ops > eta_ops_multiplier * factor_ops —
  /// the rent-or-buy rule), with refactor_interval as a hard cap. All
  /// triggers are deterministic work counters (lp/basis_lu.h), never
  /// wall-clock, so solves stay bit-reproducible across machines.
  kAdaptive,
  /// Refactorize every refactor_interval updates (the PR 2-5 behavior).
  kFixedInterval,
};

/// Which method repairs the starting basis. kAuto and kPrimal leave cold
/// solves unchanged (composite phase 1 + primal phase 2); kDual attempts
/// the dual method from ANY dual-feasible start basis, warm or cold.
enum class WarmStartMode {
  /// Dual simplex when the warm basis prices dual-feasible but is primal
  /// infeasible (the branch-and-bound child / bound-perturbation state);
  /// composite primal phase 1 otherwise.
  kAuto,
  /// Always composite phase 1 + primal phase 2 (the PR 2/3 behavior).
  kPrimal,
  /// Dual simplex whenever the start basis is dual-feasible, regardless
  /// of primal state; falls back to the primal path when it is not.
  kDual,
};

struct SimplexOptions {
  int max_iterations = 200000;
  /// Wall-clock budget, checked on every pivot when finite.
  double time_limit_seconds = 1e18;
  /// Feasibility / reduced-cost tolerance.
  double tolerance = 1e-9;
  /// Hard cap on eta updates between refactorizations (numerical
  /// hygiene); the adaptive policy usually refactorizes earlier.
  int refactor_interval = 256;
  /// Refactorization trigger policy (see RefactorPolicy).
  RefactorPolicy refactor_policy = RefactorPolicy::kAdaptive;
  /// kAdaptive: refactorize once eta_nonzeros exceeds this multiple of
  /// the LU factor nonzeros (every solve then pays more for the eta file
  /// than for a fresh factorization's triangles).
  double eta_density_limit = 1.0;
  /// kAdaptive: refactorize once the eta work Ftran/Btran already spent
  /// since the last factorization exceeds this multiple of one
  /// factorization's cost (rent-or-buy amortization).
  double eta_ops_multiplier = 1.0;
  /// Switch to Bland's rule after this many non-improving iterations.
  /// Deliberately high: the compact SVGIC LPs walk degenerate plateaus
  /// thousands of pivots long that Devex crosses fine but Bland crawls
  /// over (n=40 bench instance: 17.5k pivots with Devex throughout vs
  /// 200k+ hitting the iteration limit when Bland kicks in at 400). A true
  /// cycle still trips the threshold quickly — cycles are short loops — so
  /// termination stays guaranteed.
  int stall_threshold = 10000;
  SimplexBasisType basis = SimplexBasisType::kSparseLu;
  /// Devex pricing; false = Dantzig (largest reduced cost).
  bool devex_pricing = true;
  /// Phase-2 pricing strategy (see PricingMode). Partial pricing is the
  /// default: on the m=10000 compact LPs the full per-pivot column scan
  /// dominates LpStats::pricing_seconds (ROADMAP open item).
  PricingMode pricing = PricingMode::kPartial;
  /// Candidate-list capacity for PricingMode::kPartial; <= 0 picks
  /// clamp(2 * sqrt(num_cols), 64, 1024).
  int candidate_list_size = 0;
  /// Warm-basis repair method (see WarmStartMode).
  WarmStartMode warm_start_mode = WarmStartMode::kAuto;
  /// Dual-simplex leaving-row rule (see DualRowPricing).
  DualRowPricing dual_row_pricing = DualRowPricing::kDevex;
  /// Run lp/presolve.h before the simplex and postsolve the result back
  /// to the original space (primal, duals, basis — exactly). Off by
  /// default: callers opt in per solve; warm bases are mapped through the
  /// reduction automatically.
  bool presolve = false;
};

/// Solves `model` to optimality. Returns kInfeasible / kUnbounded /
/// kResourceExhausted (limits) / kNumericalError as appropriate.
///
/// `warm_start` (optional) seeds the initial basis from a previous solve of
/// a model with the same variable/row counts (bounds, objective and rhs may
/// differ). An incompatible or singular warm basis silently falls back to
/// the cold (all-logical) start; LpSolution::warm_started reports whether
/// the seed was used.
Result<LpSolution> SolveLp(const LpModel& model,
                           const SimplexOptions& options = {},
                           const LpBasis* warm_start = nullptr);

}  // namespace savg
