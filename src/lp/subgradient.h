// Approximate solver for the compact SVGIC relaxation, written as a generic
// "pairwise concave allocation" problem:
//
//   maximize  sum_a sum_c L[a][c] * x[a][c]
//           + sum_{pairs (a,b)} sum_c W[(a,b)][c] * min(x[a][c], x[b][c])
//   s.t.      x_a in D(k) = { sum_c x = k, 0 <= x <= 1 }   for every agent a.
//
// This is exactly LP_SIMP (Section 4.4) after eliminating the auxiliary
// y-variables (at an LP optimum y_e^c = min(x_u^c, x_v^c) since the weights
// are non-negative). The objective is concave piecewise-linear, so projected
// supergradient ascent plus an exact per-agent block-coordinate "polish"
// yields a beta-approximate fractional solution; by the paper's Corollary
// 4.2, rounding it with CSF gives a 4*beta-approximation. This is the
// large-instance path; small instances use the exact simplex.

#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "util/status.h"

namespace savg {

/// One unordered agent pair with sparse per-item social weights
/// (w = tau(u,v,c) + tau(v,u,c), scaled).
struct ConcavePair {
  int a = 0;
  int b = 0;
  /// (item, weight), sorted by item, weights > 0.
  std::vector<std::pair<int, double>> weights;
};

/// Problem data for the reduced concave maximization.
struct PairwiseConcaveProblem {
  int num_agents = 0;
  int num_items = 0;
  double k = 1.0;  ///< mass per agent (number of display slots)
  /// Linear (preference) coefficients, row-major num_agents x num_items.
  std::vector<double> linear;
  std::vector<ConcavePair> pairs;

  double& L(int a, int c) { return linear[static_cast<size_t>(a) * num_items + c]; }
  double L(int a, int c) const {
    return linear[static_cast<size_t>(a) * num_items + c];
  }

  /// Exact objective value of a feasible point (x row-major).
  double Evaluate(const std::vector<double>& x) const;
};

struct SubgradientOptions {
  int max_iterations = 80;
  /// Exact per-agent block-coordinate maximization sweeps after the
  /// subgradient phase (0 disables polishing).
  int polish_sweeps = 8;
  double step_scale = 0.5;
  double time_limit_seconds = 1e18;
  /// Optional warm-start point (row-major num_agents x num_items; blocks
  /// are re-projected onto D(k), so a stale-but-close point is fine).
  /// Considered alongside the built-in starting points, best wins. Not
  /// owned; must outlive the solve. The sharded coordinator hands each
  /// shard its previous round's solution here, which is what makes many
  /// dual rounds affordable.
  const std::vector<double>* initial_x = nullptr;
};

struct SubgradientSolution {
  std::vector<double> x;
  double objective = 0.0;
  int iterations = 0;
  double solve_seconds = 0.0;
};

/// Runs projected supergradient ascent followed by block-coordinate
/// polishing. Always succeeds on well-formed input.
Result<SubgradientSolution> MaximizePairwiseConcave(
    const PairwiseConcaveProblem& problem,
    const SubgradientOptions& options = {});

/// Exactly maximizes agent `a`'s block with all other agents fixed:
///   max_{x_a in D(k)} sum_c [ L[a][c] x + sum_{pairs (a,b)} w min(x, x_b^c) ]
/// Writes the block into x (row-major full solution). Returns the new block
/// objective contribution. Exposed for testing.
double ExactBlockMaximize(const PairwiseConcaveProblem& problem, int agent,
                          const std::vector<std::vector<int>>& pairs_of_agent,
                          std::vector<double>* x);

}  // namespace savg
