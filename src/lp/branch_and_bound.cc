#include "lp/branch_and_bound.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "util/logging.h"

namespace savg {

namespace {

struct Node {
  /// Bound overrides for integer variables, parallel to `integer_vars`.
  std::vector<double> lb;
  std::vector<double> ub;
  double parent_bound = 0.0;  ///< LP bound inherited from the parent
  int depth = 0;
  /// Optimal basis of the parent's LP relaxation; warm-starts this node.
  LpBasis parent_basis;
};

/// Ordering for the best-bound priority queue (maximization: larger bound
/// first).
struct NodeOrder {
  bool maximize;
  bool operator()(const std::pair<double, size_t>& a,
                  const std::pair<double, size_t>& b) const {
    return maximize ? a.first < b.first : a.first > b.first;
  }
};

bool IsIntegral(double v, double tol) {
  return std::abs(v - std::round(v)) <= tol;
}

}  // namespace

Result<MipSolution> SolveMip(const LpModel& model,
                             const std::vector<int>& integer_vars,
                             const MipOptions& options) {
  Timer timer;
  const bool maximize = model.maximize();
  const double sense = maximize ? 1.0 : -1.0;

  // Working model whose integer-variable bounds are rewritten per node.
  LpModel work = model;

  MipSolution result;
  bool have_incumbent = false;
  double incumbent_obj = maximize ? -1e300 : 1e300;
  std::vector<double> incumbent_x;

  auto try_incumbent = [&](const std::vector<double>& x, double obj) {
    if (model.MaxViolation(x) > 1e-6) return;
    for (int iv : integer_vars) {
      if (!IsIntegral(x[iv], options.integrality_tolerance)) return;
    }
    if (sense * obj > sense * incumbent_obj + 1e-12) {
      incumbent_obj = obj;
      incumbent_x = x;
      have_incumbent = true;
    }
  };

  // Node storage: explicit arena; open nodes referenced by index.
  std::vector<Node> arena;
  std::vector<size_t> stack;  // depth-first
  std::priority_queue<std::pair<double, size_t>,
                      std::vector<std::pair<double, size_t>>, NodeOrder>
      heap(NodeOrder{maximize});

  Node root;
  root.lb.resize(integer_vars.size());
  root.ub.resize(integer_vars.size());
  for (size_t i = 0; i < integer_vars.size(); ++i) {
    root.lb[i] = model.lower(integer_vars[i]);
    root.ub[i] = model.upper(integer_vars[i]);
  }
  root.parent_bound = maximize ? 1e300 : -1e300;
  if (options.root_warm_start != nullptr) {
    root.parent_basis = *options.root_warm_start;
  }
  arena.push_back(std::move(root));
  stack.push_back(0);

  bool use_depth_first =
      options.node_selection != NodeSelection::kBestBound;

  double global_bound = maximize ? -1e300 : 1e300;  // best open bound seen
  int64_t nodes = 0;
  Status exhaust_status = Status::OK();

  auto pop_node = [&]() -> std::optional<size_t> {
    if (use_depth_first) {
      if (stack.empty()) {
        // Hybrid switchover may have parked nodes in the heap.
        if (heap.empty()) return std::nullopt;
        size_t idx = heap.top().second;
        heap.pop();
        return idx;
      }
      size_t idx = stack.back();
      stack.pop_back();
      return idx;
    }
    if (heap.empty()) {
      if (stack.empty()) return std::nullopt;
      size_t idx = stack.back();
      stack.pop_back();
      return idx;
    }
    size_t idx = heap.top().second;
    heap.pop();
    return idx;
  };

  auto push_node = [&](Node&& node) {
    arena.push_back(std::move(node));
    const size_t idx = arena.size() - 1;
    if (use_depth_first) {
      stack.push_back(idx);
    } else {
      heap.emplace(arena[idx].parent_bound, idx);
    }
  };

  while (true) {
    if (nodes >= options.max_nodes ||
        timer.ElapsedSeconds() > options.time_limit_seconds) {
      exhaust_status = Status::ResourceExhausted("MIP node/time limit");
      break;
    }
    auto idx = pop_node();
    if (!idx.has_value()) break;
    // Copy out node data: arena may reallocate when children are pushed.
    const Node node = arena[*idx];
    ++nodes;

    // Bound-based pruning against the incumbent.
    if (have_incumbent &&
        sense * node.parent_bound <= sense * incumbent_obj + 1e-12) {
      continue;
    }

    for (size_t i = 0; i < integer_vars.size(); ++i) {
      work.SetBounds(integer_vars[i], node.lb[i], node.ub[i]);
    }
    SimplexOptions lp_opt = options.lp_options;
    const double elapsed = timer.ElapsedSeconds();
    lp_opt.time_limit_seconds = std::min(
        lp_opt.time_limit_seconds, options.time_limit_seconds - elapsed);
    const bool is_root = nodes == 1;
    // The root honors an explicit root_warm_start even when per-node warm
    // starts are disabled (the point of wiring a caller basis through).
    const bool want_warm =
        options.warm_start_nodes ||
        (is_root && options.root_warm_start != nullptr);
    const LpBasis* warm =
        want_warm && !node.parent_basis.Empty() ? &node.parent_basis
                                                : nullptr;
    auto lp = SolveLp(work, lp_opt, warm);
    if (lp.ok()) {
      result.simplex_iterations += lp->iterations;
      result.lp_stats += lp->stats;
      if (is_root) {
        result.root_simplex_iterations = lp->iterations;
        result.root_warm_started = lp->warm_started;
        result.root_basis = lp->basis;
      }
    }
    if (!lp.ok()) {
      if (lp.status().code() == StatusCode::kInfeasible) continue;
      if (lp.status().code() == StatusCode::kResourceExhausted) {
        exhaust_status = lp.status();
        break;
      }
      return lp.status();
    }
    const double bound = lp->objective;
    global_bound = maximize ? std::max(global_bound, bound)
                            : std::min(global_bound, bound);
    if (have_incumbent && sense * bound <= sense * incumbent_obj + 1e-12) {
      continue;  // pruned by bound
    }

    // Integral already?
    int branch_var = -1;
    double branch_frac = -1.0;
    for (size_t i = 0; i < integer_vars.size(); ++i) {
      const double v = lp->x[integer_vars[i]];
      if (!IsIntegral(v, options.integrality_tolerance)) {
        const double frac = std::abs(v - std::round(v));
        const double dist_half = std::abs(frac - 0.5);
        if (branch_var < 0 || dist_half < branch_frac) {
          branch_frac = dist_half;
          branch_var = static_cast<int>(i);
        }
      }
    }
    if (branch_var < 0) {
      try_incumbent(lp->x, lp->objective);
      if (options.node_selection == NodeSelection::kHybrid &&
          use_depth_first && have_incumbent) {
        // Switch to best-bound: migrate the stack into the heap.
        for (size_t s : stack) heap.emplace(arena[s].parent_bound, s);
        stack.clear();
        use_depth_first = false;
      }
      continue;
    }

    // Optional primal heuristic to seed/improve the incumbent.
    if (options.heuristic) {
      auto hx = options.heuristic(lp->x);
      if (hx.has_value()) {
        try_incumbent(*hx, model.ObjectiveValue(*hx));
      }
    }

    const int var = integer_vars[branch_var];
    const double v = lp->x[var];
    // Down child: x <= floor(v); up child: x >= ceil(v). Both children
    // inherit this node's optimal basis as their warm start.
    Node down = node;
    down.ub[branch_var] = std::floor(v);
    down.parent_bound = bound;
    down.depth = node.depth + 1;
    down.parent_basis = lp->basis;
    Node up = node;
    up.lb[branch_var] = std::ceil(v);
    up.parent_bound = bound;
    up.depth = node.depth + 1;
    up.parent_basis = std::move(lp->basis);
    // Push the more promising child last for depth-first (explored first):
    // prefer the branch whose bound direction matches rounding of v.
    if (v - std::floor(v) > 0.5) {
      push_node(std::move(down));
      push_node(std::move(up));
    } else {
      push_node(std::move(up));
      push_node(std::move(down));
    }
  }

  result.nodes_explored = nodes;
  result.solve_seconds = timer.ElapsedSeconds();
  if (!have_incumbent) {
    if (!exhaust_status.ok()) return exhaust_status;
    return Status::Infeasible("no integral solution exists");
  }
  result.x = std::move(incumbent_x);
  result.objective = incumbent_obj;
  const bool finished = exhaust_status.ok() && stack.empty() && heap.empty();
  result.best_bound = finished ? incumbent_obj : global_bound;
  result.proven_optimal = finished;
  return result;
}

}  // namespace savg
