// LP-based branch & bound for mixed-integer programs.
//
// This is the in-repo replacement for the Gurobi MIP solver the paper uses
// as the exact "IP" baseline (Section 6.1) and for the solver-configuration
// study in Figure 9(a). Different node-selection strategies under node/time
// limits stand in for Gurobi's IP-Primal / IP-Dual / IP-Concurrent /
// IP-Barrier configurations: what Figure 9(a) measures is "exact solver
// quality under a time budget", which these strategies reproduce.
//
// Branching is on the most fractional integer variable; bounds-only
// branching keeps every node a bound-tightened copy of the root LP.

#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "lp/lp_model.h"
#include "lp/simplex.h"
#include "util/status.h"

namespace savg {

enum class NodeSelection {
  kBestBound,   ///< explore the node with the best LP bound first
  kDepthFirst,  ///< LIFO dive (finds incumbents early, weaker bound)
  kHybrid,      ///< depth-first until the first incumbent, then best-bound
};

/// A primal heuristic: given a fractional LP point, optionally produce a
/// feasible integral point (used to tighten the incumbent early). The
/// returned vector must be feasible for the model with integral values on
/// all integer variables; the solver re-checks feasibility.
using MipHeuristic =
    std::function<std::optional<std::vector<double>>(const std::vector<double>&)>;

struct MipOptions {
  SimplexOptions lp_options;
  int64_t max_nodes = 1000000;
  double time_limit_seconds = 1e18;
  double integrality_tolerance = 1e-6;
  /// Stop when (best_bound - incumbent) / max(1, |incumbent|) < gap.
  double relative_gap = 1e-9;
  NodeSelection node_selection = NodeSelection::kHybrid;
  /// Warm-start each node's LP from the parent's optimal basis. The child
  /// differs only in one variable bound, which keeps the parent basis
  /// dual-feasible, so lp_options.warm_start_mode = kAuto repairs it with
  /// the dual simplex in a handful of pivots instead of composite phase 1
  /// (LpStats::dual_pivots in `lp_stats` counts them). Disable to force
  /// cold starts.
  bool warm_start_nodes = true;
  /// Optional warm start for the ROOT LP (not owned, must outlive the
  /// solve): typically MipSolution::root_basis of a previous SolveMip on a
  /// model with the same variable/row counts, or a matching LpSolution
  /// basis. Honored even with warm_start_nodes = false; incompatible or
  /// singular bases silently cold-start.
  const LpBasis* root_warm_start = nullptr;
  MipHeuristic heuristic;  ///< optional primal heuristic
};

struct MipSolution {
  std::vector<double> x;
  double objective = 0.0;
  double best_bound = 0.0;
  int64_t nodes_explored = 0;
  /// Total simplex pivots across every node LP (warm-start effectiveness
  /// counter, compare warm_start_nodes on/off).
  int64_t simplex_iterations = 0;
  /// Per-phase time and pivot-mix counters summed over every node LP
  /// (dual_pivots / candidate_hits feed the --json= perf artifacts).
  LpStats lp_stats;
  /// Pivots spent on the root LP alone (root warm-start effectiveness).
  int root_simplex_iterations = 0;
  /// True when the root LP reused MipOptions::root_warm_start.
  bool root_warm_started = false;
  /// Optimal basis of the root LP relaxation; feed it into the next
  /// SolveMip on the same model shape via MipOptions::root_warm_start.
  LpBasis root_basis;
  bool proven_optimal = false;
  double solve_seconds = 0.0;
};

/// Maximizes (or minimizes) `model` with the variables in `integer_vars`
/// restricted to integers. Returns the incumbent even when limits are hit
/// (`proven_optimal = false`); returns kResourceExhausted only if no
/// incumbent was found before the limits, and kInfeasible if the root LP
/// (or the integrality requirement) is infeasible.
Result<MipSolution> SolveMip(const LpModel& model,
                             const std::vector<int>& integer_vars,
                             const MipOptions& options = {});

}  // namespace savg
