#include "lp/capped_simplex.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace savg {

void ProjectCappedSimplex(std::vector<double>* v, double k, double tol) {
  const size_t m = v->size();
  if (m == 0) return;
  if (k <= 0.0) {
    std::fill(v->begin(), v->end(), 0.0);
    return;
  }
  if (k >= static_cast<double>(m)) {
    std::fill(v->begin(), v->end(), 1.0);
    return;
  }
  // mass(t) = sum_j clamp(v_j - t, 0, 1) is continuous, non-increasing in t.
  auto mass = [&](double t) {
    double acc = 0.0;
    for (double x : *v) acc += std::clamp(x - t, 0.0, 1.0);
    return acc;
  };
  double lo = -1.0, hi = 1.0;
  {
    const auto [mn, mx] = std::minmax_element(v->begin(), v->end());
    lo = *mn - 1.0;  // mass(lo) = m >= k
    hi = *mx;        // mass(hi) = 0 <= k
  }
  for (int iter = 0; iter < 100; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (mass(mid) > k) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo < tol) break;
  }
  const double t = 0.5 * (lo + hi);
  double total = 0.0;
  for (double& x : *v) {
    x = std::clamp(x - t, 0.0, 1.0);
    total += x;
  }
  // Tiny mass correction distributed over interior coordinates.
  double deficit = k - total;
  if (std::abs(deficit) > tol) {
    for (double& x : *v) {
      if (deficit > 0 && x < 1.0) {
        const double add = std::min(1.0 - x, deficit);
        x += add;
        deficit -= add;
      } else if (deficit < 0 && x > 0.0) {
        const double sub = std::min(x, -deficit);
        x -= sub;
        deficit += sub;
      }
      if (std::abs(deficit) <= tol) break;
    }
  }
}

std::vector<double> CappedSimplexLmo(const std::vector<double>& gradient,
                                     double k) {
  const size_t m = gradient.size();
  std::vector<double> x(m, 0.0);
  if (k <= 0.0) return x;
  if (k >= static_cast<double>(m)) {
    std::fill(x.begin(), x.end(), 1.0);
    return x;
  }
  std::vector<size_t> order(m);
  std::iota(order.begin(), order.end(), size_t{0});
  const size_t whole = static_cast<size_t>(k);
  std::partial_sort(order.begin(),
                    order.begin() + std::min(m, whole + 1), order.end(),
                    [&](size_t a, size_t b) {
                      return gradient[a] > gradient[b];
                    });
  for (size_t i = 0; i < whole && i < m; ++i) x[order[i]] = 1.0;
  const double frac = k - static_cast<double>(whole);
  if (frac > 0.0 && whole < m) x[order[whole]] = frac;
  return x;
}

}  // namespace savg
