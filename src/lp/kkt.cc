#include "lp/kkt.h"

#include <algorithm>
#include <cmath>

namespace savg {

double KktReport::MaxViolation() const {
  return std::max(
      std::max(max_primal_violation, max_dual_sign_violation),
      std::max(max_complementary_slackness, max_reduced_cost_violation));
}

KktReport CheckLpKkt(const LpModel& model, const std::vector<double>& x,
                     const std::vector<double>& duals) {
  KktReport report;
  report.max_primal_violation = model.MaxViolation(x);

  const double sense = model.maximize() ? 1.0 : -1.0;
  // One pass over the rows accumulates both the row activities (for
  // complementary slackness) and the dual contribution to every reduced
  // cost — O(nnz), unlike the test-helper's per-variable rescan.
  std::vector<double> reduced(model.num_vars());
  for (int j = 0; j < model.num_vars(); ++j) {
    reduced[j] = model.objective(j);
  }
  for (int i = 0; i < model.num_rows(); ++i) {
    const LpRow& row = model.row(i);
    double activity = 0.0;
    for (const LpTerm& t : row.terms) {
      activity += t.coef * x[t.var];
      reduced[t.var] -= duals[i] * t.coef;
    }
    const double y = sense * duals[i];  // maximize orientation
    const double slack = row.rhs - activity;
    switch (row.type) {
      case RowType::kLessEqual:
        report.max_dual_sign_violation =
            std::max(report.max_dual_sign_violation, -y);
        if (slack > 1e-5) {
          report.max_complementary_slackness =
              std::max(report.max_complementary_slackness, std::abs(y));
        }
        break;
      case RowType::kGreaterEqual:
        report.max_dual_sign_violation =
            std::max(report.max_dual_sign_violation, y);
        if (slack < -1e-5) {
          report.max_complementary_slackness =
              std::max(report.max_complementary_slackness, std::abs(y));
        }
        break;
      case RowType::kEqual:
        break;  // sign-free, always tight
    }
  }
  for (int j = 0; j < model.num_vars(); ++j) {
    // maximize orientation: <= 0 at lower bound, >= 0 at upper bound.
    const double d = sense * reduced[j];
    const bool at_lower = x[j] <= model.lower(j) + 1e-6;
    const bool at_upper =
        std::isfinite(model.upper(j)) && x[j] >= model.upper(j) - 1e-6;
    double violation = 0.0;
    if (at_lower && !at_upper) {
      violation = d;
    } else if (at_upper && !at_lower) {
      violation = -d;
    } else if (!at_lower && !at_upper) {
      violation = std::abs(d);
    }
    report.max_reduced_cost_violation =
        std::max(report.max_reduced_cost_violation, violation);
  }
  return report;
}

}  // namespace savg
