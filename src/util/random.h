// Deterministic pseudo-random number generation.
//
// All randomized components in the library take an explicit seed so that
// experiments are reproducible. Rng wraps a xoshiro256** engine seeded via
// splitmix64, with convenience samplers (uniform, normal, Zipf, discrete,
// shuffles, weighted picks).

#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace savg {

/// The complete internal state of an Rng, for exact save/restore (the
/// durability layer snapshots a serving session's generator so replayed
/// resolves draw the identical rounding seeds).
struct RngState {
  uint64_t s[4] = {0, 0, 0, 0};
  /// Box-Muller produces normals in pairs; the spare must survive a
  /// save/restore or the next Normal() would diverge.
  bool has_cached_normal = false;
  double cached_normal = 0.0;

  bool operator==(const RngState& o) const {
    return s[0] == o.s[0] && s[1] == o.s[1] && s[2] == o.s[2] &&
           s[3] == o.s[3] && has_cached_normal == o.has_cached_normal &&
           cached_normal == o.cached_normal;
  }
};

/// Fast, reproducible PRNG (xoshiro256**).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Exact state capture: RestoreState(SaveState()) is a no-op and the
  /// restored generator produces the identical stream.
  RngState SaveState() const;
  void RestoreState(const RngState& state);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double Uniform();
  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);
  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);
  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);
  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p);
  /// Standard normal via Box-Muller.
  double Normal(double mean = 0.0, double stddev = 1.0);
  /// Exponential with rate lambda.
  double Exponential(double lambda);

  /// Zipf-distributed rank in [0, n) with exponent s (>= 0). Rank 0 is the
  /// most probable. Uses an O(n) precomputed table-free rejection-less
  /// inverse-CDF on harmonic weights; suitable for n up to a few million.
  uint64_t Zipf(uint64_t n, double s);

  /// Samples an index with probability proportional to weights[i].
  /// Returns weights.size() if all weights are <= 0.
  size_t Discrete(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = UniformInt(static_cast<uint64_t>(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Samples `count` distinct indices from [0, n) (reservoir-free; uses
  /// partial Fisher-Yates on an index vector). Requires count <= n.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t count);

  /// Derives an independent child generator (for parallel streams).
  Rng Fork();

 private:
  uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace savg
