// Small statistics helpers used by the experiment harness:
// summary statistics, correlation coefficients, and empirical CDFs.

#pragma once

#include <cstddef>
#include <vector>

namespace savg {

/// Mean of a sample (0 for empty input).
double Mean(const std::vector<double>& xs);

/// Sample standard deviation (n-1 denominator; 0 for n < 2).
double StdDev(const std::vector<double>& xs);

/// Minimum / maximum (0 for empty input).
double Min(const std::vector<double>& xs);
double Max(const std::vector<double>& xs);

/// p-th percentile (p in [0, 100]) with linear interpolation.
double Percentile(std::vector<double> xs, double p);

/// Pearson linear correlation coefficient; 0 if either side is constant.
double PearsonCorrelation(const std::vector<double>& xs,
                          const std::vector<double>& ys);

/// Spearman rank correlation; average ranks for ties.
double SpearmanCorrelation(const std::vector<double>& xs,
                           const std::vector<double>& ys);

/// Ranks with ties averaged (1-based ranks).
std::vector<double> AverageRanks(const std::vector<double>& xs);

/// A point on an empirical CDF.
struct CdfPoint {
  double value;     ///< x
  double fraction;  ///< P(X <= x)
};

/// Empirical CDF of a sample, optionally downsampled to at most
/// `max_points` evenly spaced points (0 = keep all).
std::vector<CdfPoint> EmpiricalCdf(std::vector<double> xs,
                                   size_t max_points = 0);

/// Fraction of the sample that is <= threshold.
double CdfAt(const std::vector<double>& xs, double threshold);

/// Welford-style online accumulator for streaming mean/variance.
class RunningStat {
 public:
  void Add(double x);
  size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1); 0 for n < 2.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace savg
