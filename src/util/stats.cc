#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace savg {

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

double StdDev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double mu = Mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - mu) * (x - mu);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double Min(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  return *std::min_element(xs.begin(), xs.end());
}

double Max(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  return *std::max_element(xs.begin(), xs.end());
}

double Percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  if (p <= 0) return xs.front();
  if (p >= 100) return xs.back();
  const double pos = p / 100.0 * static_cast<double>(xs.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= xs.size()) return xs.back();
  return xs[lo] * (1.0 - frac) + xs[lo + 1] * frac;
}

double PearsonCorrelation(const std::vector<double>& xs,
                          const std::vector<double>& ys) {
  if (xs.size() != ys.size() || xs.size() < 2) return 0.0;
  const double mx = Mean(xs), my = Mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx, dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

std::vector<double> AverageRanks(const std::vector<double>& xs) {
  const size_t n = xs.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return xs[a] < xs[b]; });
  std::vector<double> ranks(n, 0.0);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && xs[order[j + 1]] == xs[order[i]]) ++j;
    // Positions i..j (0-based) share the average 1-based rank.
    const double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 +
                       1.0;
    for (size_t t = i; t <= j; ++t) ranks[order[t]] = avg;
    i = j + 1;
  }
  return ranks;
}

double SpearmanCorrelation(const std::vector<double>& xs,
                           const std::vector<double>& ys) {
  if (xs.size() != ys.size() || xs.size() < 2) return 0.0;
  return PearsonCorrelation(AverageRanks(xs), AverageRanks(ys));
}

std::vector<CdfPoint> EmpiricalCdf(std::vector<double> xs, size_t max_points) {
  std::vector<CdfPoint> cdf;
  if (xs.empty()) return cdf;
  std::sort(xs.begin(), xs.end());
  const double n = static_cast<double>(xs.size());
  cdf.reserve(xs.size());
  for (size_t i = 0; i < xs.size(); ++i) {
    // Collapse duplicates to the last occurrence.
    if (i + 1 < xs.size() && xs[i + 1] == xs[i]) continue;
    cdf.push_back({xs[i], static_cast<double>(i + 1) / n});
  }
  if (max_points > 0 && cdf.size() > max_points) {
    std::vector<CdfPoint> out;
    out.reserve(max_points);
    const double step =
        static_cast<double>(cdf.size() - 1) / static_cast<double>(max_points - 1);
    for (size_t i = 0; i < max_points; ++i) {
      out.push_back(cdf[static_cast<size_t>(std::round(i * step))]);
    }
    return out;
  }
  return cdf;
}

double CdfAt(const std::vector<double>& xs, double threshold) {
  if (xs.empty()) return 0.0;
  size_t count = 0;
  for (double x : xs) {
    if (x <= threshold) ++count;
  }
  return static_cast<double>(count) / static_cast<double>(xs.size());
}

void RunningStat::Add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

}  // namespace savg
