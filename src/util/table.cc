#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <sstream>

namespace savg {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

Table& Table::NewRow() {
  rows_.emplace_back();
  return *this;
}

Table& Table::Add(const std::string& cell) {
  if (rows_.empty()) NewRow();
  rows_.back().push_back(cell);
  return *this;
}

Table& Table::Add(double value, int precision) {
  return Add(FormatDouble(value, precision));
}

Table& Table::Add(int64_t value) { return Add(std::to_string(value)); }

Table& Table::Add(size_t value) { return Add(std::to_string(value)); }

std::string Table::ToString() const {
  std::vector<size_t> widths(header_.size(), 0);
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      os << cell << std::string(widths[c] - cell.size() + 2, ' ');
    }
    os << "\n";
  };
  emit_row(header_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string Table::ToCsv() const {
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c) os << ",";
      os << row[c];
    }
    os << "\n";
  };
  emit_row(header_);
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

void Table::Print(const std::string& title) const {
  if (!title.empty()) std::cout << "\n== " << title << " ==\n";
  std::cout << ToString() << std::flush;
}

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string FormatPercent(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

}  // namespace savg
