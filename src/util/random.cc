#include "util/random.h"

#include <cassert>
#include <cmath>
#include <numeric>

namespace savg {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

RngState Rng::SaveState() const {
  RngState state;
  for (int i = 0; i < 4; ++i) state.s[i] = s_[i];
  state.has_cached_normal = has_cached_normal_;
  state.cached_normal = cached_normal_;
  return state;
}

void Rng::RestoreState(const RngState& state) {
  for (int i = 0; i < 4; ++i) s_[i] = state.s[i];
  has_cached_normal_ = state.has_cached_normal;
  cached_normal_ = state.cached_normal;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 random mantissa bits.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

uint64_t Rng::UniformInt(uint64_t n) {
  assert(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - n) % n;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  return lo + static_cast<int64_t>(
                  UniformInt(static_cast<uint64_t>(hi - lo) + 1));
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

double Rng::Normal(double mean, double stddev) {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1, u2;
  do {
    u1 = Uniform();
  } while (u1 <= 1e-300);
  u2 = Uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

double Rng::Exponential(double lambda) {
  double u;
  do {
    u = Uniform();
  } while (u <= 1e-300);
  return -std::log(u) / lambda;
}

uint64_t Rng::Zipf(uint64_t n, double s) {
  assert(n > 0);
  if (n == 1) return 0;
  // Inverse-CDF via the rejection method of Devroye for the Zipf
  // distribution; O(1) per sample after O(1) setup.
  if (s <= 0.0) return UniformInt(n);
  const double nd = static_cast<double>(n);
  if (std::abs(s - 1.0) < 1e-12) {
    // Harmonic case: invert H(x) ~ log(x).
    const double h = std::log(nd + 1.0);
    for (;;) {
      double u = Uniform();
      double x = std::exp(u * h) - 1.0;
      uint64_t k = static_cast<uint64_t>(x);
      if (k < n) return k;
    }
  }
  const double one_minus_s = 1.0 - s;
  const double zeta_ish = (std::pow(nd + 1.0, one_minus_s) - 1.0) / one_minus_s;
  for (;;) {
    double u = Uniform();
    double x = std::pow(u * zeta_ish * one_minus_s + 1.0, 1.0 / one_minus_s) -
               1.0;
    uint64_t k = static_cast<uint64_t>(x);
    // Accept with the ratio of the true pmf to the envelope; the envelope
    // is tight for the continuous relaxation, so accept directly (small
    // distortion is acceptable for workload generation).
    if (k < n) return k;
  }
}

size_t Rng::Discrete(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w > 0) total += w;
  }
  if (total <= 0.0) return weights.size();
  double target = Uniform() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    if (weights[i] <= 0) continue;
    acc += weights[i];
    if (target < acc) return i;
  }
  // Floating point slack: return the last positive-weight index.
  for (size_t i = weights.size(); i > 0; --i) {
    if (weights[i - 1] > 0) return i - 1;
  }
  return weights.size();
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t count) {
  assert(count <= n);
  std::vector<size_t> idx(n);
  std::iota(idx.begin(), idx.end(), size_t{0});
  // Partial Fisher-Yates: the first `count` entries become the sample.
  for (size_t i = 0; i < count; ++i) {
    size_t j = i + UniformInt(static_cast<uint64_t>(n - i));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(count);
  return idx;
}

Rng Rng::Fork() { return Rng(Next()); }

}  // namespace savg
