#include "util/status.h"

namespace savg {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kResourceExhausted:
      return "Resource exhausted";
    case StatusCode::kInfeasible:
      return "Infeasible";
    case StatusCode::kUnbounded:
      return "Unbounded";
    case StatusCode::kNumericalError:
      return "Numerical error";
    case StatusCode::kNotImplemented:
      return "Not implemented";
    case StatusCode::kUnknown:
      return "Unknown";
    case StatusCode::kFailedPrecondition:
      return "Failed precondition";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!msg_.empty()) {
    out += ": ";
    out += msg_;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace savg
