// Minimal leveled logging to stderr, plus a wall-clock timer.
//
// Usage:
//   SAVG_LOG(INFO) << "solved LP in " << t.ElapsedSeconds() << "s";
// Levels below the global threshold are compiled into a no-op stream.

#pragma once

#include <chrono>
#include <sstream>
#include <string>

namespace savg {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Global minimum level actually emitted (default: kWarning so library code
/// stays quiet in tests/benches unless callers opt in).
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

/// Accumulates one log line and flushes it to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

#define SAVG_LOG(level)                                            \
  ::savg::internal::LogMessage(::savg::LogLevel::k##level, __FILE__, \
                               __LINE__)

/// Monotonic wall-clock stopwatch.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}
  void Reset() { start_ = Clock::now(); }
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace savg
