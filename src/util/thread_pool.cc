#include "util/thread_pool.h"

#include <algorithm>
#include <utility>

namespace savg {

int ThreadPool::DefaultThreadCount() {
  return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) num_threads = DefaultThreadCount();
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock,
                           [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace savg
