// Paper-style table output for the benchmark harness: fixed-width console
// tables and CSV export.

#pragma once

#include <string>
#include <vector>

namespace savg {

/// A simple column-oriented table: a header row plus string cells.
/// Numeric helpers format with a fixed precision.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Starts a new row; subsequent Add* calls fill it left to right.
  Table& NewRow();
  Table& Add(const std::string& cell);
  Table& Add(double value, int precision = 3);
  Table& Add(int64_t value);
  Table& Add(size_t value);

  size_t num_rows() const { return rows_.size(); }
  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

  /// Renders as an aligned console table with a separator under the header.
  std::string ToString() const;

  /// Renders as CSV (no quoting of embedded commas; callers avoid commas).
  std::string ToCsv() const;

  /// Prints ToString() to stdout with an optional title line.
  void Print(const std::string& title = "") const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision.
std::string FormatDouble(double value, int precision = 3);

/// Formats a fraction as a percentage string, e.g. 0.312 -> "31.2%".
std::string FormatPercent(double fraction, int precision = 1);

}  // namespace savg
