// Status / Result error-handling primitives (Arrow/RocksDB idiom).
//
// Library code returns savg::Status (or savg::Result<T>) instead of throwing
// exceptions across public API boundaries. A Status is cheap to copy in the
// OK case (empty message, code OK).

#pragma once

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace savg {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kResourceExhausted,  ///< node/iteration/time limits hit
  kInfeasible,         ///< LP/IP model has no feasible solution
  kUnbounded,          ///< LP objective is unbounded
  kNumericalError,     ///< solver lost numerical stability
  kNotImplemented,
  kUnknown,
  kFailedPrecondition,  ///< system state forbids the operation (retry later)
};

/// Human-readable name of a StatusCode ("OK", "Invalid argument", ...).
const char* StatusCodeToString(StatusCode code);

/// Outcome of an operation: a code plus an optional message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Infeasible(std::string msg) {
    return Status(StatusCode::kInfeasible, std::move(msg));
  }
  static Status Unbounded(std::string msg) {
    return Status(StatusCode::kUnbounded, std::move(msg));
  }
  static Status NumericalError(std::string msg) {
    return Status(StatusCode::kNumericalError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Unknown(std::string msg) {
    return Status(StatusCode::kUnknown, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// "OK" or "<code name>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && msg_ == other.msg_;
  }

 private:
  StatusCode code_;
  std::string msg_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

/// A value-or-error holder: either an OK Status with a value of type T, or a
/// non-OK Status and no value.
template <typename T>
class Result {
 public:
  /// Implicit from value (OK).
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}
  /// Implicit from non-OK status.
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Access the value; callers must check ok() first.
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }
  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK Status to the caller.
#define SAVG_RETURN_NOT_OK(expr)          \
  do {                                    \
    ::savg::Status _st = (expr);          \
    if (!_st.ok()) return _st;            \
  } while (0)

/// Assigns a Result's value to `lhs`, or propagates its error Status.
#define SAVG_ASSIGN_OR_RETURN(lhs, rexpr)      \
  auto SAVG_CONCAT_(_res_, __LINE__) = (rexpr);    \
  if (!SAVG_CONCAT_(_res_, __LINE__).ok())         \
    return SAVG_CONCAT_(_res_, __LINE__).status(); \
  lhs = std::move(SAVG_CONCAT_(_res_, __LINE__)).value()

#define SAVG_CONCAT_IMPL_(a, b) a##b
#define SAVG_CONCAT_(a, b) SAVG_CONCAT_IMPL_(a, b)

}  // namespace savg
