// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).
//
// Used by the durability layer (src/durability/) to checksum changelog
// records and snapshot headers/payloads so torn or bit-rotted files are
// detected at recovery instead of silently replaying garbage. Table-driven,
// one byte per step; fast enough for the record sizes involved (tens of
// bytes per command, snapshots in the megabytes).

#pragma once

#include <cstddef>
#include <cstdint>

namespace savg {

/// CRC-32 of [data, data + size), seeded with `seed` (pass the previous
/// return value to checksum a buffer incrementally; 0 starts fresh).
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);

}  // namespace savg
