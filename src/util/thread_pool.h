// A small fixed-size worker pool for CPU-bound fan-out.
//
// Tasks are plain std::function<void()> closures; Submit() never blocks
// (the queue is unbounded) and Wait() blocks until every submitted task
// has finished. Determinism of results is the *caller's* job: tasks must
// write to disjoint, pre-indexed slots and derive any randomness from task
// indices, never from thread identity or execution order — the BatchRunner
// follows exactly that discipline.

#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace savg {

class ThreadPool {
 public:
  /// Starts `num_threads` workers; <= 0 means DefaultThreadCount().
  explicit ThreadPool(int num_threads = 0);
  /// Waits for pending tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues one task. Never blocks.
  void Submit(std::function<void()> task);

  /// Blocks until the queue is empty and no task is running.
  void Wait();

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// std::thread::hardware_concurrency() with a floor of 1.
  static int DefaultThreadCount();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  size_t in_flight_ = 0;  ///< queued + currently running tasks
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace savg
