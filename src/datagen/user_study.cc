#include "datagen/user_study.h"

#include <algorithm>
#include <cmath>

#include "baselines/fmg.h"
#include "baselines/grf.h"
#include "baselines/per.h"
#include "core/avg.h"
#include "core/lp_formulation.h"
#include "core/objective.h"
#include "datagen/datasets.h"
#include "util/stats.h"

namespace savg {

namespace {

/// Per-user utility parts under a personal lambda: preference and directed
/// social sums of the user's assignment.
void PerUserParts(const SvgicInstance& instance, const Configuration& config,
                  std::vector<double>* pref, std::vector<double>* soc) {
  const int n = instance.num_users();
  pref->assign(n, 0.0);
  soc->assign(n, 0.0);
  for (UserId u = 0; u < n; ++u) {
    for (SlotId s = 0; s < instance.num_slots(); ++s) {
      const ItemId c = config.At(u, s);
      if (c != kNoItem) (*pref)[u] += instance.p(u, c);
    }
  }
  for (const FriendPair& pair : instance.pairs()) {
    for (const ItemValue& iv : pair.weights) {
      const SlotId su = config.SlotOf(pair.u, iv.item);
      if (su == kNoSlot || config.At(pair.v, su) != iv.item) continue;
      if (pair.uv >= 0) (*soc)[pair.u] += instance.TauOf(pair.uv, iv.item);
      if (pair.vu >= 0) (*soc)[pair.v] += instance.TauOf(pair.vu, iv.item);
    }
  }
}

/// Personal-lambda upper bound analogous to UpperBoundUtility.
double PersonalUpperBound(const SvgicInstance& instance, UserId u,
                          double lambda) {
  const int m = instance.num_items();
  std::vector<double> w_bar(m, 0.0);
  for (ItemId c = 0; c < m; ++c) w_bar[c] = (1.0 - lambda) * instance.p(u, c);
  for (const EdgeId e : instance.graph().OutEdgeIds(u)) {
    for (const ItemValue& iv : instance.TauEntries(e)) {
      w_bar[iv.item] += lambda * iv.value;
    }
  }
  std::nth_element(w_bar.begin(), w_bar.begin() + instance.num_slots() - 1,
                   w_bar.end(), std::greater<double>());
  double bound = 0.0;
  for (SlotId s = 0; s < instance.num_slots(); ++s) bound += w_bar[s];
  return bound;
}

}  // namespace

Result<UserStudyResult> RunUserStudy(const UserStudyParams& params) {
  Rng rng(params.seed);
  // Cohort instance: a Yelp-like shopping group — recruited humans bring
  // diverse individual tastes with social clusters among acquaintances,
  // which is the diversified-preference regime, not the popularity-driven
  // VR-hub regime.
  DatasetParams data;
  data.kind = DatasetKind::kYelp;
  data.num_users = params.num_participants;
  data.num_items = params.num_items;
  data.num_slots = params.num_slots;
  data.seed = rng.Next();
  SAVG_ASSIGN_OR_RETURN(SvgicInstance instance, GenerateDataset(data));

  UserStudyResult result;
  result.lambdas.resize(params.num_participants);
  for (double& l : result.lambdas) l = rng.Uniform(0.15, 0.85);
  // The system optimizes with the cohort's mean lambda (the store picks one
  // configuration policy); satisfaction is judged per personal lambda.
  instance.set_lambda(Mean(result.lambdas));

  struct MethodConfig {
    std::string name;
    Configuration config;
  };
  std::vector<MethodConfig> methods;
  {
    SAVG_ASSIGN_OR_RETURN(FractionalSolution frac, SolveRelaxation(instance));
    AvgOptions avg_opt;
    avg_opt.seed = rng.Next();
    SAVG_ASSIGN_OR_RETURN(AvgResult avg, RunAvgBest(instance, frac, 5, avg_opt));
    methods.push_back({"AVG", std::move(avg.config)});
  }
  {
    SAVG_ASSIGN_OR_RETURN(Configuration per, RunPersonalizedTopK(instance));
    methods.push_back({"PER", std::move(per)});
  }
  {
    SAVG_ASSIGN_OR_RETURN(Configuration fmg, RunFmg(instance));
    methods.push_back({"FMG", std::move(fmg)});
  }
  {
    SAVG_ASSIGN_OR_RETURN(Configuration grf, RunGrf(instance));
    methods.push_back({"GRF", std::move(grf)});
  }

  std::vector<double> all_utilities, all_satisfaction;
  std::vector<double> pref, soc;
  for (const MethodConfig& mc : methods) {
    UserStudyMethodRecord record;
    record.method = mc.name;
    record.total_savg_utility =
        Evaluate(instance, mc.config).ScaledTotal();
    record.subgroup = ComputeSubgroupMetrics(instance, mc.config);
    PerUserParts(instance, mc.config, &pref, &soc);
    double sat_sum = 0.0;
    for (UserId u = 0; u < params.num_participants; ++u) {
      const double lambda = result.lambdas[u];
      const double utility = (1.0 - lambda) * pref[u] + lambda * soc[u];
      const double bound =
          std::max(1e-9, PersonalUpperBound(instance, u, lambda));
      const double quality = std::clamp(utility / bound, 0.0, 1.0);
      double likert = 1.0 + 4.0 * quality +
                      rng.Normal(0.0, params.satisfaction_noise);
      likert = std::clamp(std::round(likert), 1.0, 5.0);
      sat_sum += likert;
      all_utilities.push_back(utility);
      all_satisfaction.push_back(likert);
    }
    record.mean_satisfaction = sat_sum / params.num_participants;
    result.methods.push_back(std::move(record));
  }
  result.spearman = SpearmanCorrelation(all_utilities, all_satisfaction);
  result.pearson = PearsonCorrelation(all_utilities, all_satisfaction);
  return result;
}

}  // namespace savg
