// Simulated user study (Section 6.9).
//
// The paper's study puts 44 participants into an hTC VIVE store prototype,
// collects per-user lambda in [0.15, 0.85] via questionnaires, and records
// Likert 1-5 satisfaction after experiencing the configurations of AVG,
// PER, FMG and GRF. Hardware and humans are unavailable here, so the
// cohort is simulated (DESIGN.md documents the substitution): satisfaction
// is a noisy monotone Likert response to the user's achieved SAVG utility
// under her *personal* lambda, which reproduces the measurement pipeline,
// the algorithm ordering, and the high utility-satisfaction correlation the
// study reports (Spearman 0.835 / Pearson 0.814).

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "metrics/metrics.h"
#include "util/status.h"

namespace savg {

struct UserStudyParams {
  int num_participants = 44;
  int num_items = 80;
  int num_slots = 5;
  uint64_t seed = 1;
  /// Noise (in Likert points) of the satisfaction response.
  double satisfaction_noise = 0.25;
};

struct UserStudyMethodRecord {
  std::string method;
  double total_savg_utility = 0.0;   ///< scaled total (paper metric)
  double mean_satisfaction = 0.0;    ///< mean Likert 1-5
  SubgroupMetrics subgroup;
};

struct UserStudyResult {
  std::vector<double> lambdas;  ///< per participant
  std::vector<UserStudyMethodRecord> methods;
  /// Correlations of per-(participant, method) utility vs satisfaction.
  double spearman = 0.0;
  double pearson = 0.0;
};

Result<UserStudyResult> RunUserStudy(const UserStudyParams& params = {});

}  // namespace savg
