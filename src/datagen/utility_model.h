// Synthetic preference / social utility models.
//
// The paper obtains p(u,c) and tau(u,v,c) from learned models: PIERT [45]
// (joint social influence + latent item topics), and the AGREE / GREE
// attention models [9]. Those models and their training data are not
// available offline, so we generate utilities from a latent-topic model
// with the same structural signals (DESIGN.md documents the substitution):
//
//  * users have topic mixtures correlated with their community,
//  * items have peaked topic profiles plus Zipf popularity,
//  * preference p(u,c) blends topic affinity, popularity and noise, with
//    only each user's top `pref_pool` items retained (recommender
//    shortlists; also what keeps large-m LPs sparse),
//  * social utility tau(u,v,c) requires mutual topical interest and is
//    modulated by the pairwise influence model:
//      - kPiert: influence = topic similarity of the two users,
//      - kAgree: influence identical across all pairs,
//      - kGree:  influence re-drawn per (u, v, item) triple.

#pragma once

#include <vector>

#include "core/problem.h"
#include "util/random.h"

namespace savg {

enum class UtilityModelKind { kPiert, kAgree, kGree };

const char* UtilityModelKindName(UtilityModelKind kind);

struct UtilityModelParams {
  UtilityModelKind kind = UtilityModelKind::kPiert;
  int num_topics = 8;
  /// Zipf exponent of item popularity (0 = uniform).
  double popularity_zipf = 0.9;
  /// Weight of popularity (vs topic affinity) in preference.
  double popularity_boost = 0.35;
  /// How strongly a user's topics follow her community profile.
  double community_mixing = 0.6;
  /// Keep only each user's top-`pref_pool` preferences (0 = keep all).
  int pref_pool = 100;
  /// Keep only each edge's top-`tau_pool` social utilities (0 = keep all).
  int tau_pool = 50;
  /// Raw magnitude of social utility before normalization.
  double tau_scale = 0.9;
  /// After generation, taus are rescaled so the aggregate social potential
  /// (sum over edges of their top-k tau mass) equals `social_balance` times
  /// the aggregate preference potential (sum over users of their top-k
  /// preferences). This keeps the personal/social trade-off meaningful at
  /// any graph density — the regime the paper's learned utilities live in
  /// (Figure 4 shows near-even splits at lambda = 1/2). 0 disables.
  double social_balance = 1.0;
  /// k used for the potential computation (display slots).
  int balance_slots = 5;
  /// Uniform noise magnitude mixed into preferences.
  double noise = 0.15;
};

/// Fills the preference matrix and the per-edge tau entries of `instance`
/// (whose graph must already be built) and finalizes pairs.
/// `community_of[u]` groups users with correlated tastes; pass an empty
/// vector for independent users.
void PopulateUtilities(SvgicInstance* instance,
                       const std::vector<int>& community_of,
                       const UtilityModelParams& params, Rng* rng);

}  // namespace savg
