#include "datagen/datasets.h"

#include <algorithm>

#include "graph/community.h"
#include "graph/generators.h"
#include "graph/sampling.h"

namespace savg {

const char* DatasetKindName(DatasetKind kind) {
  switch (kind) {
    case DatasetKind::kTimik:
      return "Timik";
    case DatasetKind::kEpinions:
      return "Epinions";
    case DatasetKind::kYelp:
      return "Yelp";
  }
  return "?";
}

UtilityModelParams DefaultUtilityParams(DatasetKind kind) {
  UtilityModelParams p;
  switch (kind) {
    case DatasetKind::kTimik:
      // Popular VR hubs generate check-ins for everyone; communities are
      // weak, social utility strong (immersive co-presence).
      p.popularity_zipf = 1.1;
      p.popularity_boost = 0.45;
      p.community_mixing = 0.25;
      p.tau_scale = 1.0;
      p.social_balance = 1.3;
      break;
    case DatasetKind::kEpinions:
      // A few universally liked products; sparse trust edges carry lower
      // social utility (review network, not a co-presence network).
      p.popularity_zipf = 1.4;
      p.popularity_boost = 0.55;
      p.community_mixing = 0.3;
      p.tau_scale = 0.55;
      p.social_balance = 0.5;
      break;
    case DatasetKind::kYelp:
      // Strong geographic communities, highly diversified POI tastes.
      p.popularity_zipf = 0.5;
      p.popularity_boost = 0.15;
      p.community_mixing = 0.9;
      p.tau_scale = 0.9;
      p.social_balance = 1.0;
      p.noise = 0.25;
      break;
  }
  return p;
}

Result<SvgicInstance> GenerateDataset(const DatasetParams& params) {
  if (params.num_users < 1 || params.num_items < params.num_slots) {
    return Status::InvalidArgument("bad dataset dimensions");
  }
  Rng rng(params.seed);
  const int universe = params.universe_users > 0
                           ? params.universe_users
                           : std::max(200, 4 * params.num_users);

  SocialGraph universe_graph;
  std::vector<int> universe_community;
  switch (params.kind) {
    case DatasetKind::kTimik: {
      // Dense preferential attachment overlaid with weak planted blocks.
      universe_graph = BarabasiAlbert(universe, 6, &rng);
      SocialGraph blocks = PlantedPartition(
          universe, std::max(2, universe / 40), 0.08, 0.0, &rng,
          &universe_community);
      for (const Edge& e : blocks.edges()) {
        if (e.u < e.v) {
          Status st = universe_graph.AddUndirectedEdge(e.u, e.v);
          (void)st;  // duplicates are fine to skip
        }
      }
      break;
    }
    case DatasetKind::kEpinions: {
      universe_graph = BarabasiAlbert(universe, 2, &rng);
      universe_community.assign(universe, -1);
      Partition p = LabelPropagation(universe_graph, 5, &rng);
      universe_community = p.community;
      break;
    }
    case DatasetKind::kYelp: {
      universe_graph = PlantedPartition(universe,
                                        std::max(2, universe / 20), 0.35,
                                        0.01, &rng, &universe_community);
      break;
    }
  }

  // Random-walk sample of the shopping group (paper setting [55]).
  std::vector<UserId> sampled =
      RandomWalkSample(universe_graph, params.num_users, 0.15, &rng);
  std::vector<UserId> old_to_new;
  SocialGraph group_graph =
      universe_graph.InducedSubgraph(sampled, &old_to_new);
  std::vector<int> community(sampled.size(), -1);
  for (size_t i = 0; i < sampled.size(); ++i) {
    community[i] = universe_community.empty()
                       ? -1
                       : universe_community[sampled[i]];
  }

  SvgicInstance instance(group_graph, params.num_items, params.num_slots,
                         params.lambda);
  UtilityModelParams utility =
      params.override_utility ? params.utility
                              : DefaultUtilityParams(params.kind);
  utility.kind = params.utility.kind;  // input-model choice always honoured
  utility.balance_slots = params.num_slots;
  PopulateUtilities(&instance, community, utility, &rng);
  SAVG_RETURN_NOT_OK(instance.Validate());
  return instance;
}

}  // namespace savg
