#include "datagen/utility_model.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace savg {

const char* UtilityModelKindName(UtilityModelKind kind) {
  switch (kind) {
    case UtilityModelKind::kPiert:
      return "PIERT";
    case UtilityModelKind::kAgree:
      return "AGREE";
    case UtilityModelKind::kGree:
      return "GREE";
  }
  return "?";
}

namespace {

/// Normalized topic mixture: community base peaked at (community mod T),
/// blended with an individual random profile.
std::vector<double> UserTopics(int community, int num_topics, double mixing,
                               Rng* rng) {
  std::vector<double> topics(num_topics, 0.0);
  for (double& t : topics) t = rng->Uniform(0.05, 1.0);
  if (community >= 0) {
    const int base = community % num_topics;
    const int second = (community / num_topics + base + 1) % num_topics;
    topics[base] += mixing * 3.0;
    topics[second] += mixing * 1.0;
  }
  const double sum = std::accumulate(topics.begin(), topics.end(), 0.0);
  for (double& t : topics) t /= sum;
  return topics;
}

std::vector<double> ItemTopics(int num_topics, Rng* rng) {
  std::vector<double> topics(num_topics, 0.0);
  for (double& t : topics) t = rng->Uniform(0.0, 0.25);
  topics[rng->UniformInt(static_cast<uint64_t>(num_topics))] +=
      rng->Uniform(0.6, 1.0);
  const double sum = std::accumulate(topics.begin(), topics.end(), 0.0);
  for (double& t : topics) t /= sum;
  return topics;
}

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double Cosine(const std::vector<double>& a, const std::vector<double>& b) {
  const double dot = Dot(a, b);
  const double na = std::sqrt(Dot(a, a));
  const double nb = std::sqrt(Dot(b, b));
  if (na <= 0.0 || nb <= 0.0) return 0.0;
  return dot / (na * nb);
}

/// Deterministic per-(edge, item) noise for the GREE per-triple weights.
double TripleNoise(EdgeId e, ItemId c, uint64_t salt) {
  uint64_t h = (static_cast<uint64_t>(e) << 32) ^
               static_cast<uint64_t>(static_cast<uint32_t>(c)) ^ salt;
  h ^= h >> 33;
  h *= 0xFF51AFD7ED558CCDULL;
  h ^= h >> 33;
  h *= 0xC4CEB9FE1A85EC53ULL;
  h ^= h >> 33;
  return 0.2 + 0.8 * (static_cast<double>(h >> 11) * 0x1.0p-53);
}

}  // namespace

void PopulateUtilities(SvgicInstance* instance,
                       const std::vector<int>& community_of,
                       const UtilityModelParams& params, Rng* rng) {
  const int n = instance->num_users();
  const int m = instance->num_items();
  const int T = params.num_topics;

  std::vector<std::vector<double>> user_topics(n);
  for (UserId u = 0; u < n; ++u) {
    const int community =
        community_of.empty() ? -1 : community_of[u];
    user_topics[u] = UserTopics(community, T, params.community_mixing, rng);
  }
  std::vector<std::vector<double>> item_topics(m);
  for (ItemId c = 0; c < m; ++c) item_topics[c] = ItemTopics(T, rng);

  // Zipf popularity over a random item permutation.
  std::vector<int> rank(m);
  std::iota(rank.begin(), rank.end(), 0);
  rng->Shuffle(&rank);
  std::vector<double> popularity(m, 0.0);
  for (ItemId c = 0; c < m; ++c) {
    popularity[c] =
        1.0 / std::pow(1.0 + rank[c], std::max(0.0, params.popularity_zipf));
  }
  const double pop_max =
      *std::max_element(popularity.begin(), popularity.end());
  for (double& p : popularity) p /= pop_max;

  // Preferences: topic affinity (scaled to ~[0,1]) + popularity + noise,
  // then keep only the top pref_pool per user.
  std::vector<std::pair<double, ItemId>> scored(m);
  const double affinity_scale = static_cast<double>(T);  // E[dot] ~ 1/T
  for (UserId u = 0; u < n; ++u) {
    for (ItemId c = 0; c < m; ++c) {
      const double affinity = std::min(
          1.0, affinity_scale * Dot(user_topics[u], item_topics[c]) * 0.6);
      double p = (1.0 - params.popularity_boost) * affinity +
                 params.popularity_boost * popularity[c];
      p = std::clamp(p + params.noise * rng->Uniform(-0.5, 0.5), 0.0, 1.0);
      scored[c] = {p, c};
    }
    if (params.pref_pool > 0 && params.pref_pool < m) {
      std::nth_element(scored.begin(), scored.begin() + params.pref_pool - 1,
                       scored.end(),
                       [](const auto& a, const auto& b) {
                         return a.first > b.first;
                       });
      for (int i = 0; i < params.pref_pool; ++i) {
        instance->set_p(u, scored[i].second, scored[i].first);
      }
    } else {
      for (const auto& [p, c] : scored) instance->set_p(u, c, p);
    }
  }

  // Social utilities. A pair's discussion potential on an item requires
  // *mutual* interest: tau lives on the intersection of the two users'
  // preference pools (PIERT-style models learn it from co-engagement), with
  // magnitude sqrt(p_u * p_v) modulated by the pairwise influence model.
  std::vector<std::vector<ItemId>> pool(n);
  for (UserId u = 0; u < n; ++u) {
    for (ItemId c = 0; c < m; ++c) {
      if (instance->p(u, c) > 0.0) pool[u].push_back(c);
    }
  }
  const uint64_t salt = rng->Next();
  std::vector<std::pair<double, ItemId>> tau_scored;
  for (const Edge& e : instance->graph().edges()) {
    double influence = 1.0;
    switch (params.kind) {
      case UtilityModelKind::kPiert:
        influence = std::max(0.0, Cosine(user_topics[e.u], user_topics[e.v]));
        break;
      case UtilityModelKind::kAgree:
        influence = 0.6;
        break;
      case UtilityModelKind::kGree:
        influence = 1.0;  // folded into the per-triple factor below
        break;
    }
    // Directional susceptibility: tau(u,v,.) differs from tau(v,u,.).
    const double susceptibility = rng->Uniform(0.5, 1.0);
    tau_scored.clear();
    // Sorted-pool intersection of the endpoints.
    const auto& pu = pool[e.u];
    const auto& pv = pool[e.v];
    size_t i = 0, j = 0;
    while (i < pu.size() && j < pv.size()) {
      if (pu[i] < pv[j]) {
        ++i;
      } else if (pu[i] > pv[j]) {
        ++j;
      } else {
        const ItemId c = pu[i];
        double t = params.tau_scale * susceptibility * influence *
                   std::sqrt(instance->p(e.u, c) * instance->p(e.v, c));
        if (params.kind == UtilityModelKind::kGree) {
          t *= TripleNoise(e.id, c, salt);
        }
        if (t > 1e-4) tau_scored.emplace_back(t, c);
        ++i;
        ++j;
      }
    }
    if (params.tau_pool > 0 &&
        static_cast<int>(tau_scored.size()) > params.tau_pool) {
      std::nth_element(tau_scored.begin(),
                       tau_scored.begin() + params.tau_pool - 1,
                       tau_scored.end(),
                       [](const auto& a, const auto& b) {
                         return a.first > b.first;
                       });
      tau_scored.resize(params.tau_pool);
    }
    for (const auto& [t, c] : tau_scored) {
      instance->set_tau(e.id, c, t);
    }
  }
  instance->FinalizePairs();

  if (params.social_balance > 0.0 && !instance->pairs().empty()) {
    // Rescale taus so aggregate social potential tracks preference
    // potential (see header). Potentials use the top-k mass each side
    // could realize.
    const int k = std::max(1, std::min(params.balance_slots, m));
    std::vector<double> top(m);
    double pref_potential = 0.0;
    for (UserId u = 0; u < n; ++u) {
      for (ItemId c = 0; c < m; ++c) top[c] = instance->p(u, c);
      std::nth_element(top.begin(), top.begin() + k - 1, top.end(),
                       std::greater<double>());
      for (int i = 0; i < k; ++i) pref_potential += top[i];
    }
    double social_potential = 0.0;
    int64_t counted_entries = 0;
    for (const FriendPair& pair : instance->pairs()) {
      std::vector<double> ws;
      ws.reserve(pair.weights.size());
      for (const ItemValue& iv : pair.weights) ws.push_back(iv.value);
      std::sort(ws.begin(), ws.end(), std::greater<double>());
      for (int i = 0; i < k && i < static_cast<int>(ws.size()); ++i) {
        social_potential += ws[i];
        ++counted_entries;
      }
    }
    if (social_potential > 1e-12 && counted_entries > 0) {
      // Target: the mean realizable pair weight tracks social_balance times
      // the mean top-k preference value of a user, so co-displaying a
      // mutually liked item is genuinely competitive with one personal
      // pick — the trade-off regime the paper's learned utilities exhibit.
      const double mean_pref = pref_potential / (static_cast<double>(n) * k);
      const double target = params.social_balance * mean_pref *
                            static_cast<double>(counted_entries);
      instance->ScaleAllTau(target / social_potential);
      instance->FinalizePairs();
    }
  }
}

}  // namespace savg
