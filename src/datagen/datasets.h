// Dataset emulators for Timik, Epinions and Yelp (Section 6.1).
//
// The real dumps are unavailable offline; these generators reproduce the
// structural properties the paper's analysis leans on (DESIGN.md, "1.2
// Substrates"):
//
//  * Timik  — a VR social world: dense preferential-attachment graph with
//    weak local community structure (VR users befriend strangers), strongly
//    popular "hub" POIs.
//  * Epinions — a product-review trust network: sparse, tree-ish, with a
//    small set of widely liked items (hence PER's nonzero Intra% there).
//  * Yelp — an LBSN with strong geographic communities and highly
//    diversified POI preferences (hence PER's ~100% Inter% there).
//
// Instances are sampled from a larger synthetic "universe" graph via random
// walk, following the paper's sampling of small datasets from Timik [55].

#pragma once

#include "core/problem.h"
#include "datagen/utility_model.h"
#include "util/random.h"
#include "util/status.h"

namespace savg {

enum class DatasetKind { kTimik, kEpinions, kYelp };

const char* DatasetKindName(DatasetKind kind);

struct DatasetParams {
  DatasetKind kind = DatasetKind::kTimik;
  int num_users = 25;
  int num_items = 100;
  int num_slots = 5;
  double lambda = 0.5;
  uint64_t seed = 1;
  /// Universe size for random-walk sampling; 0 = max(200, 4 * num_users).
  int universe_users = 0;
  /// Utility model; kind-specific structural knobs are applied on top
  /// unless `override_utility` is set.
  UtilityModelParams utility;
  bool override_utility = false;
};

/// Kind-specific default utility parameters.
UtilityModelParams DefaultUtilityParams(DatasetKind kind);

/// Generates a full SVGIC instance (graph + utilities, pairs finalized).
Result<SvgicInstance> GenerateDataset(const DatasetParams& params);

}  // namespace savg
