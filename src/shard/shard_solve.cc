#include "shard/shard_solve.h"

#include <algorithm>
#include <cmath>

#include "core/objective.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace savg {

namespace {

/// Duals are clamped away from {0, 1} so a boundary user's bonus (and
/// hence their shard-LP column for the cut item) never vanishes: the shard
/// LP keeps its shape across dual rounds and the cached basis stays a
/// perfect warm start.
constexpr double kThetaMin = 1e-4;

/// Deterministic per-shard seed derivation (splitmix64 finalizer): seeds
/// depend only on the caller seed and the shard index, never on worker
/// identity or execution order.
uint64_t MixSeed(uint64_t seed, uint64_t salt) {
  uint64_t x = seed + 0x9E3779B97F4A7C15ULL * (salt + 1);
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x | 1;
}

}  // namespace

double EvaluateFractionalObjective(const SvgicInstance& instance,
                                   const std::vector<double>& x) {
  const int n = instance.num_users();
  const int m = instance.num_items();
  double acc = 0.0;
  for (UserId u = 0; u < n; ++u) {
    const size_t base = static_cast<size_t>(u) * m;
    for (ItemId c = 0; c < m; ++c) {
      if (x[base + c] > 0.0) acc += instance.ScaledP(u, c) * x[base + c];
    }
  }
  for (const FriendPair& pair : instance.pairs()) {
    const size_t bu = static_cast<size_t>(pair.u) * m;
    const size_t bv = static_cast<size_t>(pair.v) * m;
    for (const ItemValue& iv : pair.weights) {
      acc += iv.value * std::min(x[bu + iv.item], x[bv + iv.item]);
    }
  }
  return acc;
}

struct ShardCoordinator::Shard {
  SvgicInstance sub;
  /// local user id -> global user id (== plan.users[shard], ascending).
  std::vector<UserId> globals;
  /// (local, global) ids of this shard's boundary users.
  std::vector<std::pair<int, UserId>> boundary_locals;
  /// Local relaxation of the last solve (supporters built); the basis and
  /// fractional point double as warm starts for the next round.
  FractionalSolution frac;
  double lp_objective = 0.0;
  /// True (bonus-free) objective contribution of this shard's x rows:
  /// global scaled preferences plus intra-shard pair terms. Cached so the
  /// stitched primal is the cheap sum intra_value + cut terms instead of
  /// a full n x m scan per dual round.
  double intra_value = 0.0;
  bool warm = false;  ///< frac/basis usable as a warm start
  bool dirty = true;
};

namespace {

/// Shard intra contribution: sum of the parent's scaled preferences over
/// the shard's x rows plus the intra-shard pair min-terms. Uses the
/// parent's p (the sub-instance's rows carry dual bonuses).
double IntraObjective(const SvgicInstance& parent,
                      const std::vector<UserId>& globals,
                      const SvgicInstance& sub,
                      const std::vector<double>& x) {
  const int m = parent.num_items();
  double acc = 0.0;
  for (size_t local = 0; local < globals.size(); ++local) {
    const size_t base = local * static_cast<size_t>(m);
    for (ItemId c = 0; c < m; ++c) {
      if (x[base + c] > 0.0) {
        acc += parent.ScaledP(globals[local], c) * x[base + c];
      }
    }
  }
  for (const FriendPair& pair : sub.pairs()) {
    const size_t bu = static_cast<size_t>(pair.u) * m;
    const size_t bv = static_cast<size_t>(pair.v) * m;
    for (const ItemValue& iv : pair.weights) {
      acc += iv.value * std::min(x[bu + iv.item], x[bv + iv.item]);
    }
  }
  return acc;
}

}  // namespace

ShardCoordinator::ShardCoordinator(const SvgicInstance* instance,
                                   ShardSolveOptions options)
    : instance_(instance), options_(std::move(options)) {}

ShardCoordinator::~ShardCoordinator() = default;

Status ShardCoordinator::Build() {
  SAVG_RETURN_NOT_OK(instance_->Validate());
  if (instance_->lambda() <= 0.0 || instance_->lambda() >= 1.0) {
    return Status::InvalidArgument(
        "sharded solve requires lambda in (0, 1): the dual bonus enters a "
        "shard LP through the scaled preference, which vanishes at the "
        "endpoints (use the monolithic path there)");
  }
  plan_ = BuildShardPlan(*instance_, options_.plan);
  theta_.assign(instance_->pairs().size(), {});
  for (int pi : plan_.cut_pairs) {
    theta_[pi].assign(instance_->pairs()[pi].weights.size(), 0.5);
  }
  shards_.clear();
  shards_.reserve(plan_.num_shards());
  for (int i = 0; i < plan_.num_shards(); ++i) {
    shards_.push_back(std::make_unique<Shard>());
    SAVG_RETURN_NOT_OK(ExtractShard(i));
  }
  last_num_items_ = instance_->num_items();
  last_lambda_ = instance_->lambda();
  EnsureFracShape();
  built_ = true;
  return Status::OK();
}

Status ShardCoordinator::ExtractShard(int shard) {
  Shard& s = *shards_[shard];
  const std::vector<UserId>& members = plan_.users[shard];
  // InducedSubgraph assigns local ids in `members` order, so the members
  // list doubles as the local -> global map.
  SocialGraph sub_graph = instance_->graph().InducedSubgraph(members);
  s.sub = SvgicInstance(std::move(sub_graph), instance_->num_items(),
                        instance_->num_slots(), instance_->lambda());
  const int m = instance_->num_items();
  for (size_t local = 0; local < members.size(); ++local) {
    const UserId gu = members[local];
    for (ItemId c = 0; c < m; ++c) {
      s.sub.set_p(static_cast<UserId>(local), c, instance_->p(gu, c));
    }
  }
  for (const Edge& e : s.sub.graph().edges()) {
    const EdgeId global_edge =
        instance_->graph().FindEdge(members[e.u], members[e.v]);
    for (const ItemValue& iv : instance_->TauEntries(global_edge)) {
      s.sub.set_tau(e.id, iv.item, iv.value);
    }
  }
  s.sub.set_commodity_values(instance_->commodity_values());
  s.sub.set_slot_weights(instance_->slot_weights());
  s.sub.FinalizePairs();
  s.globals = members;
  s.boundary_locals.clear();
  for (size_t local = 0; local < members.size(); ++local) {
    if (plan_.boundary[members[local]]) {
      s.boundary_locals.emplace_back(static_cast<int>(local), members[local]);
    }
  }
  // The sub-instance was rebuilt from scratch: the cached basis/point may
  // no longer match its LP shape. The simplex silently cold-starts on an
  // incompatible basis; the fractional warm point is shape-checked in
  // SolveShardRelaxation.
  s.dirty = true;
  return Status::OK();
}

void ShardCoordinator::EnsureFracShape() {
  const int n = instance_->num_users();
  const int m = instance_->num_items();
  if (frac_.num_users != n || frac_.num_items != m ||
      frac_.num_slots != instance_->num_slots()) {
    frac_ = FractionalSolution();
    frac_.num_users = n;
    frac_.num_items = m;
    frac_.num_slots = instance_->num_slots();
    frac_.x.assign(static_cast<size_t>(n) * m, 0.0);
    // Re-stitch every shard with a still-valid cached solution: only the
    // dirty shards re-solve after a reshape (e.g. a user joined), and
    // losing the clean shards' rows here would zero their users out of
    // the stitched solution for good.
    for (size_t i = 0; i < shards_.size(); ++i) {
      const Shard& s = *shards_[i];
      if (s.warm && s.frac.num_items == m &&
          s.frac.x.size() == s.globals.size() * static_cast<size_t>(m)) {
        StitchShard(static_cast<int>(i));
      }
    }
  }
}

Status ShardCoordinator::Refresh(const std::vector<UserId>& dirty_users) {
  if (!built_) return Build();
  if (instance_->lambda() <= 0.0 || instance_->lambda() >= 1.0) {
    return Status::InvalidArgument("sharded solve requires lambda in (0, 1)");
  }
  const bool items_changed = instance_->num_items() != last_num_items_;
  const bool lambda_changed = instance_->lambda() != last_lambda_;
  const std::vector<int> grown =
      plan_.AbsorbNewUsers(instance_->num_users());
  plan_.RefreshCutPairs(*instance_);
  // Re-key duals by pair index; a pair whose weight-entry set changed
  // restarts its shares at the uninformative 1/2.
  theta_.resize(instance_->pairs().size());
  std::vector<char> is_cut(theta_.size(), 0);
  for (int pi : plan_.cut_pairs) {
    is_cut[pi] = 1;
    if (theta_[pi].size() != instance_->pairs()[pi].weights.size()) {
      theta_[pi].assign(instance_->pairs()[pi].weights.size(), 0.5);
    }
  }
  for (size_t pi = 0; pi < theta_.size(); ++pi) {
    if (!is_cut[pi]) theta_[pi].clear();
  }

  std::vector<char> dirty_shard(plan_.num_shards(), 0);
  if (items_changed || lambda_changed) {
    std::fill(dirty_shard.begin(), dirty_shard.end(), 1);
  }
  for (int shard : grown) dirty_shard[shard] = 1;
  for (UserId u : dirty_users) {
    if (u >= 0 && u < static_cast<int>(plan_.shard_of.size())) {
      dirty_shard[plan_.shard_of[u]] = 1;
    }
  }
  for (int i = 0; i < plan_.num_shards(); ++i) {
    if (dirty_shard[i]) SAVG_RETURN_NOT_OK(ExtractShard(i));
  }
  last_num_items_ = instance_->num_items();
  last_lambda_ = instance_->lambda();
  EnsureFracShape();
  return Status::OK();
}

void ShardCoordinator::MarkAllDirty() {
  for (auto& shard : shards_) shard->dirty = true;
}

int ShardCoordinator::CountDirtyShards() const {
  int count = 0;
  for (const auto& shard : shards_) count += shard->dirty ? 1 : 0;
  return count;
}

std::vector<int> ShardCoordinator::DirtyShards() const {
  std::vector<int> dirty;
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (shards_[i]->dirty) dirty.push_back(static_cast<int>(i));
  }
  return dirty;
}

void ShardCoordinator::ApplyDualBonus(int shard) {
  Shard& s = *shards_[shard];
  const int m = instance_->num_items();
  const double lambda = instance_->lambda();
  // ScaledP multiplies p by (1-lambda)/lambda, so a bonus of b on the
  // scaled objective is injected as b * lambda/(1-lambda) on p. Rewriting
  // the whole row from the parent also clears the previous round's bonus.
  const double inverse_scale = lambda / (1.0 - lambda);
  for (const auto& [local, global] : s.boundary_locals) {
    for (ItemId c = 0; c < m; ++c) {
      s.sub.set_p(local, c, instance_->p(global, c));
    }
    for (int pi : plan_.cut_pairs_of_user[global]) {
      const FriendPair& pair = instance_->pairs()[pi];
      const std::vector<double>& shares = theta_[pi];
      for (size_t wi = 0; wi < pair.weights.size(); ++wi) {
        const ItemValue& iv = pair.weights[wi];
        const double share = pair.u == global ? shares[wi] : 1.0 - shares[wi];
        const double bonus = share * iv.value * inverse_scale;
        s.sub.set_p(local, iv.item,
                    s.sub.p(local, iv.item) + bonus);
      }
    }
  }
}

Result<FractionalSolution> ShardCoordinator::SolveShardRelaxation(
    int shard, bool warm) {
  Shard& s = *shards_[shard];
  RelaxationOptions rel = options_.relaxation;
  if (rel.method == RelaxationMethod::kAuto) {
    rel.method = CompactLpRowCount(s.sub) <= rel.auto_simplex_row_limit
                     ? RelaxationMethod::kSimplex
                     : RelaxationMethod::kSubgradient;
  }
  const LpBasis* warm_basis = nullptr;
  if (warm) {
    if (rel.method == RelaxationMethod::kSimplex && !s.frac.lp_basis.Empty()) {
      warm_basis = &s.frac.lp_basis;
    } else if (rel.method == RelaxationMethod::kSubgradient &&
               s.frac.x.size() ==
                   static_cast<size_t>(s.sub.num_users()) *
                       s.sub.num_items()) {
      rel.subgradient.initial_x = &s.frac.x;
      rel.subgradient.max_iterations =
          std::min(rel.subgradient.max_iterations,
                   options_.warm_subgradient_iterations);
    }
  }
  return SolveRelaxation(s.sub, rel, warm_basis);
}

void ShardCoordinator::StitchShard(int shard) {
  const Shard& s = *shards_[shard];
  const int m = instance_->num_items();
  for (size_t local = 0; local < s.globals.size(); ++local) {
    std::copy(s.frac.x.begin() + static_cast<size_t>(local) * m,
              s.frac.x.begin() + static_cast<size_t>(local + 1) * m,
              frac_.x.begin() + static_cast<size_t>(s.globals[local]) * m);
  }
}

Status ShardCoordinator::SolveFractional(ThreadPool* pool,
                                         ShardSolveStats* stats) {
  if (!built_) {
    return Status::InvalidArgument("ShardCoordinator::Build not called");
  }
  TraceScope solve_span("shard.solve");
  Timer lp_timer;
  std::vector<int> dirty = DirtyShards();
  std::vector<int64_t> pivots_by_shard(plan_.num_shards(), 0);
  std::vector<int> solves_by_shard(plan_.num_shards(), 0);
  stats->num_shards = plan_.num_shards();
  stats->dirty_shards = static_cast<int>(dirty.size());
  stats->cut_pairs = plan_.stats.cut_pairs;
  stats->cut_weight_fraction = plan_.stats.cut_weight_fraction;

  // Dual updates are restricted to cut entries between two dirty shards:
  // a clean endpoint's x is frozen, so moving its share could not tighten
  // the bound without re-solving the clean shard.
  std::vector<char> dirty_flag(plan_.num_shards(), 0);
  for (int i : dirty) dirty_flag[i] = 1;
  auto collect_active_cuts = [&] {
    std::vector<int> active;
    for (int pi : plan_.cut_pairs) {
      const FriendPair& pair = instance_->pairs()[pi];
      if (dirty_flag[plan_.shard_of[pair.u]] &&
          dirty_flag[plan_.shard_of[pair.v]]) {
        active.push_back(pi);
      }
    }
    return active;
  };
  std::vector<int> active_cuts = collect_active_cuts();

  const int m = instance_->num_items();
  int max_rounds = 0;
  if (!dirty.empty()) {
    max_rounds = plan_.cut_pairs.empty()
                     ? 1
                     : std::max(1, options_.max_dual_rounds);
  }
  // Stitched primal from the per-shard caches plus the cut terms — clean
  // shards are never re-scanned, so the per-round cost tracks the dirty
  // set, not the whole instance.
  auto compute_primal = [&] {
    double acc = 0.0;
    for (const auto& shard : shards_) acc += shard->intra_value;
    for (int pi : plan_.cut_pairs) {
      const FriendPair& pair = instance_->pairs()[pi];
      const size_t bu = static_cast<size_t>(pair.u) * m;
      const size_t bv = static_cast<size_t>(pair.v) * m;
      for (const ItemValue& iv : pair.weights) {
        acc += iv.value *
               std::min(frac_.x[bu + iv.item], frac_.x[bv + iv.item]);
      }
    }
    return acc;
  };
  bool widened = false;
  // Polyak-step state: running primal bound, best dual bound seen, and the
  // adaptively halved scale.
  double best_primal = -kLpInfinity;
  double best_dual = kLpInfinity;
  double polyak_scale = options_.dual_step_scale;
  std::vector<Result<FractionalSolution>> slots(
      plan_.num_shards(),
      Result<FractionalSolution>(Status::Unknown("shard not solved")));
  for (int round = 0; round < max_rounds; ++round) {
    for (int i : dirty) ApplyDualBonus(i);
    for (int i : dirty) {
      pool->Submit([this, i, &slots] {
        slots[i] = SolveShardRelaxation(i, shards_[i]->warm);
      });
    }
    pool->Wait();
    for (int i : dirty) {
      if (!slots[i].ok()) return slots[i].status();
      Shard& s = *shards_[i];
      stats->lp_pivots += slots[i]->simplex_iterations;
      pivots_by_shard[i] += slots[i]->simplex_iterations;
      solves_by_shard[i] += 1;
      s.frac = std::move(slots[i]).value();
      s.lp_objective = s.frac.lp_objective;
      s.intra_value = IntraObjective(*instance_, s.globals, s.sub, s.frac.x);
      s.warm = true;
      StitchShard(i);
    }
    double dual_bound = 0.0;
    for (const auto& shard : shards_) dual_bound += shard->lp_objective;
    const double primal = compute_primal();
    stats->dual_bound = dual_bound;
    stats->primal_objective = primal;
    stats->gap = std::max(
        0.0, (dual_bound - primal) / std::max(1.0, std::abs(dual_bound)));
    stats->dual_rounds = round + 1;
    if (stats->gap <= options_.gap_tolerance || round + 1 >= max_rounds) {
      break;
    }
    if (active_cuts.empty() || (!widened && stats->gap >
                                    options_.gap_tolerance &&
                                2 * (round + 1) >= max_rounds)) {
      // Adaptive widening: the gap is stuck and some of it sits on cut
      // pairs whose clean endpoint we froze. Promote those clean shards —
      // they are extracted and warm, so their re-solves cost a few
      // pivots — and let their duals move.
      widened = true;
      int promoted = 0;
      for (int pi : plan_.cut_pairs) {
        const FriendPair& pair = instance_->pairs()[pi];
        const int su = plan_.shard_of[pair.u];
        const int sv = plan_.shard_of[pair.v];
        if (dirty_flag[su] == dirty_flag[sv]) continue;
        const int clean = dirty_flag[su] ? sv : su;
        if (!dirty_flag[clean]) {
          dirty_flag[clean] = 1;
          dirty.push_back(clean);
          ++promoted;
        }
      }
      if (promoted == 0 && active_cuts.empty()) break;
      std::sort(dirty.begin(), dirty.end());
      stats->widened_shards += promoted;
      active_cuts = collect_active_cuts();
      if (active_cuts.empty()) break;
    }
    double step;
    if (options_.polyak_dual_steps) {
      // Polyak step toward the running primal bound: the remaining gap
      // D - P_best over the squared subgradient norm sizes the move by how
      // far the duals still are from closing it, instead of a blind
      // 1/sqrt(round) decay. Because part of that gap can be intrinsic
      // (the Lagrangian bound does not always meet the stitched primal),
      // the scale is adapted Held-Karp style: every round that fails to
      // improve the dual bound halves it, so an unreachable target decays
      // the steps geometrically instead of oscillating forever.
      best_primal = std::max(best_primal, primal);
      if (dual_bound < best_dual - 1e-9 * std::max(1.0, std::abs(best_dual))) {
        best_dual = dual_bound;
      } else {
        polyak_scale *= 0.5;
      }
      double gnorm2 = 0.0;
      for (int pi : active_cuts) {
        const FriendPair& pair = instance_->pairs()[pi];
        const size_t bu = static_cast<size_t>(pair.u) * m;
        const size_t bv = static_cast<size_t>(pair.v) * m;
        for (const ItemValue& iv : pair.weights) {
          const double g = frac_.x[bu + iv.item] - frac_.x[bv + iv.item];
          gnorm2 += g * g;
        }
      }
      if (gnorm2 < 1e-12) break;  // zero subgradient: duals cannot move
      step = polyak_scale * std::max(0.0, dual_bound - best_primal) / gnorm2;
      if (step <= 0.0) break;  // bound already met: further rounds are no-ops
    } else {
      step = options_.dual_step_scale /
             std::sqrt(static_cast<double>(round) + 1.0);
    }
    for (int pi : active_cuts) {
      const FriendPair& pair = instance_->pairs()[pi];
      const size_t bu = static_cast<size_t>(pair.u) * m;
      const size_t bv = static_cast<size_t>(pair.v) * m;
      std::vector<double>& shares = theta_[pi];
      for (size_t wi = 0; wi < pair.weights.size(); ++wi) {
        const ItemId c = pair.weights[wi].item;
        shares[wi] =
            std::clamp(shares[wi] - step * (frac_.x[bu + c] - frac_.x[bv + c]),
                       kThetaMin, 1.0 - kThetaMin);
      }
    }
  }
  last_resolved_shards_ = dirty;
  if (max_rounds == 0) {
    // Nothing dirty: refresh the telemetry from the cached state.
    double dual_bound = 0.0;
    for (const auto& shard : shards_) dual_bound += shard->lp_objective;
    stats->dual_bound = dual_bound;
    stats->primal_objective = compute_primal();
    stats->gap = std::max(0.0, (dual_bound - stats->primal_objective) /
                                   std::max(1.0, std::abs(dual_bound)));
  }
  frac_.lp_objective = stats->primal_objective;
  frac_.exact = false;
  frac_.simplex_iterations = static_cast<int>(stats->lp_pivots);
  frac_.BuildSupporters(options_.relaxation.prune_tolerance);
  for (auto& shard : shards_) shard->dirty = false;
  stats->lp_seconds += lp_timer.ElapsedSeconds();
  // Per-shard detail in shard index order: recorded here, after the
  // parallel region, so traces are identical for any worker count.
  stats->shard_details.clear();
  for (int i = 0; i < plan_.num_shards(); ++i) {
    if (solves_by_shard[i] == 0) continue;
    stats->shard_details.push_back({i, solves_by_shard[i],
                                    pivots_by_shard[i]});
  }
  if (solve_span.active()) {
    solve_span.Counter("dirty_shards", stats->dirty_shards);
    solve_span.Counter("dual_rounds", stats->dual_rounds);
    solve_span.Counter("widened_shards", stats->widened_shards);
    solve_span.Counter("pivots", stats->lp_pivots);
    // Bridged children show each shard's share of the (parallel) solve
    // wall, apportioned by pivots — a time split, not true intervals.
    const double total_pivots =
        std::max<double>(1.0, static_cast<double>(stats->lp_pivots));
    TraceContext* trace = CurrentTrace();
    for (const ShardSolveStats::ShardDetail& detail :
         stats->shard_details) {
      const int child = solve_span.BridgeChild(
          "shard", stats->lp_seconds *
                       static_cast<double>(detail.pivots) / total_pivots);
      trace->AddCounter(child, "shard", detail.shard);
      trace->AddCounter(child, "solves", detail.solves);
      trace->AddCounter(child, "pivots", detail.pivots);
    }
  }
  return Status::OK();
}

Result<Configuration> ShardCoordinator::Round(
    const Configuration* previous, const std::vector<int>& reround,
    uint64_t rounding_seed, ThreadPool* pool, ShardSolveStats* stats,
    int* rerounded_units) {
  if (!built_) {
    return Status::InvalidArgument("ShardCoordinator::Build not called");
  }
  TraceScope round_span("csf.round");
  Timer timer;
  const int n = instance_->num_users();
  const int m = instance_->num_items();
  const int k = instance_->num_slots();
  std::vector<char> reround_shard(plan_.num_shards(),
                                  previous == nullptr ? 1 : 0);
  if (previous != nullptr) {
    for (int i : reround) reround_shard[i] = 1;
  }
  const bool all_reround =
      std::all_of(reround_shard.begin(), reround_shard.end(),
                  [](char flag) { return flag != 0; });
  const bool global_mode =
      options_.rounding_mode == ShardRoundingMode::kGlobal ||
      (options_.rounding_mode == ShardRoundingMode::kAuto && all_reround);
  if (global_mode) {
    // Everything re-rounds: one global CSF pass over the stitched
    // relaxation aligns co-display slots across shards exactly like
    // monolithic AVG — phased rounding's independently chosen shard slots
    // would only cost cut-pair utility here, and decision dilution keeps
    // the single pass cheap.
    CsfState state(*instance_, frac_, options_.rounding.size_cap);
    AvgOptions opt = options_.rounding;
    opt.seed = MixSeed(rounding_seed, 0x6106a1ULL);
    auto rounded = RunCsfSampling(&state, opt);
    if (!rounded.ok()) return rounded.status();
    stats->csf_iterations += rounded->csf_iterations;
    stats->rounding_seconds += timer.ElapsedSeconds();
    if (rerounded_units != nullptr) *rerounded_units = n * k;
    round_span.Label("mode", "global");
    round_span.Counter("rerounded_units", n * k);
    return std::move(rounded->config);
  }

  // Phase A: per-shard CSF rounding of the re-rounded shards, fanned out
  // with index-derived seeds (bit-identical for any worker count).
  std::vector<Result<AvgResult>> slots(
      plan_.num_shards(), Result<AvgResult>(Status::Unknown("not rounded")));
  for (int i = 0; i < plan_.num_shards(); ++i) {
    if (!reround_shard[i]) continue;
    pool->Submit([this, i, rounding_seed, &slots] {
      const Shard& s = *shards_[i];
      CsfState state(s.sub, s.frac, options_.rounding.size_cap);
      AvgOptions opt = options_.rounding;
      opt.seed = MixSeed(rounding_seed, static_cast<uint64_t>(i));
      slots[i] = RunCsfSampling(&state, opt);
    });
  }
  pool->Wait();

  // The global re-round set: boundary users of the re-rounded shards,
  // extended to their direct weighted partners (the boundary halo) so the
  // global pass can align cross- and intra-shard groups on common slots.
  std::vector<char> free_user(n, 0);
  for (UserId u = 0; u < n; ++u) {
    if (plan_.boundary[u] && reround_shard[plan_.shard_of[u]]) {
      free_user[u] = 1;
    }
  }
  if (options_.reround_halo) {
    for (const FriendPair& pair : instance_->pairs()) {
      if (pair.weights.empty()) continue;
      if (!plan_.boundary[pair.u] && !plan_.boundary[pair.v]) continue;
      if (reround_shard[plan_.shard_of[pair.u]]) free_user[pair.u] = 1;
      if (reround_shard[plan_.shard_of[pair.v]]) free_user[pair.v] = 1;
    }
  }

  // Assemble the global rounding state: phase-A units for re-rounded
  // shards' interior users, previous units for clean shards' users. The
  // free users stay unassigned for phase B, where the global supporter
  // lists let them rejoin cross-shard groups.
  CsfState global_state(*instance_, frac_, options_.rounding.size_cap);
  int kept_units = 0;
  for (int i = 0; i < plan_.num_shards(); ++i) {
    const Shard& s = *shards_[i];
    if (reround_shard[i]) {
      if (!slots[i].ok()) return slots[i].status();
      stats->csf_iterations += slots[i]->csf_iterations;
      const Configuration& local = slots[i]->config;
      for (size_t lu = 0; lu < s.globals.size(); ++lu) {
        const UserId gu = s.globals[lu];
        if (free_user[gu]) continue;
        for (SlotId slot = 0; slot < k; ++slot) {
          const ItemId c = local.At(static_cast<UserId>(lu), slot);
          if (c == kNoItem || c >= m) continue;
          if (global_state.AssignUnit(gu, slot, c).ok()) ++kept_units;
        }
      }
    } else {
      for (UserId gu : s.globals) {
        if (gu >= previous->num_users()) continue;
        for (SlotId slot = 0; slot < k; ++slot) {
          const ItemId c = previous->At(gu, slot);
          if (c == kNoItem || c >= m) continue;
          if (global_state.AssignUnit(gu, slot, c).ok()) ++kept_units;
        }
      }
    }
  }
  if (rerounded_units != nullptr) *rerounded_units = n * k - kept_units;

  // Phase B: one global CSF pass fills the boundary (and any unit the
  // assembly could not keep), then greedy-completes.
  AvgOptions boundary_opt = options_.rounding;
  boundary_opt.seed = MixSeed(rounding_seed, 0x5eedULL + plan_.num_shards());
  auto rounded = RunCsfSampling(&global_state, boundary_opt);
  if (!rounded.ok()) return rounded.status();
  stats->csf_iterations += rounded->csf_iterations;
  stats->rounding_seconds += timer.ElapsedSeconds();
  round_span.Label("mode", "phased");
  round_span.Counter("rerounded_units", n * k - kept_units);
  return std::move(rounded->config);
}

Result<ShardSolveResult> SolveSharded(const SvgicInstance& instance,
                                      const ShardSolveOptions& options) {
  Timer plan_timer;
  ShardCoordinator coordinator(&instance, options);
  SAVG_RETURN_NOT_OK(coordinator.Build());
  ShardSolveResult result;
  result.stats.plan_seconds = plan_timer.ElapsedSeconds();
  ThreadPool pool(options.num_workers);
  SAVG_RETURN_NOT_OK(coordinator.SolveFractional(&pool, &result.stats));
  std::vector<int> all_shards(coordinator.num_shards());
  for (size_t i = 0; i < all_shards.size(); ++i) {
    all_shards[i] = static_cast<int>(i);
  }
  // Best-of-k rounding (Corollary 4.1), scored by the true scaled total.
  double best = 0.0;
  for (int repeat = 0; repeat < std::max(1, options.rounding_repeats);
       ++repeat) {
    SAVG_ASSIGN_OR_RETURN(
        Configuration config,
        coordinator.Round(nullptr, all_shards,
                          MixSeed(options.seed, 0x10adULL + repeat), &pool,
                          &result.stats, nullptr));
    const double total = Evaluate(instance, config).ScaledTotal();
    if (repeat == 0 || total > best) {
      best = total;
      result.config = std::move(config);
    }
  }
  result.frac = coordinator.frac();
  return result;
}

}  // namespace savg
