#include "shard/shard_plan.h"

#include <algorithm>
#include <sstream>

#include "graph/community.h"
#include "util/random.h"

namespace savg {

std::string ShardStats::DebugString() const {
  std::ostringstream out;
  out << num_shards << " shards, sizes [" << min_size << ", " << max_size
      << "] (balance " << balance << "), " << cut_pairs
      << " cut pairs carrying " << cut_weight_fraction * 100.0
      << "% of pair weight";
  return out.str();
}

std::vector<int> ShardPlan::AbsorbNewUsers(int num_users) {
  std::vector<int> grown;
  while (static_cast<int>(shard_of.size()) < num_users) {
    int smallest = 0;
    for (int s = 1; s < num_shards(); ++s) {
      if (users[s].size() < users[smallest].size()) smallest = s;
    }
    const UserId u = static_cast<UserId>(shard_of.size());
    shard_of.push_back(smallest);
    users[smallest].push_back(u);
    if (grown.empty() || grown.back() != smallest) grown.push_back(smallest);
  }
  std::sort(grown.begin(), grown.end());
  grown.erase(std::unique(grown.begin(), grown.end()), grown.end());
  return grown;
}

void ShardPlan::RefreshCutPairs(const SvgicInstance& instance) {
  cut_pairs.clear();
  cut_pairs_of_user.assign(shard_of.size(), {});
  boundary.assign(shard_of.size(), 0);
  double cut_weight = 0.0;
  double total_weight = 0.0;
  for (size_t pi = 0; pi < instance.pairs().size(); ++pi) {
    const FriendPair& pair = instance.pairs()[pi];
    if (pair.weights.empty()) continue;
    double weight = 0.0;
    for (const ItemValue& iv : pair.weights) weight += iv.value;
    total_weight += weight;
    if (shard_of[pair.u] == shard_of[pair.v]) continue;
    const int index = static_cast<int>(pi);
    cut_pairs.push_back(index);
    cut_pairs_of_user[pair.u].push_back(index);
    cut_pairs_of_user[pair.v].push_back(index);
    boundary[pair.u] = 1;
    boundary[pair.v] = 1;
    cut_weight += weight;
  }
  stats.num_shards = num_shards();
  stats.min_size = 0;
  stats.max_size = 0;
  for (const auto& members : users) {
    const int size = static_cast<int>(members.size());
    if (stats.min_size == 0 || size < stats.min_size) stats.min_size = size;
    stats.max_size = std::max(stats.max_size, size);
  }
  const double ideal = num_shards() > 0
                           ? static_cast<double>(shard_of.size()) /
                                 num_shards()
                           : 0.0;
  stats.balance = ideal > 0.0 ? stats.max_size / ideal : 0.0;
  stats.cut_pairs = static_cast<int>(cut_pairs.size());
  stats.cut_weight_fraction =
      total_weight > 0.0 ? cut_weight / total_weight : 0.0;
}

namespace {

/// Splits any community larger than `max_size` into BFS chunks of at most
/// `chunk_size` members, keeping the rest of the partition untouched.
void SplitOversized(const SocialGraph& graph, int max_size, int chunk_size,
                    uint64_t seed, Partition* p) {
  const auto groups = p->Groups();
  int next_label = p->num_communities;
  for (const std::vector<UserId>& members : groups) {
    if (static_cast<int>(members.size()) <= max_size) continue;
    std::vector<UserId> old_to_new;
    const SocialGraph sub = graph.InducedSubgraph(members, &old_to_new);
    Rng rng(seed ^ (0x9E3779B97F4A7C15ULL * (members.front() + 1)));
    const Partition chunks = BalancedPartition(sub, chunk_size, &rng);
    for (size_t local = 0; local < members.size(); ++local) {
      p->community[members[local]] = next_label + chunks.community[local];
    }
    next_label += chunks.num_communities;
  }
  Normalize(p);
}

}  // namespace

ShardPlan BuildShardPlan(const SvgicInstance& instance,
                         const ShardPlanOptions& options) {
  const SocialGraph& graph = instance.graph();
  const int n = graph.num_vertices();
  int target = options.num_shards > 0
                   ? options.num_shards
                   : (n + std::max(1, options.target_shard_size) - 1) /
                         std::max(1, options.target_shard_size);
  target = std::max(1, std::min(target, std::max(1, n)));
  const int ideal = std::max(1, (n + target - 1) / target);

  Partition p;
  if (options.method == ShardMethod::kBalanced || target >= n) {
    Rng rng(options.seed);
    p = BalancedPartition(graph, ideal, &rng);
  } else {
    p = GreedyModularity(graph, target);
    const int max_size = std::max(
        ideal, static_cast<int>(ideal * std::max(1.0, options.max_imbalance)));
    SplitOversized(graph, max_size, ideal, options.seed, &p);
    // An edgeless (or near-edgeless) graph leaves more singletons than
    // shards: fold the surplus round-robin into the first `target` labels.
    if (p.num_communities > target * 2) {
      for (int& label : p.community) label %= target;
      Normalize(&p);
    }
  }

  ShardPlan plan;
  plan.shard_of = p.community;
  plan.users.resize(p.num_communities);
  for (UserId u = 0; u < n; ++u) plan.users[plan.shard_of[u]].push_back(u);
  plan.RefreshCutPairs(instance);
  return plan;
}

}  // namespace savg
