// Sharded solve: community-partitioned compact LPs with Lagrangian dual
// coordination of the cross-shard friendship terms.
//
// The monolithic paths formulate one compact LP over all users, capping
// instance size by single-LP memory and pivot cost. This subsystem scales
// past that limit by decomposing along the social graph's community
// structure (shard/shard_plan.h):
//
//   1. each shard solves the compact relaxation of its induced
//      sub-instance in parallel on util/thread_pool, warm-started from the
//      previous round's basis (simplex shards) or fractional point
//      (subgradient shards);
//   2. a cut pair (u, v) with weight w contributes w * min(x_u^c, x_v^c)
//      to the true objective, which no single shard sees. Each cut weight
//      entry carries a dual share theta in [0, 1]: shard(u) receives the
//      linear bonus theta * w on x_u^c and shard(v) receives
//      (1 - theta) * w on x_v^c. Since min(a, b) <= theta a + (1-theta) b,
//      the sum of shard optima D(theta) upper-bounds the monolithic LP
//      optimum for every theta — it is the Lagrangian dual of the compact
//      LP's y <= x_u, y <= x_v rows. The coordinator descends D with the
//      projected-subgradient step theta -= step * (x_u^c - x_v^c), exactly
//      the machinery of lp/subgradient.cc applied to the duals, until the
//      relative gap between D and the stitched primal value P drops below
//      the tolerance;
//   3. shard solutions are stitched into one fractional solution (each
//      user's row is owned by exactly one shard, so the stitch is
//      feasible) and rounded. When only some shards re-round (the online
//      serving case) the rounding is phased: per-shard CSF in parallel,
//      then one global CSF re-round of the boundary halo so cross-shard
//      co-display is recovered where the duals made x agree. When every
//      shard re-rounds anyway, one global CSF pass over the stitched
//      relaxation is used instead (ShardRoundingMode::kAuto): it aligns
//      group slots across shards like monolithic AVG, and decision
//      dilution keeps it cheap at any n x m reached so far.
//
// The coordinator keeps all per-shard state (sub-instances, bases, warm
// points, duals) across calls, which is what the online serving layer
// exploits: after a mutation only the dirty shards re-solve; clean shards
// keep their cached solutions and cached dual objective terms. Dual
// updates are restricted to cut entries between two dirty shards — a
// mixed entry's clean endpoint keeps its x fixed, so moving its theta
// could not improve the bound without re-solving the clean shard.
//
// Determinism: shard tasks write to pre-indexed slots and derive their
// rounding seeds from shard indices, so results are bit-identical for any
// worker count (the thread-pool discipline of experiments/batch_runner).
//
// Requires lambda in (0, 1): the dual bonus enters a shard LP through the
// scaled preference p' = (1-lambda)/lambda p, which vanishes at lambda = 1
// (callers fall back to the monolithic path there; lambda <= 0 is the
// trivial top-k case handled upstream).

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/avg.h"
#include "core/configuration.h"
#include "core/fractional_solution.h"
#include "core/lp_formulation.h"
#include "core/problem.h"
#include "shard/shard_plan.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace savg {

enum class ShardRoundingMode {
  /// Global CSF over the stitched relaxation when every shard re-rounds
  /// (batch solves, periodic full re-rounds) — the sampling loop then
  /// aligns co-display slots across shards exactly like monolithic AVG,
  /// and decision dilution keeps one global pass cheap even at large n x m.
  /// Phased rounding otherwise (online dirty-shard re-solves), where its
  /// locality is the point.
  kAuto,
  /// Always per-shard CSF + global boundary-halo re-round.
  kPhased,
  /// Always one global CSF pass over the stitched relaxation.
  kGlobal,
};

struct ShardSolveOptions {
  ShardPlanOptions plan;
  /// Per-shard relaxation knobs; kAuto picks simplex vs subgradient per
  /// shard by the shard LP's row count, exactly like the monolithic path.
  RelaxationOptions relaxation;
  /// CSF rounding knobs (per-shard and boundary re-round).
  AvgOptions rounding;
  /// Best-of-k rounding repeats for the batch entry point (Corollary 4.1,
  /// matching AVG's avg_repeats). Online serving keeps 1 for latency.
  int rounding_repeats = 3;
  /// Extends the global boundary re-round to the boundary halo: boundary
  /// users plus their direct (weighted) intra-shard partners. Per-shard
  /// roundings pick group slots independently, so a boundary user's
  /// interior partners must be re-roundable for the global pass to align
  /// cross- and intra-shard groups on common slots. The halo is small
  /// exactly when the partition is good (its size tracks the cut), so this
  /// trades little parallel work for most of the monolithic rounding
  /// quality; disable to re-round the bare boundary only.
  bool reround_halo = true;
  /// See ShardRoundingMode.
  ShardRoundingMode rounding_mode = ShardRoundingMode::kAuto;
  /// Maximum dual coordination rounds per solve.
  int max_dual_rounds = 12;
  /// Stop once (D - P) / max(|D|, 1) drops below this. With exact
  /// (simplex) shard solves this bounds the stitched solution's LP
  /// suboptimality; with subgradient shards it is the same heuristic
  /// certificate the monolithic approximate path provides.
  double gap_tolerance = 0.01;
  /// Step scale of the dual subgradient update (multiplies the Polyak
  /// step, or the diminishing schedule when polyak_dual_steps is off).
  double dual_step_scale = 0.5;
  /// Polyak dual steps (default): step = scale * (D - P_best) / ||g||^2,
  /// where D is the current dual bound, P_best the best stitched primal
  /// seen this solve (the running primal bound) and g the subgradient over
  /// the active cut entries. Sized by the actual remaining gap, it closes
  /// in fewer coordination rounds than the fixed 1/sqrt(round) schedule
  /// (bench_shard_scale logs rounds-to-gap for both; ROADMAP PR 4
  /// follow-up (a)). Off = the PR 4 diminishing schedule.
  bool polyak_dual_steps = true;
  /// Inner subgradient iterations for warm (non-first) rounds of
  /// subgradient shards; the warm point makes long ascents unnecessary.
  int warm_subgradient_iterations = 16;
  /// Worker threads for the per-shard fan-out (<= 0 = all cores).
  int num_workers = 0;
  uint64_t seed = 1;
};

/// Telemetry of one coordinated solve.
struct ShardSolveStats {
  int num_shards = 0;
  int dirty_shards = 0;
  int dual_rounds = 0;
  /// Sum of shard LP optima at the final duals (upper bound on the
  /// monolithic compact-LP optimum when every shard solved exactly).
  double dual_bound = 0.0;
  /// True (scaled) objective of the stitched fractional solution.
  double primal_objective = 0.0;
  /// (dual_bound - primal_objective) / max(|dual_bound|, 1), floored at 0.
  double gap = 0.0;
  /// Clean shards promoted into the re-solve by adaptive widening: when
  /// the gap is still above tolerance at half the round budget, shards on
  /// the clean side of a cut pair are pulled in so their duals can move
  /// (their warm bases make the extra re-solves cheap).
  int widened_shards = 0;
  /// Simplex pivots across all shard re-solves of this call.
  int64_t lp_pivots = 0;
  /// Per-shard solve detail of this call, in shard index order (only
  /// shards that re-solved appear). `pivots`/`solves` accumulate across
  /// the dual rounds. Deterministic for a fixed command stream — the
  /// trace layer (src/obs/) bridges per-shard spans from it after the
  /// parallel region, never from worker threads.
  struct ShardDetail {
    int shard = 0;
    int solves = 0;
    int64_t pivots = 0;
  };
  std::vector<ShardDetail> shard_details;
  /// Accepted CSF applications across per-shard and boundary rounding.
  int64_t csf_iterations = 0;
  int cut_pairs = 0;
  double cut_weight_fraction = 0.0;
  double plan_seconds = 0.0;
  double lp_seconds = 0.0;
  double rounding_seconds = 0.0;
};

/// The true (scaled) objective of a compact fractional point x on
/// `instance`: sum p'(u,c) x_u^c + sum_pairs sum_c w_e^c min(x_u^c, x_v^c).
/// This is what the compact LP maximizes (Observation 2); exposed for the
/// gap computation and the shard equivalence tests.
double EvaluateFractionalObjective(const SvgicInstance& instance,
                                   const std::vector<double>& x);

/// Persistent coordination state over one (mutable) parent instance. The
/// instance must outlive the coordinator; after parent mutations call
/// Refresh() with the touched users before the next SolveFractional().
class ShardCoordinator {
 public:
  /// `instance` is borrowed, not owned.
  ShardCoordinator(const SvgicInstance* instance, ShardSolveOptions options);
  ~ShardCoordinator();

  ShardCoordinator(const ShardCoordinator&) = delete;
  ShardCoordinator& operator=(const ShardCoordinator&) = delete;

  /// Builds the plan and extracts every sub-instance; marks all shards
  /// dirty. Fails for lambda outside (0, 1) or an unfinalized instance.
  Status Build();

  const ShardPlan& plan() const { return plan_; }
  int num_shards() const { return plan_.num_shards(); }
  /// Stitched fractional solution of the last SolveFractional().
  const FractionalSolution& frac() const { return frac_; }

  /// Re-syncs with the mutated parent: absorbs new users into the plan,
  /// refreshes the cut-pair set (preserving duals keyed by pair index),
  /// marks the shards of `dirty_users` dirty and re-extracts their
  /// sub-instances. A changed item count dirties every shard.
  Status Refresh(const std::vector<UserId>& dirty_users);

  void MarkAllDirty();
  int CountDirtyShards() const;

  /// Runs the dual-coordinated parallel solve of the dirty shards (see
  /// file comment) and clears the dirty flags. Clean shards keep their
  /// cached solutions and contribute their cached objective to the bound.
  /// Accumulates telemetry into `*stats`.
  Status SolveFractional(ThreadPool* pool, ShardSolveStats* stats);

  /// Rounds the stitched fractional solution into a complete
  /// configuration: parallel per-shard CSF for the shards in `reround`
  /// (clean shards keep their users' units from `previous`), then one
  /// global CSF re-round of the re-rounded shards' boundary users. With
  /// `previous == nullptr` every shard re-rounds. `rounding_seed` must be
  /// caller-derived (sessions use their own rng) so replays reproduce.
  Result<Configuration> Round(const Configuration* previous,
                              const std::vector<int>& reround,
                              uint64_t rounding_seed, ThreadPool* pool,
                              ShardSolveStats* stats, int* rerounded_units);

  /// Shards marked dirty since the last SolveFractional().
  std::vector<int> DirtyShards() const;

  /// Shards re-solved by the last SolveFractional() (the dirty set plus
  /// any adaptively widened shards) — the set whose x rows changed, which
  /// is what the caller should re-round.
  const std::vector<int>& LastResolvedShards() const {
    return last_resolved_shards_;
  }

 private:
  struct Shard;

  Status ExtractShard(int shard);
  void ApplyDualBonus(int shard);
  void StitchShard(int shard);
  void EnsureFracShape();
  Result<FractionalSolution> SolveShardRelaxation(int shard, bool warm);

  const SvgicInstance* instance_;
  ShardSolveOptions options_;
  ShardPlan plan_;
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Dual shares per cut pair index, parallel to pairs()[pi].weights.
  std::vector<std::vector<double>> theta_;
  FractionalSolution frac_;
  std::vector<int> last_resolved_shards_;
  int last_num_items_ = -1;
  double last_lambda_ = -1.0;
  bool built_ = false;
};

/// One-shot batch entry point: plan, coordinate, round. This is what the
/// AVG-SHARD solver adapter calls.
struct ShardSolveResult {
  Configuration config;
  FractionalSolution frac;
  ShardSolveStats stats;
};

Result<ShardSolveResult> SolveSharded(const SvgicInstance& instance,
                                      const ShardSolveOptions& options);

}  // namespace savg
