// Community-partitioned shard plans for the sharded solve subsystem.
//
// A ShardPlan splits an SvgicInstance's user set into shards along the
// social graph's community structure: most friendship terms are
// intra-community, so per-shard compact LPs capture most of the objective
// and only the cut pairs (friend pairs whose endpoints live in different
// shards) need cross-shard coordination (shard/shard_solve.h dualizes
// them). The plan records everything the coordinator needs — membership,
// the cut-pair list, which users sit on a shard boundary — plus balance
// and cut statistics for telemetry.
//
// Plans are deterministic for a fixed seed: kCommunity uses the
// deterministic greedy modularity merge, kBalanced the seeded BFS
// chunking, and all tie-breaks are index-based.

#pragma once

#include <string>
#include <vector>

#include "core/problem.h"
#include "graph/graph.h"

namespace savg {

enum class ShardMethod {
  /// Greedy modularity communities, merged/split toward the target shard
  /// count with BFS chunking of oversized communities (default).
  kCommunity,
  /// Seeded BFS chunking into near-equal shards (ignores community
  /// structure beyond local connectivity; useful as an ablation).
  kBalanced,
};

struct ShardPlanOptions {
  /// Explicit shard count; 0 derives it from target_shard_size.
  int num_shards = 0;
  /// Users per shard aimed for when num_shards == 0.
  int target_shard_size = 24;
  ShardMethod method = ShardMethod::kCommunity;
  uint64_t seed = 1;
  /// kCommunity splits any community larger than this multiple of the
  /// ideal shard size (n / num_shards) via BFS chunking.
  double max_imbalance = 1.6;
};

/// Balance + cut statistics of a plan (telemetry and bench tables).
struct ShardStats {
  int num_shards = 0;
  int min_size = 0;
  int max_size = 0;
  /// max_size / (n / num_shards); 1.0 is perfectly balanced.
  double balance = 0.0;
  int cut_pairs = 0;
  /// Total merged pair weight on cut pairs / total pair weight. The
  /// fraction of social mass the dual coordination must recover.
  double cut_weight_fraction = 0.0;

  std::string DebugString() const;
};

/// A partition of the user set into shards plus the cross-shard structure.
struct ShardPlan {
  /// shard index per user.
  std::vector<int> shard_of;
  /// Members of each shard, ascending user id.
  std::vector<std::vector<UserId>> users;
  /// Indices into instance.pairs() whose endpoints are in different shards
  /// (weighted pairs only — unweighted cut edges need no coordination).
  std::vector<int> cut_pairs;
  /// Cut-pair indices incident to each user (empty for interior users).
  std::vector<std::vector<int>> cut_pairs_of_user;
  /// True for users incident to at least one cut pair.
  std::vector<char> boundary;
  ShardStats stats;

  int num_shards() const { return static_cast<int>(users.size()); }

  /// Assigns users [shard_of.size(), num_users) — users that joined after
  /// the plan was built — to the currently smallest shard (ties to the
  /// lowest index). New users arrive without friendships, so any shard is
  /// community-consistent. Returns the shards that grew.
  std::vector<int> AbsorbNewUsers(int num_users);

  /// Recomputes cut_pairs / cut_pairs_of_user / boundary / stats against
  /// the (possibly mutated) instance. Pair indices are stable across
  /// RefinalizePairs, so callers can re-key dual state by pair index.
  void RefreshCutPairs(const SvgicInstance& instance);
};

/// Builds a plan for a finalized instance. Deterministic for fixed
/// options (including the seed).
ShardPlan BuildShardPlan(const SvgicInstance& instance,
                         const ShardPlanOptions& options);

}  // namespace savg
