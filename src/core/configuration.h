// SAVG k-Configuration (Definition 1): the assignment A(u, s) = c of one
// item per (user, slot), under the no-duplication constraint that the k
// items displayed to a user are distinct.
//
// The class maintains a reverse index slot_of(u, c) so duplicate checks and
// co-display queries are O(1).

#pragma once

#include <string>
#include <vector>

#include "core/problem.h"
#include "util/status.h"

namespace savg {

constexpr ItemId kNoItem = -1;
constexpr SlotId kNoSlot = -1;

/// A (partial) SAVG k-Configuration.
class Configuration {
 public:
  Configuration() = default;
  Configuration(int num_users, int num_slots, int num_items);

  int num_users() const { return num_users_; }
  int num_slots() const { return num_slots_; }
  int num_items() const { return num_items_; }

  /// A(u, s), or kNoItem if the unit is unassigned.
  ItemId At(UserId u, SlotId s) const {
    return assign_[static_cast<size_t>(u) * num_slots_ + s];
  }

  /// Slot where item c is displayed to u, or kNoSlot.
  SlotId SlotOf(UserId u, ItemId c) const {
    return slot_of_[static_cast<size_t>(u) * num_items_ + c];
  }

  /// True iff u sees item c at some slot.
  bool Displays(UserId u, ItemId c) const { return SlotOf(u, c) != kNoSlot; }

  /// Assigns A(u, s) = c. Fails if the unit is already assigned or c is
  /// already displayed to u at another slot (no-duplication).
  Status Set(UserId u, SlotId s, ItemId c);

  /// Clears the unit (for local search).
  void Unset(UserId u, SlotId s);

  /// Number of unassigned (user, slot) units.
  int NumUnassigned() const { return num_unassigned_; }
  bool IsComplete() const { return num_unassigned_ == 0; }

  /// Direct co-display u <-c/s-> v (Definition 2).
  bool CoDisplayedAt(UserId u, UserId v, ItemId c, SlotId s) const {
    return At(u, s) == c && At(v, s) == c;
  }
  /// u <-c-> v at some common slot.
  bool CoDisplayed(UserId u, UserId v, ItemId c) const {
    const SlotId su = SlotOf(u, c);
    return su != kNoSlot && At(v, su) == c;
  }
  /// Indirect co-display (Definition 4): both see c but at different slots.
  bool IndirectlyCoDisplayed(UserId u, UserId v, ItemId c) const {
    const SlotId su = SlotOf(u, c);
    const SlotId sv = SlotOf(v, c);
    return su != kNoSlot && sv != kNoSlot && su != sv;
  }

  /// The k items displayed to u (kNoItem entries if incomplete).
  std::vector<ItemId> ItemsOf(UserId u) const;

  /// Subgroup partition at slot s: users grouped by displayed item.
  /// Unassigned users are omitted. Returns {item, members} groups.
  struct SlotGroup {
    ItemId item = kNoItem;
    std::vector<UserId> members;
  };
  std::vector<SlotGroup> GroupsAtSlot(SlotId s) const;

  /// Full validity check (complete + no duplicates), for tests.
  Status CheckValid() const;

  std::string DebugString() const;

 private:
  int num_users_ = 0;
  int num_slots_ = 0;
  int num_items_ = 0;
  int num_unassigned_ = 0;
  std::vector<ItemId> assign_;   // n x k
  std::vector<SlotId> slot_of_;  // n x m
};

}  // namespace savg
