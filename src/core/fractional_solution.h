// The fractional solution X* of the SVGIC relaxation, in the compact
// (slot-free) form of LP_SIMP plus helpers used by the rounding phase.
//
// By Observation 2 of the paper, an optimal compact solution {x_u^c}
// expands to an optimal slot-indexed solution x*_{u,s}^c = x_u^c / k, so
// the rounding algorithms only ever need the compact matrix; XSlot()
// performs the division.
//
// BuildSupporters() materializes, per item, the users with a non-negligible
// utility factor, sorted descending. This is the "decision dilution"
// structure (Section 6.4): CSF and AVG-D only ever touch these entries,
// which is what makes m = 10000 instances tractable.

#pragma once

#include <vector>

#include "core/problem.h"
#include "lp/lp_model.h"

namespace savg {

/// One user supporting an item with utility factor x (compact scale).
struct Supporter {
  UserId user = -1;
  double x = 0.0;  ///< compact factor x_u^c in [0, 1]
};

struct FractionalSolution {
  int num_users = 0;
  int num_items = 0;
  int num_slots = 0;
  /// Compact factors, row-major num_users x num_items; each row sums to k.
  std::vector<double> x;
  /// Scaled LP objective (sum p' x + sum w y at the fractional optimum).
  double lp_objective = 0.0;
  /// True if produced by the exact simplex (vs the approximate solver).
  bool exact = false;
  double solve_seconds = 0.0;
  /// Simplex pivots spent on this relaxation (0 for non-simplex paths).
  int simplex_iterations = 0;
  /// True when the solve reused a caller-supplied warm-start basis.
  bool warm_started = false;
  /// Per-phase simplex time breakdown (zero for non-simplex paths).
  LpStats lp_stats;
  /// Final simplex basis of the compact LP; reusable as a warm start for
  /// a related instance (same shape, different lambda / objective).
  LpBasis lp_basis;

  double XCompact(UserId u, ItemId c) const {
    return x[static_cast<size_t>(u) * num_items + c];
  }
  /// Slot-expanded utility factor x*_{u,s}^c (identical for every s).
  double XSlot(UserId u, ItemId c) const {
    return XCompact(u, c) / num_slots;
  }

  /// Per-item supporter lists (descending by x), values above `tol` only.
  /// Sets active_items to the items with at least one supporter.
  void BuildSupporters(double tol = 1e-9);

  const std::vector<Supporter>& SupportersOf(ItemId c) const {
    return supporters_[c];
  }
  const std::vector<ItemId>& active_items() const { return active_items_; }
  /// Items supported by a given user (reverse index).
  const std::vector<ItemId>& ItemsOfUser(UserId u) const {
    return items_of_user_[u];
  }
  bool HasSupporters() const { return !supporters_.empty(); }

 private:
  std::vector<std::vector<Supporter>> supporters_;
  std::vector<ItemId> active_items_;
  std::vector<std::vector<ItemId>> items_of_user_;
};

}  // namespace savg
