// LP / IP formulations of SVGIC and SVGIC-ST (Sections 3.3 and 4.4), and
// the relaxation front-end used by AVG.
//
// Three formulations are provided:
//
//  * Compact LP (LP_SIMP, Section 4.4): variables x_u^c and y_e^c, with
//    sum_c x_u^c = k per user. O((n + |E|) m) variables. The advanced LP
//    transformation; exact for the relaxation by Observation 2.
//  * Expanded LP (LP_SVGIC, Section 3.3): slot-indexed x_{u,s}^c, y_{e,s}^c.
//    O((n + |E|) m k) variables. Used by the exact IP baseline (integrality
//    is slot-sensitive: alignment matters for co-display) and by the "-ALP"
//    ablation of Figure 9(b).
//  * ST LP: expanded plus z_e^c indirect-co-display variables, the
//    (1 - d_tel) y + d_tel z objective split, and subgroup size rows
//    sum_u x_{u,s}^c <= M.
//
// All formulations use the scaled preference p'(u,c) = (1-lambda)/lambda
// p(u,c), so their objective is the paper's scaled total
// (ObjectiveBreakdown::ScaledTotal()).
//
// SolveRelaxation() picks the exact simplex for small models and the
// projected-subgradient solver for large ones (Corollary 4.2 justifies the
// approximate path).

#pragma once

#include <vector>

#include "core/fractional_solution.h"
#include "core/problem.h"
#include "lp/lp_model.h"
#include "lp/simplex.h"
#include "lp/subgradient.h"
#include "util/status.h"

namespace savg {

/// Variable layout of the compact LP.
struct CompactLpMap {
  /// x_u^c variable index, -1 if the item is useless for u (zero preference
  /// and no incident social weight) and was folded into the filler.
  std::vector<int> x;  // n x m
  /// Filler variable per user aggregating all useless items (or -1).
  std::vector<int> filler;
  /// y variable per (pair index, weight entry index), parallel to
  /// instance.pairs()[p].weights.
  std::vector<std::vector<int>> y;

  int XVar(UserId u, ItemId c, int num_items) const {
    return x[static_cast<size_t>(u) * num_items + c];
  }
};

/// Variable layout of the expanded (slot-indexed) LP/IP.
struct ExpandedLpMap {
  int num_items = 0;
  int num_slots = 0;
  /// x_{u,s}^c, dense (n x k x m).
  std::vector<int> x;
  /// y_{e,s}^c per (pair, weight entry, slot).
  std::vector<std::vector<std::vector<int>>> y;
  /// z_e^c per (pair, weight entry); empty unless the ST variant.
  std::vector<std::vector<int>> z;

  int XVar(UserId u, SlotId s, ItemId c) const {
    return x[(static_cast<size_t>(u) * num_slots + s) * num_items + c];
  }
};

/// Builds LP_SIMP. Requires lambda > 0 (lambda = 0 is the trivial top-k
/// special case handled upstream).
Result<LpModel> BuildCompactLp(const SvgicInstance& instance,
                               CompactLpMap* map);

/// Stable 64-bit identity per column and row of a compact LP, independent
/// of the index shifts instance mutations cause (columns appear/disappear
/// when an item becomes useful/useless for a user, rows when pairs gain or
/// lose weight entries). Two keys are equal iff they denote the same
/// logical entity — x_u^c, u's filler, y_{uv}^c, u's mass row, or one of
/// the two y-cap rows of (u, v, c) — so the online serving layer can match
/// the entities of the pre-mutation LP to the post-mutation LP and project
/// a cached simplex basis across the change (online/basis_projection.h).
struct CompactLpKeys {
  std::vector<uint64_t> cols;  ///< indexed by LP variable
  std::vector<uint64_t> rows;  ///< indexed by LP row
};

/// Builds the keys for (instance, map, lp) as returned by BuildCompactLp.
/// Requires num_users < 2^21 and num_items < 2^20 (the packing limits;
/// far above the simplex-tractable sizes).
CompactLpKeys BuildCompactLpKeys(const SvgicInstance& instance,
                                 const CompactLpMap& map, const LpModel& lp);

/// Builds LP_SVGIC (slot-indexed). With `for_integer_program` the x bounds
/// stay [0,1] (integrality is requested at the MIP call site).
Result<LpModel> BuildExpandedLp(const SvgicInstance& instance,
                                ExpandedLpMap* map);

/// Builds the SVGIC-ST formulation: expanded + z variables with the
/// (1-d_tel) y + d_tel z objective and size rows sum_u x_{u,s}^c <= M.
Result<LpModel> BuildStLp(const SvgicInstance& instance, double d_tel,
                          int size_cap, ExpandedLpMap* map);

/// Builds the reduced concave problem consumed by the subgradient solver.
PairwiseConcaveProblem BuildConcaveProblem(const SvgicInstance& instance);

enum class RelaxationMethod {
  kAuto,        ///< simplex when small enough, else subgradient
  kSimplex,     ///< exact, compact formulation
  kSimplexExpanded,  ///< exact, slot-expanded formulation (-ALP ablation)
  kSubgradient,  ///< approximate, any size
};

struct RelaxationOptions {
  RelaxationMethod method = RelaxationMethod::kAuto;
  SimplexOptions simplex;
  SubgradientOptions subgradient;
  /// kAuto switches to the subgradient solver above this many LP rows.
  /// Re-tuned for the sparse revised simplex (the 600 crossover predates
  /// it, when the dense-inverse cost grew cubically). Timik sweep at
  /// m=40, k=3, Release: ~1k rows 0.02s, ~3k rows 0.3s, ~4.3k rows 0.8s,
  /// ~5.6k rows 0.9s, ~6.8k rows 3.5s, vs <10ms subgradient that is
  /// 1-4% below the exact optimum throughout. 4000 keeps the exact path
  /// (and its warm-startable basis) wherever a cold solve stays under
  /// about a second; beyond it the approximate path is covered by
  /// Corollary 4.2 (beta-approximate LP -> 4*beta-approximate rounding).
  int auto_simplex_row_limit = 4000;
  /// Supporter pruning threshold.
  double prune_tolerance = 1e-9;
};

/// Solves the SVGIC relaxation and returns the compact fractional solution
/// with supporter lists built.
///
/// `warm_start` (optional) seeds the simplex from the final basis of a
/// related solve of the same formulation — e.g. the same instance at the
/// previous lambda of a sweep, whose constraint matrix is identical. Both
/// the compact and the expanded simplex paths honor it; the subgradient
/// path and shape-incompatible bases ignore it.
Result<FractionalSolution> SolveRelaxation(
    const SvgicInstance& instance, const RelaxationOptions& options = {},
    const LpBasis* warm_start = nullptr);

/// Number of rows the compact LP would have (for the kAuto decision and
/// for tests).
int CompactLpRowCount(const SvgicInstance& instance);

}  // namespace savg
