// Objective evaluation for SVGIC and SVGIC-ST.
//
// Definitions (paper Sections 3.1-3.2):
//   total SVGIC utility     = (1-lambda) * R_pref + lambda * R_soc
//   total SVGIC-ST utility  = (1-lambda) * R_pref
//                           + lambda * (R_soc + d_tel * R_indirect)
// where
//   R_pref      = sum_u sum_{c in A(u,:)} p(u, c)
//   R_soc       = sum over friend pairs (u,v) and items c directly
//                 co-displayed: tau(u,v,c) + tau(v,u,c)
//   R_indirect  = same with indirect co-display (same item, different slots)
//
// ScaledTotal() is the lambda = 1/2 "scaled up by 2" metric used throughout
// the paper's running example and the AVG analysis:
//   scaled = total / lambda = (1-lambda)/lambda * R_pref + R_soc (+ d_tel*ind)
//
// Extension weights (commodity omega_c, slot significance gamma_s) stored on
// the instance are honoured when `use_extension_weights` is set.

#pragma once

#include <vector>

#include "core/configuration.h"
#include "core/problem.h"

namespace savg {

/// Decomposed objective value.
struct ObjectiveBreakdown {
  double preference = 0.0;       ///< R_pref (raw, lambda-free)
  double social_direct = 0.0;    ///< R_soc (raw)
  double social_indirect = 0.0;  ///< R_indirect (raw; 0 for plain SVGIC)
  double lambda = 0.5;
  double d_tel = 0.0;

  /// (1-lambda) R_pref + lambda (R_soc + d_tel R_ind).
  double Total() const {
    return (1.0 - lambda) * preference +
           lambda * (social_direct + d_tel * social_indirect);
  }
  /// Total / lambda; the paper's scaled metric (Example 5). For lambda = 0
  /// falls back to plain preference to stay finite.
  double ScaledTotal() const {
    if (lambda <= 0.0) return preference;
    return Total() / lambda;
  }
};

struct EvaluateOptions {
  /// Include indirect co-display with this discount (SVGIC-ST). 0 disables.
  double d_tel = 0.0;
  /// Honour instance commodity values / slot weights (extensions A, B).
  bool use_extension_weights = false;
};

/// Evaluates a (possibly partial) configuration; unassigned units simply
/// contribute nothing.
ObjectiveBreakdown Evaluate(const SvgicInstance& instance,
                            const Configuration& config,
                            const EvaluateOptions& options = {});

/// Per-user achieved SAVG utility sum_{c in A(u,:)} w_A(u, c) using the
/// *directed* tau of that user (Definition 3; used by the regret metric and
/// the user study).
std::vector<double> EvaluatePerUser(const SvgicInstance& instance,
                                    const Configuration& config,
                                    const EvaluateOptions& options = {});

/// Number of users exceeding the subgroup size bound M summed over all
/// (slot, item) groups: sum over groups of max(0, |group| - M).
/// 0 means the configuration is feasible for SVGIC-ST.
int SizeConstraintViolation(const Configuration& config, int size_cap);

}  // namespace savg
