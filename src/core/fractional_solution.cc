#include "core/fractional_solution.h"

#include <algorithm>

namespace savg {

void FractionalSolution::BuildSupporters(double tol) {
  supporters_.assign(num_items, {});
  items_of_user_.assign(num_users, {});
  active_items_.clear();
  for (UserId u = 0; u < num_users; ++u) {
    const size_t base = static_cast<size_t>(u) * num_items;
    for (ItemId c = 0; c < num_items; ++c) {
      const double v = x[base + c];
      if (v > tol) {
        supporters_[c].push_back({u, v});
        items_of_user_[u].push_back(c);
      }
    }
  }
  for (ItemId c = 0; c < num_items; ++c) {
    if (supporters_[c].empty()) continue;
    std::sort(supporters_[c].begin(), supporters_[c].end(),
              [](const Supporter& a, const Supporter& b) {
                if (a.x != b.x) return a.x > b.x;
                return a.user < b.user;
              });
    active_items_.push_back(c);
  }
}

}  // namespace savg
