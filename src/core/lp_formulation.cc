#include "core/lp_formulation.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace savg {

namespace {

/// Marks items that matter for user u: nonzero preference or appearing in
/// an incident pair's social weights. Everything else can be folded into a
/// single zero-objective "filler" variable without changing the LP optimum.
std::vector<bool> UsefulItems(const SvgicInstance& instance, UserId u) {
  std::vector<bool> useful(instance.num_items(), false);
  for (ItemId c = 0; c < instance.num_items(); ++c) {
    if (instance.p(u, c) > 0.0) useful[c] = true;
  }
  for (int pi : instance.PairsOfUser(u)) {
    for (const ItemValue& iv : instance.pairs()[pi].weights) {
      useful[iv.item] = true;
    }
  }
  return useful;
}

}  // namespace

int CompactLpRowCount(const SvgicInstance& instance) {
  int rows = instance.num_users();
  for (const FriendPair& pair : instance.pairs()) {
    rows += 2 * static_cast<int>(pair.weights.size());
  }
  return rows;
}

Result<LpModel> BuildCompactLp(const SvgicInstance& instance,
                               CompactLpMap* map) {
  SAVG_RETURN_NOT_OK(instance.Validate());
  if (instance.lambda() <= 0.0) {
    return Status::InvalidArgument(
        "compact LP requires lambda > 0 (lambda = 0 reduces to top-k)");
  }
  const int n = instance.num_users();
  const int m = instance.num_items();
  const double k = instance.num_slots();

  LpModel lp;
  lp.SetMaximize(true);
  map->x.assign(static_cast<size_t>(n) * m, -1);
  map->filler.assign(n, -1);
  map->y.assign(instance.pairs().size(), {});

  for (UserId u = 0; u < n; ++u) {
    const std::vector<bool> useful = UsefulItems(instance, u);
    std::vector<LpTerm> mass_row;
    int useless = 0;
    for (ItemId c = 0; c < m; ++c) {
      if (!useful[c]) {
        ++useless;
        continue;
      }
      const int var = lp.AddVariable(0.0, 1.0, instance.ScaledP(u, c));
      map->x[static_cast<size_t>(u) * m + c] = var;
      mass_row.push_back({var, 1.0});
    }
    if (useless > 0) {
      const int var = lp.AddVariable(0.0, static_cast<double>(useless), 0.0);
      map->filler[u] = var;
      mass_row.push_back({var, 1.0});
    }
    lp.AddRow(RowType::kEqual, k, std::move(mass_row));
  }

  for (size_t pi = 0; pi < instance.pairs().size(); ++pi) {
    const FriendPair& pair = instance.pairs()[pi];
    map->y[pi].reserve(pair.weights.size());
    for (const ItemValue& iv : pair.weights) {
      const int y = lp.AddVariable(0.0, 1.0, iv.value);
      map->y[pi].push_back(y);
      const int xu = map->XVar(pair.u, iv.item, m);
      const int xv = map->XVar(pair.v, iv.item, m);
      lp.AddRow(RowType::kLessEqual, 0.0, {{y, 1.0}, {xu, -1.0}});
      lp.AddRow(RowType::kLessEqual, 0.0, {{y, 1.0}, {xv, -1.0}});
    }
  }
  return lp;
}

namespace {

// Key packing: tag(2) | u(21) | v(21) | c(20). Column and row keys are
// separate spaces (ProjectCompactBasis never compares across them), so
// tags only need to keep the kinds disjoint within each space: cols use
// tag 0 (x), 1 (filler), 2 (y); rows use tag 0 (mass), 2 and 3 (the two
// y caps). u < v for pair entities (FriendPair canonical order).
constexpr uint64_t PackKey(uint64_t tag, uint64_t u, uint64_t v, uint64_t c) {
  return (tag << 62) | (u << 41) | (v << 20) | c;
}

}  // namespace

CompactLpKeys BuildCompactLpKeys(const SvgicInstance& instance,
                                 const CompactLpMap& map, const LpModel& lp) {
  const int n = instance.num_users();
  const int m = instance.num_items();
  CompactLpKeys keys;
  keys.cols.assign(lp.num_vars(), 0);
  keys.rows.reserve(lp.num_rows());

  for (UserId u = 0; u < n; ++u) {
    for (ItemId c = 0; c < m; ++c) {
      const int var = map.XVar(u, c, m);
      if (var >= 0) keys.cols[var] = PackKey(0, u, 0, c);
    }
    if (map.filler[u] >= 0) keys.cols[map.filler[u]] = PackKey(1, u, 0, 0);
  }
  // Row order mirrors BuildCompactLp: per-user mass rows first...
  for (UserId u = 0; u < n; ++u) keys.rows.push_back(PackKey(0, u, 0, 1));
  // ...then per (pair, weight entry): the y column and its two cap rows.
  for (size_t pi = 0; pi < instance.pairs().size(); ++pi) {
    const FriendPair& pair = instance.pairs()[pi];
    for (size_t wi = 0; wi < pair.weights.size(); ++wi) {
      const ItemId c = pair.weights[wi].item;
      keys.cols[map.y[pi][wi]] = PackKey(2, pair.u, pair.v, c);
      keys.rows.push_back(PackKey(2, pair.u, pair.v, c));
      keys.rows.push_back(PackKey(3, pair.u, pair.v, c));
    }
  }
  return keys;
}

Result<LpModel> BuildExpandedLp(const SvgicInstance& instance,
                                ExpandedLpMap* map) {
  SAVG_RETURN_NOT_OK(instance.Validate());
  if (instance.lambda() <= 0.0) {
    return Status::InvalidArgument("expanded LP requires lambda > 0");
  }
  const int n = instance.num_users();
  const int m = instance.num_items();
  const int k = instance.num_slots();

  LpModel lp;
  lp.SetMaximize(true);
  map->num_items = m;
  map->num_slots = k;
  map->x.assign(static_cast<size_t>(n) * k * m, -1);
  map->y.assign(instance.pairs().size(), {});
  map->z.clear();

  for (UserId u = 0; u < n; ++u) {
    for (SlotId s = 0; s < k; ++s) {
      for (ItemId c = 0; c < m; ++c) {
        map->x[(static_cast<size_t>(u) * k + s) * m + c] =
            lp.AddVariable(0.0, 1.0, instance.ScaledP(u, c));
      }
    }
  }
  // Constraint (2): each (u, s) displays exactly one item.
  for (UserId u = 0; u < n; ++u) {
    for (SlotId s = 0; s < k; ++s) {
      std::vector<LpTerm> row;
      row.reserve(m);
      for (ItemId c = 0; c < m; ++c) row.push_back({map->XVar(u, s, c), 1.0});
      lp.AddRow(RowType::kEqual, 1.0, std::move(row));
    }
  }
  // Constraint (1): no-duplication, sum_s x_{u,s}^c <= 1.
  for (UserId u = 0; u < n; ++u) {
    for (ItemId c = 0; c < m; ++c) {
      std::vector<LpTerm> row;
      row.reserve(k);
      for (SlotId s = 0; s < k; ++s) row.push_back({map->XVar(u, s, c), 1.0});
      lp.AddRow(RowType::kLessEqual, 1.0, std::move(row));
    }
  }
  // Co-display variables y_{e,s}^c with constraints (5), (6).
  for (size_t pi = 0; pi < instance.pairs().size(); ++pi) {
    const FriendPair& pair = instance.pairs()[pi];
    map->y[pi].assign(pair.weights.size(), {});
    for (size_t wi = 0; wi < pair.weights.size(); ++wi) {
      const ItemValue& iv = pair.weights[wi];
      map->y[pi][wi].resize(k);
      for (SlotId s = 0; s < k; ++s) {
        const int y = lp.AddVariable(0.0, 1.0, iv.value);
        map->y[pi][wi][s] = y;
        lp.AddRow(RowType::kLessEqual, 0.0,
                  {{y, 1.0}, {map->XVar(pair.u, s, iv.item), -1.0}});
        lp.AddRow(RowType::kLessEqual, 0.0,
                  {{y, 1.0}, {map->XVar(pair.v, s, iv.item), -1.0}});
      }
    }
  }
  return lp;
}

Result<LpModel> BuildStLp(const SvgicInstance& instance, double d_tel,
                          int size_cap, ExpandedLpMap* map) {
  if (d_tel < 0.0 || d_tel >= 1.0) {
    return Status::InvalidArgument("d_tel must be in [0, 1)");
  }
  if (size_cap < 1) return Status::InvalidArgument("size cap must be >= 1");
  auto lp_result = BuildExpandedLp(instance, map);
  if (!lp_result.ok()) return lp_result.status();
  LpModel lp = std::move(lp_result).value();
  const int n = instance.num_users();
  const int m = instance.num_items();
  const int k = instance.num_slots();

  // Rescale y objectives by (1 - d_tel) and add z variables with d_tel
  // weight and constraints (8), (9): z_e^c <= sum_s x_{u,s}^c.
  map->z.assign(instance.pairs().size(), {});
  for (size_t pi = 0; pi < instance.pairs().size(); ++pi) {
    const FriendPair& pair = instance.pairs()[pi];
    map->z[pi].resize(pair.weights.size());
    for (size_t wi = 0; wi < pair.weights.size(); ++wi) {
      const ItemValue& iv = pair.weights[wi];
      for (SlotId s = 0; s < k; ++s) {
        lp.SetObjectiveCoefficient(map->y[pi][wi][s],
                                   (1.0 - d_tel) * iv.value);
      }
      const int z = lp.AddVariable(0.0, 1.0, d_tel * iv.value);
      map->z[pi][wi] = z;
      for (UserId endpoint : {pair.u, pair.v}) {
        std::vector<LpTerm> row = {{z, 1.0}};
        for (SlotId s = 0; s < k; ++s) {
          row.push_back({map->XVar(endpoint, s, iv.item), -1.0});
        }
        lp.AddRow(RowType::kLessEqual, 0.0, std::move(row));
      }
    }
  }
  // Subgroup size rows: sum_u x_{u,s}^c <= M for every (item, slot).
  for (ItemId c = 0; c < m; ++c) {
    for (SlotId s = 0; s < k; ++s) {
      std::vector<LpTerm> row;
      row.reserve(n);
      for (UserId u = 0; u < n; ++u) row.push_back({map->XVar(u, s, c), 1.0});
      lp.AddRow(RowType::kLessEqual, static_cast<double>(size_cap),
                std::move(row));
    }
  }
  return lp;
}

PairwiseConcaveProblem BuildConcaveProblem(const SvgicInstance& instance) {
  PairwiseConcaveProblem problem;
  const int n = instance.num_users();
  const int m = instance.num_items();
  problem.num_agents = n;
  problem.num_items = m;
  problem.k = instance.num_slots();
  problem.linear.resize(static_cast<size_t>(n) * m);
  for (UserId u = 0; u < n; ++u) {
    for (ItemId c = 0; c < m; ++c) {
      problem.linear[static_cast<size_t>(u) * m + c] = instance.ScaledP(u, c);
    }
  }
  for (const FriendPair& pair : instance.pairs()) {
    ConcavePair cp;
    cp.a = pair.u;
    cp.b = pair.v;
    cp.weights.reserve(pair.weights.size());
    for (const ItemValue& iv : pair.weights) {
      cp.weights.emplace_back(iv.item, static_cast<double>(iv.value));
    }
    if (!cp.weights.empty()) problem.pairs.push_back(std::move(cp));
  }
  return problem;
}

namespace {

/// Exact solution of the lambda = 0 special case: each user independently
/// gets her top-k items (integral, hence also LP-optimal).
FractionalSolution TopKSolution(const SvgicInstance& instance) {
  const int n = instance.num_users();
  const int m = instance.num_items();
  const int k = instance.num_slots();
  FractionalSolution frac;
  frac.num_users = n;
  frac.num_items = m;
  frac.num_slots = k;
  frac.x.assign(static_cast<size_t>(n) * m, 0.0);
  frac.exact = true;
  double total = 0.0;
  std::vector<std::pair<double, ItemId>> scored(m);
  for (UserId u = 0; u < n; ++u) {
    for (ItemId c = 0; c < m; ++c) scored[c] = {instance.p(u, c), c};
    std::partial_sort(scored.begin(), scored.begin() + k, scored.end(),
                      [](const auto& a, const auto& b) {
                        return a.first > b.first;
                      });
    for (int i = 0; i < k; ++i) {
      frac.x[static_cast<size_t>(u) * m + scored[i].second] = 1.0;
      total += scored[i].first;
    }
  }
  frac.lp_objective = total;
  return frac;
}

}  // namespace

Result<FractionalSolution> SolveRelaxation(const SvgicInstance& instance,
                                           const RelaxationOptions& options,
                                           const LpBasis* warm_start) {
  SAVG_RETURN_NOT_OK(instance.Validate());
  Timer timer;
  const int n = instance.num_users();
  const int m = instance.num_items();
  const int k = instance.num_slots();

  if (instance.lambda() <= 0.0) {
    FractionalSolution frac = TopKSolution(instance);
    frac.solve_seconds = timer.ElapsedSeconds();
    frac.BuildSupporters(options.prune_tolerance);
    return frac;
  }

  RelaxationMethod method = options.method;
  if (method == RelaxationMethod::kAuto) {
    method = CompactLpRowCount(instance) <= options.auto_simplex_row_limit
                 ? RelaxationMethod::kSimplex
                 : RelaxationMethod::kSubgradient;
  }

  FractionalSolution frac;
  frac.num_users = n;
  frac.num_items = m;
  frac.num_slots = k;
  frac.x.assign(static_cast<size_t>(n) * m, 0.0);

  switch (method) {
    case RelaxationMethod::kSimplex: {
      CompactLpMap map;
      auto lp = BuildCompactLp(instance, &map);
      if (!lp.ok()) return lp.status();
      auto sol = SolveLp(*lp, options.simplex, warm_start);
      if (!sol.ok()) return sol.status();
      for (UserId u = 0; u < n; ++u) {
        for (ItemId c = 0; c < m; ++c) {
          const int var = map.XVar(u, c, m);
          if (var >= 0) {
            frac.x[static_cast<size_t>(u) * m + c] = sol->x[var];
          }
        }
      }
      frac.lp_objective = sol->objective;
      frac.exact = true;
      frac.simplex_iterations = sol->iterations;
      frac.warm_started = sol->warm_started;
      frac.lp_stats = sol->stats;
      frac.lp_basis = std::move(sol->basis);
      break;
    }
    case RelaxationMethod::kSimplexExpanded: {
      ExpandedLpMap map;
      auto lp = BuildExpandedLp(instance, &map);
      if (!lp.ok()) return lp.status();
      // Warm starts flow through the expanded path too (e.g. the final
      // basis of a previous expanded solve of the same instance shape);
      // an incompatible basis silently cold-starts.
      auto sol = SolveLp(*lp, options.simplex, warm_start);
      if (!sol.ok()) return sol.status();
      for (UserId u = 0; u < n; ++u) {
        for (ItemId c = 0; c < m; ++c) {
          double acc = 0.0;
          for (SlotId s = 0; s < k; ++s) acc += sol->x[map.XVar(u, s, c)];
          frac.x[static_cast<size_t>(u) * m + c] = acc;
        }
      }
      frac.lp_objective = sol->objective;
      frac.exact = true;
      frac.simplex_iterations = sol->iterations;
      frac.warm_started = sol->warm_started;
      frac.lp_stats = sol->stats;
      frac.lp_basis = std::move(sol->basis);
      break;
    }
    case RelaxationMethod::kSubgradient: {
      PairwiseConcaveProblem problem = BuildConcaveProblem(instance);
      auto sol = MaximizePairwiseConcave(problem, options.subgradient);
      if (!sol.ok()) return sol.status();
      frac.x = std::move(sol->x);
      frac.lp_objective = sol->objective;
      frac.exact = false;
      break;
    }
    case RelaxationMethod::kAuto:
      return Status::Unknown("unresolved auto method");
  }
  frac.solve_seconds = timer.ElapsedSeconds();
  frac.BuildSupporters(options.prune_tolerance);
  return frac;
}

}  // namespace savg
