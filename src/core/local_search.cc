#include "core/local_search.h"

#include <algorithm>
#include <vector>

#include "core/objective.h"

namespace savg {

namespace {

class LocalSearcher {
 public:
  LocalSearcher(const SvgicInstance& instance, Configuration config,
                const LocalSearchOptions& options)
      : inst_(instance), config_(std::move(config)), opt_(options) {}

  Result<LocalSearchResult> Run() {
    SAVG_RETURN_NOT_OK(config_.CheckValid());
    BuildCandidatePools();
    if (opt_.size_cap != CsfState::kNoSizeCap) BuildGroupSizes();

    LocalSearchResult result;
    result.initial_value = Evaluate(inst_, config_).ScaledTotal();
    for (int sweep = 0; sweep < opt_.max_sweeps; ++sweep) {
      ++result.sweeps;
      int moves = 0;
      for (UserId u = 0; u < inst_.num_users(); ++u) {
        for (SlotId s = 0; s < inst_.num_slots(); ++s) {
          moves += TryReassign(u, s);
          for (SlotId t = s + 1; t < inst_.num_slots(); ++t) {
            moves += TrySwap(u, s, t);
          }
        }
      }
      result.moves_taken += moves;
      if (moves == 0) break;
    }
    result.final_value = Evaluate(inst_, config_).ScaledTotal();
    SAVG_RETURN_NOT_OK(config_.CheckValid());
    result.config = std::move(config_);
    return result;
  }

 private:
  double ScaledPref(UserId u, ItemId c) const {
    return inst_.lambda() > 0.0 ? inst_.ScaledP(u, c) : inst_.p(u, c);
  }

  /// Social weight user u realizes by viewing c at slot s (sum of pair
  /// weights to neighbors currently showing c at s).
  double SocialAt(UserId u, ItemId c, SlotId s) const {
    double acc = 0.0;
    for (int pi : inst_.PairsOfUser(u)) {
      const FriendPair& pair = inst_.pairs()[pi];
      const UserId v = pair.u == u ? pair.v : pair.u;
      if (config_.At(v, s) == c) acc += pair.WeightOf(c);
    }
    return acc;
  }

  void BuildCandidatePools() {
    pool_.assign(inst_.num_users(), {});
    for (UserId u = 0; u < inst_.num_users(); ++u) {
      for (ItemId c = 0; c < inst_.num_items(); ++c) {
        if (inst_.p(u, c) > 0.0) pool_[u].push_back(c);
      }
      // Items with social weight to any friend also matter.
      for (int pi : inst_.PairsOfUser(u)) {
        for (const ItemValue& iv : inst_.pairs()[pi].weights) {
          pool_[u].push_back(iv.item);
        }
      }
      std::sort(pool_[u].begin(), pool_[u].end());
      pool_[u].erase(std::unique(pool_[u].begin(), pool_[u].end()),
                     pool_[u].end());
    }
  }

  void BuildGroupSizes() {
    group_size_.assign(
        static_cast<size_t>(inst_.num_items()) * inst_.num_slots(), 0);
    for (UserId u = 0; u < inst_.num_users(); ++u) {
      for (SlotId s = 0; s < inst_.num_slots(); ++s) {
        const ItemId c = config_.At(u, s);
        if (c != kNoItem) ++GroupSize(c, s);
      }
    }
  }

  int& GroupSize(ItemId c, SlotId s) {
    return group_size_[static_cast<size_t>(c) * inst_.num_slots() + s];
  }

  bool CapAllows(ItemId c, SlotId s) {
    if (opt_.size_cap == CsfState::kNoSizeCap) return true;
    return GroupSize(c, s) < opt_.size_cap;
  }

  void Move(UserId u, SlotId s, ItemId to) {
    const ItemId from = config_.At(u, s);
    config_.Unset(u, s);
    Status st = config_.Set(u, s, to);
    (void)st;
    if (!group_size_.empty()) {
      --GroupSize(from, s);
      ++GroupSize(to, s);
    }
  }

  int TryReassign(UserId u, SlotId s) {
    const ItemId cur = config_.At(u, s);
    const double cur_value = ScaledPref(u, cur) + SocialAt(u, cur, s);
    ItemId best = kNoItem;
    double best_gain = opt_.min_gain;
    for (ItemId cand : pool_[u]) {
      if (cand == cur || config_.Displays(u, cand)) continue;
      if (!CapAllows(cand, s)) continue;
      const double gain =
          ScaledPref(u, cand) + SocialAt(u, cand, s) - cur_value;
      if (gain > best_gain) {
        best_gain = gain;
        best = cand;
      }
    }
    if (best == kNoItem) return 0;
    Move(u, s, best);
    return 1;
  }

  int TrySwap(UserId u, SlotId s, SlotId t) {
    const ItemId cs = config_.At(u, s);
    const ItemId ct = config_.At(u, t);
    // Preference is slot-invariant; only the social alignment changes.
    const double before = SocialAt(u, cs, s) + SocialAt(u, ct, t);
    const double after = SocialAt(u, ct, s) + SocialAt(u, cs, t);
    if (after - before <= opt_.min_gain) return 0;
    // Swapping keeps the multiset of items per slot-group shifted by this
    // user only; cap counts change by +-1 per (item, slot).
    if (!CapAllows(ct, s) || !CapAllows(cs, t)) return 0;
    config_.Unset(u, s);
    config_.Unset(u, t);
    Status st = config_.Set(u, s, ct);
    (void)st;
    st = config_.Set(u, t, cs);
    (void)st;
    if (!group_size_.empty()) {
      --GroupSize(cs, s);
      --GroupSize(ct, t);
      ++GroupSize(ct, s);
      ++GroupSize(cs, t);
    }
    return 1;
  }

  const SvgicInstance& inst_;
  Configuration config_;
  const LocalSearchOptions opt_;
  std::vector<std::vector<ItemId>> pool_;
  std::vector<int> group_size_;
};

}  // namespace

Result<LocalSearchResult> ImproveByLocalSearch(
    const SvgicInstance& instance, const Configuration& config,
    const LocalSearchOptions& options) {
  SAVG_RETURN_NOT_OK(instance.Validate());
  LocalSearcher searcher(instance, config, options);
  return searcher.Run();
}

}  // namespace savg
