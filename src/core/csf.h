// Co-display Subgroup Formation (CSF) machinery shared by AVG, AVG-D and
// the SVGIC-ST extension (Sections 4.2-4.4).
//
// CsfState wraps the partial configuration plus the bookkeeping both
// rounding algorithms need:
//   * supporter lists (users with nonzero utility factor per item),
//   * eligibility checks (unit free + no-duplication),
//   * group-size counters and per-(item, slot) locking for the ST size cap,
//   * the greedy completion pass that fills residual units.
//
// SampleTree is a Fenwick tree over candidate weights enabling the advanced
// focal-parameter sampling scheme (Section 4.4, Observation 3): sample
// (c, s) proportional to the *stale* maximum eligible utility factor, then
// alpha uniform in [0, stale]; reject and refresh when alpha exceeds the
// fresh maximum. Accepted triples are uniform over the "good" parameter
// set, exactly as the paper's scheme requires.

#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <unordered_map>
#include <vector>

#include "core/configuration.h"
#include "core/fractional_solution.h"
#include "core/problem.h"
#include "util/random.h"
#include "util/status.h"

namespace savg {

/// Fenwick tree over non-negative weights with O(log n) update and
/// proportional sampling.
class SampleTree {
 public:
  explicit SampleTree(int size);
  void Set(int index, double weight);
  double Get(int index) const { return weights_[index]; }
  double total() const { return total_; }
  /// Index sampled proportional to weight; -1 if total() == 0.
  int Sample(Rng* rng) const;

 private:
  int size_ = 0;
  std::vector<double> tree_;
  std::vector<double> weights_;
  double total_ = 0.0;
};

/// Mutable rounding state over one fractional solution.
class CsfState {
 public:
  static constexpr int kNoSizeCap = std::numeric_limits<int>::max();

  CsfState(const SvgicInstance& instance, const FractionalSolution& frac,
           int size_cap = kNoSizeCap);

  /// Optional per-item caps (SEO event capacities); the effective cap of
  /// item c is min(size_cap, caps[c]). Must be set before any assignment.
  void SetItemCaps(std::vector<int> caps) { item_caps_ = std::move(caps); }

  /// Effective subgroup cap for item c.
  int CapOf(ItemId c) const {
    if (item_caps_.empty()) return size_cap_;
    return std::min(size_cap_, item_caps_[c]);
  }

  const Configuration& config() const { return config_; }
  Configuration TakeConfig() { return std::move(config_); }
  const SvgicInstance& instance() const { return *instance_; }
  const FractionalSolution& frac() const { return *frac_; }
  int size_cap() const { return size_cap_; }

  bool Complete() const { return config_.IsComplete(); }

  /// User u is eligible for (c, s): the unit (u, s) is free and c is not
  /// displayed to u anywhere (paper's eligibility, Section 4.2).
  bool Eligible(UserId u, ItemId c, SlotId s) const {
    return config_.At(u, s) == kNoItem && !config_.Displays(u, c);
  }

  /// CSF with focal parameters (c, s, alpha): co-displays c at s to every
  /// eligible user whose slot-expanded utility factor is >= alpha. Under a
  /// size cap, users are admitted in descending factor order until the
  /// group (including previously assigned members) reaches the cap, and the
  /// (c, s) pair is locked afterwards (Section 4.4, ST extension).
  /// Returns the number of users assigned; if `assigned` is non-null the
  /// member ids are appended to it.
  int ApplyCsf(ItemId c, SlotId s, double alpha,
               std::vector<UserId>* assigned = nullptr);

  /// Single assignment (used by completion and extensions); updates group
  /// counters. Fails on eligibility violation.
  Status AssignUnit(UserId u, SlotId s, ItemId c);

  /// Fresh maximum eligible slot-expanded factor for (c, s); 0 if no
  /// eligible supporter or the pair is locked by the size cap.
  double FreshMaxFactor(ItemId c, SlotId s) const;

  /// Current number of users displayed c at s.
  int GroupSize(ItemId c, SlotId s) const;

  /// Fills every remaining unit greedily: for each free (u, s) pick the
  /// undisplayed item with the largest scaled preference, preferring items
  /// whose (c, s) group has room and is nonempty (to pick up residual
  /// social utility). Ensures the final configuration is complete and
  /// size-feasible.
  void GreedyComplete();

 private:
  int GroupIndex(ItemId c, SlotId s) const;
  void BumpGroup(ItemId c, SlotId s);

  const SvgicInstance* instance_;
  const FractionalSolution* frac_;
  Configuration config_;
  int size_cap_;
  /// Group sizes for active items only: active_index(c) * k + s.
  std::vector<int> group_size_;
  std::vector<int> active_index_of_item_;  // item -> dense active index or -1
  /// Group sizes of inactive items (only touched by completion/extensions),
  /// keyed by c * num_slots + s.
  std::unordered_map<int64_t, int> inactive_group_size_;
  /// Optional per-item caps (empty = uniform size_cap_).
  std::vector<int> item_caps_;
};

}  // namespace savg
