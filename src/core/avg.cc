#include "core/avg.h"

#include <algorithm>

#include "core/objective.h"
#include "util/logging.h"

namespace savg {

namespace {

/// Candidate index for (active item ai, slot s).
inline int CandidateIndex(int ai, SlotId s, int k) { return ai * k + s; }

}  // namespace

Result<AvgResult> RunCsfSampling(CsfState* state_ptr,
                                 const AvgOptions& options) {
  CsfState& state = *state_ptr;
  const FractionalSolution& frac = state.frac();
  if (!frac.HasSupporters()) {
    return Status::InvalidArgument(
        "fractional solution lacks supporter lists");
  }
  Timer timer;
  Rng rng(options.seed);
  const int k = state.instance().num_slots();
  const auto& active = frac.active_items();
  const int num_candidates = static_cast<int>(active.size()) * k;

  AvgResult result;
  if (num_candidates > 0) {
    // Stale-weight candidate tree: weights start at each item's top
    // supporter factor (identical across slots for the compact solution).
    SampleTree tree(num_candidates);
    for (size_t ai = 0; ai < active.size(); ++ai) {
      const auto& sups = frac.SupportersOf(active[ai]);
      const double top = sups.empty() ? 0.0 : sups.front().x / k;
      for (SlotId s = 0; s < k; ++s) {
        tree.Set(CandidateIndex(static_cast<int>(ai), s, k), top);
      }
    }

    int64_t iterations = 0;
    while (!state.Complete() && iterations < options.max_iterations) {
      ++iterations;
      if (options.advanced_sampling) {
        if (tree.total() <= 1e-15) break;  // dust left; completion pass
        const int cand = tree.Sample(&rng);
        if (cand < 0) break;
        const int ai = cand / k;
        const SlotId s = cand % k;
        const ItemId c = active[ai];
        const double stale = tree.Get(cand);
        const double alpha = rng.Uniform() * stale;
        const double fresh = state.FreshMaxFactor(c, s);
        if (alpha > fresh) {
          // Reject and refresh the stale weight (Observation 3: accepted
          // draws stay uniform over the good parameter set).
          tree.Set(cand, fresh);
          ++result.idle_iterations;
          continue;
        }
        const int assigned = state.ApplyCsf(c, s, alpha);
        if (assigned > 0) {
          ++result.csf_iterations;
          tree.Set(cand, state.FreshMaxFactor(c, s));
        } else {
          // Numerically possible when fresh == alpha == 0.
          tree.Set(cand, 0.0);
          ++result.idle_iterations;
        }
      } else {
        // Original sampling: uniform (c, s), alpha ~ U[0, 1].
        const int ai = static_cast<int>(
            rng.UniformInt(static_cast<uint64_t>(active.size())));
        const SlotId s =
            static_cast<SlotId>(rng.UniformInt(static_cast<uint64_t>(k)));
        const ItemId c = active[ai];
        const double alpha = rng.Uniform();
        const double fresh = state.FreshMaxFactor(c, s);
        if (alpha > fresh || fresh <= 0.0) {
          ++result.idle_iterations;
          // Termination check: if nothing is assignable anymore, stop.
          if ((result.idle_iterations & 1023) == 0) {
            bool any = false;
            for (size_t i = 0; i < active.size() && !any; ++i) {
              for (SlotId t = 0; t < k && !any; ++t) {
                any = state.FreshMaxFactor(active[i], t) > 0.0;
              }
            }
            if (!any) break;
          }
          continue;
        }
        const int assigned = state.ApplyCsf(c, s, alpha);
        if (assigned > 0) {
          ++result.csf_iterations;
        } else {
          ++result.idle_iterations;
        }
      }
    }
  }
  state.GreedyComplete();
  result.config = state.TakeConfig();
  result.rounding_seconds = timer.ElapsedSeconds();
  return result;
}

Result<AvgResult> RunAvg(const SvgicInstance& instance,
                         const FractionalSolution& frac,
                         const AvgOptions& options) {
  // Checked before CsfState's constructor, which asserts on supporters.
  if (!frac.HasSupporters()) {
    return Status::InvalidArgument(
        "fractional solution lacks supporter lists");
  }
  CsfState state(instance, frac, options.size_cap);
  return RunCsfSampling(&state, options);
}

Result<AvgResult> RunAvgBest(const SvgicInstance& instance,
                             const FractionalSolution& frac, int repeats,
                             const AvgOptions& options) {
  if (repeats < 1) return Status::InvalidArgument("repeats must be >= 1");
  Rng seeder(options.seed);
  Result<AvgResult> best = Status::Unknown("no run executed");
  double best_value = -1.0;
  double total_seconds = 0.0;
  for (int i = 0; i < repeats; ++i) {
    AvgOptions run_options = options;
    run_options.seed = seeder.Next();
    auto run = RunAvg(instance, frac, run_options);
    if (!run.ok()) return run;
    const double value = Evaluate(instance, run->config).ScaledTotal();
    total_seconds += run->rounding_seconds;
    if (value > best_value) {
      best_value = value;
      best = std::move(run);
    }
  }
  best->rounding_seconds = total_seconds;
  return best;
}

Result<IndependentRoundingResult> RunIndependentRounding(
    const SvgicInstance& instance, const FractionalSolution& frac,
    const IndependentRoundingOptions& options) {
  if (!frac.HasSupporters()) {
    return Status::InvalidArgument(
        "fractional solution lacks supporter lists");
  }
  Rng rng(options.seed);
  CsfState state(instance, frac, CsfState::kNoSizeCap);
  const int k = instance.num_slots();
  IndependentRoundingResult result;

  std::vector<double> weights;
  for (UserId u = 0; u < instance.num_users(); ++u) {
    const auto& items = frac.ItemsOfUser(u);
    weights.resize(items.size());
    for (SlotId s = 0; s < k; ++s) {
      // Draw an item with probability proportional to x*_{u,s}^c.
      const int attempts = options.repair_duplicates ? 64 : 1;
      for (int attempt = 0; attempt < attempts; ++attempt) {
        for (size_t i = 0; i < items.size(); ++i) {
          weights[i] = frac.XCompact(u, items[i]);
        }
        const size_t pick = rng.Discrete(weights);
        if (pick >= items.size()) break;
        const ItemId c = items[pick];
        if (state.config().Displays(u, c)) {
          ++result.duplicate_draws;
          if (options.repair_duplicates) continue;
          break;  // raw Algorithm 1 simply loses the draw
        }
        Status st = state.AssignUnit(u, s, c);
        if (st.ok()) break;
      }
    }
  }
  state.GreedyComplete();
  result.config = state.TakeConfig();
  return result;
}

}  // namespace savg
