#include "core/objective.h"

#include <algorithm>

namespace savg {

namespace {

/// Iterates the sparse weights of a pair and applies f(item, weight) to
/// items displayed by both endpoints.
template <typename Fn>
void ForEachSharedItem(const Configuration& config, const FriendPair& pair,
                       Fn&& fn) {
  for (const ItemValue& iv : pair.weights) {
    const SlotId su = config.SlotOf(pair.u, iv.item);
    if (su == kNoSlot) continue;
    const SlotId sv = config.SlotOf(pair.v, iv.item);
    if (sv == kNoSlot) continue;
    fn(iv.item, static_cast<double>(iv.value), su, sv);
  }
}

}  // namespace

ObjectiveBreakdown Evaluate(const SvgicInstance& instance,
                            const Configuration& config,
                            const EvaluateOptions& options) {
  ObjectiveBreakdown out;
  out.lambda = instance.lambda();
  out.d_tel = options.d_tel;
  const bool weighted = options.use_extension_weights;

  for (UserId u = 0; u < instance.num_users(); ++u) {
    for (SlotId s = 0; s < instance.num_slots(); ++s) {
      const ItemId c = config.At(u, s);
      if (c == kNoItem) continue;
      double contrib = instance.p(u, c);
      if (weighted) {
        contrib *= instance.CommodityOf(c) * instance.SlotWeightOf(s);
      }
      out.preference += contrib;
    }
  }
  for (const FriendPair& pair : instance.pairs()) {
    ForEachSharedItem(config, pair,
                      [&](ItemId c, double w, SlotId su, SlotId sv) {
                        double weight = 1.0;
                        if (weighted) {
                          weight = instance.CommodityOf(c) *
                                   instance.SlotWeightOf(su);
                        }
                        if (su == sv) {
                          out.social_direct += w * weight;
                        } else {
                          out.social_indirect += w * weight;
                        }
                      });
  }
  return out;
}

std::vector<double> EvaluatePerUser(const SvgicInstance& instance,
                                    const Configuration& config,
                                    const EvaluateOptions& options) {
  const double lambda = instance.lambda();
  std::vector<double> utility(instance.num_users(), 0.0);
  for (UserId u = 0; u < instance.num_users(); ++u) {
    for (SlotId s = 0; s < instance.num_slots(); ++s) {
      const ItemId c = config.At(u, s);
      if (c == kNoItem) continue;
      utility[u] += (1.0 - lambda) * instance.p(u, c);
    }
  }
  // Directed social utility: u gains tau(u, v, c) when co-displayed with v.
  for (const FriendPair& pair : instance.pairs()) {
    ForEachSharedItem(
        config, pair, [&](ItemId c, double /*w*/, SlotId su, SlotId sv) {
          const double discount = su == sv ? 1.0 : options.d_tel;
          if (discount == 0.0) return;
          if (pair.uv >= 0) {
            utility[pair.u] +=
                lambda * discount * instance.TauOf(pair.uv, c);
          }
          if (pair.vu >= 0) {
            utility[pair.v] +=
                lambda * discount * instance.TauOf(pair.vu, c);
          }
        });
  }
  return utility;
}

int SizeConstraintViolation(const Configuration& config, int size_cap) {
  int violation = 0;
  for (SlotId s = 0; s < config.num_slots(); ++s) {
    for (const auto& group : config.GroupsAtSlot(s)) {
      violation += std::max(
          0, static_cast<int>(group.members.size()) - size_cap);
    }
  }
  return violation;
}

}  // namespace savg
