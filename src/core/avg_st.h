// End-to-end AVG for SVGIC-ST (Section 4.4 "Extending AVG for SVGIC-ST").
//
// The ST variant differs from plain AVG in two ways:
//  * the relaxation can be the exact ST LP (teleportation split + size
//    rows) for small instances, or the compact SVGIC relaxation as a proxy
//    for large ones (SVGIC-ST admits no constant-factor approximation
//    anyway, Theorem 3 — the LP is a guide, feasibility is what AVG
//    guarantees);
//  * CSF admits users in descending utility-factor order and locks a
//    (c, s) pair once its subgroup reaches the size cap M, so the returned
//    configuration never violates the constraint.

#pragma once

#include "core/avg.h"
#include "core/lp_formulation.h"
#include "core/problem.h"
#include "util/status.h"

namespace savg {

struct StOptions {
  /// Teleportation discount d_tel in [0, 1) for indirect co-display.
  double d_tel = 0.5;
  /// Subgroup size cap M (>= 1).
  int size_cap = 16;
  /// Solve the exact slot-indexed ST LP (small instances only); otherwise
  /// the compact SVGIC relaxation guides the rounding.
  bool use_st_lp = false;
  /// Independent rounding repeats; the best (by scaled total) is returned
  /// (Corollary 4.1).
  int avg_repeats = 5;
  AvgOptions avg;
  RelaxationOptions relaxation;
};

/// Runs the full AVG-ST pipeline: relaxation + size-capped CSF rounding.
Result<AvgResult> RunAvgSt(const SvgicInstance& instance,
                           const StOptions& options = {});

/// Solves the relaxation used by AVG-ST (exposed for reuse across repeated
/// roundings of one instance).
///
/// `warm_start` (optional) seeds the exact ST-LP simplex from the final
/// basis of a previous ST solve with the same model shape (same instance
/// structure; d_tel / size_cap / lambda may differ — they only touch
/// objective and rhs). Returned in FractionalSolution::lp_basis. Ignored
/// on the compact-proxy path, which forwards it to SolveRelaxation.
Result<FractionalSolution> SolveStRelaxation(const SvgicInstance& instance,
                                             const StOptions& options,
                                             const LpBasis* warm_start =
                                                 nullptr);

}  // namespace savg
