#include "core/io.h"

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace savg {

namespace {

constexpr int kInstanceVersion = 1;
constexpr int kConfigVersion = 1;

/// Splits a line into whitespace-separated tokens.
std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream is(line);
  std::string token;
  while (is >> token) tokens.push_back(token);
  return tokens;
}

bool ParseInt(const std::string& s, int* out) {
  try {
    size_t pos = 0;
    const long v = std::stol(s, &pos);
    if (pos != s.size()) return false;
    *out = static_cast<int>(v);
    return true;
  } catch (...) {
    return false;
  }
}

bool ParseDouble(const std::string& s, double* out) {
  try {
    size_t pos = 0;
    *out = std::stod(s, &pos);
    return pos == s.size();
  } catch (...) {
    return false;
  }
}

}  // namespace

Status WriteInstance(const SvgicInstance& instance, std::ostream* out) {
  std::ostream& os = *out;
  os << "svgic " << kInstanceVersion << "\n";
  os << "dims " << instance.num_users() << " " << instance.num_items() << " "
     << instance.num_slots() << " " << instance.lambda() << "\n";
  for (const Edge& e : instance.graph().edges()) {
    os << "edge " << e.u << " " << e.v << "\n";
  }
  for (UserId u = 0; u < instance.num_users(); ++u) {
    for (ItemId c = 0; c < instance.num_items(); ++c) {
      const double p = instance.p(u, c);
      if (p != 0.0) os << "p " << u << " " << c << " " << p << "\n";
    }
  }
  for (EdgeId e = 0; e < instance.graph().num_edges(); ++e) {
    for (const ItemValue& iv : instance.TauEntries(e)) {
      if (iv.value != 0.0f) {
        os << "tau " << e << " " << iv.item << " " << iv.value << "\n";
      }
    }
  }
  for (size_t c = 0; c < instance.commodity_values().size(); ++c) {
    os << "commodity " << c << " " << instance.commodity_values()[c] << "\n";
  }
  for (size_t s = 0; s < instance.slot_weights().size(); ++s) {
    os << "slotweight " << s << " " << instance.slot_weights()[s] << "\n";
  }
  os << "end\n";
  if (!os) return Status::Unknown("write failed");
  return Status::OK();
}

Status WriteInstanceToFile(const SvgicInstance& instance,
                           const std::string& path) {
  std::ofstream file(path);
  if (!file) return Status::NotFound("cannot open " + path + " for writing");
  return WriteInstance(instance, &file);
}

Result<SvgicInstance> ReadInstance(std::istream* in) {
  std::string line;
  // Header.
  int version = 0;
  bool have_header = false;
  int n = 0, m = 0, k = 0;
  double lambda = 0.5;
  bool have_dims = false;

  std::vector<std::pair<UserId, UserId>> edges;
  struct PEntry {
    int u, c;
    double v;
  };
  struct TauEntry {
    int e, c;
    double v;
  };
  std::vector<PEntry> prefs;
  std::vector<TauEntry> taus;
  std::vector<std::pair<int, double>> commodities, slot_weights;
  bool saw_end = false;

  int line_no = 0;
  while (std::getline(*in, line)) {
    ++line_no;
    const auto tokens = Tokenize(line);
    if (tokens.empty() || tokens[0][0] == '#') continue;
    const std::string& kind = tokens[0];
    auto fail = [&](const std::string& why) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": " + why);
    };
    if (kind == "svgic") {
      if (tokens.size() != 2 || !ParseInt(tokens[1], &version)) {
        return fail("bad header");
      }
      if (version != kInstanceVersion) {
        return Status::NotImplemented("unsupported instance version");
      }
      have_header = true;
    } else if (kind == "dims") {
      if (tokens.size() != 5 || !ParseInt(tokens[1], &n) ||
          !ParseInt(tokens[2], &m) || !ParseInt(tokens[3], &k) ||
          !ParseDouble(tokens[4], &lambda)) {
        return fail("bad dims");
      }
      have_dims = true;
    } else if (kind == "edge") {
      int u, v;
      if (tokens.size() != 3 || !ParseInt(tokens[1], &u) ||
          !ParseInt(tokens[2], &v)) {
        return fail("bad edge");
      }
      edges.emplace_back(u, v);
    } else if (kind == "p") {
      PEntry e{};
      if (tokens.size() != 4 || !ParseInt(tokens[1], &e.u) ||
          !ParseInt(tokens[2], &e.c) || !ParseDouble(tokens[3], &e.v)) {
        return fail("bad p entry");
      }
      prefs.push_back(e);
    } else if (kind == "tau") {
      TauEntry t{};
      if (tokens.size() != 4 || !ParseInt(tokens[1], &t.e) ||
          !ParseInt(tokens[2], &t.c) || !ParseDouble(tokens[3], &t.v)) {
        return fail("bad tau entry");
      }
      taus.push_back(t);
    } else if (kind == "commodity" || kind == "slotweight") {
      int idx;
      double v;
      if (tokens.size() != 3 || !ParseInt(tokens[1], &idx) ||
          !ParseDouble(tokens[2], &v)) {
        return fail("bad " + kind + " entry");
      }
      (kind == "commodity" ? commodities : slot_weights).emplace_back(idx, v);
    } else if (kind == "end") {
      saw_end = true;
      break;
    } else {
      return fail("unknown record '" + kind + "'");
    }
  }
  if (!have_header || !have_dims || !saw_end) {
    return Status::InvalidArgument("truncated or malformed instance file");
  }
  if (n < 0 || m <= 0 || k <= 0) {
    return Status::InvalidArgument("bad dimensions");
  }

  SocialGraph graph(n);
  for (const auto& [u, v] : edges) {
    auto r = graph.AddEdge(u, v);
    if (!r.ok()) return r.status();
  }
  SvgicInstance instance(graph, m, k, lambda);
  for (const PEntry& e : prefs) {
    if (e.u < 0 || e.u >= n || e.c < 0 || e.c >= m) {
      return Status::OutOfRange("p entry out of range");
    }
    instance.set_p(e.u, e.c, e.v);
  }
  for (const TauEntry& t : taus) {
    if (t.e < 0 || t.e >= graph.num_edges() || t.c < 0 || t.c >= m) {
      return Status::OutOfRange("tau entry out of range");
    }
    instance.set_tau(t.e, t.c, t.v);
  }
  if (!commodities.empty()) {
    std::vector<float> values(m, 1.0f);
    for (const auto& [idx, v] : commodities) {
      if (idx < 0 || idx >= m) return Status::OutOfRange("commodity index");
      values[idx] = static_cast<float>(v);
    }
    instance.set_commodity_values(std::move(values));
  }
  if (!slot_weights.empty()) {
    std::vector<float> values(k, 1.0f);
    for (const auto& [idx, v] : slot_weights) {
      if (idx < 0 || idx >= k) return Status::OutOfRange("slotweight index");
      values[idx] = static_cast<float>(v);
    }
    instance.set_slot_weights(std::move(values));
  }
  instance.FinalizePairs();
  SAVG_RETURN_NOT_OK(instance.Validate());
  return instance;
}

Result<SvgicInstance> ReadInstanceFromFile(const std::string& path) {
  std::ifstream file(path);
  if (!file) return Status::NotFound("cannot open " + path);
  return ReadInstance(&file);
}

Status WriteConfiguration(const Configuration& config, std::ostream* out) {
  std::ostream& os = *out;
  os << "savgconfig " << kConfigVersion << "\n";
  os << "dims " << config.num_users() << " " << config.num_slots() << " "
     << config.num_items() << "\n";
  for (UserId u = 0; u < config.num_users(); ++u) {
    for (SlotId s = 0; s < config.num_slots(); ++s) {
      const ItemId c = config.At(u, s);
      if (c != kNoItem) os << "a " << u << " " << s << " " << c << "\n";
    }
  }
  os << "end\n";
  if (!os) return Status::Unknown("write failed");
  return Status::OK();
}

Status WriteConfigurationToFile(const Configuration& config,
                                const std::string& path) {
  std::ofstream file(path);
  if (!file) return Status::NotFound("cannot open " + path + " for writing");
  return WriteConfiguration(config, &file);
}

Result<Configuration> ReadConfiguration(std::istream* in) {
  std::string line;
  int version = 0, n = 0, k = 0, m = 0;
  bool have_header = false, have_dims = false, saw_end = false;
  struct Assign {
    int u, s, c;
  };
  std::vector<Assign> assigns;
  int line_no = 0;
  while (std::getline(*in, line)) {
    ++line_no;
    const auto tokens = Tokenize(line);
    if (tokens.empty() || tokens[0][0] == '#') continue;
    auto fail = [&](const std::string& why) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": " + why);
    };
    if (tokens[0] == "savgconfig") {
      if (tokens.size() != 2 || !ParseInt(tokens[1], &version) ||
          version != kConfigVersion) {
        return fail("bad config header");
      }
      have_header = true;
    } else if (tokens[0] == "dims") {
      if (tokens.size() != 4 || !ParseInt(tokens[1], &n) ||
          !ParseInt(tokens[2], &k) || !ParseInt(tokens[3], &m)) {
        return fail("bad dims");
      }
      have_dims = true;
    } else if (tokens[0] == "a") {
      Assign a{};
      if (tokens.size() != 4 || !ParseInt(tokens[1], &a.u) ||
          !ParseInt(tokens[2], &a.s) || !ParseInt(tokens[3], &a.c)) {
        return fail("bad assignment");
      }
      assigns.push_back(a);
    } else if (tokens[0] == "end") {
      saw_end = true;
      break;
    } else {
      return fail("unknown record");
    }
  }
  if (!have_header || !have_dims || !saw_end) {
    return Status::InvalidArgument("truncated or malformed config file");
  }
  Configuration config(n, k, m);
  for (const Assign& a : assigns) {
    SAVG_RETURN_NOT_OK(config.Set(a.u, a.s, a.c));
  }
  return config;
}

Result<Configuration> ReadConfigurationFromFile(const std::string& path) {
  std::ifstream file(path);
  if (!file) return Status::NotFound("cannot open " + path);
  return ReadConfiguration(&file);
}

}  // namespace savg
