// The SVGIC problem instance (Section 3.1).
//
// An instance bundles the social network G = (V, E), the universal item set
// C (|C| = m), the number of display slots k, the preference/social weight
// lambda, the preference utilities p(u, c), and the social utilities
// tau(u, v, c) attached to directed edges.
//
// Storage notes:
//  * p is dense row-major (n x m) in float: large instances have
//    m = 10000 items and the paper's learned models emit dense scores.
//  * tau is sparse per directed edge: real utility models concentrate
//    social utility on a limited pool of mutually relevant items.
//  * FinalizePairs() merges the two directions of each friendship into
//    an undirected FriendPair with weights w_e^c = tau(u,v,c) + tau(v,u,c),
//    the quantity every algorithm and the LP relaxation consume (a pair's
//    co-display yields both directed utilities at once).

#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace savg {

using ItemId = int32_t;
using SlotId = int32_t;

/// Sparse (item, value) entry; vectors of these are kept sorted by item.
struct ItemValue {
  ItemId item = 0;
  float value = 0.0f;
};

/// An unordered pair of friends with merged social weights.
struct FriendPair {
  UserId u = -1;
  UserId v = -1;
  EdgeId uv = -1;  ///< edge id of u -> v (-1 if absent)
  EdgeId vu = -1;  ///< edge id of v -> u (-1 if absent)
  /// w_e^c = tau(u,v,c) + tau(v,u,c), sparse, sorted by item.
  std::vector<ItemValue> weights;

  /// Weight for one item (binary search), 0 if absent.
  double WeightOf(ItemId c) const;
};

/// A full SVGIC instance.
class SvgicInstance {
 public:
  SvgicInstance() = default;
  SvgicInstance(SocialGraph graph, int num_items, int num_slots,
                double lambda);

  int num_users() const { return graph_.num_vertices(); }
  int num_items() const { return num_items_; }
  int num_slots() const { return num_slots_; }
  double lambda() const { return lambda_; }
  void set_lambda(double lambda) { lambda_ = lambda; }
  void set_num_slots(int k) { num_slots_ = k; }
  const SocialGraph& graph() const { return graph_; }

  /// Preference utility p(u, c).
  double p(UserId u, ItemId c) const {
    return preference_[static_cast<size_t>(u) * num_items_ + c];
  }
  void set_p(UserId u, ItemId c, double value) {
    preference_[static_cast<size_t>(u) * num_items_ + c] =
        static_cast<float>(value);
  }

  /// Scaled preference p'(u, c) = (1 - lambda)/lambda * p(u, c)
  /// (Section 4.4; requires lambda > 0). With this scaling every algorithm
  /// can run the lambda = 1/2 analysis unchanged.
  double ScaledP(UserId u, ItemId c) const {
    return (1.0 - lambda_) / lambda_ * p(u, c);
  }

  /// Social utility tau(u, v, c) for the directed edge id `e`.
  double TauOf(EdgeId e, ItemId c) const;
  /// Sets tau for a directed edge. Entries must be added before
  /// FinalizePairs(); unsorted inserts are permitted (sorted on finalize).
  void set_tau(EdgeId e, ItemId c, double value);
  /// Convenience: tau(u, v, c) via edge lookup; 0 when (u,v) not in E.
  double Tau(UserId u, UserId v, ItemId c) const;
  /// Raw sparse tau entries of a directed edge (sorted after finalize).
  const std::vector<ItemValue>& TauEntries(EdgeId e) const { return tau_[e]; }
  /// Multiplies every tau entry by `scale` (clamped to >= 0). Callers must
  /// re-run FinalizePairs() afterwards.
  void ScaleAllTau(double scale);

  /// Optional commodity values omega_c (extension A); empty = all 1.
  const std::vector<float>& commodity_values() const {
    return commodity_values_;
  }
  void set_commodity_values(std::vector<float> values) {
    commodity_values_ = std::move(values);
  }
  double CommodityOf(ItemId c) const {
    return commodity_values_.empty() ? 1.0 : commodity_values_[c];
  }

  /// Optional slot significances gamma_s (extension B); empty = all 1.
  const std::vector<float>& slot_weights() const { return slot_weights_; }
  void set_slot_weights(std::vector<float> weights) {
    slot_weights_ = std::move(weights);
  }
  double SlotWeightOf(SlotId s) const {
    return slot_weights_.empty() ? 1.0 : slot_weights_[s];
  }

  /// Merges directed tau entries into undirected FriendPairs. Must be
  /// called after all set_tau edits and before running algorithms.
  void FinalizePairs();

  // --- Online mutation API (src/online/) -----------------------------------
  //
  // These edits keep the instance usable between Resolve() calls of a live
  // session: ids stay dense and stable, and RefinalizePairs() updates only
  // the pairs incident to the touched users instead of rebuilding all of
  // pairs_ the way FinalizePairs() does.

  /// Appends a new user with zero preferences and no friendships; returns
  /// the new id. The instance stays finalized (an isolated user has no
  /// pairs).
  UserId AddUser();

  /// Adds the friendship {u, v} (both directed edges). New edges carry no
  /// tau until SetTauValue(); callers must RefinalizePairs() afterwards.
  Status AddFriendship(UserId u, UserId v);

  /// Sets tau(edge e, c) = value absolutely (unlike set_tau, which appends
  /// a to-be-merged entry). Maintains sorted entry order, so TauOf stays
  /// correct immediately; pair weights need RefinalizePairs().
  void SetTauValue(EdgeId e, ItemId c, double value);

  /// "User left": zeroes u's preference row and the tau of every edge
  /// incident to u. The vertex itself stays (dense ids remain valid); the
  /// user contributes nothing to the objective afterwards. Callers must
  /// RefinalizePairs() with u's neighbors marked dirty.
  void DeactivateUser(UserId u);

  /// Appends one item with zero preference/tau everywhere; returns its id.
  ItemId AddItem();

  /// "Item retired": zeroes p(*, c) and removes every tau entry for c.
  /// The item id stays valid (dense ids). Returns the users whose incident
  /// edges carried tau for c (the dirty set for RefinalizePairs()).
  std::vector<UserId> RetireItem(ItemId c);

  /// Incremental FinalizePairs(): recomputes the merged weights of only
  /// the pairs incident to `dirty_users` and absorbs edges added since the
  /// last (re)finalize, leaving every other pair untouched. Pair indices
  /// are stable: emptied pairs stay in place with no weights. Equivalent
  /// to FinalizePairs() when the dirty set covers every touched user.
  void RefinalizePairs(const std::vector<UserId>& dirty_users);

  const std::vector<FriendPair>& pairs() const { return pairs_; }
  /// Pair indices incident to user u.
  const std::vector<int>& PairsOfUser(UserId u) const {
    return pairs_of_user_[u];
  }

  /// Edges already represented in pairs_ (see RefinalizePairs). Exposed so
  /// the durability layer can serialize the exact finalize state.
  int finalized_edge_count() const { return finalized_edge_count_; }

  /// Restores an exact prior pair state (durability recovery). The pair
  /// ORDER of a live session evolves through RefinalizePairs() appends and
  /// can differ from what FinalizePairs() would build from scratch (an
  /// asymmetric edge whose reverse arrives later keeps its original pair
  /// slot), so recovery must restore the evolved order verbatim instead of
  /// re-finalizing. Rebuilds pairs_of_user_ and marks the instance
  /// finalized; `finalized_edge_count` must match the pairs' edge
  /// coverage.
  void RestoreFinalizedPairs(std::vector<FriendPair> pairs,
                             int finalized_edge_count);

  /// Structural sanity checks (sizes, ranges, non-negative utilities,
  /// lambda in [0,1], k <= m, pairs finalized).
  Status Validate() const;

  std::string DebugString() const;

 private:
  SocialGraph graph_;
  int num_items_ = 0;
  int num_slots_ = 0;
  double lambda_ = 0.5;
  std::vector<float> preference_;            // n x m
  std::vector<std::vector<ItemValue>> tau_;  // per directed edge, sparse
  std::vector<float> commodity_values_;      // optional, per item
  std::vector<float> slot_weights_;          // optional, per slot
  std::vector<FriendPair> pairs_;
  std::vector<std::vector<int>> pairs_of_user_;
  bool finalized_ = false;
  /// Edges already represented in pairs_ (prefix of edge ids); edges with
  /// id >= this are absorbed by the next RefinalizePairs().
  int finalized_edge_count_ = 0;

  /// Pair index of the unordered pair {u, v}, or -1.
  int FindPairIndex(UserId u, UserId v) const;
  /// Recomputes pair weights from the (sorted) tau of both directions.
  void RebuildPairWeights(FriendPair* pair) const;
};

}  // namespace savg
