#include "core/extensions.h"

#include <algorithm>
#include <numeric>
#include <set>

#include "lp/lp_model.h"
#include "lp/simplex.h"

namespace savg {

namespace {

double ScaledPref(const SvgicInstance& instance, UserId u, ItemId c) {
  return instance.lambda() > 0.0 ? instance.ScaledP(u, c) : instance.p(u, c);
}

}  // namespace

Result<SvgicInstance> FoldCommodityValues(const SvgicInstance& instance) {
  SAVG_RETURN_NOT_OK(instance.Validate());
  if (instance.commodity_values().empty()) {
    return Status::InvalidArgument("instance has no commodity values");
  }
  SvgicInstance folded(instance.graph(), instance.num_items(),
                       instance.num_slots(), instance.lambda());
  for (UserId u = 0; u < instance.num_users(); ++u) {
    for (ItemId c = 0; c < instance.num_items(); ++c) {
      const double p = instance.p(u, c);
      if (p > 0.0) folded.set_p(u, c, p * instance.CommodityOf(c));
    }
  }
  for (const Edge& e : instance.graph().edges()) {
    for (const ItemValue& iv : instance.TauEntries(e.id)) {
      if (iv.value > 0.0f) {
        folded.set_tau(e.id, iv.item,
                       iv.value * instance.CommodityOf(iv.item));
      }
    }
  }
  folded.set_slot_weights(std::vector<float>(instance.slot_weights()));
  folded.FinalizePairs();
  return folded;
}

Configuration OptimizeSlotOrder(const SvgicInstance& instance,
                                const Configuration& config) {
  const int k = instance.num_slots();
  // Realized scaled utility per slot, commodity-weighted so that the
  // ranking matches the extension-weighted objective being optimized.
  std::vector<double> value(k, 0.0);
  for (SlotId s = 0; s < k; ++s) {
    for (UserId u = 0; u < instance.num_users(); ++u) {
      const ItemId c = config.At(u, s);
      if (c != kNoItem) {
        value[s] += instance.CommodityOf(c) * ScaledPref(instance, u, c);
      }
    }
    for (const FriendPair& pair : instance.pairs()) {
      const ItemId cu = config.At(pair.u, s);
      if (cu != kNoItem && cu == config.At(pair.v, s)) {
        value[s] += instance.CommodityOf(cu) * pair.WeightOf(cu);
      }
    }
  }
  // Match slot ranked i-th by value to slot ranked i-th by gamma.
  std::vector<int> by_value(k), by_gamma(k);
  std::iota(by_value.begin(), by_value.end(), 0);
  std::iota(by_gamma.begin(), by_gamma.end(), 0);
  std::sort(by_value.begin(), by_value.end(),
            [&](int a, int b) { return value[a] > value[b]; });
  std::sort(by_gamma.begin(), by_gamma.end(), [&](int a, int b) {
    return instance.SlotWeightOf(a) > instance.SlotWeightOf(b);
  });
  std::vector<int> target(k);  // old slot -> new slot
  for (int i = 0; i < k; ++i) target[by_value[i]] = by_gamma[i];

  Configuration out(config.num_users(), k, config.num_items());
  for (UserId u = 0; u < config.num_users(); ++u) {
    for (SlotId s = 0; s < k; ++s) {
      const ItemId c = config.At(u, s);
      if (c != kNoItem) {
        Status st = out.Set(u, target[s], c);
        (void)st;
      }
    }
  }
  return out;
}

MultiViewConfig ExtendToMultiView(const SvgicInstance& instance,
                                  const Configuration& config, int beta) {
  const int k = instance.num_slots();
  const int n = instance.num_users();
  MultiViewConfig mv;
  mv.beta = std::max(1, beta);
  mv.views.assign(n, std::vector<std::vector<ItemId>>(k));

  // Track all items a user views anywhere (primary or group view).
  std::vector<std::set<ItemId>> viewed(n);
  for (UserId u = 0; u < n; ++u) {
    for (SlotId s = 0; s < k; ++s) {
      const ItemId c = config.At(u, s);
      if (c != kNoItem) {
        mv.views[u][s].push_back(c);
        viewed[u].insert(c);
      }
    }
  }
  if (mv.beta == 1) return mv;

  for (UserId u = 0; u < n; ++u) {
    for (SlotId s = 0; s < k; ++s) {
      // Candidates: friends' primary items at this slot.
      std::vector<std::pair<double, ItemId>> candidates;
      for (int pi : instance.PairsOfUser(u)) {
        const FriendPair& pair = instance.pairs()[pi];
        const UserId v = pair.u == u ? pair.v : pair.u;
        const ItemId c = config.At(v, s);
        if (c == kNoItem || viewed[u].count(c)) continue;
        double gain = ScaledPref(instance, u, c);
        // All friends whose primary view at s is c become co-viewers.
        for (int pj : instance.PairsOfUser(u)) {
          const FriendPair& pr = instance.pairs()[pj];
          const UserId w = pr.u == u ? pr.v : pr.u;
          if (config.At(w, s) == c) gain += pr.WeightOf(c);
        }
        candidates.emplace_back(gain, c);
      }
      std::sort(candidates.begin(), candidates.end(),
                [](const auto& a, const auto& b) {
                  if (a.first != b.first) return a.first > b.first;
                  return a.second < b.second;
                });
      for (const auto& [gain, c] : candidates) {
        if (static_cast<int>(mv.views[u][s].size()) >= mv.beta) break;
        if (gain <= 0.0 || viewed[u].count(c)) continue;
        mv.views[u][s].push_back(c);
        viewed[u].insert(c);
      }
    }
  }
  return mv;
}

double EvaluateMultiView(const SvgicInstance& instance,
                         const MultiViewConfig& mv) {
  double total = 0.0;
  for (UserId u = 0; u < instance.num_users(); ++u) {
    for (const auto& slot_views : mv.views[u]) {
      for (ItemId c : slot_views) total += ScaledPref(instance, u, c);
    }
  }
  // Social: a pair sharing item c in their view sets at a common slot
  // realizes w once per item.
  for (const FriendPair& pair : instance.pairs()) {
    for (const ItemValue& iv : pair.weights) {
      bool shared = false;
      for (SlotId s = 0; s < instance.num_slots() && !shared; ++s) {
        const auto& vu = mv.views[pair.u][s];
        const auto& vv = mv.views[pair.v][s];
        shared = std::find(vu.begin(), vu.end(), iv.item) != vu.end() &&
                 std::find(vv.begin(), vv.end(), iv.item) != vv.end();
      }
      if (shared) total += iv.value;
    }
  }
  return total;
}

Result<double> SolveMvdLpBound(const SvgicInstance& instance, int beta) {
  SAVG_RETURN_NOT_OK(instance.Validate());
  if (beta < 1) return Status::InvalidArgument("beta must be >= 1");
  if (instance.lambda() <= 0.0) {
    return Status::InvalidArgument("MVD LP requires lambda > 0");
  }
  const int n = instance.num_users();
  const int m = instance.num_items();
  const int k = instance.num_slots();
  LpModel lp;
  lp.SetMaximize(true);
  // w_{u,s,c}: u can see c in some view at slot s (carries preference).
  std::vector<int> w(static_cast<size_t>(n) * k * m);
  auto W = [&](UserId u, SlotId s, ItemId c) -> int& {
    return w[(static_cast<size_t>(u) * k + s) * m + c];
  };
  // x_{u,s,c}: c is u's primary view at slot s (no duplicate primaries).
  std::vector<int> x(static_cast<size_t>(n) * k * m);
  auto X = [&](UserId u, SlotId s, ItemId c) -> int& {
    return x[(static_cast<size_t>(u) * k + s) * m + c];
  };
  for (UserId u = 0; u < n; ++u) {
    for (SlotId s = 0; s < k; ++s) {
      for (ItemId c = 0; c < m; ++c) {
        W(u, s, c) = lp.AddVariable(0.0, 1.0, instance.ScaledP(u, c));
        X(u, s, c) = lp.AddVariable(0.0, 1.0, 0.0);
      }
    }
  }
  for (UserId u = 0; u < n; ++u) {
    for (SlotId s = 0; s < k; ++s) {
      // (11): exactly one primary view; (12): at most beta views.
      std::vector<LpTerm> primary, views;
      for (ItemId c = 0; c < m; ++c) {
        primary.push_back({X(u, s, c), 1.0});
        views.push_back({W(u, s, c), 1.0});
        // (13): the primary is viewable.
        lp.AddRow(RowType::kLessEqual, 0.0,
                  {{X(u, s, c), 1.0}, {W(u, s, c), -1.0}});
      }
      lp.AddRow(RowType::kEqual, 1.0, std::move(primary));
      lp.AddRow(RowType::kLessEqual, static_cast<double>(beta),
                std::move(views));
    }
    // (14): primaries not replicated across slots; we also keep total
    // views of an item <= 1 (our MVD keeps views duplicate-free).
    for (ItemId c = 0; c < m; ++c) {
      std::vector<LpTerm> row;
      for (SlotId s = 0; s < k; ++s) row.push_back({W(u, s, c), 1.0});
      lp.AddRow(RowType::kLessEqual, 1.0, std::move(row));
    }
  }
  // Pairwise co-view variables per (pair, weight entry, slot).
  for (const FriendPair& pair : instance.pairs()) {
    for (const ItemValue& iv : pair.weights) {
      for (SlotId s = 0; s < k; ++s) {
        const int y = lp.AddVariable(0.0, 1.0, iv.value);
        lp.AddRow(RowType::kLessEqual, 0.0,
                  {{y, 1.0}, {W(pair.u, s, iv.item), -1.0}});
        lp.AddRow(RowType::kLessEqual, 0.0,
                  {{y, 1.0}, {W(pair.v, s, iv.item), -1.0}});
      }
    }
  }
  auto sol = SolveLp(lp);
  if (!sol.ok()) return sol.status();
  return sol->objective;
}

double EvaluateGroupwise(const SvgicInstance& instance,
                         const Configuration& config, double saturation) {
  double total = 0.0;
  for (UserId u = 0; u < instance.num_users(); ++u) {
    for (SlotId s = 0; s < instance.num_slots(); ++s) {
      const ItemId c = config.At(u, s);
      if (c != kNoItem) total += ScaledPref(instance, u, c);
    }
  }
  auto saturate = [&](double g) {
    return (1.0 + saturation) * g / (g + saturation);
  };
  for (SlotId s = 0; s < instance.num_slots(); ++s) {
    for (const auto& group : config.GroupsAtSlot(s)) {
      const int g = static_cast<int>(group.members.size());
      if (g < 2) continue;
      const double factor = saturate(static_cast<double>(g - 1)) / (g - 1);
      for (UserId u : group.members) {
        for (UserId v : group.members) {
          if (u == v) continue;
          total += factor * instance.Tau(u, v, group.item);
        }
      }
    }
  }
  return total;
}

Configuration MinimizeSubgroupChange(const SvgicInstance& instance,
                                     const Configuration& config) {
  const int k = instance.num_slots();
  // Co-display pair sets per slot.
  std::vector<std::vector<bool>> together(
      k, std::vector<bool>(instance.pairs().size(), false));
  for (SlotId s = 0; s < k; ++s) {
    for (size_t pi = 0; pi < instance.pairs().size(); ++pi) {
      const FriendPair& pair = instance.pairs()[pi];
      const ItemId cu = config.At(pair.u, s);
      together[s][pi] = cu != kNoItem && cu == config.At(pair.v, s);
    }
  }
  auto distance = [&](int a, int b) {
    int d = 0;
    for (size_t pi = 0; pi < instance.pairs().size(); ++pi) {
      if (together[a][pi] != together[b][pi]) ++d;
    }
    return d;
  };
  // Greedy nearest-neighbor chaining.
  std::vector<int> order;
  std::vector<bool> used(k, false);
  order.push_back(0);
  used[0] = true;
  while (static_cast<int>(order.size()) < k) {
    const int last = order.back();
    int best = -1, best_d = 1 << 30;
    for (int s = 0; s < k; ++s) {
      if (used[s]) continue;
      const int d = distance(last, s);
      if (d < best_d) {
        best_d = d;
        best = s;
      }
    }
    order.push_back(best);
    used[best] = true;
  }
  Configuration out(config.num_users(), k, config.num_items());
  for (int pos = 0; pos < k; ++pos) {
    const int src = order[pos];
    for (UserId u = 0; u < config.num_users(); ++u) {
      const ItemId c = config.At(u, src);
      if (c != kNoItem) {
        Status st = out.Set(u, pos, c);
        (void)st;
      }
    }
  }
  return out;
}

DynamicSession::DynamicSession(SvgicInstance instance, Configuration config)
    : instance_(std::move(instance)),
      config_(std::move(config)),
      active_(instance_.num_users(), true) {}

Result<UserId> DynamicSession::UserJoin(
    const std::vector<float>& preference,
    const std::vector<NewUserTie>& ties) {
  const int old_n = instance_.num_users();
  const int m = instance_.num_items();
  const int k = instance_.num_slots();
  if (static_cast<int>(preference.size()) != m) {
    return Status::InvalidArgument("preference row has wrong size");
  }
  const UserId nu = old_n;
  for (const NewUserTie& tie : ties) {
    if (tie.other < 0 || tie.other >= old_n || !active_[tie.other]) {
      return Status::InvalidArgument("tie to unknown/inactive user");
    }
  }
  // Rebuild the graph with one extra vertex; old edge ids are preserved by
  // identical insertion order, so old tau entries copy over by id.
  SocialGraph graph2(old_n + 1);
  for (const Edge& e : instance_.graph().edges()) {
    auto r = graph2.AddEdge(e.u, e.v);
    if (!r.ok()) return r.status();
  }
  std::vector<std::pair<EdgeId, const std::vector<ItemValue>*>> new_taus;
  for (const NewUserTie& tie : ties) {
    auto r = graph2.AddEdge(nu, tie.other);
    if (r.ok()) new_taus.emplace_back(*r, &tie.tau_out);
    auto r2 = graph2.AddEdge(tie.other, nu);
    if (r2.ok()) new_taus.emplace_back(*r2, &tie.tau_in);
  }
  SvgicInstance rebuilt(graph2, m, k, instance_.lambda());
  for (UserId u = 0; u < old_n; ++u) {
    for (ItemId c = 0; c < m; ++c) {
      const double p = instance_.p(u, c);
      if (p > 0.0) rebuilt.set_p(u, c, p);
    }
  }
  for (ItemId c = 0; c < m; ++c) {
    if (preference[c] > 0.0f) rebuilt.set_p(nu, c, preference[c]);
  }
  for (const Edge& e : instance_.graph().edges()) {
    for (const ItemValue& iv : instance_.TauEntries(e.id)) {
      if (iv.value > 0.0f) rebuilt.set_tau(e.id, iv.item, iv.value);
    }
  }
  for (const auto& [eid, taus] : new_taus) {
    for (const ItemValue& iv : *taus) {
      if (iv.value > 0.0f) rebuilt.set_tau(eid, iv.item, iv.value);
    }
  }
  rebuilt.FinalizePairs();
  SAVG_RETURN_NOT_OK(rebuilt.Validate());

  // Grow the configuration.
  Configuration grown(old_n + 1, k, m);
  for (UserId u = 0; u < old_n; ++u) {
    for (SlotId s = 0; s < k; ++s) {
      const ItemId c = config_.At(u, s);
      if (c != kNoItem) SAVG_RETURN_NOT_OK(grown.Set(u, s, c));
    }
  }
  instance_ = std::move(rebuilt);
  config_ = std::move(grown);
  active_.push_back(true);

  // Greedy slot-by-slot assignment for the newcomer: best undisplayed item
  // by scaled preference + realized pair weight with same-slot viewers.
  for (SlotId s = 0; s < k; ++s) {
    ItemId best = kNoItem;
    double best_gain = -1.0;
    for (ItemId c = 0; c < m; ++c) {
      if (config_.Displays(nu, c)) continue;
      double gain = ScaledPref(instance_, nu, c);
      for (int pi : instance_.PairsOfUser(nu)) {
        const FriendPair& pair = instance_.pairs()[pi];
        const UserId v = pair.u == nu ? pair.v : pair.u;
        if (active_[v] && config_.At(v, s) == c) gain += pair.WeightOf(c);
      }
      if (gain > best_gain) {
        best_gain = gain;
        best = c;
      }
    }
    SAVG_RETURN_NOT_OK(config_.Set(nu, s, best));
  }
  return nu;
}

Status DynamicSession::UserLeave(UserId u) {
  if (u < 0 || u >= instance_.num_users() || !active_[u]) {
    return Status::InvalidArgument("unknown or inactive user");
  }
  for (SlotId s = 0; s < instance_.num_slots(); ++s) config_.Unset(u, s);
  active_[u] = false;
  return Status::OK();
}

double DynamicSession::CurrentScaledTotal() const {
  double total = 0.0;
  for (UserId u = 0; u < instance_.num_users(); ++u) {
    if (!active_[u]) continue;
    for (SlotId s = 0; s < instance_.num_slots(); ++s) {
      const ItemId c = config_.At(u, s);
      if (c != kNoItem) total += ScaledPref(instance_, u, c);
    }
  }
  for (const FriendPair& pair : instance_.pairs()) {
    if (!active_[pair.u] || !active_[pair.v]) continue;
    for (const ItemValue& iv : pair.weights) {
      const SlotId su = config_.SlotOf(pair.u, iv.item);
      if (su != kNoSlot && config_.At(pair.v, su) == iv.item) {
        total += iv.value;
      }
    }
  }
  return total;
}

}  // namespace savg
