// Practical-scenario extensions of Section 5.
//
//  A. Commodity values: maximize profit-weighted utility. Implemented by
//     folding omega_c into p and tau (an exact transform: every occurrence
//     of item c in the objective is scaled by omega_c), so AVG/AVG-D run
//     unchanged on the weighted instance and keep their guarantees.
//  B. Layout slot significance: gamma_s weights per slot. Since the core
//     objective is slot-symmetric, any configuration can be post-processed
//     by a *global* slot permutation (which preserves all co-displays) that
//     assigns high-value slots the highest realized utility.
//  C. Multi-View Display: up to beta items per (user, slot); a primary view
//     (the base configuration) plus group views added greedily by marginal
//     utility from joining friends' primary items.
//  D. Generalized (group-wise) social benefits: an evaluator where u's
//     social utility from a maximal co-display group V saturates with the
//     group size, tau(u, V, c) = sum_{v in V cap N(u)} tau(u,v,c) *
//     s(|V|), with a concave saturation s.
//  E. Subgroup change: the edit-distance metric lives in metrics.h; here a
//     local search reorders slots globally to minimize total change (slot
//     permutations leave the SVGIC objective untouched).
//  F. Dynamic scenario: incremental join/leave maintaining a valid
//     configuration without re-running the full pipeline.

#pragma once

#include <vector>

#include "core/configuration.h"
#include "core/fractional_solution.h"
#include "core/objective.h"
#include "core/problem.h"
#include "util/status.h"

namespace savg {

/// Extension A: returns a copy of the instance with p(u,c) *= omega_c and
/// tau(u,v,c) *= omega_c, so optimizing the plain objective on the result
/// optimizes the commodity-weighted objective on the original.
Result<SvgicInstance> FoldCommodityValues(const SvgicInstance& instance);

/// Extension B: globally permutes slots so that slots with larger gamma_s
/// carry the larger realized (scaled) utility. Returns the permuted
/// configuration; the plain objective value is unchanged, the
/// slot-weighted objective is maximized over global slot permutations.
Configuration OptimizeSlotOrder(const SvgicInstance& instance,
                                const Configuration& config);

/// Extension C: multi-view display. views[u][s] holds 1..beta items, the
/// first being the primary view A(u, s).
struct MultiViewConfig {
  int beta = 1;
  std::vector<std::vector<std::vector<ItemId>>> views;  // [u][s][view]
};

/// Greedily adds up to beta-1 group views per (u, s): candidate items are
/// friends' primary items at s (not displayed to u anywhere), ranked by the
/// scaled marginal utility. No item repeats across a user's views.
MultiViewConfig ExtendToMultiView(const SvgicInstance& instance,
                                  const Configuration& config, int beta);

/// Scaled total of a multi-view configuration: every viewable item yields
/// preference utility; a friend pair sharing an item in their view sets of
/// the same slot yields social utility.
double EvaluateMultiView(const SvgicInstance& instance,
                         const MultiViewConfig& mv);

/// LP relaxation of the Section 5 MVD integer program (constraints 11-19),
/// restricted to pairwise social benefit (the paper's group-wise y_V
/// variables are exponential in |V|): variables x (primary view), w (any
/// view, <= beta per slot), y (pair co-view). Its optimum upper-bounds any
/// multi-view configuration with beta views, so it certifies the greedy
/// ExtendToMultiView. Returns the scaled objective bound.
Result<double> SolveMvdLpBound(const SvgicInstance& instance, int beta);

/// Extension D: group-wise social utility with concave saturation
/// s(g) = (1 + saturation) * g / (g + saturation) applied to the per-group
/// member count g (s(1) ~ 1, monotone, bounded): u's social utility from
/// its maximal co-display group V at slot s is
/// s(|V|-1)/(|V|-1) * sum_{v in V cap N(u)} tau(u,v,c).
double EvaluateGroupwise(const SvgicInstance& instance,
                         const Configuration& config, double saturation);

/// Extension E: reorders slots globally (greedy chaining) to minimize the
/// subgroup-change edit distance between consecutive slots.
Configuration MinimizeSubgroupChange(const SvgicInstance& instance,
                                     const Configuration& config);

/// Extension F: an incremental session over a changing shopping group.
class DynamicSession {
 public:
  /// Starts from a solved instance/configuration.
  DynamicSession(SvgicInstance instance, Configuration config);

  const SvgicInstance& instance() const { return instance_; }
  const Configuration& config() const { return config_; }

  /// Adds a user with the given preference row and directed social ties
  /// (tau entries to/from existing users), then greedily assigns her k
  /// items by marginal scaled utility (joining existing groups when
  /// profitable). Returns the new user id.
  struct NewUserTie {
    UserId other;
    std::vector<ItemValue> tau_out;  ///< tau(new, other, .)
    std::vector<ItemValue> tau_in;   ///< tau(other, new, .)
  };
  Result<UserId> UserJoin(const std::vector<float>& preference,
                          const std::vector<NewUserTie>& ties);

  /// Removes a user (her units become unassigned; social utility with her
  /// disappears). The user id remains allocated but inert.
  Status UserLeave(UserId u);

  bool IsActive(UserId u) const { return active_[u]; }
  /// Scaled total over active users only.
  double CurrentScaledTotal() const;

 private:
  SvgicInstance instance_;
  Configuration config_;
  std::vector<bool> active_;
};

}  // namespace savg
