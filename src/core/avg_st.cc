#include "core/avg_st.h"

#include "lp/simplex.h"

namespace savg {

Result<FractionalSolution> SolveStRelaxation(const SvgicInstance& instance,
                                             const StOptions& options,
                                             const LpBasis* warm_start) {
  if (options.size_cap < 1) {
    return Status::InvalidArgument("size cap must be >= 1");
  }
  if (!options.use_st_lp) {
    return SolveRelaxation(instance, options.relaxation, warm_start);
  }
  ExpandedLpMap map;
  auto lp = BuildStLp(instance, options.d_tel, options.size_cap, &map);
  if (!lp.ok()) return lp.status();
  auto sol = SolveLp(*lp, options.relaxation.simplex, warm_start);
  if (!sol.ok()) return sol.status();
  FractionalSolution frac;
  frac.num_users = instance.num_users();
  frac.num_items = instance.num_items();
  frac.num_slots = instance.num_slots();
  frac.x.assign(
      static_cast<size_t>(frac.num_users) * frac.num_items, 0.0);
  for (UserId u = 0; u < frac.num_users; ++u) {
    for (ItemId c = 0; c < frac.num_items; ++c) {
      double acc = 0.0;
      for (SlotId s = 0; s < frac.num_slots; ++s) {
        acc += sol->x[map.XVar(u, s, c)];
      }
      frac.x[static_cast<size_t>(u) * frac.num_items + c] = acc;
    }
  }
  frac.lp_objective = sol->objective;
  frac.exact = true;
  frac.solve_seconds = sol->solve_seconds;
  frac.simplex_iterations = sol->iterations;
  frac.warm_started = sol->warm_started;
  frac.lp_stats = sol->stats;
  frac.lp_basis = std::move(sol->basis);
  frac.BuildSupporters(options.relaxation.prune_tolerance);
  return frac;
}

Result<AvgResult> RunAvgSt(const SvgicInstance& instance,
                           const StOptions& options) {
  auto frac = SolveStRelaxation(instance, options);
  if (!frac.ok()) return frac.status();
  AvgOptions avg = options.avg;
  avg.size_cap = options.size_cap;
  return RunAvgBest(instance, *frac, std::max(1, options.avg_repeats), avg);
}

}  // namespace savg
