// Post-rounding local search refinement.
//
// CSF rounding carries the approximation guarantee; a cheap hill-climbing
// pass on top never hurts and often recovers the last few percent the
// randomized variant leaves on the table (AVG-D typically needs none).
// Moves considered:
//
//  * reassign: change A(u, s) to any eligible item (including joining an
//    existing co-display group at that slot),
//  * swap: exchange A(u, s) and A(u, s') when that aligns u with different
//    groups at both slots.
//
// Both moves preserve completeness, the no-duplication constraint, and —
// when a size cap is given — ST feasibility. The search is deterministic
// (first-improvement over a fixed scan order, repeated until a sweep makes
// no progress or the sweep budget is exhausted).

#pragma once

#include "core/configuration.h"
#include "core/csf.h"
#include "core/problem.h"
#include "util/status.h"

namespace savg {

struct LocalSearchOptions {
  int max_sweeps = 8;
  /// Subgroup size cap to respect (kNoSizeCap = plain SVGIC).
  int size_cap = CsfState::kNoSizeCap;
  /// Minimum scaled-utility gain for a move to be taken.
  double min_gain = 1e-9;
};

struct LocalSearchResult {
  Configuration config;
  int moves_taken = 0;
  int sweeps = 0;
  double initial_value = 0.0;  ///< scaled total before
  double final_value = 0.0;    ///< scaled total after
};

/// Improves a complete configuration in place (copy returned). The input
/// must satisfy CheckValid(); the output does too.
Result<LocalSearchResult> ImproveByLocalSearch(
    const SvgicInstance& instance, const Configuration& config,
    const LocalSearchOptions& options = {});

}  // namespace savg
