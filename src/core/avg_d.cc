#include "core/avg_d.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <unordered_set>

#include "util/logging.h"

namespace savg {

namespace {

constexpr double kNegInf = -1e300;

struct CandidateScore {
  double score = kNegInf;  ///< ALG(S_tar) - r * Delta_fut(S_tar)
  double alpha = 0.0;      ///< threshold realizing the score
  int members = 0;         ///< |S_tar| at the best threshold
};

/// Heap entry ordered by (score desc, candidate id asc).
struct HeapEntry {
  double score;
  int cand;
  int64_t version;
};
struct HeapOrder {
  bool operator()(const HeapEntry& a, const HeapEntry& b) const {
    if (a.score != b.score) return a.score < b.score;
    return a.cand > b.cand;
  }
};

class AvgDWorker {
 public:
  AvgDWorker(const SvgicInstance& instance, const FractionalSolution& frac,
             const AvgDOptions& options)
      : instance_(instance),
        frac_(frac),
        opt_(options),
        state_(instance, frac),
        k_(instance.num_slots()) {}

  Result<AvgDResult> Run() {
    Timer timer;
    Precompute();
    AvgDResult result;
    const auto& active = frac_.active_items();
    const int num_candidates = static_cast<int>(active.size()) * k_;
    versions_.assign(num_candidates, 0);

    std::priority_queue<HeapEntry, std::vector<HeapEntry>, HeapOrder> heap;
    auto push_candidate = [&](int cand) {
      const CandidateScore cs =
          ScoreCandidate(active[cand / k_], cand % k_);
      if (cs.members > 0) {
        heap.push({cs.score, cand, versions_[cand]});
      }
    };
    for (int cand = 0; cand < num_candidates; ++cand) push_candidate(cand);

    int64_t iterations = 0;
    std::vector<UserId> assigned;
    while (!state_.Complete() && iterations++ < opt_.max_iterations) {
      int cand = -1;
      if (opt_.incremental) {
        while (!heap.empty()) {
          const HeapEntry top = heap.top();
          if (top.version != versions_[top.cand]) {
            heap.pop();
            continue;
          }
          cand = top.cand;
          heap.pop();
          break;
        }
      } else {
        // Full rescan (reference implementation for equivalence tests).
        double best = kNegInf;
        for (int i = 0; i < num_candidates; ++i) {
          const CandidateScore cs = ScoreCandidate(active[i / k_], i % k_);
          if (cs.members > 0 && cs.score > best) {
            best = cs.score;
            cand = i;
          }
        }
      }
      if (cand < 0) break;  // nothing assignable; completion pass

      const ItemId c = active[cand / k_];
      const SlotId s = cand % k_;
      const CandidateScore cs = ScoreCandidate(c, s);
      if (cs.members == 0) {
        ++versions_[cand];
        continue;
      }
      assigned.clear();
      const int count = state_.ApplyCsf(c, s, cs.alpha, &assigned);
      if (count == 0) {
        ++versions_[cand];
        continue;
      }
      ++result.csf_iterations;

      if (opt_.incremental) {
        InvalidateAfterAssignment(c, s, assigned, &heap, push_candidate);
      }
    }
    state_.GreedyComplete();
    result.config = state_.TakeConfig();
    result.rounding_seconds = timer.ElapsedSeconds();
    return result;
  }

 private:
  void Precompute() {
    const int n = instance_.num_users();
    const double social_scale = instance_.lambda() > 0.0 ? 1.0 : 0.0;
    p_mass_.assign(n, 0.0);
    for (UserId u = 0; u < n; ++u) {
      for (ItemId c : frac_.ItemsOfUser(u)) {
        p_mass_[u] += EffectiveP(u, c) * frac_.XCompact(u, c);
      }
    }
    w_mass_.assign(instance_.pairs().size(), 0.0);
    for (size_t pi = 0; pi < instance_.pairs().size(); ++pi) {
      const FriendPair& pair = instance_.pairs()[pi];
      double acc = 0.0;
      for (const ItemValue& iv : pair.weights) {
        acc += iv.value * std::min(frac_.XCompact(pair.u, iv.item),
                                   frac_.XCompact(pair.v, iv.item));
      }
      w_mass_[pi] = social_scale * acc;
    }
    in_star_stamp_.assign(n, 0);
    stamp_ = 0;
  }

  double EffectiveP(UserId u, ItemId c) const {
    return instance_.lambda() > 0.0 ? instance_.ScaledP(u, c)
                                    : instance_.p(u, c);
  }

  /// Walks the supporter prefix of (c, s) and returns the best threshold.
  /// Tie groups (equal factors) are treated atomically: a threshold can
  /// only sit at a tie-group boundary.
  CandidateScore ScoreCandidate(ItemId c, SlotId s) {
    CandidateScore best;
    const auto& sups = frac_.SupportersOf(c);
    const double social_scale = instance_.lambda() > 0.0 ? 1.0 : 0.0;
    ++stamp_;
    double alg = 0.0;
    double delta = 0.0;
    int members = 0;
    size_t i = 0;
    while (i < sups.size()) {
      // Tie group [i, j).
      size_t j = i;
      const double x = sups[i].x;
      while (j < sups.size() && sups[j].x == x) ++j;
      for (size_t t = i; t < j; ++t) {
        const UserId u = sups[t].user;
        if (!state_.Eligible(u, c, s)) continue;
        // ALG gain: preference plus social weight to current members.
        alg += EffectiveP(u, c);
        double pair_gain = 0.0;
        double fut_loss = p_mass_[u] / k_;
        for (int pi : instance_.PairsOfUser(u)) {
          const FriendPair& pair = instance_.pairs()[pi];
          const UserId v = pair.u == u ? pair.v : pair.u;
          if (in_star_stamp_[v] == stamp_) {
            pair_gain += pair.WeightOf(c);
          } else if (state_.config().At(v, s) == c) {
            // v already co-displays the focal item at this slot from an
            // earlier iteration: joining realizes that edge too.
            pair_gain += pair.WeightOf(c);
          } else if (state_.config().At(v, s) == kNoItem) {
            fut_loss += w_mass_[pi] / k_;
          }
        }
        alg += social_scale * pair_gain;
        delta += fut_loss;
        in_star_stamp_[u] = stamp_;
        ++members;
      }
      const double score = alg - opt_.r * delta;
      if (members > 0 && score > best.score) {
        best.score = score;
        best.alpha = x / k_;
        best.members = members;
      }
      i = j;
    }
    return best;
  }

  template <typename PushFn>
  void InvalidateAfterAssignment(
      ItemId c, SlotId s, const std::vector<UserId>& users,
      std::priority_queue<HeapEntry, std::vector<HeapEntry>, HeapOrder>* heap,
      PushFn&& push_candidate) {
    (void)heap;
    const auto& active = frac_.active_items();
    const int num_active = static_cast<int>(active.size());
    // Dense active index per item (reuse the fractional ordering).
    if (active_index_.empty()) {
      active_index_.assign(instance_.num_items(), -1);
      for (int i = 0; i < num_active; ++i) active_index_[active[i]] = i;
    }
    std::unordered_set<int> dirty;
    // (c, every slot): no-duplication eligibility changed for `users`.
    const int ci = active_index_[c];
    for (SlotId t = 0; t < k_; ++t) dirty.insert(ci * k_ + t);
    // (every item supported by users or their partners, slot s): slot
    // occupancy and pair-emptiness changed.
    auto mark_user_items = [&](UserId u) {
      for (ItemId item : frac_.ItemsOfUser(u)) {
        dirty.insert(active_index_[item] * k_ + s);
      }
    };
    for (UserId u : users) {
      mark_user_items(u);
      for (int pi : instance_.PairsOfUser(u)) {
        const FriendPair& pair = instance_.pairs()[pi];
        mark_user_items(pair.u == u ? pair.v : pair.u);
      }
    }
    for (int cand : dirty) {
      ++versions_[cand];
      push_candidate(cand);
    }
  }

  const SvgicInstance& instance_;
  const FractionalSolution& frac_;
  const AvgDOptions opt_;
  CsfState state_;
  const int k_;

  std::vector<double> p_mass_;  ///< P_u = sum_c p'(u,c) x_u^c
  std::vector<double> w_mass_;  ///< W_e = sum_c w_e^c min(x_u^c, x_v^c)
  std::vector<int64_t> versions_;
  std::vector<int> active_index_;
  std::vector<int64_t> in_star_stamp_;
  int64_t stamp_ = 0;
};

}  // namespace

Result<AvgDResult> RunAvgD(const SvgicInstance& instance,
                           const FractionalSolution& frac,
                           const AvgDOptions& options) {
  if (!frac.HasSupporters()) {
    return Status::InvalidArgument(
        "fractional solution lacks supporter lists");
  }
  if (options.r < 0.0) {
    return Status::InvalidArgument("balancing ratio r must be >= 0");
  }
  AvgDWorker worker(instance, frac, options);
  return worker.Run();
}

}  // namespace savg
