// Plain-text (TSV) persistence for SVGIC instances and configurations.
//
// Format (one record per line, sections in fixed order, '#' comments):
//
//   svgic <version>
//   dims <n> <m> <k> <lambda>
//   edge <u> <v>                      (directed; repeated)
//   p <u> <c> <value>                 (nonzero preferences; repeated)
//   tau <edge_index> <c> <value>      (edge_index = insertion order)
//   commodity <c> <value>             (optional)
//   slotweight <s> <value>            (optional)
//   end
//
// Configurations:
//
//   savgconfig <version>
//   dims <n> <k> <m>
//   a <u> <s> <c>                     (assigned units; repeated)
//   end
//
// Rationale: the paper's inputs are (graph, p, tau, lambda, k) — a stable,
// diffable text format makes experiments reproducible and lets the CLI
// tool round external instances.

#pragma once

#include <iosfwd>
#include <string>

#include "core/configuration.h"
#include "core/problem.h"
#include "util/status.h"

namespace savg {

/// Serializes an instance (pairs need not be finalized; tau entries are
/// written in edge-id order).
Status WriteInstance(const SvgicInstance& instance, std::ostream* out);
Status WriteInstanceToFile(const SvgicInstance& instance,
                           const std::string& path);

/// Parses an instance; FinalizePairs() is called before returning.
Result<SvgicInstance> ReadInstance(std::istream* in);
Result<SvgicInstance> ReadInstanceFromFile(const std::string& path);

Status WriteConfiguration(const Configuration& config, std::ostream* out);
Status WriteConfigurationToFile(const Configuration& config,
                                const std::string& path);
Result<Configuration> ReadConfiguration(std::istream* in);
Result<Configuration> ReadConfigurationFromFile(const std::string& path);

}  // namespace savg
