#include "core/configuration.h"

#include <map>
#include <sstream>

namespace savg {

Configuration::Configuration(int num_users, int num_slots, int num_items)
    : num_users_(num_users),
      num_slots_(num_slots),
      num_items_(num_items),
      num_unassigned_(num_users * num_slots),
      assign_(static_cast<size_t>(num_users) * num_slots, kNoItem),
      slot_of_(static_cast<size_t>(num_users) * num_items, kNoSlot) {}

Status Configuration::Set(UserId u, SlotId s, ItemId c) {
  if (u < 0 || u >= num_users_ || s < 0 || s >= num_slots_ || c < 0 ||
      c >= num_items_) {
    return Status::OutOfRange("Set(u, s, c) argument out of range");
  }
  if (At(u, s) != kNoItem) {
    return Status::AlreadyExists("display unit already assigned");
  }
  if (SlotOf(u, c) != kNoSlot) {
    return Status::InvalidArgument(
        "no-duplication violation: item already displayed to user");
  }
  assign_[static_cast<size_t>(u) * num_slots_ + s] = c;
  slot_of_[static_cast<size_t>(u) * num_items_ + c] = s;
  --num_unassigned_;
  return Status::OK();
}

void Configuration::Unset(UserId u, SlotId s) {
  ItemId& cell = assign_[static_cast<size_t>(u) * num_slots_ + s];
  if (cell == kNoItem) return;
  slot_of_[static_cast<size_t>(u) * num_items_ + cell] = kNoSlot;
  cell = kNoItem;
  ++num_unassigned_;
}

std::vector<ItemId> Configuration::ItemsOf(UserId u) const {
  std::vector<ItemId> items(num_slots_);
  for (SlotId s = 0; s < num_slots_; ++s) items[s] = At(u, s);
  return items;
}

std::vector<Configuration::SlotGroup> Configuration::GroupsAtSlot(
    SlotId s) const {
  std::map<ItemId, std::vector<UserId>> by_item;
  for (UserId u = 0; u < num_users_; ++u) {
    const ItemId c = At(u, s);
    if (c != kNoItem) by_item[c].push_back(u);
  }
  std::vector<SlotGroup> groups;
  groups.reserve(by_item.size());
  for (auto& [item, members] : by_item) {
    groups.push_back({item, std::move(members)});
  }
  return groups;
}

Status Configuration::CheckValid() const {
  if (!IsComplete()) {
    return Status::InvalidArgument(
        "configuration incomplete: " + std::to_string(num_unassigned_) +
        " units unassigned");
  }
  for (UserId u = 0; u < num_users_; ++u) {
    std::vector<bool> seen(num_items_, false);
    for (SlotId s = 0; s < num_slots_; ++s) {
      const ItemId c = At(u, s);
      if (c < 0 || c >= num_items_) {
        return Status::OutOfRange("invalid item id in configuration");
      }
      if (seen[c]) {
        return Status::InvalidArgument("duplicate item for user " +
                                       std::to_string(u));
      }
      seen[c] = true;
      if (SlotOf(u, c) != s) {
        return Status::Unknown("slot_of index out of sync");
      }
    }
  }
  return Status::OK();
}

std::string Configuration::DebugString() const {
  std::ostringstream os;
  for (UserId u = 0; u < num_users_; ++u) {
    os << "u" << u << ": <";
    for (SlotId s = 0; s < num_slots_; ++s) {
      os << (s ? ", " : "");
      const ItemId c = At(u, s);
      if (c == kNoItem) {
        os << "-";
      } else {
        os << "c" << c;
      }
    }
    os << ">\n";
  }
  return os.str();
}

}  // namespace savg
