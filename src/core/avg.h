// AVG: Alignment-aware VR subGroup formation (Section 4.2, Algorithms 2
// and 4) — the randomized 4-approximation for SVGIC.
//
// Pipeline: solve the LP relaxation (lp_formulation.h), then repeat CSF
// with randomly sampled focal parameters (c, s, alpha) until the SAVG
// k-Configuration is complete.
//
// Two sampling schemes are provided:
//  * advanced (default; Section 4.4, Observation 3): sample (c, s)
//    proportional to the maximum eligible utility factor and alpha uniform
//    below it, so every accepted draw assigns at least one user;
//  * original (the `-AS` ablation of Figure 9(b)): sample (c, s) uniformly
//    over active items x slots and alpha uniform in [0, 1]; draws whose
//    alpha exceeds every eligible factor are idle.
//
// RunAvgBest implements Corollary 4.1 (repeat and keep the best). The size
// cap parameter turns the rounding into the SVGIC-ST variant (see avg_st.h
// for the end-to-end ST entry point).

#pragma once

#include <cstdint>

#include "core/configuration.h"
#include "core/csf.h"
#include "core/fractional_solution.h"
#include "core/problem.h"
#include "util/status.h"

namespace savg {

struct AvgOptions {
  uint64_t seed = 1;
  /// Advanced focal-parameter sampling (false = original scheme, used by
  /// the Figure 9(b) "-AS" ablation).
  bool advanced_sampling = true;
  /// Subgroup size cap M; CsfState::kNoSizeCap disables (plain SVGIC).
  int size_cap = CsfState::kNoSizeCap;
  /// Safety valve on sampling iterations (counts idle draws too).
  int64_t max_iterations = 50'000'000;
};

struct AvgResult {
  Configuration config;
  int64_t csf_iterations = 0;   ///< accepted CSF applications
  int64_t idle_iterations = 0;  ///< rejected/idle draws
  double rounding_seconds = 0.0;
};

/// One randomized rounding run over a solved relaxation.
Result<AvgResult> RunAvg(const SvgicInstance& instance,
                         const FractionalSolution& frac,
                         const AvgOptions& options = {});

/// The CSF sampling loop + greedy completion on a caller-prepared rounding
/// state; RunAvg is this over a fresh state. The online serving layer
/// (src/online/session.h) pre-assigns the units it keeps from the previous
/// configuration, so sampling only fills the dirty users' units (their
/// slots are the only eligible ones left). Consumes the state
/// (TakeConfig).
Result<AvgResult> RunCsfSampling(CsfState* state,
                                 const AvgOptions& options = {});

/// Corollary 4.1: `repeats` independent runs, keep the configuration with
/// the best scaled total.
Result<AvgResult> RunAvgBest(const SvgicInstance& instance,
                             const FractionalSolution& frac, int repeats,
                             const AvgOptions& options = {});

struct IndependentRoundingOptions {
  uint64_t seed = 1;
  /// Re-draw on duplicate items so the output is a valid configuration
  /// (false reproduces the raw Algorithm 1 whose output may violate
  /// no-duplication; violations are then resolved by greedy completion and
  /// counted in the result).
  bool repair_duplicates = true;
};

struct IndependentRoundingResult {
  Configuration config;
  int64_t duplicate_draws = 0;  ///< draws that hit the no-dup constraint
};

/// Algorithm 1, the trivial independent rounding scheme (Lemma 3 shows it
/// loses a factor m of social utility). Kept as a measurable strawman.
Result<IndependentRoundingResult> RunIndependentRounding(
    const SvgicInstance& instance, const FractionalSolution& frac,
    const IndependentRoundingOptions& options = {});

}  // namespace savg
