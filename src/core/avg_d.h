// AVG-D: Deterministic Alignment-aware VR Subgroup Formation (Section 4.3,
// Algorithm 3) — the derandomized worst-case 4-approximation.
//
// Each iteration selects the focal parameters (c, s, alpha = x*_{u,s}^c)
// maximizing
//     f(c, s, alpha) = ALG(S_tar) + r * OPT_LP(S_fut),
// the sum of the immediately realized SAVG utility and r times the expected
// LP utility of the remaining display units (r = 1/4 gives the proof's
// bound; Section 6.7 studies other r).
//
// Implementation notes (this is the performance-critical engineering):
//  * OPT_LP(S_cur) decomposes into per-user masses P_u = sum_c p' x_u^c and
//    per-pair masses W_e = sum_c w_e^c min(x_u^c, x_v^c), each divided by k
//    per display unit, because the compact solution is slot-uniform. Hence
//    f differs from ALG - r * Delta(S_tar) by a candidate-independent
//    constant, and AVG-D only compares ALG - r * Delta.
//  * Candidates are (active item, slot) pairs; the best threshold for a
//    candidate is found by walking its supporter list once.
//  * A lazy max-heap with version counters re-scores only candidates whose
//    dependencies changed after each CSF application; the `incremental`
//    flag can be disabled to cross-check against full re-scoring.

#pragma once

#include "core/configuration.h"
#include "core/csf.h"
#include "core/fractional_solution.h"
#include "core/problem.h"
#include "util/status.h"

namespace savg {

struct AvgDOptions {
  /// Balancing ratio between current gain and future LP mass.
  double r = 0.25;
  /// Use the lazy-invalidation heap (false = full rescan per iteration,
  /// used in equivalence tests).
  bool incremental = true;
  int64_t max_iterations = 10'000'000;
};

struct AvgDResult {
  Configuration config;
  int64_t csf_iterations = 0;
  double rounding_seconds = 0.0;
};

/// One deterministic rounding run over a solved relaxation.
Result<AvgDResult> RunAvgD(const SvgicInstance& instance,
                           const FractionalSolution& frac,
                           const AvgDOptions& options = {});

}  // namespace savg
