// Social Event Organization (SEO) as an application of SVGIC-ST
// (Section 4.4, "Supporting Social Event Organization").
//
// SEO assigns each attendee of an event-based social network to a series of
// events (one per time slot) maximizing attendance preference plus the
// social benefit of attending together with friends, under per-event
// capacity constraints. The mapping to SVGIC-ST:
//   events        -> items,
//   time slots    -> display slots,
//   capacities    -> per-item subgroup size caps,
//   "attend with" -> co-display.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/configuration.h"
#include "core/problem.h"
#include "util/status.h"

namespace savg {

/// An SEO problem: a social network of attendees, events with capacities,
/// per-(user, event) interest and per-(user, friend, event) joint benefit.
struct SeoProblem {
  SocialGraph network;
  int num_events = 0;
  int num_time_slots = 1;
  double lambda = 0.5;
  std::vector<int> capacity;  ///< per event; <= 0 means unlimited
  /// interest[u * num_events + e].
  std::vector<float> interest;
  /// Joint benefit entries per directed edge (who enjoys whose company).
  std::vector<std::vector<ItemValue>> joint_benefit;  // by EdgeId
  std::vector<std::string> event_names;               ///< optional
};

struct SeoAssignment {
  /// schedule[u][t] = event attended by u at time slot t.
  std::vector<std::vector<int>> schedule;
  double scaled_objective = 0.0;
  bool capacity_feasible = true;
};

struct SeoOptions {
  uint64_t seed = 1;
  int avg_repeats = 3;
};

/// Converts an SEO problem into an SVGIC instance (for callers that want
/// direct access to the full toolchain).
Result<SvgicInstance> SeoToSvgic(const SeoProblem& problem);

/// Solves SEO with the AVG-ST pipeline (capacity-capped CSF).
Result<SeoAssignment> SolveSeo(const SeoProblem& problem,
                               const SeoOptions& options = {});

}  // namespace savg
