#include "core/problem.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace savg {

namespace {

/// Binary search in a sorted ItemValue vector.
double LookupItem(const std::vector<ItemValue>& values, ItemId c) {
  auto it = std::lower_bound(
      values.begin(), values.end(), c,
      [](const ItemValue& iv, ItemId item) { return iv.item < item; });
  if (it != values.end() && it->item == c) return it->value;
  return 0.0;
}

/// Sorts by item and merges duplicates by summation.
void SortAndMerge(std::vector<ItemValue>* values) {
  std::sort(values->begin(), values->end(),
            [](const ItemValue& a, const ItemValue& b) {
              return a.item < b.item;
            });
  size_t out = 0;
  for (size_t i = 0; i < values->size();) {
    size_t j = i;
    float acc = 0.0f;
    while (j < values->size() && (*values)[j].item == (*values)[i].item) {
      acc += (*values)[j].value;
      ++j;
    }
    (*values)[out++] = {(*values)[i].item, acc};
    i = j;
  }
  values->resize(out);
}

}  // namespace

double FriendPair::WeightOf(ItemId c) const { return LookupItem(weights, c); }

SvgicInstance::SvgicInstance(SocialGraph graph, int num_items, int num_slots,
                             double lambda)
    : graph_(std::move(graph)),
      num_items_(num_items),
      num_slots_(num_slots),
      lambda_(lambda),
      preference_(static_cast<size_t>(graph_.num_vertices()) * num_items,
                  0.0f),
      tau_(graph_.num_edges()) {}

double SvgicInstance::TauOf(EdgeId e, ItemId c) const {
  return LookupItem(tau_[e], c);
}

void SvgicInstance::set_tau(EdgeId e, ItemId c, double value) {
  tau_[e].push_back({c, static_cast<float>(value)});
  finalized_ = false;
}

double SvgicInstance::Tau(UserId u, UserId v, ItemId c) const {
  const EdgeId e = graph_.FindEdge(u, v);
  return e >= 0 ? TauOf(e, c) : 0.0;
}

void SvgicInstance::ScaleAllTau(double scale) {
  scale = std::max(0.0, scale);
  for (auto& entries : tau_) {
    for (ItemValue& iv : entries) {
      iv.value = static_cast<float>(iv.value * scale);
    }
  }
  finalized_ = false;
}

void SvgicInstance::FinalizePairs() {
  for (auto& entries : tau_) SortAndMerge(&entries);
  pairs_.clear();
  pairs_of_user_.assign(num_users(), {});
  for (const Edge& e : graph_.edges()) {
    // Process each unordered pair once, from its canonical direction: the
    // direction with u < v, or the only direction present.
    const EdgeId reverse = graph_.FindEdge(e.v, e.u);
    if (reverse >= 0 && e.u > e.v) continue;
    FriendPair pair;
    pair.u = std::min(e.u, e.v);
    pair.v = std::max(e.u, e.v);
    const EdgeId forward = e.id;
    pair.uv = e.u == pair.u ? forward : reverse;
    pair.vu = e.u == pair.u ? reverse : forward;
    // Merge sparse weights of both directions.
    if (pair.uv >= 0) {
      pair.weights.insert(pair.weights.end(), tau_[pair.uv].begin(),
                          tau_[pair.uv].end());
    }
    if (pair.vu >= 0) {
      pair.weights.insert(pair.weights.end(), tau_[pair.vu].begin(),
                          tau_[pair.vu].end());
    }
    SortAndMerge(&pair.weights);
    // Drop zero weights to keep iteration tight.
    pair.weights.erase(
        std::remove_if(pair.weights.begin(), pair.weights.end(),
                       [](const ItemValue& iv) { return iv.value == 0.0f; }),
        pair.weights.end());
    const int idx = static_cast<int>(pairs_.size());
    pairs_.push_back(std::move(pair));
    pairs_of_user_[pairs_.back().u].push_back(idx);
    pairs_of_user_[pairs_.back().v].push_back(idx);
  }
  finalized_ = true;
  finalized_edge_count_ = graph_.num_edges();
}

void SvgicInstance::RestoreFinalizedPairs(std::vector<FriendPair> pairs,
                                          int finalized_edge_count) {
  pairs_ = std::move(pairs);
  pairs_of_user_.assign(num_users(), {});
  for (size_t pi = 0; pi < pairs_.size(); ++pi) {
    // Index rebuild in pair order matches how FinalizePairs /
    // RefinalizePairs append, so PairsOfUser iteration order is identical
    // to the captured session's.
    pairs_of_user_[pairs_[pi].u].push_back(static_cast<int>(pi));
    pairs_of_user_[pairs_[pi].v].push_back(static_cast<int>(pi));
  }
  finalized_ = true;
  finalized_edge_count_ = finalized_edge_count;
}

UserId SvgicInstance::AddUser() {
  const UserId id = graph_.AddVertex();
  preference_.resize(static_cast<size_t>(graph_.num_vertices()) * num_items_,
                     0.0f);
  if (static_cast<int>(pairs_of_user_.size()) < graph_.num_vertices()) {
    pairs_of_user_.resize(graph_.num_vertices());
  }
  return id;
}

Status SvgicInstance::AddFriendship(UserId u, UserId v) {
  SAVG_RETURN_NOT_OK(graph_.AddUndirectedEdge(u, v));
  tau_.resize(graph_.num_edges());
  return Status::OK();
}

void SvgicInstance::SetTauValue(EdgeId e, ItemId c, double value) {
  auto& entries = tau_[e];
  auto it = std::lower_bound(
      entries.begin(), entries.end(), c,
      [](const ItemValue& iv, ItemId item) { return iv.item < item; });
  if (it != entries.end() && it->item == c) {
    it->value = static_cast<float>(value);
  } else {
    entries.insert(it, {c, static_cast<float>(value)});
  }
}

void SvgicInstance::DeactivateUser(UserId u) {
  std::fill(preference_.begin() + static_cast<size_t>(u) * num_items_,
            preference_.begin() + static_cast<size_t>(u + 1) * num_items_,
            0.0f);
  for (EdgeId e : graph_.OutEdgeIds(u)) tau_[e].clear();
  for (UserId v : graph_.InNeighbors(u)) {
    const EdgeId e = graph_.FindEdge(v, u);
    if (e >= 0) tau_[e].clear();
  }
}

ItemId SvgicInstance::AddItem() {
  const int n = num_users();
  const int old_m = num_items_;
  std::vector<float> grown(static_cast<size_t>(n) * (old_m + 1), 0.0f);
  for (int u = 0; u < n; ++u) {
    std::copy(preference_.begin() + static_cast<size_t>(u) * old_m,
              preference_.begin() + static_cast<size_t>(u + 1) * old_m,
              grown.begin() + static_cast<size_t>(u) * (old_m + 1));
  }
  preference_ = std::move(grown);
  ++num_items_;
  if (!commodity_values_.empty()) commodity_values_.push_back(1.0f);
  return num_items_ - 1;
}

std::vector<UserId> SvgicInstance::RetireItem(ItemId c) {
  for (UserId u = 0; u < num_users(); ++u) {
    preference_[static_cast<size_t>(u) * num_items_ + c] = 0.0f;
  }
  std::vector<UserId> dirty;
  for (const Edge& e : graph_.edges()) {
    auto& entries = tau_[e.id];
    const size_t before = entries.size();
    entries.erase(std::remove_if(entries.begin(), entries.end(),
                                 [c](const ItemValue& iv) {
                                   return iv.item == c;
                                 }),
                  entries.end());
    if (entries.size() != before) {
      dirty.push_back(e.u);
      dirty.push_back(e.v);
    }
  }
  std::sort(dirty.begin(), dirty.end());
  dirty.erase(std::unique(dirty.begin(), dirty.end()), dirty.end());
  return dirty;
}

int SvgicInstance::FindPairIndex(UserId u, UserId v) const {
  const UserId lo = std::min(u, v);
  const UserId hi = std::max(u, v);
  if (lo < 0 || hi >= static_cast<int>(pairs_of_user_.size())) return -1;
  for (int pi : pairs_of_user_[lo]) {
    if (pairs_[pi].u == lo && pairs_[pi].v == hi) return pi;
  }
  return -1;
}

void SvgicInstance::RebuildPairWeights(FriendPair* pair) const {
  pair->weights.clear();
  if (pair->uv >= 0) {
    pair->weights.insert(pair->weights.end(), tau_[pair->uv].begin(),
                         tau_[pair->uv].end());
  }
  if (pair->vu >= 0) {
    pair->weights.insert(pair->weights.end(), tau_[pair->vu].begin(),
                         tau_[pair->vu].end());
  }
  SortAndMerge(&pair->weights);
  pair->weights.erase(
      std::remove_if(pair->weights.begin(), pair->weights.end(),
                     [](const ItemValue& iv) { return iv.value == 0.0f; }),
      pair->weights.end());
}

void SvgicInstance::RefinalizePairs(const std::vector<UserId>& dirty_users) {
  if (static_cast<int>(pairs_of_user_.size()) < num_users()) {
    pairs_of_user_.resize(num_users());
  }
  std::vector<char> touched(pairs_.size(), 0);
  // Absorb edges added since the last (re)finalize: attach each to its
  // existing pair (a reverse direction added later) or open a new pair.
  for (EdgeId id = finalized_edge_count_; id < graph_.num_edges(); ++id) {
    const Edge& e = graph_.edge(id);
    SortAndMerge(&tau_[id]);
    int pi = FindPairIndex(e.u, e.v);
    if (pi < 0) {
      FriendPair pair;
      pair.u = std::min(e.u, e.v);
      pair.v = std::max(e.u, e.v);
      pi = static_cast<int>(pairs_.size());
      pairs_.push_back(std::move(pair));
      pairs_of_user_[pairs_[pi].u].push_back(pi);
      pairs_of_user_[pairs_[pi].v].push_back(pi);
      touched.push_back(1);
    } else {
      touched[pi] = 1;
    }
    if (e.u == pairs_[pi].u) {
      pairs_[pi].uv = id;
    } else {
      pairs_[pi].vu = id;
    }
  }
  finalized_edge_count_ = graph_.num_edges();
  for (UserId u : dirty_users) {
    if (u < 0 || u >= static_cast<int>(pairs_of_user_.size())) continue;
    for (int pi : pairs_of_user_[u]) touched[pi] = 1;
  }
  for (size_t pi = 0; pi < pairs_.size(); ++pi) {
    if (!touched[pi]) continue;
    FriendPair& pair = pairs_[pi];
    if (pair.uv >= 0) SortAndMerge(&tau_[pair.uv]);
    if (pair.vu >= 0) SortAndMerge(&tau_[pair.vu]);
    RebuildPairWeights(&pair);
  }
  finalized_ = true;
}

Status SvgicInstance::Validate() const {
  if (num_items_ <= 0) return Status::InvalidArgument("num_items must be > 0");
  if (num_slots_ <= 0) return Status::InvalidArgument("num_slots must be > 0");
  if (num_slots_ > num_items_) {
    return Status::InvalidArgument(
        "num_slots > num_items: the no-duplication constraint is "
        "unsatisfiable");
  }
  if (lambda_ < 0.0 || lambda_ > 1.0) {
    return Status::InvalidArgument("lambda must be in [0, 1]");
  }
  if (preference_.size() !=
      static_cast<size_t>(num_users()) * num_items_) {
    return Status::InvalidArgument("preference matrix has wrong size");
  }
  for (float v : preference_) {
    if (v < 0.0f || std::isnan(v)) {
      return Status::InvalidArgument("preference utilities must be >= 0");
    }
  }
  for (const auto& entries : tau_) {
    for (const ItemValue& iv : entries) {
      if (iv.item < 0 || iv.item >= num_items_) {
        return Status::OutOfRange("tau entry references unknown item");
      }
      if (iv.value < 0.0f || std::isnan(iv.value)) {
        return Status::InvalidArgument("social utilities must be >= 0");
      }
    }
  }
  if (!commodity_values_.empty() &&
      static_cast<int>(commodity_values_.size()) != num_items_) {
    return Status::InvalidArgument("commodity_values size mismatch");
  }
  if (!slot_weights_.empty() &&
      static_cast<int>(slot_weights_.size()) != num_slots_) {
    return Status::InvalidArgument("slot_weights size mismatch");
  }
  if (!finalized_) {
    return Status::InvalidArgument(
        "FinalizePairs() must be called before use");
  }
  return Status::OK();
}

std::string SvgicInstance::DebugString() const {
  std::ostringstream os;
  os << "SvgicInstance(n=" << num_users() << ", m=" << num_items_
     << ", k=" << num_slots_ << ", lambda=" << lambda_
     << ", pairs=" << pairs_.size() << ")";
  return os.str();
}

}  // namespace savg
