#include "core/problem.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace savg {

namespace {

/// Binary search in a sorted ItemValue vector.
double LookupItem(const std::vector<ItemValue>& values, ItemId c) {
  auto it = std::lower_bound(
      values.begin(), values.end(), c,
      [](const ItemValue& iv, ItemId item) { return iv.item < item; });
  if (it != values.end() && it->item == c) return it->value;
  return 0.0;
}

/// Sorts by item and merges duplicates by summation.
void SortAndMerge(std::vector<ItemValue>* values) {
  std::sort(values->begin(), values->end(),
            [](const ItemValue& a, const ItemValue& b) {
              return a.item < b.item;
            });
  size_t out = 0;
  for (size_t i = 0; i < values->size();) {
    size_t j = i;
    float acc = 0.0f;
    while (j < values->size() && (*values)[j].item == (*values)[i].item) {
      acc += (*values)[j].value;
      ++j;
    }
    (*values)[out++] = {(*values)[i].item, acc};
    i = j;
  }
  values->resize(out);
}

}  // namespace

double FriendPair::WeightOf(ItemId c) const { return LookupItem(weights, c); }

SvgicInstance::SvgicInstance(SocialGraph graph, int num_items, int num_slots,
                             double lambda)
    : graph_(std::move(graph)),
      num_items_(num_items),
      num_slots_(num_slots),
      lambda_(lambda),
      preference_(static_cast<size_t>(graph_.num_vertices()) * num_items,
                  0.0f),
      tau_(graph_.num_edges()) {}

double SvgicInstance::TauOf(EdgeId e, ItemId c) const {
  return LookupItem(tau_[e], c);
}

void SvgicInstance::set_tau(EdgeId e, ItemId c, double value) {
  tau_[e].push_back({c, static_cast<float>(value)});
  finalized_ = false;
}

double SvgicInstance::Tau(UserId u, UserId v, ItemId c) const {
  const EdgeId e = graph_.FindEdge(u, v);
  return e >= 0 ? TauOf(e, c) : 0.0;
}

void SvgicInstance::ScaleAllTau(double scale) {
  scale = std::max(0.0, scale);
  for (auto& entries : tau_) {
    for (ItemValue& iv : entries) {
      iv.value = static_cast<float>(iv.value * scale);
    }
  }
  finalized_ = false;
}

void SvgicInstance::FinalizePairs() {
  for (auto& entries : tau_) SortAndMerge(&entries);
  pairs_.clear();
  pairs_of_user_.assign(num_users(), {});
  for (const Edge& e : graph_.edges()) {
    // Process each unordered pair once, from its canonical direction: the
    // direction with u < v, or the only direction present.
    const EdgeId reverse = graph_.FindEdge(e.v, e.u);
    if (reverse >= 0 && e.u > e.v) continue;
    FriendPair pair;
    pair.u = std::min(e.u, e.v);
    pair.v = std::max(e.u, e.v);
    const EdgeId forward = e.id;
    pair.uv = e.u == pair.u ? forward : reverse;
    pair.vu = e.u == pair.u ? reverse : forward;
    // Merge sparse weights of both directions.
    if (pair.uv >= 0) {
      pair.weights.insert(pair.weights.end(), tau_[pair.uv].begin(),
                          tau_[pair.uv].end());
    }
    if (pair.vu >= 0) {
      pair.weights.insert(pair.weights.end(), tau_[pair.vu].begin(),
                          tau_[pair.vu].end());
    }
    SortAndMerge(&pair.weights);
    // Drop zero weights to keep iteration tight.
    pair.weights.erase(
        std::remove_if(pair.weights.begin(), pair.weights.end(),
                       [](const ItemValue& iv) { return iv.value == 0.0f; }),
        pair.weights.end());
    const int idx = static_cast<int>(pairs_.size());
    pairs_.push_back(std::move(pair));
    pairs_of_user_[pairs_.back().u].push_back(idx);
    pairs_of_user_[pairs_.back().v].push_back(idx);
  }
  finalized_ = true;
}

Status SvgicInstance::Validate() const {
  if (num_items_ <= 0) return Status::InvalidArgument("num_items must be > 0");
  if (num_slots_ <= 0) return Status::InvalidArgument("num_slots must be > 0");
  if (num_slots_ > num_items_) {
    return Status::InvalidArgument(
        "num_slots > num_items: the no-duplication constraint is "
        "unsatisfiable");
  }
  if (lambda_ < 0.0 || lambda_ > 1.0) {
    return Status::InvalidArgument("lambda must be in [0, 1]");
  }
  if (preference_.size() !=
      static_cast<size_t>(num_users()) * num_items_) {
    return Status::InvalidArgument("preference matrix has wrong size");
  }
  for (float v : preference_) {
    if (v < 0.0f || std::isnan(v)) {
      return Status::InvalidArgument("preference utilities must be >= 0");
    }
  }
  for (const auto& entries : tau_) {
    for (const ItemValue& iv : entries) {
      if (iv.item < 0 || iv.item >= num_items_) {
        return Status::OutOfRange("tau entry references unknown item");
      }
      if (iv.value < 0.0f || std::isnan(iv.value)) {
        return Status::InvalidArgument("social utilities must be >= 0");
      }
    }
  }
  if (!commodity_values_.empty() &&
      static_cast<int>(commodity_values_.size()) != num_items_) {
    return Status::InvalidArgument("commodity_values size mismatch");
  }
  if (!slot_weights_.empty() &&
      static_cast<int>(slot_weights_.size()) != num_slots_) {
    return Status::InvalidArgument("slot_weights size mismatch");
  }
  if (!finalized_) {
    return Status::InvalidArgument(
        "FinalizePairs() must be called before use");
  }
  return Status::OK();
}

std::string SvgicInstance::DebugString() const {
  std::ostringstream os;
  os << "SvgicInstance(n=" << num_users() << ", m=" << num_items_
     << ", k=" << num_slots_ << ", lambda=" << lambda_
     << ", pairs=" << pairs_.size() << ")";
  return os.str();
}

}  // namespace savg
