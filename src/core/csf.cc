#include "core/csf.h"

#include <algorithm>
#include <cassert>

namespace savg {

SampleTree::SampleTree(int size)
    : size_(size), tree_(size + 1, 0.0), weights_(size, 0.0) {}

void SampleTree::Set(int index, double weight) {
  weight = std::max(0.0, weight);
  const double delta = weight - weights_[index];
  if (delta == 0.0) return;
  weights_[index] = weight;
  total_ += delta;
  for (int i = index + 1; i <= size_; i += i & (-i)) tree_[i] += delta;
}

int SampleTree::Sample(Rng* rng) const {
  if (total_ <= 0.0) return -1;
  double target = rng->Uniform() * total_;
  int pos = 0;
  int step = 1;
  while (2 * step <= size_) step *= 2;
  for (; step > 0; step /= 2) {
    const int next = pos + step;
    if (next <= size_ && tree_[next] < target) {
      target -= tree_[next];
      pos = next;
    }
  }
  // pos is now the count of prefix bins whose cumulative weight < target.
  int idx = std::min(pos, size_ - 1);
  // Guard against zero-weight bins at the boundary (floating point resid).
  while (idx > 0 && weights_[idx] <= 0.0) --idx;
  if (weights_[idx] <= 0.0) {
    for (idx = 0; idx < size_ && weights_[idx] <= 0.0; ++idx) {
    }
    if (idx >= size_) return -1;
  }
  return idx;
}

CsfState::CsfState(const SvgicInstance& instance,
                   const FractionalSolution& frac, int size_cap)
    : instance_(&instance),
      frac_(&frac),
      config_(instance.num_users(), instance.num_slots(),
              instance.num_items()),
      size_cap_(size_cap) {
  assert(frac.HasSupporters() && "call BuildSupporters() first");
  active_index_of_item_.assign(instance.num_items(), -1);
  const auto& active = frac.active_items();
  for (size_t i = 0; i < active.size(); ++i) {
    active_index_of_item_[active[i]] = static_cast<int>(i);
  }
  group_size_.assign(active.size() * instance.num_slots(), 0);
}

int CsfState::GroupIndex(ItemId c, SlotId s) const {
  const int ai = active_index_of_item_[c];
  if (ai < 0) return -1;
  return ai * instance_->num_slots() + s;
}

int CsfState::GroupSize(ItemId c, SlotId s) const {
  const int gi = GroupIndex(c, s);
  if (gi < 0) {
    const auto it = inactive_group_size_.find(
        static_cast<int64_t>(c) * instance_->num_slots() + s);
    return it == inactive_group_size_.end() ? 0 : it->second;
  }
  return group_size_[gi];
}

void CsfState::BumpGroup(ItemId c, SlotId s) {
  const int gi = GroupIndex(c, s);
  if (gi >= 0) {
    ++group_size_[gi];
  } else {
    ++inactive_group_size_[static_cast<int64_t>(c) * instance_->num_slots() +
                           s];
  }
}

int CsfState::ApplyCsf(ItemId c, SlotId s, double alpha,
                       std::vector<UserId>* assigned_users) {
  const int gi = GroupIndex(c, s);
  if (gi < 0) return 0;
  const int cap = CapOf(c);
  int room = cap == kNoSizeCap ? std::numeric_limits<int>::max()
                               : cap - group_size_[gi];
  if (room <= 0) return 0;
  int assigned = 0;
  // Supporters are sorted descending by factor, so under a size cap the
  // highest-factor eligible users are admitted first (ST extension).
  for (const Supporter& sup : frac_->SupportersOf(c)) {
    const double factor = sup.x / frac_->num_slots;
    if (factor < alpha) break;  // sorted: no further supporter qualifies
    if (!Eligible(sup.user, c, s)) continue;
    Status st = config_.Set(sup.user, s, c);
    assert(st.ok());
    (void)st;
    ++group_size_[gi];
    ++assigned;
    if (assigned_users != nullptr) assigned_users->push_back(sup.user);
    if (--room <= 0) break;
  }
  return assigned;
}

Status CsfState::AssignUnit(UserId u, SlotId s, ItemId c) {
  if (!Eligible(u, c, s)) {
    return Status::InvalidArgument("user not eligible for (c, s)");
  }
  if (CapOf(c) != kNoSizeCap && GroupSize(c, s) >= CapOf(c)) {
    return Status::ResourceExhausted("subgroup size cap reached");
  }
  SAVG_RETURN_NOT_OK(config_.Set(u, s, c));
  BumpGroup(c, s);
  return Status::OK();
}

double CsfState::FreshMaxFactor(ItemId c, SlotId s) const {
  const int gi = GroupIndex(c, s);
  if (gi < 0) return 0.0;
  if (CapOf(c) != kNoSizeCap && group_size_[gi] >= CapOf(c)) return 0.0;
  for (const Supporter& sup : frac_->SupportersOf(c)) {
    if (Eligible(sup.user, c, s)) return sup.x / frac_->num_slots;
  }
  return 0.0;
}

void CsfState::GreedyComplete() {
  const int m = instance_->num_items();
  const int k = instance_->num_slots();
  for (UserId u = 0; u < config_.num_users(); ++u) {
    for (SlotId s = 0; s < k; ++s) {
      if (config_.At(u, s) != kNoItem) continue;
      // Best undisplayed item with group room: prefer joining an existing
      // nonempty group (ties the residual user into some co-display),
      // break ties by scaled preference.
      ItemId best = kNoItem;
      double best_score = -1.0;
      for (ItemId c = 0; c < m; ++c) {
        if (config_.Displays(u, c)) continue;
        const int size = GroupSize(c, s);
        if (CapOf(c) != kNoSizeCap && size >= CapOf(c)) continue;
        const double pref =
            instance_->lambda() > 0.0 ? instance_->ScaledP(u, c)
                                      : instance_->p(u, c);
        const double score = pref + (size > 0 ? 1e-6 : 0.0);
        if (score > best_score) {
          best_score = score;
          best = c;
        }
      }
      if (best == kNoItem) {
        // Every item either displayed or capped; fall back to any
        // undisplayed item ignoring the 1e-6 bonus (must exist: m >= k and
        // caps cannot block all m - k + 1 candidates unless n >> m * cap,
        // in which case the instance itself is infeasible).
        for (ItemId c = 0; c < m; ++c) {
          if (!config_.Displays(u, c)) {
            best = c;
            break;
          }
        }
      }
      if (best != kNoItem) {
        Status st = config_.Set(u, s, best);
        assert(st.ok());
        (void)st;
        BumpGroup(best, s);
      }
    }
  }
}

}  // namespace savg
