#include "core/seo.h"

#include <algorithm>

#include "core/avg.h"
#include "core/csf.h"
#include "core/lp_formulation.h"
#include "core/objective.h"

namespace savg {

Result<SvgicInstance> SeoToSvgic(const SeoProblem& problem) {
  if (problem.num_events < problem.num_time_slots) {
    return Status::InvalidArgument(
        "need at least one distinct event per time slot");
  }
  if (static_cast<int>(problem.interest.size()) !=
      problem.network.num_vertices() * problem.num_events) {
    return Status::InvalidArgument("interest matrix has wrong size");
  }
  SvgicInstance instance(problem.network, problem.num_events,
                         problem.num_time_slots, problem.lambda);
  for (UserId u = 0; u < problem.network.num_vertices(); ++u) {
    for (int e = 0; e < problem.num_events; ++e) {
      const float v = problem.interest[u * problem.num_events + e];
      if (v > 0.0f) instance.set_p(u, e, v);
    }
  }
  for (EdgeId e = 0; e < problem.network.num_edges(); ++e) {
    if (e < static_cast<EdgeId>(problem.joint_benefit.size())) {
      for (const ItemValue& iv : problem.joint_benefit[e]) {
        if (iv.value > 0.0f) instance.set_tau(e, iv.item, iv.value);
      }
    }
  }
  instance.FinalizePairs();
  SAVG_RETURN_NOT_OK(instance.Validate());
  return instance;
}

Result<SeoAssignment> SolveSeo(const SeoProblem& problem,
                               const SeoOptions& options) {
  SAVG_ASSIGN_OR_RETURN(SvgicInstance instance, SeoToSvgic(problem));
  SAVG_ASSIGN_OR_RETURN(FractionalSolution frac, SolveRelaxation(instance));

  // Per-event capacity caps (kNoSizeCap where unlimited).
  std::vector<int> caps(problem.num_events, CsfState::kNoSizeCap);
  bool any_cap = false;
  for (int e = 0;
       e < std::min<int>(problem.num_events,
                         static_cast<int>(problem.capacity.size()));
       ++e) {
    if (problem.capacity[e] > 0) {
      caps[e] = problem.capacity[e];
      any_cap = true;
    }
  }

  Rng seeder(options.seed);
  SeoAssignment best;
  double best_value = -1.0;
  for (int rep = 0; rep < std::max(1, options.avg_repeats); ++rep) {
    CsfState state(instance, frac,
                   any_cap ? CsfState::kNoSizeCap : CsfState::kNoSizeCap);
    if (any_cap) state.SetItemCaps(caps);
    // Randomized CSF with advanced sampling (inline loop, since the state
    // carries SEO-specific caps).
    Rng rng(seeder.Next());
    const auto& active = frac.active_items();
    const int k = instance.num_slots();
    SampleTree tree(static_cast<int>(active.size()) * k);
    for (size_t ai = 0; ai < active.size(); ++ai) {
      const auto& sups = frac.SupportersOf(active[ai]);
      const double top = sups.empty() ? 0.0 : sups.front().x / k;
      for (SlotId s = 0; s < k; ++s) {
        tree.Set(static_cast<int>(ai) * k + s, top);
      }
    }
    int64_t guard = 0;
    while (!state.Complete() && tree.total() > 1e-15 && guard++ < 5000000) {
      const int cand = tree.Sample(&rng);
      if (cand < 0) break;
      const ItemId c = active[cand / k];
      const SlotId s = cand % k;
      const double stale = tree.Get(cand);
      const double alpha = rng.Uniform() * stale;
      const double fresh = state.FreshMaxFactor(c, s);
      if (alpha > fresh) {
        tree.Set(cand, fresh);
        continue;
      }
      state.ApplyCsf(c, s, alpha);
      tree.Set(cand, state.FreshMaxFactor(c, s));
    }
    state.GreedyComplete();
    Configuration config = state.TakeConfig();
    const double value = Evaluate(instance, config).ScaledTotal();
    if (value > best_value) {
      best_value = value;
      best.schedule.assign(instance.num_users(),
                           std::vector<int>(k, -1));
      for (UserId u = 0; u < instance.num_users(); ++u) {
        for (SlotId s = 0; s < k; ++s) best.schedule[u][s] = config.At(u, s);
      }
      best.scaled_objective = value;
      best.capacity_feasible =
          !any_cap || [&]() {
            for (SlotId s = 0; s < k; ++s) {
              for (const auto& group : config.GroupsAtSlot(s)) {
                if (caps[group.item] != CsfState::kNoSizeCap &&
                    static_cast<int>(group.members.size()) >
                        caps[group.item]) {
                  return false;
                }
              }
            }
            return true;
          }();
    }
  }
  if (best_value < 0.0) return Status::Unknown("SEO solve produced nothing");
  return best;
}

}  // namespace savg
