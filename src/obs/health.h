// Windowed health rule engine: turns time-series metrics into an
// ok/degraded/unhealthy verdict with reasons.
//
// ServeServer evaluates the monitor once per metrics capture window
// against the one-window aggregate; the verdict is served at GET /health
// and polled by `svgic_cli top`. Rules fire on windowed signals (rates
// and per-window quantiles), never lifetime counters, so a server that
// shed requests an hour ago reads healthy now.
//
// Hysteresis: leaving `ok` takes `degrade_after` consecutive bad windows
// and returning takes `recover_after` consecutive clean ones, so one
// noisy window cannot flap the verdict. The exception is a
// self-verification failure (verify.fail incremented), which trips
// `unhealthy` immediately — a served infeasible answer is never noise —
// though recovery still follows the normal clean-window path.
//
// Verdict transitions are logged as structured `health.transition`
// events for log-based alerting.

#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "metrics/timeseries.h"

namespace savg {

enum class HealthLevel { kOk, kDegraded, kUnhealthy };

const char* HealthLevelName(HealthLevel level);

struct HealthOptions {
  /// Shed requests per second before the shed rule fires.
  double shed_rate_threshold = 5.0;
  /// Admission queue capacity; 0 disables the saturation rule. The rule
  /// fires when the windowed max queue depth exceeds
  /// `queue_saturation_fraction` of this.
  int64_t queue_capacity = 0;
  double queue_saturation_fraction = 0.9;
  /// Slow-trace records (obs/tracer.h threshold) per second.
  double slow_rate_threshold = 1.0;
  /// Eta-file chain length (lp.eta_chain gauge) above which the adaptive
  /// refactorization policy is considered to have lost control.
  int64_t eta_chain_limit = 1024;
  /// Drift-triggered full re-rounds per second; sustained firing means
  /// incremental serving is thrashing above its drift budget.
  double drift_reround_rate_threshold = 0.5;
  /// Resolve-latency regression: window mean vs a cross-window EWMA
  /// baseline. Windows with fewer than `latency_min_count` resolves are
  /// ignored; the EWMA only absorbs non-regressed windows so a sustained
  /// regression stays visible.
  double latency_regression_factor = 3.0;
  double latency_ewma_alpha = 0.2;
  int64_t latency_min_count = 5;
  /// Un-snapshotted commands (durability.changelog_lag gauge, windowed
  /// max) above which recovery replay time is considered out of budget —
  /// the snapshot scheduler is falling behind the command stream. 0
  /// disables (also the right setting when durability is off).
  int64_t changelog_lag_limit = 4096;
  /// Hysteresis: consecutive bad windows to leave ok / clean windows to
  /// return to it.
  int degrade_after = 2;
  int recover_after = 2;
};

struct HealthVerdict {
  HealthLevel level = HealthLevel::kOk;
  /// Rule names active when the verdict left ok (sticky until recovery).
  std::vector<std::string> reasons;
  int64_t evaluations = 0;
};

class HealthMonitor {
 public:
  explicit HealthMonitor(HealthOptions options = HealthOptions());

  /// Feeds one capture window; returns the post-evaluation verdict.
  HealthVerdict Evaluate(const WindowedSnapshot& window);

  HealthVerdict verdict() const;

  /// {"status": "ok", "reasons": [...], ...} for GET /health.
  std::string JsonDump() const;

 private:
  HealthOptions options_;

  mutable std::mutex mu_;
  HealthLevel level_ = HealthLevel::kOk;
  std::vector<std::string> reasons_;
  int bad_streak_ = 0;
  int clean_streak_ = 0;
  int64_t evaluations_ = 0;
  double latency_ewma_ = 0.0;
  bool latency_ewma_ready_ = false;
};

}  // namespace savg
