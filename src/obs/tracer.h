// Per-server trace lifecycle: sampling, retention, and export.
//
// The ServeServer owns one Tracer. For every apply request it calls
// Sample() — a request is traced when the client set the wire trace flag
// OR it falls in the 1-in-N sample — and Finish() when the response is
// sent. Finished traces export three ways:
//
//   1. a bounded in-memory ring served as Chrome trace-event JSON at
//      GET /trace?last=N (loadable in Perfetto / chrome://tracing),
//   2. a rotating slow-query JSONL log: one TraceJsonLine per request
//      over `slow_seconds` — including requests that were NOT sampled
//      (FinishUntraced writes a span-less line), so "every slow request
//      leaves a record" holds at any sample rate,
//   3. per-stage latency histograms folded into the MetricsRegistry
//      (serve.stage.{admission,coalesce,presolve,solve,round}), so
//      /metrics gains stage-level p50/p99 without full traces.
//
// Slow-log lines and the structured server log (obs/structured_log.h) are
// joinable by trace_id.

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "metrics/registry.h"
#include "obs/trace.h"
#include "obs/trace_sink.h"

namespace savg {

struct TracerOptions {
  /// Trace 1 in every N apply requests (0 = only requests carrying the
  /// wire trace flag). N=1 traces everything — the overhead gate in
  /// bench_serve_load keeps that affordable.
  int sample_every = 16;
  /// Requests slower than this get a slow-query-log line (and a
  /// structured server log line) whether or not they were sampled.
  /// <= 0 disables slow-query logging.
  double slow_seconds = 0.25;
  /// Finished traces kept in the in-memory ring for GET /trace.
  size_t buffer_traces = 256;
  /// Slow-query JSONL path ("" = no slow-query log file).
  std::string slow_log_path;
  size_t slow_log_max_bytes = 8 * 1024 * 1024;
  int slow_log_max_files = 3;
};

class Tracer {
 public:
  explicit Tracer(MetricsRegistry* metrics, TracerOptions options = {});

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Opens a trace for this request when forced (wire flag) or sampled;
  /// returns nullptr when the request is not traced.
  std::shared_ptr<TraceContext> Sample(bool forced, uint64_t request_id,
                                       uint32_t session_id,
                                       const std::string& name);

  /// Closes a trace: stamps total + status, folds stage histograms,
  /// retains it in the ring, and writes the slow log if over threshold.
  void Finish(const std::shared_ptr<TraceContext>& ctx,
              const std::string& status);

  /// Slow-query accounting for requests that were not sampled.
  void FinishUntraced(uint64_t request_id, uint32_t session_id,
                      const std::string& name, double seconds,
                      const std::string& status);

  /// Most recent `n` finished traces, oldest first.
  std::vector<Trace> LastTraces(size_t n) const;

  const TracerOptions& options() const { return options_; }
  const TraceSink& sink() const { return sink_; }

 private:
  void Retain(Trace trace);
  void FoldStageHistograms(const Trace& trace);

  TracerOptions options_;
  MetricsRegistry* metrics_;
  TraceSink sink_;

  std::atomic<uint64_t> next_trace_id_{1};
  std::atomic<uint64_t> sample_seq_{0};

  Counter* traces_sampled_;
  Counter* traces_forced_;
  Counter* traces_slow_;
  Histogram* stage_admission_;
  Histogram* stage_coalesce_;
  Histogram* stage_presolve_;
  Histogram* stage_solve_;
  Histogram* stage_round_;

  mutable std::mutex mu_;      ///< guards ring_
  std::deque<Trace> ring_;
};

/// Renders traces as Chrome trace-event JSON (one "X" complete event per
/// span, pid = session id, tid = trace id).
std::string ChromeTraceJson(const std::vector<Trace>& traces);

/// Renders traces as an indented human-readable span tree.
std::string TraceTextTree(const std::vector<Trace>& traces);

/// One-line JSON for the slow-query log.
std::string TraceJsonLine(const Trace& trace);

}  // namespace savg
