#include "obs/verify.h"

#include <cmath>
#include <utility>

#include "core/objective.h"
#include "lp/kkt.h"
#include "obs/structured_log.h"
#include "util/logging.h"

namespace savg {

namespace {

thread_local bool t_force_verify = false;

}  // namespace

bool ForceVerifyRequested() { return t_force_verify; }

ScopedForceVerify::ScopedForceVerify(bool forced)
    : previous_(t_force_verify) {
  t_force_verify = forced;
}

ScopedForceVerify::~ScopedForceVerify() { t_force_verify = previous_; }

SolutionVerifier::SolutionVerifier(MetricsRegistry* metrics,
                                   VerifierOptions options)
    : options_(options),
      pass_(metrics->GetCounter("verify.pass")),
      fail_(metrics->GetCounter("verify.fail")),
      dropped_(metrics->GetCounter("verify.dropped")),
      fail_config_(metrics->GetCounter("verify.fail.config")),
      fail_objective_(metrics->GetCounter("verify.fail.objective")),
      fail_kkt_(metrics->GetCounter("verify.fail.kkt")),
      fail_injected_(metrics->GetCounter("verify.fail.injected")),
      latency_(metrics->GetHistogram("verify.latency")) {
  worker_ = std::thread([this] { WorkerLoop(); });
}

SolutionVerifier::~SolutionVerifier() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  worker_.join();
}

bool SolutionVerifier::ShouldVerify(bool forced) {
  if (forced) return true;
  if (options_.sample_every <= 0) return false;
  const uint64_t seq = sample_seq_.fetch_add(1, std::memory_order_relaxed);
  return seq % static_cast<uint64_t>(options_.sample_every) == 0;
}

void SolutionVerifier::Enqueue(VerifyJob job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.size() >= options_.max_pending) {
      dropped_->Increment();
      return;
    }
    queue_.push_back(std::move(job));
  }
  cv_.notify_one();
}

void SolutionVerifier::Flush() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && !running_; });
}

void SolutionVerifier::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stop_) return;
      continue;
    }
    VerifyJob job = std::move(queue_.front());
    queue_.pop_front();
    running_ = true;
    lock.unlock();
    RunJob(job);
    lock.lock();
    running_ = false;
    if (queue_.empty()) idle_cv_.notify_all();
  }
}

void SolutionVerifier::RunJob(const VerifyJob& job) {
  Timer timer;
  std::string failure;

  if (inject_failures_.load(std::memory_order_relaxed)) {
    failure = "injected";
    fail_injected_->Increment();
  }
  if (failure.empty()) {
    Status valid = job.config.CheckValid();
    if (!valid.ok()) {
      failure = "config";
      fail_config_->Increment();
    }
  }
  double recomputed = 0.0;
  if (failure.empty()) {
    recomputed = Evaluate(job.instance, job.config).ScaledTotal();
    const double scale = std::max(1.0, std::abs(job.reported_scaled_total));
    if (std::abs(recomputed - job.reported_scaled_total) >
        options_.tolerance * scale) {
      failure = "objective";
      fail_objective_->Increment();
    }
  }
  KktReport kkt;
  if (failure.empty() && job.has_lp) {
    kkt = CheckLpKkt(job.lp, job.x, job.duals);
    if (!kkt.Ok(options_.tolerance)) {
      failure = "kkt";
      fail_kkt_->Increment();
    }
  }

  latency_->Observe(timer.ElapsedSeconds());
  if (failure.empty()) {
    pass_->Increment();
    return;
  }
  fail_->Increment();
  LogEvent(LogLevel::kError, "verify.fail",
           LogFields()
               .Add("session", static_cast<int64_t>(job.session_id))
               .Add("kind", failure)
               .Add("reported_objective", job.reported_scaled_total)
               .Add("recomputed_objective", recomputed)
               .Add("kkt_violation", kkt.MaxViolation()));
}

}  // namespace savg
