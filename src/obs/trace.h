// Request-scoped hierarchical tracing for the serving stack.
//
// A TraceContext collects the timed spans of ONE request as it moves
// through the serve path: admission-queue wait, coalesce defer, the
// session apply, LP build/solve (with per-phase children bridged from
// LpStats), per-shard solves, and the CSF re-round. Span offsets are
// monotonic-clock nanoseconds relative to the trace start; attributes
// split into deterministic integer `counters` (pivots, dirty users, ...)
// and string `labels` (resolve path, command type, ...).
//
// Determinism contract: the span *structure* — names, nesting, order, and
// counter attributes — is bit-stable across runs and worker counts for a
// fixed command stream; only the timings vary. Two rules keep it that way:
//   1. Spans of one trace are always recorded by a single thread (the
//      serve path hands each request to one worker at a time).
//   2. Parallel regions (the shard pool) never record spans from worker
//      threads; they bridge their per-shard stats in afterwards, in shard
//      index order (TraceScope::BridgeChild).
//
// Deep layers (SolveLp, ShardCoordinator) attach spans through the
// thread-local CurrentTrace() set by the SessionManager around
// Session::Apply, so the hot call signatures stay trace-free. TraceScope
// is a no-op costing one thread-local read when no trace is active, which
// is what makes always-on sampling affordable.

#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace savg {

/// One timed region inside a trace. Spans form a tree via `parent` (index
/// into Trace::spans, -1 = top level).
struct TraceSpan {
  std::string name;
  int parent = -1;
  int64_t start_nanos = 0;
  int64_t duration_nanos = 0;
  /// Bridged from aggregate stats (LpStats, ShardSolveStats) rather than
  /// measured live: bridged children are laid end-to-end from the parent's
  /// start, so they show the parent's time split, not true intervals.
  bool bridged = false;
  /// Deterministic integer attributes — part of the bit-stable structure.
  std::vector<std::pair<std::string, int64_t>> counters;
  /// Deterministic string attributes.
  std::vector<std::pair<std::string, std::string>> labels;
};

/// A finished (or in-flight) request trace.
struct Trace {
  uint64_t trace_id = 0;
  uint64_t request_id = 0;
  uint32_t session_id = 0;
  /// Root label, normally the command type ("resolve", "set_preference").
  std::string name;
  /// "ok", "error", "shed", ... (stamped when the trace finishes).
  std::string status = "ok";
  /// The client set the trace flag in the frame header (vs 1-in-N sample).
  bool forced = false;
  /// Wall clock at trace start (export timeline placement only; all span
  /// offsets are monotonic).
  int64_t start_unix_micros = 0;
  /// Total request nanoseconds, stamped by Tracer::Finish.
  int64_t total_nanos = 0;
  std::vector<TraceSpan> spans;
};

/// Mutable collection state for one request's trace. Not thread-safe; see
/// the determinism contract in the file comment.
class TraceContext {
 public:
  TraceContext(uint64_t trace_id, uint64_t request_id, uint32_t session_id,
               std::string name);

  /// Nanoseconds since the trace started (monotonic clock).
  int64_t NowNanos() const;

  /// Opens a span nested under the innermost open span; returns its index.
  int StartSpan(const std::string& name);
  /// Closes `span`, recording its duration (must be the innermost open).
  void EndSpan(int span);
  /// Records an already-timed span [start_nanos, start_nanos + duration).
  int AddSpan(const std::string& name, int parent, int64_t start_nanos,
              int64_t duration_nanos, bool bridged = false);

  /// Attaches a deterministic attribute to `span` (-1 = innermost open;
  /// dropped when no span is open).
  void AddCounter(int span, const std::string& key, int64_t value);
  void AddLabel(int span, const std::string& key, std::string value);

  /// Innermost open span index, or -1 at top level.
  int CurrentSpan() const { return stack_.empty() ? -1 : stack_.back(); }

  Trace& trace() { return trace_; }
  const Trace& trace() const { return trace_; }

 private:
  Trace trace_;
  std::vector<int> stack_;  ///< open span indices, outermost first
  std::chrono::steady_clock::time_point t0_;
};

/// The trace the current thread is collecting into, or nullptr.
TraceContext* CurrentTrace();

/// RAII setter for CurrentTrace() (restores the previous value).
class ScopedCurrentTrace {
 public:
  explicit ScopedCurrentTrace(TraceContext* trace);
  ~ScopedCurrentTrace();
  ScopedCurrentTrace(const ScopedCurrentTrace&) = delete;
  ScopedCurrentTrace& operator=(const ScopedCurrentTrace&) = delete;

 private:
  TraceContext* prev_;
};

/// RAII span on CurrentTrace(); a no-op when no trace is active, so hot
/// paths instrument unconditionally.
class TraceScope {
 public:
  explicit TraceScope(const char* name);
  ~TraceScope();
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

  void Counter(const char* key, int64_t value);
  void Label(const char* key, std::string value);
  /// Adds a stat-bridged child laid end-to-end after earlier bridged
  /// children of this scope; returns the child's span index (-1 when not
  /// tracing) so callers can attach counters to it. Call sites must
  /// record a deterministic set of children (zero-duration phases
  /// included) so the span structure stays bit-stable across runs.
  int BridgeChild(const char* name, double seconds);

  bool active() const { return trace_ != nullptr; }

 private:
  TraceContext* trace_ = nullptr;
  int span_ = -1;
  int64_t bridge_cursor_nanos_ = 0;
};

}  // namespace savg
