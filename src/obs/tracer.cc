#include "obs/tracer.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <utility>

#include "obs/structured_log.h"

namespace savg {

namespace {

std::string JsonEscape(const std::string& value) {
  std::string out;
  out.reserve(value.size() + 2);
  for (char ch : value) {
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

std::string MillisString(int64_t nanos) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4f", static_cast<double>(nanos) * 1e-6);
  return buf;
}

std::string MicrosString(int64_t nanos) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(nanos) * 1e-3);
  return buf;
}

}  // namespace

Tracer::Tracer(MetricsRegistry* metrics, TracerOptions options)
    : options_(std::move(options)),
      metrics_(metrics),
      sink_(TraceSinkOptions{options_.slow_log_path,
                             options_.slow_log_max_bytes,
                             options_.slow_log_max_files}),
      traces_sampled_(metrics->GetCounter("trace.sampled")),
      traces_forced_(metrics->GetCounter("trace.forced")),
      traces_slow_(metrics->GetCounter("trace.slow")),
      stage_admission_(metrics->GetHistogram("serve.stage.admission")),
      stage_coalesce_(metrics->GetHistogram("serve.stage.coalesce")),
      stage_presolve_(metrics->GetHistogram("serve.stage.presolve")),
      stage_solve_(metrics->GetHistogram("serve.stage.solve")),
      stage_round_(metrics->GetHistogram("serve.stage.round")) {}

std::shared_ptr<TraceContext> Tracer::Sample(bool forced,
                                             uint64_t request_id,
                                             uint32_t session_id,
                                             const std::string& name) {
  bool sampled = false;
  if (!forced && options_.sample_every > 0) {
    const uint64_t seq =
        sample_seq_.fetch_add(1, std::memory_order_relaxed);
    sampled = seq % static_cast<uint64_t>(options_.sample_every) == 0;
  }
  if (!forced && !sampled) return nullptr;
  (forced ? traces_forced_ : traces_sampled_)->Increment();
  auto ctx = std::make_shared<TraceContext>(
      next_trace_id_.fetch_add(1, std::memory_order_relaxed), request_id,
      session_id, name);
  ctx->trace().forced = forced;
  return ctx;
}

void Tracer::FoldStageHistograms(const Trace& trace) {
  for (const TraceSpan& span : trace.spans) {
    Histogram* hist = nullptr;
    if (span.name == "admission.wait") {
      hist = stage_admission_;
    } else if (span.name == "coalesce.defer") {
      hist = stage_coalesce_;
    } else if (span.name == "lp.presolve") {
      hist = stage_presolve_;
    } else if (span.name == "lp.solve" || span.name == "shard.solve") {
      hist = stage_solve_;
    } else if (span.name == "csf.round") {
      hist = stage_round_;
    }
    if (hist != nullptr) {
      hist->Observe(static_cast<double>(span.duration_nanos) * 1e-9);
    }
  }
}

void Tracer::Retain(Trace trace) {
  const bool slow =
      options_.slow_seconds > 0.0 &&
      static_cast<double>(trace.total_nanos) * 1e-9 > options_.slow_seconds;
  if (slow) {
    traces_slow_->Increment();
    sink_.WriteLine(TraceJsonLine(trace));
    LogEvent(LogLevel::kInfo, "serve.slow",
             LogFields()
                 .Add("trace_id", trace.trace_id)
                 .Add("request_id", trace.request_id)
                 .Add("session", static_cast<int64_t>(trace.session_id))
                 .Add("command", trace.name)
                 .Add("status", trace.status)
                 .Add("total_ms",
                      static_cast<double>(trace.total_nanos) * 1e-6));
  }
  std::lock_guard<std::mutex> lock(mu_);
  ring_.push_back(std::move(trace));
  while (ring_.size() > options_.buffer_traces) ring_.pop_front();
}

void Tracer::Finish(const std::shared_ptr<TraceContext>& ctx,
                    const std::string& status) {
  if (ctx == nullptr) return;
  ctx->trace().total_nanos = ctx->NowNanos();
  ctx->trace().status = status;
  FoldStageHistograms(ctx->trace());
  // Move, don't copy: the context is dead after Finish, and the span
  // vector with its strings is the bulk of the per-request tracing cost.
  Retain(std::move(ctx->trace()));
}

void Tracer::FinishUntraced(uint64_t request_id, uint32_t session_id,
                            const std::string& name, double seconds,
                            const std::string& status) {
  if (options_.slow_seconds <= 0.0 || seconds <= options_.slow_seconds) {
    return;
  }
  // Span-less record: the request was over the slow threshold but not
  // sampled, and "any request over the threshold leaves a line" must hold
  // at every sample rate. It still gets a trace id for log joins.
  Trace trace;
  trace.trace_id = next_trace_id_.fetch_add(1, std::memory_order_relaxed);
  trace.request_id = request_id;
  trace.session_id = session_id;
  trace.name = name;
  trace.status = status;
  trace.total_nanos = static_cast<int64_t>(seconds * 1e9);
  traces_slow_->Increment();
  sink_.WriteLine(TraceJsonLine(trace));
  LogEvent(LogLevel::kInfo, "serve.slow",
           LogFields()
               .Add("trace_id", trace.trace_id)
               .Add("request_id", trace.request_id)
               .Add("session", static_cast<int64_t>(trace.session_id))
               .Add("command", trace.name)
               .Add("status", trace.status)
               .Add("total_ms", seconds * 1e3)
               .Add("sampled", static_cast<int64_t>(0)));
}

std::vector<Trace> Tracer::LastTraces(size_t n) const {
  std::lock_guard<std::mutex> lock(mu_);
  const size_t count = std::min(n, ring_.size());
  return std::vector<Trace>(ring_.end() - static_cast<long>(count),
                            ring_.end());
}

// --- Exporters -------------------------------------------------------------

namespace {

void AppendArgs(const TraceSpan& span, std::ostringstream* out) {
  for (const auto& [key, value] : span.counters) {
    *out << ", \"" << JsonEscape(key) << "\": " << value;
  }
  for (const auto& [key, value] : span.labels) {
    *out << ", \"" << JsonEscape(key) << "\": \"" << JsonEscape(value)
         << "\"";
  }
}

}  // namespace

std::string ChromeTraceJson(const std::vector<Trace>& traces) {
  std::ostringstream out;
  out << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool first = true;
  for (const Trace& trace : traces) {
    const int64_t base_nanos = trace.start_unix_micros * 1000;
    if (!first) out << ", ";
    first = false;
    // Root event spanning the whole request; pid groups by session, tid
    // gives each request its own track.
    out << "{\"name\": \"request:" << JsonEscape(trace.name)
        << "\", \"cat\": \"request\", \"ph\": \"X\", \"pid\": "
        << trace.session_id << ", \"tid\": " << trace.trace_id
        << ", \"ts\": " << MicrosString(base_nanos)
        << ", \"dur\": " << MicrosString(trace.total_nanos)
        << ", \"args\": {\"trace_id\": " << trace.trace_id
        << ", \"request_id\": " << trace.request_id << ", \"status\": \""
        << JsonEscape(trace.status) << "\", \"forced\": "
        << (trace.forced ? "true" : "false") << "}}";
    for (const TraceSpan& span : trace.spans) {
      out << ", {\"name\": \"" << JsonEscape(span.name)
          << "\", \"cat\": \"" << (span.bridged ? "bridged" : "span")
          << "\", \"ph\": \"X\", \"pid\": " << trace.session_id
          << ", \"tid\": " << trace.trace_id << ", \"ts\": "
          << MicrosString(base_nanos + span.start_nanos)
          << ", \"dur\": " << MicrosString(span.duration_nanos)
          << ", \"args\": {\"trace_id\": " << trace.trace_id;
      AppendArgs(span, &out);
      out << "}}";
    }
  }
  out << "]}";
  return out.str();
}

std::string TraceTextTree(const std::vector<Trace>& traces) {
  std::ostringstream out;
  for (const Trace& trace : traces) {
    out << "trace " << trace.trace_id << " request=" << trace.request_id
        << " session=" << trace.session_id << " " << trace.name << " "
        << MillisString(trace.total_nanos) << "ms status=" << trace.status;
    if (trace.forced) out << " forced";
    out << "\n";
    // Depth via the parent chain (spans are recorded parents-first).
    std::vector<int> depth(trace.spans.size(), 0);
    for (size_t i = 0; i < trace.spans.size(); ++i) {
      const int parent = trace.spans[i].parent;
      if (parent >= 0 && parent < static_cast<int>(i)) {
        depth[i] = depth[parent] + 1;
      }
    }
    for (size_t i = 0; i < trace.spans.size(); ++i) {
      const TraceSpan& span = trace.spans[i];
      out << std::string(2 * (depth[i] + 1), ' ') << span.name << " "
          << (span.bridged ? "~" : "")
          << MillisString(span.duration_nanos) << "ms";
      for (const auto& [key, value] : span.counters) {
        out << " " << key << "=" << value;
      }
      for (const auto& [key, value] : span.labels) {
        out << " " << key << "=" << value;
      }
      out << "\n";
    }
  }
  return out.str();
}

std::string TraceJsonLine(const Trace& trace) {
  std::ostringstream out;
  out << "{\"ts_micros\": " << trace.start_unix_micros
      << ", \"trace_id\": " << trace.trace_id
      << ", \"request_id\": " << trace.request_id
      << ", \"session\": " << trace.session_id << ", \"command\": \""
      << JsonEscape(trace.name) << "\", \"status\": \""
      << JsonEscape(trace.status)
      << "\", \"total_ms\": " << MillisString(trace.total_nanos)
      << ", \"spans\": [";
  bool first = true;
  for (const TraceSpan& span : trace.spans) {
    if (!first) out << ", ";
    first = false;
    out << "{\"name\": \"" << JsonEscape(span.name)
        << "\", \"parent\": " << span.parent << ", \"start_ms\": "
        << MillisString(span.start_nanos) << ", \"dur_ms\": "
        << MillisString(span.duration_nanos);
    if (span.bridged) out << ", \"bridged\": true";
    AppendArgs(span, &out);
    out << "}";
  }
  out << "]}";
  return out.str();
}

}  // namespace savg
