#include "obs/trace_sink.h"

#include <cstdio>
#include <utility>

namespace savg {

TraceSink::TraceSink(TraceSinkOptions options)
    : options_(std::move(options)) {
  if (options_.max_files < 1) options_.max_files = 1;
}

Status TraceSink::EnsureOpenLocked() {
  if (out_.is_open()) return Status::OK();
  out_.open(options_.path, std::ios::app);
  if (!out_) {
    return Status::Unknown("cannot open slow-query log " + options_.path);
  }
  // Resume size accounting across reopen (append position = current size).
  out_.seekp(0, std::ios::end);
  const auto pos = out_.tellp();
  bytes_ = pos > 0 ? static_cast<size_t>(pos) : 0;
  return Status::OK();
}

void TraceSink::RotateLocked() {
  out_.close();
  // Shift generations oldest-first: path.(n-1) is dropped, path -> path.1.
  const std::string oldest =
      options_.path + "." + std::to_string(options_.max_files - 1);
  std::remove(oldest.c_str());
  for (int i = options_.max_files - 1; i >= 2; --i) {
    const std::string from = options_.path + "." + std::to_string(i - 1);
    const std::string to = options_.path + "." + std::to_string(i);
    std::rename(from.c_str(), to.c_str());
  }
  if (options_.max_files > 1) {
    const std::string first = options_.path + ".1";
    std::rename(options_.path.c_str(), first.c_str());
  } else {
    std::remove(options_.path.c_str());
  }
  bytes_ = 0;
  rotations_ += 1;
}

Status TraceSink::WriteLine(const std::string& line) {
  if (!enabled()) return Status::OK();
  std::lock_guard<std::mutex> lock(mu_);
  Status open = EnsureOpenLocked();
  if (!open.ok()) return open;
  if (bytes_ > 0 && bytes_ + line.size() + 1 > options_.max_bytes) {
    RotateLocked();
    open = EnsureOpenLocked();
    if (!open.ok()) return open;
  }
  out_ << line << "\n";
  out_.flush();
  if (!out_) return Status::Unknown("slow-query log write failed");
  bytes_ += line.size() + 1;
  lines_ += 1;
  return Status::OK();
}

int64_t TraceSink::lines_written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lines_;
}

int64_t TraceSink::rotations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rotations_;
}

}  // namespace savg
