// Rotating line sink for the slow-query log.
//
// The Tracer writes one JSONL line per slow request (TraceJsonLine in
// obs/tracer.h); this class owns the file handling: append with a
// newline, and when the file would grow past `max_bytes`, rotate
// path -> path.1 -> path.2 -> ... keeping `max_files` generations.

#pragma once

#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>

#include "util/status.h"

namespace savg {

struct TraceSinkOptions {
  /// Target file; "" disables the sink (WriteLine becomes a no-op).
  std::string path;
  /// Rotate before an append would push the file past this size.
  size_t max_bytes = 8 * 1024 * 1024;
  /// Generations kept: path, path.1, ..., path.(max_files - 1).
  int max_files = 3;
};

class TraceSink {
 public:
  explicit TraceSink(TraceSinkOptions options);

  /// Appends one line (newline added). Thread-safe.
  Status WriteLine(const std::string& line);

  bool enabled() const { return !options_.path.empty(); }
  int64_t lines_written() const;
  int64_t rotations() const;

 private:
  Status EnsureOpenLocked();
  void RotateLocked();

  TraceSinkOptions options_;
  mutable std::mutex mu_;
  std::ofstream out_;
  size_t bytes_ = 0;
  int64_t lines_ = 0;
  int64_t rotations_ = 0;
};

}  // namespace savg
