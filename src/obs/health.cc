#include "obs/health.h"

#include <algorithm>
#include <sstream>

#include "obs/structured_log.h"

namespace savg {

const char* HealthLevelName(HealthLevel level) {
  switch (level) {
    case HealthLevel::kOk:
      return "ok";
    case HealthLevel::kDegraded:
      return "degraded";
    case HealthLevel::kUnhealthy:
      return "unhealthy";
  }
  return "unknown";
}

HealthMonitor::HealthMonitor(HealthOptions options)
    : options_(options) {}

HealthVerdict HealthMonitor::Evaluate(const WindowedSnapshot& window) {
  std::lock_guard<std::mutex> lock(mu_);
  ++evaluations_;

  std::vector<std::string> active;
  bool unhealthy_now = false;

  if (window.CounterDelta("verify.fail") > 0) {
    active.push_back("verify_failure");
    unhealthy_now = true;
  }
  if (window.CounterRate("serve.shed") > options_.shed_rate_threshold) {
    active.push_back("shed_rate");
  }
  if (options_.queue_capacity > 0 &&
      static_cast<double>(window.GaugeMax("serve.queue_depth")) >
          options_.queue_saturation_fraction *
              static_cast<double>(options_.queue_capacity)) {
    active.push_back("queue_saturation");
  }
  if (window.CounterRate("trace.slow") > options_.slow_rate_threshold) {
    active.push_back("slow_request_rate");
  }
  if (window.GaugeLast("lp.eta_chain") > options_.eta_chain_limit) {
    active.push_back("eta_chain_growth");
  }
  if (window.CounterRate("session.drift_rerounds") >
      options_.drift_reround_rate_threshold) {
    active.push_back("drift_budget");
  }
  if (options_.changelog_lag_limit > 0 &&
      window.GaugeMax("durability.changelog_lag") >
          options_.changelog_lag_limit) {
    active.push_back("changelog_lag");
  }
  const WindowedSnapshot::HistogramRow* resolve =
      window.FindHistogram("serve.latency.resolve");
  if (resolve != nullptr && resolve->count >= options_.latency_min_count) {
    bool regressed = false;
    if (latency_ewma_ready_ &&
        resolve->mean > options_.latency_regression_factor * latency_ewma_) {
      active.push_back("resolve_latency_regression");
      regressed = true;
    }
    if (!regressed) {
      // Baseline absorbs only non-regressed windows, so a sustained
      // regression cannot normalize itself away.
      latency_ewma_ =
          latency_ewma_ready_
              ? options_.latency_ewma_alpha * resolve->mean +
                    (1.0 - options_.latency_ewma_alpha) * latency_ewma_
              : resolve->mean;
      latency_ewma_ready_ = true;
    }
  }

  if (active.empty()) {
    ++clean_streak_;
    bad_streak_ = 0;
  } else {
    ++bad_streak_;
    clean_streak_ = 0;
  }

  const HealthLevel before = level_;
  if (unhealthy_now) {
    // A verification failure means a served answer was wrong — trip
    // immediately, no hysteresis on the way down.
    level_ = HealthLevel::kUnhealthy;
    reasons_ = active;
  } else if (level_ == HealthLevel::kOk) {
    if (bad_streak_ >= options_.degrade_after) {
      level_ = HealthLevel::kDegraded;
      reasons_ = active;
    }
  } else {
    if (clean_streak_ >= options_.recover_after) {
      level_ = HealthLevel::kOk;
      reasons_.clear();
    } else if (!active.empty()) {
      reasons_ = active;  // keep the freshest reason set while degraded
    }
  }

  if (level_ != before) {
    std::string joined;
    for (const std::string& reason : reasons_) {
      if (!joined.empty()) joined += ",";
      joined += reason;
    }
    LogEvent(level_ == HealthLevel::kOk ? LogLevel::kInfo : LogLevel::kWarning,
             "health.transition",
             LogFields()
                 .Add("from", HealthLevelName(before))
                 .Add("to", HealthLevelName(level_))
                 .Add("reasons", joined)
                 .Add("evaluations", evaluations_));
  }

  HealthVerdict verdict;
  verdict.level = level_;
  verdict.reasons = reasons_;
  verdict.evaluations = evaluations_;
  return verdict;
}

HealthVerdict HealthMonitor::verdict() const {
  std::lock_guard<std::mutex> lock(mu_);
  HealthVerdict verdict;
  verdict.level = level_;
  verdict.reasons = reasons_;
  verdict.evaluations = evaluations_;
  return verdict;
}

std::string HealthMonitor::JsonDump() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  out.precision(9);
  out << "{\"status\": \"" << HealthLevelName(level_) << "\", \"reasons\": [";
  bool first = true;
  for (const std::string& reason : reasons_) {
    if (!first) out << ", ";
    first = false;
    out << "\"" << reason << "\"";
  }
  out << "], \"evaluations\": " << evaluations_
      << ", \"bad_streak\": " << bad_streak_
      << ", \"clean_streak\": " << clean_streak_;
  if (latency_ewma_ready_) {
    out << ", \"resolve_latency_ewma_ms\": " << latency_ewma_ * 1e3;
  }
  out << "}";
  return out.str();
}

}  // namespace savg
