// Structured key=value log lines for the serve path.
//
// Every server-side event of interest (listen, shed, bad request, slow
// request, shutdown) is logged as one machine-parsable line:
//
//   event=serve.shed trace_id=42 session=3 request_id=17
//
// stamped with the request's trace id whenever one exists, so server logs
// join against the slow-query JSONL log (obs/tracer.h) on trace_id.
// Values containing spaces, '=' or quotes are double-quoted with inner
// quotes backslash-escaped; everything else is emitted bare.

#pragma once

#include <cstdint>
#include <string>

#include "util/logging.h"

namespace savg {

/// Ordered key=value field list (append-only builder).
class LogFields {
 public:
  LogFields& Add(const char* key, const std::string& value);
  LogFields& Add(const char* key, const char* value);
  LogFields& Add(const char* key, int64_t value);
  LogFields& Add(const char* key, uint64_t value);
  LogFields& Add(const char* key, int value) {
    return Add(key, static_cast<int64_t>(value));
  }
  LogFields& Add(const char* key, double value);

  const std::string& text() const { return text_; }

 private:
  LogFields& Append(const char* key, const std::string& raw);

  std::string text_;
};

/// "event=<name> key=value ..." — the canonical structured line.
std::string FormatEvent(const char* event, const LogFields& fields);

/// Emits a structured line through util/logging at `level`.
void LogEvent(LogLevel level, const char* event,
              const LogFields& fields = LogFields());

}  // namespace savg
