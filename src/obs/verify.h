// Sampled post-solve self-verification of served configurations.
//
// The solver's bugs would otherwise ship silently: an infeasible rounding
// or a subtly wrong dual basis still produces a plausible-looking
// configuration. The SolutionVerifier re-checks 1-in-N served resolves
// off the hot path on a background worker:
//
//   - configuration validity (complete, no duplicate items per user);
//   - objective audit: Evaluate() recomputed from an instance snapshot
//     must match the ScaledTotal the resolve reported;
//   - LP optimality (monolithic resolves only): primal feasibility and a
//     full KKT audit of the solved LP via lp/kkt.h, on the exact model,
//     point and duals the solve produced.
//
// Results flow into verify.pass / verify.fail (+ per-kind fail counters);
// the health monitor trips `unhealthy` on any fail. The hot-path cost is
// one sampling branch plus, for sampled requests, snapshotting the
// instance/config and moving the already-built LP into the job — the
// checks themselves never run on the serving thread. A bounded queue
// drops jobs (verify.dropped) rather than ever backpressuring resolves.
//
// Wire clients can force verification per-request (kFrameFlagVerify); the
// flag travels resolve-coalescing-aware through the thread-local
// ScopedForceVerify, mirroring how force-trace works.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "core/configuration.h"
#include "core/problem.h"
#include "lp/lp_model.h"
#include "metrics/registry.h"

namespace savg {

/// One queued verification: self-contained snapshots, no live pointers.
struct VerifyJob {
  uint32_t session_id = 0;
  SvgicInstance instance;
  Configuration config;
  double reported_scaled_total = 0.0;
  /// LP audit payload (monolithic resolves; absent for sharded solves).
  bool has_lp = false;
  LpModel lp;
  std::vector<double> x;
  std::vector<double> duals;
};

struct VerifierOptions {
  /// Verify every Nth resolve; 0 verifies only forced requests.
  int sample_every = 16;
  /// Queue bound; overflow drops the job (verify.dropped).
  size_t max_pending = 16;
  /// KKT / objective tolerance (relative for the objective audit).
  double tolerance = 1e-5;
};

class SolutionVerifier {
 public:
  SolutionVerifier(MetricsRegistry* metrics,
                   VerifierOptions options = VerifierOptions());
  ~SolutionVerifier();

  /// Sampling decision for the current resolve (cheap; call on the hot
  /// path before paying for any snapshotting).
  bool ShouldVerify(bool forced);

  void Enqueue(VerifyJob job);

  /// Blocks until every enqueued job has been checked (tests, shutdown).
  void Flush();

  /// Fault injection: while on, every job fails with kind "injected" —
  /// exercises the verify.fail -> unhealthy path end to end.
  void InjectFailures(bool on) {
    inject_failures_.store(on, std::memory_order_relaxed);
  }

 private:
  void WorkerLoop();
  void RunJob(const VerifyJob& job);

  VerifierOptions options_;
  Counter* pass_;
  Counter* fail_;
  Counter* dropped_;
  Counter* fail_config_;
  Counter* fail_objective_;
  Counter* fail_kkt_;
  Counter* fail_injected_;
  Histogram* latency_;

  std::atomic<uint64_t> sample_seq_{0};
  std::atomic<bool> inject_failures_{false};

  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::deque<VerifyJob> queue_;
  bool running_ = false;  ///< worker is mid-job
  bool stop_ = false;
  std::thread worker_;
};

/// Thread-local force-verify request, set by the session manager around
/// Apply() when any coalesced waiter asked for verification (mirrors the
/// trace-context plumbing in obs/trace.h).
bool ForceVerifyRequested();

class ScopedForceVerify {
 public:
  explicit ScopedForceVerify(bool forced);
  ~ScopedForceVerify();
  ScopedForceVerify(const ScopedForceVerify&) = delete;
  ScopedForceVerify& operator=(const ScopedForceVerify&) = delete;

 private:
  bool previous_;
};

}  // namespace savg
