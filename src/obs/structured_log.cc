#include "obs/structured_log.h"

#include <cstdio>

namespace savg {

namespace {

bool NeedsQuoting(const std::string& value) {
  if (value.empty()) return true;
  for (char ch : value) {
    if (ch == ' ' || ch == '=' || ch == '"' || ch == '\t' || ch == '\n') {
      return true;
    }
  }
  return false;
}

std::string QuoteValue(const std::string& value) {
  if (!NeedsQuoting(value)) return value;
  std::string out = "\"";
  for (char ch : value) {
    if (ch == '"' || ch == '\\') out += '\\';
    if (ch == '\n') {
      out += "\\n";
      continue;
    }
    out += ch;
  }
  out += '"';
  return out;
}

}  // namespace

LogFields& LogFields::Append(const char* key, const std::string& raw) {
  if (!text_.empty()) text_ += ' ';
  text_ += key;
  text_ += '=';
  text_ += raw;
  return *this;
}

LogFields& LogFields::Add(const char* key, const std::string& value) {
  return Append(key, QuoteValue(value));
}

LogFields& LogFields::Add(const char* key, const char* value) {
  return Add(key, std::string(value));
}

LogFields& LogFields::Add(const char* key, int64_t value) {
  return Append(key, std::to_string(value));
}

LogFields& LogFields::Add(const char* key, uint64_t value) {
  return Append(key, std::to_string(value));
}

LogFields& LogFields::Add(const char* key, double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return Append(key, buf);
}

std::string FormatEvent(const char* event, const LogFields& fields) {
  std::string line = "event=";
  line += event;
  if (!fields.text().empty()) {
    line += ' ';
    line += fields.text();
  }
  return line;
}

void LogEvent(LogLevel level, const char* event, const LogFields& fields) {
  internal::LogMessage(level, "serve", 0) << FormatEvent(event, fields);
}

}  // namespace savg
