#include "obs/trace.h"

namespace savg {

namespace {

thread_local TraceContext* g_current_trace = nullptr;

int64_t UnixMicrosNow() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

}  // namespace

TraceContext::TraceContext(uint64_t trace_id, uint64_t request_id,
                           uint32_t session_id, std::string name)
    : t0_(std::chrono::steady_clock::now()) {
  trace_.trace_id = trace_id;
  trace_.request_id = request_id;
  trace_.session_id = session_id;
  trace_.name = std::move(name);
  trace_.start_unix_micros = UnixMicrosNow();
}

int64_t TraceContext::NowNanos() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - t0_)
      .count();
}

int TraceContext::StartSpan(const std::string& name) {
  TraceSpan span;
  span.name = name;
  span.parent = CurrentSpan();
  span.start_nanos = NowNanos();
  const int index = static_cast<int>(trace_.spans.size());
  trace_.spans.push_back(std::move(span));
  stack_.push_back(index);
  return index;
}

void TraceContext::EndSpan(int span) {
  if (span < 0 || span >= static_cast<int>(trace_.spans.size())) return;
  trace_.spans[span].duration_nanos =
      NowNanos() - trace_.spans[span].start_nanos;
  // Pop through `span`: tolerates a missed EndSpan of a child (early
  // return paths) without corrupting the stack.
  while (!stack_.empty()) {
    const int top = stack_.back();
    stack_.pop_back();
    if (top == span) break;
  }
}

int TraceContext::AddSpan(const std::string& name, int parent,
                          int64_t start_nanos, int64_t duration_nanos,
                          bool bridged) {
  TraceSpan span;
  span.name = name;
  span.parent = parent;
  span.start_nanos = start_nanos;
  span.duration_nanos = duration_nanos;
  span.bridged = bridged;
  trace_.spans.push_back(std::move(span));
  return static_cast<int>(trace_.spans.size()) - 1;
}

void TraceContext::AddCounter(int span, const std::string& key,
                              int64_t value) {
  if (span < 0) span = CurrentSpan();
  if (span < 0 || span >= static_cast<int>(trace_.spans.size())) return;
  trace_.spans[span].counters.emplace_back(key, value);
}

void TraceContext::AddLabel(int span, const std::string& key,
                            std::string value) {
  if (span < 0) span = CurrentSpan();
  if (span < 0 || span >= static_cast<int>(trace_.spans.size())) return;
  trace_.spans[span].labels.emplace_back(key, std::move(value));
}

TraceContext* CurrentTrace() { return g_current_trace; }

ScopedCurrentTrace::ScopedCurrentTrace(TraceContext* trace)
    : prev_(g_current_trace) {
  g_current_trace = trace;
}

ScopedCurrentTrace::~ScopedCurrentTrace() { g_current_trace = prev_; }

TraceScope::TraceScope(const char* name) : trace_(g_current_trace) {
  if (trace_ == nullptr) return;
  span_ = trace_->StartSpan(name);
  bridge_cursor_nanos_ = trace_->trace().spans[span_].start_nanos;
}

TraceScope::~TraceScope() {
  if (trace_ != nullptr) trace_->EndSpan(span_);
}

void TraceScope::Counter(const char* key, int64_t value) {
  if (trace_ != nullptr) trace_->AddCounter(span_, key, value);
}

void TraceScope::Label(const char* key, std::string value) {
  if (trace_ != nullptr) trace_->AddLabel(span_, key, std::move(value));
}

int TraceScope::BridgeChild(const char* name, double seconds) {
  if (trace_ == nullptr) return -1;
  const int64_t nanos =
      seconds > 0.0 ? static_cast<int64_t>(seconds * 1e9) : 0;
  const int child = trace_->AddSpan(name, span_, bridge_cursor_nanos_,
                                    nanos, /*bridged=*/true);
  bridge_cursor_nanos_ += nanos;
  return child;
}

}  // namespace savg
