// Registration hooks for the built-in algorithm adapters (internal).
//
// Each adapter translation unit defines one hook; RegisterBuiltinSolvers()
// (solvers/builtin.cc) calls them all, which keeps registration robust
// inside the static library (no reliance on static initializers the linker
// could drop).

#pragma once

namespace savg {

class SolverRegistry;

void RegisterAvgSolvers(SolverRegistry* registry);       // AVG, AVG+LS
void RegisterAvgShardSolver(SolverRegistry* registry);   // AVG-SHARD
void RegisterAvgDSolver(SolverRegistry* registry);       // AVG-D
void RegisterAvgStSolver(SolverRegistry* registry);      // AVG-ST
void RegisterIndependentRoundingSolver(SolverRegistry* registry);  // IR
void RegisterPerSolver(SolverRegistry* registry);        // PER
void RegisterFmgSolver(SolverRegistry* registry);        // FMG
void RegisterSdpSolver(SolverRegistry* registry);        // SDP
void RegisterGrfSolver(SolverRegistry* registry);        // GRF
void RegisterIpSolver(SolverRegistry* registry);         // IP
void RegisterBruteForceSolver(SolverRegistry* registry); // BRUTE

}  // namespace savg
