// The polymorphic solver abstraction every algorithm plugs into.
//
// A Solver wraps one end-to-end SVGIC algorithm (relaxation included where
// the algorithm needs one) behind Name() + Solve(). Callers — the batch
// engine, the bench harness, the CLI — address algorithms by string name
// through the SolverRegistry instead of a hard-coded enum, so adding an
// algorithm never touches a call site.
//
// Layering: this header depends only on core/ types. The per-algorithm
// option structs live in solver_options.h (included by adapters and by
// callers that tune options), keeping this interface free of the
// algorithm zoo.

#pragma once

#include <cstdint>
#include <string>

#include "core/configuration.h"
#include "core/objective.h"
#include "core/problem.h"
#include "util/status.h"

namespace savg {

struct FractionalSolution;
struct SolverOptions;

/// Per-call inputs shared by every solver.
struct SolverContext {
  /// Overrides the per-algorithm option seeds when nonzero. The batch
  /// engine derives one seed per task from indices (never from thread
  /// identity), which is what makes parallel runs deterministic.
  uint64_t seed = 0;
  /// Tuning knobs; nullptr = defaults for every algorithm.
  const SolverOptions* options = nullptr;
  /// Pre-solved compact LP relaxation for this instance (supporters
  /// built). Solvers that need a relaxation use it instead of re-solving;
  /// others ignore it.
  const FractionalSolution* shared_relaxation = nullptr;
};

/// Outcome of one solver run on one instance.
struct SolverRun {
  std::string solver;  ///< canonical registry name
  Configuration config;
  ObjectiveBreakdown breakdown;
  double scaled_total = 0.0;
  /// Wall time spent inside Solve() (includes an own LP solve, excludes a
  /// shared one).
  double seconds = 0.0;
  /// LP-relaxation solve time attributable to this run (shared or own);
  /// 0 for solvers that use no relaxation.
  double relaxation_seconds = 0.0;
  bool used_shared_relaxation = false;
  bool proven_optimal = false;  ///< exact solvers only
  int64_t iterations = 0;       ///< rounding/search iterations, if any

  /// Total attributable time: Solve() time plus the shared LP's share
  /// (an own LP solve is already inside `seconds`).
  double TotalSeconds() const {
    return seconds + (used_shared_relaxation ? relaxation_seconds : 0.0);
  }
};

/// Interface implemented by every algorithm adapter. Implementations are
/// stateless (all mutable state lives on the stack of Solve), so one
/// instance may serve concurrent Solve calls from the thread pool.
class Solver {
 public:
  virtual ~Solver() = default;

  /// Canonical name, e.g. "AVG-D". Lookup is case-insensitive.
  virtual std::string Name() const = 0;

  /// True if this solver consumes the compact LP relaxation for the given
  /// context — the batch engine then provides one through its shared
  /// per-instance cache.
  virtual bool NeedsRelaxation(const SolverContext& context) const {
    (void)context;
    return false;
  }

  /// Runs the algorithm end-to-end on one instance.
  virtual Result<SolverRun> Solve(const SvgicInstance& instance,
                                  const SolverContext& context) const = 0;
};

}  // namespace savg
