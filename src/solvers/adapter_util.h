// Shared plumbing for the built-in solver adapters (internal header).

#pragma once

#include <string>

#include "core/lp_formulation.h"
#include "core/objective.h"
#include "solvers/solver.h"
#include "solvers/solver_options.h"
#include "util/logging.h"

namespace savg {
namespace solvers_internal {

/// Context options, or process-wide defaults when none were supplied.
inline const SolverOptions& OptionsOf(const SolverContext& context) {
  static const SolverOptions kDefaults;
  return context.options != nullptr ? *context.options : kDefaults;
}

/// The compact relaxation for a run: the shared one when the caller
/// provides it, otherwise solved into `*local`.
struct RelaxationRef {
  const FractionalSolution* frac = nullptr;
  bool shared = false;
};

inline Result<RelaxationRef> ObtainRelaxation(const SvgicInstance& instance,
                                              const SolverContext& context,
                                              FractionalSolution* local) {
  if (context.shared_relaxation != nullptr) {
    return RelaxationRef{context.shared_relaxation, true};
  }
  auto solved = SolveRelaxation(instance, OptionsOf(context).relaxation);
  if (!solved.ok()) return solved.status();
  *local = std::move(solved).value();
  return RelaxationRef{local, false};
}

/// Fills the evaluation/timing tail of a SolverRun whose `config` is set.
inline void FinalizeRun(const SvgicInstance& instance,
                        const std::string& name, const Timer& timer,
                        SolverRun* run) {
  run->solver = name;
  run->seconds = timer.ElapsedSeconds();
  run->breakdown = Evaluate(instance, run->config);
  run->scaled_total = run->breakdown.ScaledTotal();
}

/// Task seed override: context.seed when nonzero, else the option seed.
inline uint64_t SeedOr(const SolverContext& context, uint64_t option_seed) {
  return context.seed != 0 ? context.seed : option_seed;
}

}  // namespace solvers_internal
}  // namespace savg
