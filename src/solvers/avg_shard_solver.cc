// AVG-SHARD adapter: community-partitioned per-shard LPs coordinated by
// Lagrangian duals on the cut pairs, then per-shard CSF rounding with a
// global boundary re-round (shard/shard_solve.h). The scalable sibling of
// AVG for instances past the single-LP practical limit.

#include "core/avg.h"
#include "shard/shard_solve.h"
#include "solvers/adapter_util.h"
#include "solvers/builtin_solvers.h"
#include "solvers/solver_registry.h"

namespace savg {
namespace {

using solvers_internal::FinalizeRun;
using solvers_internal::ObtainRelaxation;
using solvers_internal::OptionsOf;
using solvers_internal::SeedOr;

class AvgShardSolver : public Solver {
 public:
  std::string Name() const override { return "AVG-SHARD"; }

  Result<SolverRun> Solve(const SvgicInstance& instance,
                          const SolverContext& context) const override {
    const SolverOptions& options = OptionsOf(context);
    SolverRun run;
    Timer timer;
    if (instance.lambda() >= 1.0 || instance.lambda() <= 0.0) {
      // The dual bonus cannot enter a shard LP at the lambda endpoints
      // (see shard_solve.h); behave like plain AVG there.
      FractionalSolution local;
      SAVG_ASSIGN_OR_RETURN(auto relaxation,
                            ObtainRelaxation(instance, context, &local));
      AvgOptions avg = options.avg;
      avg.seed = SeedOr(context, avg.seed);
      SAVG_ASSIGN_OR_RETURN(
          auto rounded, RunAvgBest(instance, *relaxation.frac,
                                   std::max(1, options.avg_repeats), avg));
      run.config = std::move(rounded.config);
      run.iterations = rounded.csf_iterations;
      run.used_shared_relaxation = relaxation.shared;
      run.relaxation_seconds = relaxation.frac->solve_seconds;
      FinalizeRun(instance, Name(), timer, &run);
      return run;
    }
    ShardSolveOptions shard = options.shard;
    shard.relaxation = options.relaxation;
    shard.rounding = options.avg;
    shard.rounding_repeats = std::max(1, options.avg_repeats);
    shard.seed = SeedOr(context, shard.seed);
    SAVG_ASSIGN_OR_RETURN(auto sharded, SolveSharded(instance, shard));
    run.config = std::move(sharded.config);
    run.iterations = sharded.stats.csf_iterations;
    run.relaxation_seconds = sharded.stats.lp_seconds;
    FinalizeRun(instance, Name(), timer, &run);
    return run;
  }
};

}  // namespace

void RegisterAvgShardSolver(SolverRegistry* registry) {
  (void)registry->Register(
      "AVG-SHARD", [] { return std::make_unique<AvgShardSolver>(); },
      {"avg-shard", "avg_shard", "shard"});
}

}  // namespace savg
