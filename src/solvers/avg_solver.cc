// AVG and AVG+LS adapters: LP relaxation + best-of-k randomized CSF
// rounding (Corollary 4.1), optionally polished by local search.

#include "core/avg.h"
#include "core/local_search.h"
#include "solvers/adapter_util.h"
#include "solvers/builtin_solvers.h"
#include "solvers/solver_registry.h"

namespace savg {
namespace {

using solvers_internal::FinalizeRun;
using solvers_internal::ObtainRelaxation;
using solvers_internal::OptionsOf;
using solvers_internal::SeedOr;

class AvgSolver : public Solver {
 public:
  explicit AvgSolver(bool local_search) : local_search_(local_search) {}

  std::string Name() const override {
    return local_search_ ? "AVG+LS" : "AVG";
  }

  bool NeedsRelaxation(const SolverContext&) const override { return true; }

  Result<SolverRun> Solve(const SvgicInstance& instance,
                          const SolverContext& context) const override {
    const SolverOptions& options = OptionsOf(context);
    SolverRun run;
    Timer timer;
    FractionalSolution local;
    SAVG_ASSIGN_OR_RETURN(auto relaxation,
                          ObtainRelaxation(instance, context, &local));
    AvgOptions avg = options.avg;
    avg.seed = SeedOr(context, avg.seed);
    auto rounded = RunAvgBest(instance, *relaxation.frac,
                              std::max(1, options.avg_repeats), avg);
    if (!rounded.ok()) return rounded.status();
    run.iterations = rounded->csf_iterations;
    if (local_search_) {
      LocalSearchOptions ls = options.local_search;
      ls.size_cap = options.avg.size_cap;
      auto polished = ImproveByLocalSearch(instance, rounded->config, ls);
      if (!polished.ok()) return polished.status();
      run.config = std::move(polished->config);
    } else {
      run.config = std::move(rounded->config);
    }
    run.used_shared_relaxation = relaxation.shared;
    run.relaxation_seconds = relaxation.frac->solve_seconds;
    FinalizeRun(instance, Name(), timer, &run);
    return run;
  }

 private:
  const bool local_search_;
};

}  // namespace

void RegisterAvgSolvers(SolverRegistry* registry) {
  (void)registry->Register(
      "AVG", [] { return std::make_unique<AvgSolver>(false); });
  (void)registry->Register(
      "AVG+LS", [] { return std::make_unique<AvgSolver>(true); },
      {"avg-ls", "avg_ls"});
}

}  // namespace savg
