#include "solvers/builtin_solvers.h"
#include "solvers/solver_registry.h"

namespace savg {

void RegisterBuiltinSolvers(SolverRegistry* registry) {
  // The paper's default comparison order, then the extras.
  RegisterAvgSolvers(registry);
  RegisterAvgShardSolver(registry);
  RegisterAvgDSolver(registry);
  RegisterPerSolver(registry);
  RegisterFmgSolver(registry);
  RegisterSdpSolver(registry);
  RegisterGrfSolver(registry);
  RegisterIpSolver(registry);
  RegisterAvgStSolver(registry);
  RegisterBruteForceSolver(registry);
  RegisterIndependentRoundingSolver(registry);
}

}  // namespace savg
