// Name -> Solver registry with self-registration support.
//
// The registry maps case-insensitive names (plus aliases: "avg-ls" for
// "AVG+LS", "bf" for "BRUTE", ...) to lazily constructed solver
// singletons. All built-in algorithms register on first access to
// Global(), so merely linking savg_core makes the whole zoo resolvable by
// name — no call site enumerates algorithms anymore.
//
// External code can add solvers two ways:
//  * imperatively: SolverRegistry::Global().Register("NAME", factory);
//  * declaratively: SAVG_REGISTER_SOLVER(MySolver) at namespace scope in a
//    translation unit that is linked into the final binary. (Inside a
//    static library the linker may drop such a TU unless something
//    references it — the built-ins therefore register imperatively from
//    RegisterBuiltinSolvers().)

#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "solvers/solver.h"
#include "util/status.h"

namespace savg {

class SolverRegistry {
 public:
  using Factory = std::function<std::unique_ptr<Solver>()>;

  /// The process-wide registry, with all built-in solvers registered.
  static SolverRegistry& Global();

  /// Registers a factory under `name` (case-insensitive) plus optional
  /// aliases. Fails with kAlreadyExists if any name is taken.
  Status Register(const std::string& name, Factory factory,
                  const std::vector<std::string>& aliases = {});

  /// Resolves a name or alias to the (lazily constructed, process-owned)
  /// solver instance. Unknown names fail with kNotFound and a message
  /// listing the known names.
  Result<const Solver*> Find(const std::string& name) const;

  /// Constructs a fresh instance (for callers that want to own one).
  Result<std::unique_ptr<Solver>> Create(const std::string& name) const;

  bool Contains(const std::string& name) const;

  /// Canonical names in registration order (aliases excluded).
  std::vector<std::string> Names() const;

 private:
  struct Entry {
    std::string canonical_name;
    Factory factory;
    std::unique_ptr<Solver> singleton;  // created on first Find
  };

  Result<Entry*> LookupLocked(const std::string& name) const;

  mutable std::mutex mu_;
  /// Lowercased name/alias -> index into entries_.
  std::map<std::string, size_t> index_;
  mutable std::vector<std::unique_ptr<Entry>> entries_;
};

/// Registers every built-in algorithm adapter (idempotent; called by
/// SolverRegistry::Global()).
void RegisterBuiltinSolvers(SolverRegistry* registry);

namespace internal {

/// Helper for SAVG_REGISTER_SOLVER: registers at static-init time.
struct SolverRegistrar {
  SolverRegistrar(const std::string& name, SolverRegistry::Factory factory,
                  const std::vector<std::string>& aliases = {});
};

}  // namespace internal

/// Self-registers `SolverClass` (default-constructible) under its Name().
#define SAVG_REGISTER_SOLVER(SolverClass)                             \
  static const ::savg::internal::SolverRegistrar                      \
      savg_registrar_##SolverClass(                                   \
          SolverClass().Name(),                                       \
          []() -> std::unique_ptr<::savg::Solver> {                   \
            return std::make_unique<SolverClass>();                   \
          })

}  // namespace savg
