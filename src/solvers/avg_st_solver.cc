// AVG-ST adapter: the size-capped SVGIC-ST pipeline (Section 4.4).
//
// When the configured relaxation is the compact proxy (use_st_lp = false),
// the adapter can consume the batch engine's shared per-instance LP; the
// exact ST LP is solver-specific and always solved locally.

#include "core/avg_st.h"
#include "solvers/adapter_util.h"
#include "solvers/builtin_solvers.h"
#include "solvers/solver_registry.h"

namespace savg {
namespace {

using solvers_internal::FinalizeRun;
using solvers_internal::ObtainRelaxation;
using solvers_internal::OptionsOf;
using solvers_internal::SeedOr;

class AvgStSolver : public Solver {
 public:
  std::string Name() const override { return "AVG-ST"; }

  bool NeedsRelaxation(const SolverContext& context) const override {
    return !OptionsOf(context).st.use_st_lp;
  }

  Result<SolverRun> Solve(const SvgicInstance& instance,
                          const SolverContext& context) const override {
    const SolverOptions& options = OptionsOf(context);
    StOptions st = options.st;
    st.avg.seed = SeedOr(context, st.avg.seed);
    // The compact-proxy path uses the top-level relaxation options — the
    // same LP the rest of the AVG family (and the batch engine's shared
    // cache) solves — so shared and standalone runs round the identical
    // fractional solution. st.relaxation only configures the exact ST LP.
    if (!st.use_st_lp) st.relaxation = options.relaxation;
    SolverRun run;
    Timer timer;
    if (st.use_st_lp || context.shared_relaxation == nullptr) {
      auto result = RunAvgSt(instance, st);
      if (!result.ok()) return result.status();
      run.config = std::move(result->config);
      run.iterations = result->csf_iterations;
    } else {
      // Shared compact relaxation: replicate RunAvgSt's rounding step on it.
      if (st.size_cap < 1) {
        return Status::InvalidArgument("size cap must be >= 1");
      }
      AvgOptions avg = st.avg;
      avg.size_cap = st.size_cap;
      auto result = RunAvgBest(instance, *context.shared_relaxation,
                               std::max(1, st.avg_repeats), avg);
      if (!result.ok()) return result.status();
      run.config = std::move(result->config);
      run.iterations = result->csf_iterations;
      run.used_shared_relaxation = true;
      run.relaxation_seconds = context.shared_relaxation->solve_seconds;
    }
    FinalizeRun(instance, Name(), timer, &run);
    return run;
  }
};

}  // namespace

void RegisterAvgStSolver(SolverRegistry* registry) {
  (void)registry->Register(
      "AVG-ST", [] { return std::make_unique<AvgStSolver>(); },
      {"avg_st", "avgst"});
}

}  // namespace savg
