// BRUTE adapter: exhaustive search — the tiny-instance test oracle.

#include "baselines/brute_force.h"
#include "solvers/adapter_util.h"
#include "solvers/builtin_solvers.h"
#include "solvers/solver_registry.h"

namespace savg {
namespace {

using solvers_internal::FinalizeRun;
using solvers_internal::OptionsOf;

class BruteForceSolver : public Solver {
 public:
  std::string Name() const override { return "BRUTE"; }

  Result<SolverRun> Solve(const SvgicInstance& instance,
                          const SolverContext& context) const override {
    SolverRun run;
    Timer timer;
    auto result = SolveBruteForce(instance, OptionsOf(context).brute_force);
    if (!result.ok()) return result.status();
    run.config = std::move(result->config);
    run.proven_optimal = true;
    run.iterations =
        static_cast<int64_t>(result->configurations_examined);
    FinalizeRun(instance, Name(), timer, &run);
    return run;
  }
};

}  // namespace

void RegisterBruteForceSolver(SolverRegistry* registry) {
  (void)registry->Register(
      "BRUTE", [] { return std::make_unique<BruteForceSolver>(); },
      {"bf", "brute-force"});
}

}  // namespace savg
