// SDP adapter: the socially-tight-subgroup baseline (static partition).

#include "baselines/sdp.h"
#include "solvers/adapter_util.h"
#include "solvers/builtin_solvers.h"
#include "solvers/solver_registry.h"

namespace savg {
namespace {

using solvers_internal::FinalizeRun;
using solvers_internal::OptionsOf;

class SdpSolver : public Solver {
 public:
  std::string Name() const override { return "SDP"; }

  Result<SolverRun> Solve(const SvgicInstance& instance,
                          const SolverContext& context) const override {
    SolverRun run;
    Timer timer;
    auto config = RunSdp(instance, OptionsOf(context).sdp);
    if (!config.ok()) return config.status();
    run.config = std::move(config).value();
    FinalizeRun(instance, Name(), timer, &run);
    return run;
  }
};

}  // namespace

void RegisterSdpSolver(SolverRegistry* registry) {
  (void)registry->Register("SDP",
                           [] { return std::make_unique<SdpSolver>(); });
}

}  // namespace savg
