// Aggregated tuning knobs for every built-in solver.
//
// One struct bundles the per-algorithm option structs so a caller can
// configure a whole comparison run in one place and hand it to any solver
// via SolverContext::options. Field defaults match the paper's default
// experiment setup. runner.h's RunnerConfig is an alias of this struct.

#pragma once

#include "baselines/brute_force.h"
#include "baselines/fmg.h"
#include "baselines/grf.h"
#include "baselines/ip_exact.h"
#include "baselines/sdp.h"
#include "core/avg.h"
#include "core/avg_d.h"
#include "core/avg_st.h"
#include "core/local_search.h"
#include "core/lp_formulation.h"
#include "shard/shard_solve.h"

namespace savg {

struct SolverOptions {
  RelaxationOptions relaxation;
  AvgOptions avg;
  /// Corollary 4.1 repeats for AVG / AVG+LS (best-of-k rounding).
  int avg_repeats = 3;
  AvgDOptions avg_d;
  /// AVG-ST knobs. With use_st_lp = false the top-level `relaxation`
  /// above governs the compact proxy LP; st.relaxation only configures
  /// the exact slot-indexed ST LP.
  StOptions st;
  LocalSearchOptions local_search;
  FmgOptions fmg;
  SdpOptions sdp;
  GrfOptions grf;
  IpExactOptions ip;
  BruteForceOptions brute_force;
  IndependentRoundingOptions independent_rounding;
  /// AVG-SHARD knobs (shard/shard_solve.h). The adapter overrides
  /// shard.relaxation with the top-level `relaxation` and shard.rounding
  /// with `avg`, so AVG and AVG-SHARD comparisons solve and round alike;
  /// only the plan / dual-coordination knobs here are shard-specific.
  ShardSolveOptions shard;
};

}  // namespace savg
