// AVG-D adapter: LP relaxation + the derandomized CSF rounding
// (Algorithm 3). Fully deterministic — ignores the task seed.

#include "core/avg_d.h"
#include "solvers/adapter_util.h"
#include "solvers/builtin_solvers.h"
#include "solvers/solver_registry.h"

namespace savg {
namespace {

using solvers_internal::FinalizeRun;
using solvers_internal::ObtainRelaxation;
using solvers_internal::OptionsOf;

class AvgDSolver : public Solver {
 public:
  std::string Name() const override { return "AVG-D"; }

  bool NeedsRelaxation(const SolverContext&) const override { return true; }

  Result<SolverRun> Solve(const SvgicInstance& instance,
                          const SolverContext& context) const override {
    const SolverOptions& options = OptionsOf(context);
    SolverRun run;
    Timer timer;
    FractionalSolution local;
    SAVG_ASSIGN_OR_RETURN(auto relaxation,
                          ObtainRelaxation(instance, context, &local));
    auto rounded = RunAvgD(instance, *relaxation.frac, options.avg_d);
    if (!rounded.ok()) return rounded.status();
    run.config = std::move(rounded->config);
    run.iterations = rounded->csf_iterations;
    run.used_shared_relaxation = relaxation.shared;
    run.relaxation_seconds = relaxation.frac->solve_seconds;
    FinalizeRun(instance, Name(), timer, &run);
    return run;
  }
};

}  // namespace

void RegisterAvgDSolver(SolverRegistry* registry) {
  (void)registry->Register(
      "AVG-D", [] { return std::make_unique<AvgDSolver>(); },
      {"avgd", "avg_d"});
}

}  // namespace savg
