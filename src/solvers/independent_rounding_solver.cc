// IR adapter: Algorithm 1's independent per-unit rounding — the measurable
// strawman Lemma 3 shows loses a factor m of social utility.

#include "core/avg.h"
#include "solvers/adapter_util.h"
#include "solvers/builtin_solvers.h"
#include "solvers/solver_registry.h"

namespace savg {
namespace {

using solvers_internal::FinalizeRun;
using solvers_internal::ObtainRelaxation;
using solvers_internal::OptionsOf;
using solvers_internal::SeedOr;

class IndependentRoundingSolver : public Solver {
 public:
  std::string Name() const override { return "IR"; }

  bool NeedsRelaxation(const SolverContext&) const override { return true; }

  Result<SolverRun> Solve(const SvgicInstance& instance,
                          const SolverContext& context) const override {
    const SolverOptions& options = OptionsOf(context);
    SolverRun run;
    Timer timer;
    FractionalSolution local;
    SAVG_ASSIGN_OR_RETURN(auto relaxation,
                          ObtainRelaxation(instance, context, &local));
    IndependentRoundingOptions ir = options.independent_rounding;
    ir.seed = SeedOr(context, ir.seed);
    auto rounded = RunIndependentRounding(instance, *relaxation.frac, ir);
    if (!rounded.ok()) return rounded.status();
    run.config = std::move(rounded->config);
    run.iterations = rounded->duplicate_draws;
    run.used_shared_relaxation = relaxation.shared;
    run.relaxation_seconds = relaxation.frac->solve_seconds;
    FinalizeRun(instance, Name(), timer, &run);
    return run;
  }
};

}  // namespace

void RegisterIndependentRoundingSolver(SolverRegistry* registry) {
  (void)registry->Register(
      "IR", [] { return std::make_unique<IndependentRoundingSolver>(); },
      {"independent", "independent-rounding"});
}

}  // namespace savg
