#include "solvers/solver_registry.h"

#include <algorithm>
#include <cctype>
#include <sstream>

#include "util/logging.h"

namespace savg {

namespace {

std::string Lowercase(const std::string& s) {
  std::string out = s;
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char ch) {
    return static_cast<char>(std::tolower(ch));
  });
  return out;
}

}  // namespace

SolverRegistry& SolverRegistry::Global() {
  static SolverRegistry* registry = [] {
    auto* r = new SolverRegistry();
    RegisterBuiltinSolvers(r);
    return r;
  }();
  return *registry;
}

Status SolverRegistry::Register(const std::string& name, Factory factory,
                                const std::vector<std::string>& aliases) {
  if (name.empty()) return Status::InvalidArgument("solver name is empty");
  if (!factory) return Status::InvalidArgument("solver factory is null");
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> keys = {Lowercase(name)};
  for (const std::string& alias : aliases) keys.push_back(Lowercase(alias));
  for (const std::string& key : keys) {
    if (index_.count(key)) {
      return Status::AlreadyExists("solver name already registered: " + key);
    }
  }
  auto entry = std::make_unique<Entry>();
  entry->canonical_name = name;
  entry->factory = std::move(factory);
  const size_t idx = entries_.size();
  entries_.push_back(std::move(entry));
  for (const std::string& key : keys) index_[key] = idx;
  return Status::OK();
}

Result<SolverRegistry::Entry*> SolverRegistry::LookupLocked(
    const std::string& name) const {
  auto it = index_.find(Lowercase(name));
  if (it == index_.end()) {
    std::ostringstream msg;
    msg << "unknown solver \"" << name << "\"; known solvers:";
    for (const auto& entry : entries_) msg << " " << entry->canonical_name;
    return Status::NotFound(msg.str());
  }
  return entries_[it->second].get();
}

Result<const Solver*> SolverRegistry::Find(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  SAVG_ASSIGN_OR_RETURN(Entry * entry, LookupLocked(name));
  if (entry->singleton == nullptr) entry->singleton = entry->factory();
  return static_cast<const Solver*>(entry->singleton.get());
}

Result<std::unique_ptr<Solver>> SolverRegistry::Create(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  SAVG_ASSIGN_OR_RETURN(Entry * entry, LookupLocked(name));
  return entry->factory();
}

bool SolverRegistry::Contains(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return index_.count(Lowercase(name)) > 0;
}

std::vector<std::string> SolverRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& entry : entries_) names.push_back(entry->canonical_name);
  return names;
}

namespace internal {

SolverRegistrar::SolverRegistrar(const std::string& name,
                                 SolverRegistry::Factory factory,
                                 const std::vector<std::string>& aliases) {
  Status st =
      SolverRegistry::Global().Register(name, std::move(factory), aliases);
  if (!st.ok()) {
    // A name collision here means Find() will keep returning the earlier
    // solver — surface it instead of silently dropping the registration.
    SAVG_LOG(Warning) << "SAVG_REGISTER_SOLVER(" << name
                      << ") ignored: " << st;
  }
}

}  // namespace internal
}  // namespace savg
