// FMG adapter: the whole-group bundled-itemset baseline.

#include "baselines/fmg.h"
#include "solvers/adapter_util.h"
#include "solvers/builtin_solvers.h"
#include "solvers/solver_registry.h"

namespace savg {
namespace {

using solvers_internal::FinalizeRun;
using solvers_internal::OptionsOf;

class FmgSolver : public Solver {
 public:
  std::string Name() const override { return "FMG"; }

  Result<SolverRun> Solve(const SvgicInstance& instance,
                          const SolverContext& context) const override {
    SolverRun run;
    Timer timer;
    auto config = RunFmg(instance, OptionsOf(context).fmg);
    if (!config.ok()) return config.status();
    run.config = std::move(config).value();
    FinalizeRun(instance, Name(), timer, &run);
    return run;
  }
};

}  // namespace

void RegisterFmgSolver(SolverRegistry* registry) {
  (void)registry->Register("FMG",
                           [] { return std::make_unique<FmgSolver>(); });
}

}  // namespace savg
