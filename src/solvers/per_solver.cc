// PER adapter: the personalized top-k baseline (no social coordination).

#include "baselines/per.h"
#include "solvers/adapter_util.h"
#include "solvers/builtin_solvers.h"
#include "solvers/solver_registry.h"

namespace savg {
namespace {

using solvers_internal::FinalizeRun;

class PerSolver : public Solver {
 public:
  std::string Name() const override { return "PER"; }

  Result<SolverRun> Solve(const SvgicInstance& instance,
                          const SolverContext&) const override {
    SolverRun run;
    Timer timer;
    auto config = RunPersonalizedTopK(instance);
    if (!config.ok()) return config.status();
    run.config = std::move(config).value();
    FinalizeRun(instance, Name(), timer, &run);
    return run;
  }
};

}  // namespace

void RegisterPerSolver(SolverRegistry* registry) {
  (void)registry->Register("PER",
                           [] { return std::make_unique<PerSolver>(); });
}

}  // namespace savg
