// IP adapter: the exact integer-programming baseline (in-repo B&B).

#include "baselines/ip_exact.h"
#include "solvers/adapter_util.h"
#include "solvers/builtin_solvers.h"
#include "solvers/solver_registry.h"

namespace savg {
namespace {

using solvers_internal::FinalizeRun;
using solvers_internal::OptionsOf;

class IpSolver : public Solver {
 public:
  std::string Name() const override { return "IP"; }

  Result<SolverRun> Solve(const SvgicInstance& instance,
                          const SolverContext& context) const override {
    SolverRun run;
    Timer timer;
    auto result = SolveIpExact(instance, OptionsOf(context).ip);
    if (!result.ok()) return result.status();
    run.config = std::move(result->config);
    run.proven_optimal = result->proven_optimal;
    run.iterations = result->nodes_explored;
    FinalizeRun(instance, Name(), timer, &run);
    return run;
  }
};

}  // namespace

void RegisterIpSolver(SolverRegistry* registry) {
  (void)registry->Register(
      "IP", [] { return std::make_unique<IpSolver>(); }, {"ip-exact"});
}

}  // namespace savg
