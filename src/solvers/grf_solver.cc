// GRF adapter: the preference-clustering baseline (seeded k-means).

#include "baselines/grf.h"
#include "solvers/adapter_util.h"
#include "solvers/builtin_solvers.h"
#include "solvers/solver_registry.h"

namespace savg {
namespace {

using solvers_internal::FinalizeRun;
using solvers_internal::OptionsOf;
using solvers_internal::SeedOr;

class GrfSolver : public Solver {
 public:
  std::string Name() const override { return "GRF"; }

  Result<SolverRun> Solve(const SvgicInstance& instance,
                          const SolverContext& context) const override {
    SolverRun run;
    Timer timer;
    GrfOptions grf = OptionsOf(context).grf;
    grf.seed = SeedOr(context, grf.seed);
    auto config = RunGrf(instance, grf);
    if (!config.ok()) return config.status();
    run.config = std::move(config).value();
    FinalizeRun(instance, Name(), timer, &run);
    return run;
  }
};

}  // namespace

void RegisterGrfSolver(SolverRegistry* registry) {
  (void)registry->Register("GRF",
                           [] { return std::make_unique<GrfSolver>(); });
}

}  // namespace savg
