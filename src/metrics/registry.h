// Central serving-metrics registry: counters, gauges, and streaming
// latency histograms with p50/p99 readout.
//
// The serving front-end (src/serve/) records per-command latency, queue
// depth, coalesce ratio and shed counts here; `svgic_serverd` exposes the
// whole registry through the wire status command and the HTTP /metrics
// endpoint. Everything is lock-free on the hot path: counters/gauges are
// single atomics, histograms are fixed geometric bucket arrays of atomics
// (an Observe() is one increment — no allocation, no lock), so recording
// a metric costs nanoseconds even under heavy multi-worker traffic.
//
// Histogram quantiles are streaming estimates: values are bucketed
// geometrically between kHistogramMin and kHistogramMax seconds with
// ~7% resolution per bucket (plenty for p50/p99 latency telemetry; the
// paper-accuracy percentiles in bench tables still use util/stats.h over
// raw samples).
//
// Name lookup (GetCounter/GetGauge/GetHistogram) takes a registry mutex —
// do it once at setup and keep the pointer; handles stay valid for the
// registry's lifetime.

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace savg {

/// Monotonic event count.
class Counter {
 public:
  void Increment(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Instantaneous level (queue depth, live connections).
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Increment(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void Decrement(int64_t delta = 1) {
    value_.fetch_sub(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Streaming latency histogram (geometric buckets, see file comment).
class Histogram {
 public:
  static constexpr double kMin = 1e-7;   ///< 100 ns
  static constexpr double kMax = 100.0;  ///< 100 s
  static constexpr int kBuckets = 300;

  Histogram();

  /// Records one observation (seconds). Values at or below kMin land in a
  /// dedicated underflow bucket spanning [0, kMin] (so sub-microsecond
  /// samples don't inflate interpolated quantiles to >= kMin); values at
  /// or above kMax land in the last geometric bucket.
  void Observe(double seconds);

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  /// Sum of all observations (seconds); mean() = sum/count.
  double sum() const;
  double mean() const;

  /// Streaming quantile estimate, q in [0, 1] (0.5 = p50, 0.99 = p99).
  /// Linear interpolation inside the hit bucket; 0 when empty.
  double Quantile(double q) const;

  /// Bucket layout is static so snapshots and scrapers can reconstruct
  /// bounds without a histogram instance. Slot 0 is the underflow bucket
  /// [0, kMin]; slots 1..kBuckets are the geometric buckets.
  static int BucketIndex(double seconds);
  static double BucketLower(int index);
  static double BucketUpper(int index);

  /// Current count in one bucket slot (0..kBuckets inclusive).
  int64_t BucketCount(int index) const {
    return buckets_[index].load(std::memory_order_relaxed);
  }

  /// Interpolated quantile over an arbitrary bucket-count array laid out
  /// like this histogram's buckets (used for windowed quantiles computed
  /// from captured bucket deltas).
  static double QuantileOf(const std::vector<int64_t>& buckets, double q);

 private:
  std::vector<std::atomic<int64_t>> buckets_;
  std::atomic<int64_t> count_{0};
  /// Seconds accumulated as integer nanoseconds so Observe() stays a pure
  /// atomic add (no CAS loop for a double).
  std::atomic<int64_t> sum_nanos_{0};
};

/// One exported metric row (TextDump/JsonDump flatten histograms into
/// count/mean/p50/p99 pseudo-metrics).
struct MetricSample {
  std::string name;
  double value = 0.0;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Finds or creates; the returned handle lives as long as the registry.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// Flat snapshot: counters/gauges as-is; each histogram H expands to
  /// "H.count", "H.mean", "H.p50", "H.p99" (seconds).
  std::vector<MetricSample> Snapshot() const;

  /// "name value" lines, sorted by name.
  std::string TextDump() const;
  /// {"metrics": [{"name": ..., "value": ...}, ...], "histograms": [...]}.
  /// The "metrics" array is the same shape the bench --json artifacts use,
  /// so tooling can share parsers; the "histograms" array additionally
  /// exports sum/count and the non-empty bucket bounds so scrapers can
  /// derive rates and averages (not just the flattened quantiles).
  std::string JsonDump() const;
  /// Prometheus text exposition format (version 0.0.4). Metric names are
  /// sanitized (dots -> underscores) and prefixed "savg_"; histograms emit
  /// cumulative _bucket{le=...} series plus _sum and _count.
  std::string PrometheusDump() const;

  /// Name -> handle snapshots for iteration (time-series capture). The
  /// pointers stay valid for the registry's lifetime.
  std::vector<std::pair<std::string, Counter*>> Counters() const;
  std::vector<std::pair<std::string, Gauge*>> Gauges() const;
  std::vector<std::pair<std::string, Histogram*>> Histograms() const;

 private:
  mutable std::mutex mu_;
  // Deques-of-unique_ptr keep handles stable across growth.
  std::vector<std::pair<std::string, std::unique_ptr<Counter>>> counters_;
  std::vector<std::pair<std::string, std::unique_ptr<Gauge>>> gauges_;
  std::vector<std::pair<std::string, std::unique_ptr<Histogram>>>
      histograms_;
};

}  // namespace savg
