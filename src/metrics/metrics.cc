#include "metrics/metrics.h"

#include <algorithm>
#include <vector>

namespace savg {

SubgroupMetrics ComputeSubgroupMetrics(const SvgicInstance& instance,
                                       const Configuration& config) {
  SubgroupMetrics out;
  const int k = instance.num_slots();
  const int n = instance.num_users();

  int64_t intra = 0, inter = 0;
  for (SlotId s = 0; s < k; ++s) {
    for (const FriendPair& pair : instance.pairs()) {
      const ItemId cu = config.At(pair.u, s);
      const ItemId cv = config.At(pair.v, s);
      if (cu == kNoItem || cv == kNoItem) continue;
      (cu == cv ? intra : inter)++;
    }
  }
  const int64_t total_pair_slots = intra + inter;
  if (total_pair_slots > 0) {
    out.intra_fraction = static_cast<double>(intra) / total_pair_slots;
    out.inter_fraction = static_cast<double>(inter) / total_pair_slots;
  }

  // Normalized subgroup density.
  const double base_density = instance.graph().UndirectedDensity();
  double density_sum = 0.0;
  for (SlotId s = 0; s < k; ++s) {
    double slot_density = 0.0;
    int groups_counted = 0;
    for (const auto& group : config.GroupsAtSlot(s)) {
      const int sz = static_cast<int>(group.members.size());
      if (sz < 2) continue;
      const int pairs = instance.graph().CountInducedPairs(group.members);
      const double possible = static_cast<double>(sz) * (sz - 1) / 2.0;
      slot_density += pairs / possible;
      ++groups_counted;
    }
    if (groups_counted > 0) density_sum += slot_density / groups_counted;
  }
  if (base_density > 0.0 && k > 0) {
    out.normalized_density = density_sum / k / base_density;
  }

  // Co-display% over friend pairs, Alone% over users.
  std::vector<bool> has_codisplay(n, false);
  int co_pairs = 0;
  for (const FriendPair& pair : instance.pairs()) {
    bool shared = false;
    for (SlotId s = 0; s < k && !shared; ++s) {
      const ItemId cu = config.At(pair.u, s);
      shared = cu != kNoItem && cu == config.At(pair.v, s);
    }
    if (shared) {
      ++co_pairs;
      has_codisplay[pair.u] = true;
      has_codisplay[pair.v] = true;
    }
  }
  if (!instance.pairs().empty()) {
    out.co_display_rate =
        static_cast<double>(co_pairs) / instance.pairs().size();
  }
  int alone = 0;
  for (UserId u = 0; u < n; ++u) {
    if (!has_codisplay[u]) ++alone;
  }
  out.alone_rate = n > 0 ? static_cast<double>(alone) / n : 0.0;
  return out;
}

double UpperBoundUtility(const SvgicInstance& instance, UserId u) {
  const double lambda = instance.lambda();
  const int m = instance.num_items();
  std::vector<double> w_bar(m, 0.0);
  for (ItemId c = 0; c < m; ++c) {
    w_bar[c] = (1.0 - lambda) * instance.p(u, c);
  }
  for (const EdgeId e : instance.graph().OutEdgeIds(u)) {
    for (const ItemValue& iv : instance.TauEntries(e)) {
      w_bar[iv.item] += lambda * iv.value;
    }
  }
  std::nth_element(w_bar.begin(), w_bar.begin() + instance.num_slots() - 1,
                   w_bar.end(), std::greater<double>());
  double bound = 0.0;
  for (SlotId s = 0; s < instance.num_slots(); ++s) bound += w_bar[s];
  return bound;
}

std::vector<double> RegretRatios(const SvgicInstance& instance,
                                 const Configuration& config,
                                 const EvaluateOptions& options) {
  const std::vector<double> achieved =
      EvaluatePerUser(instance, config, options);
  std::vector<double> regret(instance.num_users(), 0.0);
  for (UserId u = 0; u < instance.num_users(); ++u) {
    const double bound = UpperBoundUtility(instance, u);
    if (bound <= 0.0) {
      regret[u] = 0.0;
      continue;
    }
    regret[u] = std::clamp(1.0 - achieved[u] / bound, 0.0, 1.0);
  }
  return regret;
}

int SubgroupChangeEditDistance(const SvgicInstance& instance,
                               const Configuration& config) {
  int distance = 0;
  for (SlotId s = 0; s + 1 < instance.num_slots(); ++s) {
    for (const FriendPair& pair : instance.pairs()) {
      const bool together_now =
          config.At(pair.u, s) != kNoItem &&
          config.At(pair.u, s) == config.At(pair.v, s);
      const bool together_next =
          config.At(pair.u, s + 1) != kNoItem &&
          config.At(pair.u, s + 1) == config.At(pair.v, s + 1);
      if (together_now != together_next) ++distance;
    }
  }
  return distance;
}

}  // namespace savg
