#include "metrics/timeseries.h"

#include <algorithm>
#include <sstream>

namespace savg {

int64_t WindowedSnapshot::CounterDelta(const std::string& name) const {
  for (const CounterRow& row : counters) {
    if (row.name == name) return row.delta;
  }
  return 0;
}

double WindowedSnapshot::CounterRate(const std::string& name) const {
  for (const CounterRow& row : counters) {
    if (row.name == name) return row.rate;
  }
  return 0.0;
}

int64_t WindowedSnapshot::GaugeLast(const std::string& name) const {
  for (const GaugeRow& row : gauges) {
    if (row.name == name) return row.last;
  }
  return 0;
}

int64_t WindowedSnapshot::GaugeMax(const std::string& name) const {
  for (const GaugeRow& row : gauges) {
    if (row.name == name) return row.max;
  }
  return 0;
}

const WindowedSnapshot::HistogramRow* WindowedSnapshot::FindHistogram(
    const std::string& name) const {
  for (const HistogramRow& row : histograms) {
    if (row.name == name) return &row;
  }
  return nullptr;
}

std::string WindowedSnapshot::JsonDump() const {
  std::ostringstream out;
  out.precision(9);
  out << "{\"windows\": " << windows << ", \"seconds\": " << seconds
      << ", \"counters\": [";
  bool first = true;
  for (const CounterRow& row : counters) {
    if (!first) out << ", ";
    first = false;
    out << "{\"name\": \"" << row.name << "\", \"delta\": " << row.delta
        << ", \"rate\": " << row.rate << "}";
  }
  out << "], \"gauges\": [";
  first = true;
  for (const GaugeRow& row : gauges) {
    if (!first) out << ", ";
    first = false;
    out << "{\"name\": \"" << row.name << "\", \"last\": " << row.last
        << ", \"max\": " << row.max << "}";
  }
  out << "], \"histograms\": [";
  first = true;
  for (const HistogramRow& row : histograms) {
    if (!first) out << ", ";
    first = false;
    out << "{\"name\": \"" << row.name << "\", \"count\": " << row.count
        << ", \"rate\": " << row.rate << ", \"mean\": " << row.mean
        << ", \"p50\": " << row.p50 << ", \"p99\": " << row.p99 << "}";
  }
  out << "]}";
  return out.str();
}

MetricsTimeSeries::MetricsTimeSeries(MetricsRegistry* registry,
                                     TimeSeriesOptions options)
    : registry_(registry),
      options_(options),
      last_capture_(std::chrono::steady_clock::now()) {}

void MetricsTimeSeries::CaptureNow(double interval_seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto now = std::chrono::steady_clock::now();
  double seconds = interval_seconds;
  if (seconds < 0.0) {
    seconds = std::chrono::duration<double>(now - last_capture_).count();
  }
  last_capture_ = now;

  Window window;
  window.seconds = std::max(seconds, 1e-9);

  for (const auto& [name, counter] : registry_->Counters()) {
    const int64_t cur = counter->value();
    const int64_t delta = cur - prev_counters_[name];
    prev_counters_[name] = cur;
    if (delta != 0) window.counter_deltas[name] = delta;
  }
  for (const auto& [name, gauge] : registry_->Gauges()) {
    window.gauge_values[name] = gauge->value();
  }
  for (const auto& [name, hist] : registry_->Histograms()) {
    HistogramPrev& prev = prev_histograms_[name];
    if (prev.buckets.empty()) prev.buckets.resize(Histogram::kBuckets + 1, 0);
    const int64_t cur_count = hist->count();
    if (cur_count == prev.count) continue;
    HistogramDelta delta;
    delta.count = cur_count - prev.count;
    const double cur_sum = hist->sum();
    delta.sum = cur_sum - prev.sum;
    prev.count = cur_count;
    prev.sum = cur_sum;
    for (int i = 0; i <= Histogram::kBuckets; ++i) {
      const int64_t c = hist->BucketCount(i);
      if (c != prev.buckets[i]) {
        delta.buckets.emplace_back(i, c - prev.buckets[i]);
        prev.buckets[i] = c;
      }
    }
    window.histogram_deltas[name] = std::move(delta);
  }

  ring_.push_back(std::move(window));
  while (ring_.size() > static_cast<size_t>(std::max(options_.windows, 1))) {
    ring_.pop_front();
  }
  ++captures_;
}

WindowedSnapshot MetricsTimeSeries::Aggregate(int n) const {
  std::lock_guard<std::mutex> lock(mu_);
  WindowedSnapshot snap;
  if (ring_.empty()) return snap;
  const size_t count =
      std::min(static_cast<size_t>(std::max(n, 1)), ring_.size());
  const size_t begin = ring_.size() - count;

  std::unordered_map<std::string, int64_t> counter_deltas;
  std::unordered_map<std::string, int64_t> gauge_max;
  struct HistAgg {
    int64_t count = 0;
    double sum = 0.0;
    std::vector<int64_t> buckets;
  };
  std::unordered_map<std::string, HistAgg> hists;

  for (size_t w = begin; w < ring_.size(); ++w) {
    const Window& window = ring_[w];
    snap.seconds += window.seconds;
    ++snap.windows;
    for (const auto& [name, delta] : window.counter_deltas) {
      counter_deltas[name] += delta;
    }
    for (const auto& [name, value] : window.gauge_values) {
      auto it = gauge_max.find(name);
      if (it == gauge_max.end()) {
        gauge_max[name] = value;
      } else {
        it->second = std::max(it->second, value);
      }
    }
    for (const auto& [name, delta] : window.histogram_deltas) {
      HistAgg& agg = hists[name];
      if (agg.buckets.empty()) agg.buckets.resize(Histogram::kBuckets + 1, 0);
      agg.count += delta.count;
      agg.sum += delta.sum;
      for (const auto& [index, c] : delta.buckets) agg.buckets[index] += c;
    }
  }
  const double seconds = std::max(snap.seconds, 1e-9);

  for (const auto& [name, delta] : counter_deltas) {
    snap.counters.push_back(
        {name, delta, static_cast<double>(delta) / seconds});
  }
  const Window& last = ring_.back();
  for (const auto& [name, max_value] : gauge_max) {
    WindowedSnapshot::GaugeRow row;
    row.name = name;
    row.max = max_value;
    auto it = last.gauge_values.find(name);
    row.last = it != last.gauge_values.end() ? it->second : max_value;
    snap.gauges.push_back(row);
  }
  for (const auto& [name, agg] : hists) {
    WindowedSnapshot::HistogramRow row;
    row.name = name;
    row.count = agg.count;
    row.rate = static_cast<double>(agg.count) / seconds;
    row.mean =
        agg.count > 0 ? agg.sum / static_cast<double>(agg.count) : 0.0;
    row.p50 = Histogram::QuantileOf(agg.buckets, 0.5);
    row.p99 = Histogram::QuantileOf(agg.buckets, 0.99);
    snap.histograms.push_back(row);
  }

  auto by_name = [](const auto& a, const auto& b) { return a.name < b.name; };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  std::sort(snap.histograms.begin(), snap.histograms.end(), by_name);
  return snap;
}

int64_t MetricsTimeSeries::capture_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return captures_;
}

}  // namespace savg
