#include "metrics/registry.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace savg {

namespace {

/// log(kMax / kMin) — the histogram's geometric span.
const double kLogSpan = std::log(Histogram::kMax / Histogram::kMin);

}  // namespace

// Internal layout: slot 0 is a dedicated underflow bucket [0, kMin];
// slots 1..kBuckets are the kBuckets geometric buckets. Without the
// underflow slot, sub-kMin observations (nanosecond-scale stage timings)
// landed in the first geometric bucket, whose lower bound is kMin — which
// pushed interpolated quantiles up to >= kMin no matter how small the
// samples actually were.
Histogram::Histogram() : buckets_(kBuckets + 1) {}

int Histogram::BucketIndex(double seconds) const {
  if (!(seconds > kMin)) return 0;
  if (seconds >= kMax) return kBuckets;
  const double t = std::log(seconds / kMin) / kLogSpan;
  const int index = 1 + static_cast<int>(t * kBuckets);
  return std::min(std::max(index, 1), kBuckets);
}

double Histogram::BucketLower(int index) const {
  if (index <= 0) return 0.0;
  return kMin * std::exp(kLogSpan * (index - 1) / kBuckets);
}

double Histogram::BucketUpper(int index) const {
  if (index <= 0) return kMin;
  return kMin * std::exp(kLogSpan * index / kBuckets);
}

void Histogram::Observe(double seconds) {
  buckets_[BucketIndex(seconds)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_nanos_.fetch_add(static_cast<int64_t>(seconds * 1e9),
                       std::memory_order_relaxed);
}

double Histogram::sum() const {
  return static_cast<double>(sum_nanos_.load(std::memory_order_relaxed)) *
         1e-9;
}

double Histogram::mean() const {
  const int64_t n = count();
  return n > 0 ? sum() / static_cast<double>(n) : 0.0;
}

double Histogram::Quantile(double q) const {
  const int64_t n = count();
  if (n <= 0) return 0.0;
  q = std::min(std::max(q, 0.0), 1.0);
  // Rank of the q-quantile among the n observations (1-based).
  const double rank = q * static_cast<double>(n - 1) + 1.0;
  double below = 0.0;
  for (int i = 0; i < static_cast<int>(buckets_.size()); ++i) {
    const double in_bucket = static_cast<double>(
        buckets_[i].load(std::memory_order_relaxed));
    if (in_bucket <= 0.0) continue;
    if (below + in_bucket >= rank) {
      // Interpolate inside the bucket's bounds (the underflow bucket
      // interpolates linearly over [0, kMin]).
      const double frac = (rank - below) / in_bucket;
      return BucketLower(i) + frac * (BucketUpper(i) - BucketLower(i));
    }
    below += in_bucket;
  }
  return BucketUpper(kBuckets);
}

namespace {

template <typename T>
T* FindOrCreate(std::vector<std::pair<std::string, std::unique_ptr<T>>>* v,
                const std::string& name) {
  for (auto& entry : *v) {
    if (entry.first == name) return entry.second.get();
  }
  v->emplace_back(name, std::make_unique<T>());
  return v->back().second.get();
}

}  // namespace

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return FindOrCreate(&counters_, name);
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return FindOrCreate(&gauges_, name);
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return FindOrCreate(&histograms_, name);
}

std::vector<MetricSample> MetricsRegistry::Snapshot() const {
  std::vector<MetricSample> samples;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& entry : counters_) {
      samples.push_back(
          {entry.first, static_cast<double>(entry.second->value())});
    }
    for (const auto& entry : gauges_) {
      samples.push_back(
          {entry.first, static_cast<double>(entry.second->value())});
    }
    for (const auto& entry : histograms_) {
      const Histogram& h = *entry.second;
      samples.push_back(
          {entry.first + ".count", static_cast<double>(h.count())});
      samples.push_back({entry.first + ".mean", h.mean()});
      samples.push_back({entry.first + ".p50", h.Quantile(0.5)});
      samples.push_back({entry.first + ".p99", h.Quantile(0.99)});
    }
  }
  std::sort(samples.begin(), samples.end(),
            [](const MetricSample& a, const MetricSample& b) {
              return a.name < b.name;
            });
  return samples;
}

std::string MetricsRegistry::TextDump() const {
  std::ostringstream out;
  out.precision(9);
  for (const MetricSample& sample : Snapshot()) {
    out << sample.name << " " << sample.value << "\n";
  }
  return out.str();
}

std::string MetricsRegistry::JsonDump() const {
  std::ostringstream out;
  out.precision(9);
  out << "{\"metrics\": [";
  bool first = true;
  for (const MetricSample& sample : Snapshot()) {
    if (!first) out << ", ";
    first = false;
    std::string name = sample.name;
    for (char& ch : name) {
      if (ch == '"' || ch == '\\') ch = '\'';
    }
    out << "{\"name\": \"" << name << "\", \"value\": " << sample.value
        << "}";
  }
  out << "]}";
  return out.str();
}

}  // namespace savg
