#include "metrics/registry.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace savg {

namespace {

/// log(kMax / kMin) — the histogram's geometric span.
const double kLogSpan = std::log(Histogram::kMax / Histogram::kMin);

}  // namespace

// Internal layout: slot 0 is a dedicated underflow bucket [0, kMin];
// slots 1..kBuckets are the kBuckets geometric buckets. Without the
// underflow slot, sub-kMin observations (nanosecond-scale stage timings)
// landed in the first geometric bucket, whose lower bound is kMin — which
// pushed interpolated quantiles up to >= kMin no matter how small the
// samples actually were.
Histogram::Histogram() : buckets_(kBuckets + 1) {}

int Histogram::BucketIndex(double seconds) {
  if (!(seconds > kMin)) return 0;
  if (seconds >= kMax) return kBuckets;
  const double t = std::log(seconds / kMin) / kLogSpan;
  const int index = 1 + static_cast<int>(t * kBuckets);
  return std::min(std::max(index, 1), kBuckets);
}

double Histogram::BucketLower(int index) {
  if (index <= 0) return 0.0;
  return kMin * std::exp(kLogSpan * (index - 1) / kBuckets);
}

double Histogram::BucketUpper(int index) {
  if (index <= 0) return kMin;
  return kMin * std::exp(kLogSpan * index / kBuckets);
}

void Histogram::Observe(double seconds) {
  buckets_[BucketIndex(seconds)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_nanos_.fetch_add(static_cast<int64_t>(seconds * 1e9),
                       std::memory_order_relaxed);
}

double Histogram::sum() const {
  return static_cast<double>(sum_nanos_.load(std::memory_order_relaxed)) *
         1e-9;
}

double Histogram::mean() const {
  const int64_t n = count();
  return n > 0 ? sum() / static_cast<double>(n) : 0.0;
}

double Histogram::QuantileOf(const std::vector<int64_t>& buckets, double q) {
  int64_t n = 0;
  for (int64_t c : buckets) n += c;
  if (n <= 0) return 0.0;
  q = std::min(std::max(q, 0.0), 1.0);
  // Rank of the q-quantile among the n observations (1-based).
  const double rank = q * static_cast<double>(n - 1) + 1.0;
  double below = 0.0;
  for (int i = 0; i < static_cast<int>(buckets.size()); ++i) {
    const double in_bucket = static_cast<double>(buckets[i]);
    if (in_bucket <= 0.0) continue;
    if (below + in_bucket >= rank) {
      // Interpolate inside the bucket's bounds (the underflow bucket
      // interpolates linearly over [0, kMin]).
      const double frac = (rank - below) / in_bucket;
      return BucketLower(i) + frac * (BucketUpper(i) - BucketLower(i));
    }
    below += in_bucket;
  }
  return BucketUpper(kBuckets);
}

double Histogram::Quantile(double q) const {
  std::vector<int64_t> counts(buckets_.size());
  for (size_t i = 0; i < buckets_.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return QuantileOf(counts, q);
}

namespace {

template <typename T>
T* FindOrCreate(std::vector<std::pair<std::string, std::unique_ptr<T>>>* v,
                const std::string& name) {
  for (auto& entry : *v) {
    if (entry.first == name) return entry.second.get();
  }
  v->emplace_back(name, std::make_unique<T>());
  return v->back().second.get();
}

}  // namespace

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return FindOrCreate(&counters_, name);
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return FindOrCreate(&gauges_, name);
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return FindOrCreate(&histograms_, name);
}

std::vector<MetricSample> MetricsRegistry::Snapshot() const {
  std::vector<MetricSample> samples;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& entry : counters_) {
      samples.push_back(
          {entry.first, static_cast<double>(entry.second->value())});
    }
    for (const auto& entry : gauges_) {
      samples.push_back(
          {entry.first, static_cast<double>(entry.second->value())});
    }
    for (const auto& entry : histograms_) {
      const Histogram& h = *entry.second;
      samples.push_back(
          {entry.first + ".count", static_cast<double>(h.count())});
      samples.push_back({entry.first + ".mean", h.mean()});
      samples.push_back({entry.first + ".p50", h.Quantile(0.5)});
      samples.push_back({entry.first + ".p99", h.Quantile(0.99)});
    }
  }
  std::sort(samples.begin(), samples.end(),
            [](const MetricSample& a, const MetricSample& b) {
              return a.name < b.name;
            });
  return samples;
}

std::string MetricsRegistry::TextDump() const {
  std::ostringstream out;
  out.precision(9);
  for (const MetricSample& sample : Snapshot()) {
    out << sample.name << " " << sample.value << "\n";
  }
  return out.str();
}

namespace {

std::string SafeName(const std::string& name) {
  std::string out = name;
  for (char& ch : out) {
    if (ch == '"' || ch == '\\') ch = '\'';
  }
  return out;
}

std::string PromName(const std::string& name) {
  std::string out = "savg_";
  for (char ch : name) {
    const bool ok = (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') ||
                    (ch >= '0' && ch <= '9') || ch == '_';
    out += ok ? ch : '_';
  }
  return out;
}

}  // namespace

std::string MetricsRegistry::JsonDump() const {
  std::ostringstream out;
  out.precision(9);
  out << "{\"metrics\": [";
  bool first = true;
  for (const MetricSample& sample : Snapshot()) {
    if (!first) out << ", ";
    first = false;
    out << "{\"name\": \"" << SafeName(sample.name)
        << "\", \"value\": " << sample.value << "}";
  }
  out << "], \"histograms\": [";
  first = true;
  for (const auto& [name, hist] : Histograms()) {
    if (!first) out << ", ";
    first = false;
    out << "{\"name\": \"" << SafeName(name)
        << "\", \"count\": " << hist->count() << ", \"sum\": " << hist->sum()
        << ", \"buckets\": [";
    bool first_bucket = true;
    for (int i = 0; i <= Histogram::kBuckets; ++i) {
      const int64_t c = hist->BucketCount(i);
      if (c == 0) continue;
      if (!first_bucket) out << ", ";
      first_bucket = false;
      out << "{\"le\": " << Histogram::BucketUpper(i)
          << ", \"count\": " << c << "}";
    }
    out << "]}";
  }
  out << "]}";
  return out.str();
}

std::string MetricsRegistry::PrometheusDump() const {
  std::ostringstream out;
  out.precision(9);
  for (const auto& [name, counter] : Counters()) {
    const std::string prom = PromName(name);
    out << "# TYPE " << prom << " counter\n";
    out << prom << " " << counter->value() << "\n";
  }
  for (const auto& [name, gauge] : Gauges()) {
    const std::string prom = PromName(name);
    out << "# TYPE " << prom << " gauge\n";
    out << prom << " " << gauge->value() << "\n";
  }
  for (const auto& [name, hist] : Histograms()) {
    const std::string prom = PromName(name) + "_seconds";
    out << "# TYPE " << prom << " histogram\n";
    // Cumulative buckets over the non-empty slots only (300 geometric
    // buckets would be scrape noise; cumulative counts stay exact).
    int64_t cumulative = 0;
    for (int i = 0; i <= Histogram::kBuckets; ++i) {
      const int64_t c = hist->BucketCount(i);
      if (c == 0) continue;
      cumulative += c;
      out << prom << "_bucket{le=\"" << Histogram::BucketUpper(i)
          << "\"} " << cumulative << "\n";
    }
    out << prom << "_bucket{le=\"+Inf\"} " << hist->count() << "\n";
    out << prom << "_sum " << hist->sum() << "\n";
    out << prom << "_count " << hist->count() << "\n";
  }
  return out.str();
}

std::vector<std::pair<std::string, Counter*>> MetricsRegistry::Counters()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, Counter*>> out;
  out.reserve(counters_.size());
  for (const auto& entry : counters_) {
    out.emplace_back(entry.first, entry.second.get());
  }
  return out;
}

std::vector<std::pair<std::string, Gauge*>> MetricsRegistry::Gauges() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, Gauge*>> out;
  out.reserve(gauges_.size());
  for (const auto& entry : gauges_) {
    out.emplace_back(entry.first, entry.second.get());
  }
  return out;
}

std::vector<std::pair<std::string, Histogram*>> MetricsRegistry::Histograms()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, Histogram*>> out;
  out.reserve(histograms_.size());
  for (const auto& entry : histograms_) {
    out.emplace_back(entry.first, entry.second.get());
  }
  return out;
}

}  // namespace savg
