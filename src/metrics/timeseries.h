// Windowed time-series view over a MetricsRegistry.
//
// The registry's counters and histograms are cumulative-forever, which
// answers "how much since boot" but not "what is happening right now".
// MetricsTimeSeries periodically captures the registry, stores per-window
// *deltas* (counter increments, histogram count/sum/bucket increments)
// plus gauge levels in a fixed-size ring of windows, and can aggregate
// the last N windows into rates, windowed means and windowed p50/p99.
//
// The capture cadence is owned by the caller (ServeServer runs a capture
// thread at --metrics_interval; tests call CaptureNow() directly with an
// explicit interval). Aggregation merges sparse bucket deltas back into a
// full bucket array and reuses Histogram::QuantileOf, so windowed
// quantiles have exactly the same resolution as lifetime ones.

#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "metrics/registry.h"

namespace savg {

struct TimeSeriesOptions {
  /// Ring capacity: how many capture windows are retained.
  int windows = 256;
};

/// Aggregate of the last N capture windows (see MetricsTimeSeries).
struct WindowedSnapshot {
  struct CounterRow {
    std::string name;
    int64_t delta = 0;
    double rate = 0.0;  ///< delta / seconds
  };
  struct GaugeRow {
    std::string name;
    int64_t last = 0;  ///< value at the most recent capture
    int64_t max = 0;   ///< max across the aggregated captures
  };
  struct HistogramRow {
    std::string name;
    int64_t count = 0;
    double rate = 0.0;  ///< count / seconds
    double mean = 0.0;
    double p50 = 0.0;
    double p99 = 0.0;
  };

  int windows = 0;       ///< how many capture windows were merged
  double seconds = 0.0;  ///< wall time the merged windows cover

  std::vector<CounterRow> counters;
  std::vector<GaugeRow> gauges;
  std::vector<HistogramRow> histograms;

  /// Lookup helpers; all return 0 when the metric is absent.
  int64_t CounterDelta(const std::string& name) const;
  double CounterRate(const std::string& name) const;
  int64_t GaugeLast(const std::string& name) const;
  int64_t GaugeMax(const std::string& name) const;
  const HistogramRow* FindHistogram(const std::string& name) const;

  std::string JsonDump() const;
};

class MetricsTimeSeries {
 public:
  explicit MetricsTimeSeries(MetricsRegistry* registry,
                             TimeSeriesOptions options = TimeSeriesOptions());

  /// Captures one window of deltas since the previous capture (or since
  /// construction for the first). `interval_seconds` overrides the
  /// measured wall interval when >= 0 — tests use this to make rates
  /// deterministic. Thread-safe.
  void CaptureNow(double interval_seconds = -1.0);

  /// Merges the most recent `n` windows (clamped to what the ring holds).
  WindowedSnapshot Aggregate(int n) const;

  int64_t capture_count() const;

 private:
  struct HistogramDelta {
    int64_t count = 0;
    double sum = 0.0;
    /// Sparse (bucket index, delta) pairs — most captures touch a handful
    /// of the 301 slots.
    std::vector<std::pair<int, int64_t>> buckets;
  };
  struct Window {
    double seconds = 0.0;
    std::unordered_map<std::string, int64_t> counter_deltas;
    std::unordered_map<std::string, int64_t> gauge_values;
    std::unordered_map<std::string, HistogramDelta> histogram_deltas;
  };
  struct HistogramPrev {
    int64_t count = 0;
    double sum = 0.0;
    std::vector<int64_t> buckets;
  };

  MetricsRegistry* registry_;
  TimeSeriesOptions options_;

  mutable std::mutex mu_;
  std::deque<Window> ring_;
  int64_t captures_ = 0;
  std::chrono::steady_clock::time_point last_capture_;
  std::unordered_map<std::string, int64_t> prev_counters_;
  std::unordered_map<std::string, HistogramPrev> prev_histograms_;
};

}  // namespace savg
