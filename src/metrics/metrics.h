// Evaluation metrics of Section 6.1 (items 3-10 of the paper's list; items
// 1-2 — total utility and time — come from objective.h and timers).
//
// Definitions used (documented here because the paper leaves some freedom):
//  * Intra%/Inter%: over all slots, every friend pair with both endpoints
//    assigned is intra (same item at that slot) or inter; fractions of the
//    total count.
//  * Normalized density: per slot, the mean induced-edge density of the
//    partitioned subgroups with >= 2 members (slots whose groups are all
//    singletons contribute 0), averaged over slots, divided by the density
//    of the input social graph.
//  * Co-display%: fraction of friend pairs directly co-displayed at least
//    one item.
//  * Alone%: fraction of users never directly co-displayed any item with
//    any friend.
//  * Regret ratio (Section 6.5): reg(u) = 1 - hap(u), with
//    hap(u) = achieved w_A(u,.) / upper bound, the upper bound being u's
//    best k-itemset assuming every friend co-views every item with u.

#pragma once

#include <vector>

#include "core/configuration.h"
#include "core/objective.h"
#include "core/problem.h"

namespace savg {

struct SubgroupMetrics {
  double intra_fraction = 0.0;
  double inter_fraction = 0.0;
  double normalized_density = 0.0;
  double co_display_rate = 0.0;
  double alone_rate = 0.0;
};

SubgroupMetrics ComputeSubgroupMetrics(const SvgicInstance& instance,
                                       const Configuration& config);

/// Optimistic per-user utility bound: the best k items by
/// (1-lambda) p(u,c) + lambda sum_{(u,v) in E} tau(u,v,c).
double UpperBoundUtility(const SvgicInstance& instance, UserId u);

/// Per-user regret ratios in [0, 1].
std::vector<double> RegretRatios(const SvgicInstance& instance,
                                 const Configuration& config,
                                 const EvaluateOptions& options = {});

/// Total subgroup-change edit distance (extension E): pairs co-displayed at
/// slot s but not at slot s+1 (or vice versa), summed over consecutive
/// slots.
int SubgroupChangeEditDistance(const SvgicInstance& instance,
                               const Configuration& config);

}  // namespace savg
