// The unified session mutation/resolve command (api_redesign tentpole).
//
// A SessionCommand is a tagged variant describing exactly one operation on
// a live serving Session. It is THE canonical representation shared by
//
//   * the framed wire protocol (serve/wire.h carries one encoded command
//     per apply frame),
//   * the binary command log (replaces the TSV event log's per-event
//     string parsing; a TSV import shim keeps old logs readable),
//   * the replay stream generator (online/event_log.h),
//   * `svgic_cli serve` / `svgic_cli genevents`, and
//   * the in-process entry point Session::Apply(const SessionCommand&).
//
// The binary encoding is canonical: Encode(Decode(bytes)) == bytes and
// Decode(Encode(cmd)) == cmd bit-exactly (doubles are transported as their
// IEEE-754 bit pattern, ids as fixed-width little-endian), so a serving
// trace captured once replays bit-identically everywhere and logs can be
// diffed byte-for-byte.
//
// Layout of one encoded command (little-endian):
//
//   tag : u8                       CommandType
//   then, per tag:
//     kPref        u  i32, c  i32, value u64 (IEEE-754 bits)
//     kTau         u  i32, v  i32, c i32, value u64
//     kLambda      value u64
//     kFriend      u  i32, v  i32
//     kLeave       u  i32
//     kRetireItem  c  i32
//     kJoin / kAddItem / kResolve   (no payload)
//
// Command log file format:
//
//   "SVGB" magic | u32 version | u64 command count | encoded commands
//
// ReadCommandLog() sniffs the magic and falls back to the legacy TSV
// parser (online/event_log.h) when it sees "svgicevents", so pre-existing
// logs keep replaying without conversion.

#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/problem.h"
#include "util/status.h"

namespace savg {

enum class CommandType : uint8_t {
  kPref = 1,        ///< set p(u, c) = value
  kTau = 2,         ///< set tau(u, v, c) = value (befriends u, v)
  kLambda = 3,      ///< set the preference/social trade-off
  kJoin = 4,        ///< a new user joins (id = current n)
  kFriend = 5,      ///< adds the friendship {u, v}
  kLeave = 6,       ///< user u leaves (utilities zeroed)
  kAddItem = 7,     ///< a new item appears (id = current m)
  kRetireItem = 8,  ///< item c retired (utilities zeroed)
  kResolve = 9,     ///< re-optimize the configuration
};

/// "pref", "tau", ... (the TSV tags; stable telemetry labels).
const char* CommandTypeName(CommandType type);

/// One mutation (or resolve trigger) of a live session.
struct SessionCommand {
  CommandType type = CommandType::kResolve;
  UserId u = -1;
  UserId v = -1;
  ItemId c = -1;
  double value = 0.0;

  bool operator==(const SessionCommand& o) const {
    return type == o.type && u == o.u && v == o.v && c == o.c &&
           value == o.value;
  }
  bool operator!=(const SessionCommand& o) const { return !(*this == o); }
};

// --- Constructors (the idiomatic way to build commands) --------------------

SessionCommand MakePref(UserId u, ItemId c, double value);
SessionCommand MakeTau(UserId u, UserId v, ItemId c, double value);
SessionCommand MakeLambda(double value);
SessionCommand MakeJoin();
SessionCommand MakeFriend(UserId u, UserId v);
SessionCommand MakeLeave(UserId u);
SessionCommand MakeAddItem();
SessionCommand MakeRetireItem(ItemId c);
SessionCommand MakeResolve();

using CommandLog = std::vector<SessionCommand>;

// --- Canonical binary codec ------------------------------------------------

/// Appends the canonical encoding of `cmd` to `out`.
void EncodeCommand(const SessionCommand& cmd, std::string* out);

/// Decodes one command from the front of [data, data + size). On success
/// sets `*consumed` to the number of bytes read. Truncated or unknown-tag
/// input yields InvalidArgument without reading past `size`.
Result<SessionCommand> DecodeCommand(const char* data, size_t size,
                                     size_t* consumed);

/// Encoded size of `cmd` in bytes (== what EncodeCommand appends).
size_t EncodedCommandSize(const SessionCommand& cmd);

// --- Binary command log ----------------------------------------------------

Status WriteCommandLog(const CommandLog& log, std::ostream* out);
Status WriteCommandLogToFile(const CommandLog& log, const std::string& path);

/// Reads a command log: binary ("SVGB") natively, legacy TSV
/// ("svgicevents", online/event_log.h) through the import shim.
Result<CommandLog> ReadCommandLog(std::istream* in);
Result<CommandLog> ReadCommandLogFromFile(const std::string& path);

}  // namespace savg
