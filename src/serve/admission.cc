#include "serve/admission.h"

#include <utility>

#include "util/logging.h"

namespace savg {

AdmissionQueue::AdmissionQueue(SessionManager* manager,
                               MetricsRegistry* metrics,
                               AdmissionOptions options)
    : manager_(manager),
      options_(options),
      depth_gauge_(metrics->GetGauge("serve.queue_depth")),
      admitted_(metrics->GetCounter("serve.admitted")),
      shed_(metrics->GetCounter("serve.shed")),
      errors_(metrics->GetCounter("serve.errors")),
      resolves_(metrics->GetCounter("serve.resolves")),
      resolves_coalesced_(metrics->GetCounter("serve.resolves_coalesced")),
      resolve_latency_(metrics->GetHistogram("serve.latency.resolve")),
      mutation_latency_(metrics->GetHistogram("serve.latency.mutation")) {}

Status AdmissionQueue::Submit(int session_id, const SessionCommand& command,
                              ApplyCallback done,
                              std::shared_ptr<TraceContext> trace,
                              bool force_verify) {
  // Reserve the slot first (increment-then-check keeps the bound exact
  // under concurrent submitters: whoever lands past the limit backs out).
  depth_gauge_->Increment();
  if (depth_gauge_->value() > options_.max_queue_depth) {
    depth_gauge_->Decrement();
    shed_->Increment();
    return Status::ResourceExhausted(
        "admission queue full (" +
        std::to_string(options_.max_queue_depth) + " commands in flight)");
  }
  const bool is_resolve = command.type == CommandType::kResolve;
  Timer timer;
  ApplyCallback wrapped = [this, is_resolve, timer,
                           done = std::move(done)](
                              const Status& status,
                              const CommandOutcome& outcome) {
    const double elapsed = timer.ElapsedSeconds();
    if (is_resolve) {
      resolve_latency_->Observe(elapsed);
      if (outcome.coalesced_away) {
        resolves_coalesced_->Increment();
      } else {
        resolves_->Increment();
      }
    } else {
      mutation_latency_->Observe(elapsed);
    }
    if (!status.ok()) errors_->Increment();
    if (done) done(status, outcome);
    // The slot is held until the caller's completion work (e.g. writing
    // the response frame) finishes — in-flight means admit-to-answered.
    depth_gauge_->Decrement();
  };
  Status submitted =
      manager_->Submit(session_id, command, std::move(wrapped),
                       std::move(trace), force_verify);
  if (!submitted.ok()) {
    // Rejected before entering any queue: give the slot back.
    depth_gauge_->Decrement();
    errors_->Increment();
    return submitted;
  }
  admitted_->Increment();
  return Status::OK();
}

}  // namespace savg
