#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

namespace savg {
namespace {

Status SendAll(int fd, const char* data, size_t size) {
  size_t sent = 0;
  while (sent < size) {
    const ssize_t n =
        ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Unknown(std::string("send failed: ") +
                              std::strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

/// splitmix64 step: a cheap deterministic jitter stream (no <random>
/// state to carry; identical runs produce identical backoff schedules).
uint64_t NextJitter(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

ServeClient::ServeClient(ClientRetryOptions retry, MetricsRegistry* registry)
    : retry_(retry), jitter_state_(retry.jitter_seed) {
  if (registry != nullptr) {
    retries_counter_ = registry->GetCounter("serve.client.retries");
  }
}

ServeClient::~ServeClient() { Close(); }

Status ServeClient::Connect(const std::string& host, int port) {
  Close();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Unknown(std::string("socket failed: ") +
                            std::strerror(errno));
  }
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad IPv4 address: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::Unknown("connect to " + host + ":" +
                               std::to_string(port) + " failed: " + err);
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;
  reader_ = FrameReader();
  host_ = host;
  port_ = port;
  return Status::OK();
}

void ServeClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<uint64_t> ServeClient::SendFrame(FrameKind kind, uint32_t session_id,
                                        const std::string& payload,
                                        uint8_t flags) {
  if (fd_ < 0) return Status::InvalidArgument("not connected");
  const uint64_t id = next_request_id_++;
  std::string frame;
  AppendFrame(kind, id, session_id, payload, &frame, flags);
  SAVG_RETURN_NOT_OK(SendAll(fd_, frame.data(), frame.size()));
  return id;
}

Result<uint64_t> ServeClient::SendApply(uint32_t session_id,
                                        const SessionCommand& command,
                                        bool trace, bool verify) {
  std::string payload;
  EncodeCommand(command, &payload);
  const uint8_t flags =
      static_cast<uint8_t>((trace ? kFrameFlagTrace : 0) |
                           (verify ? kFrameFlagVerify : 0));
  return SendFrame(FrameKind::kApply, session_id, payload, flags);
}

Result<uint64_t> ServeClient::SendStatus() {
  return SendFrame(FrameKind::kStatus, 0, "");
}

Result<uint64_t> ServeClient::SendPing() {
  return SendFrame(FrameKind::kPing, 0, "");
}

Result<uint64_t> ServeClient::SendShutdown() {
  return SendFrame(FrameKind::kShutdown, 0, "");
}

Result<ServeResponse> ServeClient::ReadResponse() {
  if (fd_ < 0) return Status::InvalidArgument("not connected");
  FrameHeader header;
  std::string payload;
  for (;;) {
    auto next = reader_.Next(&header, &payload);
    SAVG_RETURN_NOT_OK(next.status());
    if (*next) break;
    char buf[4096];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Unknown(std::string("recv failed: ") +
                              std::strerror(errno));
    }
    if (n == 0) return Status::Unknown("server closed the connection");
    reader_.Feed(buf, static_cast<size_t>(n));
  }
  ServeResponse response;
  response.kind = header.kind;
  response.request_id = header.request_id;
  response.payload = std::move(payload);
  const bool apply_kind = header.kind == FrameKind::kOverloaded ||
                          header.kind == FrameKind::kBadRequest ||
                          header.kind == FrameKind::kError ||
                          header.kind == FrameKind::kOk;
  if (apply_kind && !response.payload.empty() &&
      response.payload[0] != '{') {
    auto decoded = DecodeApplyResult(response.payload.data(),
                                     response.payload.size());
    if (decoded.ok()) {
      response.result = std::move(decoded).value();
      response.has_result = true;
    }
  }
  return response;
}

bool ServeClient::PrepareRetry(int attempt, bool reconnect) {
  if (attempt >= retry_.max_retries) return false;
  double backoff_ms = retry_.initial_backoff_ms;
  for (int i = 0; i < attempt; ++i) backoff_ms *= retry_.backoff_multiplier;
  if (backoff_ms > retry_.max_backoff_ms) backoff_ms = retry_.max_backoff_ms;
  if (retry_.jitter_fraction > 0.0) {
    const double unit = static_cast<double>(NextJitter(&jitter_state_) >> 11)
                        * (1.0 / 9007199254740992.0);  // [0, 1)
    backoff_ms *= 1.0 + retry_.jitter_fraction * (2.0 * unit - 1.0);
  }
  if (backoff_ms > 0.0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(backoff_ms));
  }
  ++retries_;
  if (retries_counter_ != nullptr) retries_counter_->Increment();
  if (reconnect && !host_.empty()) {
    // A failed reconnect is fine: the next attempt's send reports "not
    // connected" and lands back here until the budget runs out.
    (void)Connect(host_, port_);
  }
  return true;
}

Result<ServeResponse> ServeClient::Apply(uint32_t session_id,
                                         const SessionCommand& command,
                                         bool trace, bool verify) {
  int attempt = 0;
  for (;;) {
    Status transport = SendApply(session_id, command, trace, verify).status();
    if (transport.ok()) {
      auto response = ReadResponse();
      if (response.ok()) {
        // kOverloaded is a healthy connection telling us to back off:
        // retry without reconnecting.
        if (response->kind == FrameKind::kOverloaded &&
            PrepareRetry(attempt++, /*reconnect=*/false)) {
          continue;
        }
        return response;
      }
      transport = response.status();
    }
    // Transport failure (send or read): the connection state is unknown,
    // so a retry reconnects first. See the at-least-once caveat in the
    // file comment.
    if (!PrepareRetry(attempt++, /*reconnect=*/true)) return transport;
  }
}

Result<std::string> HttpGet(const std::string& host, int port,
                            const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Unknown(std::string("socket failed: ") +
                           std::strerror(errno));
  }
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad IPv4 address: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::Unknown("connect to " + host + ":" +
                           std::to_string(port) + " failed: " + err);
  }
  const std::string request =
      "GET " + path + " HTTP/1.0\r\nHost: " + host + "\r\n\r\n";
  Status sent = SendAll(fd, request.data(), request.size());
  if (!sent.ok()) {
    ::close(fd);
    return sent;
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string err = std::strerror(errno);
      ::close(fd);
      return Status::Unknown("recv failed: " + err);
    }
    if (n == 0) break;  // server closes after one response (HTTP/1.0)
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  const size_t header_end = response.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    return Status::Unknown("malformed HTTP response");
  }
  if (response.rfind("HTTP/1.0 200", 0) != 0 &&
      response.rfind("HTTP/1.1 200", 0) != 0) {
    return Status::Unknown("HTTP error: " +
                           response.substr(0, response.find("\r\n")));
  }
  return response.substr(header_end + 4);
}

Result<std::string> ServeClient::FetchStatus() {
  SAVG_RETURN_NOT_OK(SendStatus().status());
  auto response = ReadResponse();
  SAVG_RETURN_NOT_OK(response.status());
  if (response->kind != FrameKind::kOk) {
    return Status::Unknown(std::string("status request failed: ") +
                            FrameKindName(response->kind));
  }
  return std::move(response->payload);
}

}  // namespace savg
