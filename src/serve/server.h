// The network serving front-end: a TCP server speaking the framed binary
// protocol (serve/wire.h) over a SessionManager, with admission control
// (serve/admission.h) and central metrics (metrics/registry.h).
//
// Request flow, one line per layer:
//
//   socket -> FrameReader -> decode SessionCommand   (reader thread)
//          -> AdmissionQueue (bounded; sheds kOverloaded when full)
//          -> SessionManager (per-session serialization + coalescing)
//          -> Session::Apply(command)                (worker thread)
//          -> completion callback -> response frame  (worker thread)
//
// Responses can therefore interleave arbitrarily with requests on one
// connection; the request id echoes back so clients can pipeline.
//
// A minimal HTTP/JSON front-end rides on the same dispatch: a connection
// whose first bytes are not the frame magic is treated as HTTP/1.0 and
// can GET /status (sessions + admission stats + metrics JSON), /metrics
// (MetricsRegistry dump; ?window=N returns the windowed time-series
// aggregate instead), /metrics.prom (Prometheus text exposition),
// /health (the rule-engine verdict; 503 when unhealthy), or
// /trace?last=N (recent request traces as Chrome trace-event JSON;
// &format=text renders a span tree) — handy for curl / dashboards while
// the binary protocol carries the traffic.
//
// Observability: every apply request can carry the kFrameFlagTrace wire
// flag (or land in the Tracer's 1-in-N sample) and then collects a
// hierarchical trace — admission wait, coalesce defer, session apply, LP
// phases, rounding — exported via /trace, the slow-query JSONL log, and
// serve.stage.* histograms (see src/obs/).
//
// Lifecycle: CreateSession() (before or after Start()), Start(),
// WaitForShutdown() (returns once a kShutdown frame arrives or
// Shutdown() is called), Shutdown(). The listener binds 127.0.0.1 only —
// this is a benchmark/serving harness, not a hardened public endpoint.

#pragma once

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "durability/session_store.h"
#include "metrics/registry.h"
#include "metrics/timeseries.h"
#include "obs/health.h"
#include "obs/tracer.h"
#include "obs/verify.h"
#include "online/session_manager.h"
#include "serve/admission.h"
#include "serve/wire.h"

namespace savg {

struct ServerOptions {
  /// TCP port; 0 binds an ephemeral port (read it back via port()).
  int port = 0;
  /// SessionManager worker threads (<= 0 = all cores).
  int num_workers = 0;
  /// Fold pending resolves per session into one Resolve() (the serving
  /// default; see SessionManagerOptions::coalesce_resolves).
  bool coalesce_resolves = true;
  AdmissionOptions admission;
  /// Request tracing: sampling, slow-query log, /trace ring buffer.
  TracerOptions trace;
  /// Time-series metrics capture cadence (seconds); <= 0 disables the
  /// capture thread (tests drive CaptureMetricsWindow() directly).
  double metrics_interval_seconds = 1.0;
  /// Capture ring size (windows retained for GET /metrics?window=N).
  int metrics_windows = 256;
  /// Health rule thresholds; queue_capacity is wired from
  /// admission.max_queue_depth automatically when left 0.
  HealthOptions health;
  /// Sampled post-solve self-verification (obs/verify.h).
  VerifierOptions verify;
  /// Session durability (src/durability/): an empty data_dir disables it;
  /// otherwise every session journals its command stream and snapshots
  /// periodically, and Shutdown() flushes (final snapshot per policy).
  DurabilityOptions durability;
};

class ServeServer {
 public:
  explicit ServeServer(ServerOptions options = {});
  ~ServeServer();

  ServeServer(const ServeServer&) = delete;
  ServeServer& operator=(const ServeServer&) = delete;

  /// Registers a serving session (callable before or after Start()).
  int CreateSession(SvgicInstance instance, SessionOptions options = {});

  /// Recovers every session persisted in durability.data_dir (crash
  /// restart path; see durability/recovery.h) and adopts them into the
  /// manager with fresh journals at last_epoch + 1. `base_options` must
  /// match the sessions' original options. Returns the number of sessions
  /// recovered. Call before Start().
  Result<int> RecoverSessions(SessionOptions base_options = {});

  /// Binds + listens + starts the accept thread.
  Status Start();
  /// The bound port (valid after Start()).
  int port() const { return port_; }

  /// Blocks until a kShutdown frame arrives or Shutdown() is called.
  void WaitForShutdown();
  /// Stops accepting, drops connections, drains pending commands.
  /// Idempotent; called by the destructor.
  void Shutdown();

  SessionManager& manager() { return manager_; }
  MetricsRegistry& metrics() { return metrics_; }
  AdmissionQueue& admission() { return admission_; }
  Tracer& tracer() { return tracer_; }
  MetricsTimeSeries& timeseries() { return timeseries_; }
  HealthMonitor& health() { return health_; }
  SolutionVerifier& verifier() { return verifier_; }

  /// The status command's JSON: per-session stats + admission counters +
  /// a full metrics snapshot.
  std::string StatusJson();

  /// Captures one time-series window and evaluates the health rules
  /// against it. The capture thread calls this every
  /// metrics_interval_seconds; tests call it directly (with an explicit
  /// interval to make windowed rates deterministic).
  void CaptureMetricsWindow(double interval_seconds = -1.0);

 private:
  /// One client connection; shared with in-flight completion callbacks,
  /// so a response races neither the reader loop nor a disconnect.
  struct Connection {
    int fd = -1;
    std::mutex write_mu;
    std::atomic<bool> open{true};
  };

  void AcceptLoop();
  void ServeConnection(const std::shared_ptr<Connection>& conn);
  /// HTTP fallback for non-magic first bytes; `buffered` holds what the
  /// sniffer already consumed.
  void ServeHttp(const std::shared_ptr<Connection>& conn,
                 std::string buffered);
  void HandleFrame(const std::shared_ptr<Connection>& conn,
                   const FrameHeader& header, const std::string& payload);
  void SendFrame(const std::shared_ptr<Connection>& conn, FrameKind kind,
                 uint64_t request_id, uint32_t session_id,
                 const std::string& payload);
  void RequestShutdown();

  ServerOptions options_;
  MetricsRegistry metrics_;
  MetricsTimeSeries timeseries_;
  HealthMonitor health_;
  // The verifier must outlive manager_: sessions keep a pointer to it and
  // the manager's destructor drains their pending resolves.
  SolutionVerifier verifier_;
  // The store must outlive manager_ too: entries hold journal pointers the
  // manager's destructor may still flush through.
  std::unique_ptr<SessionStore> store_;
  SessionManager manager_;
  AdmissionQueue admission_;
  Tracer tracer_;

  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::thread accept_thread_;

  /// Periodic metrics capture (only when metrics_interval_seconds > 0).
  std::thread capture_thread_;
  std::mutex capture_mu_;
  std::condition_variable capture_cv_;
  bool capture_stop_ = false;

  std::mutex shutdown_mu_;
  std::condition_variable shutdown_cv_;
  bool shutdown_requested_ = false;

  std::mutex conns_mu_;
  std::vector<std::shared_ptr<Connection>> conns_;
  std::vector<std::thread> conn_threads_;
};

}  // namespace savg
