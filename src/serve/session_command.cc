#include "serve/session_command.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <istream>
#include <iterator>
#include <ostream>

#include "online/event_log.h"

namespace savg {

namespace {

constexpr char kLogMagic[4] = {'S', 'V', 'G', 'B'};
constexpr uint32_t kLogVersion = 1;
// A count limit keeps a corrupt header from driving a multi-gigabyte
// reserve; real logs are a few thousand commands.
constexpr uint64_t kMaxLogCommands = 1ull << 32;

void AppendU8(uint8_t x, std::string* out) {
  out->push_back(static_cast<char>(x));
}

void AppendU32(uint32_t x, std::string* out) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((x >> (8 * i)) & 0xff));
  }
}

void AppendU64(uint64_t x, std::string* out) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((x >> (8 * i)) & 0xff));
  }
}

void AppendI32(int32_t x, std::string* out) {
  AppendU32(static_cast<uint32_t>(x), out);
}

void AppendDouble(double x, std::string* out) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(x), "double must be 64-bit");
  std::memcpy(&bits, &x, sizeof(bits));
  AppendU64(bits, out);
}

uint32_t ReadU32(const char* p) {
  uint32_t x = 0;
  for (int i = 0; i < 4; ++i) {
    x |= static_cast<uint32_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  return x;
}

uint64_t ReadU64(const char* p) {
  uint64_t x = 0;
  for (int i = 0; i < 8; ++i) {
    x |= static_cast<uint64_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  return x;
}

int32_t ReadI32(const char* p) { return static_cast<int32_t>(ReadU32(p)); }

double ReadDouble(const char* p) {
  const uint64_t bits = ReadU64(p);
  double x = 0.0;
  std::memcpy(&x, &bits, sizeof(x));
  return x;
}

/// Payload bytes following the tag, or -1 for an unknown tag.
int PayloadSize(uint8_t tag) {
  switch (static_cast<CommandType>(tag)) {
    case CommandType::kPref:
      return 4 + 4 + 8;
    case CommandType::kTau:
      return 4 + 4 + 4 + 8;
    case CommandType::kLambda:
      return 8;
    case CommandType::kFriend:
      return 4 + 4;
    case CommandType::kLeave:
    case CommandType::kRetireItem:
      return 4;
    case CommandType::kJoin:
    case CommandType::kAddItem:
    case CommandType::kResolve:
      return 0;
  }
  return -1;
}

}  // namespace

const char* CommandTypeName(CommandType type) {
  switch (type) {
    case CommandType::kPref:
      return "pref";
    case CommandType::kTau:
      return "tau";
    case CommandType::kLambda:
      return "lambda";
    case CommandType::kJoin:
      return "join";
    case CommandType::kFriend:
      return "friend";
    case CommandType::kLeave:
      return "leave";
    case CommandType::kAddItem:
      return "additem";
    case CommandType::kRetireItem:
      return "retireitem";
    case CommandType::kResolve:
      return "resolve";
  }
  return "?";
}

SessionCommand MakePref(UserId u, ItemId c, double value) {
  SessionCommand cmd;
  cmd.type = CommandType::kPref;
  cmd.u = u;
  cmd.c = c;
  cmd.value = value;
  return cmd;
}

SessionCommand MakeTau(UserId u, UserId v, ItemId c, double value) {
  SessionCommand cmd;
  cmd.type = CommandType::kTau;
  cmd.u = u;
  cmd.v = v;
  cmd.c = c;
  cmd.value = value;
  return cmd;
}

SessionCommand MakeLambda(double value) {
  SessionCommand cmd;
  cmd.type = CommandType::kLambda;
  cmd.value = value;
  return cmd;
}

SessionCommand MakeJoin() {
  SessionCommand cmd;
  cmd.type = CommandType::kJoin;
  return cmd;
}

SessionCommand MakeFriend(UserId u, UserId v) {
  SessionCommand cmd;
  cmd.type = CommandType::kFriend;
  cmd.u = u;
  cmd.v = v;
  return cmd;
}

SessionCommand MakeLeave(UserId u) {
  SessionCommand cmd;
  cmd.type = CommandType::kLeave;
  cmd.u = u;
  return cmd;
}

SessionCommand MakeAddItem() {
  SessionCommand cmd;
  cmd.type = CommandType::kAddItem;
  return cmd;
}

SessionCommand MakeRetireItem(ItemId c) {
  SessionCommand cmd;
  cmd.type = CommandType::kRetireItem;
  cmd.c = c;
  return cmd;
}

SessionCommand MakeResolve() { return SessionCommand{}; }

void EncodeCommand(const SessionCommand& cmd, std::string* out) {
  AppendU8(static_cast<uint8_t>(cmd.type), out);
  switch (cmd.type) {
    case CommandType::kPref:
      AppendI32(cmd.u, out);
      AppendI32(cmd.c, out);
      AppendDouble(cmd.value, out);
      break;
    case CommandType::kTau:
      AppendI32(cmd.u, out);
      AppendI32(cmd.v, out);
      AppendI32(cmd.c, out);
      AppendDouble(cmd.value, out);
      break;
    case CommandType::kLambda:
      AppendDouble(cmd.value, out);
      break;
    case CommandType::kFriend:
      AppendI32(cmd.u, out);
      AppendI32(cmd.v, out);
      break;
    case CommandType::kLeave:
      AppendI32(cmd.u, out);
      break;
    case CommandType::kRetireItem:
      AppendI32(cmd.c, out);
      break;
    case CommandType::kJoin:
    case CommandType::kAddItem:
    case CommandType::kResolve:
      break;
  }
}

size_t EncodedCommandSize(const SessionCommand& cmd) {
  return 1 + static_cast<size_t>(PayloadSize(static_cast<uint8_t>(cmd.type)));
}

Result<SessionCommand> DecodeCommand(const char* data, size_t size,
                                     size_t* consumed) {
  if (size < 1) return Status::InvalidArgument("empty command buffer");
  const uint8_t tag = static_cast<uint8_t>(data[0]);
  const int payload = PayloadSize(tag);
  if (payload < 0) {
    return Status::InvalidArgument("unknown command tag " +
                                   std::to_string(tag));
  }
  if (size < 1 + static_cast<size_t>(payload)) {
    return Status::InvalidArgument(
        "truncated command: tag " + std::string(CommandTypeName(
                                        static_cast<CommandType>(tag))) +
        " needs " + std::to_string(payload) + " payload bytes, have " +
        std::to_string(size - 1));
  }
  SessionCommand cmd;
  cmd.type = static_cast<CommandType>(tag);
  const char* p = data + 1;
  switch (cmd.type) {
    case CommandType::kPref:
      cmd.u = ReadI32(p);
      cmd.c = ReadI32(p + 4);
      cmd.value = ReadDouble(p + 8);
      break;
    case CommandType::kTau:
      cmd.u = ReadI32(p);
      cmd.v = ReadI32(p + 4);
      cmd.c = ReadI32(p + 8);
      cmd.value = ReadDouble(p + 12);
      break;
    case CommandType::kLambda:
      cmd.value = ReadDouble(p);
      break;
    case CommandType::kFriend:
      cmd.u = ReadI32(p);
      cmd.v = ReadI32(p + 4);
      break;
    case CommandType::kLeave:
      cmd.u = ReadI32(p);
      break;
    case CommandType::kRetireItem:
      cmd.c = ReadI32(p);
      break;
    case CommandType::kJoin:
    case CommandType::kAddItem:
    case CommandType::kResolve:
      break;
  }
  if (consumed != nullptr) *consumed = 1 + static_cast<size_t>(payload);
  return cmd;
}

Status WriteCommandLog(const CommandLog& log, std::ostream* out) {
  std::string buffer;
  buffer.append(kLogMagic, sizeof(kLogMagic));
  AppendU32(kLogVersion, &buffer);
  AppendU64(static_cast<uint64_t>(log.size()), &buffer);
  for (const SessionCommand& cmd : log) EncodeCommand(cmd, &buffer);
  out->write(buffer.data(), static_cast<std::streamsize>(buffer.size()));
  if (!*out) return Status::Unknown("command log write failed");
  return Status::OK();
}

Status WriteCommandLogToFile(const CommandLog& log, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::NotFound("cannot open " + path + " for writing");
  return WriteCommandLog(log, &out);
}

Result<CommandLog> ReadCommandLog(std::istream* in) {
  // Sniff the first 4 bytes: binary logs start with "SVGB", legacy TSV
  // logs with "svgi" ("svgicevents <version>"). The shim keeps every log
  // written before the binary codec replayable.
  char magic[4] = {0, 0, 0, 0};
  in->read(magic, sizeof(magic));
  if (in->gcount() < static_cast<std::streamsize>(sizeof(magic))) {
    return Status::InvalidArgument("command log shorter than its magic");
  }
  if (std::memcmp(magic, kLogMagic, sizeof(magic)) != 0) {
    in->clear();
    in->seekg(0);
    return ReadEventLog(in);  // TSV import shim
  }
  std::string rest((std::istreambuf_iterator<char>(*in)),
                   std::istreambuf_iterator<char>());
  if (rest.size() < 4 + 8) {
    return Status::InvalidArgument("binary command log header truncated");
  }
  const uint32_t version = ReadU32(rest.data());
  if (version != kLogVersion) {
    return Status::InvalidArgument("unsupported binary command log version " +
                                   std::to_string(version));
  }
  const uint64_t count = ReadU64(rest.data() + 4);
  if (count > kMaxLogCommands) {
    return Status::InvalidArgument("implausible command count " +
                                   std::to_string(count));
  }
  CommandLog log;
  log.reserve(static_cast<size_t>(
      std::min<uint64_t>(count, 1 << 20)));  // cap pre-reserve
  size_t offset = 4 + 8;
  for (uint64_t i = 0; i < count; ++i) {
    size_t consumed = 0;
    auto cmd = DecodeCommand(rest.data() + offset, rest.size() - offset,
                             &consumed);
    if (!cmd.ok()) {
      return Status::InvalidArgument(
          "command " + std::to_string(i) + " of " + std::to_string(count) +
          ": " + cmd.status().message());
    }
    log.push_back(*cmd);
    offset += consumed;
  }
  if (offset != rest.size()) {
    return Status::InvalidArgument(
        std::to_string(rest.size() - offset) +
        " trailing bytes after the last command");
  }
  return log;
}

Result<CommandLog> ReadCommandLogFromFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  return ReadCommandLog(&in);
}

}  // namespace savg
