// Admission control in front of SessionManager: bounded queue + shedding.
//
// Every command admitted to the serving back-end occupies one slot of a
// global bounded queue until its completion callback fires. When the queue
// is full, Submit() sheds the request synchronously (ResourceExhausted →
// the server answers kOverloaded) instead of letting a flash crowd grow
// the backlog — and the tail latency — without bound. Per-session
// serialization and resolve coalescing live in the SessionManager below;
// this layer only decides *whether* a request gets in, and meters
// everything into the MetricsRegistry:
//
//   serve.admitted / serve.shed / serve.errors   counters
//   serve.resolves / serve.resolves_coalesced    counters
//   serve.queue_depth                            gauge (live slots)
//   serve.latency.resolve                        histogram (admit → done)
//   serve.latency.mutation                       histogram (admit → done)
//
// The coalesce ratio reported by the status command is
// resolves_coalesced / (resolves + resolves_coalesced): the fraction of
// resolve requests that were answered by another request's Resolve().

#pragma once

#include <cstdint>

#include "metrics/registry.h"
#include "online/session_manager.h"
#include "util/status.h"

namespace savg {

struct AdmissionOptions {
  /// Commands in flight (queued or running) across all sessions before
  /// Submit() starts shedding.
  int64_t max_queue_depth = 256;
};

class AdmissionQueue {
 public:
  /// `manager` and `metrics` must outlive the queue.
  AdmissionQueue(SessionManager* manager, MetricsRegistry* metrics,
                 AdmissionOptions options = {});

  /// Admits one command, or sheds it: ResourceExhausted means the queue
  /// was full and `done` will never be called; any other non-OK status is
  /// a submission error (unknown session). On success `done` (optional)
  /// fires on a worker thread after the command — or the resolve that
  /// coalesced it — completes. `trace`, when given, is handed through to
  /// the SessionManager, which records the request's spans into it;
  /// `force_verify` likewise requests post-solve self-verification of the
  /// answering resolve (obs/verify.h).
  Status Submit(int session_id, const SessionCommand& command,
                ApplyCallback done = nullptr,
                std::shared_ptr<TraceContext> trace = nullptr,
                bool force_verify = false);

  /// Commands currently holding a queue slot.
  int64_t depth() const { return depth_gauge_->value(); }
  int64_t shed_count() const { return shed_->value(); }
  int64_t admitted_count() const { return admitted_->value(); }

 private:
  SessionManager* manager_;
  AdmissionOptions options_;
  Gauge* depth_gauge_;
  Counter* admitted_;
  Counter* shed_;
  Counter* errors_;
  Counter* resolves_;
  Counter* resolves_coalesced_;
  Histogram* resolve_latency_;
  Histogram* mutation_latency_;
};

}  // namespace savg
