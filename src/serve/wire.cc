#include "serve/wire.h"

#include <cstring>

namespace savg {

namespace {

void AppendU8(uint8_t x, std::string* out) {
  out->push_back(static_cast<char>(x));
}

void AppendU32(uint32_t x, std::string* out) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((x >> (8 * i)) & 0xff));
  }
}

void AppendU64(uint64_t x, std::string* out) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((x >> (8 * i)) & 0xff));
  }
}

void AppendDouble(double x, std::string* out) {
  uint64_t bits = 0;
  std::memcpy(&bits, &x, sizeof(bits));
  AppendU64(bits, out);
}

uint32_t ReadU32(const char* p) {
  uint32_t x = 0;
  for (int i = 0; i < 4; ++i) {
    x |= static_cast<uint32_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  return x;
}

uint64_t ReadU64(const char* p) {
  uint64_t x = 0;
  for (int i = 0; i < 8; ++i) {
    x |= static_cast<uint64_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  return x;
}

double ReadDouble(const char* p) {
  const uint64_t bits = ReadU64(p);
  double x = 0.0;
  std::memcpy(&x, &bits, sizeof(x));
  return x;
}

bool KnownFrameKind(uint8_t kind) {
  switch (static_cast<FrameKind>(kind)) {
    case FrameKind::kApply:
    case FrameKind::kStatus:
    case FrameKind::kPing:
    case FrameKind::kShutdown:
    case FrameKind::kOk:
    case FrameKind::kOverloaded:
    case FrameKind::kBadRequest:
    case FrameKind::kError:
      return true;
  }
  return false;
}

}  // namespace

const char* FrameKindName(FrameKind kind) {
  switch (kind) {
    case FrameKind::kApply:
      return "apply";
    case FrameKind::kStatus:
      return "status";
    case FrameKind::kPing:
      return "ping";
    case FrameKind::kShutdown:
      return "shutdown";
    case FrameKind::kOk:
      return "ok";
    case FrameKind::kOverloaded:
      return "overloaded";
    case FrameKind::kBadRequest:
      return "bad-request";
    case FrameKind::kError:
      return "error";
  }
  return "?";
}

void AppendFrame(FrameKind kind, uint64_t request_id, uint32_t session_id,
                 const std::string& payload, std::string* out,
                 uint8_t flags) {
  out->append(kFrameMagic, sizeof(kFrameMagic));
  AppendU8(kWireVersion, out);
  AppendU8(static_cast<uint8_t>(kind), out);
  AppendU8(flags, out);
  AppendU8(0, out);  // reserved
  AppendU64(request_id, out);
  AppendU32(session_id, out);
  AppendU32(static_cast<uint32_t>(payload.size()), out);
  out->append(payload);
}

Result<FrameHeader> ParseFrameHeader(const char* data, size_t size) {
  if (size < kFrameHeaderBytes) {
    return Status::InvalidArgument("frame header needs " +
                                   std::to_string(kFrameHeaderBytes) +
                                   " bytes, have " + std::to_string(size));
  }
  if (std::memcmp(data, kFrameMagic, sizeof(kFrameMagic)) != 0) {
    return Status::InvalidArgument("bad frame magic");
  }
  FrameHeader header;
  header.version = static_cast<uint8_t>(data[4]);
  if (header.version != kWireVersion) {
    return Status::InvalidArgument("unsupported protocol version " +
                                   std::to_string(header.version));
  }
  const uint8_t kind = static_cast<uint8_t>(data[5]);
  if (!KnownFrameKind(kind)) {
    return Status::InvalidArgument("unknown frame kind " +
                                   std::to_string(kind));
  }
  header.kind = static_cast<FrameKind>(kind);
  header.flags = static_cast<uint8_t>(data[6]);
  if ((header.flags & ~kKnownFrameFlags) != 0) {
    return Status::InvalidArgument("unknown frame flag bits");
  }
  if (data[7] != 0) {
    return Status::InvalidArgument("nonzero reserved frame bytes");
  }
  header.request_id = ReadU64(data + 8);
  header.session_id = ReadU32(data + 16);
  header.payload_size = ReadU32(data + 20);
  if (header.payload_size > kMaxPayloadBytes) {
    return Status::InvalidArgument(
        "frame payload length " + std::to_string(header.payload_size) +
        " exceeds the " + std::to_string(kMaxPayloadBytes) + "-byte limit");
  }
  return header;
}

void FrameReader::Feed(const char* data, size_t size) {
  // Compact once the consumed prefix dominates, so a long-lived
  // connection cannot grow the buffer without bound.
  if (offset_ > 4096 && offset_ * 2 > buffer_.size()) {
    buffer_.erase(0, offset_);
    offset_ = 0;
  }
  buffer_.append(data, size);
}

Result<bool> FrameReader::Next(FrameHeader* header, std::string* payload) {
  const size_t available = buffer_.size() - offset_;
  if (available < kFrameHeaderBytes) return false;
  auto parsed = ParseFrameHeader(buffer_.data() + offset_, available);
  if (!parsed.ok()) return parsed.status();
  if (available < kFrameHeaderBytes + parsed->payload_size) return false;
  *header = *parsed;
  payload->assign(buffer_.data() + offset_ + kFrameHeaderBytes,
                  parsed->payload_size);
  offset_ += kFrameHeaderBytes + parsed->payload_size;
  return true;
}

void EncodeApplyResult(const ApplyResult& result, std::string* out) {
  AppendU8(static_cast<uint8_t>(result.code), out);
  AppendU32(static_cast<uint32_t>(result.message.size()), out);
  out->append(result.message);
  AppendU64(static_cast<uint64_t>(result.assigned_id), out);
  AppendU8(result.resolved ? 1 : 0, out);
  AppendU32(result.coalesced, out);
  AppendDouble(result.lp_objective, out);
  AppendDouble(result.scaled_total, out);
  AppendDouble(result.resolve_seconds, out);
  AppendU32(static_cast<uint32_t>(result.pivots), out);
}

Result<ApplyResult> DecodeApplyResult(const char* data, size_t size) {
  // Fixed part before/after the variable-length message.
  constexpr size_t kPrefix = 1 + 4;
  constexpr size_t kSuffix = 8 + 1 + 4 + 8 + 8 + 8 + 4;
  if (size < kPrefix + kSuffix) {
    return Status::InvalidArgument("apply-result payload truncated");
  }
  ApplyResult result;
  result.code = static_cast<StatusCode>(static_cast<uint8_t>(data[0]));
  const uint32_t msg_len = ReadU32(data + 1);
  if (size != kPrefix + msg_len + kSuffix) {
    return Status::InvalidArgument("apply-result length mismatch");
  }
  result.message.assign(data + kPrefix, msg_len);
  const char* p = data + kPrefix + msg_len;
  result.assigned_id = static_cast<int64_t>(ReadU64(p));
  result.resolved = static_cast<uint8_t>(p[8]) != 0;
  result.coalesced = ReadU32(p + 9);
  result.lp_objective = ReadDouble(p + 13);
  result.scaled_total = ReadDouble(p + 21);
  result.resolve_seconds = ReadDouble(p + 29);
  result.pivots = static_cast<int32_t>(ReadU32(p + 37));
  return result;
}

}  // namespace savg
