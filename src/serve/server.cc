#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <utility>

#include "durability/recovery.h"
#include "obs/structured_log.h"
#include "util/logging.h"

namespace savg {

namespace {

constexpr size_t kRecvChunk = 64 * 1024;
/// An HTTP request line + headers larger than this is not our tiny
/// status front-end talking.
constexpr size_t kMaxHttpRequestBytes = 16 * 1024;

/// send() the whole buffer (MSG_NOSIGNAL: a vanished peer must surface as
/// EPIPE, not kill the process).
bool SendAll(int fd, const char* data, size_t size) {
  size_t sent = 0;
  while (sent < size) {
    const ssize_t n =
        ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

void AppendJsonEscaped(const std::string& text, std::ostream* out) {
  for (char ch : text) {
    if (ch == '"' || ch == '\\') {
      *out << '\'';
    } else if (static_cast<unsigned char>(ch) < 0x20) {
      *out << ' ';
    } else {
      *out << ch;
    }
  }
}

}  // namespace

namespace {

HealthOptions ResolveHealthOptions(const ServerOptions& options) {
  HealthOptions health = options.health;
  if (health.queue_capacity == 0) {
    health.queue_capacity = options.admission.max_queue_depth;
  }
  return health;
}

}  // namespace

ServeServer::ServeServer(ServerOptions options)
    : options_(options),
      timeseries_(&metrics_, TimeSeriesOptions{options.metrics_windows}),
      health_(ResolveHealthOptions(options)),
      verifier_(&metrics_, options.verify),
      store_(options.durability.data_dir.empty()
                 ? nullptr
                 : std::make_unique<SessionStore>(options.durability,
                                                  &metrics_)),
      manager_(SessionManagerOptions{options.num_workers,
                                     options.coalesce_resolves, &metrics_,
                                     store_.get()}),
      admission_(&manager_, &metrics_, options.admission),
      tracer_(&metrics_, options.trace) {}

ServeServer::~ServeServer() { Shutdown(); }

int ServeServer::CreateSession(SvgicInstance instance,
                               SessionOptions options) {
  options.verifier = &verifier_;
  return manager_.CreateSession(std::move(instance), options);
}

Result<int> ServeServer::RecoverSessions(SessionOptions base_options) {
  if (store_ == nullptr) {
    return Status::InvalidArgument(
        "recovery needs durability.data_dir to be set");
  }
  RecoveryManager recovery(options_.durability.data_dir, base_options,
                           RecoveryOptions{}, &metrics_);
  SAVG_ASSIGN_OR_RETURN(std::vector<RecoveredSession> recovered,
                        recovery.RecoverAll());
  int count = 0;
  for (RecoveredSession& item : recovered) {
    // The recovery manager built the session without a verifier (options
    // carry pointers into THIS server); stamp them before adoption.
    SessionOptions options = base_options;
    options.verifier = &verifier_;
    options.verifier_session_id = item.session_id;
    std::unique_ptr<Session> session = Session::FromState(
        item.session->CaptureState(), options);
    const int id = manager_.AdoptSession(std::move(session),
                                         item.last_epoch + 1,
                                         item.applied_seq);
    if (static_cast<uint32_t>(id) != item.session_id) {
      return Status::InvalidArgument(
          "recovered session " + std::to_string(item.session_id) +
          " adopted as id " + std::to_string(id) +
          " (sessions must be adopted before CreateSession)");
    }
    LogEvent(LogLevel::kInfo, "serve.recovered",
             LogFields()
                 .Add("session", id)
                 .Add("applied_seq", item.applied_seq)
                 .Add("replayed", item.replayed_commands)
                 .Add("snapshot_epoch",
                      static_cast<int64_t>(item.snapshot_epoch))
                 .Add("torn_tail", item.torn_tail ? 1 : 0)
                 .Add("seconds", item.seconds));
    ++count;
  }
  return count;
}

Status ServeServer::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Unknown(std::string("socket(): ") +
                           std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Unknown("bind(127.0.0.1:" +
                           std::to_string(options_.port) + "): " + err);
  }
  if (::listen(listen_fd_, 128) != 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Unknown("listen(): " + err);
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    &len) == 0) {
    port_ = ntohs(addr.sin_port);
  }
  running_.store(true);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  if (options_.metrics_interval_seconds > 0.0) {
    capture_thread_ = std::thread([this] {
      const auto interval = std::chrono::duration<double>(
          options_.metrics_interval_seconds);
      std::unique_lock<std::mutex> lock(capture_mu_);
      while (!capture_stop_) {
        if (capture_cv_.wait_for(lock, interval,
                                 [this] { return capture_stop_; })) {
          break;
        }
        lock.unlock();
        CaptureMetricsWindow();
        lock.lock();
      }
    });
  }
  LogEvent(LogLevel::kInfo, "serve.listen",
           LogFields()
               .Add("port", port_)
               .Add("trace_sample", options_.trace.sample_every)
               .Add("slow_ms", options_.trace.slow_seconds * 1000.0)
               .Add("metrics_interval_s", options_.metrics_interval_seconds)
               .Add("verify_sample", options_.verify.sample_every));
  return Status::OK();
}

void ServeServer::CaptureMetricsWindow(double interval_seconds) {
  timeseries_.CaptureNow(interval_seconds);
  health_.Evaluate(timeseries_.Aggregate(1));
}

void ServeServer::AcceptLoop() {
  while (running_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener closed by Shutdown()
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    std::lock_guard<std::mutex> lock(conns_mu_);
    if (!running_.load()) {
      ::close(fd);
      return;
    }
    conns_.push_back(conn);
    conn_threads_.emplace_back(
        [this, conn] { ServeConnection(conn); });
  }
}

void ServeServer::SendFrame(const std::shared_ptr<Connection>& conn,
                            FrameKind kind, uint64_t request_id,
                            uint32_t session_id,
                            const std::string& payload) {
  std::string frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  AppendFrame(kind, request_id, session_id, payload, &frame);
  std::lock_guard<std::mutex> lock(conn->write_mu);
  if (!conn->open.load()) return;
  if (!SendAll(conn->fd, frame.data(), frame.size())) {
    conn->open.store(false);
  }
}

void ServeServer::HandleFrame(const std::shared_ptr<Connection>& conn,
                              const FrameHeader& header,
                              const std::string& payload) {
  const uint64_t request_id = header.request_id;
  const uint32_t session_id = header.session_id;
  switch (header.kind) {
    case FrameKind::kApply: {
      size_t consumed = 0;
      auto command =
          DecodeCommand(payload.data(), payload.size(), &consumed);
      if (!command.ok() || consumed != payload.size()) {
        ApplyResult bad;
        bad.code = StatusCode::kInvalidArgument;
        bad.message = command.ok() ? "trailing bytes after command"
                                   : command.status().message();
        std::string body;
        EncodeApplyResult(bad, &body);
        SendFrame(conn, FrameKind::kBadRequest, request_id, session_id,
                  body);
        return;
      }
      // Trace if the client set the wire flag, or the sampler picked
      // this request; unsampled requests still get slow-log coverage via
      // FinishUntraced.
      const char* command_name = CommandTypeName(command->type);
      std::shared_ptr<TraceContext> trace =
          tracer_.Sample((header.flags & kFrameFlagTrace) != 0, request_id,
                         session_id, command_name);
      const bool force_verify = (header.flags & kFrameFlagVerify) != 0;
      Timer request_timer;
      Status admitted = admission_.Submit(
          static_cast<int>(session_id), *command,
          [this, conn, request_id, session_id, trace, request_timer,
           command_name](const Status& status,
                         const CommandOutcome& outcome) {
            ApplyResult result;
            result.code = status.code();
            result.message = status.message();
            result.assigned_id = outcome.assigned_id;
            result.resolved = outcome.resolved;
            result.coalesced = static_cast<uint32_t>(outcome.coalesced);
            if (outcome.resolved) {
              result.lp_objective = outcome.report.lp_objective;
              result.scaled_total = outcome.report.scaled_total;
              result.resolve_seconds = outcome.report.total_seconds;
              result.pivots = outcome.report.pivots;
            }
            std::string body;
            EncodeApplyResult(result, &body);
            // Finish the trace BEFORE answering: once the client has the
            // response, the trace is visible at /trace and in the slow
            // log (the CI export step relies on this ordering).
            const char* verdict = status.ok() ? "ok" : "error";
            if (trace != nullptr) {
              tracer_.Finish(trace, verdict);
            } else {
              tracer_.FinishUntraced(request_id, session_id, command_name,
                                     request_timer.ElapsedSeconds(),
                                     verdict);
            }
            SendFrame(conn,
                      status.ok() ? FrameKind::kOk : FrameKind::kError,
                      request_id, session_id, body);
          },
          trace, force_verify);
      if (!admitted.ok()) {
        ApplyResult rejected;
        rejected.code = admitted.code();
        rejected.message = admitted.message();
        std::string body;
        EncodeApplyResult(rejected, &body);
        const bool overloaded =
            admitted.code() == StatusCode::kResourceExhausted;
        SendFrame(conn,
                  overloaded ? FrameKind::kOverloaded : FrameKind::kError,
                  request_id, session_id, body);
        if (overloaded) {
          LogEvent(LogLevel::kInfo, "serve.shed",
                   LogFields()
                       .Add("trace_id",
                            trace != nullptr ? trace->trace().trace_id
                                             : uint64_t{0})
                       .Add("request_id", request_id)
                       .Add("session", uint64_t{session_id})
                       .Add("command", command_name));
        }
        if (trace != nullptr) {
          tracer_.Finish(trace, overloaded ? "shed" : "error");
        }
      }
      return;
    }
    case FrameKind::kStatus:
      SendFrame(conn, FrameKind::kOk, request_id, 0, StatusJson());
      return;
    case FrameKind::kPing:
      SendFrame(conn, FrameKind::kOk, request_id, 0, "");
      return;
    case FrameKind::kShutdown:
      SendFrame(conn, FrameKind::kOk, request_id, 0, "");
      RequestShutdown();
      return;
    case FrameKind::kOk:
    case FrameKind::kOverloaded:
    case FrameKind::kBadRequest:
    case FrameKind::kError:
      break;  // response kinds are not valid requests
  }
  ApplyResult bad;
  bad.code = StatusCode::kInvalidArgument;
  bad.message = std::string("frame kind '") + FrameKindName(header.kind) +
                "' is not a request";
  std::string body;
  EncodeApplyResult(bad, &body);
  SendFrame(conn, FrameKind::kBadRequest, request_id, session_id, body);
}

void ServeServer::ServeConnection(const std::shared_ptr<Connection>& conn) {
  metrics_.GetGauge("serve.connections")->Increment();
  std::string sniff;
  char chunk[kRecvChunk];
  bool is_http = false;
  // Sniff the first four bytes: frame magic = binary protocol, anything
  // else = the HTTP/JSON status front-end.
  while (sniff.size() < sizeof(kFrameMagic)) {
    const ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;
    }
    sniff.append(chunk, static_cast<size_t>(n));
  }
  if (sniff.size() >= sizeof(kFrameMagic)) {
    is_http = std::memcmp(sniff.data(), kFrameMagic,
                          sizeof(kFrameMagic)) != 0;
    if (is_http) {
      ServeHttp(conn, std::move(sniff));
    } else {
      FrameReader reader;
      reader.Feed(sniff.data(), sniff.size());
      bool alive = true;
      while (alive && conn->open.load()) {
        FrameHeader header;
        std::string payload;
        for (;;) {
          auto next = reader.Next(&header, &payload);
          if (!next.ok()) {
            // Framing lost: answer once, then drop the connection.
            LogEvent(LogLevel::kInfo, "serve.bad_request",
                     LogFields().Add("reason", next.status().message()));
            ApplyResult bad;
            bad.code = StatusCode::kInvalidArgument;
            bad.message = next.status().message();
            std::string body;
            EncodeApplyResult(bad, &body);
            SendFrame(conn, FrameKind::kBadRequest, 0, 0, body);
            alive = false;
            break;
          }
          if (!*next) break;  // need more bytes
          HandleFrame(conn, header, payload);
        }
        if (!alive) break;
        const ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
        if (n <= 0) {
          if (n < 0 && errno == EINTR) continue;
          break;
        }
        reader.Feed(chunk, static_cast<size_t>(n));
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(conn->write_mu);
    conn->open.store(false);
    ::close(conn->fd);
    conn->fd = -1;
  }
  metrics_.GetGauge("serve.connections")->Decrement();
}

void ServeServer::ServeHttp(const std::shared_ptr<Connection>& conn,
                            std::string buffered) {
  char chunk[kRecvChunk];
  while (buffered.find("\r\n\r\n") == std::string::npos &&
         buffered.size() < kMaxHttpRequestBytes) {
    const ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;
    }
    buffered.append(chunk, static_cast<size_t>(n));
  }
  std::istringstream request(buffered);
  std::string method, path;
  request >> method >> path;
  std::string query;
  const size_t question = path.find('?');
  if (question != std::string::npos) {
    query = path.substr(question + 1);
    path.resize(question);
  }
  std::string body;
  std::string status_line = "HTTP/1.0 200 OK";
  std::string content_type = "application/json";
  if (method != "GET") {
    status_line = "HTTP/1.0 405 Method Not Allowed";
    body = "{\"error\": \"only GET is served here\"}";
  } else if (path == "/metrics") {
    // GET /metrics?window=N: rates + windowed p50/p99 aggregated over the
    // last N capture windows; without the parameter, the lifetime dump.
    long window = 0;
    std::istringstream params(query);
    std::string param;
    while (std::getline(params, param, '&')) {
      if (param.rfind("window=", 0) == 0) {
        window = std::atol(param.c_str() + 7);
      }
    }
    body = window > 0
               ? timeseries_.Aggregate(static_cast<int>(window)).JsonDump()
               : metrics_.JsonDump();
  } else if (path == "/metrics.prom") {
    content_type = "text/plain; version=0.0.4";
    body = metrics_.PrometheusDump();
  } else if (path == "/health") {
    // Load balancers speak status codes: ok/degraded still serve traffic
    // (200); unhealthy means stop sending it (503).
    if (health_.verdict().level == HealthLevel::kUnhealthy) {
      status_line = "HTTP/1.0 503 Service Unavailable";
    }
    body = health_.JsonDump();
  } else if (path == "/trace") {
    // GET /trace?last=N[&format=text]: the N most recent finished traces,
    // as Chrome trace-event JSON (Perfetto-loadable) or an indented tree.
    size_t last = 32;
    bool text = false;
    std::istringstream params(query);
    std::string param;
    while (std::getline(params, param, '&')) {
      if (param.rfind("last=", 0) == 0) {
        const long parsed = std::atol(param.c_str() + 5);
        if (parsed > 0) last = static_cast<size_t>(parsed);
      } else if (param == "format=text") {
        text = true;
      }
    }
    const std::vector<Trace> traces = tracer_.LastTraces(last);
    if (text) {
      content_type = "text/plain";
      body = TraceTextTree(traces);
    } else {
      body = ChromeTraceJson(traces);
    }
  } else if (path == "/status" || path == "/" || path == "/sessions") {
    body = StatusJson();
  } else {
    status_line = "HTTP/1.0 404 Not Found";
    body =
        "{\"error\": \"try /status, /metrics, /metrics.prom, /health or "
        "/trace\"}";
  }
  std::ostringstream response;
  response << status_line << "\r\n"
           << "Content-Type: " << content_type << "\r\n"
           << "Content-Length: " << body.size() << "\r\n"
           << "Connection: close\r\n\r\n"
           << body;
  const std::string text = response.str();
  std::lock_guard<std::mutex> lock(conn->write_mu);
  if (conn->open.load()) SendAll(conn->fd, text.data(), text.size());
}

std::string ServeServer::StatusJson() {
  std::ostringstream out;
  out.precision(9);
  out << "{\"sessions\": [";
  bool first = true;
  for (int id : manager_.ListSessions()) {
    auto stats = manager_.GetStats(id);
    if (!stats.ok()) continue;
    if (!first) out << ", ";
    first = false;
    out << "{\"id\": " << stats->session_id
        << ", \"users\": " << stats->num_users
        << ", \"items\": " << stats->num_items
        << ", \"commands\": " << stats->commands_applied
        << ", \"resolves\": " << stats->resolves
        << ", \"resolves_coalesced\": " << stats->resolves_coalesced
        << ", \"queue_depth\": " << stats->queue_depth
        << ", \"last_scaled_total\": " << stats->last_scaled_total
        << ", \"error\": \"";
    AppendJsonEscaped(stats->first_error.ok()
                          ? ""
                          : stats->first_error.ToString(),
                      &out);
    out << "\"}";
  }
  const double resolves = static_cast<double>(
      metrics_.GetCounter("serve.resolves")->value());
  const double coalesced = static_cast<double>(
      metrics_.GetCounter("serve.resolves_coalesced")->value());
  const double total = resolves + coalesced;
  out << "], \"admission\": {\"queue_depth\": " << admission_.depth()
      << ", \"admitted\": " << admission_.admitted_count()
      << ", \"shed\": " << admission_.shed_count()
      << ", \"coalesce_ratio\": " << (total > 0 ? coalesced / total : 0.0)
      << "}, \"health\": " << health_.JsonDump() << ", "
      << metrics_.JsonDump().substr(1);
  return out.str();
}

void ServeServer::RequestShutdown() {
  std::lock_guard<std::mutex> lock(shutdown_mu_);
  if (!shutdown_requested_) {
    LogEvent(LogLevel::kInfo, "serve.shutdown",
             LogFields().Add("port", port_));
  }
  shutdown_requested_ = true;
  shutdown_cv_.notify_all();
}

void ServeServer::WaitForShutdown() {
  std::unique_lock<std::mutex> lock(shutdown_mu_);
  shutdown_cv_.wait(lock, [this] { return shutdown_requested_; });
}

void ServeServer::Shutdown() {
  RequestShutdown();
  {
    std::lock_guard<std::mutex> lock(capture_mu_);
    capture_stop_ = true;
  }
  capture_cv_.notify_all();
  if (capture_thread_.joinable()) capture_thread_.join();
  if (!running_.exchange(false)) {
    // Never started (or already shut down): nothing to unwind.
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    manager_.Drain();
    manager_.FlushDurability();
    verifier_.Flush();
    return;
  }
  // Break the accept loop, then every reader loop, then wait for all
  // pending commands so completion callbacks fire before teardown.
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  listen_fd_ = -1;
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto& conn : conns_) {
      if (conn->open.load() && conn->fd >= 0) {
        ::shutdown(conn->fd, SHUT_RDWR);
      }
    }
  }
  for (;;) {
    std::thread t;
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      if (conn_threads_.empty()) break;
      t = std::move(conn_threads_.back());
      conn_threads_.pop_back();
    }
    if (t.joinable()) t.join();
  }
  manager_.Drain();
  // Drained means every session is at a command boundary: flush the
  // journals (final snapshot per policy) so a graceful shutdown restarts
  // with an empty replay.
  const Status flushed = manager_.FlushDurability();
  if (!flushed.ok()) {
    SAVG_LOG(Warning) << "durability: shutdown flush failed: "
                      << flushed.message();
  }
  // Pending verifications finish before the final metrics dump so
  // verify.pass/fail are complete at quiesce.
  verifier_.Flush();
}

}  // namespace savg
