// Framed binary wire protocol of the serving front-end.
//
// Every message — request or response — is one frame:
//
//   offset size  field
//   0      4     magic "SVGF"
//   4      1     protocol version (1)
//   5      1     kind (FrameKind)
//   6      1     flags (kFrameFlag*; unknown bits rejected)
//   7      1     reserved (must be 0)
//   8      8     request id (u64, echoed verbatim in the response)
//   16     4     session id (u32; kApply requests only, else 0)
//   20     4     payload length (u32, <= kMaxPayloadBytes)
//   24     ...   payload
//
// Byte 6 was a reserved must-be-zero byte through protocol version 1's
// first deployment; it now carries per-request flags. Old clients send 0
// (no flags) and old servers reject any nonzero bit, so the repurposing
// is compatible in both directions. kFrameFlagTrace asks the server to
// force-collect a request trace (src/obs/) regardless of its sample rate;
// kFrameFlagVerify asks for post-solve self-verification of the resolve
// answering this request (obs/verify.h) regardless of its sample rate.
//
// all little-endian. Request payloads: kApply carries exactly one encoded
// SessionCommand (serve/session_command.h — the same canonical bytes the
// command log stores); kStatus/kPing/kShutdown are empty. Response
// payloads: kOk for an apply carries an encoded ApplyResult; kOk for a
// status request carries the server's status JSON; kOverloaded /
// kBadRequest / kError carry an encoded ApplyResult whose status explains
// the rejection.
//
// FrameReader is the incremental decoder used by both server and client:
// feed it arbitrary byte chunks from the socket and it yields complete
// frames, rejecting bad magic / versions / oversized lengths without ever
// reading past the buffer (the fuzz decode test drives it with truncated
// and corrupt streams).

#pragma once

#include <cstdint>
#include <string>

#include "serve/session_command.h"
#include "util/status.h"

namespace savg {

constexpr char kFrameMagic[4] = {'S', 'V', 'G', 'F'};
constexpr uint8_t kWireVersion = 1;
constexpr size_t kFrameHeaderBytes = 24;
/// Commands are tens of bytes and status JSON a few KB; anything near this
/// limit is a corrupt length field, not a real payload.
constexpr uint32_t kMaxPayloadBytes = 1u << 20;

enum class FrameKind : uint8_t {
  // Requests.
  kApply = 1,     ///< payload: one encoded SessionCommand
  kStatus = 2,    ///< payload: empty; response: status JSON
  kPing = 3,      ///< payload: empty; response: empty kOk
  kShutdown = 4,  ///< asks the server to stop serving (load-gen lifecycle)
  // Responses.
  kOk = 128,
  kOverloaded = 129,  ///< admission queue full — request was shed
  kBadRequest = 130,  ///< malformed frame/command payload
  kError = 131,       ///< command applied but failed (see ApplyResult)
};

const char* FrameKindName(FrameKind kind);

/// Frame flag bits (header byte 6).
constexpr uint8_t kFrameFlagTrace = 0x01;   ///< force-trace this request
constexpr uint8_t kFrameFlagVerify = 0x02;  ///< force-verify the resolve
constexpr uint8_t kKnownFrameFlags = kFrameFlagTrace | kFrameFlagVerify;

struct FrameHeader {
  uint8_t version = kWireVersion;
  FrameKind kind = FrameKind::kPing;
  uint8_t flags = 0;
  uint64_t request_id = 0;
  uint32_t session_id = 0;
  uint32_t payload_size = 0;
};

/// Appends one complete frame (header + payload) to `out`.
void AppendFrame(FrameKind kind, uint64_t request_id, uint32_t session_id,
                 const std::string& payload, std::string* out,
                 uint8_t flags = 0);

/// Parses a header from exactly kFrameHeaderBytes bytes. Rejects bad
/// magic, unknown version, unknown flag bits, a nonzero reserved byte,
/// and oversized payload lengths.
Result<FrameHeader> ParseFrameHeader(const char* data, size_t size);

/// Incremental frame extractor (see file comment).
class FrameReader {
 public:
  /// Appends raw socket bytes to the internal buffer.
  void Feed(const char* data, size_t size);

  /// Extracts the next complete frame. Returns true and fills
  /// header/payload when one is available, false when more bytes are
  /// needed, or an error Status on a malformed stream (the connection
  /// should be dropped — resync is impossible once framing is lost).
  Result<bool> Next(FrameHeader* header, std::string* payload);

  size_t buffered_bytes() const { return buffer_.size() - offset_; }

 private:
  std::string buffer_;
  size_t offset_ = 0;
};

// --- Apply-response payload ------------------------------------------------

/// Resolve telemetry of one answered apply request: enough for the load
/// generator to report client-observed latency/objective without a second
/// round trip.
struct ApplyResult {
  StatusCode code = StatusCode::kOk;
  std::string message;
  int64_t assigned_id = -1;
  bool resolved = false;
  /// Resolve requests folded into the same Resolve() (coalescing).
  uint32_t coalesced = 0;
  double lp_objective = 0.0;
  double scaled_total = 0.0;
  /// Server-side seconds spent in Resolve() (0 for pure mutations).
  double resolve_seconds = 0.0;
  int32_t pivots = 0;

  bool ok() const { return code == StatusCode::kOk; }
};

void EncodeApplyResult(const ApplyResult& result, std::string* out);
Result<ApplyResult> DecodeApplyResult(const char* data, size_t size);

}  // namespace savg
