// Minimal blocking client for the framed wire protocol (serve/wire.h).
//
// One ServeClient owns one TCP connection. Requests and responses are
// explicit so callers can pipeline: Send*() writes a frame and returns
// the request id; ReadResponse() blocks for the next response frame in
// arrival order (the server may reorder across sessions — match on
// ServeResponse::request_id). The convenience Apply() does one
// send + receive round trip.
//
// Used by bench_serve_load, the serve tests, and svgic_cli.

#pragma once

#include <cstdint>
#include <string>

#include "serve/wire.h"
#include "util/status.h"

namespace savg {

/// One response frame, with the apply payload decoded when present.
struct ServeResponse {
  FrameKind kind = FrameKind::kOk;
  uint64_t request_id = 0;
  /// Raw payload (status JSON for kStatus responses).
  std::string payload;
  /// Decoded payload for apply responses (kOk/kOverloaded/kBadRequest/
  /// kError with a non-empty payload).
  ApplyResult result;
  bool has_result = false;
};

class ServeClient {
 public:
  ServeClient() = default;
  ~ServeClient();

  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  /// Connects to host:port (numeric IPv4 host, e.g. "127.0.0.1").
  Status Connect(const std::string& host, int port);
  void Close();
  bool connected() const { return fd_ >= 0; }

  /// Each Send* writes one request frame and returns its request id.
  /// `trace` sets kFrameFlagTrace: the server then traces this request
  /// regardless of its sampling rate (GET /trace, slow-query log).
  /// `verify` sets kFrameFlagVerify: the resolve answering this request is
  /// self-verified off the hot path (obs/verify.h, verify.* metrics).
  Result<uint64_t> SendApply(uint32_t session_id,
                             const SessionCommand& command,
                             bool trace = false, bool verify = false);
  Result<uint64_t> SendStatus();
  Result<uint64_t> SendPing();
  Result<uint64_t> SendShutdown();

  /// Blocks until the next response frame arrives.
  Result<ServeResponse> ReadResponse();

  /// Send + receive one apply (no pipelining).
  Result<ServeResponse> Apply(uint32_t session_id,
                              const SessionCommand& command,
                              bool trace = false, bool verify = false);

  /// Fetches the server's status JSON (send + receive).
  Result<std::string> FetchStatus();

 private:
  Result<uint64_t> SendFrame(FrameKind kind, uint32_t session_id,
                             const std::string& payload, uint8_t flags = 0);

  int fd_ = -1;
  uint64_t next_request_id_ = 1;
  FrameReader reader_;
};

/// One-shot HTTP/1.0 GET against the server's HTTP front-end (the same
/// port as the binary protocol); returns the response body. Used by
/// `svgic_cli trace` and the CI trace-export step.
Result<std::string> HttpGet(const std::string& host, int port,
                            const std::string& path);

}  // namespace savg
