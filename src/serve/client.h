// Minimal blocking client for the framed wire protocol (serve/wire.h).
//
// One ServeClient owns one TCP connection. Requests and responses are
// explicit so callers can pipeline: Send*() writes a frame and returns
// the request id; ReadResponse() blocks for the next response frame in
// arrival order (the server may reorder across sessions — match on
// ServeResponse::request_id). The convenience Apply() does one
// send + receive round trip.
//
// Retry (ClientRetryOptions, off by default): Apply() transparently
// retries on transport failures (connection reset / server restart —
// reconnects to the remembered host:port first) and on kOverloaded
// responses (backoff only; the connection is fine, the server shed the
// request), with capped exponential backoff plus deterministic jitter and
// a per-call retry budget. At-least-once caveat: a send that succeeded
// whose response was lost is re-sent on the new connection, so a
// non-idempotent command (kJoin, kAddItem) can be applied twice around a
// server restart — acceptable for the load generator and operator
// tooling this client serves; exactly-once needs request ids persisted
// server-side. Only Apply() retries; the pipelined Send*/ReadResponse
// pairs stay raw.
//
// Used by bench_serve_load, the serve tests, and svgic_cli.

#pragma once

#include <cstdint>
#include <string>

#include "metrics/registry.h"
#include "serve/wire.h"
#include "util/status.h"

namespace savg {

/// Apply() retry policy. max_retries = 0 (default) disables retrying and
/// makes Apply() behave exactly as before.
struct ClientRetryOptions {
  /// Retries per Apply() call beyond the first attempt.
  int max_retries = 0;
  double initial_backoff_ms = 5.0;
  double max_backoff_ms = 200.0;
  double backoff_multiplier = 2.0;
  /// Each backoff is scaled by a factor uniform in [1-j, 1+j], from a
  /// deterministic per-client stream (reproducible benches; still
  /// decorrelates concurrent clients via the seed).
  double jitter_fraction = 0.2;
  /// Seed of the jitter stream (vary per client to spread herds).
  uint64_t jitter_seed = 1;
};

/// One response frame, with the apply payload decoded when present.
struct ServeResponse {
  FrameKind kind = FrameKind::kOk;
  uint64_t request_id = 0;
  /// Raw payload (status JSON for kStatus responses).
  std::string payload;
  /// Decoded payload for apply responses (kOk/kOverloaded/kBadRequest/
  /// kError with a non-empty payload).
  ApplyResult result;
  bool has_result = false;
};

class ServeClient {
 public:
  /// `registry`, when set, feeds the serve.client.retries counter.
  explicit ServeClient(ClientRetryOptions retry = {},
                       MetricsRegistry* registry = nullptr);
  ~ServeClient();

  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  /// Connects to host:port (numeric IPv4 host, e.g. "127.0.0.1"). The
  /// address is remembered for retry reconnects.
  Status Connect(const std::string& host, int port);
  void Close();
  bool connected() const { return fd_ >= 0; }

  /// Retries Apply() performed over this client's lifetime.
  uint64_t retries() const { return retries_; }

  /// Each Send* writes one request frame and returns its request id.
  /// `trace` sets kFrameFlagTrace: the server then traces this request
  /// regardless of its sampling rate (GET /trace, slow-query log).
  /// `verify` sets kFrameFlagVerify: the resolve answering this request is
  /// self-verified off the hot path (obs/verify.h, verify.* metrics).
  Result<uint64_t> SendApply(uint32_t session_id,
                             const SessionCommand& command,
                             bool trace = false, bool verify = false);
  Result<uint64_t> SendStatus();
  Result<uint64_t> SendPing();
  Result<uint64_t> SendShutdown();

  /// Blocks until the next response frame arrives.
  Result<ServeResponse> ReadResponse();

  /// Send + receive one apply (no pipelining). Retries per the client's
  /// ClientRetryOptions (see the file comment for the semantics).
  Result<ServeResponse> Apply(uint32_t session_id,
                              const SessionCommand& command,
                              bool trace = false, bool verify = false);

  /// Fetches the server's status JSON (send + receive).
  Result<std::string> FetchStatus();

 private:
  Result<uint64_t> SendFrame(FrameKind kind, uint32_t session_id,
                             const std::string& payload, uint8_t flags = 0);
  /// One uncounted backoff + bookkeeping step of the Apply() retry loop;
  /// reconnects when `reconnect` (transport failure) vs backoff-only
  /// (kOverloaded). Returns false when the budget is exhausted.
  bool PrepareRetry(int attempt, bool reconnect);

  int fd_ = -1;
  uint64_t next_request_id_ = 1;
  FrameReader reader_;

  ClientRetryOptions retry_;
  Counter* retries_counter_ = nullptr;
  uint64_t retries_ = 0;
  uint64_t jitter_state_ = 0;
  std::string host_;
  int port_ = 0;
};

/// One-shot HTTP/1.0 GET against the server's HTTP front-end (the same
/// port as the binary protocol); returns the response body. Used by
/// `svgic_cli trace` and the CI trace-export step.
Result<std::string> HttpGet(const std::string& host, int port,
                            const std::string& path);

}  // namespace savg
