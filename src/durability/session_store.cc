#include "durability/session_store.h"

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>

#include "durability/snapshot.h"
#include "util/logging.h"

namespace savg {

namespace {

double MonotonicSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Matches "<prefix><decimal digits>" exactly (the SnapshotFileName /
/// ChangelogFileName shapes; %06u zero-pads but longer epochs print wider,
/// so the digit run is not fixed-length).
bool ParseEpochFileName(const char* name, const char* prefix,
                        uint32_t* epoch) {
  const size_t prefix_len = std::strlen(prefix);
  if (std::strncmp(name, prefix, prefix_len) != 0) return false;
  const char* digits = name + prefix_len;
  if (*digits == '\0') return false;
  uint64_t value = 0;
  for (const char* p = digits; *p != '\0'; ++p) {
    if (*p < '0' || *p > '9') return false;
    value = value * 10 + static_cast<uint64_t>(*p - '0');
    if (value > UINT32_MAX) return false;
  }
  *epoch = static_cast<uint32_t>(value);
  return true;
}

}  // namespace

std::string SnapshotFileName(uint32_t epoch) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "snapshot-%06u", epoch);
  return buf;
}

std::string ChangelogFileName(uint32_t epoch) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "changelog-%06u", epoch);
  return buf;
}

Result<EpochInventory> ScanSessionDir(const std::string& dir) {
  DIR* handle = ::opendir(dir.c_str());
  if (handle == nullptr) {
    return Status::Unknown("opendir(" + dir + "): " + std::strerror(errno));
  }
  EpochInventory inventory;
  while (struct dirent* entry = ::readdir(handle)) {
    uint32_t epoch = 0;
    if (ParseEpochFileName(entry->d_name, "snapshot-", &epoch)) {
      inventory.snapshot_epochs.push_back(epoch);
    } else if (ParseEpochFileName(entry->d_name, "changelog-", &epoch)) {
      inventory.changelog_epochs.push_back(epoch);
    }
  }
  ::closedir(handle);
  std::sort(inventory.snapshot_epochs.begin(),
            inventory.snapshot_epochs.end());
  std::sort(inventory.changelog_epochs.begin(),
            inventory.changelog_epochs.end());
  return inventory;
}

Status EnsureDirectory(const std::string& path) {
  if (path.empty()) return Status::InvalidArgument("empty directory path");
  // mkdir -p: create each prefix, tolerating the ones that exist.
  for (size_t pos = 1; pos <= path.size(); ++pos) {
    if (pos != path.size() && path[pos] != '/') continue;
    const std::string prefix = path.substr(0, pos);
    if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) {
      return Status::Unknown("mkdir(" + prefix +
                             "): " + std::strerror(errno));
    }
  }
  return Status::OK();
}

SessionJournal::SessionJournal(std::string session_dir, uint32_t session_id,
                               const DurabilityOptions* options,
                               const DurabilityMetrics* metrics)
    : session_dir_(std::move(session_dir)),
      session_id_(session_id),
      options_(options),
      metrics_(metrics),
      last_snapshot_seconds_(MonotonicSeconds()) {}

Status SessionJournal::OpenChangelog() {
  SAVG_ASSIGN_OR_RETURN(
      writer_, ChangelogWriter::Create(
                   session_dir_ + "/" + ChangelogFileName(epoch_),
                   session_id_, epoch_, seq_, options_->fsync, metrics_));
  return Status::OK();
}

Status SessionJournal::Append(const SessionCommand& command, bool resolved) {
  if (failed_) {
    return Status::FailedPrecondition(
        "session journal failed; awaiting snapshot re-anchor");
  }
  if (writer_ == nullptr) return Status::InvalidArgument("journal closed");
  const Status appended = writer_->Append(command, resolved);
  if (!appended.ok()) {
    // Fail-stop: the caller already applied the mutation this record
    // describes, so the changelog no longer replays to the live state.
    // Poison the journal — Session::Apply refuses further commands and
    // ShouldSnapshot() demands the re-anchoring snapshot — instead of
    // appending past a silent gap.
    failed_ = true;
    return appended;
  }
  ++seq_;
  ++commands_since_snapshot_;
  if (metrics_ != nullptr && metrics_->changelog_lag != nullptr) {
    // Worst-case replay length across sessions is what the health rule
    // watches; per-session gauges would need dynamic metric names.
    metrics_->changelog_lag->Set(
        static_cast<double>(commands_since_snapshot_));
  }
  return Status::OK();
}

bool SessionJournal::ShouldSnapshot() const {
  // A poisoned journal needs a snapshot to re-anchor: its state advanced
  // past what the changelog holds, regardless of the usual triggers.
  if (failed_) return true;
  if (commands_since_snapshot_ == 0) return false;
  if (options_->snapshot_every_commands > 0 &&
      commands_since_snapshot_ >=
          static_cast<uint64_t>(options_->snapshot_every_commands)) {
    return true;
  }
  if (options_->snapshot_interval_seconds > 0.0 &&
      MonotonicSeconds() - last_snapshot_seconds_ >=
          options_->snapshot_interval_seconds) {
    return true;
  }
  return false;
}

Status SessionJournal::TakeSnapshot(const Session& session) {
  const uint32_t next_epoch = epoch_ + 1;
  // Rotation order matters for crash safety: (1) write + rename the new
  // snapshot, (2) close the old changelog, (3) open the new one, (4) prune.
  // A crash between any two steps leaves the previous epoch's pair intact.
  SAVG_RETURN_NOT_OK(
      WriteSnapshotFile(session_dir_ + "/" + SnapshotFileName(next_epoch),
                        session_id_, next_epoch, seq_,
                        session.CaptureState()));
  if (writer_ != nullptr) {
    const Status closed = writer_->Close();
    if (!closed.ok()) {
      SAVG_LOG(Warning) << "durability: changelog close failed: "
                        << closed.message();
    }
    writer_.reset();
  }
  epoch_ = next_epoch;
  const Status opened = OpenChangelog();
  if (!opened.ok()) {
    // Snapshot next_epoch is durable but has no changelog to extend it.
    // Poison the journal so Append refuses instead of hitting a closed
    // writer forever, and ShouldSnapshot() keeps retrying the rotation.
    failed_ = true;
    SAVG_LOG(Error) << "durability: changelog rotation to epoch "
                    << next_epoch << " failed (" << opened.message()
                    << "); journal fail-stopped until a retry succeeds";
    return opened;
  }
  failed_ = false;
  commands_since_snapshot_ = 0;
  last_snapshot_seconds_ = MonotonicSeconds();
  if (metrics_ != nullptr) {
    if (metrics_->snapshots != nullptr) metrics_->snapshots->Increment();
    if (metrics_->changelog_lag != nullptr) metrics_->changelog_lag->Set(0.0);
  }
  PruneOldEpochs();
  return Status::OK();
}

void SessionJournal::PruneOldEpochs() {
  const int keep = options_->keep_epochs < 1 ? 1 : options_->keep_epochs;
  // Epochs <= epoch_ - keep are beyond the retention window. Walk down
  // until a missing pair (already pruned earlier).
  for (int64_t old = static_cast<int64_t>(epoch_) - keep; old >= 0; --old) {
    const std::string snapshot =
        session_dir_ + "/" + SnapshotFileName(static_cast<uint32_t>(old));
    const std::string changelog =
        session_dir_ + "/" + ChangelogFileName(static_cast<uint32_t>(old));
    const bool had_snapshot = ::unlink(snapshot.c_str()) == 0;
    const bool had_changelog = ::unlink(changelog.c_str()) == 0;
    if (!had_snapshot && !had_changelog) break;
  }
}

Status SessionJournal::Sync() {
  if (writer_ == nullptr) return Status::OK();
  return writer_->Sync();
}

Status SessionJournal::Flush(const Session& session) {
  // A poisoned journal flushes via snapshot unconditionally: its state
  // advanced past the changelog, so Sync() alone cannot make it durable.
  if (failed_ ||
      (options_->final_snapshot_on_shutdown && commands_since_snapshot_ > 0)) {
    return TakeSnapshot(session);
  }
  return Sync();
}

SessionStore::SessionStore(DurabilityOptions options,
                           MetricsRegistry* registry)
    : options_(std::move(options)),
      metrics_(DurabilityMetrics::FromRegistry(registry)) {}

std::string SessionStore::SessionDir(uint32_t session_id) const {
  return options_.data_dir + "/session-" + std::to_string(session_id);
}

Result<SessionJournal*> SessionStore::Attach(uint32_t session_id,
                                             const Session& session,
                                             uint32_t epoch,
                                             uint64_t applied_seq) {
  if (options_.data_dir.empty()) {
    return Status::InvalidArgument("durability data_dir not set");
  }
  const std::string dir = SessionDir(session_id);
  SAVG_RETURN_NOT_OK(EnsureDirectory(dir));
  if (epoch == 0 && applied_seq == 0 &&
      !options_.overwrite_existing_on_attach) {
    // A fresh attach writes snapshot-000000 and truncates changelog-000000;
    // doing that over a populated directory would destroy a previous run's
    // durable state. Recovery re-attaches at last_epoch + 1, so only the
    // fresh-session path can collide.
    SAVG_ASSIGN_OR_RETURN(EpochInventory inventory, ScanSessionDir(dir));
    if (!inventory.empty()) {
      return Status::FailedPrecondition(
          dir + " already holds durable state; recover it (RecoveryManager) "
          "or set DurabilityOptions::overwrite_existing_on_attach to "
          "discard it");
    }
  }
  auto journal = std::unique_ptr<SessionJournal>(
      new SessionJournal(dir, session_id, &options_, &metrics_));
  journal->epoch_ = epoch;
  journal->seq_ = applied_seq;
  // The attach snapshot anchors the epoch: recovery always finds a
  // snapshot matching the changelog it replays, even for epoch 0.
  SAVG_RETURN_NOT_OK(
      WriteSnapshotFile(dir + "/" + SnapshotFileName(epoch), session_id,
                        epoch, applied_seq, session.CaptureState()));
  SAVG_RETURN_NOT_OK(journal->OpenChangelog());
  journal->PruneOldEpochs();
  journals_.push_back(std::move(journal));
  return journals_.back().get();
}

}  // namespace savg
