#include "durability/recovery.h"

#include <sys/stat.h>

#include <algorithm>

#include "durability/snapshot.h"
#include "util/logging.h"

namespace savg {

namespace {

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

bool IsDirectory(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

}  // namespace

RecoveryManager::RecoveryManager(std::string data_dir,
                                 SessionOptions session_options,
                                 RecoveryOptions options,
                                 MetricsRegistry* registry)
    : data_dir_(std::move(data_dir)),
      session_options_(std::move(session_options)),
      options_(options),
      metrics_(DurabilityMetrics::FromRegistry(registry)) {}

bool RecoveryManager::HasSessions(const std::string& data_dir) {
  return IsDirectory(data_dir + "/session-0");
}

Result<RecoveredSession> RecoveryManager::RecoverSession(
    uint32_t session_id) {
  Timer timer;
  const std::string dir =
      data_dir_ + "/session-" + std::to_string(session_id);
  if (!IsDirectory(dir)) {
    return Status::NotFound("no session directory " + dir);
  }

  // Enumerate retained epochs via readdir: pruning deletes low epochs, so
  // after enough rotations the oldest retained epoch is arbitrarily high —
  // probing epoch numbers from 0 would never be safe.
  SAVG_ASSIGN_OR_RETURN(EpochInventory inventory, ScanSessionDir(dir));
  const std::vector<uint32_t>& epochs = inventory.snapshot_epochs;
  if (epochs.empty()) {
    return Status::NotFound("no snapshots in " + dir);
  }
  // Newest epoch on disk: the changelog being written at the crash may
  // belong to a snapshot epoch, or trail a final snapshot with no tail.
  uint32_t last_hit = epochs.back();
  if (!inventory.changelog_epochs.empty()) {
    last_hit = std::max(last_hit, inventory.changelog_epochs.back());
  }

  RecoveredSession recovered;
  recovered.session_id = session_id;
  recovered.last_epoch = last_hit;

  // Pick the starting snapshot: newest valid (warm path) or oldest
  // retained (cold-replay reference path).
  SnapshotData snapshot;
  bool have_snapshot = false;
  if (options_.cold_replay) {
    for (uint32_t epoch : epochs) {
      auto loaded = ReadSnapshotFile(dir + "/" + SnapshotFileName(epoch));
      if (loaded.ok()) {
        snapshot = std::move(*loaded);
        have_snapshot = true;
        break;
      }
      ++recovered.snapshot_fallbacks;
    }
  } else {
    for (auto it = epochs.rbegin(); it != epochs.rend(); ++it) {
      auto loaded = ReadSnapshotFile(dir + "/" + SnapshotFileName(*it));
      if (loaded.ok()) {
        snapshot = std::move(*loaded);
        have_snapshot = true;
        break;
      }
      SAVG_LOG(Warning) << "durability: snapshot epoch " << *it << " of "
                        << dir << " unusable (" << loaded.status().message()
                        << "); falling back";
      ++recovered.snapshot_fallbacks;
    }
  }
  if (!have_snapshot) {
    return Status::InvalidArgument("no valid snapshot in " + dir);
  }
  recovered.snapshot_epoch = snapshot.epoch;
  recovered.applied_seq = snapshot.applied_seq;

  auto session =
      Session::FromState(std::move(snapshot.state), session_options_);

  // Replay changelogs epoch >= snapshot epoch, in order, checking sequence
  // continuity across the rotation boundaries.
  uint64_t seq = recovered.applied_seq;
  for (uint32_t epoch = snapshot.epoch; epoch <= last_hit; ++epoch) {
    const std::string path = dir + "/" + ChangelogFileName(epoch);
    if (!FileExists(path)) {
      if (epoch == last_hit) break;  // final snapshot with no tail yet
      return Status::InvalidArgument("missing changelog epoch " +
                                     std::to_string(epoch) + " in " + dir);
    }
    SAVG_ASSIGN_OR_RETURN(ChangelogContents contents,
                          ReadChangelogFile(path));
    if (contents.torn_tail && epoch != last_hit) {
      // Only the changelog being written at the crash may tear.
      return Status::InvalidArgument(
          "changelog epoch " + std::to_string(epoch) + " in " + dir +
          " has a torn tail before the newest epoch (" +
          contents.tail_error + ")");
    }
    if (!contents.commands.empty() && contents.first_seq != seq) {
      return Status::InvalidArgument(
          "changelog epoch " + std::to_string(epoch) + " in " + dir +
          " starts at seq " + std::to_string(contents.first_seq) +
          ", expected " + std::to_string(seq));
    }
    for (const SessionCommand& command : contents.commands) {
      auto outcome = session->Apply(command);
      if (!outcome.ok()) {
        return Status::InvalidArgument(
            "replay of seq " + std::to_string(seq) + " in " + dir +
            " failed: " + outcome.status().message());
      }
      ++seq;
      ++recovered.replayed_commands;
    }
    if (contents.torn_tail) recovered.torn_tail = true;
  }

  recovered.applied_seq = seq;
  recovered.session = std::move(session);
  recovered.seconds = timer.ElapsedSeconds();
  if (metrics_.recoveries != nullptr) metrics_.recoveries->Increment();
  if (metrics_.recovery_latency != nullptr) {
    metrics_.recovery_latency->Observe(recovered.seconds);
  }
  return recovered;
}

Result<std::vector<RecoveredSession>> RecoveryManager::RecoverAll() {
  std::vector<RecoveredSession> sessions;
  for (uint32_t id = 0;; ++id) {
    if (!IsDirectory(data_dir_ + "/session-" + std::to_string(id))) break;
    SAVG_ASSIGN_OR_RETURN(RecoveredSession recovered, RecoverSession(id));
    sessions.push_back(std::move(recovered));
  }
  if (sessions.empty()) {
    return Status::NotFound("no session directories in " + data_dir_);
  }
  return sessions;
}

}  // namespace savg
