// Append-only per-session changelog (the durability write path).
//
// One changelog file holds the commands a Session applied after the
// snapshot that opened its epoch (the state-machine + changelog + snapshot
// pattern; the SVGB command codec from serve/session_command.h is reused
// per record, streamed instead of count-prefixed so a crash can land
// mid-record without corrupting anything before it). Layout:
//
//   header:  "SVGL" magic | u32 version | u32 session_id
//            | u32 epoch | u64 first_seq          (24 bytes, fsync'd once)
//   record:  u32 payload_len | u32 crc32(payload) | payload
//            where payload = EncodeCommand(cmd)   (repeated)
//
// `first_seq` is the session's applied-command sequence number of the
// first record, which equals the applied_seq of the snapshot that rotated
// this epoch in — recovery checks the continuity.
//
// Torn-tail tolerance (the crash contract): ReadChangelogFile() replays
// records until the first truncated length/CRC-failing/undecodable record
// and DISCARDS the tail from there — a kill -9 mid-append loses at most
// the records the fsync policy had not yet made durable, never the valid
// prefix. A torn tail is reported, not an error.
//
// Fsync policies trade durability lag against append latency:
//   kNever    — page cache only (fastest; loses up to everything unsynced)
//   kEveryN   — fsync every N appends (N=1 = every command)
//   kInterval — fsync when >= interval_ms elapsed since the last one
//               (checked at append time; no timer thread)
//   kOnResolve— fsync on each kResolve append (mutations between resolves
//               ride with the next resolve's sync; the serving default —
//               a lost un-resolved mutation was never visible in a served
//               configuration)

#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "metrics/registry.h"
#include "serve/session_command.h"
#include "util/status.h"

namespace savg {

struct FsyncPolicy {
  enum class Mode { kNever, kEveryN, kInterval, kOnResolve };
  Mode mode = Mode::kOnResolve;
  /// kEveryN: appends between fsyncs (1 = every command).
  int every_n = 1;
  /// kInterval: maximum un-synced age in milliseconds.
  double interval_ms = 50.0;
};

/// Parses "never" | "command" | "every:N" | "interval:MS" | "resolve".
Result<FsyncPolicy> ParseFsyncPolicy(const std::string& text);
/// The inverse of ParseFsyncPolicy (flag echo / logs).
std::string FsyncPolicyToString(const FsyncPolicy& policy);

/// Cached metric handles for the durability layer (registry lookups take a
/// mutex; appends ride the serving hot path). All pointers may be null
/// (metrics disabled).
struct DurabilityMetrics {
  Counter* appends = nullptr;
  Counter* fsyncs = nullptr;
  Counter* snapshots = nullptr;
  Counter* recoveries = nullptr;
  Histogram* fsync_latency = nullptr;
  Histogram* recovery_latency = nullptr;
  /// Commands applied since the owning session's last snapshot; the
  /// changelog-lag health rule watches its windowed max.
  Gauge* changelog_lag = nullptr;

  static DurabilityMetrics FromRegistry(MetricsRegistry* registry);
};

class ChangelogWriter {
 public:
  /// Creates (truncates) `path`, writes + fsyncs the header.
  static Result<std::unique_ptr<ChangelogWriter>> Create(
      const std::string& path, uint32_t session_id, uint32_t epoch,
      uint64_t first_seq, FsyncPolicy policy,
      const DurabilityMetrics* metrics = nullptr);
  ~ChangelogWriter();

  ChangelogWriter(const ChangelogWriter&) = delete;
  ChangelogWriter& operator=(const ChangelogWriter&) = delete;

  /// Appends one record; fsyncs per the policy (`resolved` marks kResolve
  /// appends for kOnResolve).
  Status Append(const SessionCommand& command, bool resolved);
  /// Forces an fsync of everything appended so far.
  Status Sync();
  /// Sync + close (idempotent; also run by the destructor, which swallows
  /// the status — call Close() where the result matters).
  Status Close();

  const std::string& path() const { return path_; }
  uint64_t appended() const { return appended_; }

 private:
  ChangelogWriter(std::string path, int fd, FsyncPolicy policy,
                  const DurabilityMetrics* metrics);

  std::string path_;
  int fd_ = -1;
  FsyncPolicy policy_;
  const DurabilityMetrics* metrics_ = nullptr;
  uint64_t appended_ = 0;
  int unsynced_ = 0;
  /// Monotonic time of the last fsync (kInterval), in seconds.
  double last_sync_seconds_ = 0.0;
};

/// Everything one changelog file yields at recovery.
struct ChangelogContents {
  uint32_t version = 0;
  uint32_t session_id = 0;
  uint32_t epoch = 0;
  uint64_t first_seq = 0;
  CommandLog commands;
  /// True when a truncated/CRC-failing tail was discarded (crash artifact,
  /// not an error); `tail_error` says why, `valid_bytes` where.
  bool torn_tail = false;
  std::string tail_error;
  uint64_t valid_bytes = 0;
};

/// Reads a changelog, stopping at the first invalid record (see the torn
/// tail contract above). A file truncated inside the HEADER (possible only
/// for a crash between file creation and the header fsync) yields empty
/// contents with torn_tail set; a wrong magic is an error.
Result<ChangelogContents> ReadChangelogFile(const std::string& path);

}  // namespace savg
