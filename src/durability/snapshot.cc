#include "durability/snapshot.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "util/crc32.h"

namespace savg {

namespace {

constexpr char kSnapshotMagic[4] = {'S', 'V', 'G', 'S'};
constexpr uint32_t kSnapshotVersion = 1;
constexpr uint32_t kStateVersion = 1;
/// magic + version + session_id + epoch + applied_seq + payload_len
/// + payload_crc + header_crc.
constexpr size_t kSnapshotHeaderBytes = 4 + 4 + 4 + 4 + 8 + 8 + 4 + 4;

void AppendU32(uint32_t v, std::string* out) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void AppendU64(uint64_t v, std::string* out) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

uint32_t FloatBits(float f) {
  uint32_t bits = 0;
  std::memcpy(&bits, &f, sizeof(bits));
  return bits;
}

float FloatFromBits(uint32_t bits) {
  float f = 0.0f;
  std::memcpy(&f, &bits, sizeof(f));
  return f;
}

uint64_t DoubleBits(double d) {
  uint64_t bits = 0;
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

double DoubleFromBits(uint64_t bits) {
  double d = 0.0;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

/// Bounds-checked little-endian cursor over an encoded payload.
class Reader {
 public:
  Reader(const char* data, size_t size) : data_(data), size_(size) {}

  bool ReadU8(uint8_t* out) {
    if (size_ - pos_ < 1) return Fail();
    *out = static_cast<uint8_t>(data_[pos_++]);
    return true;
  }

  bool ReadU32(uint32_t* out) {
    if (size_ - pos_ < 4) return Fail();
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    *out = v;
    return true;
  }

  bool ReadU64(uint64_t* out) {
    if (size_ - pos_ < 8) return Fail();
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    *out = v;
    return true;
  }

  bool ReadBytes(char* out, size_t count) {
    if (size_ - pos_ < count) return Fail();
    std::memcpy(out, data_ + pos_, count);
    pos_ += count;
    return true;
  }

  /// A u32 count with a remaining-bytes plausibility bound: each counted
  /// element occupies at least `min_bytes_each`, so a corrupt huge count
  /// fails here instead of in a giant allocation.
  bool ReadCount(uint32_t* out, size_t min_bytes_each) {
    if (!ReadU32(out)) return false;
    if (min_bytes_each > 0 &&
        static_cast<uint64_t>(*out) >
            static_cast<uint64_t>(size_ - pos_) / min_bytes_each) {
      return Fail();
    }
    return true;
  }

  bool failed() const { return failed_; }
  size_t remaining() const { return size_ - pos_; }

 private:
  bool Fail() {
    failed_ = true;
    return false;
  }

  const char* data_;
  size_t size_;
  size_t pos_ = 0;
  bool failed_ = false;
};

void EncodeItemValues(const std::vector<ItemValue>& entries,
                      std::string* out) {
  AppendU32(static_cast<uint32_t>(entries.size()), out);
  for (const ItemValue& e : entries) {
    AppendU32(static_cast<uint32_t>(e.item), out);
    AppendU32(FloatBits(e.value), out);
  }
}

bool DecodeItemValues(Reader* in, std::vector<ItemValue>* out) {
  uint32_t count = 0;
  if (!in->ReadCount(&count, 8)) return false;
  out->resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t item = 0, bits = 0;
    if (!in->ReadU32(&item) || !in->ReadU32(&bits)) return false;
    (*out)[i].item = static_cast<ItemId>(item);
    (*out)[i].value = FloatFromBits(bits);
  }
  return true;
}

void EncodeFloats(const std::vector<float>& values, std::string* out) {
  AppendU32(static_cast<uint32_t>(values.size()), out);
  for (float f : values) AppendU32(FloatBits(f), out);
}

bool DecodeFloats(Reader* in, std::vector<float>* out) {
  uint32_t count = 0;
  if (!in->ReadCount(&count, 4)) return false;
  out->resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t bits = 0;
    if (!in->ReadU32(&bits)) return false;
    (*out)[i] = FloatFromBits(bits);
  }
  return true;
}

void EncodeBasisSide(const std::vector<VarBasisStatus>& side,
                     std::string* out) {
  AppendU32(static_cast<uint32_t>(side.size()), out);
  for (VarBasisStatus s : side) {
    out->push_back(static_cast<char>(static_cast<uint8_t>(s)));
  }
}

bool DecodeBasisSide(Reader* in, std::vector<VarBasisStatus>* out) {
  uint32_t count = 0;
  if (!in->ReadCount(&count, 1)) return false;
  out->resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint8_t v = 0;
    if (!in->ReadU8(&v)) return false;
    if (v > static_cast<uint8_t>(VarBasisStatus::kBasic)) return false;
    (*out)[i] = static_cast<VarBasisStatus>(v);
  }
  return true;
}

std::string DirnameOf(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

Status SyncDirectory(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Status::Unknown("open(" + dir + "): " + std::strerror(errno));
  }
  Status result = Status::OK();
  if (::fsync(fd) != 0) {
    result = Status::Unknown("fsync(" + dir + "): " + std::strerror(errno));
  }
  ::close(fd);
  return result;
}

}  // namespace

void EncodeSessionState(const SessionState& state, std::string* out) {
  AppendU32(kStateVersion, out);

  // --- instance -----------------------------------------------------------
  const SvgicInstance& inst = state.instance;
  const SocialGraph& graph = inst.graph();
  const int n = inst.num_users();
  const int m = inst.num_items();
  AppendU32(static_cast<uint32_t>(n), out);
  AppendU32(static_cast<uint32_t>(m), out);
  AppendU32(static_cast<uint32_t>(inst.num_slots()), out);
  AppendU64(DoubleBits(inst.lambda()), out);
  AppendU32(static_cast<uint32_t>(graph.num_edges()), out);
  for (const Edge& e : graph.edges()) {
    AppendU32(static_cast<uint32_t>(e.u), out);
    AppendU32(static_cast<uint32_t>(e.v), out);
  }
  for (UserId u = 0; u < n; ++u) {
    for (ItemId c = 0; c < m; ++c) {
      // p() widens the stored float; the narrowing cast recovers it exactly.
      AppendU32(FloatBits(static_cast<float>(inst.p(u, c))), out);
    }
  }
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    EncodeItemValues(inst.TauEntries(e), out);
  }
  EncodeFloats(inst.commodity_values(), out);
  EncodeFloats(inst.slot_weights(), out);
  AppendU32(static_cast<uint32_t>(inst.finalized_edge_count()), out);
  AppendU32(static_cast<uint32_t>(inst.pairs().size()), out);
  for (const FriendPair& pair : inst.pairs()) {
    AppendU32(static_cast<uint32_t>(pair.u), out);
    AppendU32(static_cast<uint32_t>(pair.v), out);
    AppendU32(static_cast<uint32_t>(pair.uv), out);
    AppendU32(static_cast<uint32_t>(pair.vu), out);
    EncodeItemValues(pair.weights, out);
  }

  // --- served configuration ----------------------------------------------
  const Configuration& config = state.config;
  AppendU32(static_cast<uint32_t>(config.num_users()), out);
  AppendU32(static_cast<uint32_t>(config.num_slots()), out);
  AppendU32(static_cast<uint32_t>(config.num_items()), out);
  for (UserId u = 0; u < config.num_users(); ++u) {
    for (SlotId s = 0; s < config.num_slots(); ++s) {
      AppendU32(static_cast<uint32_t>(config.At(u, s)), out);
    }
  }

  // --- cached basis + keys ------------------------------------------------
  EncodeBasisSide(state.basis.structural, out);
  EncodeBasisSide(state.basis.logical, out);
  AppendU32(static_cast<uint32_t>(state.keys.cols.size()), out);
  for (uint64_t key : state.keys.cols) AppendU64(key, out);
  AppendU32(static_cast<uint32_t>(state.keys.rows.size()), out);
  for (uint64_t key : state.keys.rows) AppendU64(key, out);
  out->push_back(state.valid_basis ? 1 : 0);
  AppendU32(static_cast<uint32_t>(state.num_resolves), out);

  // --- rounding RNG -------------------------------------------------------
  for (int i = 0; i < 4; ++i) AppendU64(state.rng.s[i], out);
  out->push_back(state.rng.has_cached_normal ? 1 : 0);
  AppendU64(DoubleBits(state.rng.cached_normal), out);

  // --- dirty flags --------------------------------------------------------
  AppendU32(static_cast<uint32_t>(state.dirty.size()), out);
  out->append(state.dirty.data(), state.dirty.size());
  out->push_back(state.all_dirty ? 1 : 0);
}

Result<SessionState> DecodeSessionState(const char* data, size_t size) {
  Reader in(data, size);
  const auto corrupt = [](const char* what) {
    return Status::InvalidArgument(std::string("corrupt session state: ") +
                                   what);
  };

  uint32_t version = 0;
  if (!in.ReadU32(&version)) return corrupt("missing version");
  if (version != kStateVersion) {
    return Status::InvalidArgument("unsupported session state version " +
                                   std::to_string(version));
  }

  // --- instance -----------------------------------------------------------
  uint32_t n = 0, m = 0, k = 0, num_edges = 0;
  uint64_t lambda_bits = 0;
  if (!in.ReadU32(&n) || !in.ReadU32(&m) || !in.ReadU32(&k) ||
      !in.ReadU64(&lambda_bits) || !in.ReadCount(&num_edges, 8)) {
    return corrupt("instance dims");
  }
  SocialGraph graph(static_cast<int>(n));
  for (uint32_t e = 0; e < num_edges; ++e) {
    uint32_t u = 0, v = 0;
    if (!in.ReadU32(&u) || !in.ReadU32(&v)) return corrupt("edge list");
    auto id = graph.AddEdge(static_cast<UserId>(u), static_cast<UserId>(v));
    // Dense insertion order is the edge-id contract tau_[] depends on.
    if (!id.ok() || *id != static_cast<EdgeId>(e)) return corrupt("edge ids");
  }
  SvgicInstance instance(std::move(graph), static_cast<int>(m),
                         static_cast<int>(k), DoubleFromBits(lambda_bits));
  if (static_cast<uint64_t>(n) * m * 4 > in.remaining()) {
    return corrupt("preference matrix");
  }
  for (uint32_t u = 0; u < n; ++u) {
    for (uint32_t c = 0; c < m; ++c) {
      uint32_t bits = 0;
      if (!in.ReadU32(&bits)) return corrupt("preference matrix");
      instance.set_p(static_cast<UserId>(u), static_cast<ItemId>(c),
                     FloatFromBits(bits));
    }
  }
  for (uint32_t e = 0; e < num_edges; ++e) {
    std::vector<ItemValue> entries;
    if (!DecodeItemValues(&in, &entries)) return corrupt("tau entries");
    for (const ItemValue& entry : entries) {
      // Entries arrive sorted, so the sorted-insert path appends.
      instance.SetTauValue(static_cast<EdgeId>(e), entry.item, entry.value);
    }
  }
  std::vector<float> commodity, slots;
  if (!DecodeFloats(&in, &commodity) || !DecodeFloats(&in, &slots)) {
    return corrupt("commodity/slot weights");
  }
  if (!commodity.empty()) instance.set_commodity_values(std::move(commodity));
  if (!slots.empty()) instance.set_slot_weights(std::move(slots));
  uint32_t finalized_edges = 0, num_pairs = 0;
  if (!in.ReadU32(&finalized_edges) || !in.ReadCount(&num_pairs, 20)) {
    return corrupt("pair header");
  }
  if (finalized_edges > num_edges) return corrupt("finalized edge count");
  std::vector<FriendPair> pairs(num_pairs);
  for (uint32_t i = 0; i < num_pairs; ++i) {
    uint32_t u = 0, v = 0, uv = 0, vu = 0;
    if (!in.ReadU32(&u) || !in.ReadU32(&v) || !in.ReadU32(&uv) ||
        !in.ReadU32(&vu) || !DecodeItemValues(&in, &pairs[i].weights)) {
      return corrupt("pair list");
    }
    pairs[i].u = static_cast<UserId>(u);
    pairs[i].v = static_cast<UserId>(v);
    pairs[i].uv = static_cast<EdgeId>(uv);
    pairs[i].vu = static_cast<EdgeId>(vu);
  }
  instance.RestoreFinalizedPairs(std::move(pairs),
                                 static_cast<int>(finalized_edges));

  SessionState state;
  state.instance = std::move(instance);

  // --- served configuration ----------------------------------------------
  uint32_t cu = 0, cs = 0, ci = 0;
  if (!in.ReadU32(&cu) || !in.ReadU32(&cs) || !in.ReadU32(&ci)) {
    return corrupt("config dims");
  }
  if (static_cast<uint64_t>(cu) * cs * 4 > in.remaining()) {
    return corrupt("config assignments");
  }
  if (cu > 0) {
    Configuration config(static_cast<int>(cu), static_cast<int>(cs),
                         static_cast<int>(ci));
    for (uint32_t u = 0; u < cu; ++u) {
      for (uint32_t s = 0; s < cs; ++s) {
        uint32_t raw = 0;
        if (!in.ReadU32(&raw)) return corrupt("config assignments");
        const ItemId c = static_cast<ItemId>(raw);
        if (c == kNoItem) continue;
        SAVG_RETURN_NOT_OK(
            config.Set(static_cast<UserId>(u), static_cast<SlotId>(s), c));
      }
    }
    state.config = std::move(config);
  }

  // --- cached basis + keys ------------------------------------------------
  if (!DecodeBasisSide(&in, &state.basis.structural) ||
      !DecodeBasisSide(&in, &state.basis.logical)) {
    return corrupt("basis");
  }
  uint32_t num_cols = 0, num_rows = 0;
  if (!in.ReadCount(&num_cols, 8)) return corrupt("column keys");
  state.keys.cols.resize(num_cols);
  for (uint32_t i = 0; i < num_cols; ++i) {
    if (!in.ReadU64(&state.keys.cols[i])) return corrupt("column keys");
  }
  if (!in.ReadCount(&num_rows, 8)) return corrupt("row keys");
  state.keys.rows.resize(num_rows);
  for (uint32_t i = 0; i < num_rows; ++i) {
    if (!in.ReadU64(&state.keys.rows[i])) return corrupt("row keys");
  }
  uint8_t valid_basis = 0;
  uint32_t num_resolves = 0;
  if (!in.ReadU8(&valid_basis) || !in.ReadU32(&num_resolves)) {
    return corrupt("resolve counter");
  }
  state.valid_basis = valid_basis != 0;
  state.num_resolves = static_cast<int>(num_resolves);

  // --- rounding RNG -------------------------------------------------------
  for (int i = 0; i < 4; ++i) {
    if (!in.ReadU64(&state.rng.s[i])) return corrupt("rng");
  }
  uint8_t has_normal = 0;
  uint64_t normal_bits = 0;
  if (!in.ReadU8(&has_normal) || !in.ReadU64(&normal_bits)) {
    return corrupt("rng");
  }
  state.rng.has_cached_normal = has_normal != 0;
  state.rng.cached_normal = DoubleFromBits(normal_bits);

  // --- dirty flags --------------------------------------------------------
  uint32_t dirty_size = 0;
  if (!in.ReadCount(&dirty_size, 1)) return corrupt("dirty flags");
  state.dirty.resize(dirty_size);
  if (dirty_size > 0 && !in.ReadBytes(state.dirty.data(), dirty_size)) {
    return corrupt("dirty flags");
  }
  uint8_t all_dirty = 0;
  if (!in.ReadU8(&all_dirty)) return corrupt("dirty flags");
  state.all_dirty = all_dirty != 0;

  if (in.remaining() != 0) return corrupt("trailing bytes");
  return state;
}

uint64_t SessionStateDigest(const SessionState& state) {
  std::string encoded;
  EncodeSessionState(state, &encoded);
  uint64_t hash = 1469598103934665603ull;  // FNV-1a 64 offset basis
  for (char c : encoded) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;  // FNV-1a 64 prime
  }
  return hash;
}

Status WriteSnapshotFile(const std::string& path, uint32_t session_id,
                         uint32_t epoch, uint64_t applied_seq,
                         const SessionState& state) {
  std::string payload;
  EncodeSessionState(state, &payload);

  std::string file;
  file.reserve(kSnapshotHeaderBytes + payload.size());
  file.append(kSnapshotMagic, sizeof(kSnapshotMagic));
  AppendU32(kSnapshotVersion, &file);
  AppendU32(session_id, &file);
  AppendU32(epoch, &file);
  AppendU64(applied_seq, &file);
  AppendU64(payload.size(), &file);
  AppendU32(Crc32(payload.data(), payload.size()), &file);
  AppendU32(Crc32(file.data(), file.size()), &file);  // header CRC
  file += payload;

  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::Unknown("open(" + tmp + "): " + std::strerror(errno));
  }
  size_t written = 0;
  while (written < file.size()) {
    const ssize_t r = ::write(fd, file.data() + written,
                              file.size() - written);
    if (r < 0) {
      if (errno == EINTR) continue;
      const Status status =
          Status::Unknown("write(" + tmp + "): " + std::strerror(errno));
      ::close(fd);
      ::unlink(tmp.c_str());
      return status;
    }
    written += static_cast<size_t>(r);
  }
  if (::fsync(fd) != 0) {
    const Status status =
        Status::Unknown("fsync(" + tmp + "): " + std::strerror(errno));
    ::close(fd);
    ::unlink(tmp.c_str());
    return status;
  }
  ::close(fd);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const Status status = Status::Unknown("rename(" + tmp + " -> " + path +
                                          "): " + std::strerror(errno));
    ::unlink(tmp.c_str());
    return status;
  }
  // The rename itself must be durable, or a crash could resurrect the old
  // directory entry while the changelog has already rotated past it.
  return SyncDirectory(DirnameOf(path));
}

Result<SnapshotData> ReadSnapshotFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open snapshot " + path);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (data.size() < kSnapshotHeaderBytes) {
    return Status::InvalidArgument(path + ": truncated snapshot header");
  }
  if (std::memcmp(data.data(), kSnapshotMagic, sizeof(kSnapshotMagic)) != 0) {
    return Status::InvalidArgument(path + " is not an SVGS snapshot");
  }
  Reader header(data.data() + 4, kSnapshotHeaderBytes - 4);
  SnapshotData snapshot;
  uint64_t payload_len = 0;
  uint32_t payload_crc = 0, header_crc = 0;
  header.ReadU32(&snapshot.version);
  header.ReadU32(&snapshot.session_id);
  header.ReadU32(&snapshot.epoch);
  header.ReadU64(&snapshot.applied_seq);
  header.ReadU64(&payload_len);
  header.ReadU32(&payload_crc);
  header.ReadU32(&header_crc);
  if (Crc32(data.data(), kSnapshotHeaderBytes - 4) != header_crc) {
    return Status::InvalidArgument(path + ": snapshot header CRC mismatch");
  }
  if (snapshot.version != kSnapshotVersion) {
    return Status::InvalidArgument(path + ": unsupported snapshot version " +
                                   std::to_string(snapshot.version));
  }
  if (data.size() - kSnapshotHeaderBytes != payload_len) {
    return Status::InvalidArgument(path + ": snapshot payload truncated");
  }
  const char* payload = data.data() + kSnapshotHeaderBytes;
  if (Crc32(payload, payload_len) != payload_crc) {
    return Status::InvalidArgument(path + ": snapshot payload CRC mismatch");
  }
  SAVG_ASSIGN_OR_RETURN(snapshot.state,
                        DecodeSessionState(payload, payload_len));
  return snapshot;
}

}  // namespace savg
