// Per-session durability state: the journal a live Session appends to and
// the store that lays sessions out on disk.
//
// On-disk layout under DurabilityOptions::data_dir:
//
//   <data_dir>/session-<id>/snapshot-<epoch>    (durability/snapshot.h)
//   <data_dir>/session-<id>/changelog-<epoch>   (durability/changelog.h)
//
// Epoch E's changelog holds the commands applied AFTER snapshot E; taking
// snapshot E+1 rotates a fresh changelog in and prunes epochs older than
// DurabilityOptions::keep_epochs (keeping more than one means a corrupt
// newest snapshot can still recover from the previous epoch at the cost of
// a longer replay).
//
// The SessionJournal is the CommandJournal a Session's Apply() feeds; the
// SessionManager checks ShouldSnapshot() after each drained command (while
// its drain task owns the session) and calls TakeSnapshot() in-band — no
// separate snapshot thread, and an idle session is never re-snapshotted
// (no new commands means no new state).

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "durability/changelog.h"
#include "online/session.h"

namespace savg {

struct DurabilityOptions {
  /// Root directory for session-<id>/ subdirectories. Empty disables
  /// durability entirely (no journals are attached).
  std::string data_dir;
  FsyncPolicy fsync;
  /// Snapshot when this much wall time passed since the last one AND at
  /// least one command was applied in between. <= 0 disables the timer.
  double snapshot_interval_seconds = 30.0;
  /// Snapshot after this many commands regardless of the timer. <= 0
  /// disables the count trigger.
  int snapshot_every_commands = 1024;
  /// Snapshot/changelog epochs retained after a rotation (>= 1).
  int keep_epochs = 2;
  /// Graceful shutdown takes a final snapshot per session, making the next
  /// startup's replay empty. Benchmarks disable it to measure replay cost.
  bool final_snapshot_on_shutdown = true;
  /// Attach() of a FRESH session (epoch 0, applied_seq 0) refuses when the
  /// session directory already holds snapshot/changelog files — that state
  /// belongs to a previous run and must be recovered (or deliberately
  /// discarded by setting this flag) rather than silently truncated.
  bool overwrite_existing_on_attach = false;
};

/// The durability sink of one live Session. Owned by the SessionStore;
/// Append() runs on the session's drain task, so no locking is needed —
/// the same serialization that protects the Session protects its journal.
class SessionJournal : public CommandJournal {
 public:
  /// CommandJournal: append to the current epoch's changelog. The first
  /// failure poisons the journal (healthy() turns false): the command that
  /// failed mutated in-memory state the changelog now lacks, so continuing
  /// to append would leave a silent replay gap. Session::Apply refuses
  /// further commands until TakeSnapshot() re-anchors a clean epoch.
  Status Append(const SessionCommand& command, bool resolved) override;

  /// CommandJournal: false after an append or rotation failure, until a
  /// successful TakeSnapshot() re-anchors durability.
  bool healthy() const override { return !failed_; }

  /// True when the count or time trigger says the next snapshot is due —
  /// or when the journal is poisoned and needs a re-anchoring snapshot.
  bool ShouldSnapshot() const;

  /// Writes snapshot epoch+1 from `session`'s current state, rotates a
  /// fresh changelog in and prunes old epochs. The caller must own the
  /// session (drain task) — CaptureState() is only valid at a command
  /// boundary.
  Status TakeSnapshot(const Session& session);

  /// Fsyncs the current changelog (shutdown flush).
  Status Sync();

  /// Graceful-shutdown flush: a final snapshot when the policy asks for
  /// one and commands were applied since the last (making the next
  /// startup's replay empty), otherwise just an fsync.
  Status Flush(const Session& session);

  uint32_t session_id() const { return session_id_; }
  uint32_t epoch() const { return epoch_; }
  /// Commands applied in the session's lifetime (snapshot applied_seq).
  uint64_t seq() const { return seq_; }

 private:
  friend class SessionStore;
  SessionJournal(std::string session_dir, uint32_t session_id,
                 const DurabilityOptions* options,
                 const DurabilityMetrics* metrics);

  Status OpenChangelog();
  void PruneOldEpochs();

  std::string session_dir_;
  uint32_t session_id_ = 0;
  const DurabilityOptions* options_ = nullptr;
  const DurabilityMetrics* metrics_ = nullptr;
  std::unique_ptr<ChangelogWriter> writer_;
  uint32_t epoch_ = 0;
  uint64_t seq_ = 0;
  uint64_t commands_since_snapshot_ = 0;
  double last_snapshot_seconds_ = 0.0;
  /// Set on append/rotation failure; cleared by a successful TakeSnapshot.
  bool failed_ = false;
};

/// Owns the journals of every durable session in one data_dir.
class SessionStore {
 public:
  explicit SessionStore(DurabilityOptions options,
                        MetricsRegistry* registry = nullptr);

  /// Creates <data_dir>/session-<id>/, writes snapshot `epoch` from the
  /// session's current state and opens changelog `epoch`. For a fresh
  /// session epoch/applied_seq are 0; recovery re-attaches at
  /// last_epoch + 1 so replayed history is never appended twice. A fresh
  /// attach over a directory that already holds snapshot/changelog files
  /// is refused unless overwrite_existing_on_attach is set. Returns a
  /// journal owned by the store (stable pointer; attach it with
  /// Session::set_journal).
  Result<SessionJournal*> Attach(uint32_t session_id, const Session& session,
                                 uint32_t epoch = 0, uint64_t applied_seq = 0);

  const DurabilityOptions& options() const { return options_; }
  const DurabilityMetrics& metrics() const { return metrics_; }

  /// <data_dir>/session-<id>.
  std::string SessionDir(uint32_t session_id) const;

 private:
  DurabilityOptions options_;
  DurabilityMetrics metrics_;
  std::vector<std::unique_ptr<SessionJournal>> journals_;
};

/// snapshot-%06u / changelog-%06u names (shared with RecoveryManager).
std::string SnapshotFileName(uint32_t epoch);
std::string ChangelogFileName(uint32_t epoch);

/// The epoch files one session directory holds, enumerated via readdir so
/// arbitrarily high epoch numbers (long-lived sessions whose low epochs
/// were pruned) are found without probing. Both lists are ascending.
struct EpochInventory {
  std::vector<uint32_t> snapshot_epochs;
  std::vector<uint32_t> changelog_epochs;
  bool empty() const {
    return snapshot_epochs.empty() && changelog_epochs.empty();
  }
};
Result<EpochInventory> ScanSessionDir(const std::string& dir);

/// mkdir -p. OK when the directory already exists.
Status EnsureDirectory(const std::string& path);

}  // namespace savg
