// Crash recovery: rebuild every session in a data_dir to its exact
// pre-crash state.
//
// Per session directory the recovery manager:
//   1. picks the newest snapshot whose header + payload CRCs validate —
//      a corrupt/truncated newest snapshot (crash mid-rotation, disk
//      damage) falls back to the previous retained epoch, paying a longer
//      changelog replay instead of failing startup,
//   2. reconstructs the Session via Session::FromState — the snapshotted
//      basis warm-starts the first post-recovery resolve, so recovery
//      never pays a cold solve,
//   3. replays the changelogs of every epoch >= the snapshot's, in order,
//      through Session::Apply with no journal attached (replay must not
//      re-journal). Epoch continuity is checked: changelog E+1's first_seq
//      must equal the sequence reached at the end of E. A torn tail is
//      tolerated only on the NEWEST epoch (the one being written when the
//      crash hit); anywhere else it is corruption.
//
// Determinism contract: a Session is a deterministic state machine over
// its applied-command sequence (the rounding RNG and resolve counter are
// snapshotted; failed commands are never journaled), so replaying the tail
// reproduces the pre-crash state bit-for-bit on the monolithic path. A
// sharded session's coordinator is rebuilt on its first post-recovery
// resolve, which re-partitions — equivalent serving state, not bit-exact.
// SessionOptions must match across the restart (options are configuration,
// not state).

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "durability/session_store.h"
#include "online/session.h"

namespace savg {

/// One recovered session plus the telemetry the CI crash-recovery job
/// asserts on.
struct RecoveredSession {
  uint32_t session_id = 0;
  std::unique_ptr<Session> session;
  /// Commands applied in the session's lifetime (snapshot + replay).
  uint64_t applied_seq = 0;
  /// Epoch of the snapshot recovery started from.
  uint32_t snapshot_epoch = 0;
  /// Newest epoch seen on disk (re-attach continues at last_epoch + 1).
  uint32_t last_epoch = 0;
  uint64_t replayed_commands = 0;
  /// Newest-epoch snapshots skipped for CRC/decode failures.
  int snapshot_fallbacks = 0;
  /// True when the newest changelog had a discarded torn tail.
  bool torn_tail = false;
  double seconds = 0.0;
};

struct RecoveryOptions {
  /// Ignore every snapshot except the OLDEST retained epoch's, maximizing
  /// the replay. The cold-replay reference path: `svgic_cli recover
  /// --cold` diffs its state digest against the warm path's to prove the
  /// snapshot fast-path loses nothing.
  bool cold_replay = false;
};

class RecoveryManager {
 public:
  /// `registry` feeds durability.recoveries / recovery_latency (optional).
  explicit RecoveryManager(std::string data_dir,
                           SessionOptions session_options,
                           RecoveryOptions options = {},
                           MetricsRegistry* registry = nullptr);

  /// True when `data_dir` holds at least one session-<id> directory
  /// (serverd: recover instead of creating fresh sessions).
  static bool HasSessions(const std::string& data_dir);

  /// Recovers session-0 .. session-(K-1); session ids must be dense (the
  /// SessionManager allocates them densely). Fails on corruption no
  /// retained epoch can get past — never on a torn tail.
  Result<std::vector<RecoveredSession>> RecoverAll();

  /// Recovers one session directory.
  Result<RecoveredSession> RecoverSession(uint32_t session_id);

 private:
  std::string data_dir_;
  SessionOptions session_options_;
  RecoveryOptions options_;
  DurabilityMetrics metrics_;
};

}  // namespace savg
