#include "durability/changelog.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "util/crc32.h"

namespace savg {

namespace {

constexpr char kChangelogMagic[4] = {'S', 'V', 'G', 'L'};
constexpr uint32_t kChangelogVersion = 1;
constexpr size_t kHeaderBytes = 4 + 4 + 4 + 4 + 8;
/// A single encoded command is ~25 bytes; anything near this is a corrupt
/// length field, not a record.
constexpr uint32_t kMaxRecordBytes = 1 << 20;

void AppendU32(uint32_t v, std::string* out) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void AppendU64(uint64_t v, std::string* out) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

uint32_t ReadU32(const char* data) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(data[i]))
         << (8 * i);
  }
  return v;
}

uint64_t ReadU64(const char* data) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(data[i]))
         << (8 * i);
  }
  return v;
}

Status WriteAll(int fd, const char* data, size_t size,
                const std::string& path) {
  size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Unknown("write(" + path +
                             "): " + std::strerror(errno));
    }
    written += static_cast<size_t>(n);
  }
  return Status::OK();
}

double MonotonicSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Result<FsyncPolicy> ParseFsyncPolicy(const std::string& text) {
  FsyncPolicy policy;
  if (text == "never") {
    policy.mode = FsyncPolicy::Mode::kNever;
  } else if (text == "command") {
    policy.mode = FsyncPolicy::Mode::kEveryN;
    policy.every_n = 1;
  } else if (text == "resolve") {
    policy.mode = FsyncPolicy::Mode::kOnResolve;
  } else if (text.rfind("every:", 0) == 0) {
    const long n = std::atol(text.c_str() + 6);
    if (n <= 0) {
      return Status::InvalidArgument("fsync policy 'every:N' needs N > 0");
    }
    policy.mode = FsyncPolicy::Mode::kEveryN;
    policy.every_n = static_cast<int>(n);
  } else if (text.rfind("interval:", 0) == 0) {
    const double ms = std::atof(text.c_str() + 9);
    if (ms <= 0.0) {
      return Status::InvalidArgument(
          "fsync policy 'interval:MS' needs MS > 0");
    }
    policy.mode = FsyncPolicy::Mode::kInterval;
    policy.interval_ms = ms;
  } else {
    return Status::InvalidArgument(
        "unknown fsync policy '" + text +
        "' (try never | command | every:N | interval:MS | resolve)");
  }
  return policy;
}

std::string FsyncPolicyToString(const FsyncPolicy& policy) {
  std::ostringstream out;
  switch (policy.mode) {
    case FsyncPolicy::Mode::kNever:
      return "never";
    case FsyncPolicy::Mode::kEveryN:
      if (policy.every_n == 1) return "command";
      out << "every:" << policy.every_n;
      return out.str();
    case FsyncPolicy::Mode::kInterval:
      out << "interval:" << policy.interval_ms;
      return out.str();
    case FsyncPolicy::Mode::kOnResolve:
      return "resolve";
  }
  return "?";
}

DurabilityMetrics DurabilityMetrics::FromRegistry(MetricsRegistry* registry) {
  DurabilityMetrics metrics;
  if (registry == nullptr) return metrics;
  metrics.appends = registry->GetCounter("durability.appends");
  metrics.fsyncs = registry->GetCounter("durability.fsyncs");
  metrics.snapshots = registry->GetCounter("durability.snapshots");
  metrics.recoveries = registry->GetCounter("durability.recoveries");
  metrics.fsync_latency = registry->GetHistogram("durability.fsync_latency");
  metrics.recovery_latency =
      registry->GetHistogram("durability.recovery_latency");
  metrics.changelog_lag = registry->GetGauge("durability.changelog_lag");
  return metrics;
}

ChangelogWriter::ChangelogWriter(std::string path, int fd, FsyncPolicy policy,
                                 const DurabilityMetrics* metrics)
    : path_(std::move(path)),
      fd_(fd),
      policy_(policy),
      metrics_(metrics),
      last_sync_seconds_(MonotonicSeconds()) {}

Result<std::unique_ptr<ChangelogWriter>> ChangelogWriter::Create(
    const std::string& path, uint32_t session_id, uint32_t epoch,
    uint64_t first_seq, FsyncPolicy policy,
    const DurabilityMetrics* metrics) {
  const int fd = ::open(path.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::Unknown("open(" + path + "): " + std::strerror(errno));
  }
  std::string header;
  header.append(kChangelogMagic, sizeof(kChangelogMagic));
  AppendU32(kChangelogVersion, &header);
  AppendU32(session_id, &header);
  AppendU32(epoch, &header);
  AppendU64(first_seq, &header);
  Status written = WriteAll(fd, header.data(), header.size(), path);
  // The header fsync makes the epoch file itself durable, so a later torn
  // HEADER is (nearly) impossible — only record tails can tear.
  if (written.ok() && ::fsync(fd) != 0) {
    written = Status::Unknown("fsync(" + path + "): " +
                              std::strerror(errno));
  }
  if (!written.ok()) {
    ::close(fd);
    return written;
  }
  return std::unique_ptr<ChangelogWriter>(
      new ChangelogWriter(path, fd, policy, metrics));
}

ChangelogWriter::~ChangelogWriter() { Close(); }

Status ChangelogWriter::Append(const SessionCommand& command, bool resolved) {
  if (fd_ < 0) return Status::InvalidArgument("changelog is closed");
  std::string payload;
  EncodeCommand(command, &payload);
  std::string record;
  record.reserve(8 + payload.size());
  AppendU32(static_cast<uint32_t>(payload.size()), &record);
  AppendU32(Crc32(payload.data(), payload.size()), &record);
  record += payload;
  SAVG_RETURN_NOT_OK(WriteAll(fd_, record.data(), record.size(), path_));
  ++appended_;
  ++unsynced_;
  if (metrics_ != nullptr && metrics_->appends != nullptr) {
    metrics_->appends->Increment();
  }
  bool sync_now = false;
  switch (policy_.mode) {
    case FsyncPolicy::Mode::kNever:
      break;
    case FsyncPolicy::Mode::kEveryN:
      sync_now = unsynced_ >= policy_.every_n;
      break;
    case FsyncPolicy::Mode::kInterval:
      sync_now = (MonotonicSeconds() - last_sync_seconds_) * 1e3 >=
                 policy_.interval_ms;
      break;
    case FsyncPolicy::Mode::kOnResolve:
      sync_now = resolved;
      break;
  }
  if (sync_now) return Sync();
  return Status::OK();
}

Status ChangelogWriter::Sync() {
  if (fd_ < 0) return Status::InvalidArgument("changelog is closed");
  if (unsynced_ == 0) return Status::OK();
  const double start = MonotonicSeconds();
  if (::fsync(fd_) != 0) {
    return Status::Unknown("fsync(" + path_ + "): " + std::strerror(errno));
  }
  unsynced_ = 0;
  last_sync_seconds_ = MonotonicSeconds();
  if (metrics_ != nullptr) {
    if (metrics_->fsyncs != nullptr) metrics_->fsyncs->Increment();
    if (metrics_->fsync_latency != nullptr) {
      metrics_->fsync_latency->Observe(last_sync_seconds_ - start);
    }
  }
  return Status::OK();
}

Status ChangelogWriter::Close() {
  if (fd_ < 0) return Status::OK();
  Status synced = Sync();
  ::close(fd_);
  fd_ = -1;
  return synced;
}

Result<ChangelogContents> ReadChangelogFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open changelog " + path);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  ChangelogContents contents;
  if (data.size() >= sizeof(kChangelogMagic) &&
      std::memcmp(data.data(), kChangelogMagic, sizeof(kChangelogMagic)) !=
          0) {
    return Status::InvalidArgument(path + " is not an SVGL changelog");
  }
  if (data.size() < kHeaderBytes) {
    // Crash between creation and the header fsync: nothing recoverable in
    // this epoch file, but that is a torn tail, not corruption.
    contents.torn_tail = true;
    contents.tail_error = "truncated header";
    return contents;
  }
  contents.version = ReadU32(data.data() + 4);
  contents.session_id = ReadU32(data.data() + 8);
  contents.epoch = ReadU32(data.data() + 12);
  contents.first_seq = ReadU64(data.data() + 16);
  if (contents.version != kChangelogVersion) {
    return Status::InvalidArgument(
        path + ": unsupported changelog version " +
        std::to_string(contents.version));
  }
  size_t offset = kHeaderBytes;
  contents.valid_bytes = offset;
  while (offset < data.size()) {
    if (data.size() - offset < 8) {
      contents.torn_tail = true;
      contents.tail_error = "truncated record header";
      break;
    }
    const uint32_t len = ReadU32(data.data() + offset);
    const uint32_t crc = ReadU32(data.data() + offset + 4);
    if (len == 0 || len > kMaxRecordBytes) {
      contents.torn_tail = true;
      contents.tail_error = "corrupt record length";
      break;
    }
    if (data.size() - offset - 8 < len) {
      contents.torn_tail = true;
      contents.tail_error = "truncated record payload";
      break;
    }
    const char* payload = data.data() + offset + 8;
    if (Crc32(payload, len) != crc) {
      contents.torn_tail = true;
      contents.tail_error = "record CRC mismatch";
      break;
    }
    size_t consumed = 0;
    auto command = DecodeCommand(payload, len, &consumed);
    if (!command.ok() || consumed != len) {
      contents.torn_tail = true;
      contents.tail_error = command.ok() ? "record length mismatch"
                                         : command.status().message();
      break;
    }
    contents.commands.push_back(*command);
    offset += 8 + len;
    contents.valid_bytes = offset;
  }
  return contents;
}

}  // namespace savg
