// Session snapshots: the periodic full-state captures that bound changelog
// replay length (durability tentpole).
//
// A snapshot file holds one SessionState (online/session.h) — instance
// with its evolved pair order, served configuration, cached LpBasis +
// column keys, resolve counter, rounding RNG, dirty flags — encoded
// bit-exactly: floats/doubles travel as IEEE-754 bit patterns, so
// DecodeSessionState(EncodeSessionState(s)) reproduces s byte-for-byte
// and recovery warm-starts from the snapshotted basis without a cold
// solve. File layout:
//
//   "SVGS" magic | u32 version | u32 session_id | u32 epoch
//   | u64 applied_seq | u64 payload_len
//   | u32 payload_crc32 | u32 header_crc32     (40-byte header)
//   | payload (EncodeSessionState)
//
// Both CRCs gate recovery: a snapshot that fails either is skipped and the
// previous epoch is used instead (with a longer changelog replay).
//
// Writes are atomic: payload goes to "<path>.tmp", is fsync'd, then
// rename(2)d over the target, and the directory is fsync'd — a crash
// mid-snapshot leaves the previous epoch's file intact.

#pragma once

#include <cstdint>
#include <string>

#include "online/session.h"
#include "util/status.h"

namespace savg {

/// Appends the canonical bit-exact encoding of `state` to `out`.
void EncodeSessionState(const SessionState& state, std::string* out);
Result<SessionState> DecodeSessionState(const char* data, size_t size);

/// FNV-1a 64 over EncodeSessionState(state) — the state digest the CI
/// crash-recovery job compares between snapshot-based recovery and a cold
/// full replay (`svgic_cli recover`).
uint64_t SessionStateDigest(const SessionState& state);

struct SnapshotData {
  uint32_t version = 0;
  uint32_t session_id = 0;
  uint32_t epoch = 0;
  /// Commands applied when the snapshot was taken; the epoch's changelog
  /// starts at this sequence number.
  uint64_t applied_seq = 0;
  SessionState state;
};

/// Atomic write-rename (see file comment).
Status WriteSnapshotFile(const std::string& path, uint32_t session_id,
                         uint32_t epoch, uint64_t applied_seq,
                         const SessionState& state);

/// Validates both CRCs; any mismatch/truncation is an error (the recovery
/// manager falls back to the previous epoch).
Result<SnapshotData> ReadSnapshotFile(const std::string& path);

}  // namespace savg
