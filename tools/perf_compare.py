#!/usr/bin/env python3
"""Perf-smoke regression gate for the bench --json artifacts.

Usage:
    perf_compare.py BASELINE.json CURRENT.json [CURRENT2.json ...]
                    [--max-ratio 2.0] [--min-seconds 0.05]
    perf_compare.py --cold-reference CURRENT.json [CURRENT2.json ...]
                    [--max-ratio 0.75] [--min-seconds 0.05]

Each file is the {"metrics": [{"name", "seconds"}, ...]} object written by
bench binaries via --json= (bench/bench_util.h). The gate fails (exit 1)
when any metric present in both the baseline and the current run is slower
than max-ratio x its baseline AND both sides exceed min-seconds in
absolute terms (the floor keeps sub-50ms timer noise from flapping CI). Metrics missing on
either side are reported but never fail the gate, so adding or renaming
benches does not require a lockstep baseline update.

--cold-reference gates without a checked-in baseline: every metric pair
"X (incremental)" / "X (cold)" measured in the SAME run must satisfy
incremental <= max-ratio x cold (default 0.75 in this mode). Both sides
scale with the machine, so hosted-runner speed differences cannot flap the
gate the way an absolute checked-in baseline can — this is the gate for
the warm-started online serving path (bench_online_sessions), which is
only correct if it stays well under the same run's cold re-solves.

--suffixes NUM DEN renames the pair suffixes of the --cold-reference mode,
e.g. --suffixes " (sharded)" " (monolithic)" gates the sharded solve
paths of bench_shard_scale against the same run's monolithic solves.

Refresh the baseline with a Release build on a quiet machine:
    ./build/bench_fig4_lambda --json=f4.json --benchmark_filter=DISABLED_none
    ./build/bench_fig8_scalability --json=f8.json \
        --benchmark_filter=DISABLED_none
    python3 tools/perf_compare.py --merge f4.json f8.json \
        > bench/perf_baseline.json
"""

import argparse
import json
import sys


def load_metrics(path):
    with open(path) as fh:
        data = json.load(fh)
    metrics = {}
    for entry in data.get("metrics", []):
        metrics[entry["name"]] = float(entry["seconds"])
    return metrics


INCREMENTAL_SUFFIX = " (incremental)"
COLD_SUFFIX = " (cold)"


def compare_cold_reference(metrics, max_ratio, min_seconds,
                           num_suffix=INCREMENTAL_SUFFIX,
                           den_suffix=COLD_SUFFIX):
    """Gates numerator metrics against their same-run reference partners."""
    pairs = 0
    failures = []
    for name, seconds in sorted(metrics.items()):
        if not name.endswith(num_suffix):
            continue
        cold_name = name[: -len(num_suffix)] + den_suffix
        cold = metrics.get(cold_name)
        if cold is None:
            print(f"  unpaired incremental metric (no cold partner): {name}")
            continue
        pairs += 1
        ratio = seconds / cold if cold > 0 else float("inf")
        marker = "ok"
        # The noise floor only exempts a fast NUMERATOR side: a tiny
        # reference with a slow numerator is exactly the regression this
        # gate exists to catch.
        if ratio > max_ratio and seconds > min_seconds:
            marker = "REGRESSION"
            failures.append(name)
        print(f"  {marker:>10}: {name}: {seconds:.3f}s "
              f"(reference {cold:.3f}s, ratio {ratio:.2f})")
    if pairs == 0:
        # A rename silently disabling the gate must not look green.
        print(f"no {num_suffix!r}/{den_suffix!r} metric pairs found")
        return 1
    if failures:
        print(f"\n{len(failures)} metric(s) above {max_ratio}x their "
              f"same-run {den_suffix.strip()} reference: "
              f"{', '.join(failures)}")
        return 1
    print("\ncold-reference gate ok")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="baseline json (or first file with --merge / --cold-reference)")
    parser.add_argument("current", nargs="*", help="current-run json files")
    parser.add_argument("--max-ratio", type=float, default=None,
                        help="fail when current > ratio x baseline "
                             "(default 2.0; 0.75 with --cold-reference)")
    parser.add_argument("--min-seconds", type=float, default=0.05,
                        help="ignore metrics below this absolute time")
    parser.add_argument("--merge", action="store_true",
                        help="merge all inputs into one json on stdout")
    parser.add_argument("--cold-reference", action="store_true",
                        help="gate (incremental) metrics against the "
                             "same-run (cold) partner instead of a "
                             "checked-in baseline")
    parser.add_argument("--suffixes", nargs=2,
                        metavar=("NUM", "DEN"),
                        default=[INCREMENTAL_SUFFIX, COLD_SUFFIX],
                        help="metric-name suffixes forming the "
                             "--cold-reference pairs (numerator, "
                             "denominator)")
    args = parser.parse_args()

    if args.cold_reference:
        metrics = {}
        for path in [args.baseline] + args.current:
            metrics.update(load_metrics(path))
        max_ratio = args.max_ratio if args.max_ratio is not None else 0.75
        return compare_cold_reference(metrics, max_ratio, args.min_seconds,
                                      args.suffixes[0], args.suffixes[1])
    if args.max_ratio is None:
        args.max_ratio = 2.0
    if not args.current:
        parser.error("need BASELINE.json plus at least one CURRENT.json")

    if args.merge:
        merged = {}
        for path in [args.baseline] + args.current:
            merged.update(load_metrics(path))
        json.dump({"metrics": [{"name": name, "seconds": seconds}
                               for name, seconds in sorted(merged.items())]},
                  sys.stdout, indent=2)
        sys.stdout.write("\n")
        return 0

    baseline = load_metrics(args.baseline)
    current = {}
    for path in args.current:
        current.update(load_metrics(path))

    failures = []
    for name, seconds in sorted(current.items()):
        base = baseline.get(name)
        if base is None:
            print(f"  new metric (no baseline): {name} = {seconds:.3f}s")
            continue
        ratio = seconds / base if base > 0 else float("inf")
        marker = "ok"
        # Both sides must clear the noise floor: a sub-floor baseline is
        # pure timer jitter and must not be able to fail the gate.
        if (ratio > args.max_ratio and seconds > args.min_seconds
                and base > args.min_seconds):
            marker = "REGRESSION"
            failures.append(name)
        print(f"  {marker:>10}: {name}: {seconds:.3f}s "
              f"(baseline {base:.3f}s, ratio {ratio:.2f})")
    for name in sorted(set(baseline) - set(current)):
        print(f"  metric missing from current run: {name}")

    if failures:
        print(f"\n{len(failures)} metric(s) regressed more than "
              f"{args.max_ratio}x: {', '.join(failures)}")
        return 1
    print("\nperf smoke ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
