#!/usr/bin/env python3
"""Perf-smoke regression gate for the bench --json artifacts.

Usage:
    perf_compare.py BASELINE.json CURRENT.json [CURRENT2.json ...]
                    [--max-ratio 2.0] [--min-seconds 0.05]

Each file is the {"metrics": [{"name", "seconds"}, ...]} object written by
bench binaries via --json= (bench/bench_util.h). The gate fails (exit 1)
when any metric present in both the baseline and the current run is slower
than max-ratio x its baseline AND both sides exceed min-seconds in
absolute terms (the floor keeps sub-50ms timer noise from flapping CI). Metrics missing on
either side are reported but never fail the gate, so adding or renaming
benches does not require a lockstep baseline update.

Refresh the baseline with a Release build on a quiet machine:
    ./build/bench_fig4_lambda --json=f4.json --benchmark_filter=DISABLED_none
    ./build/bench_fig8_scalability --json=f8.json \
        --benchmark_filter=DISABLED_none
    python3 tools/perf_compare.py --merge f4.json f8.json \
        > bench/perf_baseline.json
"""

import argparse
import json
import sys


def load_metrics(path):
    with open(path) as fh:
        data = json.load(fh)
    metrics = {}
    for entry in data.get("metrics", []):
        metrics[entry["name"]] = float(entry["seconds"])
    return metrics


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="baseline json (or first file with --merge)")
    parser.add_argument("current", nargs="+", help="current-run json files")
    parser.add_argument("--max-ratio", type=float, default=2.0,
                        help="fail when current > ratio x baseline")
    parser.add_argument("--min-seconds", type=float, default=0.05,
                        help="ignore metrics below this absolute time")
    parser.add_argument("--merge", action="store_true",
                        help="merge all inputs into one json on stdout")
    args = parser.parse_args()

    if args.merge:
        merged = {}
        for path in [args.baseline] + args.current:
            merged.update(load_metrics(path))
        json.dump({"metrics": [{"name": name, "seconds": seconds}
                               for name, seconds in sorted(merged.items())]},
                  sys.stdout, indent=2)
        sys.stdout.write("\n")
        return 0

    baseline = load_metrics(args.baseline)
    current = {}
    for path in args.current:
        current.update(load_metrics(path))

    failures = []
    for name, seconds in sorted(current.items()):
        base = baseline.get(name)
        if base is None:
            print(f"  new metric (no baseline): {name} = {seconds:.3f}s")
            continue
        ratio = seconds / base if base > 0 else float("inf")
        marker = "ok"
        # Both sides must clear the noise floor: a sub-floor baseline is
        # pure timer jitter and must not be able to fail the gate.
        if (ratio > args.max_ratio and seconds > args.min_seconds
                and base > args.min_seconds):
            marker = "REGRESSION"
            failures.append(name)
        print(f"  {marker:>10}: {name}: {seconds:.3f}s "
              f"(baseline {base:.3f}s, ratio {ratio:.2f})")
    for name in sorted(set(baseline) - set(current)):
        print(f"  metric missing from current run: {name}")

    if failures:
        print(f"\n{len(failures)} metric(s) regressed more than "
              f"{args.max_ratio}x: {', '.join(failures)}")
        return 1
    print("\nperf smoke ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
