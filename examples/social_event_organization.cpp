// Social Event Organization via SVGIC-ST (Section 4.4): schedule a weekend
// of meetup events for an event-based social network, respecting venue
// capacities while maximizing interest + "attend with friends" benefit.
//
//   ./examples/social_event_organization

#include <cstdio>
#include <iostream>

#include "core/seo.h"
#include "graph/generators.h"
#include "util/random.h"
#include "util/table.h"

using namespace savg;

int main() {
  Rng rng(2024);
  const int kAttendees = 24;
  const int kEvents = 8;
  const int kTimeSlots = 2;  // Saturday, Sunday

  SeoProblem problem;
  problem.network = PlantedPartition(kAttendees, 4, 0.6, 0.05, &rng);
  problem.num_events = kEvents;
  problem.num_time_slots = kTimeSlots;
  problem.lambda = 0.5;
  problem.capacity.assign(kEvents, 8);
  problem.capacity[0] = 4;  // the pottery workshop is small
  problem.event_names = {"pottery",  "hiking",   "board-games", "cooking",
                         "museum",   "climbing", "wine-tasting", "cinema"};
  problem.interest.assign(kAttendees * kEvents, 0.0f);
  for (int u = 0; u < kAttendees; ++u) {
    for (int e = 0; e < kEvents; ++e) {
      problem.interest[u * kEvents + e] =
          static_cast<float>(rng.Uniform(0.05, 1.0));
    }
  }
  problem.joint_benefit.resize(problem.network.num_edges());
  for (const Edge& e : problem.network.edges()) {
    for (int ev = 0; ev < kEvents; ++ev) {
      if (rng.Bernoulli(0.7)) {
        problem.joint_benefit[e.id].push_back(
            {ev, static_cast<float>(rng.Uniform(0.1, 0.6))});
      }
    }
  }

  auto result = SolveSeo(problem);
  if (!result.ok()) {
    std::cerr << "SEO solve failed: " << result.status() << "\n";
    return 1;
  }
  std::printf("Total scaled utility: %.2f, capacity feasible: %s\n",
              result->scaled_objective,
              result->capacity_feasible ? "yes" : "NO");

  for (int t = 0; t < kTimeSlots; ++t) {
    Table table({"event", "attendees", "capacity"});
    std::vector<std::vector<int>> attendees(kEvents);
    for (int u = 0; u < kAttendees; ++u) {
      attendees[result->schedule[u][t]].push_back(u);
    }
    for (int e = 0; e < kEvents; ++e) {
      if (attendees[e].empty()) continue;
      std::string who;
      for (int u : attendees[e]) {
        if (!who.empty()) who += ",";
        who += std::to_string(u);
      }
      table.NewRow()
          .Add(problem.event_names[e])
          .Add(who + " (" + std::to_string(attendees[e].size()) + ")")
          .Add(static_cast<int64_t>(problem.capacity[e]));
    }
    table.Print(t == 0 ? "Saturday" : "Sunday");
  }
  std::cout << "\nFriends are steered into shared events whenever interests"
               " align; no venue exceeds its capacity.\n";
  return 0;
}
