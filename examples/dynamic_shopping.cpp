// Dynamic VR shopping session (Section 5, extension F): users join and
// leave a live store; the session keeps a valid configuration incrementally
// instead of re-running the whole pipeline.
//
//   ./examples/dynamic_shopping

#include <cstdio>
#include <iostream>

#include "core/avg_d.h"
#include "core/extensions.h"
#include "core/lp_formulation.h"
#include "core/objective.h"
#include "datagen/datasets.h"
#include "util/random.h"

using namespace savg;

int main() {
  DatasetParams params;
  params.kind = DatasetKind::kYelp;
  params.num_users = 12;
  params.num_items = 60;
  params.num_slots = 4;
  params.seed = 5;
  auto instance = GenerateDataset(params);
  if (!instance.ok()) {
    std::cerr << instance.status() << "\n";
    return 1;
  }

  auto frac = SolveRelaxation(*instance);
  auto seedcfg = RunAvgD(*instance, *frac);
  if (!seedcfg.ok()) {
    std::cerr << seedcfg.status() << "\n";
    return 1;
  }
  DynamicSession session(std::move(instance).value(),
                         std::move(seedcfg->config));
  std::printf("t=0  %2d shoppers, scaled utility %.2f\n", 12,
              session.CurrentScaledTotal());

  Rng rng(17);
  int active = 12;
  // A stream of events: five joins (each new shopper knows 2 random active
  // users), then three departures.
  for (int event = 0; event < 5; ++event) {
    std::vector<float> pref(60, 0.0f);
    for (int i = 0; i < 12; ++i) {
      pref[rng.UniformInt(uint64_t{60})] =
          static_cast<float>(rng.Uniform(0.2, 1.0));
    }
    std::vector<DynamicSession::NewUserTie> ties;
    for (int f = 0; f < 2; ++f) {
      DynamicSession::NewUserTie tie;
      do {
        tie.other = static_cast<UserId>(
            rng.UniformInt(static_cast<uint64_t>(
                session.instance().num_users())));
      } while (!session.IsActive(tie.other));
      for (int i = 0; i < 6; ++i) {
        const ItemId c = static_cast<ItemId>(rng.UniformInt(uint64_t{60}));
        tie.tau_out.push_back({c, static_cast<float>(rng.Uniform(0.1, 0.4))});
        tie.tau_in.push_back({c, static_cast<float>(rng.Uniform(0.1, 0.4))});
      }
      ties.push_back(std::move(tie));
    }
    auto who = session.UserJoin(pref, ties);
    if (!who.ok()) {
      std::cerr << "join failed: " << who.status() << "\n";
      return 1;
    }
    ++active;
    std::printf("t=%d  shopper %d joined -> %2d active, utility %.2f\n",
                event + 1, *who, active, session.CurrentScaledTotal());
  }
  for (int event = 0; event < 3; ++event) {
    UserId leaver;
    do {
      leaver = static_cast<UserId>(rng.UniformInt(
          static_cast<uint64_t>(session.instance().num_users())));
    } while (!session.IsActive(leaver));
    if (!session.UserLeave(leaver).ok()) return 1;
    --active;
    std::printf("t=%d  shopper %d left    -> %2d active, utility %.2f\n",
                event + 6, leaver, active, session.CurrentScaledTotal());
  }
  std::cout << "\nEvery intermediate state keeps a complete, duplicate-free "
               "configuration for the active shoppers.\n";
  return 0;
}
