// svgic_cli: run any algorithm of the library on an instance file.
//
//   svgic_cli gen  <kind> <n> <m> <k> <seed> <out.tsv>   generate a dataset
//   svgic_cli run  <solver> <instance.tsv> [out_config.tsv]  solve it
//   svgic_cli eval <instance.tsv> <config.tsv>            score a config
//
// <kind> in {timik, epinions, yelp}; <solver> is any registry name
// (case-insensitive; `svgic_cli run help` lists them), plus "local" =
// AVG-D followed by local-search polish.

#include <cstring>
#include <iostream>
#include <string>

#include "core/io.h"
#include "core/local_search.h"
#include "core/objective.h"
#include "datagen/datasets.h"
#include "experiments/runner.h"
#include "metrics/metrics.h"
#include "solvers/solver_registry.h"
#include "util/logging.h"
#include "util/table.h"

using namespace savg;

namespace {

std::string KnownSolvers() {
  std::string names;
  for (const std::string& name : SolverRegistry::Global().Names()) {
    if (!names.empty()) names += "|";
    names += name;
  }
  return names;
}

int Usage() {
  std::cerr << "usage:\n"
               "  svgic_cli gen  <timik|epinions|yelp> <n> <m> <k> <seed> "
               "<out>\n"
               "  svgic_cli run  <solver> <instance> [out_config]\n"
               "  svgic_cli eval <instance> <config>\n"
               "solvers: "
            << KnownSolvers() << "|local (AVG-D + local search)\n";
  return 2;
}

int Generate(int argc, char** argv) {
  if (argc != 8) return Usage();
  DatasetParams params;
  const std::string kind = argv[2];
  if (kind == "timik") {
    params.kind = DatasetKind::kTimik;
  } else if (kind == "epinions") {
    params.kind = DatasetKind::kEpinions;
  } else if (kind == "yelp") {
    params.kind = DatasetKind::kYelp;
  } else {
    return Usage();
  }
  params.num_users = std::atoi(argv[3]);
  params.num_items = std::atoi(argv[4]);
  params.num_slots = std::atoi(argv[5]);
  params.seed = std::strtoull(argv[6], nullptr, 10);
  auto inst = GenerateDataset(params);
  if (!inst.ok()) {
    std::cerr << "generation failed: " << inst.status() << "\n";
    return 1;
  }
  Status st = WriteInstanceToFile(*inst, argv[7]);
  if (!st.ok()) {
    std::cerr << st << "\n";
    return 1;
  }
  std::cout << "wrote " << inst->DebugString() << " to " << argv[7] << "\n";
  return 0;
}

void PrintReport(const SvgicInstance& inst, const Configuration& config,
                 double seconds) {
  const ObjectiveBreakdown obj = Evaluate(inst, config);
  const SubgroupMetrics sm = ComputeSubgroupMetrics(inst, config);
  Table t({"metric", "value"});
  t.NewRow().Add("total utility (Def. 3)").Add(obj.Total(), 4);
  t.NewRow().Add("scaled total").Add(obj.ScaledTotal(), 4);
  t.NewRow().Add("preference part").Add(obj.preference, 4);
  t.NewRow().Add("social part").Add(obj.social_direct, 4);
  t.NewRow().Add("Intra%").Add(FormatPercent(sm.intra_fraction));
  t.NewRow().Add("Co-display%").Add(FormatPercent(sm.co_display_rate));
  t.NewRow().Add("Alone%").Add(FormatPercent(sm.alone_rate));
  t.NewRow().Add("norm. subgroup density").Add(sm.normalized_density, 3);
  if (seconds >= 0) t.NewRow().Add("solve time (s)").Add(seconds, 3);
  t.Print();
}

int Run(int argc, char** argv) {
  if (argc < 4 || argc > 5) return Usage();
  auto inst = ReadInstanceFromFile(argv[3]);
  if (!inst.ok()) {
    std::cerr << inst.status() << "\n";
    return 1;
  }
  const std::string algo = argv[2];
  RunnerConfig config;
  Configuration result;
  Timer timer;
  if (algo == "local") {
    auto base = RunAlgorithm(*inst, Algo::kAvgD, config);
    if (!base.ok()) {
      std::cerr << base.status() << "\n";
      return 1;
    }
    auto polished = ImproveByLocalSearch(*inst, base->config);
    if (!polished.ok()) {
      std::cerr << polished.status() << "\n";
      return 1;
    }
    result = std::move(polished->config);
  } else {
    auto solver = SolverRegistry::Global().Find(algo);
    if (!solver.ok()) {
      std::cerr << solver.status() << "\n";
      return Usage();
    }
    if ((*solver)->Name() == "IP") {
      config.ip.mip.time_limit_seconds = 60.0;
    }
    SolverContext context;
    context.options = &config;
    auto run = (*solver)->Solve(*inst, context);
    if (!run.ok()) {
      std::cerr << run.status() << "\n";
      return 1;
    }
    result = std::move(run->config);
  }
  const double seconds = timer.ElapsedSeconds();
  PrintReport(*inst, result, seconds);
  if (argc == 5) {
    Status st = WriteConfigurationToFile(result, argv[4]);
    if (!st.ok()) {
      std::cerr << st << "\n";
      return 1;
    }
    std::cout << "configuration written to " << argv[4] << "\n";
  }
  return 0;
}

int Eval(int argc, char** argv) {
  if (argc != 4) return Usage();
  auto inst = ReadInstanceFromFile(argv[2]);
  if (!inst.ok()) {
    std::cerr << inst.status() << "\n";
    return 1;
  }
  auto config = ReadConfigurationFromFile(argv[3]);
  if (!config.ok()) {
    std::cerr << config.status() << "\n";
    return 1;
  }
  PrintReport(*inst, *config, -1.0);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  if (std::strcmp(argv[1], "gen") == 0) return Generate(argc, argv);
  if (std::strcmp(argv[1], "run") == 0) return Run(argc, argv);
  if (std::strcmp(argv[1], "eval") == 0) return Eval(argc, argv);
  return Usage();
}
