// svgic_cli: run any algorithm of the library on an instance file.
//
//   svgic_cli gen  <kind> <n> <m> <k> <seed> <out.tsv>   generate a dataset
//   svgic_cli run  <solver> <instance.tsv> [out_config.tsv]  solve it
//   svgic_cli eval <instance.tsv> <config.tsv>            score a config
//   svgic_cli genevents <instance.tsv> <mutations> <resolve_every> <seed>
//                       <out.cmds>                       make a command log
//   svgic_cli convertevents <in> <out>                    legacy TSV event
//                                                         log -> binary
//   svgic_cli serve <instance.tsv> <commands>             replay a live
//                                                         serving session
//   svgic_cli trace <host> <port> [last] [--json]         fetch recent
//                                                         request traces
//                                                         from a serverd
//   svgic_cli top <host> <port> [--iters=N]               live health +
//                 [--interval-ms=M]                       windowed-metrics
//                                                         dashboard
//   svgic_cli shutdown <host> <port>                      stop a serverd
//   svgic_cli recover <data_dir> [--cold] [--json=path]   offline crash
//                                                         recovery + state
//                                                         digests
//
// <kind> in {timik, epinions, yelp}; <solver> is any registry name
// (case-insensitive; `svgic_cli run help` lists them), plus "local" =
// AVG-D followed by local-search polish. `serve` drives the online
// subsystem (src/online/) through Session::Apply(SessionCommand): each
// resolve command re-optimizes incrementally from the cached simplex basis
// and prints which path ran plus the pivot counts. Command logs are the
// binary format of serve/session_command.h; `serve` also accepts legacy
// TSV event logs via the import shim, and `convertevents` rewrites one as
// binary.
//
// Global flags (anywhere on the command line):
//   --shards=N      shard count for the sharded paths: the AVG-SHARD
//                   solver under `run`, and sharded serving under `serve`
//                   (a sharded session re-solves only dirty shards)
//   --shard-gap=G   dual-coordination gap tolerance (default 0.01)

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>

#include "core/io.h"
#include "core/local_search.h"
#include "durability/recovery.h"
#include "durability/snapshot.h"
#include "serve/client.h"
#include "core/objective.h"
#include "datagen/datasets.h"
#include "experiments/runner.h"
#include "metrics/metrics.h"
#include "online/event_log.h"
#include "online/session.h"
#include "shard/shard_solve.h"
#include "solvers/solver_registry.h"
#include "util/logging.h"
#include "util/table.h"

using namespace savg;

namespace {

/// --shards= override (0 = default plan) and --shard-gap= (< 0 = default).
int g_shards = 0;
double g_shard_gap = -1.0;

void ApplyShardFlags(ShardSolveOptions* options) {
  if (g_shards > 0) options->plan.num_shards = g_shards;
  if (g_shard_gap >= 0.0) options->gap_tolerance = g_shard_gap;
}

/// Strips --shards=/--shard-gap= from argv before subcommand parsing.
/// Malformed values exit 2 (a typo must not silently change the solver).
void ConsumeShardFlags(int* argc, char** argv) {
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strncmp(argv[i], "--shards=", 9) == 0) {
      const char* value = argv[i] + 9;
      char* end = nullptr;
      const long shards = std::strtol(value, &end, 10);
      if (end == value || *end != '\0' || shards < 0) {
        std::cerr << "--shards expects a non-negative integer, got \""
                  << value << "\"\n";
        std::exit(2);
      }
      g_shards = static_cast<int>(shards);
    } else if (std::strncmp(argv[i], "--shard-gap=", 12) == 0) {
      const char* value = argv[i] + 12;
      char* end = nullptr;
      const double gap = std::strtod(value, &end);
      if (end == value || *end != '\0' || gap < 0.0) {
        std::cerr << "--shard-gap expects a non-negative number, got \""
                  << value << "\"\n";
        std::exit(2);
      }
      g_shard_gap = gap;
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
}

std::string KnownSolvers() {
  std::string names;
  for (const std::string& name : SolverRegistry::Global().Names()) {
    if (!names.empty()) names += "|";
    names += name;
  }
  return names;
}

int Usage() {
  std::cerr << "usage:\n"
               "  svgic_cli gen  <timik|epinions|yelp> <n> <m> <k> <seed> "
               "<out>\n"
               "  svgic_cli run  <solver> <instance> [out_config]\n"
               "  svgic_cli eval <instance> <config>\n"
               "  svgic_cli genevents <instance> <mutations> <resolve_every>"
               " <seed> <out>\n"
               "  svgic_cli convertevents <in_events> <out_commands>\n"
               "  svgic_cli serve <instance> <commands>\n"
               "  svgic_cli trace <host> <port> [last] [--json]\n"
               "  svgic_cli top <host> <port> [--iters=N] [--interval-ms=M]\n"
               "  svgic_cli shutdown <host> <port>\n"
               "  svgic_cli recover <data_dir> [--cold] [--json=path]\n"
               "flags: --shards=N (sharded solve/serving), --shard-gap=G\n"
               "solvers: "
            << KnownSolvers() << "|local (AVG-D + local search)\n";
  return 2;
}

int Generate(int argc, char** argv) {
  if (argc != 8) return Usage();
  DatasetParams params;
  const std::string kind = argv[2];
  if (kind == "timik") {
    params.kind = DatasetKind::kTimik;
  } else if (kind == "epinions") {
    params.kind = DatasetKind::kEpinions;
  } else if (kind == "yelp") {
    params.kind = DatasetKind::kYelp;
  } else {
    return Usage();
  }
  params.num_users = std::atoi(argv[3]);
  params.num_items = std::atoi(argv[4]);
  params.num_slots = std::atoi(argv[5]);
  params.seed = std::strtoull(argv[6], nullptr, 10);
  auto inst = GenerateDataset(params);
  if (!inst.ok()) {
    std::cerr << "generation failed: " << inst.status() << "\n";
    return 1;
  }
  Status st = WriteInstanceToFile(*inst, argv[7]);
  if (!st.ok()) {
    std::cerr << st << "\n";
    return 1;
  }
  std::cout << "wrote " << inst->DebugString() << " to " << argv[7] << "\n";
  return 0;
}

void PrintReport(const SvgicInstance& inst, const Configuration& config,
                 double seconds) {
  const ObjectiveBreakdown obj = Evaluate(inst, config);
  const SubgroupMetrics sm = ComputeSubgroupMetrics(inst, config);
  Table t({"metric", "value"});
  t.NewRow().Add("total utility (Def. 3)").Add(obj.Total(), 4);
  t.NewRow().Add("scaled total").Add(obj.ScaledTotal(), 4);
  t.NewRow().Add("preference part").Add(obj.preference, 4);
  t.NewRow().Add("social part").Add(obj.social_direct, 4);
  t.NewRow().Add("Intra%").Add(FormatPercent(sm.intra_fraction));
  t.NewRow().Add("Co-display%").Add(FormatPercent(sm.co_display_rate));
  t.NewRow().Add("Alone%").Add(FormatPercent(sm.alone_rate));
  t.NewRow().Add("norm. subgroup density").Add(sm.normalized_density, 3);
  if (seconds >= 0) t.NewRow().Add("solve time (s)").Add(seconds, 3);
  t.Print();
}

int Run(int argc, char** argv) {
  if (argc < 4 || argc > 5) return Usage();
  auto inst = ReadInstanceFromFile(argv[3]);
  if (!inst.ok()) {
    std::cerr << inst.status() << "\n";
    return 1;
  }
  const std::string algo = argv[2];
  RunnerConfig config;
  ApplyShardFlags(&config.shard);
  Configuration result;
  Timer timer;
  if (algo == "local") {
    auto base = RunAlgorithm(*inst, Algo::kAvgD, config);
    if (!base.ok()) {
      std::cerr << base.status() << "\n";
      return 1;
    }
    auto polished = ImproveByLocalSearch(*inst, base->config);
    if (!polished.ok()) {
      std::cerr << polished.status() << "\n";
      return 1;
    }
    result = std::move(polished->config);
  } else {
    auto solver = SolverRegistry::Global().Find(algo);
    if (!solver.ok()) {
      std::cerr << solver.status() << "\n";
      return Usage();
    }
    if ((*solver)->Name() == "IP") {
      config.ip.mip.time_limit_seconds = 60.0;
    }
    SolverContext context;
    context.options = &config;
    auto run = (*solver)->Solve(*inst, context);
    if (!run.ok()) {
      std::cerr << run.status() << "\n";
      return 1;
    }
    result = std::move(run->config);
  }
  const double seconds = timer.ElapsedSeconds();
  PrintReport(*inst, result, seconds);
  if (argc == 5) {
    Status st = WriteConfigurationToFile(result, argv[4]);
    if (!st.ok()) {
      std::cerr << st << "\n";
      return 1;
    }
    std::cout << "configuration written to " << argv[4] << "\n";
  }
  return 0;
}

int Eval(int argc, char** argv) {
  if (argc != 4) return Usage();
  auto inst = ReadInstanceFromFile(argv[2]);
  if (!inst.ok()) {
    std::cerr << inst.status() << "\n";
    return 1;
  }
  auto config = ReadConfigurationFromFile(argv[3]);
  if (!config.ok()) {
    std::cerr << config.status() << "\n";
    return 1;
  }
  PrintReport(*inst, *config, -1.0);
  return 0;
}

int GenerateEvents(int argc, char** argv) {
  if (argc != 7) return Usage();
  auto inst = ReadInstanceFromFile(argv[2]);
  if (!inst.ok()) {
    std::cerr << inst.status() << "\n";
    return 1;
  }
  EventStreamParams params;
  params.num_mutations = std::atoi(argv[3]);
  params.resolve_every = std::atoi(argv[4]);
  params.seed = std::strtoull(argv[5], nullptr, 10);
  if (params.num_mutations <= 0) {
    std::cerr << "mutations must be > 0\n";
    return 1;
  }
  const CommandLog log = GenerateEventStream(*inst, params);
  Status st = WriteCommandLogToFile(log, argv[6]);
  if (!st.ok()) {
    std::cerr << st << "\n";
    return 1;
  }
  std::cout << "wrote " << log.size() << " commands to " << argv[6] << "\n";
  return 0;
}

int ConvertEvents(int argc, char** argv) {
  if (argc != 4) return Usage();
  // ReadCommandLogFromFile sniffs the magic, so this also re-canonicalizes
  // a binary log; the common use is TSV -> binary migration.
  auto log = ReadCommandLogFromFile(argv[2]);
  if (!log.ok()) {
    std::cerr << log.status() << "\n";
    return 1;
  }
  Status st = WriteCommandLogToFile(*log, argv[3]);
  if (!st.ok()) {
    std::cerr << st << "\n";
    return 1;
  }
  std::cout << "converted " << log->size() << " commands to binary at "
            << argv[3] << "\n";
  return 0;
}

int Serve(int argc, char** argv) {
  if (argc != 4) return Usage();
  auto inst = ReadInstanceFromFile(argv[2]);
  if (!inst.ok()) {
    std::cerr << inst.status() << "\n";
    return 1;
  }
  auto log = ReadCommandLogFromFile(argv[3]);
  if (!log.ok()) {
    std::cerr << log.status() << "\n";
    return 1;
  }

  SessionOptions session_options;
  if (g_shards > 0) {
    session_options.use_sharding = true;
    ApplyShardFlags(&session_options.sharding);
  }
  Session session(std::move(inst).value(), session_options);
  Table t({"resolve", "path", "dirty", "pivots", "phase1", "changed",
           "shards", "LP objective", "utility", "ms"});
  int resolves = 0;
  int64_t incremental_pivots = 0;
  int64_t total_pivots = 0;
  for (size_t i = 0; i < log->size(); ++i) {
    const SessionCommand& command = (*log)[i];
    auto outcome = session.Apply(command);
    if (!outcome.ok()) {
      std::cerr << "command " << i << " failed: " << outcome.status() << "\n";
      return 1;
    }
    if (!outcome->resolved) continue;
    const ResolveReport& report = outcome->report;
    ++resolves;
    total_pivots += report.pivots;
    if (report.path == ResolvePath::kIncremental) {
      incremental_pivots += report.pivots;
    }
    t.NewRow()
        .Add(static_cast<int64_t>(resolves))
        .Add(ResolvePathName(report.path))
        .Add(static_cast<int64_t>(report.num_dirty_users))
        .Add(static_cast<int64_t>(report.pivots))
        .Add(static_cast<int64_t>(report.phase1_pivots))
        .Add(FormatPercent(report.changed_fraction))
        .Add(report.num_shards > 0
                 ? std::to_string(report.num_dirty_shards) + "/" +
                       std::to_string(report.num_shards)
                 : "-")
        .Add(report.lp_objective, 4)
        .Add(report.scaled_total, 4)
        .Add(report.total_seconds * 1000, 2);
  }
  t.Print("serve: " + std::to_string(log->size()) + " commands, " +
          std::to_string(resolves) + " resolves");
  std::cout << "total pivots " << total_pivots << " (incremental path "
            << incremental_pivots << ")\n";
  // Only score a configuration that matches the final instance shape;
  // mutations after the last resolve (or a log with no resolve) leave the
  // served configuration stale or missing.
  if (session.HasConfig() &&
      session.config().num_users() == session.instance().num_users() &&
      session.config().num_items() == session.instance().num_items()) {
    PrintReport(session.instance(), session.config(), -1.0);
  } else {
    std::cout << "final configuration is stale (no resolve after the last "
                 "mutation); append a 'resolve' event to score it\n";
  }
  return 0;
}

// `trace <host> <port> [last] [--json]`: fetches the serverd's recent
// request traces over its HTTP front-end. Default output is the
// human-readable span tree; --json prints the raw Chrome trace-event JSON
// (pipe to a file and load in Perfetto / chrome://tracing).
int FetchTrace(int argc, char** argv) {
  if (argc < 4 || argc > 6) return Usage();
  const std::string host = argv[2];
  const int port = std::atoi(argv[3]);
  int last = 32;
  bool json = false;
  for (int i = 4; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else {
      last = std::atoi(argv[i]);
      if (last <= 0) return Usage();
    }
  }
  const std::string path = "/trace?last=" + std::to_string(last) +
                           (json ? "" : "&format=text");
  auto body = HttpGet(host, port, path);
  if (!body.ok()) {
    std::cerr << body.status() << "\n";
    return 1;
  }
  std::cout << *body;
  if (!body->empty() && body->back() != '\n') std::cout << "\n";
  return 0;
}

// Scrapes `"field": <number>` from the row whose `"name"` is `metric` in
// a windowed-metrics JSON dump (metrics/timeseries.h JsonDump shape).
// Returns 0 when the metric or field is absent — a quiet window simply
// omits rows, which reads as zero activity on the dashboard.
double WindowField(const std::string& json, const std::string& metric,
                   const std::string& field) {
  const std::string anchor = "\"name\": \"" + metric + "\"";
  size_t pos = json.find(anchor);
  if (pos == std::string::npos) return 0.0;
  const std::string key = "\"" + field + "\": ";
  pos = json.find(key, pos);
  if (pos == std::string::npos) return 0.0;
  return std::atof(json.c_str() + pos + key.size());
}

// Scrapes a top-level `"field": "value"` string from a JSON dump.
std::string JsonStringField(const std::string& json,
                            const std::string& field) {
  const std::string key = "\"" + field + "\": \"";
  const size_t pos = json.find(key);
  if (pos == std::string::npos) return "";
  const size_t start = pos + key.size();
  const size_t end = json.find('"', start);
  if (end == std::string::npos) return "";
  return json.substr(start, end - start);
}

// `top <host> <port> [--iters=N] [--interval-ms=M]`: a live dashboard
// over the serverd's HTTP front-end. Each tick polls /health and
// /metrics?window=1 (the most recent capture window) and prints one line:
// verdict, apply rate, resolve p50/p99, shed rate, queue depth, eta-chain
// length, and verify pass/fail deltas. Ctrl-C to stop (or --iters=N for
// scripted captures).
int Top(int argc, char** argv) {
  if (argc < 4) return Usage();
  const std::string host = argv[2];
  const int port = std::atoi(argv[3]);
  long iters = -1;  // -1 = run until interrupted
  long interval_ms = 1000;
  for (int i = 4; i < argc; ++i) {
    if (std::strncmp(argv[i], "--iters=", 8) == 0) {
      iters = std::atol(argv[i] + 8);
    } else if (std::strncmp(argv[i], "--interval-ms=", 14) == 0) {
      interval_ms = std::atol(argv[i] + 14);
      if (interval_ms < 1) return Usage();
    } else {
      return Usage();
    }
  }
  std::printf("%-9s %9s %9s %9s %8s %6s %6s %8s %6s\n", "health",
              "apply/s", "p50_ms", "p99_ms", "shed/s", "queue", "eta",
              "verify", "fail");
  for (long tick = 0; iters < 0 || tick < iters; ++tick) {
    auto health = HttpGet(host, port, "/health");
    auto window = HttpGet(host, port, "/metrics?window=1");
    // /health answers 503 when unhealthy; HttpGet reports that as a
    // status error, which is itself the signal worth printing.
    std::string verdict;
    if (health.ok()) {
      verdict = JsonStringField(*health, "status");
    } else if (health.status().message().find("503") != std::string::npos) {
      verdict = "unhealthy";
    }
    if (verdict.empty()) verdict = "?";
    if (!window.ok()) {
      std::cerr << window.status() << "\n";
      return 1;
    }
    const double apply_rate =
        WindowField(*window, "serve.admitted", "rate");
    const double p50 =
        WindowField(*window, "serve.latency.resolve", "p50") * 1e3;
    const double p99 =
        WindowField(*window, "serve.latency.resolve", "p99") * 1e3;
    const double shed_rate = WindowField(*window, "serve.shed", "rate");
    const double queue =
        WindowField(*window, "serve.queue_depth", "last");
    const double eta = WindowField(*window, "lp.eta_chain", "last");
    const double verify_pass =
        WindowField(*window, "verify.pass", "delta");
    const double verify_fail =
        WindowField(*window, "verify.fail", "delta");
    std::printf("%-9s %9.1f %9.2f %9.2f %8.1f %6.0f %6.0f %8.0f %6.0f\n",
                verdict.c_str(), apply_rate, p50, p99, shed_rate, queue,
                eta, verify_pass, verify_fail);
    std::fflush(stdout);
    if (iters < 0 || tick + 1 < iters) {
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    }
  }
  return 0;
}

// `shutdown <host> <port>`: sends a kShutdown frame (what bench_serve_load
// --shutdown-server does), so scripts can stop a serverd they started.
int ShutdownServer(int argc, char** argv) {
  if (argc != 4) return Usage();
  ServeClient client;
  Status st = client.Connect(argv[2], std::atoi(argv[3]));
  if (!st.ok()) {
    std::cerr << st << "\n";
    return 1;
  }
  auto sent = client.SendShutdown();
  if (!sent.ok()) {
    std::cerr << sent.status() << "\n";
    return 1;
  }
  auto response = client.ReadResponse();
  if (!response.ok()) {
    std::cerr << response.status() << "\n";
    return 1;
  }
  std::cout << "server acknowledged shutdown\n";
  return 0;
}

// `recover <data_dir> [--cold] [--json=path]`: offline recovery of every
// session persisted by a serverd --data_dir run, printing a per-session
// state digest. The digest covers the complete serving state (instance,
// config, basis, RNG, dirty flags) bit-for-bit, so
//
//   svgic_cli recover d/          (newest snapshot + short replay)
//   svgic_cli recover d/ --cold   (oldest snapshot + long replay)
//
// printing identical digests proves the snapshot fast-path loses nothing
// vs replaying the retained history — the CI crash-recovery job diffs
// exactly these two outputs after a SIGKILL mid-load.
int Recover(int argc, char** argv) {
  std::string data_dir;
  std::string json_path;
  RecoveryOptions options;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--cold") == 0) {
      options.cold_replay = true;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (data_dir.empty()) {
      data_dir = argv[i];
    } else {
      return Usage();
    }
  }
  if (data_dir.empty()) return Usage();

  SessionOptions session_options;
  RecoveryManager recovery(data_dir, session_options, options);
  auto recovered = recovery.RecoverAll();
  if (!recovered.ok()) {
    std::cerr << recovered.status() << "\n";
    return 1;
  }
  std::string json = "{\"mode\": \"";
  json += options.cold_replay ? "cold" : "warm";
  json += "\", \"sessions\": [";
  for (size_t i = 0; i < recovered->size(); ++i) {
    const RecoveredSession& item = (*recovered)[i];
    const uint64_t digest = SessionStateDigest(item.session->CaptureState());
    char digest_hex[17];
    std::snprintf(digest_hex, sizeof(digest_hex), "%016llx",
                  static_cast<unsigned long long>(digest));
    std::printf(
        "session %u: seq=%llu replayed=%llu snapshot_epoch=%u "
        "fallbacks=%d torn_tail=%d resolves=%d seconds=%.4f "
        "digest=%s\n",
        item.session_id, static_cast<unsigned long long>(item.applied_seq),
        static_cast<unsigned long long>(item.replayed_commands),
        item.snapshot_epoch, item.snapshot_fallbacks,
        item.torn_tail ? 1 : 0, item.session->num_resolves(), item.seconds,
        digest_hex);
    if (i > 0) json += ", ";
    json += "{\"session\": " + std::to_string(item.session_id) +
            ", \"seq\": " + std::to_string(item.applied_seq) +
            ", \"replayed\": " + std::to_string(item.replayed_commands) +
            ", \"snapshot_epoch\": " + std::to_string(item.snapshot_epoch) +
            ", \"torn_tail\": " + (item.torn_tail ? "true" : "false") +
            ", \"seconds\": " + std::to_string(item.seconds) +
            ", \"digest\": \"" + digest_hex + "\"}";
  }
  json += "]}\n";
  if (!json_path.empty()) {
    std::FILE* out = std::fopen(json_path.c_str(), "w");
    if (out == nullptr) {
      std::cerr << "cannot write " << json_path << "\n";
      return 1;
    }
    std::fwrite(json.data(), 1, json.size(), out);
    std::fclose(out);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  ConsumeShardFlags(&argc, argv);
  if (argc < 2) return Usage();
  if (std::strcmp(argv[1], "gen") == 0) return Generate(argc, argv);
  if (std::strcmp(argv[1], "run") == 0) return Run(argc, argv);
  if (std::strcmp(argv[1], "eval") == 0) return Eval(argc, argv);
  if (std::strcmp(argv[1], "genevents") == 0) return GenerateEvents(argc, argv);
  if (std::strcmp(argv[1], "convertevents") == 0) {
    return ConvertEvents(argc, argv);
  }
  if (std::strcmp(argv[1], "serve") == 0) return Serve(argc, argv);
  if (std::strcmp(argv[1], "trace") == 0) return FetchTrace(argc, argv);
  if (std::strcmp(argv[1], "top") == 0) return Top(argc, argv);
  if (std::strcmp(argv[1], "shutdown") == 0) {
    return ShutdownServer(argc, argv);
  }
  if (std::strcmp(argv[1], "recover") == 0) return Recover(argc, argv);
  return Usage();
}
