// svgic_serverd: the network serving daemon.
//
//   svgic_serverd <instance.tsv> [flags]
//
// Loads one instance, registers --sessions= independent serving sessions
// over it, and serves the framed binary protocol (src/serve/wire.h) plus
// the HTTP/JSON status fallback on one listener until a kShutdown frame
// arrives (bench_serve_load --shutdown-server sends one) or SIGINT/SIGTERM.
//
// Flags:
//   --port=P         listen port (default 0 = ephemeral; the bound port is
//                    printed as "listening on 127.0.0.1:P" either way)
//   --sessions=K     serving sessions sharing the worker pool (default 1)
//   --workers=W      SessionManager worker threads (default 0 = all cores)
//   --queue-depth=D  admission-queue bound before shedding (default 256)
//   --no-coalesce    disable resolve coalescing (A/B for the load gen)
//   --seed=S         per-session RNG seed base (default 7)
//   --trace_sample=N trace 1 in N apply requests (default 16; 0 = only
//                    requests carrying the wire trace flag)
//   --slow_ms=T      slow-query threshold in milliseconds (default 250;
//                    0 disables the slow-query log)
//   --trace_buffer=B finished traces kept for GET /trace (default 256)
//   --slow_log=PATH  rotating slow-query JSONL file (default: none)
//   --metrics_interval=MS  time-series capture cadence in milliseconds
//                    (default 1000; 0 disables windowed metrics + health
//                    evaluation)
//   --metrics_windows=N    capture windows retained (default 256)
//   --verify_sample=N      self-verify 1 in N resolves (default 16; 0 =
//                    only requests carrying the wire verify flag)
//   --data_dir=DIR   session durability root (default: none = volatile).
//                    When DIR already holds session state, startup RECOVERS
//                    every persisted session (snapshot + changelog replay)
//                    instead of creating fresh ones — restart after a crash
//                    with the same flags and the sessions resume where the
//                    journal left them.
//   --fsync_policy=P changelog fsync policy: never | command | every:N |
//                    interval:MS | resolve (default resolve)
//   --snapshot_interval=S  snapshot at most every S seconds per session
//                    (default 30; 0 disables the timer trigger)
//   --snapshot_every=N     snapshot after N commands per session
//                    (default 1024; 0 disables the count trigger)
//
// On shutdown the final MetricsRegistry dump goes to stdout, so a scripted
// run captures per-command latency, queue depth, coalesce ratio, and shed
// counts without scraping /metrics. Traces are served live at
// GET /trace?last=N (Chrome trace-event JSON; &format=text for a tree).

#include <csignal>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "core/io.h"
#include "durability/recovery.h"
#include "serve/server.h"
#include "util/logging.h"

using namespace savg;

namespace {

ServeServer* g_server = nullptr;

void HandleSignal(int) {
  if (g_server != nullptr) g_server->Shutdown();
}

int Usage() {
  std::cerr
      << "usage: svgic_serverd <instance.tsv> [--port=P] [--sessions=K]\n"
         "                     [--workers=W] [--queue-depth=D]\n"
         "                     [--no-coalesce] [--seed=S]\n"
         "                     [--trace_sample=N] [--slow_ms=T]\n"
         "                     [--trace_buffer=B] [--slow_log=PATH]\n"
         "                     [--metrics_interval=MS]\n"
         "                     [--metrics_windows=N] [--verify_sample=N]\n"
         "                     [--data_dir=DIR] [--fsync_policy=P]\n"
         "                     [--snapshot_interval=S] "
         "[--snapshot_every=N]\n";
  return 2;
}

/// Strict long parse for --flag=value (a typo must not silently change
/// the serving configuration).
long ParseLong(const char* flag, const char* value) {
  char* end = nullptr;
  const long parsed = std::strtol(value, &end, 10);
  if (end == value || *end != '\0' || parsed < 0) {
    std::cerr << flag << " expects a non-negative integer, got \"" << value
              << "\"\n";
    std::exit(2);
  }
  return parsed;
}

}  // namespace

int main(int argc, char** argv) {
  std::string instance_path;
  ServerOptions options;
  int num_sessions = 1;
  uint64_t seed = 7;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--port=", 7) == 0) {
      options.port = static_cast<int>(ParseLong("--port", arg + 7));
    } else if (std::strncmp(arg, "--sessions=", 11) == 0) {
      num_sessions = static_cast<int>(ParseLong("--sessions", arg + 11));
    } else if (std::strncmp(arg, "--workers=", 10) == 0) {
      options.num_workers =
          static_cast<int>(ParseLong("--workers", arg + 10));
    } else if (std::strncmp(arg, "--queue-depth=", 14) == 0) {
      options.admission.max_queue_depth =
          ParseLong("--queue-depth", arg + 14);
    } else if (std::strcmp(arg, "--no-coalesce") == 0) {
      options.coalesce_resolves = false;
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      seed = static_cast<uint64_t>(ParseLong("--seed", arg + 7));
    } else if (std::strncmp(arg, "--trace_sample=", 15) == 0) {
      options.trace.sample_every =
          static_cast<int>(ParseLong("--trace_sample", arg + 15));
    } else if (std::strncmp(arg, "--slow_ms=", 10) == 0) {
      options.trace.slow_seconds =
          static_cast<double>(ParseLong("--slow_ms", arg + 10)) / 1000.0;
    } else if (std::strncmp(arg, "--trace_buffer=", 15) == 0) {
      options.trace.buffer_traces =
          static_cast<size_t>(ParseLong("--trace_buffer", arg + 15));
    } else if (std::strncmp(arg, "--slow_log=", 11) == 0) {
      options.trace.slow_log_path = arg + 11;
    } else if (std::strncmp(arg, "--metrics_interval=", 19) == 0) {
      options.metrics_interval_seconds =
          static_cast<double>(ParseLong("--metrics_interval", arg + 19)) /
          1000.0;
    } else if (std::strncmp(arg, "--metrics_windows=", 18) == 0) {
      options.metrics_windows =
          static_cast<int>(ParseLong("--metrics_windows", arg + 18));
    } else if (std::strncmp(arg, "--verify_sample=", 16) == 0) {
      options.verify.sample_every =
          static_cast<int>(ParseLong("--verify_sample", arg + 16));
    } else if (std::strncmp(arg, "--data_dir=", 11) == 0) {
      options.durability.data_dir = arg + 11;
    } else if (std::strncmp(arg, "--fsync_policy=", 15) == 0) {
      auto policy = ParseFsyncPolicy(arg + 15);
      if (!policy.ok()) {
        std::cerr << policy.status() << "\n";
        return 2;
      }
      options.durability.fsync = *policy;
    } else if (std::strncmp(arg, "--snapshot_interval=", 20) == 0) {
      options.durability.snapshot_interval_seconds = static_cast<double>(
          ParseLong("--snapshot_interval", arg + 20));
    } else if (std::strncmp(arg, "--snapshot_every=", 17) == 0) {
      options.durability.snapshot_every_commands =
          static_cast<int>(ParseLong("--snapshot_every", arg + 17));
    } else if (arg[0] == '-') {
      std::cerr << "unknown flag " << arg << "\n";
      return Usage();
    } else if (instance_path.empty()) {
      instance_path = arg;
    } else {
      return Usage();
    }
  }
  if (instance_path.empty() || num_sessions < 1) return Usage();

  auto inst = ReadInstanceFromFile(instance_path);
  if (!inst.ok()) {
    std::cerr << inst.status() << "\n";
    return 1;
  }

  // The serve path logs structured key=value lines (serve.listen,
  // serve.shed, serve.slow, serve.shutdown) at info level.
  SetLogLevel(LogLevel::kInfo);
  ServeServer server(options);
  if (!options.durability.data_dir.empty() &&
      RecoveryManager::HasSessions(options.durability.data_dir)) {
    // A previous run (crashed or graceful) left session state behind:
    // recover it instead of creating fresh sessions. SessionOptions must
    // match the original run's flags; the per-session RNG state comes
    // from the snapshot, so the seed flag is irrelevant here.
    SessionOptions session_options;
    session_options.seed = seed;
    auto recovered = server.RecoverSessions(session_options);
    if (!recovered.ok()) {
      std::cerr << "recovery failed: " << recovered.status() << "\n";
      return 1;
    }
    std::cout << "recovered " << *recovered << " sessions from "
              << options.durability.data_dir << std::endl;
  } else {
    for (int i = 0; i < num_sessions; ++i) {
      SessionOptions session_options;
      session_options.seed = seed + static_cast<uint64_t>(i);
      server.CreateSession(*inst, session_options);
    }
  }
  Status started = server.Start();
  if (!started.ok()) {
    std::cerr << started << "\n";
    return 1;
  }
  g_server = &server;
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  std::cout << "listening on 127.0.0.1:" << server.port() << " ("
            << num_sessions << " sessions over " << inst->DebugString()
            << ", queue depth " << options.admission.max_queue_depth
            << ", coalescing "
            << (options.coalesce_resolves ? "on" : "off") << ")"
            << std::endl;

  server.WaitForShutdown();
  server.Shutdown();
  g_server = nullptr;
  std::cout << server.metrics().TextDump();
  return 0;
}
