// Quickstart: the paper's running example (Tables 1 and 6-9) end to end.
//
// Builds the 4-user / 5-item digital-photography store of Figure 1, solves
// the SVGIC relaxation, rounds it with AVG and AVG-D, compares against the
// baseline approaches, and prints the resulting SAVG 3-configurations.
//
//   ./examples/quickstart

#include <cstdio>
#include <iostream>

#include "baselines/brute_force.h"
#include "baselines/fmg.h"
#include "baselines/per.h"
#include "core/avg.h"
#include "core/avg_d.h"
#include "core/lp_formulation.h"
#include "core/objective.h"
#include "core/problem.h"
#include "util/table.h"

using namespace savg;

namespace {

const char* kUserNames[] = {"Alice", "Bob", "Charlie", "Dave"};
const char* kItemNames[] = {"tripod", "DSLR", "PSD", "memory-card",
                            "SP-camera"};

/// Builds the Table 1 instance (see tests/paper_example.h for the data).
SvgicInstance MakeStore() {
  SocialGraph g(4);
  const EdgeId ab = *g.AddEdge(0, 1), ac = *g.AddEdge(0, 2),
               ad = *g.AddEdge(0, 3), ba = *g.AddEdge(1, 0),
               bc = *g.AddEdge(1, 2), ca = *g.AddEdge(2, 0),
               cb = *g.AddEdge(2, 1), da = *g.AddEdge(3, 0);
  SvgicInstance inst(g, 5, 3, 0.5);
  const double p[4][5] = {{0.8, 0.85, 0.1, 0.05, 1.0},
                          {0.7, 1.0, 0.15, 0.2, 0.1},
                          {0.0, 0.15, 0.7, 0.6, 0.1},
                          {0.1, 0.0, 0.3, 1.0, 0.95}};
  for (UserId u = 0; u < 4; ++u) {
    for (ItemId c = 0; c < 5; ++c) inst.set_p(u, c, p[u][c]);
  }
  const double tau[8][5] = {{0.2, 0.05, 0.1, 0.0, 0.05},
                            {0.0, 0.05, 0.1, 0.0, 0.3},
                            {0.2, 0.05, 0.1, 0.05, 0.2},
                            {0.2, 0.05, 0.1, 0.05, 0.05},
                            {0.0, 0.05, 0.1, 0.2, 0.0},
                            {0.0, 0.05, 0.1, 0.05, 0.3},
                            {0.1, 0.05, 0.1, 0.2, 0.05},
                            {0.3, 0.05, 0.05, 0.0, 0.25}};
  const EdgeId edges[8] = {ab, ac, ad, ba, bc, ca, cb, da};
  for (int e = 0; e < 8; ++e) {
    for (ItemId c = 0; c < 5; ++c) {
      if (tau[e][c] > 0) inst.set_tau(edges[e], c, tau[e][c]);
    }
  }
  inst.FinalizePairs();
  return inst;
}

void PrintConfig(const char* title, const SvgicInstance& inst,
                 const Configuration& config) {
  Table t({"user", "slot 1", "slot 2", "slot 3"});
  for (UserId u = 0; u < 4; ++u) {
    t.NewRow().Add(kUserNames[u]);
    for (SlotId s = 0; s < 3; ++s) t.Add(kItemNames[config.At(u, s)]);
  }
  t.Print(std::string(title) + "  (scaled total " +
          FormatDouble(Evaluate(inst, config).ScaledTotal(), 2) + ")");
}

}  // namespace

int main() {
  SvgicInstance store = MakeStore();
  std::cout << "SVGIC quickstart on " << store.DebugString() << "\n";

  // 1. Solve the LP relaxation (Section 4.1).
  auto frac = SolveRelaxation(store);
  if (!frac.ok()) {
    std::cerr << "relaxation failed: " << frac.status() << "\n";
    return 1;
  }
  std::printf("LP relaxation bound: %.3f (exact=%s)\n", frac->lp_objective,
              frac->exact ? "yes" : "no");

  // 2. Randomized AVG (best of 10 runs, Corollary 4.1).
  AvgOptions avg_opt;
  avg_opt.seed = 2020;
  auto avg = RunAvgBest(store, *frac, 10, avg_opt);
  PrintConfig("AVG (randomized CSF rounding)", store, avg->config);

  // 3. Deterministic AVG-D.
  auto avg_d = RunAvgD(store, *frac);
  PrintConfig("AVG-D (derandomized, r = 1/4)", store, avg_d->config);

  // 4. Baselines: personalized top-k and whole-group bundle.
  auto per = RunPersonalizedTopK(store);
  PrintConfig("PER (personalized top-3)", store, *per);
  FmgOptions group_opt;
  group_opt.fairness_weight = 0.0;
  auto group = RunFmg(store, group_opt);
  PrintConfig("Group (one bundle for everyone)", store, *group);

  // 5. The exact optimum for reference (tiny instance).
  auto opt = SolveBruteForce(store);
  PrintConfig("OPT (exhaustive search)", store, opt->config);

  std::cout << "\nPaper's Example 5 totals: AVG 9.75, AVG-D 9.85, "
               "personalized 8.25, group 8.35, OPT 10.35.\n";
  return 0;
}
