// A full VR-mall scenario: a Timik-like shopping group browsing a store
// with popular hub items, run through the complete pipeline:
// dataset generation -> relaxation -> AVG-D -> metrics -> Section 5
// extensions (commodity values, slot significance, multi-view display,
// subgroup-change smoothing).
//
//   ./examples/vr_mall_scenario [num_users] [num_items] [num_slots]

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "core/avg_d.h"
#include "core/extensions.h"
#include "core/lp_formulation.h"
#include "core/objective.h"
#include "datagen/datasets.h"
#include "metrics/metrics.h"
#include "util/table.h"

using namespace savg;

int main(int argc, char** argv) {
  DatasetParams params;
  params.kind = DatasetKind::kTimik;
  params.num_users = argc > 1 ? std::atoi(argv[1]) : 40;
  params.num_items = argc > 2 ? std::atoi(argv[2]) : 400;
  params.num_slots = argc > 3 ? std::atoi(argv[3]) : 10;
  params.seed = 7;

  auto instance = GenerateDataset(params);
  if (!instance.ok()) {
    std::cerr << "dataset generation failed: " << instance.status() << "\n";
    return 1;
  }
  std::cout << "Generated " << instance->DebugString() << ", density "
            << FormatDouble(instance->graph().UndirectedDensity(), 3)
            << "\n";

  auto frac = SolveRelaxation(*instance);
  if (!frac.ok()) {
    std::cerr << "relaxation failed: " << frac.status() << "\n";
    return 1;
  }
  std::printf("Relaxation bound %.2f (%s, %.3fs)\n", frac->lp_objective,
              frac->exact ? "simplex" : "subgradient", frac->solve_seconds);

  auto result = RunAvgD(*instance, *frac);
  if (!result.ok()) {
    std::cerr << "AVG-D failed: " << result.status() << "\n";
    return 1;
  }
  const ObjectiveBreakdown obj = Evaluate(*instance, result->config);
  const SubgroupMetrics sm = ComputeSubgroupMetrics(*instance, result->config);
  Table t({"metric", "value"});
  t.NewRow().Add("scaled total").Add(obj.ScaledTotal(), 2);
  t.NewRow().Add("preference part").Add(obj.preference, 2);
  t.NewRow().Add("social part").Add(obj.social_direct, 2);
  t.NewRow().Add("Intra%").Add(FormatPercent(sm.intra_fraction));
  t.NewRow().Add("Co-display%").Add(FormatPercent(sm.co_display_rate));
  t.NewRow().Add("Alone%").Add(FormatPercent(sm.alone_rate));
  t.NewRow().Add("norm. subgroup density").Add(sm.normalized_density, 2);
  t.Print("AVG-D configuration");

  // --- Extension A: commodity values (maximize profit). -----------------
  std::vector<float> prices(params.num_items);
  Rng rng(99);
  for (float& p : prices) p = static_cast<float>(rng.Uniform(0.2, 3.0));
  instance->set_commodity_values(prices);
  auto folded = FoldCommodityValues(*instance);
  auto frac_profit = SolveRelaxation(*folded);
  auto profit_result = RunAvgD(*folded, *frac_profit);
  EvaluateOptions weighted;
  weighted.use_extension_weights = true;
  std::printf(
      "\nCommodity-aware AVG-D profit: %.2f (taste-only config would earn "
      "%.2f)\n",
      Evaluate(*instance, profit_result->config, weighted).Total(),
      Evaluate(*instance, result->config, weighted).Total());

  // --- Extension B: slot significance (center of aisle is 9x). ----------
  std::vector<float> gamma(params.num_slots, 1.0f);
  gamma[params.num_slots / 2] = 9.0f;  // center slot
  if (params.num_slots > 1) gamma[params.num_slots / 2 - 1] = 3.0f;
  instance->set_slot_weights(gamma);
  const Configuration reordered =
      OptimizeSlotOrder(*instance, result->config);
  std::printf("Slot-weighted utility: %.2f -> %.2f after reordering\n",
              Evaluate(*instance, result->config, weighted).Total(),
              Evaluate(*instance, reordered, weighted).Total());

  // --- Extension C: multi-view display with beta = 3. --------------------
  const MultiViewConfig mv = ExtendToMultiView(*instance, result->config, 3);
  std::printf("Multi-view (beta=3) scaled utility: %.2f (primary-only %.2f)\n",
              EvaluateMultiView(*instance, mv), obj.ScaledTotal());

  // --- Extension E: smooth subgroup changes. -----------------------------
  const int before = SubgroupChangeEditDistance(*instance, result->config);
  const Configuration smooth =
      MinimizeSubgroupChange(*instance, result->config);
  std::printf("Subgroup-change edit distance: %d -> %d (utility unchanged)\n",
              before, SubgroupChangeEditDistance(*instance, smooth));
  return 0;
}
