// Figure 6: total SAVG utility across the three dataset emulators
// (Timik / Epinions / Yelp) at the paper's default scale, with the
// personal/social split per algorithm.
//
// Expected shapes: AVG/AVG-D win everywhere; Epinions' sparse trust network
// yields lower social utility (PER nearly competitive there); Yelp's
// diversified tastes crush the single-bundle FMG.

#include "bench_util.h"

namespace savg {
namespace {

void PrintTables() {
  RunnerConfig config;
  config.relaxation.method = RelaxationMethod::kSubgradient;
  config.avg_repeats = 3;
  config.sdp.diversity_weight = 0.0;
  for (DatasetKind kind :
       {DatasetKind::kTimik, DatasetKind::kEpinions, DatasetKind::kYelp}) {
    DatasetParams params;
    params.kind = kind;
    params.num_users = 125;
    params.num_items = 10000;
    params.num_slots = 50;
    params.seed = 6;
    auto rows =
        RunComparisonNamed(params, /*samples=*/2,
                           benchutil::AlgosOrDefault(false), config,
                           benchutil::WorkerOverride());
    if (!rows.ok()) {
      std::cerr << rows.status() << "\n";
      continue;
    }
    Table t({"algorithm", "total", "personal part", "social part"});
    for (const AggregateRow& row : *rows) {
      t.NewRow()
          .Add(row.name)
          .Add(row.mean_scaled_total, 1)
          .Add(row.mean_preference, 1)
          .Add(row.mean_social, 1);
    }
    t.Print(std::string("Fig 6: ") + DatasetKindName(kind) +
            " (n=125, m=10000, k=50)");
  }
}

void BM_DatasetGeneration(benchmark::State& state) {
  DatasetParams params;
  params.kind = static_cast<DatasetKind>(state.range(0));
  params.num_users = 125;
  params.num_items = 10000;
  params.num_slots = 50;
  params.seed = 6;
  for (auto _ : state) {
    auto inst = GenerateDataset(params);
    benchmark::DoNotOptimize(inst);
  }
}
BENCHMARK(BM_DatasetGeneration)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace savg

SAVG_BENCH_MAIN(savg::PrintTables)
