// Shared helpers for the figure/table reproduction binaries.
//
// Every binary in bench/ does two things:
//  1. prints the paper-style table(s)/series for its figure (the
//     reproduction output recorded in EXPERIMENTS.md), and
//  2. registers a couple of google-benchmark microbenchmarks of the code
//     paths the figure exercises.
//
// SAVG_BENCH_MAIN(fn) wires the two together. Algorithms are addressed by
// solver-registry name; every binary accepts `--algos=avg,grf` (and
// `--workers=N`) to override a figure's default algorithm list, so one
// build serves arbitrary slices of the experiment matrix.

#pragma once

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "experiments/runner.h"
#include "solvers/solver_registry.h"
#include "util/logging.h"
#include "util/table.h"

namespace savg {
namespace benchutil {

/// One x-axis point of a sweep: a label plus the dataset parameters.
struct SweepPoint {
  std::string label;
  DatasetParams params;
};

/// --algos= override shared by the whole binary (empty = use the figure's
/// default list).
inline std::vector<std::string>& AlgoOverride() {
  static std::vector<std::string> override_names;
  return override_names;
}

/// --workers= override for the batch engine (0 = all cores).
inline int& WorkerOverride() {
  static int workers = 0;
  return workers;
}

/// --json= output path (empty = no JSON metrics file).
inline std::string& JsonPath() {
  static std::string path;
  return path;
}

/// --shards= override for the sharded solve paths (0 = plan default).
inline int& ShardsOverride() {
  static int shards = 0;
  return shards;
}

/// --shard-gap= override for the dual-coordination gap tolerance
/// (< 0 = option default).
inline double& ShardGapOverride() {
  static double gap = -1.0;
  return gap;
}

/// Applies the --shards=/--shard-gap= overrides to a ShardSolveOptions.
inline void ApplyShardOverrides(ShardSolveOptions* options) {
  if (ShardsOverride() > 0) options->plan.num_shards = ShardsOverride();
  if (ShardGapOverride() >= 0.0) options->gap_tolerance = ShardGapOverride();
}

/// One perf-smoke metric: a stable name and its wall-clock seconds.
struct JsonMetric {
  std::string name;
  double seconds = 0.0;
};

inline std::vector<JsonMetric>& JsonMetrics() {
  static std::vector<JsonMetric> metrics;
  return metrics;
}

/// Records a metric for the --json perf artifact (no-op without --json=).
inline void RecordMetric(const std::string& name, double seconds) {
  if (!JsonPath().empty()) JsonMetrics().push_back({name, seconds});
}

/// Writes {"metrics": [{"name": ..., "seconds": ...}, ...]} to the --json=
/// path. Called by SAVG_BENCH_MAIN after the reproduction tables printed;
/// CI uploads the file and gates on regressions vs a checked-in baseline
/// (tools/perf_compare.py).
inline void WriteJsonMetrics() {
  if (JsonPath().empty()) return;
  std::ofstream out(JsonPath());
  if (!out) {
    std::cerr << "cannot write --json file " << JsonPath() << "\n";
    std::exit(2);
  }
  out << "{\n  \"metrics\": [\n";
  const auto& metrics = JsonMetrics();
  for (size_t i = 0; i < metrics.size(); ++i) {
    std::string name = metrics[i].name;
    for (char& ch : name) {
      if (ch == '"' || ch == '\\') ch = '\'';
    }
    out << "    {\"name\": \"" << name << "\", \"seconds\": "
        << metrics[i].seconds << (i + 1 < metrics.size() ? "},\n" : "}\n");
  }
  out << "  ]\n}\n";
}

/// Splits "avg,grf" and resolves each name against the registry (so typos
/// fail loudly, with the known names listed).
inline Result<std::vector<std::string>> ParseAlgoList(
    const std::string& csv) {
  std::vector<std::string> names;
  std::istringstream stream(csv);
  std::string token;
  while (std::getline(stream, token, ',')) {
    if (token.empty()) continue;
    auto solver = SolverRegistry::Global().Find(token);
    if (!solver.ok()) return solver.status();
    names.push_back((*solver)->Name());
  }
  if (names.empty()) {
    return Status::InvalidArgument("--algos list is empty");
  }
  return names;
}

/// Strips --algos=/--workers= from argv (before google-benchmark sees
/// them) and records the overrides. Exits on malformed values.
inline void ConsumeFlags(int* argc, char** argv) {
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strncmp(argv[i], "--algos=", 8) == 0) {
      auto parsed = ParseAlgoList(argv[i] + 8);
      if (!parsed.ok()) {
        std::cerr << parsed.status() << "\n";
        std::exit(2);
      }
      AlgoOverride() = std::move(parsed).value();
    } else if (std::strncmp(argv[i], "--workers=", 10) == 0) {
      const char* value = argv[i] + 10;
      char* end = nullptr;
      const long workers = std::strtol(value, &end, 10);
      if (end == value || *end != '\0') {
        std::cerr << "--workers expects an integer, got \"" << value
                  << "\"\n";
        std::exit(2);
      }
      WorkerOverride() = static_cast<int>(workers);
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      if (argv[i][7] == '\0') {
        std::cerr << "--json expects a file path\n";
        std::exit(2);
      }
      JsonPath() = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--shards=", 9) == 0) {
      const char* value = argv[i] + 9;
      char* end = nullptr;
      const long shards = std::strtol(value, &end, 10);
      if (end == value || *end != '\0' || shards < 0) {
        std::cerr << "--shards expects a non-negative integer, got \""
                  << value << "\"\n";
        std::exit(2);
      }
      ShardsOverride() = static_cast<int>(shards);
    } else if (std::strncmp(argv[i], "--shard-gap=", 12) == 0) {
      const char* value = argv[i] + 12;
      char* end = nullptr;
      const double gap = std::strtod(value, &end);
      if (end == value || *end != '\0' || gap < 0.0) {
        std::cerr << "--shard-gap expects a non-negative number, got \""
                  << value << "\"\n";
        std::exit(2);
      }
      ShardGapOverride() = gap;
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
}

/// The figure's default list, unless the user passed --algos=.
inline std::vector<std::string> AlgosOrDefault(
    std::vector<std::string> defaults) {
  return AlgoOverride().empty() ? std::move(defaults) : AlgoOverride();
}
inline std::vector<std::string> AlgosOrDefault(bool include_ip) {
  return AlgosOrDefault(AllAlgoNames(include_ip));
}

/// Runs `algos` over the sweep (averaging `samples` instances per point,
/// fanned out through the parallel batch engine) and prints two tables:
/// mean scaled SAVG utility and mean seconds. Returns the utility rows
/// (per point) for further analysis.
///
/// Timing caveat: with the default --workers=0 (all cores) the per-run
/// timers observe whatever contention the concurrent tasks create. Pass
/// --workers=1 when the execution-time table must be contention-free /
/// comparable to the sequential harness.
inline std::vector<std::vector<AggregateRow>> PrintSweep(
    const std::string& title, const std::string& x_name,
    const std::vector<SweepPoint>& points, int samples,
    const std::vector<std::string>& algos, const RunnerConfig& config) {
  std::vector<std::string> header = {x_name};
  for (const std::string& algo : algos) header.push_back(algo);
  Table utility(header);
  Table seconds(header);
  std::vector<std::vector<AggregateRow>> all_rows;
  // The previous point's relaxation bases warm-start the next point's
  // simplex solves (a lambda sweep keeps the LP shape; sweeps that change
  // the shape silently fall back to cold starts).
  SweepWarmStart warm;
  for (const SweepPoint& point : points) {
    Timer point_timer;
    auto rows = RunComparisonNamed(point.params, samples, algos, config,
                                   WorkerOverride(), &warm);
    RecordMetric(title + " | " + x_name + "=" + point.label,
                 point_timer.ElapsedSeconds());
    if (!rows.ok()) {
      std::cerr << "sweep point " << point.label
                << " failed: " << rows.status() << "\n";
      all_rows.emplace_back();
      continue;
    }
    utility.NewRow().Add(point.label);
    seconds.NewRow().Add(point.label);
    for (const AggregateRow& row : *rows) {
      utility.Add(row.mean_scaled_total, 2);
      seconds.Add(row.mean_seconds, 3);
    }
    all_rows.push_back(std::move(rows).value());
  }
  utility.Print(title + " — total SAVG utility");
  seconds.Print(title + " — execution time (s)");
  // Per-phase simplex time across the whole sweep: the data the ROADMAP's
  // partial-pricing question is decided from (pricing-heavy profiles
  // justify candidate lists; ftran/btran-heavy ones do not).
  RecordMetric(title + " | lp_pricing_seconds",
               warm.lp_stats.pricing_seconds);
  RecordMetric(title + " | lp_ratio_test_seconds",
               warm.lp_stats.ratio_test_seconds);
  RecordMetric(title + " | lp_ftran_seconds", warm.lp_stats.ftran_seconds);
  RecordMetric(title + " | lp_btran_seconds", warm.lp_stats.btran_seconds);
  RecordMetric(title + " | lp_factor_seconds", warm.lp_stats.factor_seconds);
  // Pivot-mix / candidate-list counters (PR 5): how much of the pricing
  // ran off the candidate list, and whether warm starts repaired dually.
  RecordMetric(title + " | lp_candidate_hits",
               static_cast<double>(warm.lp_stats.candidate_hits));
  RecordMetric(title + " | lp_full_pricing_scans",
               static_cast<double>(warm.lp_stats.full_pricing_scans));
  RecordMetric(title + " | lp_dual_pivots",
               static_cast<double>(warm.lp_stats.dual_pivots));
  // Engine-speed counters (PR 6): presolve reductions, eta-file state and
  // refactorization cadence — the observables of the adaptive
  // refactorization policy and the presolve pipeline.
  RecordMetric(title + " | lp_presolve_seconds",
               warm.lp_stats.presolve_seconds);
  RecordMetric(title + " | lp_presolve_cols_removed",
               static_cast<double>(warm.lp_stats.presolve_cols_removed));
  RecordMetric(title + " | lp_eta_count",
               static_cast<double>(warm.lp_stats.eta_count));
  RecordMetric(title + " | lp_eta_nonzeros",
               static_cast<double>(warm.lp_stats.eta_nonzeros));
  RecordMetric(title + " | lp_refactorizations",
               static_cast<double>(warm.lp_stats.refactorizations));
  return all_rows;
}

/// Fraction formatter for ratio columns.
inline std::string Ratio(double value, double base) {
  return base > 0 ? FormatDouble(value / base, 3) : std::string("-");
}

/// Basename of argv[0], used to namespace per-binary metrics.
inline std::string BinaryName(const char* argv0) {
  const std::string path = argv0 != nullptr ? argv0 : "bench";
  const size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

}  // namespace benchutil
}  // namespace savg

/// Prints the reproduction output (recording --json metrics), then runs
/// registered microbenchmarks.
#define SAVG_BENCH_MAIN(print_fn)                          \
  int main(int argc, char** argv) {                        \
    ::savg::benchutil::ConsumeFlags(&argc, argv);          \
    ::savg::Timer savg_bench_timer;                        \
    print_fn();                                            \
    ::savg::benchutil::RecordMetric(                       \
        ::savg::benchutil::BinaryName(argv[0]) + " | total_print_seconds", \
        savg_bench_timer.ElapsedSeconds());                \
    ::savg::benchutil::WriteJsonMetrics();                 \
    ::benchmark::Initialize(&argc, argv);                  \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    ::benchmark::RunSpecifiedBenchmarks();                 \
    ::benchmark::Shutdown();                               \
    return 0;                                              \
  }
