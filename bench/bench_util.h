// Shared helpers for the figure/table reproduction binaries.
//
// Every binary in bench/ does two things:
//  1. prints the paper-style table(s)/series for its figure (the
//     reproduction output recorded in EXPERIMENTS.md), and
//  2. registers a couple of google-benchmark microbenchmarks of the code
//     paths the figure exercises.
//
// SAVG_BENCH_MAIN(fn) wires the two together.

#pragma once

#include <benchmark/benchmark.h>

#include <iostream>
#include <string>
#include <vector>

#include "experiments/runner.h"
#include "util/table.h"

namespace savg {
namespace benchutil {

/// One x-axis point of a sweep: a label plus the dataset parameters.
struct SweepPoint {
  std::string label;
  DatasetParams params;
};

/// Runs `algos` over the sweep (averaging `samples` instances per point)
/// and prints two tables: mean scaled SAVG utility and mean seconds.
/// Returns the utility rows (per point) for further analysis.
inline std::vector<std::vector<AggregateRow>> PrintSweep(
    const std::string& title, const std::string& x_name,
    const std::vector<SweepPoint>& points, int samples,
    const std::vector<Algo>& algos, const RunnerConfig& config) {
  std::vector<std::string> header = {x_name};
  for (Algo algo : algos) header.push_back(AlgoName(algo));
  Table utility(header);
  Table seconds(header);
  std::vector<std::vector<AggregateRow>> all_rows;
  for (const SweepPoint& point : points) {
    auto rows = RunComparison(point.params, samples, algos, config);
    if (!rows.ok()) {
      std::cerr << "sweep point " << point.label
                << " failed: " << rows.status() << "\n";
      all_rows.emplace_back();
      continue;
    }
    utility.NewRow().Add(point.label);
    seconds.NewRow().Add(point.label);
    for (const AggregateRow& row : *rows) {
      utility.Add(row.mean_scaled_total, 2);
      seconds.Add(row.mean_seconds, 3);
    }
    all_rows.push_back(std::move(rows).value());
  }
  utility.Print(title + " — total SAVG utility");
  seconds.Print(title + " — execution time (s)");
  return all_rows;
}

/// Fraction formatter for ratio columns.
inline std::string Ratio(double value, double base) {
  return base > 0 ? FormatDouble(value / base, 3) : std::string("-");
}

}  // namespace benchutil
}  // namespace savg

/// Prints the reproduction output, then runs registered microbenchmarks.
#define SAVG_BENCH_MAIN(print_fn)                          \
  int main(int argc, char** argv) {                        \
    print_fn();                                            \
    ::benchmark::Initialize(&argc, argv);                  \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    ::benchmark::RunSpecifiedBenchmarks();                 \
    ::benchmark::Shutdown();                               \
    return 0;                                              \
  }
