// Figure 13: SVGIC-ST subgroup-size-constraint violations — total violating
// users over 10 sampled instances, for AVG-ST and the baselines with ("-P")
// and without ("-NP") the balanced pre-partitioning of Section 6.8.
//
// Expected shapes: AVG never violates (CSF locks full groups); PER never
// violates (singleton views, modulo accidentally shared top items);
// FMG-NP is worst (one group of n users per slot); "-P" cuts baseline
// violations sharply but not to zero (parts colliding on the same item).

#include "bench_util.h"

#include "baselines/fmg.h"
#include "baselines/grf.h"
#include "baselines/per.h"
#include "baselines/sdp.h"
#include "baselines/st_prepartition.h"
#include "core/avg_st.h"

namespace savg {
namespace {

void PrintDataset(DatasetKind kind, int n) {
  const int kInstances = 10;
  Table t({"M", "AVG", "PER", "FMG-NP", "FMG-P", "SDP-NP", "SDP-P",
           "GRF-NP", "GRF-P"});
  for (int cap : {3, 5, 8, 12}) {
    int64_t v_avg = 0, v_per = 0, v_fmg_np = 0, v_fmg_p = 0, v_sdp_np = 0,
            v_sdp_p = 0, v_grf_np = 0, v_grf_p = 0;
    for (int sample = 0; sample < kInstances; ++sample) {
      DatasetParams params;
      params.kind = kind;
      params.num_users = n;
      params.num_items = 60;
      params.num_slots = 5;
      params.seed = 140 + sample;
      auto inst = GenerateDataset(params);
      if (!inst.ok()) continue;

      StOptions st;
      st.size_cap = cap;
      st.avg.seed = sample;
      auto avg = RunAvgSt(*inst, st);
      if (avg.ok()) v_avg += SizeConstraintViolation(avg->config, cap);

      auto per = RunPersonalizedTopK(*inst);
      if (per.ok()) v_per += SizeConstraintViolation(*per, cap);

      auto fmg_np = RunFmg(*inst);
      if (fmg_np.ok()) v_fmg_np += SizeConstraintViolation(*fmg_np, cap);
      auto fmg_p = RunWithPrepartition(
          *inst, cap, sample,
          [](const SvgicInstance& sub) { return RunFmg(sub); });
      if (fmg_p.ok()) v_fmg_p += SizeConstraintViolation(*fmg_p, cap);

      auto sdp_np = RunSdp(*inst);
      if (sdp_np.ok()) v_sdp_np += SizeConstraintViolation(*sdp_np, cap);
      auto sdp_p = RunWithPrepartition(
          *inst, cap, sample,
          [](const SvgicInstance& sub) { return RunSdp(sub); });
      if (sdp_p.ok()) v_sdp_p += SizeConstraintViolation(*sdp_p, cap);

      auto grf_np = RunGrf(*inst);
      if (grf_np.ok()) v_grf_np += SizeConstraintViolation(*grf_np, cap);
      auto grf_p = RunWithPrepartition(
          *inst, cap, sample,
          [](const SvgicInstance& sub) { return RunGrf(sub); });
      if (grf_p.ok()) v_grf_p += SizeConstraintViolation(*grf_p, cap);
    }
    t.NewRow()
        .Add(static_cast<int64_t>(cap))
        .Add(v_avg)
        .Add(v_per)
        .Add(v_fmg_np)
        .Add(v_fmg_p)
        .Add(v_sdp_np)
        .Add(v_sdp_p)
        .Add(v_grf_np)
        .Add(v_grf_p);
  }
  t.Print(std::string("Fig 13: total size-cap violations over 10 instances, ") +
          DatasetKindName(kind) + " n=" + std::to_string(n));
}

void PrintTables() {
  PrintDataset(DatasetKind::kTimik, 25);
  PrintDataset(DatasetKind::kEpinions, 15);
}

void BM_AvgStRounding(benchmark::State& state) {
  DatasetParams params;
  params.kind = DatasetKind::kTimik;
  params.num_users = 25;
  params.num_items = 60;
  params.num_slots = 5;
  params.seed = 140;
  auto inst = GenerateDataset(params);
  StOptions st;
  st.size_cap = static_cast<int>(state.range(0));
  auto frac = SolveStRelaxation(*inst, st);
  uint64_t seed = 0;
  for (auto _ : state) {
    AvgOptions avg;
    avg.seed = ++seed;
    avg.size_cap = st.size_cap;
    auto result = RunAvg(*inst, *frac, avg);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_AvgStRounding)->Arg(3)->Arg(8)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace savg

SAVG_BENCH_MAIN(savg::PrintTables)
