// Online serving: replays a synthetic mutation stream through a live
// Session (src/online/) and reports re-solve latency percentiles plus the
// incremental-vs-cold pivot ratio the warm-started serving path buys.
//
// Two replays of the identical event stream:
//  * incremental — Resolve() projects the cached basis across the mutation
//    and re-rounds only the dirty users (the serving path),
//  * cold        — Resolve(force_cold) re-solves and re-rounds everything
//    (the reference a from-scratch server would pay per resolve).
//
// The paired "(incremental)" / "(cold)" --json metrics feed the
// machine-speed-independent CI gate (tools/perf_compare.py
// --cold-reference): the incremental path must stay well under the cold
// path measured in the same run, so hosted-runner speed never flaps the
// gate. A SessionManager section measures multi-session throughput over
// the shared worker pool.

#include <vector>

#include "bench_util.h"
#include "online/event_log.h"
#include "online/session.h"
#include "online/session_manager.h"
#include "util/stats.h"

namespace savg {
namespace {

DatasetParams ServingParams(uint64_t seed) {
  DatasetParams params;
  params.kind = DatasetKind::kTimik;
  params.num_users = 20;
  params.num_items = 40;
  params.num_slots = 3;
  params.lambda = 0.5;
  params.seed = seed;
  params.universe_users = 4 * params.num_users + 20;
  return params;
}

EventStreamParams ServingStream(uint64_t seed) {
  EventStreamParams stream;
  stream.num_mutations = 120;
  stream.resolve_every = 4;
  stream.seed = seed;
  return stream;
}

struct ReplayStats {
  std::vector<double> resolve_seconds;
  /// Served utility after each resolve, aligned across replays of the
  /// same stream (the drift comparison pairs these up).
  std::vector<double> resolve_totals;
  int64_t pivots = 0;
  int64_t phase1_pivots = 0;
  int incremental = 0;
  int cold = 0;
  int cold_fallback = 0;
  int full_rerounds = 0;
  int drift_rerounds = 0;
  /// Min kept-unit utility share observed (1.0 when the policy is off).
  double min_kept_share = 1.0;
  double last_total = 0.0;

  double TotalSeconds() const {
    double total = 0.0;
    for (double s : resolve_seconds) total += s;
    return total;
  }
};

/// Mean relative utility shortfall vs a reference replay of the same
/// stream (how much rounding drift the incremental path accumulates).
double MeanDrift(const ReplayStats& stats, const ReplayStats& reference) {
  const size_t n =
      std::min(stats.resolve_totals.size(), reference.resolve_totals.size());
  if (n == 0) return 0.0;
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) {
    if (reference.resolve_totals[i] > 0.0) {
      acc += (reference.resolve_totals[i] - stats.resolve_totals[i]) /
             reference.resolve_totals[i];
    }
  }
  return acc / static_cast<double>(n);
}

/// Replays `log` through one session; `force_cold` turns every resolve
/// into the from-scratch reference. The two re-round policies
/// (fixed-period and drift-threshold) are both exposed so the drift table
/// can compare them on the identical stream.
ReplayStats Replay(const SvgicInstance& base, const EventLog& log,
                   bool force_cold, int full_reround_period = 0,
                   double reround_utility_threshold = 0.0) {
  SessionOptions options;
  options.seed = 7;
  options.full_reround_period = full_reround_period;
  options.reround_utility_threshold = reround_utility_threshold;
  Session session(base, options);
  ReplayStats stats;
  for (const SessionCommand& event : log) {
    if (event.type != CommandType::kResolve) {
      auto applied = session.Apply(event);
      if (!applied.ok()) {
        std::cerr << "event failed: " << applied.status() << "\n";
      }
      continue;
    }
    auto report = session.Resolve(force_cold);
    if (!report.ok()) {
      std::cerr << "resolve failed: " << report.status() << "\n";
      continue;
    }
    stats.resolve_seconds.push_back(report->total_seconds);
    stats.resolve_totals.push_back(report->scaled_total);
    stats.pivots += report->pivots;
    stats.phase1_pivots += report->phase1_pivots;
    if (report->full_reround) ++stats.full_rerounds;
    if (report->drift_reround) ++stats.drift_rerounds;
    stats.min_kept_share =
        std::min(stats.min_kept_share, report->kept_utility_share);
    switch (report->path) {
      case ResolvePath::kIncremental:
        ++stats.incremental;
        break;
      case ResolvePath::kCold:
        ++stats.cold;
        break;
      case ResolvePath::kColdFallback:
        ++stats.cold_fallback;
        break;
    }
    stats.last_total = report->scaled_total;
  }
  return stats;
}

void PrintReplayRow(Table* t, const std::string& name,
                    const ReplayStats& stats) {
  t->NewRow()
      .Add(name)
      .Add(static_cast<int64_t>(stats.resolve_seconds.size()))
      .Add(stats.pivots)
      .Add(FormatDouble(Percentile(stats.resolve_seconds, 50) * 1000, 2))
      .Add(FormatDouble(Percentile(stats.resolve_seconds, 99) * 1000, 2))
      .Add(static_cast<int64_t>(stats.incremental))
      .Add(static_cast<int64_t>(stats.cold + stats.cold_fallback))
      .Add(FormatDouble(stats.last_total, 2));
}

void PrintTables() {
  auto inst = GenerateDataset(ServingParams(17));
  if (!inst.ok()) {
    std::cerr << inst.status() << "\n";
    return;
  }
  const EventLog log = GenerateEventStream(*inst, ServingStream(5));

  Timer incr_timer;
  const ReplayStats incr = Replay(*inst, log, /*force_cold=*/false);
  const double incr_seconds = incr_timer.ElapsedSeconds();
  Timer cold_timer;
  const ReplayStats cold = Replay(*inst, log, /*force_cold=*/true);
  const double cold_seconds = cold_timer.ElapsedSeconds();
  // Periodic full re-round (every 4 resolves): bounds the rounding drift
  // the incremental path accumulates while keeping the warm LP.
  const ReplayStats reround =
      Replay(*inst, log, /*force_cold=*/false, /*full_reround_period=*/4);
  // Drift-triggered full re-round: fires exactly when the fresh LP stops
  // backing the kept units, instead of on a fixed clock.
  constexpr double kShareThreshold = 0.97;
  const ReplayStats drift_trig =
      Replay(*inst, log, /*force_cold=*/false, /*full_reround_period=*/0,
             /*reround_utility_threshold=*/kShareThreshold);

  Table t({"path", "resolves", "pivots", "p50 (ms)", "p99 (ms)",
           "incremental", "cold", "final utility"});
  PrintReplayRow(&t, "incremental", incr);
  PrintReplayRow(&t, "incremental+reround", reround);
  PrintReplayRow(&t, "incremental+drift-trigger", drift_trig);
  PrintReplayRow(&t, "cold", cold);
  t.Print("Online sessions: " + std::to_string(log.size()) +
          "-event stream (n=20, m=40, k=3)");
  std::cout << "incremental/cold pivot ratio: "
            << benchutil::Ratio(static_cast<double>(incr.pivots),
                                static_cast<double>(cold.pivots))
            << " (phase-1 " << incr.phase1_pivots << " vs "
            << cold.phase1_pivots << ")\n";
  const double drift_plain = MeanDrift(incr, cold);
  const double drift_reround = MeanDrift(reround, cold);
  const double drift_threshold = MeanDrift(drift_trig, cold);
  std::cout << "rounding drift vs cold replay: "
            << FormatPercent(drift_plain) << " without full re-round, "
            << FormatPercent(drift_reround) << " with period 4 ("
            << reround.full_rerounds << " full re-rounds), "
            << FormatPercent(drift_threshold) << " with share threshold "
            << kShareThreshold << " (" << drift_trig.drift_rerounds
            << " drift-triggered re-rounds, min share "
            << FormatDouble(drift_trig.min_kept_share, 2) << ")\n\n";

  benchutil::RecordMetric("online sessions | stream replay (incremental)",
                          incr_seconds);
  benchutil::RecordMetric("online sessions | stream replay (cold)",
                          cold_seconds);
  benchutil::RecordMetric("online sessions | p50 resolve (incremental)",
                          Percentile(incr.resolve_seconds, 50));
  benchutil::RecordMetric("online sessions | p50 resolve (cold)",
                          Percentile(cold.resolve_seconds, 50));
  // Deliberately NOT an "(incremental)"/"(cold)" gate pair: one all-dirty
  // lambda event dominates both tails, so their ratio is ~1 and would only
  // add gate noise. Recorded for the artifact/baseline comparisons.
  benchutil::RecordMetric("online sessions | p99 resolve - incremental",
                          Percentile(incr.resolve_seconds, 99));
  benchutil::RecordMetric("online sessions | p99 resolve - cold",
                          Percentile(cold.resolve_seconds, 99));
  // Which resolve path ran, and the drift numbers, land in the artifact so
  // regressions in the fallback heuristic (cold_fraction_threshold) or in
  // rounding drift are visible from CI runs alone. Counts/fractions, not
  // seconds — never part of a timing gate.
  benchutil::RecordMetric("online sessions | path count - incremental",
                          static_cast<double>(incr.incremental));
  benchutil::RecordMetric("online sessions | path count - cold fallback",
                          static_cast<double>(incr.cold_fallback));
  benchutil::RecordMetric("online sessions | path count - cold",
                          static_cast<double>(incr.cold));
  benchutil::RecordMetric("online sessions | drift without reround",
                          drift_plain);
  benchutil::RecordMetric("online sessions | drift with reround period 4",
                          drift_reround);
  benchutil::RecordMetric("online sessions | drift with share threshold",
                          drift_threshold);
  benchutil::RecordMetric("online sessions | drift-triggered rerounds",
                          static_cast<double>(drift_trig.drift_rerounds));

  // Multi-session throughput: distinct sessions replay concurrently over
  // the shared pool; per-session serialization keeps each replay
  // bit-identical to its serial run.
  const int kSessions = 6;
  Timer manager_timer;
  SessionManager manager(benchutil::WorkerOverride());
  std::vector<int> ids;
  std::vector<EventLog> logs;
  for (int i = 0; i < kSessions; ++i) {
    auto session_inst = GenerateDataset(ServingParams(40 + i));
    if (!session_inst.ok()) continue;
    logs.push_back(GenerateEventStream(*session_inst, ServingStream(50 + i)));
    SessionOptions options;
    options.seed = 70 + i;
    ids.push_back(manager.CreateSession(std::move(session_inst).value(),
                                        options));
  }
  int64_t submitted = 0;
  for (size_t i = 0; i < ids.size(); ++i) {
    for (const SessionEvent& event : logs[i]) {
      if (manager.Submit(ids[i], event).ok()) ++submitted;
    }
  }
  manager.Drain();
  const double manager_seconds = manager_timer.ElapsedSeconds();
  if (!manager.FirstError().ok()) {
    std::cerr << "manager error: " << manager.FirstError() << "\n";
  }
  std::vector<double> all_latencies;
  for (int id : ids) {
    for (const ResolveReport& report : manager.reports(id)) {
      all_latencies.push_back(report.total_seconds);
    }
  }
  Table m({"sessions", "events", "resolves", "wall (s)", "events/s",
           "p99 resolve (ms)"});
  m.NewRow()
      .Add(static_cast<int64_t>(ids.size()))
      .Add(submitted)
      .Add(static_cast<int64_t>(all_latencies.size()))
      .Add(FormatDouble(manager_seconds, 3))
      .Add(FormatDouble(static_cast<double>(submitted) / manager_seconds, 0))
      .Add(FormatDouble(Percentile(all_latencies, 99) * 1000, 2));
  m.Print("SessionManager: concurrent replay");
  benchutil::RecordMetric("online sessions | 6-session concurrent replay",
                          manager_seconds);
}

void BM_IncrementalResolve(benchmark::State& state) {
  auto inst = GenerateDataset(ServingParams(17));
  Session session(std::move(inst).value());
  if (!session.Resolve().ok()) state.SkipWithError("initial resolve failed");
  double value = 0.1;
  for (auto _ : state) {
    value = value < 0.9 ? value + 0.05 : 0.1;
    if (!session.Apply(MakePref(3, 5, value)).ok()) break;
    auto report = session.Resolve();
    if (!report.ok()) break;
    benchmark::DoNotOptimize(report->pivots);
  }
}
BENCHMARK(BM_IncrementalResolve)->Unit(benchmark::kMillisecond);

void BM_ColdResolve(benchmark::State& state) {
  auto inst = GenerateDataset(ServingParams(17));
  Session session(std::move(inst).value());
  if (!session.Resolve().ok()) state.SkipWithError("initial resolve failed");
  double value = 0.1;
  for (auto _ : state) {
    value = value < 0.9 ? value + 0.05 : 0.1;
    if (!session.Apply(MakePref(3, 5, value)).ok()) break;
    auto report = session.Resolve(/*force_cold=*/true);
    if (!report.ok()) break;
    benchmark::DoNotOptimize(report->pivots);
  }
}
BENCHMARK(BM_ColdResolve)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace savg

SAVG_BENCH_MAIN(savg::PrintTables)
