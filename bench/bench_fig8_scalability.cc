// Figure 8: execution-time scalability on Yelp-like data — (a) vs the user
// set size n with the exact IP included under a hard time cap, and (b) vs
// the item set size m for the polynomial methods.
//
// Expected shapes: IP blows through its budget well before n = 25; AVG and
// AVG-D scale mildly in both n and m (decision dilution: only supporters
// are ever touched), baselines scan all items/users per step.

#include "bench_util.h"

namespace savg {
namespace {

void PrintTables() {
  // (a) time vs n, IP capped at 15 s.
  {
    Timer part_a_timer;
    Table t({"n", "AVG", "AVG-D", "PER", "FMG", "SDP", "GRF",
             "IP (cap 15s)", "IP optimal?"});
    for (int n : {5, 10, 15, 20, 25}) {
      DatasetParams params;
      params.kind = DatasetKind::kYelp;
      params.num_users = n;
      params.num_items = 12;
      params.num_slots = 3;
      params.seed = 8;
      auto inst = GenerateDataset(params);
      if (!inst.ok()) continue;
      RunnerConfig config;
      config.ip.mip.time_limit_seconds = 15.0;
      t.NewRow().Add(std::to_string(n));
      auto frac = SolveRelaxation(*inst, config.relaxation);
      for (Algo algo : {Algo::kAvg, Algo::kAvgD, Algo::kPer, Algo::kFmg,
                        Algo::kSdp, Algo::kGrf}) {
        auto run = RunAlgorithm(*inst, algo, config,
                                frac.ok() ? &*frac : nullptr);
        t.Add(run.ok() ? run->seconds +
                             (algo == Algo::kAvg || algo == Algo::kAvgD
                                  ? frac->solve_seconds
                                  : 0.0)
                       : -1.0,
              3);
      }
      auto ip = RunAlgorithm(*inst, Algo::kIp, config);
      t.Add(ip.ok() ? ip->seconds : -1.0, 2);
      t.Add(ip.ok() && ip->ip_proven_optimal ? "yes" : "NO (budget hit)");
    }
    t.Print("Fig 8(a): execution time vs n (Yelp, m=12, k=3)");
    benchutil::RecordMetric("fig8a | time vs n",
                            part_a_timer.ElapsedSeconds());
  }
  // (b) time vs m, polynomial methods only.
  {
    std::vector<benchutil::SweepPoint> points;
    for (int m : {100, 500, 2000, 5000, 10000}) {
      DatasetParams p;
      p.kind = DatasetKind::kYelp;
      p.num_users = 40;
      p.num_items = m;
      p.num_slots = 10;
      p.seed = 8;
      points.push_back({std::to_string(m), p});
    }
    RunnerConfig config;
    config.relaxation.method = RelaxationMethod::kSubgradient;
    config.sdp.diversity_weight = 0.0;
    benchutil::PrintSweep("Fig 8(b): vs item count m (Yelp, n=40, k=10)",
                          "m", points, /*samples=*/2,
                          benchutil::AlgosOrDefault(false), config);
  }
}

void BM_AvgDVsM(benchmark::State& state) {
  DatasetParams p;
  p.kind = DatasetKind::kYelp;
  p.num_users = 40;
  p.num_items = static_cast<int>(state.range(0));
  p.num_slots = 10;
  p.seed = 8;
  auto inst = GenerateDataset(p);
  RelaxationOptions opt;
  opt.method = RelaxationMethod::kSubgradient;
  auto frac = SolveRelaxation(*inst, opt);
  for (auto _ : state) {
    auto result = RunAvgD(*inst, *frac);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_AvgDVsM)->Arg(100)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace savg

SAVG_BENCH_MAIN(savg::PrintTables)
