// Reproduces the paper's running example (Tables 6-9 and the Example 5
// totals): all approaches on the 4-user / 5-item store of Table 1.
//
// Expected (paper): AVG 9.75, AVG-D 9.85, personalized 8.25, group 8.35,
// subgroup-by-friendship 8.4, subgroup-by-preference 8.7, OPT 10.35. Our
// AVG/AVG-D routinely land on the optimum 10.35 for this tiny instance —
// at or above the paper's reported draws, as expected for a randomized /
// tie-breaking-dependent method.

#include "bench_util.h"

#include "baselines/brute_force.h"
#include "baselines/fmg.h"
#include "baselines/per.h"
#include "core/avg.h"
#include "core/avg_d.h"
#include "core/lp_formulation.h"
#include "core/objective.h"
#include "../tests/paper_example.h"

namespace savg {
namespace {

void PrintTables() {
  SvgicInstance inst = MakePaperExample(0.5);
  auto frac = SolveRelaxation(inst);
  if (!frac.ok()) {
    std::cerr << frac.status() << "\n";
    return;
  }
  Table t({"approach", "scaled total", "paper reports"});
  auto add = [&](const std::string& name, double value,
                 const std::string& paper) {
    t.NewRow().Add(name).Add(value, 2).Add(paper);
  };
  AvgOptions avg_opt;
  avg_opt.seed = 4;
  auto avg = RunAvgBest(inst, *frac, 10, avg_opt);
  add("AVG (best of 10)", Evaluate(inst, avg->config).ScaledTotal(), "9.75");
  auto avg_d = RunAvgD(inst, *frac);
  add("AVG-D", Evaluate(inst, avg_d->config).ScaledTotal(), "9.85");
  add("personalized (Table 9)",
      Evaluate(inst, MakePersonalizedConfig()).ScaledTotal(), "8.25");
  add("group (Table 9)", Evaluate(inst, MakeGroupConfig()).ScaledTotal(),
      "8.35");
  add("subgroup-by-friendship",
      Evaluate(inst, MakeSubgroupByFriendshipConfig()).ScaledTotal(), "8.40");
  add("subgroup-by-preference",
      Evaluate(inst, MakeSubgroupByPreferenceConfig()).ScaledTotal(), "8.70");
  auto opt = SolveBruteForce(inst);
  add("OPT (exhaustive)", opt->scaled_objective, "10.35");
  t.NewRow().Add("LP bound").Add(frac->lp_objective, 2).Add("-");
  t.Print("Running example (Tables 6-9)");
}

void BM_PaperExampleRelaxation(benchmark::State& state) {
  SvgicInstance inst = MakePaperExample(0.5);
  for (auto _ : state) {
    auto frac = SolveRelaxation(inst);
    benchmark::DoNotOptimize(frac);
  }
}
BENCHMARK(BM_PaperExampleRelaxation);

void BM_PaperExampleAvgRounding(benchmark::State& state) {
  SvgicInstance inst = MakePaperExample(0.5);
  auto frac = SolveRelaxation(inst);
  uint64_t seed = 0;
  for (auto _ : state) {
    AvgOptions opt;
    opt.seed = ++seed;
    auto result = RunAvg(inst, *frac, opt);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_PaperExampleAvgRounding);

void BM_PaperExampleBruteForce(benchmark::State& state) {
  SvgicInstance inst = MakePaperExample(0.5);
  for (auto _ : state) {
    auto opt = SolveBruteForce(inst);
    benchmark::DoNotOptimize(opt);
  }
}
BENCHMARK(BM_PaperExampleBruteForce);

}  // namespace
}  // namespace savg

SAVG_BENCH_MAIN(savg::PrintTables)
